package sstd_test

import (
	"fmt"
	"time"

	"github.com/social-sensing/sstd"
)

// exampleOrigin anchors the interval grids of the runnable examples.
func exampleOrigin() time.Time {
	return time.Date(2016, 11, 28, 7, 0, 0, 0, time.UTC)
}

// ExampleNewEngine shows the minimal truth discovery session: ingest
// scored reports, decode the claim's truth timeline, query it.
func ExampleNewEngine() {
	origin := exampleOrigin()
	eng, err := sstd.NewEngine(sstd.DefaultConfig(origin))
	if err != nil {
		fmt.Println(err)
		return
	}
	// Thirty minutes of reports: the claim is true for the first 15
	// minutes, then debunked; sources report it faithfully here.
	for minute := 0; minute < 30; minute++ {
		att := sstd.Agree
		if minute >= 15 {
			att = sstd.Disagree
		}
		for k := 0; k < 4; k++ {
			_ = eng.Ingest(sstd.Report{
				Source:       sstd.SourceID(fmt.Sprintf("witness-%d", k)),
				Claim:        "campus-shooting",
				Timestamp:    origin.Add(time.Duration(minute) * time.Minute),
				Attitude:     att,
				Uncertainty:  0.1,
				Independence: 0.9,
			})
		}
	}
	estimates, err := eng.DecodeClaim("campus-shooting")
	if err != nil {
		fmt.Println(err)
		return
	}
	early, _ := sstd.TruthAt(estimates, origin.Add(5*time.Minute))
	late, _ := sstd.TruthAt(estimates, origin.Add(25*time.Minute))
	fmt.Println("at minute 5:", early)
	fmt.Println("at minute 25:", late)
	// Output:
	// at minute 5: true
	// at minute 25: false
}

// ExampleNewScorer runs the raw-text preprocessing pipeline on a denial.
func ExampleNewScorer() {
	scorer := sstd.NewScorer()
	report := scorer.ScorePost(sstd.Post{
		Source:    "skeptic",
		Claim:     "bomb-threat",
		Timestamp: exampleOrigin(),
		Text:      "the bomb threat at the library is fake news",
	})
	fmt.Println("attitude:", report.Attitude == sstd.Disagree)
	fmt.Println("negative contribution:", report.ContributionScore() < 0)
	// Output:
	// attitude: true
	// negative contribution: true
}

// ExampleNewPipeline runs the composed ingestion path: raw text posts are
// keyword-filtered, clustered into claims, semantically scored and fed to
// the engine in one call.
func ExampleNewPipeline() {
	origin := exampleOrigin()
	engineCfg := sstd.DefaultConfig(origin)
	clusterCfg := sstd.DefaultClusterConfig()
	clusterCfg.Keywords = []string{"marathon", "boston"}
	p, err := sstd.NewPipeline(sstd.PipelineConfig{Engine: engineCfg, Cluster: clusterCfg})
	if err != nil {
		fmt.Println(err)
		return
	}
	posts := []sstd.RawPost{
		{Source: "a", Time: origin, Text: "two explosions at the boston marathon finish line"},
		{Source: "b", Time: origin.Add(time.Minute), Text: "explosions at the boston marathon finish line confirmed"},
		{Source: "c", Time: origin.Add(2 * time.Minute), Text: "nice sandwich for lunch"},
	}
	if err := p.ProcessAll(posts); err != nil {
		fmt.Println(err)
		return
	}
	stats := p.Stats()
	fmt.Println("kept:", stats.Kept)
	fmt.Println("filtered:", stats.Filtered)
	fmt.Println("claims:", stats.Claims)
	// Output:
	// kept: 2
	// filtered: 1
	// claims: 1
}

// ExampleNewStreamingDecoder decodes a claim live with fixed-lag
// smoothing: each new ACS observation yields an immediate estimate.
func ExampleNewStreamingDecoder() {
	dec, err := sstd.NewStreamingDecoder(sstd.DefaultConfig(exampleOrigin()).Decoder, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	series := []float64{4, 4, 4, 4, 4, -4, -4, -4, -4, -4}
	var last sstd.TruthValue
	for _, v := range series {
		last, err = dec.Append(v)
		if err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Println("live estimate after the flip:", last)
	// Output:
	// live estimate after the flip: false
}
