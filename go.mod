module github.com/social-sensing/sstd

go 1.22
