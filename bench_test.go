// Benchmarks regenerating each of the paper's evaluation artifacts
// (Tables II-V, Figures 4-7) at reduced trace scale, plus micro-benchmarks
// of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The per-table benchmarks print one artifact per run via b.Logf-free
// stdout only under -v; their timing is the regeneration cost, which is
// what Fig. 4-style comparisons care about.
package sstd_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/social-sensing/sstd"
	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/claimdep"
	"github.com/social-sensing/sstd/internal/condor"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/experiments"
	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/nlp"
	"github.com/social-sensing/sstd/internal/rto"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// benchOpts are the shared reduced-scale experiment options. The timing
// figures use a lower per-report cost so a full -bench=. sweep stays fast.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:           0.01,
		Seed:            7,
		Intervals:       80,
		WindowIntervals: 3,
		Workers:         4,
		PerReportCost:   10 * time.Microsecond,
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAccuracyTable(b *testing.B, prof tracegen.Profile) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reports, err := experiments.AccuracyTable(prof, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 7 {
			b.Fatalf("got %d methods", len(reports))
		}
	}
}

func BenchmarkTableIII_Boston(b *testing.B) { benchAccuracyTable(b, tracegen.BostonBombing()) }
func BenchmarkTableIV_Paris(b *testing.B)   { benchAccuracyTable(b, tracegen.ParisShooting()) }
func BenchmarkTableV_Football(b *testing.B) { benchAccuracyTable(b, tracegen.CollegeFootball()) }

func BenchmarkFig4_ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(tracegen.ParisShooting(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_StreamingSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(tracegen.ParisShooting(), []int{10, 20}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_DeadlineHitRate(b *testing.B) {
	o := benchOpts()
	o.Scale = 0.004 // 100 distributed interval runs per iteration
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(tracegen.ParisShooting(), o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatal("unexpected series count")
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWindow(tracegen.BostonBombing(), []int{1, 3, 10}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkHMMDecode measures one claim's full train + Viterbi decode over
// an 80-step ACS sequence — the unit of work of a TD job's final stage.
func BenchmarkHMMDecode(b *testing.B) {
	dec, err := core.NewDecoder(core.DefaultDecoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	series := make([]float64, 80)
	for i := range series {
		if i < 40 {
			series[i] = 3
		} else {
			series[i] = -3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(series); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaumWelch measures EM training on a 200-step binary sequence.
func BenchmarkBaumWelch(b *testing.B) {
	obs := make([]int, 200)
	for i := range obs {
		if (i/25)%2 == 0 {
			obs[i] = 1
		}
	}
	cfg := hmm.DefaultTrainConfig()
	cfg.MaxIterations = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := hmm.NewDiscrete(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		m.B = [][]float64{{0.7, 0.3}, {0.3, 0.7}}
		if _, err := m.BaumWelch([][]int{obs}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngest measures the streaming ingest path.
func BenchmarkEngineIngest(b *testing.B) {
	origin := time.Date(2016, 9, 30, 12, 0, 0, 0, time.UTC)
	eng, err := sstd.NewEngine(sstd.DefaultConfig(origin))
	if err != nil {
		b.Fatal(err)
	}
	r := sstd.Report{
		Source: "s", Claim: "c", Timestamp: origin,
		Attitude: sstd.Agree, Uncertainty: 0.2, Independence: 0.9,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Timestamp = origin.Add(time.Duration(i) * time.Second)
		if err := eng.Ingest(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngestTelemetry is BenchmarkEngineIngest with a live
// metrics registry; comparing the two shows the cost of telemetry on the
// hottest path (the off state, above, pays only nil checks).
func BenchmarkEngineIngestTelemetry(b *testing.B) {
	origin := time.Date(2016, 9, 30, 12, 0, 0, 0, time.UTC)
	cfg := sstd.DefaultConfig(origin)
	cfg.Metrics = sstd.NewMetricsRegistry()
	eng, err := sstd.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := sstd.Report{
		Source: "s", Claim: "c", Timestamp: origin,
		Attitude: sstd.Agree, Uncertainty: 0.2, Independence: 0.9,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Timestamp = origin.Add(time.Duration(i) * time.Second)
		if err := eng.Ingest(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScorerPipeline measures raw-text semantic scoring (the
// preprocessing that dominates TD job cost).
func BenchmarkScorerPipeline(b *testing.B) {
	s := sstd.NewScorer()
	origin := time.Now()
	texts := []string{
		"two explosions at the boston marathon finish line",
		"i think there might be a second device maybe",
		"RT @user: two explosions at the boston marathon finish line",
		"the bomb threat at the library is fake news",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScorePost(sstd.Post{
			Source: "u", Claim: "c",
			Timestamp: origin.Add(time.Duration(i) * time.Second),
			Text:      texts[i%len(texts)],
		})
	}
}

// BenchmarkBaselines measures each batch estimator on a fixed mid-size
// dataset, the comparison Fig. 4 draws at one data point.
func BenchmarkBaselines(b *testing.B) {
	g, err := tracegen.New(tracegen.ParisShooting(), 7)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := g.Generate(0.01)
	if err != nil {
		b.Fatal(err)
	}
	ds := baselines.BuildDataset(tr.Reports)
	ests := []baselines.Estimator{
		&baselines.MajorityVote{},
		baselines.NewTruthFinder(),
		baselines.NewRTD(),
		baselines.NewCATD(),
		baselines.NewInvest(),
		baselines.NewThreeEstimates(),
	}
	for _, est := range ests {
		est := est
		b.Run(est.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est.Estimate(ds)
			}
		})
	}
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := tracegen.New(tracegen.BostonBombing(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Generate(0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACSSeries measures sliding-window materialization.
func BenchmarkACSSeries(b *testing.B) {
	origin := time.Now()
	acc, err := core.NewACSAccumulator(core.ACSConfig{Interval: time.Minute, WindowIntervals: 5}, origin)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		acc.Add(socialsensing.Report{
			Source: "s", Claim: "c",
			Timestamp: origin.Add(time.Duration(i%2000) * time.Minute),
			Attitude:  socialsensing.Agree, Independence: 1,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := acc.Series(); len(s) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkWorkqueueThroughput measures task round-trips through the
// in-process pool (4 workers, trivial tasks).
func BenchmarkWorkqueueThroughput(b *testing.B) {
	benchWorkqueue(b, 4)
}

// BenchmarkPosterior measures forward-backward truth posteriors over an
// 80-step ACS sequence.
func BenchmarkPosterior(b *testing.B) {
	dec, err := core.NewDecoder(core.DefaultDecoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	series := make([]float64, 80)
	for i := range series {
		if i%13 < 7 {
			series[i] = 3
		} else {
			series[i] = -3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Posterior(series); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDecoderAppend measures the fixed-lag incremental
// decode cost per new observation on a long-running stream.
func BenchmarkStreamingDecoderAppend(b *testing.B) {
	sd, err := core.NewStreamingDecoder(core.DefaultDecoderConfig(), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := 3.0
		if i%17 > 8 {
			v = -3
		}
		if _, err := sd.Append(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDependencyGraph measures correlation-graph estimation over 20
// claims x 80 intervals.
func BenchmarkDependencyGraph(b *testing.B) {
	series := make(map[socialsensing.ClaimID][]float64, 20)
	for c := 0; c < 20; c++ {
		s := make([]float64, 80)
		for t := range s {
			if (t/(5+c%5))%2 == 0 {
				s[t] = 2
			} else {
				s[t] = -2
			}
		}
		series[socialsensing.ClaimID(fmt.Sprintf("c%02d", c))] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := claimdep.EstimateGraph(series, claimdep.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTOSolve measures the integer-program allocator on a 25-job
// interval.
func BenchmarkRTOSolve(b *testing.B) {
	jobs := make([]rto.JobSpec, 25)
	for i := range jobs {
		jobs[i] = rto.JobSpec{
			ID:       fmt.Sprintf("claim-%02d", i),
			DataSize: float64(50 + 100*i),
			Deadline: 50 * time.Millisecond,
		}
	}
	model := rto.Model{InitTime: time.Millisecond, Theta2: 50 * time.Microsecond}
	limits := rto.DefaultLimits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rto.Solve(jobs, model, limits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvictionSimulation measures the churned virtual scheduler.
func BenchmarkEvictionSimulation(b *testing.B) {
	cm := condor.CostModel{InitTime: time.Millisecond, PerUnit: 10 * time.Microsecond, Dispatch: 100 * time.Microsecond}
	tasks := make([]condor.VirtualTask, 200)
	for i := range tasks {
		tasks[i] = condor.VirtualTask{JobID: fmt.Sprintf("j%d", i%16), Work: 500}
	}
	slots := make([]condor.Slot, 32)
	for i := range slots {
		slots[i] = condor.Slot{ID: i + 1, Node: "n", Speed: 1}
	}
	ev := condor.PoolChurn(slots, 4, 100*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := condor.SimulateEvictions(tasks, slots, cm, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStanceClassifier measures trained polarity scoring.
func BenchmarkStanceClassifier(b *testing.B) {
	c := nlp.NewDefaultStanceClassifier()
	texts := []string{
		"confirmed two explosions at the marathon finish line",
		"that shooting story is fake news stop spreading it",
		"the game is tied now",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Score(texts[i%len(texts)])
	}
}

func benchWorkqueue(b *testing.B, workers int) {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := workqueue.NewMaster(workqueue.MasterConfig{ResultBuffer: 1024})
	p := workqueue.NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
		return payload, nil
	})
	p.Resize(ctx, workers)
	defer p.Close()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-m.Results()
		}
	}()
	for i := 0; i < b.N; i++ {
		err := m.Submit(workqueue.Task{
			ID:      fmt.Sprintf("t%d", i),
			JobID:   fmt.Sprintf("j%d", i%8),
			Payload: []byte("x"),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
