package sstd_test

import (
	"context"
	"testing"
	"time"

	"github.com/social-sensing/sstd"
)

func origin() time.Time { return time.Date(2016, 11, 28, 7, 0, 0, 0, time.UTC) }

func TestPublicEngineRoundTrip(t *testing.T) {
	eng, err := sstd.NewEngine(sstd.DefaultConfig(origin()))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 30; m++ {
		att := sstd.Agree
		if m >= 15 {
			att = sstd.Disagree
		}
		for k := 0; k < 5; k++ {
			err := eng.Ingest(sstd.Report{
				Source:       "witness",
				Claim:        "osu-shooting",
				Timestamp:    origin().Add(time.Duration(m) * time.Minute),
				Attitude:     att,
				Uncertainty:  0.1,
				Independence: 0.9,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	est, err := eng.DecodeClaim("osu-shooting")
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 30 {
		t.Fatalf("estimates = %d, want 30", len(est))
	}
	if v, ok := sstd.TruthAt(est, origin().Add(5*time.Minute)); !ok || v != sstd.True {
		t.Errorf("truth at minute 5 = %v,%v; want True", v, ok)
	}
	if v, ok := sstd.TruthAt(est, origin().Add(25*time.Minute)); !ok || v != sstd.False {
		t.Errorf("truth at minute 25 = %v,%v; want False", v, ok)
	}
}

func TestPublicScorer(t *testing.T) {
	s := sstd.NewScorer()
	r := s.ScorePost(sstd.Post{
		Source:    "user1",
		Claim:     "bomb-threat",
		Timestamp: origin(),
		Text:      "the bomb threat at the library is fake news",
	})
	if r.Attitude != sstd.Disagree {
		t.Errorf("attitude = %v, want Disagree", r.Attitude)
	}
	if cs := r.ContributionScore(); cs >= 0 {
		t.Errorf("contribution score = %v, want negative", cs)
	}
}

func TestPublicTraceGeneration(t *testing.T) {
	g, err := sstd.NewTraceGenerator(sstd.ParisShootingProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(0.002)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	if len(tr.Reports) == 0 || len(tr.Sources) == 0 {
		t.Error("empty trace")
	}
}

func TestPublicManager(t *testing.T) {
	cfg := sstd.DefaultManagerConfig(origin())
	cfg.Workers = 2
	m, err := sstd.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	var reports []sstd.Report
	for i := 0; i < 40; i++ {
		reports = append(reports, sstd.Report{
			Source:       sstd.SourceID("s"),
			Claim:        "c",
			Timestamp:    origin().Add(time.Duration(i) * time.Minute),
			Attitude:     sstd.Agree,
			Independence: 1,
		})
	}
	if err := m.SubmitJob("c", reports, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-m.Results():
		if res.Err != nil {
			t.Fatalf("job error: %v", res.Err)
		}
		if len(res.Estimates) == 0 {
			t.Error("no estimates")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out")
	}
}
