GO ?= go

.PHONY: build test check race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The ROADMAP's tier-1 gate.
check: test

# The race tier: static checks plus the full suite under the race detector
# (the obs stress tests and workqueue leak tests are written for this).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
