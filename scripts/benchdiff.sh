#!/bin/sh
# benchdiff.sh — microbenchmark regression gate.
#
# Re-runs the bench tier (scripts/check.sh bench) and compares every
# benchmark's ns/op against the checked-in baselines (BENCH_obs.json,
# BENCH_hmm.json, BENCH_wire.json, BENCH_sched.json). Exits non-zero if any benchmark regressed by more than
# BENCHDIFF_THRESHOLD percent (default 25). Benchmarks present only on
# one side are reported but never fail the gate — CI machines differ, but
# a >25% same-machine-format regression against the committed baseline is
# a signal worth breaking the build for.
#
# The bench run overwrites the BENCH_*.json baselines in the working
# tree with fresh numbers (same behavior as check.sh bench); use git to
# restore the baselines or commit the new ones after investigating.
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${BENCHDIFF_THRESHOLD:-25}"
BASELINES="BENCH_obs.json BENCH_hmm.json BENCH_wire.json BENCH_sched.json"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for f in $BASELINES; do
	if ! test -s "$f"; then
		echo "benchdiff: missing baseline $f (run scripts/check.sh bench and commit it)" >&2
		exit 2
	fi
	cp "$f" "$tmp/$(basename "$f").base"
done

./scripts/check.sh bench

# pairs extracts "name ns_per_op" lines from a BENCH_*.json artifact.
pairs() {
	sed -n 's/.*"name":"\([^"]*\)".*"ns_per_op":\([0-9.eE+-]*\).*/\1 \2/p' "$1"
}

fail=0
for f in $BASELINES; do
	echo "== benchdiff: $f (threshold ${THRESHOLD}%) =="
	pairs "$tmp/$(basename "$f").base" >"$tmp/base.txt"
	pairs "$f" >"$tmp/new.txt"
	awk -v thr="$THRESHOLD" '
		NR == FNR { base[$1] = $2; next }
		{
			seen[$1] = 1
			if (!($1 in base)) {
				printf "  new       %-60s %14.1f ns/op (no baseline)\n", $1, $2
				next
			}
			b = base[$1]; n = $2
			pct = (b > 0) ? (n - b) / b * 100 : 0
			flag = "ok"
			if (pct > thr) { flag = "REGRESSED"; bad = 1 }
			printf "  %-9s %-60s %12.1f -> %10.1f ns/op (%+6.1f%%)\n", flag, $1, b, n, pct
		}
		END {
			for (name in base) {
				if (!(name in seen))
					printf "  missing   %-60s (in baseline, not in this run)\n", name
			}
			exit bad ? 1 : 0
		}
	' "$tmp/base.txt" "$tmp/new.txt" || fail=1
done

if [ "$fail" -ne 0 ]; then
	echo "benchdiff: ns/op regression above ${THRESHOLD}% against committed baselines" >&2
	exit 1
fi
echo "benchdiff: no benchmark regressed more than ${THRESHOLD}%"
