#!/bin/sh
# CI tiers for the SSTD reproduction.
#
#   scripts/check.sh          tier-1: build + tests (the ROADMAP gate)
#   scripts/check.sh race     tier-2: vet + full test suite under -race
#   scripts/check.sh bench    observability microbenchmarks -> BENCH_obs.json
#   scripts/check.sh all      tier-1 + tier-2
set -eu
cd "$(dirname "$0")/.."

tier1() {
	echo "== tier-1: go build ./... && go test ./... =="
	go build ./...
	go test ./...
}

race() {
	echo "== tier-2: go vet ./... && go test -race ./... =="
	go vet ./...
	go test -race ./...
}

bench() {
	echo "== bench: go test -bench on internal/obs and internal/workqueue =="
	out=$(go test -run '^$' -bench . -benchmem ./internal/obs ./internal/workqueue)
	echo "$out"
	# Flatten `go test -bench` lines into BENCH_obs.json so CI can diff
	# telemetry-path costs across commits without reparsing raw output.
	echo "$out" | awk '
		BEGIN { print "["; n = 0 }
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			printf "%s  {\"name\":\"%s\",\"iterations\":%s", (n++ ? ",\n" : ""), name, $2
			for (i = 3; i < NF; i++) {
				if ($(i + 1) == "ns/op") printf ",\"ns_per_op\":%s", $i
				if ($(i + 1) == "B/op") printf ",\"bytes_per_op\":%s", $i
				if ($(i + 1) == "allocs/op") printf ",\"allocs_per_op\":%s", $i
			}
			printf "}"
		}
		END { print "\n]" }
	' >BENCH_obs.json
	echo "wrote BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) benchmarks)"
}

case "${1:-tier1}" in
tier1) tier1 ;;
race) race ;;
bench) bench ;;
all)
	tier1
	race
	;;
*)
	echo "usage: $0 [tier1|race|bench|all]" >&2
	exit 2
	;;
esac
