#!/bin/sh
# CI tiers for the SSTD reproduction.
#
#   scripts/check.sh            tier-1: build + tests (the ROADMAP gate)
#   scripts/check.sh race       tier-2: vet + full test suite under -race
#   scripts/check.sh bench      microbenchmarks -> BENCH_obs.json + BENCH_hmm.json + BENCH_wire.json
#   scripts/check.sh chaos      chaos soak: seeded fault-injection schedules under -race
#   scripts/check.sh load       10-second capacity smoke sweep -> BENCH_load.json
#   scripts/check.sh wire       binary-codec batching smoke: differential/golden tests + 2-worker batched sweep
#   scripts/check.sh flightrec  flight-recorder smoke: forced deep-dive dump in a 2-worker run
#   scripts/check.sh telemetry  telemetry-plane smoke: SLO burn -> merged multi-host cluster trace
#   scripts/check.sh sched      sharded-scheduler tier: fairness/invariant tests + contention benches -> BENCH_sched.json + 100k-claim sweep
#   scripts/check.sh all        tier-1 + tier-2
#
# scripts/benchdiff.sh wraps the bench tier with a regression gate against
# the checked-in BENCH_obs.json/BENCH_hmm.json/BENCH_wire.json/BENCH_sched.json
# baselines.
set -eu
cd "$(dirname "$0")/.."

tier1() {
	echo "== tier-1: go build ./... && go test ./... =="
	go build ./...
	go test ./...
}

race() {
	echo "== tier-2: go vet ./... && go test -race ./... =="
	go vet ./...
	go test -race ./...
}

# bench_json flattens `go test -bench` output on stdin into a JSON array so
# CI can diff per-commit costs without reparsing raw output.
bench_json() {
	awk '
		BEGIN { print "["; n = 0 }
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			printf "%s  {\"name\":\"%s\",\"iterations\":%s", (n++ ? ",\n" : ""), name, $2
			for (i = 3; i < NF; i++) {
				if ($(i + 1) == "ns/op") printf ",\"ns_per_op\":%s", $i
				if ($(i + 1) == "B/op") printf ",\"bytes_per_op\":%s", $i
				if ($(i + 1) == "allocs/op") printf ",\"allocs_per_op\":%s", $i
			}
			printf "}"
		}
		END { print "\n]" }
	'
}

bench() {
	echo "== bench: go test -bench on internal/obs, internal/obs/flightrec, internal/obs/tsdb and internal/workqueue =="
	# The workqueue run pins the regex to the observability benches; the
	# wire-protocol benches (BenchmarkWire*) get their own baseline below.
	out=$(
		go test -run '^$' -bench . -benchmem ./internal/obs ./internal/obs/flightrec ./internal/obs/tsdb
		go test -run '^$' -bench '^Benchmark(Message|StageSpan)' -benchmem ./internal/workqueue
	)
	echo "$out"
	echo "$out" | bench_json >BENCH_obs.json
	echo "wrote BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) benchmarks)"

	# The wire-protocol baseline: JSON-vs-binary encode/decode pairs for a
	# traced task/result (the Eq. 10 transfer term) plus end-to-end
	# tasks/sec through one master connection — lock-step vs batched, on a
	# raw pipe (internal/workqueue) and across a 250µs-per-frame delay
	# link (internal/chaos), where batching's amortization is the
	# headline ratio.
	echo "== bench: go test -bench '^BenchmarkWire' on internal/workqueue and internal/chaos =="
	out=$(go test -run '^$' -bench '^BenchmarkWire' -benchmem ./internal/workqueue ./internal/chaos)
	echo "$out"
	echo "$out" | bench_json >BENCH_wire.json
	echo "wrote BENCH_wire.json ($(grep -c '"name"' BENCH_wire.json) benchmarks)"

	# The HMM kernel + decode-path baseline: the *Seed benchmarks replay the
	# frozen pre-rewrite kernels (internal/hmm/hmmtest) on identical inputs,
	# so each BENCH_hmm.json snapshot carries its own before/after pair
	# measured on the same machine.
	echo "== bench: go test -bench on internal/hmm and internal/core =="
	out=$(go test -run '^$' -bench . -benchmem ./internal/hmm ./internal/core)
	echo "$out"
	echo "$out" | bench_json >BENCH_hmm.json
	echo "wrote BENCH_hmm.json ($(grep -c '"name"' BENCH_hmm.json) benchmarks)"

	bench_sched
}

# The sharded-scheduler contention baseline: push/draw, dispatch/ack and
# mixed (priority retunes + stats reads) cycles at 1/4/16/64 simulated
# workers, each against the frozen single-mutex implementation
# (sched_baseline_test.go) in the same snapshot — so the checked-in
# BENCH_sched.json carries its own before/after pair and the ≥4×
# 16-worker scheduler ratio is verifiable from one file.
bench_sched() {
	echo "== bench: go test -bench '^BenchmarkScheduler' on internal/workqueue =="
	out=$(go test -run '^$' -bench '^BenchmarkScheduler' -benchmem ./internal/workqueue)
	echo "$out"
	echo "$out" | bench_json >BENCH_sched.json
	echo "wrote BENCH_sched.json ($(grep -c '"name"' BENCH_sched.json) benchmarks)"
}

chaos() {
	# The soak drives an in-process N-worker cluster through seeded fault
	# schedules (crash storm, 30% drop, corrupt-frame burst) and asserts no
	# task is lost, no goroutine leaks, and the fault plan replays
	# identically. Seeds are fixed for reproducibility; override with
	# CHAOS_SEED=<n> to chase a failure — the failing test prints the exact
	# command to re-run it.
	echo "== chaos: seeded fault-injection soak under -race =="
	go test -race -count=1 -v -run 'TestChaosSoak' ./internal/chaos
	go test -race -count=1 -run 'TestDecodedTruthIdenticalUnderChaos|TestDegradedJobCompletion|TestHungTaskDegradesJob' ./internal/dtm
	go test -race -count=1 -run 'TestRequeueBackoffBoundsRetryRate|TestQuarantineLifecycle' ./internal/workqueue
}

load() {
	# Smoke sweep: a real master + 2 in-process workers (full wire protocol
	# over net.Pipe), offered load ramped until the deadline-miss knee,
	# capped at ~10 seconds of wall time. Asserts the harness produces a
	# non-empty capacity report with a sweep and a fitted model.
	echo "== load: 10-second capacity smoke sweep =="
	go run ./cmd/loadgen -trace boston -scale 0.005 -workers 1,2 \
		-start-rate 4 -rate-factor 2 -max-rate 64 \
		-deadline 100ms -step 800ms -duration 10s -work-delay 100us \
		-out BENCH_load.json
	test -s BENCH_load.json
	grep -q '"sweep"' BENCH_load.json
	grep -q '"perWorkerTasksPerSec"' BENCH_load.json
	echo "BENCH_load.json OK ($(grep -c '"offeredRate"' BENCH_load.json) sweep points)"
}

wire() {
	# Binary-codec batching smoke: the codec-correctness suite (JSON-vs-
	# binary differential round trips, golden frame fixtures, batching
	# invariants), then a short 2-worker loadgen sweep with task batching
	# on — the whole cluster speaking the binary wire format end to end.
	echo "== wire: differential/golden codec tests + batching invariants =="
	go test -count=1 -run 'TestDifferential|TestGolden|TestBatch|TestPartialBatch|TestUnbatched|TestMidBatch|TestCrossCodec|TestWireFrames|TestShiftBinary|TestBinary' ./internal/workqueue
	echo "== wire: 2-worker batched sweep over the binary codec =="
	dir=$(mktemp -d)
	go run ./cmd/loadgen -trace boston -scale 0.005 -workers 2 \
		-start-rate 4 -rate-factor 2 -max-rate 32 \
		-deadline 100ms -step 800ms -duration 8s -work-delay 100us \
		-batch 8 -admit-factor 0 -quiet \
		-out "$dir/BENCH_wire_smoke.json"
	test -s "$dir/BENCH_wire_smoke.json"
	grep -q '"sweep"' "$dir/BENCH_wire_smoke.json"
	grep -q '"perWorkerTasksPerSec"' "$dir/BENCH_wire_smoke.json"
	echo "wire smoke OK ($(grep -c '"offeredRate"' "$dir/BENCH_wire_smoke.json") sweep points, batch=8)"
	rm -rf "$dir"
}

flightrec() {
	# Flight-recorder smoke: a 2-worker loadgen run with a 1ms deadline no
	# real job can meet, so the deadline-miss burst trips a deep-dive dump.
	# Asserts the merged Chrome trace exists and contains both HMM
	# kernel-phase and codec frame probe events. FLIGHTREC_DIR overrides
	# the dump directory (CI points it somewhere uploadable).
	echo "== flightrec: deep-dive smoke (2 workers, forced deadline-miss trigger) =="
	dir="${FLIGHTREC_DIR:-$(mktemp -d)}"
	mkdir -p "$dir"
	rm -f "$dir"/flightrec-*.trace.json
	go run ./cmd/loadgen -trace boston -scale 0.002 -workers 2 \
		-start-rate 4 -rate-factor 2 -max-rate 8 \
		-deadline 1ms -step 800ms -duration 8s -work-delay 200us \
		-admit-factor 0 -quiet \
		-out "$dir/BENCH_flightrec.json" -flight-record "$dir" -flight-dump-on deadline-miss
	dump=$(ls "$dir"/flightrec-*.trace.json 2>/dev/null | head -n 1)
	test -n "$dump"
	test -s "$dump"
	grep -q '"hmm\.' "$dump"
	grep -q '"codec\.' "$dump"
	echo "flightrec deep dive OK: $dump ($(wc -c <"$dump") bytes)"
}

telemetry() {
	# Telemetry-plane smoke: a 2-worker loadgen sweep with the plane armed
	# (-telemetry endpoint + armed flight recorder) and a 1ms deadline no
	# real job can meet, so the SLO deadline error budget burns in both
	# windows, trips the recorder and cascades into a cross-host FreezeRings
	# collection — ONE merged Chrome trace with master and both workers on
	# distinct lanes. While the harness lingers, sstdctl reads the live
	# /query (shipped worker series) and /slo (alert count) endpoints.
	# TELEMETRY_DIR overrides the dump directory (CI uploads the trace).
	echo "== telemetry: cluster plane smoke (2 workers, SLO burn -> merged cluster trace) =="
	dir="${TELEMETRY_DIR:-$(mktemp -d)}"
	addr="127.0.0.1:${TELEMETRY_PORT:-19381}"
	mkdir -p "$dir"
	rm -f "$dir"/flightrec-*.trace.json
	go build -o "$dir/sstdctl" ./cmd/sstdctl
	go run ./cmd/loadgen -trace boston -scale 0.002 -workers 2 \
		-start-rate 4 -rate-factor 2 -max-rate 8 \
		-deadline 1ms -step 800ms -duration 8s -work-delay 200us \
		-admit-factor -1 -quiet \
		-telemetry "$addr" -linger 60s \
		-slo-fast 1s -slo-slow 2s -slo-burn 1 \
		-out "$dir/BENCH_telemetry.json" -flight-record "$dir" &
	lg=$!
	trap 'kill -INT "$lg" 2>/dev/null || true' EXIT
	# Poll the live /query endpoint until a worker's shipped series shows up.
	tries=0
	until "$dir/sstdctl" -addr "http://$addr" query -series worker_tasks_executed_total 2>/dev/null |
		grep -q 'host="pool-worker-'; do
		tries=$((tries + 1))
		test "$tries" -le 120 || { echo "telemetry: no shipped worker series after 120s" >&2; exit 1; }
		sleep 1
	done
	echo "-- sstdctl query (shipped worker series live) --"
	"$dir/sstdctl" -addr "http://$addr" query -series worker_tasks_executed_total
	# The alert needs a couple of seconds of miss samples in both windows;
	# the engine's alert counter is cumulative, so poll until the edge lands.
	tries=0
	until "$dir/sstdctl" -addr "http://$addr" slo 2>/dev/null | grep -q 'alerts: [1-9]'; do
		tries=$((tries + 1))
		test "$tries" -le 60 || { echo "telemetry: SLO burn alert never fired" >&2; exit 1; }
		sleep 1
	done
	echo "-- sstdctl slo (burn alert fired) --"
	"$dir/sstdctl" -addr "http://$addr" slo
	kill -INT "$lg" 2>/dev/null || true
	wait "$lg" || true
	trap - EXIT
	dump=$(ls "$dir"/flightrec-cluster-*.trace.json 2>/dev/null | head -n 1)
	test -n "$dump"
	test -s "$dump"
	grep -q '"master"' "$dump"
	grep -q '"host pool-worker-0"' "$dump"
	grep -q '"host pool-worker-1"' "$dump"
	echo "merged cluster trace OK: $dump ($(wc -c <"$dump") bytes)"
}

sched() {
	# Sharded-scheduler tier: the fairness/invariant suite under -race
	# (chi-squared P_u tracking across shards, cold-shard starvation,
	# exactly-once under concurrency, the allocation-free idle loop and the
	# DTM sharded-merge determinism), then the contention benches into
	# BENCH_sched.json, then the 100k-claim load sweep at 1/4/16 workers.
	echo "== sched: fairness + invariant tests under -race =="
	go test -race -count=1 \
		-run 'TestSchedulerWeightedFairnessAcrossShards|TestSchedulerColdShardNotStarved|TestSchedulerConcurrentExactlyOnce|TestSchedulerNextAllocFree|TestSchedulerFIFOWithinJob|TestSchedulerProperty' \
		./internal/workqueue
	go test -race -count=1 -run 'TestMergeOrderIndependentBits|TestMergeFailedTaskUnblocksShard' ./internal/dtm
	bench_sched
	echo "== sched: 100k-claim load sweep =="
	go test -count=1 -v -run 'TestSchedulerLoadSweep100k' ./internal/workqueue
}

case "${1:-tier1}" in
tier1) tier1 ;;
race) race ;;
bench) bench ;;
chaos) chaos ;;
load) load ;;
wire) wire ;;
flightrec) flightrec ;;
telemetry) telemetry ;;
sched) sched ;;
all)
	tier1
	race
	;;
*)
	echo "usage: $0 [tier1|race|bench|chaos|load|wire|flightrec|telemetry|sched|all]" >&2
	exit 2
	;;
esac
