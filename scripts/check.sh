#!/bin/sh
# CI tiers for the SSTD reproduction.
#
#   scripts/check.sh          tier-1: build + tests (the ROADMAP gate)
#   scripts/check.sh race     tier-2: vet + full test suite under -race
#   scripts/check.sh all      both tiers
set -eu
cd "$(dirname "$0")/.."

tier1() {
	echo "== tier-1: go build ./... && go test ./... =="
	go build ./...
	go test ./...
}

race() {
	echo "== tier-2: go vet ./... && go test -race ./... =="
	go vet ./...
	go test -race ./...
}

case "${1:-tier1}" in
tier1) tier1 ;;
race) race ;;
all)
	tier1
	race
	;;
*)
	echo "usage: $0 [tier1|race|all]" >&2
	exit 2
	;;
esac
