// Package contrib turns raw social sensing posts into scored Reports by
// combining the three semantic scorers of the paper's preprocessing step
// (§V-A2) into the contribution score of Eq. 1:
//
//	CS = attitude × (1 − uncertainty) × independence.
package contrib

import (
	"time"

	"github.com/social-sensing/sstd/internal/nlp"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Post is a raw social-media observation before semantic scoring: a source
// said something about a claim at a time.
type Post struct {
	Source    socialsensing.SourceID
	Claim     socialsensing.ClaimID
	Timestamp time.Time
	Text      string
}

// Scorer converts posts to fully scored reports. It is not safe for
// concurrent use; create one per stream partition.
type Scorer struct {
	attitude     nlp.AttitudeModel
	hedge        *nlp.HedgeClassifier
	independence *nlp.IndependenceScorer

	// DisableUncertainty and DisableIndependence switch off the
	// corresponding factor of Eq. 1 (used by the ablation experiments).
	DisableUncertainty  bool
	DisableIndependence bool
}

// Option configures a Scorer.
type Option func(*Scorer)

// WithAttitudeScorer replaces the default emergency-lexicon attitude scorer.
func WithAttitudeScorer(a *nlp.AttitudeScorer) Option {
	return func(s *Scorer) { s.attitude = a }
}

// WithAttitudeModel replaces the attitude component with any stance model,
// e.g. the trained nlp.StanceClassifier (the paper's §VII polarity-analysis
// upgrade path: "one can easily update or replace components ... as a
// plugin of the system").
func WithAttitudeModel(m nlp.AttitudeModel) Option {
	return func(s *Scorer) { s.attitude = m }
}

// WithHedgeClassifier replaces the default hedge classifier.
func WithHedgeClassifier(h *nlp.HedgeClassifier) Option {
	return func(s *Scorer) { s.hedge = h }
}

// WithIndependenceScorer replaces the default independence scorer.
func WithIndependenceScorer(i *nlp.IndependenceScorer) Option {
	return func(s *Scorer) { s.independence = i }
}

// WithoutUncertainty disables the (1-kappa) factor (ablation E10).
func WithoutUncertainty() Option {
	return func(s *Scorer) { s.DisableUncertainty = true }
}

// WithoutIndependence disables the eta factor (ablation E10).
func WithoutIndependence() Option {
	return func(s *Scorer) { s.DisableIndependence = true }
}

// NewScorer builds a Scorer with the paper's default components.
func NewScorer(opts ...Option) *Scorer {
	s := &Scorer{
		attitude:     nlp.NewDefaultAttitudeScorer(),
		hedge:        nlp.NewDefaultHedgeClassifier(),
		independence: nlp.NewIndependenceScorer(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ScorePost labels a post with attitude, uncertainty and independence and
// returns the resulting report. Posts must arrive in non-decreasing time
// order per claim for independence detection to work.
func (s *Scorer) ScorePost(p Post) socialsensing.Report {
	r := socialsensing.Report{
		Source:    p.Source,
		Claim:     p.Claim,
		Timestamp: p.Timestamp,
		Text:      p.Text,
	}
	r.Attitude = s.attitude.Score(p.Text)
	if s.DisableUncertainty {
		r.Uncertainty = 0
	} else {
		r.Uncertainty = s.hedge.Uncertainty(p.Text)
	}
	if s.DisableIndependence {
		r.Independence = 1
	} else {
		r.Independence = s.independence.Score(string(p.Claim), p.Text, p.Timestamp)
	}
	return r
}

// ScoreAll scores a batch of posts in order.
func (s *Scorer) ScoreAll(posts []Post) []socialsensing.Report {
	out := make([]socialsensing.Report, len(posts))
	for i, p := range posts {
		out[i] = s.ScorePost(p)
	}
	return out
}

// Reset clears per-stream state (the independence window).
func (s *Scorer) Reset() { s.independence.Reset() }
