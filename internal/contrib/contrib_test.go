package contrib

import (
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/nlp"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

func t0() time.Time { return time.Date(2013, 4, 15, 14, 50, 0, 0, time.UTC) }

func TestScorePostAssertive(t *testing.T) {
	s := NewScorer()
	r := s.ScorePost(Post{
		Source:    "witness",
		Claim:     "explosion",
		Timestamp: t0(),
		Text:      "police confirmed two explosions at the marathon finish line",
	})
	if r.Attitude != socialsensing.Agree {
		t.Errorf("attitude = %v, want Agree", r.Attitude)
	}
	if r.Uncertainty >= 0.5 {
		t.Errorf("assertive text uncertainty = %v, want < 0.5", r.Uncertainty)
	}
	if r.Independence < 0.9 {
		t.Errorf("original text independence = %v, want >= 0.9", r.Independence)
	}
	if cs := r.ContributionScore(); cs <= 0.4 {
		t.Errorf("contribution score = %v, want substantial positive", cs)
	}
}

func TestScorePostHedgedRetweet(t *testing.T) {
	s := NewScorer()
	assertive := s.ScorePost(Post{
		Source: "a", Claim: "c", Timestamp: t0(),
		Text: "police confirmed the arrest",
	})
	hedged := s.ScorePost(Post{
		Source: "b", Claim: "c", Timestamp: t0().Add(time.Second),
		Text: "i think there might be an arrest maybe",
	})
	if hedged.ContributionScore() >= assertive.ContributionScore() {
		t.Errorf("hedged CS %v should be below assertive CS %v",
			hedged.ContributionScore(), assertive.ContributionScore())
	}
	rt := s.ScorePost(Post{
		Source: "c", Claim: "c", Timestamp: t0().Add(2 * time.Second),
		Text: "RT @a: police confirmed the arrest",
	})
	if rt.Independence >= 0.5 {
		t.Errorf("retweet independence = %v, want low", rt.Independence)
	}
	if rt.ContributionScore() >= assertive.ContributionScore() {
		t.Error("retweet should contribute less than the original")
	}
}

func TestScorePostDenial(t *testing.T) {
	s := NewScorer()
	r := s.ScorePost(Post{
		Source: "skeptic", Claim: "c", Timestamp: t0(),
		Text: "the bomb threat at the library is fake",
	})
	if r.Attitude != socialsensing.Disagree {
		t.Fatalf("attitude = %v, want Disagree", r.Attitude)
	}
	if cs := r.ContributionScore(); cs >= 0 {
		t.Errorf("denial contribution score = %v, want negative", cs)
	}
}

func TestAblationOptions(t *testing.T) {
	post := Post{
		Source: "a", Claim: "c", Timestamp: t0(),
		Text: "maybe there was possibly an explosion",
	}
	full := NewScorer().ScorePost(post)
	noUnc := NewScorer(WithoutUncertainty()).ScorePost(post)
	noInd := NewScorer(WithoutIndependence()).ScorePost(post)
	if noUnc.Uncertainty != 0 {
		t.Errorf("WithoutUncertainty: kappa = %v, want 0", noUnc.Uncertainty)
	}
	if noInd.Independence != 1 {
		t.Errorf("WithoutIndependence: eta = %v, want 1", noInd.Independence)
	}
	if full.Uncertainty == 0 {
		t.Error("full scorer should have measured nonzero uncertainty for hedged text")
	}
}

func TestWithCustomScorers(t *testing.T) {
	s := NewScorer(WithAttitudeScorer(nlp.NewSportsAttitudeScorer()))
	r := s.ScorePost(Post{Source: "fan", Claim: "score", Timestamp: t0(), Text: "TOUCHDOWN irish"})
	if r.Attitude != socialsensing.Agree {
		t.Errorf("sports scorer attitude = %v, want Agree", r.Attitude)
	}
	r2 := s.ScorePost(Post{Source: "fan2", Claim: "score", Timestamp: t0(), Text: "nice weather at the stadium"})
	if r2.Attitude != socialsensing.Disagree {
		t.Errorf("sports scorer chatter attitude = %v, want Disagree", r2.Attitude)
	}
}

func TestScoreAllOrderAndReset(t *testing.T) {
	s := NewScorer()
	posts := []Post{
		{Source: "a", Claim: "c", Timestamp: t0(), Text: "two explosions at the marathon"},
		{Source: "b", Claim: "c", Timestamp: t0().Add(time.Second), Text: "two explosions at the marathon"},
	}
	rs := s.ScoreAll(posts)
	if len(rs) != 2 {
		t.Fatalf("ScoreAll returned %d reports", len(rs))
	}
	if rs[1].Independence >= rs[0].Independence {
		t.Errorf("duplicate should score lower independence: %v vs %v", rs[1].Independence, rs[0].Independence)
	}
	s.Reset()
	r := s.ScorePost(posts[1])
	if r.Independence < 0.9 {
		t.Errorf("after Reset, independence = %v, want original-level", r.Independence)
	}
}
