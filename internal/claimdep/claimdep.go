// Package claimdep implements the claim-dependency extension the paper
// lists as future work (§VII): "explicitly model the correlation between
// different claims and incorporate such correlation into the HMM based
// model". Claims about the same physical situation — weather in nearby
// cities, casualty counts and hospital load, the score and the crowd noise
// — carry evidence for each other.
//
// The model is a two-stage smoother over the per-claim HMM posteriors:
//
//  1. Estimate pairwise claim correlation from the claims' evidence
//     (ACS) series with Pearson correlation over the co-observed
//     intervals.
//  2. Blend each claim's per-interval truth posterior with the posteriors
//     of its correlated neighbours, weighted by |correlation| and signed
//     by its direction (anti-correlated claims contribute flipped
//     evidence), then re-threshold.
//
// Independence remains the default (Blend weight 0 recovers the paper's
// per-claim model), so the distributed per-claim decomposition is
// preserved: correlation smoothing is a cheap post-pass over posterior
// vectors, not a coupling inside Baum-Welch — which is exactly the
// "maintain correlation when the task is distributed" challenge the paper
// points out, solved by exchanging only posterior summaries.
package claimdep

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Correlation is one pairwise claim dependency.
type Correlation struct {
	A, B socialsensing.ClaimID
	// R is the Pearson correlation of the two claims' evidence series
	// over their co-observed intervals, in [-1, 1].
	R float64
	// Support is the number of co-observed intervals R was computed on.
	Support int
}

// Config tunes the dependency model.
type Config struct {
	// MinAbsCorrelation drops weaker pairs from the graph. Default 0.4.
	MinAbsCorrelation float64
	// MinSupport is the minimum number of co-observed intervals required
	// to trust a correlation. Default 8.
	MinSupport int
	// Blend is the weight of neighbour evidence when smoothing
	// posteriors, in [0, 1); 0 disables the dependency model. Default
	// 0.25.
	Blend float64
	// MaxNeighbors bounds how many strongest neighbours contribute per
	// claim. Default 4.
	MaxNeighbors int
}

// DefaultConfig returns the default dependency-model settings.
func DefaultConfig() Config {
	return Config{
		MinAbsCorrelation: 0.4,
		MinSupport:        8,
		Blend:             0.25,
		MaxNeighbors:      4,
	}
}

func (c Config) validate() error {
	if c.Blend < 0 || c.Blend >= 1 {
		return fmt.Errorf("claimdep: blend %v outside [0, 1)", c.Blend)
	}
	if c.MinAbsCorrelation < 0 || c.MinAbsCorrelation > 1 {
		return fmt.Errorf("claimdep: min correlation %v outside [0, 1]", c.MinAbsCorrelation)
	}
	if c.MinSupport < 2 {
		return fmt.Errorf("claimdep: min support %d too small", c.MinSupport)
	}
	if c.MaxNeighbors < 1 {
		return fmt.Errorf("claimdep: max neighbors %d too small", c.MaxNeighbors)
	}
	return nil
}

// Graph is the estimated claim dependency structure.
type Graph struct {
	cfg Config
	// neighbors maps a claim to its retained correlations, strongest
	// first.
	neighbors map[socialsensing.ClaimID][]Correlation
}

// ErrNoSeries is returned when the input carries no claims.
var ErrNoSeries = errors.New("claimdep: no claim series provided")

// EstimateGraph builds the dependency graph from per-claim evidence
// series. Series are aligned by index (interval number); lengths may
// differ — correlation uses the overlapping prefix. Intervals where both
// series are exactly zero are skipped, since a shared absence of reports
// says nothing about dependency.
func EstimateGraph(series map[socialsensing.ClaimID][]float64, cfg Config) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, ErrNoSeries
	}
	ids := make([]socialsensing.ClaimID, 0, len(series))
	for id := range series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	g := &Graph{cfg: cfg, neighbors: make(map[socialsensing.ClaimID][]Correlation)}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			r, support := pearson(series[ids[i]], series[ids[j]])
			if support < cfg.MinSupport || math.Abs(r) < cfg.MinAbsCorrelation {
				continue
			}
			c := Correlation{A: ids[i], B: ids[j], R: r, Support: support}
			g.neighbors[ids[i]] = append(g.neighbors[ids[i]], c)
			g.neighbors[ids[j]] = append(g.neighbors[ids[j]], Correlation{A: ids[j], B: ids[i], R: r, Support: support})
		}
	}
	for id := range g.neighbors {
		ns := g.neighbors[id]
		sort.Slice(ns, func(a, b int) bool {
			if math.Abs(ns[a].R) != math.Abs(ns[b].R) {
				return math.Abs(ns[a].R) > math.Abs(ns[b].R)
			}
			return ns[a].B < ns[b].B
		})
		if len(ns) > cfg.MaxNeighbors {
			ns = ns[:cfg.MaxNeighbors]
		}
		g.neighbors[id] = ns
	}
	return g, nil
}

// Neighbors returns the retained correlations of a claim, strongest first.
func (g *Graph) Neighbors(id socialsensing.ClaimID) []Correlation {
	return append([]Correlation(nil), g.neighbors[id]...)
}

// Edges returns every retained pair once, strongest first.
func (g *Graph) Edges() []Correlation {
	var out []Correlation
	for id, ns := range g.neighbors {
		for _, c := range ns {
			if c.A == id && c.A < c.B {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if math.Abs(out[i].R) != math.Abs(out[j].R) {
			return math.Abs(out[i].R) > math.Abs(out[j].R)
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Smooth blends each claim's truth posterior with its neighbours':
//
//	p'_c(t) = (1-blend)·p_c(t) + blend·Σ_n w_n · q_n(t)
//
// where w_n ∝ |R_n| over the claim's neighbours and q_n is the neighbour's
// posterior, flipped (1-p) for negative correlations. Posteriors are
// aligned by interval index; neighbours without an estimate at t
// contribute nothing. The returned map contains new slices.
func (g *Graph) Smooth(posteriors map[socialsensing.ClaimID][]float64) map[socialsensing.ClaimID][]float64 {
	out := make(map[socialsensing.ClaimID][]float64, len(posteriors))
	for id, p := range posteriors {
		smoothed := make([]float64, len(p))
		copy(smoothed, p)
		ns := g.neighbors[id]
		if len(ns) == 0 || g.cfg.Blend == 0 {
			out[id] = smoothed
			continue
		}
		totalW := 0.0
		for _, n := range ns {
			totalW += math.Abs(n.R)
		}
		for t := range smoothed {
			acc := 0.0
			accW := 0.0
			for _, n := range ns {
				q, ok := posteriors[n.B]
				if !ok || t >= len(q) {
					continue
				}
				v := q[t]
				if n.R < 0 {
					v = 1 - v
				}
				w := math.Abs(n.R) / totalW
				acc += w * v
				accW += w
			}
			if accW > 0 {
				neighbourMean := acc / accW
				smoothed[t] = (1-g.cfg.Blend)*p[t] + g.cfg.Blend*neighbourMean
			}
		}
		out[id] = smoothed
	}
	return out
}

// Threshold converts posteriors into hard truth values at 0.5.
func Threshold(posteriors map[socialsensing.ClaimID][]float64) map[socialsensing.ClaimID][]socialsensing.TruthValue {
	out := make(map[socialsensing.ClaimID][]socialsensing.TruthValue, len(posteriors))
	for id, p := range posteriors {
		tv := make([]socialsensing.TruthValue, len(p))
		for t, v := range p {
			if v >= 0.5 {
				tv[t] = socialsensing.True
			} else {
				tv[t] = socialsensing.False
			}
		}
		out[id] = tv
	}
	return out
}

// pearson computes the correlation over the overlapping prefix of a and b,
// skipping intervals where both are zero, and returns it with the number
// of samples used. Degenerate inputs (constant series) yield 0.
func pearson(a, b []float64) (float64, int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var xs, ys []float64
	for i := 0; i < n; i++ {
		if a[i] == 0 && b[i] == 0 {
			continue
		}
		xs = append(xs, a[i])
		ys = append(ys, b[i])
	}
	m := len(xs)
	if m < 2 {
		return 0, m
	}
	var sumX, sumY float64
	for i := 0; i < m; i++ {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(m), sumY/float64(m)
	var cov, varX, varY float64
	for i := 0; i < m; i++ {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		cov += dx * dy
		varX += dx * dx
		varY += dy * dy
	}
	if varX == 0 || varY == 0 {
		return 0, m
	}
	return cov / math.Sqrt(varX*varY), m
}
