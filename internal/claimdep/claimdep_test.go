package claimdep

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// mkSeries builds a noisy evidence series from a base signal.
func mkSeries(base []float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v + rng.NormFloat64()*noise
	}
	return out
}

func squareWave(n, period int, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if (i/period)%2 == 0 {
			out[i] = amp
		} else {
			out[i] = -amp
		}
	}
	return out
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	r, n := pearson(a, b)
	if math.Abs(r-1) > 1e-12 || n != 5 {
		t.Errorf("perfect correlation = %v (n=%d)", r, n)
	}
	inv := []float64{-1, -2, -3, -4, -5}
	r, _ = pearson(a, inv)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %v", r)
	}
	constant := []float64{3, 3, 3, 3, 3}
	if r, _ := pearson(a, constant); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	// Shared zeros are skipped.
	az := []float64{0, 0, 1, 2}
	bz := []float64{0, 0, 2, 4}
	if _, n := pearson(az, bz); n != 2 {
		t.Errorf("shared-zero support = %d, want 2", n)
	}
	if r, n := pearson([]float64{1}, []float64{1}); r != 0 || n != 1 {
		t.Errorf("degenerate input = %v, %d", r, n)
	}
}

func TestEstimateGraphFindsCorrelatedPairs(t *testing.T) {
	base := squareWave(60, 10, 3)
	series := map[socialsensing.ClaimID][]float64{
		"a":     mkSeries(base, 0.5, 1),
		"b":     mkSeries(base, 0.5, 2), // correlated with a
		"anti":  mkSeries(negate(base), 0.5, 3),
		"indep": mkSeries(squareWave(60, 7, 3), 0.5, 4),
	}
	g, err := EstimateGraph(series, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := func(x, y socialsensing.ClaimID) *Correlation {
		for _, c := range g.Neighbors(x) {
			if c.B == y {
				return &c
			}
		}
		return nil
	}
	ab := found("a", "b")
	if ab == nil || ab.R < 0.8 {
		t.Fatalf("a-b correlation missing or weak: %+v", ab)
	}
	aAnti := found("a", "anti")
	if aAnti == nil || aAnti.R > -0.8 {
		t.Fatalf("a-anti correlation missing or weak: %+v", aAnti)
	}
	if len(g.Edges()) == 0 {
		t.Fatal("no edges")
	}
	// Symmetry.
	if ba := found("b", "a"); ba == nil || math.Abs(ba.R-ab.R) > 1e-12 {
		t.Errorf("graph not symmetric: %+v vs %+v", ab, ba)
	}
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = -v
	}
	return out
}

func TestEstimateGraphThresholds(t *testing.T) {
	base := squareWave(40, 8, 2)
	series := map[socialsensing.ClaimID][]float64{
		"a": mkSeries(base, 0.2, 1),
		"b": mkSeries(base, 8.0, 2), // drowned in noise: weak correlation
	}
	cfg := DefaultConfig()
	cfg.MinAbsCorrelation = 0.9
	g, err := EstimateGraph(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges()) != 0 {
		t.Errorf("weak pair survived threshold: %+v", g.Edges())
	}
	// Short overlap is rejected by MinSupport.
	cfg = DefaultConfig()
	cfg.MinSupport = 100
	g, _ = EstimateGraph(series, cfg)
	if len(g.Edges()) != 0 {
		t.Error("insufficient support accepted")
	}
}

func TestEstimateGraphValidation(t *testing.T) {
	if _, err := EstimateGraph(nil, DefaultConfig()); err == nil {
		t.Error("empty input accepted")
	}
	bad := DefaultConfig()
	bad.Blend = 1
	if _, err := EstimateGraph(map[socialsensing.ClaimID][]float64{"a": {1}}, bad); err == nil {
		t.Error("blend=1 accepted")
	}
	bad = DefaultConfig()
	bad.MinSupport = 1
	if _, err := EstimateGraph(map[socialsensing.ClaimID][]float64{"a": {1}}, bad); err == nil {
		t.Error("support=1 accepted")
	}
}

func TestMaxNeighborsBounds(t *testing.T) {
	base := squareWave(60, 10, 3)
	series := make(map[socialsensing.ClaimID][]float64)
	for i := 0; i < 10; i++ {
		series[socialsensing.ClaimID(rune('a'+i))] = mkSeries(base, 0.3, int64(i))
	}
	cfg := DefaultConfig()
	cfg.MaxNeighbors = 2
	g, err := EstimateGraph(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := range series {
		if n := len(g.Neighbors(id)); n > 2 {
			t.Errorf("claim %s has %d neighbours, want <= 2", id, n)
		}
	}
}

func TestSmoothPullsTowardNeighbors(t *testing.T) {
	base := squareWave(60, 10, 3)
	series := map[socialsensing.ClaimID][]float64{
		"strong": mkSeries(base, 0.3, 1),
		"twin":   mkSeries(base, 0.3, 2),
	}
	g, err := EstimateGraph(series, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// strong is confident; twin is uncertain at t=0.
	posteriors := map[socialsensing.ClaimID][]float64{
		"strong": {0.95, 0.9},
		"twin":   {0.5, 0.5},
	}
	smoothed := g.Smooth(posteriors)
	if smoothed["twin"][0] <= 0.5 {
		t.Errorf("twin posterior not pulled up: %v", smoothed["twin"])
	}
	// The confident claim moves only slightly.
	if math.Abs(smoothed["strong"][0]-0.95) > 0.15 {
		t.Errorf("strong posterior moved too much: %v", smoothed["strong"][0])
	}
	// Inputs must not be mutated.
	if posteriors["twin"][0] != 0.5 {
		t.Error("Smooth mutated its input")
	}
}

func TestSmoothFlipsForAntiCorrelation(t *testing.T) {
	base := squareWave(60, 10, 3)
	series := map[socialsensing.ClaimID][]float64{
		"a":    mkSeries(base, 0.3, 1),
		"anti": mkSeries(negate(base), 0.3, 2),
	}
	g, err := EstimateGraph(series, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	posteriors := map[socialsensing.ClaimID][]float64{
		"a":    {0.5},
		"anti": {0.95}, // anti is confidently true => a should lean false
	}
	smoothed := g.Smooth(posteriors)
	if smoothed["a"][0] >= 0.5 {
		t.Errorf("anti-correlated evidence did not push down: %v", smoothed["a"][0])
	}
}

func TestSmoothWithoutNeighborsIsIdentity(t *testing.T) {
	series := map[socialsensing.ClaimID][]float64{
		"lonely": squareWave(40, 5, 2),
		"other":  squareWave(40, 7, 2),
	}
	cfg := DefaultConfig()
	cfg.MinAbsCorrelation = 0.99
	g, err := EstimateGraph(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	posteriors := map[socialsensing.ClaimID][]float64{"lonely": {0.2, 0.8}}
	smoothed := g.Smooth(posteriors)
	for i, v := range smoothed["lonely"] {
		if v != posteriors["lonely"][i] {
			t.Errorf("identity smoothing changed value %d: %v", i, v)
		}
	}
}

func TestSmoothHandlesLengthMismatch(t *testing.T) {
	base := squareWave(60, 10, 3)
	series := map[socialsensing.ClaimID][]float64{
		"a": mkSeries(base, 0.3, 1),
		"b": mkSeries(base, 0.3, 2),
	}
	g, err := EstimateGraph(series, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	posteriors := map[socialsensing.ClaimID][]float64{
		"a": {0.5, 0.5, 0.5},
		"b": {0.9}, // shorter: only t=0 contributes
	}
	smoothed := g.Smooth(posteriors)
	if smoothed["a"][0] <= 0.5 {
		t.Error("t=0 neighbour evidence ignored")
	}
	if smoothed["a"][1] != 0.5 || smoothed["a"][2] != 0.5 {
		t.Error("missing neighbour estimates should leave posterior unchanged")
	}
}

func TestThreshold(t *testing.T) {
	got := Threshold(map[socialsensing.ClaimID][]float64{
		"c": {0.2, 0.5, 0.9},
	})
	want := []socialsensing.TruthValue{socialsensing.False, socialsensing.True, socialsensing.True}
	for i, v := range want {
		if got["c"][i] != v {
			t.Errorf("threshold[%d] = %v, want %v", i, got["c"][i], v)
		}
	}
}
