package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/control"
	"github.com/social-sensing/sstd/internal/dtm"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// Mode names the two load shapes the harness generates.
const (
	// ModeOpen is open-loop Poisson arrivals: jobs arrive at the offered
	// rate regardless of completions, the way a live stream would.
	ModeOpen = "open"
	// ModeClosed is closed-loop fixed concurrency: the offered "rate" is
	// the number of outstanding jobs kept in flight; a completion triggers
	// the next submission.
	ModeClosed = "closed"
)

// Config parameterizes a load sweep.
type Config struct {
	// Trace supplies the replayed jobs: each TD job is one claim's report
	// stream, cycled as long as the step needs arrivals.
	Trace *socialsensing.Trace
	// Workers lists the pool sizes to sweep (default {1, 2}).
	Workers []int
	// Mode is ModeOpen (default) or ModeClosed.
	Mode string
	// StartRate is the first offered load: jobs/second in open mode, the
	// concurrency level in closed mode. Default 2.
	StartRate float64
	// RateFactor is the geometric ramp between steps (default 2).
	RateFactor float64
	// MaxRate is the safety cap on offered load — the sweep stops there
	// even if the miss threshold was never crossed. Default 256.
	MaxRate float64
	// Deadline is the per-job completion budget; a job finishing later
	// counts as a miss. Default 500ms.
	Deadline time.Duration
	// MissThreshold is the deadline-miss fraction that defines the knee
	// (default 0.5).
	MissThreshold float64
	// StepDuration is the measurement window per offered-load step
	// (default 2s).
	StepDuration time.Duration
	// Duration is the safety cap on the whole sweep's wall time; steps
	// that would start past it are skipped and the report is marked
	// truncated. Default 60s.
	Duration time.Duration
	// TasksPerJob splits each TD job (default 4).
	TasksPerJob int
	// WorkDelay adds artificial per-report execution cost, emulating
	// computation-heavy loads (default 0).
	WorkDelay time.Duration
	// TaskBatch is the master's task-batch size for each step's cluster:
	// up to this many tasks per wire frame with a pipelined ack window
	// (0 = the lock-step one-task-per-frame protocol).
	TaskBatch int
	// WCET supplies the Eq. 10-12 parameters the fitted capacity model is
	// compared against (zero values skip the comparison columns).
	WCET control.WCETModel
	// AdmitFactor drives the admission validation phase: after the fit,
	// one extra step runs at AdmitFactor × the knee rate with the fitted
	// rate feeding the admission gate, checking that accepted jobs stay
	// under the miss threshold while rejections carry errtrace provenance.
	// <= 0 skips the phase. Default 1.5.
	AdmitFactor float64
	// Seed drives arrival randomness and the scheduler.
	Seed int64
	// SchedShards overrides each step cluster's scheduler shard count
	// (0 = GOMAXPROCS; see workqueue.MasterConfig.SchedShards).
	SchedShards int
	// Logf, when set, receives progress lines (fmt.Printf signature).
	Logf func(format string, args ...any)

	// Telemetry plane (all optional; nil leaves every step's cluster
	// exactly as before). Metrics is the master-side registry each step's
	// cluster records into; Telemetry retains worker TelemetryShip frames
	// across steps; FlightRec + ClusterDumps arm cross-host FreezeRings
	// collection on the step's master; WorkerFlightRec hands each pool
	// worker its own recorder so its probe rings land on a per-host lane
	// in the merged cluster trace.
	Metrics         *obs.Registry
	Telemetry       *tsdb.Store
	FlightRec       *flightrec.Recorder
	ClusterDumps    *workqueue.ClusterDumpConfig
	WorkerFlightRec func(id string) *flightrec.Recorder
}

func (c *Config) withDefaults() Config {
	out := *c
	if len(out.Workers) == 0 {
		out.Workers = []int{1, 2}
	}
	if out.Mode == "" {
		out.Mode = ModeOpen
	}
	if out.StartRate <= 0 {
		out.StartRate = 2
	}
	if out.RateFactor <= 1 {
		out.RateFactor = 2
	}
	if out.MaxRate <= 0 {
		out.MaxRate = 256
	}
	if out.Deadline <= 0 {
		out.Deadline = 500 * time.Millisecond
	}
	if out.MissThreshold <= 0 {
		out.MissThreshold = 0.5
	}
	if out.StepDuration <= 0 {
		out.StepDuration = 2 * time.Second
	}
	if out.Duration <= 0 {
		out.Duration = 60 * time.Second
	}
	if out.TasksPerJob <= 0 {
		out.TasksPerJob = 4
	}
	if out.AdmitFactor == 0 {
		out.AdmitFactor = 1.5
	}
	return out
}

// SweepPoint is one measured (pool size, offered load) cell.
type SweepPoint struct {
	Workers int    `json:"workers"`
	Mode    string `json:"mode"`
	// OfferedRate is jobs/second (open) or the concurrency level (closed).
	OfferedRate float64 `json:"offeredRate"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	// Missed counts completed jobs that blew their deadline; Undrained
	// counts jobs still unfinished when the drain window closed (they
	// count toward MissRate too — an unfinished job missed by definition).
	Missed    int `json:"missed"`
	Undrained int `json:"undrained"`
	// Rejected counts admission-gate refusals (validation phase only).
	Rejected int     `json:"rejected"`
	MissRate float64 `json:"missRate"`
	// JobsPerSec / TasksPerSec are completion throughput over the
	// first-submit→last-result window.
	JobsPerSec  float64 `json:"jobsPerSec"`
	TasksPerSec float64 `json:"tasksPerSec"`
	MeanMs      float64 `json:"meanMs"`
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

// AdmissionValidation is the closed-loop check: the fitted capacity model
// feeding the admission gate at an offered load deliberately past the
// knee, with the gate expected to keep accepted jobs under the miss
// threshold by refusing the excess.
type AdmissionValidation struct {
	Workers     int     `json:"workers"`
	OfferedRate float64 `json:"offeredRate"`
	AdmitFactor float64 `json:"admitFactor"`
	// FittedRate is the per-worker service rate handed to the gate.
	FittedRate float64 `json:"fittedRate"`
	// AcceptedMissRate is the miss rate among admitted jobs only.
	AcceptedMissRate float64 `json:"acceptedMissRate"`
	// Held reports the acceptance test: accepted jobs stayed under the
	// sweep's miss threshold while at least one job was rejected.
	Held bool `json:"held"`
	// RejectionTraces counts rejection log lines that carried an
	// err_trace return path (must equal the rejections).
	RejectionTraces int        `json:"rejectionTraces"`
	Point           SweepPoint `json:"point"`
}

// Report is the BENCH_load.json payload.
type Report struct {
	Trace         string  `json:"trace"`
	Mode          string  `json:"mode"`
	DeadlineMs    int64   `json:"deadlineMs"`
	MissThreshold float64 `json:"missThreshold"`
	TasksPerJob   int     `json:"tasksPerJob"`
	StepMs        int64   `json:"stepMs"`
	WorkDelayUs   int64   `json:"workDelayUs"`
	// Truncated marks a sweep cut short by the -duration or -max-rate
	// safety caps before every pool size crossed its knee.
	Truncated bool                 `json:"truncated"`
	Sweep     []SweepPoint         `json:"sweep"`
	Knees     []Knee               `json:"knees"`
	Fit       CapacityFit          `json:"fit"`
	Admission *AdmissionValidation `json:"admission,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Run executes the sweep and (when AdmitFactor > 0) the admission
// validation phase, returning the capacity report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Trace == nil {
		return nil, errors.New("loadgen: config needs a trace")
	}
	if cfg.Mode != "" && cfg.Mode != ModeOpen && cfg.Mode != ModeClosed {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	c := cfg.withDefaults()
	r := &runner{cfg: c, start: time.Now()}
	if err := r.loadJobs(); err != nil {
		return nil, err
	}
	rep := &Report{
		Trace:         c.Trace.Name,
		Mode:          c.Mode,
		DeadlineMs:    c.Deadline.Milliseconds(),
		MissThreshold: c.MissThreshold,
		TasksPerJob:   c.TasksPerJob,
		StepMs:        c.StepDuration.Milliseconds(),
		WorkDelayUs:   c.WorkDelay.Microseconds(),
	}
	for _, w := range c.Workers {
		knee, points, truncated, err := r.sweepWorkers(ctx, w)
		if err != nil {
			return nil, err
		}
		rep.Sweep = append(rep.Sweep, points...)
		rep.Knees = append(rep.Knees, knee)
		rep.Truncated = rep.Truncated || truncated
	}
	rep.Fit = fitCapacity(rep.Knees, c.TasksPerJob, r.meanTaskReports, c.WCET)
	r.logf("fit: %.2f tasks/s per worker (predicted %.2f, divergence %+.1f%%)",
		rep.Fit.PerWorkerTasksPerSec, rep.Fit.PredictedTasksPerSec, rep.Fit.DivergencePct)
	if c.AdmitFactor > 0 && rep.Fit.PerWorkerTasksPerSec > 0 && len(rep.Knees) > 0 {
		av, err := r.validateAdmission(ctx, rep)
		if err != nil {
			return nil, err
		}
		rep.Admission = av
	}
	return rep, nil
}

// runner carries the sweep's shared state.
type runner struct {
	cfg   Config
	start time.Time
	// jobReports cycles as the arrival source; meanTaskReports is the
	// average per-task data size D for the WCET comparison.
	jobReports      [][]socialsensing.Report
	meanTaskReports float64
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// loadJobs groups the trace per claim (sorted, for determinism) and
// derives the mean task size.
func (r *runner) loadJobs() error {
	byClaim := r.cfg.Trace.ReportsByClaim()
	claims := make([]string, 0, len(byClaim))
	for c := range byClaim {
		claims = append(claims, string(c))
	}
	sort.Strings(claims)
	total := 0
	for _, c := range claims {
		reports := byClaim[socialsensing.ClaimID(c)]
		if len(reports) == 0 {
			continue
		}
		r.jobReports = append(r.jobReports, reports)
		total += len(reports)
	}
	if len(r.jobReports) == 0 {
		return errors.New("loadgen: trace has no reports")
	}
	r.meanTaskReports = float64(total) / float64(len(r.jobReports)*r.cfg.TasksPerJob)
	return nil
}

// budgetLeft reports whether another step fits inside the -duration cap.
func (r *runner) budgetLeft() bool {
	return time.Since(r.start)+r.cfg.StepDuration <= r.cfg.Duration
}

// sweepWorkers ramps the offered load for one pool size until the miss
// threshold is crossed or a safety cap stops the ramp.
func (r *runner) sweepWorkers(ctx context.Context, workers int) (Knee, []SweepPoint, bool, error) {
	knee := Knee{Workers: workers, Mode: r.cfg.Mode}
	var points []SweepPoint
	truncated := false
	rate := r.cfg.StartRate
	for {
		if ctx.Err() != nil {
			return knee, points, truncated, ctx.Err()
		}
		if !r.budgetLeft() {
			truncated = true
			r.logf("workers=%d: duration budget exhausted at rate %.1f", workers, rate)
			break
		}
		p, err := r.step(ctx, workers, rate, nil, nil)
		if err != nil {
			return knee, points, truncated, err
		}
		points = append(points, p)
		r.logf("workers=%d rate=%.1f (%s): %d submitted, %.1f jobs/s, miss %.0f%%, p95 %.0fms",
			workers, rate, r.cfg.Mode, p.Submitted, p.JobsPerSec, p.MissRate*100, p.P95Ms)
		if p.MissRate > r.cfg.MissThreshold {
			knee.Crossed = true
			break
		}
		// Highest in-threshold point so far = current knee candidate.
		knee.Rate = p.OfferedRate
		knee.JobsPerSec = p.JobsPerSec
		knee.TasksPerSec = p.TasksPerSec
		knee.MissRate = p.MissRate
		knee.P95Ms = p.P95Ms
		rate *= r.cfg.RateFactor
		if rate > r.cfg.MaxRate {
			truncated = true
			r.logf("workers=%d: max-rate cap %.1f reached", workers, r.cfg.MaxRate)
			break
		}
	}
	if knee.Rate == 0 && len(points) > 0 {
		// Even the first step was over threshold: the knee is below the
		// start rate; report the first point as the (crossed) bound.
		p := points[0]
		knee.Rate = p.OfferedRate
		knee.JobsPerSec = p.JobsPerSec
		knee.TasksPerSec = p.TasksPerSec
		knee.MissRate = p.MissRate
		knee.P95Ms = p.P95Ms
	}
	return knee, points, truncated, nil
}

// step runs one measurement window: a fresh in-process cluster (master +
// workers over net.Pipe, full wire protocol) at the given pool size, fed
// arrivals at the offered load.
func (r *runner) step(ctx context.Context, workers int, rate float64, admission *workqueue.AdmissionConfig, logger *obs.Logger) (SweepPoint, error) {
	cfg := dtm.DefaultConfig(r.cfg.Trace.Start)
	cfg.ACS.WindowIntervals = 3
	cfg.TasksPerJob = r.cfg.TasksPerJob
	cfg.Workers = workers
	cfg.WorkDelay = r.cfg.WorkDelay
	cfg.TaskBatch = r.cfg.TaskBatch
	cfg.Seed = r.cfg.Seed
	cfg.SchedShards = r.cfg.SchedShards
	cfg.Admission = admission
	cfg.Logger = logger
	if r.cfg.Metrics != nil {
		cfg.Metrics = r.cfg.Metrics
	}
	cfg.Telemetry = r.cfg.Telemetry
	cfg.FlightRec = r.cfg.FlightRec
	cfg.ClusterDumps = r.cfg.ClusterDumps
	cfg.WorkerFlightRec = r.cfg.WorkerFlightRec
	if rec := flightrec.Active(); rec != nil {
		// Give the flight recorder this step's span timeline: each step
		// runs a fresh cluster, so deep dives triggered here (deadline-miss
		// bursts past the knee) nest probe events under this step's spans.
		tracer := obs.NewTracer(0)
		cfg.Tracer = tracer
		rec.SetTracer(tracer)
	}
	m, err := dtm.New(cfg)
	if err != nil {
		return SweepPoint{}, err
	}
	m.Start(ctx)
	defer m.Close()

	point := SweepPoint{Workers: workers, Mode: r.cfg.Mode, OfferedRate: rate}
	var (
		received                  atomic.Int64
		lastResult                atomic.Int64 // unix nanos of the newest result
		latencies                 []float64
		completed, failed, missed int
	)
	collectorDone := make(chan struct{})
	// Closed-loop tokens: one per concurrency slot, returned on completion.
	concurrency := int(rate + 0.5)
	if concurrency < 1 {
		concurrency = 1
	}
	sem := make(chan struct{}, concurrency+1)
	for i := 0; i < concurrency; i++ {
		sem <- struct{}{}
	}
	go func() {
		defer close(collectorDone)
		for res := range m.Results() {
			lastResult.Store(time.Now().UnixNano())
			received.Add(1)
			if res.Err != nil {
				failed++
			} else {
				completed++
				latencies = append(latencies, float64(res.Elapsed)/float64(time.Millisecond))
				if !res.MetDeadline {
					missed++
				}
			}
			select {
			case sem <- struct{}{}:
			default:
			}
		}
	}()

	rng := rand.New(rand.NewSource(r.cfg.Seed*7919 + int64(workers)*31 + int64(rate*1000)))
	stepStart := time.Now()
	stepEnd := stepStart.Add(r.cfg.StepDuration)
	seq := 0
	for time.Now().Before(stepEnd) && ctx.Err() == nil {
		if r.cfg.Mode == ModeOpen {
			// Poisson arrivals: exponential inter-arrival, mean 1/rate.
			wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			if !sleepUntil(ctx, time.Now().Add(wait), stepEnd) {
				break
			}
		} else {
			// Fixed concurrency: wait for a free slot.
			if !acquire(ctx, sem, stepEnd) {
				break
			}
		}
		reports := r.jobReports[seq%len(r.jobReports)]
		// Synthesized claim IDs keep every job unique across the cycle
		// (the dtm rejects duplicate in-flight job IDs).
		id := socialsensing.ClaimID(fmt.Sprintf("%s#w%dr%.0f-%d",
			reports[0].Claim, workers, rate*10, seq))
		seq++
		err := m.SubmitJob(id, reports, r.cfg.Deadline)
		switch {
		case err == nil:
			point.Submitted++
		case errors.Is(err, workqueue.ErrAdmissionRejected):
			point.Rejected++
		default:
			return SweepPoint{}, fmt.Errorf("loadgen: submit: %w", err)
		}
	}

	// Drain: every submitted job owes exactly one result. Undrained jobs
	// past the window count as misses — a job that cannot finish within
	// several deadlines of the step closing has certainly missed its own.
	drainBudget := 4*r.cfg.Deadline + 2*time.Second
	drainEnd := time.Now().Add(drainBudget)
	for received.Load() < int64(point.Submitted) && time.Now().Before(drainEnd) && ctx.Err() == nil {
		time.Sleep(5 * time.Millisecond)
	}
	m.Close() // closes Results; the collector drains out
	<-collectorDone

	point.Completed = completed
	point.Failed = failed
	point.Missed = missed
	point.Undrained = point.Submitted - int(received.Load())
	if point.Submitted > 0 {
		point.MissRate = float64(point.Missed+point.Failed+point.Undrained) / float64(point.Submitted)
	}
	elapsed := r.cfg.StepDuration
	if last := lastResult.Load(); last > 0 {
		if d := time.Unix(0, last).Sub(stepStart); d > 0 {
			elapsed = d
		}
	}
	point.JobsPerSec = float64(completed) / elapsed.Seconds()
	point.TasksPerSec = point.JobsPerSec * float64(r.cfg.TasksPerJob)
	point.MeanMs = mean(latencies)
	point.P50Ms = percentile(latencies, 50)
	point.P95Ms = percentile(latencies, 95)
	point.P99Ms = percentile(latencies, 99)
	return point, nil
}

// validateAdmission reruns the largest pool at AdmitFactor × its knee
// rate with the fitted capacity model feeding the admission gate: the
// gate must keep accepted jobs under the miss threshold and leave an
// errtraced rejection log line per refused job.
func (r *runner) validateAdmission(ctx context.Context, rep *Report) (*AdmissionValidation, error) {
	knee := rep.Knees[0]
	for _, k := range rep.Knees {
		if k.Workers > knee.Workers {
			knee = k
		}
	}
	offered := knee.Rate * r.cfg.AdmitFactor
	logger := obs.NewLogger(nil, obs.LevelWarn, 4096)
	admission := &workqueue.AdmissionConfig{
		TaskRatePerWorker: rep.Fit.PerWorkerTasksPerSec,
		Deadline:          r.cfg.Deadline,
	}
	r.logf("admission validation: workers=%d offered=%.1f (%.1f× knee), fitted rate %.2f tasks/s",
		knee.Workers, offered, r.cfg.AdmitFactor, admission.TaskRatePerWorker)
	point, err := r.step(ctx, knee.Workers, offered, admission, logger)
	if err != nil {
		return nil, err
	}
	av := &AdmissionValidation{
		Workers:     knee.Workers,
		OfferedRate: offered,
		AdmitFactor: r.cfg.AdmitFactor,
		FittedRate:  admission.TaskRatePerWorker,
		Point:       point,
	}
	if point.Submitted > 0 {
		av.AcceptedMissRate = float64(point.Missed+point.Failed+point.Undrained) / float64(point.Submitted)
	}
	for _, e := range logger.Entries() {
		if e.Msg != "job rejected by admission control" {
			continue
		}
		if tr, ok := e.Fields["err_trace"].([]string); ok && len(tr) > 0 {
			av.RejectionTraces++
		}
	}
	av.Held = av.AcceptedMissRate <= r.cfg.MissThreshold && point.Rejected > 0 &&
		av.RejectionTraces >= point.Rejected
	r.logf("admission validation: %d admitted (miss %.0f%%), %d rejected (%d with err_trace), held=%t",
		point.Submitted, av.AcceptedMissRate*100, point.Rejected, av.RejectionTraces, av.Held)
	return av, nil
}

// sleepUntil sleeps to the earlier of t and cap, returning false when the
// cap (step end) arrived first or ctx died.
func sleepUntil(ctx context.Context, t, cap time.Time) bool {
	if t.After(cap) {
		d := time.Until(cap)
		if d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		return false
	}
	if d := time.Until(t); d > 0 {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
		}
	}
	return ctx.Err() == nil
}

// acquire takes a concurrency token before the step ends.
func acquire(ctx context.Context, sem chan struct{}, end time.Time) bool {
	d := time.Until(end)
	if d <= 0 {
		return false
	}
	select {
	case <-ctx.Done():
		return false
	case <-sem:
		return true
	case <-time.After(d):
		return false
	}
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
