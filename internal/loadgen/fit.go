// Package loadgen is the closed-loop load harness of the repo: it replays
// tracegen streams against a real master/worker cluster at configurable
// arrival rates, sweeps the offered load per worker-pool size until the
// deadline-miss rate crosses a threshold (the knee), and fits the observed
// saturation throughput into a capacity model compared against the paper's
// Eq. 10-12 WCET predictions. The fitted per-worker service rate feeds the
// workqueue admission gate, closing the loop from measurement to control.
package loadgen

import (
	"math"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/control"
)

// Knee is the capacity knee of one worker-pool size: the highest measured
// offered load whose deadline-miss rate stayed within the threshold, and
// the throughput the pool sustained there.
type Knee struct {
	Workers int     `json:"workers"`
	Mode    string  `json:"mode"`
	Rate    float64 `json:"rate"`
	// Crossed reports whether the sweep actually drove the pool past the
	// miss threshold; false means the knee is a lower bound (the sweep hit
	// its rate or duration cap first).
	Crossed bool `json:"crossed"`
	// JobsPerSec / TasksPerSec are the completion throughput at the knee.
	JobsPerSec  float64 `json:"jobsPerSec"`
	TasksPerSec float64 `json:"tasksPerSec"`
	// MissRate is the deadline-miss fraction observed at the knee point.
	MissRate float64 `json:"missRate"`
	// P95Ms is the job latency tail at the knee.
	P95Ms float64 `json:"p95Ms"`
}

// CapacityFit is the measured capacity model: a single per-worker service
// rate fitted across pool sizes (least squares through the origin over
// saturation throughput X_W ≈ μ·W), compared against what the Eq. 10-12
// WCET parameters predict for the same task size.
type CapacityFit struct {
	// PerWorkerTasksPerSec is the fitted per-worker task service rate μ —
	// the number the admission gate consumes (-admission-rate).
	PerWorkerTasksPerSec float64 `json:"perWorkerTasksPerSec"`
	// PerWorkerJobsPerSec is μ scaled to whole jobs (μ / tasks-per-job).
	PerWorkerJobsPerSec float64 `json:"perWorkerJobsPerSec"`
	// MeanTaskReports is the average task data size D the predictions use.
	MeanTaskReports float64 `json:"meanTaskReports"`
	// PredictedTasksPerSec is the WCET model's per-worker rate
	// 1/TaskTime(D) (Eq. 10) for comparison with the fitted μ.
	PredictedTasksPerSec float64 `json:"predictedTasksPerSec"`
	// DivergencePct is (measured-predicted)/predicted × 100: positive
	// means the cluster outran the model, negative that the model was
	// optimistic.
	DivergencePct float64 `json:"divergencePct"`
	// EffectiveTheta2Us back-solves Eq. 12 from the measurement: with
	// X_W·(D/task) reports/s drained per worker, θ2_eff = 1/(reports per
	// worker-second), in microseconds per report.
	EffectiveTheta2Us float64 `json:"effectiveTheta2Us"`
	// RSquared grades the linear fit X_W ≈ μ·W across pool sizes (1 =
	// perfectly linear scaling; meaningful only with 2+ pool sizes).
	RSquared float64 `json:"rSquared"`
}

// fitCapacity fits μ through the origin over (workers, saturation task
// throughput) pairs and derives the WCET comparison columns. meanTaskReports
// is the average per-task data size; wcet supplies the Eq. 10 prediction.
func fitCapacity(knees []Knee, tasksPerJob int, meanTaskReports float64, wcet control.WCETModel) CapacityFit {
	var sxy, sxx float64
	for _, k := range knees {
		w := float64(k.Workers)
		sxy += w * k.TasksPerSec
		sxx += w * w
	}
	fit := CapacityFit{MeanTaskReports: meanTaskReports}
	if sxx > 0 {
		fit.PerWorkerTasksPerSec = sxy / sxx
	}
	if tasksPerJob > 0 {
		fit.PerWorkerJobsPerSec = fit.PerWorkerTasksPerSec / float64(tasksPerJob)
	}
	// R² against the through-origin line.
	if len(knees) >= 2 {
		var mean float64
		for _, k := range knees {
			mean += k.TasksPerSec
		}
		mean /= float64(len(knees))
		var ssRes, ssTot float64
		for _, k := range knees {
			pred := fit.PerWorkerTasksPerSec * float64(k.Workers)
			ssRes += (k.TasksPerSec - pred) * (k.TasksPerSec - pred)
			ssTot += (k.TasksPerSec - mean) * (k.TasksPerSec - mean)
		}
		if ssTot > 0 {
			fit.RSquared = 1 - ssRes/ssTot
		} else if ssRes == 0 {
			fit.RSquared = 1
		}
	}
	if tt := wcet.TaskTime(meanTaskReports); tt > 0 {
		fit.PredictedTasksPerSec = float64(time.Second) / float64(tt)
	}
	if fit.PredictedTasksPerSec > 0 {
		fit.DivergencePct = (fit.PerWorkerTasksPerSec - fit.PredictedTasksPerSec) /
			fit.PredictedTasksPerSec * 100
	}
	// Eq. 12 reads JobWCET = D·θ2/(W·prio): one worker drains 1/θ2
	// reports per second, so the measured reports-per-worker-second rate
	// inverts to an effective θ2.
	if rps := fit.PerWorkerTasksPerSec * meanTaskReports; rps > 0 {
		fit.EffectiveTheta2Us = 1e6 / rps
	}
	return fit
}

// percentile returns the p-th percentile (0-100) of values, interpolating
// between ranks; NaN-free: empty input returns 0.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
