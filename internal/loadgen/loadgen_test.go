package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/control"
	"github.com/social-sensing/sstd/internal/tracegen"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestFitCapacityLinear(t *testing.T) {
	// Perfect linear scaling: X_W = 100·W tasks/s.
	knees := []Knee{
		{Workers: 1, TasksPerSec: 100},
		{Workers: 2, TasksPerSec: 200},
		{Workers: 4, TasksPerSec: 400},
	}
	wcet := control.WCETModel{InitTime: time.Millisecond, Theta1: 10 * time.Microsecond}
	fit := fitCapacity(knees, 4, 500, wcet)
	approx(t, "PerWorkerTasksPerSec", fit.PerWorkerTasksPerSec, 100, 1e-9)
	approx(t, "PerWorkerJobsPerSec", fit.PerWorkerJobsPerSec, 25, 1e-9)
	approx(t, "RSquared", fit.RSquared, 1, 1e-9)
	// Eq. 10: TaskTime(500) = 1ms + 500·10µs = 6ms → 166.67 tasks/s.
	approx(t, "PredictedTasksPerSec", fit.PredictedTasksPerSec, 1000.0/6, 0.01)
	wantDiv := (100 - 1000.0/6) / (1000.0 / 6) * 100
	approx(t, "DivergencePct", fit.DivergencePct, wantDiv, 0.01)
	// 100 tasks/s × 500 reports/task = 50k reports/s → θ2_eff = 20µs.
	approx(t, "EffectiveTheta2Us", fit.EffectiveTheta2Us, 20, 1e-9)
}

func TestFitCapacitySublinear(t *testing.T) {
	// Sub-linear scaling must pull R² below 1 and μ below the 1-worker rate.
	knees := []Knee{
		{Workers: 1, TasksPerSec: 100},
		{Workers: 4, TasksPerSec: 250},
	}
	fit := fitCapacity(knees, 4, 100, control.WCETModel{})
	// μ = (1·100 + 4·250)/(1+16) = 1100/17.
	approx(t, "PerWorkerTasksPerSec", fit.PerWorkerTasksPerSec, 1100.0/17, 1e-9)
	if fit.RSquared >= 1 {
		t.Errorf("RSquared = %v, want < 1 for sub-linear scaling", fit.RSquared)
	}
	// Zero WCET model skips the prediction columns.
	if fit.PredictedTasksPerSec != 0 || fit.DivergencePct != 0 {
		t.Errorf("zero WCET model should skip prediction, got %+v", fit)
	}
}

func TestFitCapacityEmpty(t *testing.T) {
	fit := fitCapacity(nil, 4, 0, control.WCETModel{})
	if fit.PerWorkerTasksPerSec != 0 || fit.RSquared != 0 {
		t.Errorf("empty fit should be zero, got %+v", fit)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {95, 48}, {110, 50}, {-5, 10},
	}
	for _, c := range cases {
		approx(t, "percentile", percentile(vals, c.p), c.want, 1e-9)
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("percentile mutated its input")
	}
}

// TestRunSmokeSweep drives a miniature sweep end-to-end: real cluster,
// tiny trace, short steps. It asserts the report's shape, that the ramp
// crosses the knee (the work delay makes a single worker saturate fast),
// and that the admission validation phase produces errtraced rejections.
func TestRunSmokeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep needs a few wall-clock seconds")
	}
	g, err := tracegen.New(tracegen.BostonBombing(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(0.02)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:         tr,
		Workers:       []int{1, 2},
		Mode:          ModeOpen,
		StartRate:     4,
		RateFactor:    4,
		MaxRate:       64,
		Deadline:      60 * time.Millisecond,
		MissThreshold: 0.5,
		StepDuration:  400 * time.Millisecond,
		Duration:      20 * time.Second,
		TasksPerJob:   4,
		WorkDelay:     200 * time.Microsecond,
		AdmitFactor:   1.5,
		Seed:          7,
		Logf:          t.Logf,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Knees) != 2 {
		t.Fatalf("want 2 knees, got %d", len(rep.Knees))
	}
	if len(rep.Sweep) < 2 {
		t.Fatalf("want at least one sweep point per pool, got %d", len(rep.Sweep))
	}
	for _, p := range rep.Sweep {
		if p.Submitted == 0 {
			t.Errorf("sweep point %+v submitted nothing", p)
		}
	}
	for _, k := range rep.Knees {
		if k.Rate <= 0 {
			t.Errorf("knee for %d workers has no rate: %+v", k.Workers, k)
		}
	}
	if rep.Fit.PerWorkerTasksPerSec <= 0 {
		t.Errorf("fit produced no per-worker rate: %+v", rep.Fit)
	}
	if rep.Admission == nil {
		t.Fatal("admission validation phase did not run")
	}
	if rep.Admission.Point.Rejected > 0 &&
		rep.Admission.RejectionTraces < rep.Admission.Point.Rejected {
		t.Errorf("only %d of %d rejections carried err_trace",
			rep.Admission.RejectionTraces, rep.Admission.Point.Rejected)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("nil trace should error")
	}
	g, _ := tracegen.New(tracegen.BostonBombing(), 1)
	tr, _ := g.Generate(0.01)
	if _, err := Run(context.Background(), Config{Trace: tr, Mode: "sideways"}); err == nil {
		t.Error("unknown mode should error")
	}
}
