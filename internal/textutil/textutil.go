// Package textutil provides the lightweight text processing primitives used
// throughout the pipeline: tokenization, normalization, Jaccard similarity
// and shingling. Jaccard distance over token sets is the micro-blog
// clustering metric used by the paper (citing Uddin et al.).
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. Hashtags and mentions
// keep their leading marker stripped so "#osu" and "osu" collide, matching
// the keyword-matching heuristics of the paper's preprocessing. Punctuation
// is dropped; URLs are kept whole so retweet detection can match them.
func Tokenize(text string) []string {
	var tokens []string
	fields := strings.Fields(text)
	for _, f := range fields {
		lf := strings.ToLower(f)
		if strings.HasPrefix(lf, "http://") || strings.HasPrefix(lf, "https://") {
			tokens = append(tokens, lf)
			continue
		}
		cleaned := strings.TrimFunc(lf, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsNumber(r)
		})
		cleaned = strings.TrimLeft(cleaned, "#@")
		if cleaned != "" {
			tokens = append(tokens, cleaned)
		}
	}
	return tokens
}

// TokenSet returns the set of distinct tokens in text.
func TokenSet(text string) map[string]bool {
	toks := Tokenize(text)
	set := make(map[string]bool, len(toks))
	for _, t := range toks {
		set[t] = true
	}
	return set
}

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of two token sets.
// Two empty sets are defined to have similarity 1.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for t := range small {
		if large[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardDistance returns 1 - Jaccard(a, b).
func JaccardDistance(a, b map[string]bool) float64 { return 1 - Jaccard(a, b) }

// JaccardText is Jaccard over the token sets of two raw strings.
func JaccardText(a, b string) float64 { return Jaccard(TokenSet(a), TokenSet(b)) }

// Shingles returns the set of contiguous n-grams (joined by a space) of the
// token sequence. n must be >= 1; shorter inputs yield a single shingle of
// all tokens (or an empty set for empty input).
func Shingles(tokens []string, n int) map[string]bool {
	out := make(map[string]bool)
	if len(tokens) == 0 || n < 1 {
		return out
	}
	if len(tokens) < n {
		out[strings.Join(tokens, " ")] = true
		return out
	}
	for i := 0; i+n <= len(tokens); i++ {
		out[strings.Join(tokens[i:i+n], " ")] = true
	}
	return out
}

// ContainsAny reports whether any needle occurs as a token of text.
func ContainsAny(text string, needles []string) bool {
	set := TokenSet(text)
	for _, n := range needles {
		if set[n] {
			return true
		}
	}
	return false
}

// ContainsPhrase reports whether phrase occurs in text when both are
// normalized to lowercase token sequences.
func ContainsPhrase(text, phrase string) bool {
	tt := Tokenize(text)
	pt := Tokenize(phrase)
	if len(pt) == 0 {
		return true
	}
	if len(pt) > len(tt) {
		return false
	}
outer:
	for i := 0; i+len(pt) <= len(tt); i++ {
		for j, p := range pt {
			if tt[i+j] != p {
				continue outer
			}
		}
		return true
	}
	return false
}
