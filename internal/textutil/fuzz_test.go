package textutil

import "testing"

// FuzzTokenize checks the tokenizer never panics, never emits empty
// tokens, and is idempotent under re-joining for arbitrary input.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"There was a shooting at Ohio state #osu",
		"RT @user: explosions!!",
		"https://t.co/abc 日本語 café",
		"\x00\xff\xfe broken utf8",
		"#### @@@@",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		for i, tok := range tokens {
			if tok == "" {
				t.Fatalf("empty token at %d for %q", i, text)
			}
		}
		set := TokenSet(text)
		if len(set) > len(tokens) {
			t.Fatalf("set larger than token list for %q", text)
		}
		// Jaccard of the text with itself is 1 (or both-empty).
		if j := JaccardText(text, text); j != 1 {
			t.Fatalf("self-similarity = %v for %q", j, text)
		}
	})
}
