package textutil

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "There was a shooting", []string{"there", "was", "a", "shooting"}},
		{"hashtag stripped", "pray for safety #osu", []string{"pray", "for", "safety", "osu"}},
		{"mention stripped", "near @OSUengineering now", []string{"near", "osuengineering", "now"}},
		{"punctuation dropped", "Breaking: police, TONS!", []string{"breaking", "police", "tons"}},
		{"url kept", "see https://t.co/abc now", []string{"see", "https://t.co/abc", "now"}},
		{"empty", "   ", nil},
		{"pure punctuation", "!!! ???", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want float64
	}{
		{"identical", "boston marathon bombing", "boston marathon bombing", 1},
		{"disjoint", "boston marathon", "paris shooting", 0},
		{"half", "a b c d", "c d e f", 1.0 / 3.0},
		{"both empty", "", "", 1},
		{"one empty", "a", "", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JaccardText(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("JaccardText(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestJaccardProperties(t *testing.T) {
	// Symmetry and range.
	f := func(a, b string) bool {
		sa, sb := TokenSet(a), TokenSet(b)
		j1, j2 := Jaccard(sa, sb), Jaccard(sb, sa)
		if j1 != j2 {
			return false
		}
		return j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Self-similarity is 1.
	g := func(a string) bool {
		s := TokenSet(a)
		return Jaccard(s, s) == 1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardDistanceTriangleish(t *testing.T) {
	// Jaccard distance is a metric; spot-check the triangle inequality on
	// random word soups.
	words := []string{"boston", "paris", "osu", "shooting", "bombing", "police", "fake", "lead", "score", "touchdown"}
	mk := func(seed int) map[string]bool {
		s := make(map[string]bool)
		for i, w := range words {
			if (seed>>i)&1 == 1 {
				s[w] = true
			}
		}
		return s
	}
	for a := 1; a < 64; a += 7 {
		for b := 1; b < 64; b += 5 {
			for c := 1; c < 64; c += 11 {
				da, db, dc := mk(a), mk(b), mk(c)
				ab := JaccardDistance(da, db)
				bc := JaccardDistance(db, dc)
				ac := JaccardDistance(da, dc)
				if ac > ab+bc+1e-12 {
					t.Fatalf("triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v", a, c, ac, a, b, b, c, ab+bc)
				}
			}
		}
	}
}

func TestShingles(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	got := Shingles(toks, 2)
	want := map[string]bool{"a b": true, "b c": true, "c d": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Shingles = %v, want %v", got, want)
	}
	if got := Shingles([]string{"a"}, 3); !reflect.DeepEqual(got, map[string]bool{"a": true}) {
		t.Errorf("short input shingles = %v", got)
	}
	if got := Shingles(nil, 2); len(got) != 0 {
		t.Errorf("empty input shingles = %v", got)
	}
	if got := Shingles(toks, 0); len(got) != 0 {
		t.Errorf("n=0 shingles = %v", got)
	}
}

func TestContainsAny(t *testing.T) {
	text := "Liberals putting out fake claims about the terrorist attack"
	if !ContainsAny(text, []string{"rumor", "fake"}) {
		t.Error("ContainsAny missed 'fake'")
	}
	if ContainsAny(text, []string{"touchdown"}) {
		t.Error("ContainsAny false positive")
	}
	if ContainsAny(text, nil) {
		t.Error("ContainsAny with no needles should be false")
	}
}

func TestContainsPhrase(t *testing.T) {
	text := "The Irish are taking the lead in the game!"
	tests := []struct {
		phrase string
		want   bool
	}{
		{"taking the lead", true},
		{"Taking The LEAD", true},
		{"the lead in", true},
		{"lead the taking", false},
		{"", true},
		{"the irish are taking the lead in the game extra words", false},
	}
	for _, tt := range tests {
		if got := ContainsPhrase(text, tt.phrase); got != tt.want {
			t.Errorf("ContainsPhrase(%q) = %v, want %v", tt.phrase, got, tt.want)
		}
	}
}

func TestTokenSetDedups(t *testing.T) {
	set := TokenSet("boston boston BOSTON #boston")
	if len(set) != 1 || !set["boston"] {
		t.Errorf("TokenSet dedup failed: %v", set)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("café naïve 日本")
	if len(got) != 3 {
		t.Fatalf("unicode tokens = %v", got)
	}
	for _, tok := range got {
		if strings.TrimSpace(tok) == "" {
			t.Errorf("blank token in %v", got)
		}
	}
}
