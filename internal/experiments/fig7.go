package experiments

import (
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/condor"
	"github.com/social-sensing/sstd/internal/evalmetrics"
)

// Fig7DataSizes are the synthetic trace sizes (in tweets) of the
// scalability experiment; the largest exceeds the Super Bowl 2016 volume
// the paper cites (16.9M tweets).
var Fig7DataSizes = []int{100_000, 1_000_000, 16_900_000}

// Fig7Workers are the pool sizes swept.
var Fig7Workers = []int{1, 2, 4, 8, 16, 32, 64}

// Fig7CostModel is the virtual-time cost model used for the scalability
// study: per-report processing dominated by computation, a modest task
// init cost and a master-side dispatch cost that bounds scaling.
var Fig7CostModel = condor.CostModel{
	InitTime: 200 * time.Millisecond,
	PerUnit:  50 * time.Microsecond,
	Dispatch: 30 * time.Millisecond,
}

// Fig7 computes the speedup curves of the scalability experiment on the
// virtual-time HTCondor simulator: Speedup(N) = T(1)/T(N) for each data
// size, with tasks shaped like SSTD TD tasks (claims split into equal
// chunks).
func Fig7(o Options) ([]evalmetrics.SpeedupSeries, error) {
	o = o.withDefaults()
	const claims, tasksPerClaim = 40, 4
	var out []evalmetrics.SpeedupSeries
	for _, size := range Fig7DataSizes {
		tasks := buildVirtualTasks(size, claims, tasksPerClaim)
		series := evalmetrics.SpeedupSeries{DataSize: size}
		for _, w := range Fig7Workers {
			slots := make([]condor.Slot, w)
			for i := range slots {
				slots[i] = condor.Slot{ID: i + 1, Node: fmt.Sprintf("n%d", i), Speed: 1}
			}
			s, err := condor.Speedup(tasks, slots, Fig7CostModel)
			if err != nil {
				return nil, err
			}
			series.Workers = append(series.Workers, w)
			series.Speedup = append(series.Speedup, s)
		}
		out = append(out, series)
	}
	return out, nil
}

// buildVirtualTasks shapes a dataset of the given report volume into SSTD
// TD tasks: reports spread over claims by a Zipf-ish popularity, each
// claim's job split into equal tasks.
func buildVirtualTasks(reports, claims, tasksPerClaim int) []condor.VirtualTask {
	weights := make([]float64, claims)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	var tasks []condor.VirtualTask
	for i := 0; i < claims; i++ {
		claimReports := float64(reports) * weights[i] / total
		per := claimReports / float64(tasksPerClaim)
		for t := 0; t < tasksPerClaim; t++ {
			tasks = append(tasks, condor.VirtualTask{
				JobID: fmt.Sprintf("claim-%02d", i),
				Work:  per,
			})
		}
	}
	return tasks
}
