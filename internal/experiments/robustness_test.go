package experiments

import (
	"testing"

	"github.com/social-sensing/sstd/internal/tracegen"
)

func TestNoiseRobustness(t *testing.T) {
	pts, err := NoiseRobustness(tracegen.ParisShooting(), []float64{0.08, 0.15, 0.3}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if len(p.Accuracy) != 7 {
			t.Fatalf("methods = %d at noise %v", len(p.Accuracy), p.NoiseFrac)
		}
		for m, acc := range p.Accuracy {
			if acc < 0 || acc > 1 {
				t.Errorf("noise %.2f: %s accuracy %v", p.NoiseFrac, m, acc)
			}
		}
	}
	// In the operating regime (<= ~15% adversarial mass) SSTD stays the
	// best method; beyond that the global source-reliability modelers
	// may degrade more gracefully — a real trade-off of SSTD's
	// source-agnostic aggregation, recorded in EXPERIMENTS.md.
	for _, p := range pts[:2] {
		sstd := p.Accuracy["SSTD"]
		for m, acc := range p.Accuracy {
			if m != "SSTD" && acc > sstd {
				t.Errorf("noise %.2f: %s %.3f beats SSTD %.3f", p.NoiseFrac, m, acc, sstd)
			}
		}
	}
	// Accuracy degrades as noise grows.
	if pts[2].Accuracy["SSTD"] > pts[0].Accuracy["SSTD"] {
		t.Errorf("SSTD accuracy rose with noise: %.3f -> %.3f",
			pts[0].Accuracy["SSTD"], pts[2].Accuracy["SSTD"])
	}
	if _, err := NoiseRobustness(tracegen.ParisShooting(), []float64{1.5}, quick()); err == nil {
		t.Error("noise > 0.9 accepted")
	}
}

func TestRescaleNoise(t *testing.T) {
	bands := tracegen.BostonBombing().Reliability
	out := rescaleNoise(bands, 0.5)
	total := 0.0
	for _, b := range out {
		total += b.Frac
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("rescaled fractions sum to %v", total)
	}
	if out[len(out)-1].Frac != 0.5 {
		t.Errorf("noise band = %v, want 0.5", out[len(out)-1].Frac)
	}
}

func TestFig7Churn(t *testing.T) {
	clean, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	churned, err := Fig7Churn(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(churned) != len(clean) {
		t.Fatalf("series = %d", len(churned))
	}
	for si, s := range churned {
		for i := range s.Workers {
			if s.Speedup[i] <= 0 {
				t.Errorf("size %d workers %d: speedup %v", s.DataSize, s.Workers[i], s.Speedup[i])
			}
			// Churned heterogeneous speedup may beat the homogeneous
			// ideal (fast nodes) but must stay within a sane envelope.
			if s.Speedup[i] > 2.5*float64(s.Workers[i]) {
				t.Errorf("size %d: churned speedup %v implausible for %d workers", s.DataSize, s.Speedup[i], s.Workers[i])
			}
		}
		_ = si
	}
}
