package experiments

import (
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/condor"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Timing model for the efficiency experiments (Figs. 4-6).
//
// The paper measures wall-clock time on a real HTCondor pool. This
// reproduction cannot assume a multi-core host (CI boxes are often single
// core), so the timing experiments use a documented hybrid: the
// data-proportional preprocessing cost — which dominates TD job time on
// real traces and is what parallelizes across Work Queue workers — is
// charged in *virtual time* (serial for the centralized baselines,
// list-scheduled over the worker pool for SSTD via the condor simulator),
// while each method's actual algorithmic compute (EM/Viterbi, fixpoint
// iterations) is *measured* and added. Shapes are therefore host
// independent; see DESIGN.md §2.

// costModel derives the virtual-time task cost model from the options.
func costModel(o Options) condor.CostModel {
	return condor.CostModel{
		// Task start-up (Eq. 10's TI): payload transfer to a persistent
		// Work Queue worker — cheap relative to the data processing but
		// not free, which is why the DTM bounds tasks per job (Eq. 11).
		InitTime: 4 * o.PerReportCost,
		PerUnit:  o.PerReportCost,
		// Master-side serial dispatch per task (queue pop + send).
		Dispatch: o.PerReportCost / 2,
	}
}

// unitSlots builds n speed-1 worker slots.
func unitSlots(n int) []condor.Slot {
	slots := make([]condor.Slot, n)
	for i := range slots {
		slots[i] = condor.Slot{ID: i + 1, Node: "virtual", Speed: 1}
	}
	return slots
}

// claimTasks shapes a report set into SSTD TD tasks: one job per claim,
// split into up to maxTasksPerJob equal chunks but never below
// minChunkReports reports per task — the paper's DTM keeps the task count
// per job small precisely because the per-task init overhead of Eq. 10
// would otherwise swamp small jobs (Eq. 11).
const (
	maxTasksPerJob  = 4
	minChunkReports = 50
)

func claimTasks(byClaim map[socialsensing.ClaimID][]socialsensing.Report) []condor.VirtualTask {
	ids := make([]socialsensing.ClaimID, 0, len(byClaim))
	for id := range byClaim {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var tasks []condor.VirtualTask
	for _, id := range ids {
		n := len(byClaim[id])
		if n == 0 {
			continue
		}
		chunks := n / minChunkReports
		if chunks < 1 {
			chunks = 1
		}
		if chunks > maxTasksPerJob {
			chunks = maxTasksPerJob
		}
		per := float64(n) / float64(chunks)
		for c := 0; c < chunks; c++ {
			tasks = append(tasks, condor.VirtualTask{JobID: string(id), Work: per})
		}
	}
	return tasks
}

// sstdPreprocessTime returns the virtual makespan of SSTD's parallel
// preprocessing over the reports on a pool of the given size.
func sstdPreprocessTime(byClaim map[socialsensing.ClaimID][]socialsensing.Report, workers int, o Options) (time.Duration, error) {
	tasks := claimTasks(byClaim)
	if len(tasks) == 0 {
		return 0, nil
	}
	res, err := condor.Simulate(tasks, unitSlots(workers), costModel(o))
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// serialPreprocessTime is the virtual cost a centralized scheme pays to
// preprocess n reports.
func serialPreprocessTime(n int, o Options) time.Duration {
	return time.Duration(n) * o.PerReportCost
}
