package experiments

import (
	"time"

	"github.com/social-sensing/sstd/internal/claimdep"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// AblationDependency evaluates the §VII claim-dependency extension: the
// profile's claims are generated in correlated groups; SSTD is run once
// with independent per-claim decoding (the paper's model) and once with
// correlation-aware posterior smoothing (the claimdep package). The
// dependency model should recover accuracy on claims whose own evidence is
// sparse by borrowing from correlated neighbours.
func AblationDependency(prof tracegen.Profile, o Options) ([]AblationPoint, error) {
	o = o.withDefaults()
	// Correlate claims in blocks of 3; a third of members mirror their
	// leader.
	prof.CorrelationGroupSize = 3
	prof.AntiCorrelationProb = 0.33
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}

	eng, err := core.NewEngine(engineConfig(tr, o))
	if err != nil {
		return nil, err
	}
	if err := eng.IngestAll(tr.Reports); err != nil {
		return nil, err
	}

	// Per-claim evidence series and truth posteriors.
	series := make(map[socialsensing.ClaimID][]float64, len(tr.Claims))
	posteriors := make(map[socialsensing.ClaimID][]float64, len(tr.Claims))
	for _, c := range tr.Claims {
		s := eng.ACSSeries(c.ID)
		if len(s) == 0 {
			continue
		}
		p, err := eng.PosteriorClaim(c.ID)
		if err != nil {
			return nil, err
		}
		series[c.ID] = s
		posteriors[c.ID] = p
	}

	width := evalWidth(tr, o)
	evalPosteriors := func(ps map[socialsensing.ClaimID][]float64) (evalmetrics.Report, error) {
		hard := claimdep.Threshold(ps)
		fn := func(claim socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
			tv, ok := hard[claim]
			if !ok || len(tv) == 0 {
				return socialsensing.False, false
			}
			idx := int(at.Sub(tr.Start) / width)
			if idx < 0 {
				idx = 0
			}
			if idx >= len(tv) {
				idx = len(tv) - 1
			}
			return tv[idx], true
		}
		conf, err := evalmetrics.EvaluateDynamic(tr, fn, width)
		if err != nil {
			return evalmetrics.Report{}, err
		}
		return evalmetrics.ReportOf("SSTD", conf), nil
	}

	independent, err := evalPosteriors(posteriors)
	if err != nil {
		return nil, err
	}

	graph, err := claimdep.EstimateGraph(series, claimdep.DefaultConfig())
	if err != nil {
		return nil, err
	}
	smoothed, err := evalPosteriors(graph.Smooth(posteriors))
	if err != nil {
		return nil, err
	}

	return []AblationPoint{
		{Label: "independent", Report: independent},
		{Label: "dependency-aware", Report: smoothed},
	}, nil
}
