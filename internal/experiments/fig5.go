package experiments

import (
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// StreamingPoint is one measurement of Fig. 5: a method's total running
// time when data streams in at a given speed for StreamSeconds.
type StreamingPoint struct {
	Method string
	// Rate is reports per second.
	Rate int
	// Total is the simulated completion time: stream duration plus any
	// processing backlog (a scheme that keeps up finishes right at the
	// stream's end).
	Total time.Duration
}

// StreamSeconds is the stream duration of the Fig. 5 experiment.
const StreamSeconds = 100

// Fig5 measures total running time versus streaming speed. Streaming
// schemes (SSTD, DynaTD) process each second of data as it arrives; batch
// schemes (TruthFinder, RTD, CATD, ...) periodically re-run over all data
// received so far (every 5 data-seconds, per the paper). Arrival is
// simulated on a virtual clock; each chunk's service time is the virtual
// preprocessing cost (parallel for SSTD, serial otherwise) plus the
// measured algorithmic compute, so a scheme whose processing outpaces
// arrival finishes at ~100 s and one that falls behind accumulates
// backlog.
func Fig5(prof tracegen.Profile, rates []int, o Options) ([]StreamingPoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	return Fig5On(tr, rates, o)
}

// Fig5On runs the Fig. 5 sweep against an existing trace.
func Fig5On(tr *socialsensing.Trace, rates []int, o Options) ([]StreamingPoint, error) {
	o = o.withDefaults()
	var out []StreamingPoint
	for _, rate := range rates {
		batches, err := stream.RateStream(tr, rate, StreamSeconds*time.Second)
		if err != nil {
			return nil, err
		}
		// SSTD streaming: parallel per-batch preprocessing plus measured
		// ingest + incremental re-decode of the touched claims.
		sstdTime, err := timeSSTDStreaming(tr, batches, o)
		if err != nil {
			return nil, err
		}
		out = append(out, StreamingPoint{Method: "SSTD", Rate: rate, Total: sstdTime})

		// DynaTD streaming: serial per-batch preprocessing plus measured
		// incremental update.
		d := baselines.NewDynaTD()
		out = append(out, StreamingPoint{
			Method: "DynaTD", Rate: rate,
			Total: simulateStream(batches, 1, func(bs []socialsensing.Report) time.Duration {
				d.ProcessInterval(bs)
				return serialPreprocessTime(len(bs), o)
			}),
		})

		// Batch schemes: every 5 data-seconds, re-preprocess and re-run
		// over everything received so far — which is what makes them
		// fall behind as the stream speeds up.
		for _, est := range batchEstimators() {
			est := est
			var all []socialsensing.Report
			out = append(out, StreamingPoint{
				Method: est.Name(), Rate: rate,
				Total: simulateStream(batches, 5, func(bs []socialsensing.Report) time.Duration {
					all = append(all, bs...)
					est.Estimate(baselines.BuildDataset(all))
					return serialPreprocessTime(len(all), o)
				}),
			})
		}
	}
	return out, nil
}

// simulateStream plays the batches on a virtual arrival clock: chunkSecs
// batches are delivered together every chunkSecs seconds; process is
// called with each chunk, and the chunk's service time is its measured
// wall time plus the virtual duration process returns. Returns the
// completion time of the last chunk.
func simulateStream(batches []stream.Batch, chunkSecs int, process func([]socialsensing.Report) time.Duration) time.Duration {
	var clock, busyUntil time.Duration
	for i := 0; i < len(batches); i += chunkSecs {
		end := i + chunkSecs
		if end > len(batches) {
			end = len(batches)
		}
		var chunk []socialsensing.Report
		for _, b := range batches[i:end] {
			chunk = append(chunk, b.Reports...)
		}
		clock = time.Duration(end) * time.Second // arrival of the chunk
		start := clock
		if busyUntil > start {
			start = busyUntil
		}
		t0 := time.Now()
		virtual := process(chunk)
		busyUntil = start + time.Since(t0) + virtual
	}
	if busyUntil < clock {
		return clock
	}
	return busyUntil
}

// timeSSTDStreaming plays the stream through the SSTD engine: each
// second's reports are preprocessed on the (virtual) pool, ingested, and
// the touched claims re-decoded.
func timeSSTDStreaming(tr *socialsensing.Trace, batches []stream.Batch, o Options) (time.Duration, error) {
	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = 5 * time.Second
	cfg.ACS.WindowIntervals = o.WindowIntervals
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	var procErr error
	total := simulateStream(batches, 1, func(bs []socialsensing.Report) time.Duration {
		byClaim := make(map[socialsensing.ClaimID][]socialsensing.Report)
		for _, r := range bs {
			if err := eng.Ingest(r); err != nil {
				procErr = err
				return 0
			}
			byClaim[r.Claim] = append(byClaim[r.Claim], r)
		}
		for c := range byClaim {
			if _, err := eng.DecodeClaim(c); err != nil {
				procErr = err
				return 0
			}
		}
		prep, err := sstdPreprocessTime(byClaim, o.Workers, o)
		if err != nil {
			procErr = err
			return 0
		}
		return prep
	})
	if procErr != nil {
		return 0, procErr
	}
	return total, nil
}
