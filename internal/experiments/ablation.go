package experiments

import (
	"strconv"

	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// AblationPoint is one configuration's effectiveness in an ablation sweep.
type AblationPoint struct {
	Label  string
	Report evalmetrics.Report
}

// AblationWindow sweeps the ACS sliding window size (Eq. 4's sw), showing
// the robustness/responsiveness trade-off: windows too short are noisy,
// too long lag behind truth changes.
func AblationWindow(prof tracegen.Profile, windows []int, o Options) ([]AblationPoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, w := range windows {
		ow := o
		ow.WindowIntervals = w
		fn, err := sstdBatch(tr, ow)
		if err != nil {
			return nil, err
		}
		conf, err := evalmetrics.EvaluateDynamic(tr, fn, evalWidth(tr, ow))
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Label:  "sw=" + strconv.Itoa(w),
			Report: evalmetrics.ReportOf("SSTD", conf),
		})
	}
	return out, nil
}

// AblationContribution compares the full contribution score of Eq. 1
// against degraded variants: attitude only (kappa and eta dropped),
// no-uncertainty, and no-independence. Degradation is applied to the
// scored reports before aggregation.
func AblationContribution(prof tracegen.Profile, o Options) ([]AblationPoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		label string
		mod   func(socialsensing.Report) socialsensing.Report
	}{
		{"full-cs", func(r socialsensing.Report) socialsensing.Report { return r }},
		{"no-uncertainty", func(r socialsensing.Report) socialsensing.Report { r.Uncertainty = 0; return r }},
		{"no-independence", func(r socialsensing.Report) socialsensing.Report { r.Independence = 1; return r }},
		{"attitude-only", func(r socialsensing.Report) socialsensing.Report {
			r.Uncertainty = 0
			r.Independence = 1
			return r
		}},
	}
	var out []AblationPoint
	for _, v := range variants {
		mtr := *tr
		mtr.Reports = make([]socialsensing.Report, len(tr.Reports))
		for i, r := range tr.Reports {
			mtr.Reports[i] = v.mod(r)
		}
		fn, err := sstdBatch(&mtr, o)
		if err != nil {
			return nil, err
		}
		conf, err := evalmetrics.EvaluateDynamic(&mtr, fn, evalWidth(&mtr, o))
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Label: v.label, Report: evalmetrics.ReportOf("SSTD", conf)})
	}
	return out, nil
}

// AblationEmissions compares the paper's discrete-emission HMM against the
// Gaussian-emission extension.
func AblationEmissions(prof tracegen.Profile, o Options) ([]AblationPoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	kinds := []struct {
		label string
		set   func(*Options)
	}{
		{"discrete", func(op *Options) { op.Emissions = core.DiscreteEmissions }},
		{"gaussian", func(op *Options) { op.Emissions = core.GaussianEmissions }},
	}
	var out []AblationPoint
	for _, k := range kinds {
		ok := o
		k.set(&ok)
		fn, err := sstdBatch(tr, ok)
		if err != nil {
			return nil, err
		}
		conf, err := evalmetrics.EvaluateDynamic(tr, fn, evalWidth(tr, ok))
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Label: k.label, Report: evalmetrics.ReportOf("SSTD", conf)})
	}
	return out, nil
}
