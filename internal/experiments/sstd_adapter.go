package experiments

import (
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// sstdBatch runs the SSTD pipeline over a full trace and returns a
// TruthFunc over its decoded per-interval estimates.
func sstdBatch(tr *socialsensing.Trace, o Options) (evalmetrics.TruthFunc, error) {
	eng, err := core.NewEngine(engineConfig(tr, o))
	if err != nil {
		return nil, err
	}
	if err := eng.IngestAll(tr.Reports); err != nil {
		return nil, err
	}
	decoded, err := eng.DecodeAll()
	if err != nil {
		return nil, err
	}
	return func(claim socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		return core.TruthAt(decoded[claim], at)
	}, nil
}

// staticTruthFunc adapts a batch estimator's single verdict per claim.
func staticTruthFunc(est map[socialsensing.ClaimID]socialsensing.TruthValue) evalmetrics.TruthFunc {
	return func(claim socialsensing.ClaimID, _ time.Time) (socialsensing.TruthValue, bool) {
		v, ok := est[claim]
		return v, ok
	}
}

// timeline is a per-claim estimate history built interval by interval.
type timeline struct {
	starts []time.Time
	values map[socialsensing.ClaimID][]socialsensing.TruthValue
}

func newTimeline() *timeline {
	return &timeline{values: make(map[socialsensing.ClaimID][]socialsensing.TruthValue)}
}

// record appends one interval's estimates. Claims missing from est carry
// their previous value forward implicitly at lookup time.
func (tl *timeline) record(start time.Time, est map[socialsensing.ClaimID]socialsensing.TruthValue) {
	idx := len(tl.starts)
	tl.starts = append(tl.starts, start)
	for c, v := range est {
		series := tl.values[c]
		for len(series) < idx {
			// Pad gaps with the last known value (or False when none).
			prev := socialsensing.False
			if len(series) > 0 {
				prev = series[len(series)-1]
			}
			series = append(series, prev)
		}
		series = append(series, v)
		tl.values[c] = series
	}
}

// truthFunc evaluates the recorded history.
func (tl *timeline) truthFunc() evalmetrics.TruthFunc {
	return func(claim socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		series, ok := tl.values[claim]
		if !ok || len(tl.starts) == 0 {
			return socialsensing.False, false
		}
		idx := -1
		for i, s := range tl.starts {
			if s.After(at) {
				break
			}
			idx = i
		}
		if idx == -1 {
			idx = 0
		}
		if idx >= len(series) {
			idx = len(series) - 1
		}
		return series[idx], true
	}
}

// runStreaming feeds interval batches to a streaming estimator and
// returns its estimate timeline.
func runStreaming(est baselines.StreamingEstimator, batches []batch) *timeline {
	est.Reset()
	tl := newTimeline()
	for _, b := range batches {
		tl.record(b.start, est.ProcessInterval(b.reports))
	}
	return tl
}

// batch decouples experiments from the stream package's Batch type where
// convenient.
type batch struct {
	start   time.Time
	reports []socialsensing.Report
}
