package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// PrintTableII writes the Table II statistics.
func PrintTableII(w io.Writer, stats []socialsensing.Stats) {
	fmt.Fprintf(w, "%-20s %10s %10s %8s %10s\n", "Data Trace", "Reports", "Sources", "Claims", "Duration")
	for _, s := range stats {
		fmt.Fprintf(w, "%-20s %10d %10d %8d %10s\n", s.Name, s.Reports, s.Sources, s.Claims, s.Duration)
	}
}

// PrintAccuracyTable writes a Tables III-V style effectiveness table.
func PrintAccuracyTable(w io.Writer, title string, reports []evalmetrics.Report) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-14s %9s %10s %8s %9s\n", "Method", "Accuracy", "Precision", "Recall", "F1-Score")
	for _, r := range reports {
		fmt.Fprintf(w, "%-14s %9.3f %10.3f %8.3f %9.3f\n", r.Method, r.Accuracy, r.Precision, r.Recall, r.F1)
	}
}

// PrintFig4 writes the execution-time series grouped by method.
func PrintFig4(w io.Writer, title string, points []ExecTimePoint) {
	fmt.Fprintf(w, "== %s (execution time vs data size) ==\n", title)
	byMethod := make(map[string][]ExecTimePoint)
	var methods []string
	for _, p := range points {
		if _, ok := byMethod[p.Method]; !ok {
			methods = append(methods, p.Method)
		}
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Fprintf(w, "%-14s", m)
		for _, p := range byMethod[m] {
			fmt.Fprintf(w, "  %d:%s", p.Reports, round(p.Elapsed))
		}
		fmt.Fprintln(w)
	}
}

// PrintFig5 writes the streaming-speed series grouped by method.
func PrintFig5(w io.Writer, title string, points []StreamingPoint) {
	fmt.Fprintf(w, "== %s (total running time vs tweets/sec) ==\n", title)
	byMethod := make(map[string][]StreamingPoint)
	var methods []string
	for _, p := range points {
		if _, ok := byMethod[p.Method]; !ok {
			methods = append(methods, p.Method)
		}
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Fprintf(w, "%-14s", m)
		for _, p := range byMethod[m] {
			fmt.Fprintf(w, "  %d/s:%s", p.Rate, round(p.Total))
		}
		fmt.Fprintln(w)
	}
}

// PrintFig6 writes the hit-rate matrix: methods x deadlines.
func PrintFig6(w io.Writer, title string, points []HitRatePoint) {
	fmt.Fprintf(w, "== %s (deadline hit rate) ==\n", title)
	deadlines := make([]time.Duration, 0)
	seenD := make(map[time.Duration]bool)
	byKey := make(map[string]map[time.Duration]float64)
	var methods []string
	for _, p := range points {
		if !seenD[p.Deadline] {
			seenD[p.Deadline] = true
			deadlines = append(deadlines, p.Deadline)
		}
		if _, ok := byKey[p.Method]; !ok {
			methods = append(methods, p.Method)
			byKey[p.Method] = make(map[time.Duration]float64)
		}
		byKey[p.Method][p.Deadline] = p.HitRate
	}
	sort.Strings(methods)
	sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
	fmt.Fprintf(w, "%-14s", "Method")
	for _, d := range deadlines {
		fmt.Fprintf(w, " %10s", round(d))
	}
	fmt.Fprintln(w)
	for _, m := range methods {
		fmt.Fprintf(w, "%-14s", m)
		for _, d := range deadlines {
			fmt.Fprintf(w, " %10.2f", byKey[m][d])
		}
		fmt.Fprintln(w)
	}
}

// PrintFig7 writes the speedup curves.
func PrintFig7(w io.Writer, series []evalmetrics.SpeedupSeries) {
	fmt.Fprintln(w, "== Fig 7 (speedup vs workers) ==")
	for _, s := range series {
		fmt.Fprintf(w, "%-12d", s.DataSize)
		for i, wk := range s.Workers {
			fmt.Fprintf(w, "  %dw:%.2f", wk, s.Speedup[i])
		}
		fmt.Fprintln(w)
	}
}

// PrintAblation writes an ablation sweep.
func PrintAblation(w io.Writer, title string, points []AblationPoint) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-18s %9s %10s %8s %9s\n", "Variant", "Accuracy", "Precision", "Recall", "F1-Score")
	for _, p := range points {
		fmt.Fprintf(w, "%-18s %9.3f %10.3f %8.3f %9.3f\n",
			p.Label, p.Report.Accuracy, p.Report.Precision, p.Report.Recall, p.Report.F1)
	}
}

// round truncates a duration for display.
func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(10 * time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(10 * time.Nanosecond)
	}
}
