// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic traces: Table II (trace
// statistics), Tables III-V (truth discovery effectiveness), Fig. 4
// (execution time vs data size), Fig. 5 (running time vs streaming speed),
// Fig. 6 (deadline hit rates) and Fig. 7 (speedup), plus the ablations
// called out in DESIGN.md. Absolute numbers depend on the host; the shapes
// are what EXPERIMENTS.md tracks against the paper.
package experiments

import (
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the trace size relative to the paper's datasets
	// (1.0 = full Table II volume). Default 0.01.
	Scale float64
	// Seed drives all generators.
	Seed int64
	// Intervals is the number of HMM time steps the trace duration is
	// divided into. Default 200.
	Intervals int
	// WindowIntervals is the ACS sliding window sw. Default 3.
	WindowIntervals int
	// Workers is the SSTD pool size for distributed runs (the paper
	// uses 4 in Fig. 4). Default 4.
	Workers int
	// Emissions selects the HMM emission family (zero = the paper's
	// discrete model).
	Emissions core.EmissionKind
	// PerReportCost models the per-report semantic preprocessing cost
	// (attitude/uncertainty/independence scoring) that dominates TD job
	// time on real traces. The timing experiments (Figs. 4-6) charge it
	// to every scheme — SSTD pays it inside its parallel workers, the
	// baselines serially — so the shapes do not collapse into constant
	// overheads at reduced trace scales. Default 50µs.
	PerReportCost time.Duration
	// ControlLog, when non-nil, captures every PID tick of the
	// control-enabled timing experiments (Fig. 6 and the PID ablation)
	// as a time series — the reproducible artifact behind the paper's
	// deadline-hit-rate claims.
	ControlLog *obs.ControlRecorder
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.Intervals <= 0 {
		o.Intervals = 200
	}
	if o.WindowIntervals <= 0 {
		o.WindowIntervals = 3
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.PerReportCost <= 0 {
		o.PerReportCost = 50 * time.Microsecond
	}
	return o
}

// generate builds the trace for a profile under the options.
func generate(prof tracegen.Profile, o Options) (*socialsensing.Trace, error) {
	g, err := tracegen.New(prof, o.Seed)
	if err != nil {
		return nil, err
	}
	return g.Generate(o.Scale)
}

// engineConfig derives the SSTD engine configuration for a trace.
func engineConfig(tr *socialsensing.Trace, o Options) core.Config {
	width := tr.Duration() / time.Duration(o.Intervals)
	if width <= 0 {
		width = time.Second
	}
	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = width
	cfg.ACS.WindowIntervals = o.WindowIntervals
	if o.Emissions != 0 {
		cfg.Decoder.Emissions = o.Emissions
	}
	return cfg
}

// batchEstimators returns the six batch baselines in the paper's order
// (DynaTD is streaming and handled separately).
func batchEstimators() []baselines.Estimator {
	return []baselines.Estimator{
		baselines.NewTruthFinder(),
		baselines.NewRTD(),
		baselines.NewCATD(),
		baselines.NewInvest(),
		baselines.NewThreeEstimates(),
	}
}

// evalWidth is the sampling width used when scoring dynamic truth.
func evalWidth(tr *socialsensing.Trace, o Options) time.Duration {
	w := tr.Duration() / time.Duration(o.Intervals)
	if w <= 0 {
		w = time.Second
	}
	return w
}
