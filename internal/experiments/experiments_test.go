package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/tracegen"
)

// quick returns tiny-but-meaningful options for test runs. The generator
// scales claim counts with trace size, so even a 1% trace keeps per-claim
// report density in the regime the paper evaluates.
func quick() Options {
	return Options{
		Scale:           0.01,
		Seed:            7,
		Intervals:       80,
		WindowIntervals: 3,
		Workers:         4,
		PerReportCost:   20 * time.Microsecond,
	}
}

func reportFor(t *testing.T, pts []AblationPoint, label string) float64 {
	t.Helper()
	for _, p := range pts {
		if p.Label == label {
			return p.Report.Accuracy
		}
	}
	t.Fatalf("label %q not found", label)
	return 0
}

func TestTableII(t *testing.T) {
	stats, err := TableII(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d traces", len(stats))
	}
	names := map[string]bool{}
	for _, s := range stats {
		names[s.Name] = true
		if s.Reports < 100 || s.Sources < 50 || s.Claims < 6 {
			t.Errorf("trace %s too small: %+v", s.Name, s)
		}
	}
	if !names["boston-bombing"] || !names["paris-shooting"] || !names["college-football"] {
		t.Errorf("missing traces: %v", names)
	}
	var buf bytes.Buffer
	PrintTableII(&buf, stats)
	if !strings.Contains(buf.String(), "boston-bombing") {
		t.Error("PrintTableII missing trace name")
	}
}

func TestAccuracyTableSSTDWins(t *testing.T) {
	// The paper's headline result (Tables III-V): SSTD beats every
	// baseline on accuracy and F1 on each trace.
	for _, prof := range tracegen.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			reports, err := AccuracyTable(prof, quick())
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) != 7 {
				t.Fatalf("methods = %d, want 7", len(reports))
			}
			if reports[0].Method != "SSTD" {
				t.Fatalf("first method = %s", reports[0].Method)
			}
			sstd := reports[0]
			if sstd.Accuracy < 0.7 {
				t.Errorf("SSTD accuracy = %.3f, want >= 0.7", sstd.Accuracy)
			}
			for _, r := range reports[1:] {
				if r.Accuracy > sstd.Accuracy {
					t.Errorf("%s accuracy %.3f beats SSTD %.3f", r.Method, r.Accuracy, sstd.Accuracy)
				}
			}
			var buf bytes.Buffer
			PrintAccuracyTable(&buf, prof.Name, reports)
			if !strings.Contains(buf.String(), "SSTD") {
				t.Error("print output missing SSTD")
			}
		})
	}
}

func TestFig4Shapes(t *testing.T) {
	o := quick()
	pts, err := Fig4(tracegen.ParisShooting(), o)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]ExecTimePoint{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	if len(byMethod["SSTD"]) != 5 {
		t.Fatalf("SSTD points = %d, want 5", len(byMethod["SSTD"]))
	}
	// Data sizes increase along the sweep for every method.
	for m, ps := range byMethod {
		for i := 1; i < len(ps); i++ {
			if ps[i].Reports <= ps[i-1].Reports {
				t.Errorf("%s sweep not increasing: %+v", m, ps)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig4(&buf, "paris", pts)
	if !strings.Contains(buf.String(), "SSTD") {
		t.Error("print missing SSTD")
	}
}

func TestFig5BatchFallsBehind(t *testing.T) {
	o := quick()
	o.Scale = 0.01 // need enough reports to feed the rate stream
	pts, err := Fig5(tracegen.BostonBombing(), []int{20, 50}, o)
	if err != nil {
		t.Fatal(err)
	}
	total := func(method string, rate int) time.Duration {
		for _, p := range pts {
			if p.Method == method && p.Rate == rate {
				return p.Total
			}
		}
		t.Fatalf("missing %s@%d", method, rate)
		return 0
	}
	// Streaming schemes track the 100 s stream duration.
	for _, m := range []string{"SSTD", "DynaTD"} {
		for _, r := range []int{20, 50} {
			if got := total(m, r); got > 110*time.Second {
				t.Errorf("%s@%d/s total = %v, want ~100s (streaming keeps up)", m, r, got)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, "boston", pts)
	if !strings.Contains(buf.String(), "DynaTD") {
		t.Error("print missing DynaTD")
	}
}

func TestFig6HitRatesMonotone(t *testing.T) {
	o := quick()
	// Make the modeled preprocessing dominate measured-compute jitter so
	// the test is stable under parallel test load: deadlines then sit in
	// the multi-millisecond range.
	o.Scale = 0.02
	o.PerReportCost = 200 * time.Microsecond
	pts, err := Fig6(tracegen.CollegeFootball(), o)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]HitRatePoint{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	if len(byMethod) != 7 {
		t.Fatalf("methods = %d, want 7", len(byMethod))
	}
	for m, ps := range byMethod {
		// Baselines are scored from one set of interval times, so their
		// hit rate is exactly non-decreasing in the deadline. SSTD
		// re-runs per deadline (the PID loop adapts to the deadline it
		// must meet), so small cross-run wobble is legitimate.
		slack := 1e-9
		if m == "SSTD" {
			slack = 0.1
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Deadline > ps[i-1].Deadline && ps[i].HitRate < ps[i-1].HitRate-slack {
				t.Errorf("%s hit rate decreased with looser deadline: %+v", m, ps)
			}
		}
		// At the loosest deadline everything should mostly hit.
		last := ps[len(ps)-1]
		if last.HitRate < 0.5 {
			t.Errorf("%s hit rate at loosest deadline = %.2f", m, last.HitRate)
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, "football", pts)
	if !strings.Contains(buf.String(), "Method") {
		t.Error("print missing header")
	}
}

func TestFig7SpeedupShape(t *testing.T) {
	series, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig7DataSizes) {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// Speedup is non-decreasing in workers and bounded by N.
		for i := range s.Workers {
			if s.Speedup[i] > float64(s.Workers[i])+1e-9 {
				t.Errorf("size %d: speedup %.2f exceeds ideal %d", s.DataSize, s.Speedup[i], s.Workers[i])
			}
			if i > 0 && s.Speedup[i] < s.Speedup[i-1]-1e-9 {
				t.Errorf("size %d: speedup not monotone: %v", s.DataSize, s.Speedup)
			}
		}
	}
	// Larger data achieves better speedup at high worker counts (the
	// paper's observation).
	last := len(Fig7Workers) - 1
	if !(series[2].Speedup[last] > series[0].Speedup[last]) {
		t.Errorf("16.9M speedup %.2f not above 100k speedup %.2f",
			series[2].Speedup[last], series[0].Speedup[last])
	}
	var buf bytes.Buffer
	PrintFig7(&buf, series)
	if !strings.Contains(buf.String(), "64w:") {
		t.Error("print missing 64-worker column")
	}
}

func TestAblationWindow(t *testing.T) {
	pts, err := AblationWindow(tracegen.BostonBombing(), []int{1, 3, 10}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Report.Accuracy <= 0.5 {
			t.Errorf("window %s accuracy = %.3f", p.Label, p.Report.Accuracy)
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "window", pts)
	if !strings.Contains(buf.String(), "sw=3") {
		t.Error("print missing sw=3")
	}
}

func TestAblationContribution(t *testing.T) {
	pts, err := AblationContribution(tracegen.ParisShooting(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	full := reportFor(t, pts, "full-cs")
	if full < 0.7 {
		t.Errorf("full CS accuracy = %.3f", full)
	}
}

func TestAblationEmissions(t *testing.T) {
	pts, err := AblationEmissions(tracegen.BostonBombing(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Report.Accuracy < 0.6 {
			t.Errorf("%s accuracy = %.3f", p.Label, p.Report.Accuracy)
		}
	}
}

func TestAblationDependency(t *testing.T) {
	pts, err := AblationDependency(tracegen.BostonBombing(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	indep := reportFor(t, pts, "independent")
	dep := reportFor(t, pts, "dependency-aware")
	if indep < 0.7 {
		t.Errorf("independent accuracy = %.3f", indep)
	}
	// The dependency model must never meaningfully hurt on correlated
	// traces (it typically helps slightly).
	if dep < indep-0.01 {
		t.Errorf("dependency-aware accuracy %.3f below independent %.3f", dep, indep)
	}
}

func TestAblationPID(t *testing.T) {
	o := quick()
	o.Scale = 0.001
	pts, err := AblationPID(tracegen.ParisShooting(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (RTO, PID, static)", len(pts))
	}
	byMethod := map[string]float64{}
	for _, p := range pts {
		if p.HitRate < 0 || p.HitRate > 1 {
			t.Errorf("%s hit rate = %v", p.Method, p.HitRate)
		}
		byMethod[p.Method] = p.HitRate
	}
	// Both controllers must not do worse than the static pool at the
	// median-of-static deadline (they typically do much better).
	if byMethod["SSTD+PID"] < byMethod["SSTD-static"]-0.1 {
		t.Errorf("PID %v below static %v", byMethod["SSTD+PID"], byMethod["SSTD-static"])
	}
	if byMethod["SSTD+RTO"] < byMethod["SSTD-static"]-0.1 {
		t.Errorf("RTO %v below static %v", byMethod["SSTD+RTO"], byMethod["SSTD-static"])
	}
}
