package experiments

import (
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/condor"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// RobustnessPoint is one measurement of the noise sweep: the unreliable
// source fraction and each method's accuracy under it.
type RobustnessPoint struct {
	// NoiseFrac is the fraction of sources drawn from the unreliable
	// band.
	NoiseFrac float64
	// Accuracy per method name.
	Accuracy map[string]float64
}

// NoiseRobustness sweeps the source reliability mixture toward
// unreliability and measures every method's truth discovery accuracy —
// the robustness claim of the paper's introduction ("robust against noisy
// data"). At each step the unreliable band (reliability ~0.15-0.3) grows
// at the expense of the reliable bands.
func NoiseRobustness(prof tracegen.Profile, noiseFracs []float64, o Options) ([]RobustnessPoint, error) {
	o = o.withDefaults()
	var out []RobustnessPoint
	for _, frac := range noiseFracs {
		if frac < 0 || frac > 0.9 {
			return nil, fmt.Errorf("experiments: noise fraction %v outside [0, 0.9]", frac)
		}
		p := prof
		// Rescale the profile's reliability mixture: the last band is
		// treated as the unreliable one and pinned to frac; the others
		// shrink proportionally.
		p.Reliability = rescaleNoise(prof.Reliability, frac)
		tr, err := generate(p, o)
		if err != nil {
			return nil, err
		}
		point := RobustnessPoint{NoiseFrac: frac, Accuracy: make(map[string]float64)}
		width := evalWidth(tr, o)

		sstdFn, err := sstdBatch(tr, o)
		if err != nil {
			return nil, err
		}
		conf, err := evalmetrics.EvaluateDynamic(tr, sstdFn, width)
		if err != nil {
			return nil, err
		}
		point.Accuracy["SSTD"] = conf.Accuracy()

		batches, err := stream.SplitByInterval(tr, width)
		if err != nil {
			return nil, err
		}
		bs := make([]batch, len(batches))
		for i, b := range batches {
			bs[i] = batch{start: b.Start, reports: b.Reports}
		}
		tl := runStreaming(baselines.NewDynaTD(), bs)
		conf, err = evalmetrics.EvaluateDynamic(tr, tl.truthFunc(), width)
		if err != nil {
			return nil, err
		}
		point.Accuracy["DynaTD"] = conf.Accuracy()

		ds := baselines.BuildDataset(tr.Reports)
		for _, est := range batchEstimators() {
			fn := staticTruthFunc(est.Estimate(ds))
			conf, err := evalmetrics.EvaluateDynamic(tr, fn, width)
			if err != nil {
				return nil, err
			}
			point.Accuracy[est.Name()] = conf.Accuracy()
		}
		out = append(out, point)
	}
	return out, nil
}

// rescaleNoise pins the final (least reliable) band to frac and scales the
// remaining bands to fill 1-frac.
func rescaleNoise(bands []tracegen.ReliabilityBand, frac float64) []tracegen.ReliabilityBand {
	out := make([]tracegen.ReliabilityBand, len(bands))
	copy(out, bands)
	if len(out) == 0 {
		return out
	}
	last := len(out) - 1
	restOrig := 0.0
	for i := 0; i < last; i++ {
		restOrig += out[i].Frac
	}
	out[last].Frac = frac
	if restOrig > 0 {
		scale := (1 - frac) / restOrig
		for i := 0; i < last; i++ {
			out[i].Frac *= scale
		}
	}
	return out
}

// Fig7Churn computes the speedup curves on a heterogeneous pool with
// cycle-scavenging churn (every fourth slot reclaimed during the run) —
// the operating regime of the paper's actual HTCondor deployment, where
// workstations come and go.
func Fig7Churn(o Options) ([]evalmetrics.SpeedupSeries, error) {
	o = o.withDefaults()
	const claims, tasksPerClaim = 40, 4
	cluster, err := condor.NewHeterogeneousCluster(128, o.Seed)
	if err != nil {
		return nil, err
	}
	var out []evalmetrics.SpeedupSeries
	for _, size := range Fig7DataSizes {
		tasks := buildVirtualTasks(size, claims, tasksPerClaim)
		series := evalmetrics.SpeedupSeries{DataSize: size}
		// Serial reference on one reference-speed slot.
		serial, err := condor.Simulate(tasks, []condor.Slot{{ID: 1, Node: "ref", Speed: 1}}, Fig7CostModel)
		if err != nil {
			return nil, err
		}
		for _, w := range Fig7Workers {
			slots := cluster.ClaimN(w, condor.Resources{Cores: 1})
			if len(slots) < w {
				return nil, fmt.Errorf("experiments: cluster too small for %d workers", w)
			}
			churn := condor.PoolChurn(slots, 4, serial.Makespan/time.Duration(4*w))
			res, err := condor.SimulateEvictions(tasks, slots, Fig7CostModel, churn)
			if err != nil {
				return nil, err
			}
			for _, s := range slots {
				if err := cluster.Release(s); err != nil {
					return nil, err
				}
			}
			series.Workers = append(series.Workers, w)
			series.Speedup = append(series.Speedup, float64(serial.Makespan)/float64(res.Makespan))
		}
		out = append(out, series)
	}
	return out, nil
}
