package experiments

import (
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/condor"
	"github.com/social-sensing/sstd/internal/control"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/rto"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// HitRatePoint is one measurement of Fig. 6: a method's deadline hit rate
// at one deadline setting.
type HitRatePoint struct {
	Method   string
	Deadline time.Duration
	HitRate  float64
}

// Fig6Intervals is the number of equal time intervals each trace is
// divided into (the paper uses 100).
const Fig6Intervals = 100

// Fig6 measures controllability: the trace is split into 100 intervals;
// each scheme processes every interval's reports and its execution time
// (virtual preprocessing + measured compute, see timing.go) is compared
// against a deadline; the hit rate is the fraction of intervals meeting
// it. Deadlines are swept around the median across methods so the
// tight-deadline regime — where SSTD's parallel pool and PID-driven pool
// resizing pay off — is visible.
func Fig6(prof tracegen.Profile, o Options) ([]HitRatePoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	return Fig6On(tr, o)
}

// Fig6On runs the Fig. 6 sweep on an existing trace.
func Fig6On(tr *socialsensing.Trace, o Options) ([]HitRatePoint, error) {
	o = o.withDefaults()
	batches, err := stream.SplitN(tr, Fig6Intervals)
	if err != nil {
		return nil, err
	}

	// Reference deadline: the median serial processing time of an
	// interval, so "tight" and "loose" mean the same thing for every
	// method. The PID variant receives the deadline it must meet.
	times := make(map[string][]time.Duration)

	// Baselines: serial preprocessing + measured per-interval compute.
	d := baselines.NewDynaTD()
	for _, b := range batches {
		t0 := time.Now()
		d.ProcessInterval(b.Reports)
		times["DynaTD"] = append(times["DynaTD"], serialPreprocessTime(len(b.Reports), o)+time.Since(t0))
	}
	for _, est := range batchEstimators() {
		for _, b := range batches {
			t0 := time.Now()
			est.Estimate(baselines.BuildDataset(b.Reports))
			times[est.Name()] = append(times[est.Name()], serialPreprocessTime(len(b.Reports), o)+time.Since(t0))
		}
	}

	// Deadline sweep anchored at the median of the baseline interval
	// times.
	var all []time.Duration
	for _, ts := range times {
		all = append(all, ts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	median := all[len(all)/2]
	if median <= 0 {
		median = time.Microsecond
	}
	multipliers := []float64{0.25, 0.5, 1, 2, 4}

	var out []HitRatePoint
	methods := make([]string, 0, len(times))
	for m := range times {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, mult := range multipliers {
		deadline := time.Duration(float64(median) * mult)
		// SSTD re-runs per deadline: the PID loop adapts the pool to the
		// deadline it is asked to meet.
		sstdTimes, err := sstdIntervalTimes(tr, batches, o, deadline, true)
		if err != nil {
			return nil, err
		}
		out = append(out, HitRatePoint{Method: "SSTD", Deadline: deadline, HitRate: hitRateUnder(sstdTimes, deadline)})
		for _, m := range methods {
			out = append(out, HitRatePoint{Method: m, Deadline: deadline, HitRate: hitRateUnder(times[m], deadline)})
		}
	}
	return out, nil
}

func hitRateUnder(ts []time.Duration, deadline time.Duration) float64 {
	if len(ts) == 0 {
		return 0
	}
	n := 0
	for _, t := range ts {
		if t <= deadline {
			n++
		}
	}
	return float64(n) / float64(len(ts))
}

// AblationPID compares SSTD's per-interval deadline hit rate under three
// allocation policies at a deliberately tight deadline (ablation E11 plus
// the §VII RTO extension): a static pool fixed at the initial size, the
// paper's reactive PID control loop, and the proactive integer-programming
// allocator of the rto package, which sizes the pool from each interval's
// known data volume before processing it.
func AblationPID(prof tracegen.Profile, o Options) ([]HitRatePoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	batches, err := stream.SplitN(tr, Fig6Intervals)
	if err != nil {
		return nil, err
	}
	// Deadline: median static-pool interval time; bursts miss it unless
	// the controller grows the pool in time.
	static, err := sstdIntervalTimes(tr, batches, o, 0, false)
	if err != nil {
		return nil, err
	}
	sorted := append([]time.Duration(nil), static...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	deadline := sorted[len(sorted)/2]
	if deadline <= 0 {
		deadline = time.Microsecond
	}
	withPID, err := sstdIntervalTimes(tr, batches, o, deadline, true)
	if err != nil {
		return nil, err
	}
	withRTO, err := rtoIntervalTimes(tr, batches, o, deadline)
	if err != nil {
		return nil, err
	}
	return []HitRatePoint{
		{Method: "SSTD+RTO", Deadline: deadline, HitRate: hitRateUnder(withRTO, deadline)},
		{Method: "SSTD+PID", Deadline: deadline, HitRate: hitRateUnder(withPID, deadline)},
		{Method: "SSTD-static", Deadline: deadline, HitRate: hitRateUnder(static, deadline)},
	}, nil
}

// rtoIntervalTimes sizes the pool per interval with the integer-program
// allocator: each interval's claims become RTO jobs with the interval
// deadline, the solver picks the worker count (and task splits) before
// processing starts, and the interval then runs on that pool.
func rtoIntervalTimes(tr *socialsensing.Trace, batches []stream.Batch, o Options, deadline time.Duration) ([]time.Duration, error) {
	model := rto.Model{
		InitTime: costModel(o).InitTime,
		Theta2:   o.PerReportCost,
	}
	limits := rto.Limits{MinWorkers: o.Workers, MaxWorkers: 64, MaxTasksPerJob: maxTasksPerJob}
	// The solver targets the same safety margin the PID loop uses.
	target := time.Duration(float64(deadline) * 0.7)
	if target <= 0 {
		target = deadline
	}

	// The HMM decode cost per claim is not part of Eq. 11's data term;
	// the allocator estimates it adaptively as a running mean of the
	// measured decode time from past intervals, expressed in work units.
	decodeWork := 10.0 // initial guess: ~10 reports' worth per claim
	const decodeEMA = 0.2

	out := make([]time.Duration, 0, len(batches))
	for _, b := range batches {
		byClaim := groupByClaim(b.Reports)
		workers := o.Workers
		if len(byClaim) > 0 {
			jobs := make([]rto.JobSpec, 0, len(byClaim))
			for c, rs := range byClaim {
				jobs = append(jobs, rto.JobSpec{
					ID:       string(c),
					DataSize: float64(len(rs)) + decodeWork,
					Deadline: target,
				})
			}
			alloc, err := rto.Solve(jobs, model, limits)
			if err != nil {
				return nil, err
			}
			workers = alloc.Workers
		}
		elapsed, decodeTotal, err := sstdIntervalElapsedMeasured(tr, byClaim, workers, o)
		if err != nil {
			return nil, err
		}
		out = append(out, elapsed)
		if n := len(byClaim); n > 0 {
			perClaim := float64(decodeTotal) / float64(n) / float64(o.PerReportCost)
			decodeWork = (1-decodeEMA)*decodeWork + decodeEMA*perClaim
		}
	}
	return out, nil
}

// sstdIntervalTimes computes SSTD's per-interval completion times:
// virtual parallel preprocessing on the current pool plus the measured HMM
// decode over that interval's reports (matching the paper's "execution
// time to process all the tweets in that time interval"). With control
// enabled, a PID tuner watches each interval's WCET prediction against the
// deadline and resizes the (virtual) pool — the Global Control Knob —
// before the next interval.
func sstdIntervalTimes(tr *socialsensing.Trace, batches []stream.Batch, o Options, deadline time.Duration, enableControl bool) ([]time.Duration, error) {
	var tuner *control.Tuner
	var err error
	workers := o.Workers
	if enableControl {
		cfg := control.DefaultTunerConfig()
		// HTCondor scavenges idle cycles, so holding the baseline pool
		// costs nothing: the controller only grows under deadline
		// pressure and returns to the configured size when early.
		cfg.MinWorkers = workers
		cfg.MaxWorkers = 64
		// Interval deadlines are milliseconds; normalize the PID error
		// by the deadline so the paper's gains apply unchanged, and keep
		// the integral small so a long stretch of early intervals cannot
		// wind the pool down for the next burst.
		cfg.RelativeError = true
		cfg.PID.IntegralLimit = 5
		tuner, err = control.NewTuner(cfg, workers)
		if err != nil {
			return nil, err
		}
	}
	// The controller regulates measured interval time toward a setpoint
	// at 70% of the deadline: meeting the deadline "on average" would hit
	// only half the intervals, so the loop aims below it.
	setpoint := time.Duration(float64(deadline) * 0.7)

	out := make([]time.Duration, 0, len(batches))
	for _, b := range batches {
		byClaim := groupByClaim(b.Reports)
		elapsed, err := sstdIntervalElapsed(tr, byClaim, workers, o)
		if err != nil {
			return nil, err
		}
		out = append(out, elapsed)

		if tuner == nil {
			continue
		}
		// Feed back the measured interval time against the setpoint
		// (Eq. 9's error signal) and actuate the pool size.
		dec, err := tuner.Step([]control.JobStatus{{
			JobID:          "interval",
			Deadline:       setpoint,
			Elapsed:        elapsed,
			ExpectedFinish: elapsed,
		}}, time.Second)
		if err != nil {
			return nil, err
		}
		workers = dec.Workers
		if o.ControlLog != nil {
			state, _ := tuner.PIDState("interval")
			o.ControlLog.BeginTick()
			o.ControlLog.Record(obs.ControlSample{
				Time:             time.Now(),
				Job:              "interval",
				Error:            state.Err,
				P:                state.P,
				I:                state.I,
				D:                state.D,
				Signal:           dec.Signals["interval"],
				LCK:              dec.Priorities["interval"],
				GCK:              dec.Workers,
				ExpectedFinishMs: float64(elapsed) / float64(time.Millisecond),
				DeadlineMs:       float64(setpoint) / float64(time.Millisecond),
			})
		}
	}
	return out, nil
}

// groupByClaim partitions an interval's reports per claim.
func groupByClaim(reports []socialsensing.Report) map[socialsensing.ClaimID][]socialsensing.Report {
	byClaim := make(map[socialsensing.ClaimID][]socialsensing.Report)
	for _, r := range reports {
		byClaim[r.Claim] = append(byClaim[r.Claim], r)
	}
	return byClaim
}

// sstdIntervalElapsed computes one interval's SSTD completion time on a
// pool of the given size: a fresh engine measures each claim's HMM decode
// over this interval's data only (the decode runs inside the claim's TD
// job on a worker), the measured time joins the job's work, and the whole
// task set is list-scheduled on the virtual pool.
func sstdIntervalElapsed(tr *socialsensing.Trace, byClaim map[socialsensing.ClaimID][]socialsensing.Report, workers int, o Options) (time.Duration, error) {
	elapsed, _, err := sstdIntervalElapsedMeasured(tr, byClaim, workers, o)
	return elapsed, err
}

// sstdIntervalElapsedMeasured additionally returns the summed measured
// decode time, which adaptive allocators use as a cost estimate.
func sstdIntervalElapsedMeasured(tr *socialsensing.Trace, byClaim map[socialsensing.ClaimID][]socialsensing.Report, workers int, o Options) (time.Duration, time.Duration, error) {
	eng, err := core.NewEngine(engineConfig(tr, o))
	if err != nil {
		return 0, 0, err
	}
	decode := make(map[string]time.Duration, len(byClaim))
	var decodeTotal time.Duration
	for c, rs := range byClaim {
		for _, r := range rs {
			if err := eng.Ingest(r); err != nil {
				return 0, 0, err
			}
		}
		t0 := time.Now()
		if _, err := eng.DecodeClaim(c); err != nil {
			return 0, 0, err
		}
		d := time.Since(t0)
		decode[string(c)] = d
		decodeTotal += d
	}
	tasks := claimTasks(byClaim)
	// Attach each claim's decode to its job's first task (the decode
	// actually follows the job's last chunk; list scheduling
	// approximates the same makespan for these task counts).
	attached := make(map[string]bool, len(decode))
	for i := range tasks {
		if !attached[tasks[i].JobID] {
			attached[tasks[i].JobID] = true
			tasks[i].Work += float64(decode[tasks[i].JobID]) / float64(o.PerReportCost)
		}
	}
	if len(tasks) == 0 {
		return 0, 0, nil
	}
	res, err := condor.Simulate(tasks, unitSlots(workers), costModel(o))
	if err != nil {
		return 0, 0, err
	}
	return res.Makespan, decodeTotal, nil
}
