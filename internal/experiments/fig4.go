package experiments

import (
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// ExecTimePoint is one measurement of Fig. 4: a method's execution time at
// a data size.
type ExecTimePoint struct {
	Method  string
	Reports int
	Elapsed time.Duration
}

// Fig4 measures execution time versus data size on one trace: SSTD's
// preprocessing runs (in virtual time) on the worker pool — the paper uses
// 4 workers — while the baselines preprocess serially; each method's
// algorithmic compute is measured and added (see timing.go). The trace is
// swept at 20..100% of its reports.
func Fig4(prof tracegen.Profile, o Options) ([]ExecTimePoint, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	return Fig4On(tr, o)
}

// Fig4On runs the Fig. 4 sweep on an existing trace.
func Fig4On(tr *socialsensing.Trace, o Options) ([]ExecTimePoint, error) {
	o = o.withDefaults()
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var out []ExecTimePoint
	for _, f := range fractions {
		prefix := stream.Prefix(tr, int(f*float64(len(tr.Reports))))
		n := len(prefix.Reports)

		// SSTD: parallel preprocessing (virtual) + measured decode.
		elapsed, err := sstdHybridTime(prefix, o)
		if err != nil {
			return nil, fmt.Errorf("fig4 sstd at %.0f%%: %w", f*100, err)
		}
		out = append(out, ExecTimePoint{Method: "SSTD", Reports: n, Elapsed: elapsed})

		// DynaTD: serial preprocessing (virtual) + measured streaming
		// pass.
		width := evalWidth(prefix, o)
		batches, err := stream.SplitByInterval(prefix, width)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		d := baselines.NewDynaTD()
		for _, b := range batches {
			d.ProcessInterval(b.Reports)
		}
		out = append(out, ExecTimePoint{
			Method:  "DynaTD",
			Reports: n,
			Elapsed: serialPreprocessTime(n, o) + time.Since(start),
		})

		// Batch baselines: serial preprocessing + measured estimation.
		for _, est := range batchEstimators() {
			start := time.Now()
			ds := baselines.BuildDataset(prefix.Reports)
			est.Estimate(ds)
			out = append(out, ExecTimePoint{
				Method:  est.Name(),
				Reports: n,
				Elapsed: serialPreprocessTime(n, o) + time.Since(start),
			})
		}
	}
	return out, nil
}

// sstdHybridTime is SSTD's Fig. 4 execution time for one trace prefix:
// virtual parallel preprocessing plus the measured in-process HMM decode of
// every claim.
func sstdHybridTime(tr *socialsensing.Trace, o Options) (time.Duration, error) {
	byClaim := tr.ReportsByClaim()
	prep, err := sstdPreprocessTime(byClaim, o.Workers, o)
	if err != nil {
		return 0, err
	}
	eng, err := core.NewEngine(engineConfig(tr, o))
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := eng.IngestAll(tr.Reports); err != nil {
		return 0, err
	}
	if _, err := eng.DecodeAll(); err != nil {
		return 0, err
	}
	return prep + time.Since(start), nil
}
