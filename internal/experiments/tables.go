package experiments

import (
	"fmt"

	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
)

// TableII generates the three traces and returns their statistics.
func TableII(o Options) ([]socialsensing.Stats, error) {
	o = o.withDefaults()
	out := make([]socialsensing.Stats, 0, 3)
	for _, prof := range tracegen.Profiles() {
		tr, err := generate(prof, o)
		if err != nil {
			return nil, fmt.Errorf("table II %s: %w", prof.Name, err)
		}
		out = append(out, tr.Summarize())
	}
	return out, nil
}

// AccuracyTable reproduces one of Tables III-V: effectiveness of SSTD and
// the six baselines on the named trace, scored per interval against the
// evolving ground truth.
func AccuracyTable(prof tracegen.Profile, o Options) ([]evalmetrics.Report, error) {
	o = o.withDefaults()
	tr, err := generate(prof, o)
	if err != nil {
		return nil, err
	}
	return AccuracyTableOn(tr, o)
}

// AccuracyTableOn runs the effectiveness comparison on an existing trace.
func AccuracyTableOn(tr *socialsensing.Trace, o Options) ([]evalmetrics.Report, error) {
	o = o.withDefaults()
	width := evalWidth(tr, o)
	var out []evalmetrics.Report

	// SSTD.
	sstdFn, err := sstdBatch(tr, o)
	if err != nil {
		return nil, fmt.Errorf("sstd: %w", err)
	}
	conf, err := evalmetrics.EvaluateDynamic(tr, sstdFn, width)
	if err != nil {
		return nil, err
	}
	out = append(out, evalmetrics.ReportOf("SSTD", conf))

	// DynaTD (streaming).
	batches, err := stream.SplitByInterval(tr, width)
	if err != nil {
		return nil, err
	}
	bs := make([]batch, len(batches))
	for i, b := range batches {
		bs[i] = batch{start: b.Start, reports: b.Reports}
	}
	tl := runStreaming(baselines.NewDynaTD(), bs)
	conf, err = evalmetrics.EvaluateDynamic(tr, tl.truthFunc(), width)
	if err != nil {
		return nil, err
	}
	out = append(out, evalmetrics.ReportOf("DynaTD", conf))

	// Batch baselines: one verdict per claim over the whole trace.
	ds := baselines.BuildDataset(tr.Reports)
	for _, est := range batchEstimators() {
		fn := staticTruthFunc(est.Estimate(ds))
		conf, err := evalmetrics.EvaluateDynamic(tr, fn, width)
		if err != nil {
			return nil, err
		}
		out = append(out, evalmetrics.ReportOf(est.Name(), conf))
	}
	return out, nil
}
