// Package sstdctl is the client library behind the sstdctl CLI: thin
// typed wrappers over a master's telemetry-plane endpoints (/query for
// the retained time-series store, /slo for error-budget status,
// /dump/cluster for cross-host flight-dump collection) plus text
// renderers for terminal output.
package sstdctl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"github.com/social-sensing/sstd/internal/obs/slo"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// Client talks to one master's observability endpoints.
type Client struct {
	// Base is the endpoint root, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// get fetches path (with query values) and decodes the JSON reply into out.
func (c *Client) get(path string, q url.Values, out any) error {
	u := strings.TrimRight(c.Base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.http().Get(u)
	if err != nil {
		return fmt.Errorf("sstdctl: GET %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("sstdctl: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// QueryOpts selects series from the /query endpoint. Zero Series lists
// the retained series names instead.
type QueryOpts struct {
	Series string
	// Labels are exact-match selectors (e.g. host=pool-worker-0).
	Labels map[string]string
	// Since is a lookback duration ("5m") or RFC3339 instant; empty means
	// the full retention.
	Since string
	// Step downsamples to one point per bucket ("1s"); empty keeps raw.
	Step string
	// Limit caps points per series (0 = server default).
	Limit int
}

// Query runs one time-series query.
func (c *Client) Query(opts QueryOpts) (*tsdb.QueryResult, error) {
	q := url.Values{}
	if opts.Series != "" {
		q.Set("series", opts.Series)
	}
	for k, v := range opts.Labels {
		q.Add("label", k+"="+v)
	}
	if opts.Since != "" {
		q.Set("since", opts.Since)
	}
	if opts.Step != "" {
		q.Set("step", opts.Step)
	}
	if opts.Limit > 0 {
		q.Set("limit", fmt.Sprintf("%d", opts.Limit))
	}
	var out tsdb.QueryResult
	if err := c.get("/query", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SLO fetches every objective's error-budget status.
func (c *Client) SLO() ([]slo.Status, error) {
	var out []slo.Status
	if err := c.get("/slo", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Dumps lists completed cross-host flight-dump collections.
func (c *Client) Dumps() ([]workqueue.ClusterDumpInfo, error) {
	var out []workqueue.ClusterDumpInfo
	if err := c.get("/dump/cluster", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Dump triggers a manual cross-host collection round and reports the
// merged trace it wrote.
func (c *Client) Dump() (*workqueue.ClusterDumpInfo, error) {
	u := strings.TrimRight(c.Base, "/") + "/dump/cluster"
	resp, err := c.http().Post(u, "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("sstdctl: POST /dump/cluster: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("sstdctl: POST /dump/cluster: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out workqueue.ClusterDumpInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FormatQuery renders a query result for the terminal: a name listing
// for discovery queries, otherwise one block per series with its label
// set and last points.
func FormatQuery(res *tsdb.QueryResult, tail int) string {
	var b strings.Builder
	if len(res.Series) == 0 {
		if len(res.Names) == 0 {
			return "no series retained\n"
		}
		fmt.Fprintf(&b, "%d series:\n", len(res.Names))
		for _, n := range res.Names {
			fmt.Fprintf(&b, "  %s\n", n)
		}
		return b.String()
	}
	if tail <= 0 {
		tail = 5
	}
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%s%s  (%d points)\n", s.Name, formatLabels(s.Labels), len(s.Points))
		pts := s.Points
		if len(pts) > tail {
			pts = pts[len(pts)-tail:]
		}
		for _, p := range pts {
			fmt.Fprintf(&b, "  %s  %g\n", time.UnixMilli(p.T).UTC().Format("15:04:05.000"), p.V)
		}
	}
	return b.String()
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// FormatSLO renders the error-budget table.
func FormatSLO(statuses []slo.Status) string {
	if len(statuses) == 0 {
		return "no objectives configured\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-8s %10s %10s %10s %8s %7s\n",
		"SLO", "TARGET", "GOOD", "BAD", "FAST-BURN", "SLOW", "FIRING")
	for _, s := range statuses {
		firing := "no"
		if s.Firing {
			firing = fmt.Sprintf("YES (%s)", time.Since(s.FiringSince).Round(time.Second))
		}
		fmt.Fprintf(&b, "%-16s %-8.3g %10d %10d %10.2f %8.2f %7s\n",
			s.Name, s.Target, s.GoodTotal, s.BadTotal, s.FastBurn, s.SlowBurn, firing)
		fmt.Fprintf(&b, "  budget remaining: %.1f%%  alerts: %d\n", s.BudgetRemaining*100, s.Alerts)
	}
	return b.String()
}

// FormatDump renders one collection record.
func FormatDump(d *workqueue.ClusterDumpInfo) string {
	return fmt.Sprintf("cluster dump #%d  trigger=%s  hosts=%s  events=%d\n  %s\n",
		d.Seq, d.Trigger, strings.Join(d.Hosts, ","), d.Events, d.Path)
}

// FormatDumps renders the collection history.
func FormatDumps(ds []workqueue.ClusterDumpInfo) string {
	if len(ds) == 0 {
		return "no cluster dumps collected\n"
	}
	var b strings.Builder
	for i := range ds {
		b.WriteString(FormatDump(&ds[i]))
	}
	return b.String()
}
