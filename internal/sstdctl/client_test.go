package sstdctl

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/slo"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
)

// newTelemetryServer mounts a real store and SLO engine behind the same
// endpoints the binaries expose, so the client is tested against the
// actual handlers rather than canned JSON.
func newTelemetryServer(t *testing.T) (*httptest.Server, *tsdb.Store, *slo.Engine, *obs.Registry) {
	t.Helper()
	store := tsdb.New(0)
	src := obs.NewRegistry()
	engine := slo.New(slo.Config{Source: src, OnAlert: func(slo.Objective, slo.Status) {}}, slo.Objective{
		Name: "deadline", Good: "dtm_deadline_hit_total", Bad: "dtm_deadline_miss_total",
		Target: 0.9, FastWindow: time.Second, SlowWindow: 2 * time.Second, BurnThreshold: 1,
	})
	mux := http.NewServeMux()
	mux.Handle("/query", store.Handler())
	mux.Handle("/slo", engine.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, store, engine, src
}

func TestClientQueryAndDiscovery(t *testing.T) {
	srv, store, _, _ := newTelemetryServer(t)
	now := time.Now()
	for i := 0; i < 5; i++ {
		store.Append("wq_queue_depth", map[string]string{"host": "master"}, now.Add(time.Duration(i)*time.Second), float64(i))
	}
	c := &Client{Base: srv.URL}

	// Discovery: no series selected lists names.
	res, err := c.Query(QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1 || res.Names[0] != "wq_queue_depth" {
		t.Fatalf("names = %v", res.Names)
	}
	if out := FormatQuery(res, 5); !strings.Contains(out, "wq_queue_depth") {
		t.Errorf("discovery output = %q", out)
	}

	// Selection with a label matcher.
	res, err = c.Query(QueryOpts{Series: "wq_queue_depth", Labels: map[string]string{"host": "master"}, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series = %+v", res.Series)
	}
	if n := len(res.Series[0].Points); n != 3 {
		t.Errorf("limit ignored: %d points", n)
	}
	if out := FormatQuery(res, 2); !strings.Contains(out, `host="master"`) {
		t.Errorf("series output = %q", out)
	}

	// A mismatched matcher selects nothing.
	res, err = c.Query(QueryOpts{Series: "wq_queue_depth", Labels: map[string]string{"host": "elsewhere"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Errorf("matcher should have excluded all series: %+v", res.Series)
	}
}

func TestClientSLO(t *testing.T) {
	srv, _, engine, src := newTelemetryServer(t)
	src.Counter("dtm_deadline_hit_total").Add(9)
	src.Counter("dtm_deadline_miss_total").Add(1)
	engine.Tick(time.Now())

	c := &Client{Base: srv.URL}
	statuses, err := c.SLO()
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || statuses[0].Name != "deadline" || statuses[0].GoodTotal != 9 {
		t.Fatalf("statuses = %+v", statuses)
	}
	if out := FormatSLO(statuses); !strings.Contains(out, "deadline") {
		t.Errorf("slo output = %q", out)
	}
}

func TestClientErrorsSurfaceBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad label selector", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL}
	_, err := c.Query(QueryOpts{Series: "x"})
	if err == nil || !strings.Contains(err.Error(), "bad label selector") {
		t.Fatalf("err = %v, want body surfaced", err)
	}
}
