package dtm

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

func origin() time.Time { return time.Date(2016, 9, 30, 12, 0, 0, 0, time.UTC) }

// flipReports builds reports for one claim whose truth flips at
// flipMinute over the given number of minutes.
func flipReports(claim socialsensing.ClaimID, minutes, flipMinute, perMinute int, noise float64, seed int64) []socialsensing.Report {
	rng := rand.New(rand.NewSource(seed))
	var out []socialsensing.Report
	for m := 0; m < minutes; m++ {
		truthTrue := m < flipMinute
		for k := 0; k < perMinute; k++ {
			correct := rng.Float64() >= noise
			att := socialsensing.Disagree
			if truthTrue == correct {
				att = socialsensing.Agree
			}
			out = append(out, socialsensing.Report{
				Source:       socialsensing.SourceID(fmt.Sprintf("s%d", k)),
				Claim:        claim,
				Timestamp:    origin().Add(time.Duration(m) * time.Minute),
				Attitude:     att,
				Uncertainty:  0.1,
				Independence: 0.9,
			})
		}
	}
	return out
}

// newLocalEngine builds the in-process SSTD engine with the same pipeline
// parameters as the manager config, for equivalence checks.
func newLocalEngine(t *testing.T, cfg Config) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Config{ACS: cfg.ACS, Decoder: cfg.Decoder, Origin: cfg.Origin})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func drain(t *testing.T, m *Manager, n int) []JobResult {
	t.Helper()
	out := make([]JobResult, 0, n)
	timeout := time.After(30 * time.Second)
	for len(out) < n {
		select {
		case r, ok := <-m.Results():
			if !ok {
				t.Fatalf("results closed at %d/%d", len(out), n)
			}
			out = append(out, r)
		case <-timeout:
			t.Fatalf("timed out at %d/%d results", len(out), n)
		}
	}
	return out
}

func TestManagerEndToEnd(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	const minutes, flip = 60, 30
	if err := m.SubmitJob("c1", flipReports("c1", minutes, flip, 8, 0.15, 42), 0); err != nil {
		t.Fatal(err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("job error: %v", res.Err)
	}
	if res.Claim != "c1" {
		t.Errorf("claim = %s", res.Claim)
	}
	if len(res.Estimates) != minutes {
		t.Fatalf("estimates = %d, want %d", len(res.Estimates), minutes)
	}
	correct := 0
	for _, es := range res.Estimates {
		want := socialsensing.False
		if es.Interval < flip {
			want = socialsensing.True
		}
		if es.Value == want {
			correct++
		}
	}
	if acc := float64(correct) / float64(minutes); acc < 0.85 {
		t.Errorf("distributed decode accuracy = %.2f, want >= 0.85", acc)
	}
	if !res.MetDeadline {
		t.Error("job with no deadline reported a miss")
	}
}

func TestManagerMatchesSingleNodeEngine(t *testing.T) {
	// The distributed path (split -> partial sums -> merge -> decode)
	// must produce exactly the same estimates as the in-process engine.
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.TasksPerJob = 5
	reports := flipReports("c1", 40, 20, 6, 0.1, 7)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("c1", reports, 0); err != nil {
		t.Fatal(err)
	}
	distributed := drain(t, m, 1)[0]
	if distributed.Err != nil {
		t.Fatal(distributed.Err)
	}

	ecfg := struct {
		got []socialsensing.TruthValue
	}{}
	eng := newLocalEngine(t, cfg)
	for _, r := range reports {
		if err := eng.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	est, err := eng.DecodeClaim("c1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range est {
		ecfg.got = append(ecfg.got, e.Value)
	}
	var dgot []socialsensing.TruthValue
	for _, e := range distributed.Estimates {
		dgot = append(dgot, e.Value)
	}
	if !reflect.DeepEqual(ecfg.got, dgot) {
		t.Errorf("distributed decode differs from local engine:\nlocal = %v\ndist  = %v", ecfg.got, dgot)
	}
}

func TestManagerMultipleJobs(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.Workers = 6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	const jobs = 8
	for i := 0; i < jobs; i++ {
		claim := socialsensing.ClaimID(fmt.Sprintf("claim-%d", i))
		if err := m.SubmitJob(claim, flipReports(claim, 30, 10+i, 5, 0.1, int64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	results := drain(t, m, jobs)
	seen := make(map[socialsensing.ClaimID]bool)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %s error: %v", r.Claim, r.Err)
		}
		seen[r.Claim] = true
	}
	if len(seen) != jobs {
		t.Errorf("distinct completed jobs = %d, want %d", len(seen), jobs)
	}
}

func TestManagerDeadlines(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.Workers = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	reports := flipReports("c", 20, 10, 4, 0.1, 1)
	// Generous deadline: met. (1 ns deadline: missed.)
	if err := m.SubmitJob("c", reports, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitJob("c2", reports, time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	results := drain(t, m, 2)
	for _, r := range results {
		switch r.Claim {
		case "c":
			if !r.MetDeadline {
				t.Error("1h deadline missed")
			}
		case "c2":
			if r.MetDeadline {
				t.Error("1ns deadline met (impossible)")
			}
		}
	}
}

func TestManagerDuplicateJobRejected(t *testing.T) {
	m, err := New(DefaultConfig(origin()))
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("dup", flipReports("dup", 5, 2, 2, 0, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitJob("dup", nil, 0); err == nil {
		t.Error("duplicate job accepted")
	}
	drain(t, m, 1)
}

func TestManagerEmptyJob(t *testing.T) {
	m, err := New(DefaultConfig(origin()))
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("empty", nil, 0); err != nil {
		t.Fatal(err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Errorf("empty job error: %v", res.Err)
	}
	if len(res.Estimates) != 0 {
		t.Errorf("empty job estimates = %v", res.Estimates)
	}
}

func TestManagerControlLoopAdjustsPool(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.Workers = 1
	cfg.EnableControl = true
	cfg.SampleEvery = 20 * time.Millisecond
	cfg.WorkDelay = 2 * time.Millisecond // make work visible to the monitor
	cfg.Tuner.MaxWorkers = 16
	// Calibrate WCET so the model predicts lateness under the tight
	// deadline below.
	cfg.WCET.Theta2 = 10 * time.Millisecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	for i := 0; i < 4; i++ {
		claim := socialsensing.ClaimID(fmt.Sprintf("c%d", i))
		if err := m.SubmitJob(claim, flipReports(claim, 20, 10, 10, 0.1, int64(i)), 300*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// The controller grows the pool while jobs are predicted late and
	// may legitimately shrink it back once the backlog clears, so track
	// the peak while draining.
	maxWorkers := m.Workers()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			if w := m.Workers(); w > maxWorkers {
				maxWorkers = w
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	results := drain(t, m, 4)
	done <- struct{}{}
	<-done
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %s: %v", r.Claim, r.Err)
		}
	}
	if maxWorkers <= 1 {
		t.Errorf("control loop never grew the pool: peak %d workers", maxWorkers)
	}
}

func TestManagerProgress(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.Workers = 1
	cfg.WorkDelay = time.Millisecond // keep the job in flight briefly
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("slow", flipReports("slow", 10, 5, 5, 0.1, 1), time.Minute); err != nil {
		t.Fatal(err)
	}
	// Shortly after submission the job must be visible in Progress.
	deadline := time.Now().Add(5 * time.Second)
	var seen bool
	for time.Now().Before(deadline) {
		prog := m.Progress()
		if len(prog) == 1 {
			p := prog[0]
			if p.Claim != "slow" || p.Tasks < 1 || p.Deadline != time.Minute {
				t.Fatalf("progress = %+v", p)
			}
			seen = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !seen {
		t.Fatal("job never appeared in Progress")
	}
	drain(t, m, 1)
	if got := m.Progress(); len(got) != 0 {
		t.Errorf("completed job still in Progress: %+v", got)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig(origin())
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("", nil, 0); err == nil {
		t.Error("empty claim accepted")
	}
}

func TestSplitReports(t *testing.T) {
	mk := func(n int) []socialsensing.Report {
		rs := make([]socialsensing.Report, n)
		for i := range rs {
			rs[i].Source = socialsensing.SourceID(fmt.Sprintf("s%d", i))
		}
		return rs
	}
	tests := []struct {
		n, chunks int
		sizes     []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{3, 4, []int{1, 1, 1}},
		{0, 4, []int{0}},
		{5, 1, []int{5}},
		{7, 0, []int{7}},
	}
	for _, tt := range tests {
		got := splitReports(mk(tt.n), tt.chunks)
		var sizes []int
		total := 0
		for _, c := range got {
			sizes = append(sizes, len(c))
			total += len(c)
		}
		if !reflect.DeepEqual(sizes, tt.sizes) {
			t.Errorf("splitReports(%d, %d) sizes = %v, want %v", tt.n, tt.chunks, sizes, tt.sizes)
		}
		if total != tt.n {
			t.Errorf("splitReports(%d, %d) lost reports: %d", tt.n, tt.chunks, total)
		}
	}
}

func TestWindowedSeries(t *testing.T) {
	sums := map[int]float64{0: 1, 1: 1, 3: -1}
	got := windowedSeries(sums, 2)
	want := []float64{1, 2, 1, -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("windowedSeries = %v, want %v", got, want)
	}
	if got := windowedSeries(nil, 2); got != nil {
		t.Errorf("empty sums = %v", got)
	}
	if got := windowedSeries(map[int]float64{0: 3}, 0); !reflect.DeepEqual(got, []float64{3}) {
		t.Errorf("window 0 clamped = %v", got)
	}
}
