// Package dtm implements the Dynamic Task Manager of the paper's §IV-B/C:
// the Work Queue master script that (i) spawns a TD job per claim, splits
// it into tasks and submits them to the pool, (ii) merges task results and
// runs the final HMM decode, and (iii) closes the feedback control loop —
// sampling job progress, feeding per-job PID controllers, and actuating the
// Local Control Knob (job priorities) and Global Control Knob (worker pool
// size).
package dtm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/control"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// Config parameterizes a Manager.
type Config struct {
	// ACS and Decoder configure the SSTD pipeline; Origin anchors the
	// interval grid.
	ACS     core.ACSConfig
	Decoder core.DecoderConfig
	Origin  time.Time

	// TasksPerJob is how many tasks each TD job is split into. The paper
	// keeps this small to bound init overhead (Eq. 11). Default 4.
	TasksPerJob int
	// Workers is the initial pool size (GCK starting point). Default 4.
	Workers int

	// EnableControl turns the PID feedback loop on.
	EnableControl bool
	// Tuner and WCET parameterize the control loop.
	Tuner control.TunerConfig
	WCET  control.WCETModel
	// SampleEvery is the control sampling period (paper: 1 s).
	SampleEvery time.Duration

	// WorkDelay adds an artificial per-report processing cost in the
	// executor, used by experiments to emulate computation-heavy loads.
	WorkDelay time.Duration

	// Heartbeat is the worker liveness ping interval; SuspectAfter and
	// DeadAfter are the master-side thresholds for demoting a silent
	// worker to suspect and evicting it (requeueing its in-flight task).
	// StragglerFactor flags workers whose smoothed exec time exceeds the
	// cluster median by this factor. Zero values disable each mechanism.
	// The defaults are deliberately generous: a false eviction costs a
	// task re-execution, a missed one only delays it.
	Heartbeat       time.Duration
	SuspectAfter    time.Duration
	DeadAfter       time.Duration
	StragglerFactor float64

	// TaskTimeout is the master-side per-task deadline (lost frames are
	// recovered by severing the worker and requeueing); ExecTimeout is
	// the worker-side execution cap. MaxTaskRetries bounds requeues
	// before a poisoned task is quarantined and its job completes
	// Degraded; RequeueBackoff paces those requeues. Zero values keep
	// each mechanism at the master's defaults (TaskTimeout/ExecTimeout
	// off, MaxTaskRetries unlimited).
	TaskTimeout    time.Duration
	ExecTimeout    time.Duration
	MaxTaskRetries int
	RequeueBackoff workqueue.BackoffConfig
	// TaskBatch enables task batching on the work-queue master: up to
	// this many tasks coalesce into one wire frame per worker, with a
	// pipelined ack window (see workqueue.MasterConfig.BatchSize).
	// Zero keeps the lock-step one-task-per-frame protocol.
	TaskBatch int
	// RespawnWorkers keeps the pool at its target size when a worker
	// dies without a graceful release (the paper's scavenged pool
	// backfilling evicted nodes).
	RespawnWorkers bool

	// WrapConn and WrapExec are the chaos layer's injection hooks: the
	// former wraps each pool worker's pipe pair, the latter the task
	// executor. Both nil in production.
	WrapConn func(master, worker net.Conn) (net.Conn, net.Conn)
	WrapExec func(workqueue.Executor) workqueue.Executor

	// Admission enables capacity-model admission control on SubmitJob:
	// jobs whose predicted completion (given queue depth and the fitted
	// or observed per-worker service rate) exceeds their deadline are
	// rejected with workqueue.ErrAdmissionRejected — or, with
	// Admission.Shed set, admitted into a near-zero-priority degraded
	// lane. Nil leaves the gate open.
	Admission *workqueue.AdmissionConfig

	// Seed drives scheduler randomness.
	Seed int64
	// SchedShards overrides the work-queue scheduler's shard count
	// (0 = GOMAXPROCS; see workqueue.MasterConfig.SchedShards).
	SchedShards int

	// Metrics, Tracer and ControlLog enable telemetry (each may be nil;
	// the instrumentation then costs one nil check per event). Metrics
	// and Tracer are shared with the underlying work-queue master, so
	// one registry sees the whole dtm_*/wq_* catalogue; ControlLog
	// captures every PID tick as a time series. Logger receives
	// structured events (job lifecycle, worker loss, evictions) with
	// trace/job/worker correlation fields.
	Metrics    *obs.Registry
	Tracer     *obs.Tracer
	ControlLog *obs.ControlRecorder
	Logger     *obs.Logger

	// Telemetry, when set, is handed to the work-queue master as the
	// retained time-series store for the workers' shipped metrics
	// snapshots (the telemetry plane's /query backing store).
	Telemetry *tsdb.Store
	// ClusterDumps enables cross-host flight-dump collection on the
	// master: any flight-recorder trip then broadcasts FreezeRings and
	// writes one merged multi-host Chrome trace. FlightRec overrides the
	// recorder whose trips cascade (default flightrec.Active()).
	ClusterDumps *workqueue.ClusterDumpConfig
	FlightRec    *flightrec.Recorder
	// WorkerFlightRec supplies each pool worker's private recorder so
	// in-process workers answer FreezeRings with per-host rings (see
	// workqueue.Pool.WorkerRecorder). Nil shares the process recorder.
	WorkerFlightRec func(id string) *flightrec.Recorder
}

// DefaultConfig returns a working configuration.
func DefaultConfig(origin time.Time) Config {
	return Config{
		ACS:         core.DefaultACSConfig(),
		Decoder:     core.DefaultDecoderConfig(),
		Origin:      origin,
		TasksPerJob: 4,
		Workers:     4,
		Tuner:       control.DefaultTunerConfig(),
		WCET: control.WCETModel{
			InitTime: time.Millisecond,
			Theta1:   10 * time.Microsecond,
			Theta2:   40 * time.Microsecond,
		},
		SampleEvery:     time.Second,
		Heartbeat:       250 * time.Millisecond,
		SuspectAfter:    2 * time.Second,
		DeadAfter:       10 * time.Second,
		StragglerFactor: 2,
		MaxTaskRetries:  8,
		RespawnWorkers:  true,
	}
}

// JobResult is the outcome of one TD job.
type JobResult struct {
	Claim     socialsensing.ClaimID
	Estimates []core.Estimate
	Err       error
	// Elapsed is wall-clock from submission to completion.
	Elapsed time.Duration
	// Deadline is the job's soft deadline (zero = none).
	Deadline time.Duration
	// MetDeadline reports Elapsed <= Deadline (true when no deadline).
	MetDeadline bool
	// Degraded marks a job decoded from partial data: FailedTasks of its
	// tasks were lost (quarantined after exhausting retries, or failed
	// outright), and the remaining tasks' sums were decoded anyway —
	// graceful degradation instead of stalling the manager. Err stays
	// nil; only a job with no successful task at all reports Err.
	Degraded    bool
	FailedTasks int
	// Shed marks a job the admission gate demoted to the degraded
	// priority lane: it ran, but only on capacity the deadline-bound
	// jobs left idle, so its deadline carries no promise.
	Shed bool
}

// taskPayload is the unit of work shipped to workers: compute partial
// per-interval contribution-score sums for a chunk of one claim's reports.
type taskPayload struct {
	Claim    socialsensing.ClaimID  `json:"claim"`
	Origin   time.Time              `json:"origin"`
	Interval time.Duration          `json:"interval_ns"`
	Reports  []socialsensing.Report `json:"reports"`
}

// taskOutput is the sparse partial ACS interval sums a worker returns.
type taskOutput struct {
	Sums map[int]float64 `json:"sums"`
}

// jobState tracks one in-flight TD job on the master side.
type jobState struct {
	claim     socialsensing.ClaimID
	submitted time.Time
	deadline  time.Duration
	tasks     int
	done      int
	failed    int
	dataSize  float64 // total reports
	remaining float64 // reports not yet completed
	perTask   map[string]int
	// taskIndex maps each task ID to its chunk index — the position that
	// fixes the task's merge shard and fold order below.
	taskIndex map[string]int
	// seen marks tasks whose result already arrived; a duplicate delivery
	// (result raced a requeue) must not double count.
	seen map[string]bool
	// merge holds the sharded partial-sum pre-merge: task i folds into
	// shard i%N in ascending chunk order (out-of-order arrivals are
	// buffered until their predecessors land), and finalize folds the N
	// pre-merged shard accumulators in shard order. The fold order is a
	// pure function of the task set — float addition is not associative,
	// so this is what keeps the decoded truth bit-identical regardless of
	// result arrival order, while finalize now merges N accumulators
	// instead of re-folding every task.
	merge    []mergeShard
	firstErr error
	// firstErrTrace is the worker-side return trace that rode the wire
	// with the first failed result (Result.ErrTrace), kept alongside
	// firstErr so the job-failed log can show the remote error path.
	firstErrTrace string
	// shed marks a job the admission gate demoted to the degraded lane.
	shed bool
	span *obs.Span // root trace span; nil without a tracer
}

// Manager is the Dynamic Task Manager.
type Manager struct {
	cfg     Config
	master  *workqueue.Master
	pool    *workqueue.Pool
	decoder *core.Decoder
	// scratch backs every finalize decode; safe unshared because finalize
	// only ever runs on the single collector goroutine.
	scratch *core.DecodeScratch
	results chan JobResult
	tuner   *control.Tuner

	mu   sync.Mutex
	jobs map[string]*jobState

	// fr probes merge/finalize phases into the flight recorder;
	// missBurst trips a deep-dive dump when job deadline misses cluster.
	fr        *flightrec.Ring
	missBurst *flightrec.Burst

	// Telemetry handles; all nil when telemetry is off.
	tracer        *obs.Tracer
	logger        *obs.Logger
	recorder      *obs.ControlRecorder
	cJobs         *obs.Counter
	cJobsDone     *obs.Counter
	cJobsFailed   *obs.Counter
	cJobsDegraded *obs.Counter
	cDeadlineHit  *obs.Counter
	cDeadlineMiss *obs.Counter
	cTicks        *obs.Counter
	cResizes      *obs.Counter
	gGCK          *obs.Gauge
	gInflight     *obs.Gauge
	hJobLatency   *obs.Histogram
	hDecode       *obs.Histogram

	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New validates cfg and builds a Manager. Call Start before submitting.
func New(cfg Config) (*Manager, error) {
	if cfg.Origin.IsZero() {
		return nil, errors.New("dtm: config needs an origin time")
	}
	if cfg.TasksPerJob <= 0 {
		cfg.TasksPerJob = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	dec, err := core.NewDecoder(cfg.Decoder)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:       cfg,
		decoder:   dec,
		scratch:   core.NewDecodeScratch(),
		results:   make(chan JobResult, 64),
		jobs:      make(map[string]*jobState),
		fr:        flightrec.Shared("dtm"),
		missBurst: flightrec.NewBurst(flightrec.TrigDeadlineMiss, 0, 0),
	}
	m.master = workqueue.NewMaster(workqueue.MasterConfig{
		Seed:            cfg.Seed,
		SchedShards:     cfg.SchedShards,
		ResultBuffer:    256,
		MaxRetries:      cfg.MaxTaskRetries,
		TaskTimeout:     cfg.TaskTimeout,
		RequeueBackoff:  cfg.RequeueBackoff,
		BatchSize:       cfg.TaskBatch,
		Metrics:         cfg.Metrics,
		Tracer:          cfg.Tracer,
		Logger:          cfg.Logger,
		SuspectAfter:    cfg.SuspectAfter,
		DeadAfter:       cfg.DeadAfter,
		StragglerFactor: cfg.StragglerFactor,
		Admission:       cfg.Admission,
		Telemetry:       cfg.Telemetry,
		FlightRec:       cfg.FlightRec,
		ClusterDumps:    cfg.ClusterDumps,
	})
	exec := workqueue.Executor(m.execute)
	if cfg.WrapExec != nil {
		exec = cfg.WrapExec(exec)
	}
	m.pool = workqueue.NewPool(m.master, exec)
	m.pool.Heartbeat = cfg.Heartbeat
	m.pool.Logger = cfg.Logger
	m.pool.ExecTimeout = cfg.ExecTimeout
	m.pool.WrapConn = cfg.WrapConn
	m.pool.Respawn = cfg.RespawnWorkers
	m.pool.WorkerRecorder = cfg.WorkerFlightRec
	m.tracer = cfg.Tracer
	m.logger = cfg.Logger
	m.recorder = cfg.ControlLog
	if reg := cfg.Metrics; reg != nil {
		m.cJobs = reg.Counter("dtm_jobs_submitted_total")
		m.cJobsDone = reg.Counter("dtm_jobs_completed_total")
		m.cJobsFailed = reg.Counter("dtm_jobs_failed_total")
		m.cJobsDegraded = reg.Counter("dtm_jobs_degraded_total")
		m.cDeadlineHit = reg.Counter("dtm_deadline_hit_total")
		m.cDeadlineMiss = reg.Counter("dtm_deadline_miss_total")
		m.cTicks = reg.Counter("dtm_control_ticks_total")
		m.cResizes = reg.Counter("dtm_pool_resizes_total")
		m.gGCK = reg.Gauge("dtm_gck_workers")
		m.gGCK.SetInt(cfg.Workers)
		m.gInflight = reg.Gauge("dtm_jobs_inflight")
		m.hJobLatency = reg.Histogram("dtm_job_latency_ms", nil)
		m.hDecode = reg.Histogram("dtm_decode_ms", nil)
	}
	if cfg.EnableControl {
		tn, err := control.NewTuner(cfg.Tuner, cfg.Workers)
		if err != nil {
			return nil, err
		}
		m.tuner = tn
	}
	return m, nil
}

// Start brings up the worker pool, the result collector and (when enabled)
// the control loop.
func (m *Manager) Start(ctx context.Context) {
	ctx, m.cancel = context.WithCancel(ctx)
	m.pool.Resize(ctx, m.cfg.Workers)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.collect(ctx)
	}()
	if m.tuner != nil {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.controlLoop(ctx)
		}()
	}
}

// SubmitJob registers a TD job for one claim and enqueues its tasks. The
// deadline is a soft deadline from now; zero means none.
func (m *Manager) SubmitJob(claim socialsensing.ClaimID, reports []socialsensing.Report, deadline time.Duration) error {
	if claim == "" {
		return errors.New("dtm: job needs a claim id")
	}
	jobID := string(claim)
	chunks := splitReports(reports, m.cfg.TasksPerJob)
	js := &jobState{
		claim:     claim,
		submitted: time.Now(),
		deadline:  deadline,
		tasks:     len(chunks),
		dataSize:  float64(len(reports)),
		remaining: float64(len(reports)),
		perTask:   make(map[string]int, len(chunks)),
		taskIndex: make(map[string]int, len(chunks)),
		seen:      make(map[string]bool, len(chunks)),
		merge:     make([]mergeShard, mergeShardCount),
	}
	for s := range js.merge {
		js.merge[s].sums = make(map[int]float64)
	}
	// Open the job's root span before publishing js: the collector may
	// touch a finished job's span as soon as it is visible. The root span
	// starts a distributed trace whose context every task carries to its
	// worker, so remote stage spans land in the same timeline.
	js.span = m.tracer.NewTrace("job " + jobID)
	js.span.SetAttr("reports", fmt.Sprintf("%d", len(reports)))
	// Admission control: predict the job's completion against its
	// deadline before any task enters the queue. The gate logs its own
	// rejection provenance (with err_trace); here we only finish the
	// just-opened span and surface the errtraced sentinel.
	if d := m.master.AdmitJob(jobID, js.span.TraceID(), len(chunks), deadline); !d.Admit {
		js.span.SetAttr("admission", "rejected")
		js.span.SetAttr("error", d.Err.Error())
		js.span.Finish()
		return obs.Wrap(fmt.Errorf("dtm: submit job %s: %w", jobID, d.Err))
	} else if d.Shed {
		js.shed = true
		js.span.SetAttr("admission", "shed")
	}
	m.mu.Lock()
	if _, dup := m.jobs[jobID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("dtm: job %q already submitted", jobID)
	}
	m.jobs[jobID] = js
	inflight := len(m.jobs)
	m.mu.Unlock()
	m.cJobs.Inc()
	m.gInflight.SetInt(inflight)
	m.logger.Info("job submitted",
		obs.JobID(jobID), obs.TraceID(js.span.TraceID()),
		obs.F("tasks", len(chunks)), obs.F("reports", len(reports)))

	var tc *workqueue.TraceContext
	if trace := js.span.TraceID(); trace != "" {
		tc = &workqueue.TraceContext{TraceID: trace, ParentSpanID: js.span.SpanID()}
	}
	for i, chunk := range chunks {
		payload, err := json.Marshal(taskPayload{
			Claim:    claim,
			Origin:   m.cfg.Origin,
			Interval: m.cfg.ACS.Interval,
			Reports:  chunk,
		})
		if err != nil {
			return fmt.Errorf("dtm: marshal task: %w", err)
		}
		taskID := fmt.Sprintf("%s/%d", jobID, i)
		m.mu.Lock()
		js.perTask[taskID] = len(chunk)
		js.taskIndex[taskID] = i
		m.mu.Unlock()
		if err := m.master.Submit(workqueue.Task{ID: taskID, JobID: jobID, Payload: payload, Span: js.span.SpanID(), Trace: tc}); err != nil {
			return err
		}
	}
	if js.shed {
		// Degraded lane: the shed job's tasks only win the weighted-random
		// pick when nothing deadline-bound is queued.
		m.master.SetJobPriority(jobID, shedPriority)
	}
	return nil
}

// shedPriority is the scheduler weight of admission-shed jobs — three
// orders of magnitude under the default 1.0, so a shed job drains on
// idle capacity without starving completely.
const shedPriority = 0.001

// Results streams completed TD jobs. Closed by Close.
func (m *Manager) Results() <-chan JobResult { return m.results }

// Workers reports the current pool size.
func (m *Manager) Workers() int { return m.pool.Size() }

// ClusterHealth exposes the master's per-worker health registry:
// liveness state, last-seen, throughput estimates and straggler flags.
func (m *Manager) ClusterHealth() []workqueue.WorkerHealth { return m.master.ClusterHealth() }

// ClusterHandler serves ClusterHealth as JSON (GET only).
func (m *Manager) ClusterHandler() http.Handler { return m.master.ClusterHandler() }

// ClusterDumpHandler serves the master's cross-host flight-dump history
// (GET) and triggers a manual collection (POST) — the /dump/cluster
// endpoint. Useful only when Config.ClusterDumps is set.
func (m *Manager) ClusterDumpHandler() http.Handler { return m.master.ClusterDumpHandler() }

// ClusterDumpHistory reports completed cross-host collections.
func (m *Manager) ClusterDumpHistory() []workqueue.ClusterDumpInfo {
	return m.master.ClusterDumpHistory()
}

// CollectClusterDump runs one cross-host collection round now.
func (m *Manager) CollectClusterDump(trigger, detail string) (*workqueue.ClusterDumpInfo, error) {
	return m.master.CollectClusterDump(trigger, detail)
}

// JobProgress is a live snapshot of one in-flight TD job.
type JobProgress struct {
	Claim socialsensing.ClaimID
	// Tasks and TasksDone count the job's work units.
	Tasks, TasksDone int
	// Remaining is the data (reports) not yet processed.
	Remaining float64
	// Elapsed is time since submission.
	Elapsed time.Duration
	// Deadline is the job's soft deadline (zero = none).
	Deadline time.Duration
}

// Progress snapshots every in-flight job, sorted by claim — the signal
// the paper's monitor derives from output-file timestamps, exposed
// directly.
func (m *Manager) Progress() []JobProgress {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobProgress, 0, len(m.jobs))
	for _, js := range m.jobs {
		out = append(out, JobProgress{
			Claim:     js.claim,
			Tasks:     js.tasks,
			TasksDone: js.done,
			Remaining: js.remaining,
			Elapsed:   time.Since(js.submitted),
			Deadline:  js.deadline,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Claim < out[j].Claim })
	return out
}

// Close tears everything down and closes Results. Before teardown it
// records one final control tick: a run whose last job finishes between
// SampleEvery ticks (every short experiment) would otherwise leave the
// artifact without its end state — or, for runs shorter than one tick,
// with no worker rows at all. Safe to call more than once.
func (m *Manager) Close() {
	m.closeOnce.Do(m.close)
}

func (m *Manager) close() {
	if m.recorder != nil {
		m.mu.Lock()
		var totData, totTasks float64
		for _, js := range m.jobs {
			totData += js.dataSize
			totTasks += float64(js.tasks)
		}
		m.mu.Unlock()
		m.recorder.BeginTick()
		m.recordWorkerRows(time.Now(), totData, totTasks)
	}
	if m.cancel != nil {
		m.cancel()
	}
	m.pool.Close()
	m.master.Shutdown()
	m.wg.Wait()
	close(m.results)
}

// execute is the worker-side task body: partial ACS interval sums for a
// chunk of reports (the preprocessing step of §III-E, which dominates TD
// job cost and parallelizes across the data).
func (m *Manager) execute(ctx context.Context, payload []byte) ([]byte, error) {
	decode := workqueue.StartStageSpan(ctx, workqueue.StageDecode)
	var p taskPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, obs.Wrap(workqueue.StageError(workqueue.StageDecode, fmt.Errorf("dtm: bad task payload: %w", err)))
	}
	decode.Finish()
	if p.Interval <= 0 {
		return nil, obs.Wrap(errors.New("dtm: task payload has no interval"))
	}
	out := taskOutput{Sums: make(map[int]float64)}
	for _, r := range p.Reports {
		if m.cfg.WorkDelay > 0 {
			// Busy-burn rather than sleep: sub-millisecond per-report
			// costs matter here and sleep granularity would distort
			// them. Stay responsive to preemption.
			deadline := time.Now().Add(m.cfg.WorkDelay)
			for time.Now().Before(deadline) {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
			}
		}
		idx := 0
		if r.Timestamp.After(p.Origin) {
			idx = int(r.Timestamp.Sub(p.Origin) / p.Interval)
		}
		out.Sums[idx] += r.ContributionScore()
	}
	encode := workqueue.StartStageSpan(ctx, workqueue.StageEncode)
	b, err := json.Marshal(out)
	if err != nil {
		return nil, obs.Wrap(workqueue.StageError(workqueue.StageEncode, err))
	}
	encode.Finish()
	return b, nil
}

// collect merges task results into jobs and finalizes completed jobs.
func (m *Manager) collect(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case r, ok := <-m.master.Results():
			if !ok {
				return
			}
			m.handleResult(ctx, r)
		}
	}
}

func (m *Manager) handleResult(ctx context.Context, r workqueue.Result) {
	m.mu.Lock()
	js, ok := m.jobs[r.JobID]
	if !ok {
		m.mu.Unlock()
		return
	}
	if js.seen[r.TaskID] {
		// A duplicate delivery (result raced a requeue) must not double
		// count: the first result for a task is the one that sticks.
		m.mu.Unlock()
		return
	}
	js.seen[r.TaskID] = true
	js.done++
	js.remaining -= float64(js.perTask[r.TaskID])
	if js.remaining < 0 {
		js.remaining = 0
	}
	var sums map[int]float64 // nil (nothing to fold) on any failure
	if r.Err != "" {
		js.failed++
		if js.firstErr == nil {
			js.firstErr = errors.New(r.Err)
			js.firstErrTrace = r.ErrTrace
		}
	} else {
		var out taskOutput
		if err := json.Unmarshal(r.Output, &out); err != nil {
			js.failed++
			if js.firstErr == nil {
				js.firstErr = obs.Wrap(fmt.Errorf("dtm: bad task output: %w", err))
			}
		} else {
			sums = out.Sums
		}
	}
	js.mergeTask(js.taskIndex[r.TaskID], sums)
	finished := js.done == js.tasks
	if finished {
		delete(m.jobs, r.JobID)
	}
	inflight := len(m.jobs)
	m.mu.Unlock()
	if finished {
		m.gInflight.SetInt(inflight)
		m.finalize(ctx, js)
	}
}

// mergeShardCount fixes how many pre-merge accumulators each job keeps.
// It is a constant, not GOMAXPROCS: the fold order must not depend on
// the machine or the decode would drift across hosts.
const mergeShardCount = 4

// mergeShard is one pre-merge accumulator: tasks with chunk index
// i % mergeShardCount == shard fold into sums in ascending index order.
// next is the local sequence (i / mergeShardCount) the shard folds next;
// results arriving ahead of their predecessors wait in buffered.
type mergeShard struct {
	next     int
	buffered map[int]map[int]float64
	sums     map[int]float64
}

// mergeTask folds one task's partial sums (nil for a failed task) into
// its shard, draining any buffered successors that become foldable.
// Callers hold m.mu. Per-interval accumulators are independent, so the
// random map iteration order within one task cannot affect the result;
// across tasks each shard folds strictly in chunk order.
func (js *jobState) mergeTask(index int, sums map[int]float64) {
	sh := &js.merge[index%len(js.merge)]
	seq := index / len(js.merge)
	if seq != sh.next {
		if sh.buffered == nil {
			sh.buffered = make(map[int]map[int]float64)
		}
		sh.buffered[seq] = sums
		return
	}
	for {
		for idx, s := range sums {
			sh.sums[idx] += s
		}
		sh.next++
		var ok bool
		sums, ok = sh.buffered[sh.next]
		if !ok {
			return
		}
		delete(sh.buffered, sh.next)
	}
}

// mergedSums folds the pre-merged shard accumulators in shard order —
// a deterministic order no matter how results arrived, so the
// accumulated floats (and therefore the decoded truth) are bit-identical
// across runs. Failed tasks contributed nothing to their shard.
func (js *jobState) mergedSums() map[int]float64 {
	sums := make(map[int]float64)
	for s := range js.merge {
		for idx, v := range js.merge[s].sums {
			sums[idx] += v
		}
	}
	return sums
}

// finalize runs the sliding window + HMM decode over the merged interval
// sums and emits the job result.
func (m *Manager) finalize(ctx context.Context, js *jobState) {
	res := JobResult{
		Claim:       js.claim,
		Elapsed:     time.Since(js.submitted),
		Deadline:    js.deadline,
		FailedTasks: js.failed,
		Shed:        js.shed,
	}
	res.MetDeadline = js.deadline == 0 || res.Elapsed <= js.deadline
	defer func() {
		m.observeJob(js, res)
		js.span.Finish()
	}()
	if js.failed >= js.tasks && js.firstErr != nil {
		// Every task was lost: nothing to decode.
		res.Err = js.firstErr
		m.emit(ctx, res)
		return
	}
	res.Degraded = js.failed > 0
	tp := m.fr.Start()
	merge := m.tracer.NewSpan("merge "+string(js.claim), js.span.SpanID())
	series := windowedSeries(js.mergedSums(), m.cfg.ACS.WindowIntervals)
	merge.Finish()
	tp = m.fr.Probe(flightrec.ProbeDTMMerge, tp, int64(len(series)), merge.SpanID())
	decodeSpan := m.tracer.NewSpan("decode "+string(js.claim), js.span.SpanID())
	decodeStart := time.Now()
	// Parent the kernel's EM-phase flight events under the decode span so
	// a deep dive nests forward/backward/E/M inside this job's decode.
	m.scratch.SetFlightParent(decodeSpan.SpanID())
	truth, err := m.decoder.DecodeInto(m.scratch, series)
	m.scratch.SetFlightParent(0)
	m.hDecode.ObserveDuration(time.Since(decodeStart))
	decodeSpan.Finish()
	m.fr.Probe(flightrec.ProbeDTMFinalize, tp, int64(len(series)), decodeSpan.SpanID())
	if err != nil {
		res.Err = obs.Wrap(err)
		m.emit(ctx, res)
		return
	}
	res.Estimates = make([]core.Estimate, len(truth))
	for t, v := range truth {
		res.Estimates[t] = core.Estimate{
			Claim:    js.claim,
			Interval: t,
			Start:    m.cfg.Origin.Add(time.Duration(t) * m.cfg.ACS.Interval),
			Value:    v,
		}
	}
	m.emit(ctx, res)
}

// observeJob records one finished job's metrics, log line and span
// attributes.
func (m *Manager) observeJob(js *jobState, res JobResult) {
	switch {
	case res.Err != nil:
		m.cJobsFailed.Inc()
		js.span.SetAttr("error", res.Err.Error())
		fields := []obs.Field{
			obs.JobID(string(js.claim)), obs.TraceID(js.span.TraceID()), obs.Err(res.Err),
		}
		if f := obs.ErrTrace(res.Err); f.Key != "" {
			fields = append(fields, f)
		}
		if js.firstErrTrace != "" {
			fields = append(fields, obs.F("worker_err_trace", js.firstErrTrace))
		}
		m.logger.Warn("job failed", fields...)
	case res.Degraded:
		m.cJobsDone.Inc()
		m.cJobsDegraded.Inc()
		js.span.SetAttr("degraded", fmt.Sprintf("%d/%d tasks lost", res.FailedTasks, js.tasks))
		m.logger.Warn("job completed degraded",
			obs.JobID(string(js.claim)), obs.TraceID(js.span.TraceID()),
			obs.F("failed_tasks", res.FailedTasks), obs.F("tasks", js.tasks),
			obs.F("elapsed_ms", res.Elapsed.Milliseconds()))
	default:
		m.cJobsDone.Inc()
		m.logger.Info("job completed",
			obs.JobID(string(js.claim)), obs.TraceID(js.span.TraceID()),
			obs.F("elapsed_ms", res.Elapsed.Milliseconds()),
			obs.F("deadline_met", res.MetDeadline))
	}
	if js.deadline > 0 {
		if res.MetDeadline {
			m.cDeadlineHit.Inc()
		} else {
			m.cDeadlineMiss.Inc()
			m.missBurst.Observe(fmt.Sprintf("job %s %s over %s deadline",
				js.claim, res.Elapsed, js.deadline))
		}
		js.span.SetAttr("deadline_met", fmt.Sprintf("%t", res.MetDeadline))
	}
	m.hJobLatency.ObserveDuration(res.Elapsed)
}

func (m *Manager) emit(ctx context.Context, res JobResult) {
	// Block rather than drop when the consumer is slow, but bail out on
	// shutdown so Close never deadlocks against a full channel.
	select {
	case m.results <- res:
	case <-ctx.Done():
	}
}

// controlLoop samples job progress and actuates the knobs.
func (m *Manager) controlLoop(ctx context.Context) {
	ticker := time.NewTicker(m.cfg.SampleEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.controlStep(ctx)
		}
	}
}

func (m *Manager) controlStep(ctx context.Context) {
	workers := m.pool.Size()
	if workers < 1 {
		workers = 1
	}
	m.mu.Lock()
	statuses := make([]control.JobStatus, 0, len(m.jobs))
	var totData, totTasks float64
	for id, js := range m.jobs {
		totData += js.dataSize
		totTasks += float64(js.tasks)
		elapsed := time.Since(js.submitted)
		// Expected finish from the WCET model on the remaining data at
		// the current pool size, assuming equal priority share.
		prio := 1.0 / float64(len(m.jobs))
		wcet, err := m.cfg.WCET.JobWCETSimplified(js.remaining, workers, prio)
		if err != nil {
			continue
		}
		statuses = append(statuses, control.JobStatus{
			JobID:          id,
			Deadline:       js.deadline,
			Elapsed:        elapsed,
			ExpectedFinish: elapsed + wcet,
		})
	}
	m.mu.Unlock()
	if len(statuses) == 0 {
		return
	}
	dec, err := m.tuner.Step(statuses, m.cfg.SampleEvery)
	if err != nil {
		return
	}
	for jobID, p := range dec.Priorities {
		m.master.SetJobPriority(jobID, p)
	}
	resized := dec.Workers != m.pool.Size()
	if resized {
		m.pool.Resize(ctx, dec.Workers)
	}

	m.cTicks.Inc()
	if resized {
		m.cResizes.Inc()
	}
	m.gGCK.SetInt(dec.Workers)
	if m.recorder != nil {
		now := time.Now()
		m.recorder.BeginTick()
		for _, st := range statuses {
			state, ok := m.tuner.PIDState(st.JobID)
			if !ok {
				continue
			}
			m.recorder.Record(obs.ControlSample{
				Time:             now,
				Job:              st.JobID,
				Error:            state.Err,
				P:                state.P,
				I:                state.I,
				D:                state.D,
				Signal:           dec.Signals[st.JobID],
				LCK:              dec.Priorities[st.JobID],
				GCK:              dec.Workers,
				ExpectedFinishMs: float64(st.ExpectedFinish) / float64(time.Millisecond),
				DeadlineMs:       float64(st.Deadline) / float64(time.Millisecond),
			})
		}
		m.recordWorkerRows(now, totData, totTasks)
	}
}

// recordWorkerRows appends one per-worker observation row per alive
// worker to the control recorder: observed throughput from the
// heartbeat-fed health registry next to the WCET model's per-task
// prediction (Eq. 10 on the current average task size), so the artifact
// shows where the model and the cluster disagree. Shared by controlStep
// and the final flush in Close.
func (m *Manager) recordWorkerRows(now time.Time, totData, totTasks float64) {
	if m.recorder == nil {
		return
	}
	var predictedMs float64
	if totTasks > 0 {
		predictedMs = float64(m.cfg.WCET.TaskTime(totData/totTasks)) / float64(time.Millisecond)
	}
	// The model folds per-task transfer into its init term TI (Eq. 10);
	// the registry's measured transfer EWMA sits next to it per worker.
	predictedTransferMs := float64(m.cfg.WCET.InitTime) / float64(time.Millisecond)
	for _, h := range m.master.ClusterHealth() {
		if h.State == workqueue.WorkerDead {
			continue
		}
		m.recorder.RecordWorker(obs.WorkerSample{
			Time:                now,
			Worker:              h.ID,
			State:               string(h.State),
			TasksPerSec:         h.TasksPerSec,
			ObservedExecMs:      h.EWMAExecMs,
			PredictedExecMs:     predictedMs,
			MeasuredTransferMs:  h.EWMATransferMs,
			PredictedTransferMs: predictedTransferMs,
			ClockSkewMs:         h.ClockSkewMs,
			Straggler:           h.Straggler,
		})
	}
}

// splitReports divides reports into at most n contiguous chunks of nearly
// equal size (the paper divides a job's data equally between its tasks).
// It always returns at least one (possibly empty) chunk so every job has a
// task and therefore a completion event.
func splitReports(reports []socialsensing.Report, n int) [][]socialsensing.Report {
	if n < 1 {
		n = 1
	}
	if len(reports) == 0 {
		return [][]socialsensing.Report{{}}
	}
	if n > len(reports) {
		n = len(reports)
	}
	chunks := make([][]socialsensing.Report, 0, n)
	size := len(reports) / n
	rem := len(reports) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		chunks = append(chunks, reports[start:end])
		start = end
	}
	return chunks
}

// windowedSeries converts sparse interval sums into the dense sliding-
// window ACS sequence of Eq. 4.
func windowedSeries(sums map[int]float64, window int) []float64 {
	if len(sums) == 0 {
		return nil
	}
	maxIdx := 0
	for idx := range sums {
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	dense := make([]float64, maxIdx+1)
	for idx, s := range sums {
		if idx >= 0 {
			dense[idx] = s
		}
	}
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(dense))
	acc := 0.0
	for t := range dense {
		acc += dense[t]
		if t >= window {
			acc -= dense[t-window]
		}
		out[t] = acc
	}
	return out
}
