package dtm

import (
	"context"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// TestCloseFlushesFinalControlTick: a run shorter than SampleEvery never
// sees a periodic control tick, so Close must record a final one — the
// artifact of a short experiment would otherwise carry no worker rows.
func TestCloseFlushesFinalControlTick(t *testing.T) {
	rec := obs.NewControlRecorder(0)
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2
	cfg.ControlLog = rec
	cfg.SampleEvery = time.Hour // no periodic tick can fire in this test
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	if err := m.SubmitJob("c-flush", flipReports("c-flush", 20, 10, 4, 0.1, 7), 0); err != nil {
		t.Fatal(err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	m.Close()
	rows := rec.WorkerSamples()
	if len(rows) == 0 {
		t.Fatal("Close recorded no final control tick: worker samples empty")
	}
	for _, r := range rows {
		if r.Worker == "" || r.State == "" {
			t.Errorf("malformed worker row: %+v", r)
		}
	}
}
