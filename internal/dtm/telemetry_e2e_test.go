package dtm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/slo"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/sstdctl"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// TestClusterTelemetryPlaneEndToEnd exercises the whole telemetry plane
// against a live 2-worker cluster: workers ship delta-encoded metrics
// snapshots into the master's time-series store, an SLO burn-rate alert
// trips the flight recorder, the trip cascades into a cross-host
// FreezeRings collection, and the result is ONE merged Chrome trace with
// master and both workers on distinct per-host lanes — all visible
// through the sstdctl client against the real HTTP endpoints.
func TestClusterTelemetryPlaneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tracer := obs.NewTracer(4096)
	reg := obs.NewRegistry()
	store := tsdb.New(0)
	mrec, err := flightrec.NewRecorder(flightrec.Config{
		Window: 30 * time.Second, Cooldown: time.Millisecond, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrecs := map[string]*flightrec.Recorder{}
	for _, id := range []string{"pool-worker-0", "pool-worker-1"} {
		rec, err := flightrec.NewRecorder(flightrec.Config{Cooldown: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wrecs[id] = rec
	}

	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.Metrics = reg
	cfg.Tracer = tracer
	cfg.Telemetry = store
	cfg.FlightRec = mrec
	cfg.ClusterDumps = &workqueue.ClusterDumpConfig{
		Dir: dir, Timeout: 5 * time.Second, Cooldown: time.Millisecond,
	}
	cfg.WorkerFlightRec = func(id string) *flightrec.Recorder { return wrecs[id] }
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	// The SLO engine watches the dtm deadline counters; its firing edge
	// trips the master-side recorder, which cascades into collection.
	engine := slo.New(slo.Config{
		Source: reg, Metrics: reg,
		OnAlert: func(o slo.Objective, s slo.Status) {
			mrec.Trip(flightrec.TrigSLOBurn, "slo "+o.Name+" burning in both windows")
		},
	}, slo.Objective{
		Name: "deadline", Good: "dtm_deadline_hit_total", Bad: "dtm_deadline_miss_total",
		Target: 0.9, FastWindow: time.Second, SlowWindow: 2 * time.Second, BurnThreshold: 1,
	})
	engine.Tick(time.Now()) // baseline sample before any deadline outcome

	// Jobs with an impossible deadline: every completion is a miss, so the
	// error budget burns at 10x in both windows.
	claims := []socialsensing.ClaimID{"c1", "c2", "c3"}
	for i, c := range claims {
		if err := m.SubmitJob(c, flipReports(c, 20, 10, 4, 0.15, int64(i)+7), time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, m, len(claims))
	engine.Tick(time.Now())
	if s := engine.Status()[0]; !s.Firing {
		t.Fatalf("slo not firing after sustained misses: %+v", s)
	}

	// The trip cascades asynchronously (dump goroutine → FreezeRings →
	// worker replies); poll for the merged trace.
	deadline := time.Now().Add(10 * time.Second)
	for len(m.ClusterDumpHistory()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slo burn trip produced no cluster dump")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d := m.ClusterDumpHistory()[0]
	if d.Trigger != flightrec.TrigSLOBurn {
		t.Errorf("dump trigger = %q, want %q", d.Trigger, flightrec.TrigSLOBurn)
	}
	wantHosts := []string{"master", "pool-worker-0", "pool-worker-1"}
	if len(d.Hosts) != len(wantHosts) {
		t.Fatalf("dump hosts = %v, want %v", d.Hosts, wantHosts)
	}
	for i := range wantHosts {
		if d.Hosts[i] != wantHosts[i] {
			t.Fatalf("dump hosts = %v, want %v", d.Hosts, wantHosts)
		}
	}

	// ONE merged multi-host trace: all three hosts on distinct pid lanes,
	// both workers contributing skew-corrected probe events.
	raw, err := os.ReadFile(d.Path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	lanes := map[string]int{}
	eventsByPid := map[int]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			lanes[e.Args["name"]] = e.Pid
		}
		if e.Cat == "flightrec" {
			eventsByPid[e.Pid]++
		}
	}
	for name, want := range map[string]int{"master": 1, "host pool-worker-0": 2, "host pool-worker-1": 3} {
		if lanes[name] != want {
			t.Errorf("lane %q = pid %d, want %d (lanes: %v)", name, lanes[name], want, lanes)
		}
	}
	for _, pid := range []int{2, 3} {
		if eventsByPid[pid] == 0 {
			t.Errorf("worker lane pid %d carries no probe events (per-pid counts: %v)", pid, eventsByPid)
		}
	}

	// The live endpoints serve the plane to sstdctl: shipped worker series
	// in /query, the firing objective in /slo, the dump in /dump/cluster.
	mux := http.NewServeMux()
	mux.Handle("/query", store.Handler())
	mux.Handle("/slo", engine.Handler())
	mux.Handle("/dump/cluster", m.ClusterDumpHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &sstdctl.Client{Base: srv.URL}

	// Worker telemetry ships ride the heartbeat stats cadence; wait for
	// the first one to land.
	var series *tsdb.QueryResult
	deadline = time.Now().Add(10 * time.Second)
	for {
		series, err = c.Query(sstdctl.QueryOpts{
			Series: "worker_tasks_executed_total", Labels: map[string]string{"host": "pool-worker-0"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(series.Series) > 0 && len(series.Series[0].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shipped worker series reached the time-series store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if last := series.Series[0].Points[len(series.Series[0].Points)-1].V; last <= 0 {
		t.Errorf("worker_tasks_executed_total{host=pool-worker-0} = %v, want > 0", last)
	}
	statuses, err := c.SLO()
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || !statuses[0].Firing || statuses[0].BadTotal != int64(len(claims)) {
		t.Fatalf("slo over the wire = %+v, want firing with %d misses", statuses, len(claims))
	}
	dumps, err := c.Dumps()
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 || dumps[0].Path != d.Path {
		t.Errorf("dump history over the wire = %+v, want %+v", dumps, d)
	}
}
