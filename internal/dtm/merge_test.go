package dtm

import (
	"math"
	"math/rand"
	"testing"
)

// newMergeState builds a jobState with just the sharded-merge fields, as
// SubmitJob would for a job of n tasks.
func newMergeState(n int) *jobState {
	js := &jobState{
		tasks: n,
		merge: make([]mergeShard, mergeShardCount),
	}
	for s := range js.merge {
		js.merge[s].sums = make(map[int]float64)
	}
	return js
}

// TestMergeOrderIndependentBits feeds the same per-task partial sums in
// many random arrival orders and requires the merged floats to be
// bit-identical every time: the sharded pre-merge must keep the decode
// arrival-order independent exactly like the old sorted full re-fold did.
func TestMergeOrderIndependentBits(t *testing.T) {
	const tasks = 17
	const intervals = 9
	rng := rand.New(rand.NewSource(42))
	// Sums chosen to make float addition order visible: wildly different
	// magnitudes so (a+b)+c != a+(b+c) in the low bits.
	taskSums := make([]map[int]float64, tasks)
	for i := range taskSums {
		taskSums[i] = make(map[int]float64, intervals)
		for k := 0; k < intervals; k++ {
			taskSums[i][k] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		}
	}

	merge := func(order []int) map[int]uint64 {
		js := newMergeState(tasks)
		for _, i := range order {
			js.mergeTask(i, taskSums[i])
		}
		out := make(map[int]uint64, intervals)
		for idx, v := range js.mergedSums() {
			out[idx] = math.Float64bits(v)
		}
		return out
	}

	order := make([]int, tasks)
	for i := range order {
		order[i] = i
	}
	want := merge(order)
	for trial := 0; trial < 50; trial++ {
		rng.Shuffle(tasks, func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := merge(order)
		if len(got) != len(want) {
			t.Fatalf("trial %d: interval count %d != %d", trial, len(got), len(want))
		}
		for idx, bits := range want {
			if got[idx] != bits {
				t.Fatalf("trial %d: interval %d merged to %x, want %x (arrival order leaked into the fold)",
					trial, idx, got[idx], bits)
			}
		}
	}
}

// TestMergeFailedTaskUnblocksShard checks that a failed task (nil sums)
// still advances its shard's fold cursor: successors buffered behind it
// must fold, contributing their sums, with the failure itself adding
// nothing.
func TestMergeFailedTaskUnblocksShard(t *testing.T) {
	n := 2 * mergeShardCount
	js := newMergeState(n)
	// Arrive in reverse, with task 0 failing: every later task on shard 0
	// is buffered until the nil fold for task 0 releases them.
	for i := n - 1; i > 0; i-- {
		js.mergeTask(i, map[int]float64{0: 1})
	}
	js.mergeTask(0, nil)
	got := js.mergedSums()[0]
	if want := float64(n - 1); got != want {
		t.Fatalf("merged sum = %v, want %v (failed task blocked or double-counted its shard)", got, want)
	}
	for s := range js.merge {
		if len(js.merge[s].buffered) != 0 {
			t.Fatalf("shard %d still buffers %d entries after all tasks arrived", s, len(js.merge[s].buffered))
		}
	}
}
