package dtm

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// TestManagerAdmissionRejects: with a capacity model too slow for the
// deadline, SubmitJob refuses the job with the errtraced sentinel and the
// rejection leaves a correlated structured log line.
func TestManagerAdmissionRejects(t *testing.T) {
	logger := obs.NewLogger(nil, obs.LevelDebug, 256)
	cfg := DefaultConfig(origin())
	cfg.Workers = 2
	cfg.Logger = logger
	cfg.Admission = &workqueue.AdmissionConfig{TaskRatePerWorker: 0.001}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	err = m.SubmitJob("c-reject", flipReports("c-reject", 10, 5, 4, 0.1, 1), 50*time.Millisecond)
	if err == nil {
		t.Fatal("SubmitJob should have been rejected by admission control")
	}
	if !errors.Is(err, workqueue.ErrAdmissionRejected) {
		t.Fatalf("err %v does not wrap ErrAdmissionRejected", err)
	}
	if tr := obs.ReturnTrace(err); len(tr) < 2 {
		t.Errorf("rejection error carries %d return frames, want >= 2: %v", len(tr), tr)
	}
	var found bool
	for _, e := range logger.Entries() {
		if e.Msg == "job rejected by admission control" && e.Fields["job_id"] == "c-reject" {
			found = true
			if _, ok := e.Fields["err_trace"]; !ok {
				t.Error("rejection log line has no err_trace field")
			}
		}
	}
	if !found {
		t.Error("no rejection log line for c-reject")
	}
}

// TestManagerAdmissionSheds: in shed mode the same over-capacity job is
// admitted into the degraded lane and completes flagged Shed.
func TestManagerAdmissionSheds(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2
	cfg.Admission = &workqueue.AdmissionConfig{TaskRatePerWorker: 0.001, Shed: true}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	if err := m.SubmitJob("c-shed", flipReports("c-shed", 20, 10, 4, 0.1, 2), 50*time.Millisecond); err != nil {
		t.Fatalf("shed mode should admit: %v", err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("shed job failed: %v", res.Err)
	}
	if !res.Shed {
		t.Error("JobResult.Shed not set for an admission-shed job")
	}
}

// TestManagerAdmissionOpenForNoDeadline: jobs without a deadline pass the
// gate untouched even when the capacity model would reject them.
func TestManagerAdmissionOpenForNoDeadline(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2
	cfg.Admission = &workqueue.AdmissionConfig{TaskRatePerWorker: 0.001}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	if err := m.SubmitJob("c-free", flipReports("c-free", 20, 10, 4, 0.1, 3), 0); err != nil {
		t.Fatalf("no-deadline job should be admitted: %v", err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	if res.Shed {
		t.Error("no-deadline job should not be shed")
	}
}
