package dtm

import (
	"context"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/chaos"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// TestDecodedTruthIdenticalUnderChaos is acceptance criterion (d): the
// decoded truth sequence of a cluster running under injected drops,
// delays and clock skew must be bit-identical to the fault-free run.
// Losses only cost retries; the per-task sum merge is arrival-order
// independent, so recovered execution changes nothing.
func TestDecodedTruthIdenticalUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos equivalence skipped in -short mode")
	}
	base := DefaultConfig(origin())
	base.ACS.WindowIntervals = 3
	base.TasksPerJob = 6
	base.Workers = 3
	base.Heartbeat = 5 * time.Millisecond
	reports := flipReports("c1", 40, 20, 6, 0.1, 7)

	run := func(cfg Config) JobResult {
		t.Helper()
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Start(context.Background())
		defer m.Close()
		if err := m.SubmitJob("c1", reports, 0); err != nil {
			t.Fatal(err)
		}
		return drain(t, m, 1)[0]
	}

	clean := run(base)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}

	faulty := base
	faulty.TaskTimeout = 300 * time.Millisecond
	faulty.MaxTaskRetries = 12
	faulty.RequeueBackoff = workqueue.BackoffConfig{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}
	faulty.RespawnWorkers = true
	inj := chaos.New(chaos.Spec{
		Seed:     21,
		Drop:     0.10,
		Delay:    0.10,
		DelayMin: time.Millisecond,
		DelayMax: 5 * time.Millisecond,
		SkewNs:   int64(200 * time.Millisecond),
	}, nil, nil)
	faulty.WrapConn = inj.PoolWrapper()

	chaotic := run(faulty)
	if chaotic.Err != nil {
		t.Fatal(chaotic.Err)
	}
	if chaotic.Degraded {
		t.Fatalf("drops/delays/skew alone must be recoverable, got Degraded with %d failed tasks", chaotic.FailedTasks)
	}
	if inj.InjectedCount() == 0 {
		t.Fatal("no faults injected — equivalence trivially holds")
	}
	if len(clean.Estimates) != len(chaotic.Estimates) {
		t.Fatalf("estimate length diverged: %d vs %d", len(clean.Estimates), len(chaotic.Estimates))
	}
	for i := range clean.Estimates {
		if clean.Estimates[i].Value != chaotic.Estimates[i].Value ||
			clean.Estimates[i].Interval != chaotic.Estimates[i].Interval {
			t.Fatalf("estimate %d diverged under chaos: %+v vs %+v",
				i, clean.Estimates[i], chaotic.Estimates[i])
		}
	}
}

// TestDegradedJobCompletion checks graceful degradation: a job with
// permanently failing tasks still completes — decoded from the partial
// sums and tagged Degraded — instead of stalling the manager.
func TestDegradedJobCompletion(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.TasksPerJob = 6
	cfg.Workers = 2
	// The first two executor invocations fail outright (scripted), so
	// exactly two tasks are lost; the other four decode.
	inj := chaos.New(chaos.Spec{
		Script: []chaos.ScriptedFault{{Fault: chaos.FaultFail, From: 0, To: 2}},
	}, nil, nil)
	cfg.WrapExec = func(exec workqueue.Executor) workqueue.Executor {
		return inj.WrapExec("pool-exec", exec, nil)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	if err := m.SubmitJob("c1", flipReports("c1", 40, 20, 6, 0.1, 7), 0); err != nil {
		t.Fatal(err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("degraded job must not error: %v", res.Err)
	}
	if !res.Degraded || res.FailedTasks != 2 {
		t.Fatalf("want Degraded with 2 failed tasks, got degraded=%t failed=%d", res.Degraded, res.FailedTasks)
	}
	if len(res.Estimates) == 0 {
		t.Fatal("degraded job produced no estimates at all")
	}
}

// TestHungTaskDegradesJob hangs the executor forever on one task and
// checks the exec-timeout path cancels it and the job completes
// Degraded — a hung worker costs one task's data, not the manager.
func TestHungTaskDegradesJob(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.TasksPerJob = 4
	cfg.Workers = 2
	cfg.Heartbeat = 5 * time.Millisecond
	cfg.TaskTimeout = 500 * time.Millisecond
	cfg.ExecTimeout = 50 * time.Millisecond
	poison := make(chan struct{})
	cfg.WrapExec = func(exec workqueue.Executor) workqueue.Executor {
		return func(ctx context.Context, payload []byte) ([]byte, error) {
			// The first chunk of c1 (task c1/0) carries the earliest
			// reports; detect it by content and hang until cancelled.
			if len(payload) > 0 && containsEarliest(payload) {
				select {
				case <-poison:
				case <-ctx.Done():
				}
				return nil, ctx.Err()
			}
			return exec(ctx, payload)
		}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()
	defer close(poison)
	if err := m.SubmitJob("c1", flipReports("c1", 40, 20, 6, 0.1, 7), 0); err != nil {
		t.Fatal(err)
	}
	res := drain(t, m, 1)[0]
	if res.Err != nil {
		t.Fatalf("job must degrade, not fail: %v", res.Err)
	}
	if !res.Degraded || res.FailedTasks == 0 {
		t.Fatalf("want a degraded completion, got degraded=%t failed=%d", res.Degraded, res.FailedTasks)
	}
}

// containsEarliest detects the payload chunk holding the first minute's
// reports (Report.Timestamp exactly at origin — the lowercase "origin"
// field every payload carries must not match).
func containsEarliest(payload []byte) bool {
	return bytesContains(payload, []byte(`"Timestamp":"2016-09-30T12:00:00Z"`))
}

func bytesContains(b, sub []byte) bool {
	for i := 0; i+len(sub) <= len(b); i++ {
		match := true
		for j := range sub {
			if b[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
