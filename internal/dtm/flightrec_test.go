package dtm

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// TestFlightRecorderDeadlineMissDeepDive is the end-to-end flight
// recorder check: a 2-worker cluster runs jobs with an impossible
// deadline, the deadline-miss burst trips the recorder, and the dumped
// Chrome trace must contain HMM kernel-phase events nested under the
// job's decode span and codec frame events nested under task exec spans.
func TestFlightRecorderDeadlineMissDeepDive(t *testing.T) {
	dir := t.TempDir()
	tracer := obs.NewTracer(4096)
	rec, err := flightrec.Enable(flightrec.Config{
		Dir:    dir,
		Window: 30 * time.Second,
		DumpOn: []string{flightrec.TrigDeadlineMiss},
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flightrec.Disable()

	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2
	cfg.Tracer = tracer
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	defer m.Close()

	// Three misses inside the burst window trip the recorder. A 1ns
	// deadline cannot be met by any real job.
	claims := []socialsensing.ClaimID{"c1", "c2", "c3"}
	for i, c := range claims {
		rs := flipReports(c, 20, 10, 4, 0.15, int64(i)+7)
		if err := m.SubmitJob(c, rs, time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	results := drain(t, m, len(claims))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s error: %v", r.Claim, r.Err)
		}
		if r.MetDeadline {
			t.Fatalf("job %s met a 1ns deadline", r.Claim)
		}
	}
	// The burst trips in finalize's deferred observeJob, which can run
	// after the last result is delivered — poll for the dump.
	var dumps []flightrec.DumpInfo
	deadline := time.Now().Add(10 * time.Second)
	for len(dumps) == 0 {
		rec.Wait()
		dumps = rec.Dumps()
		if len(dumps) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("deadline-miss burst produced no deep-dive dump")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	d := dumps[0]
	if d.Trigger != flightrec.TrigDeadlineMiss {
		t.Errorf("dump trigger = %q, want %q", d.Trigger, flightrec.TrigDeadlineMiss)
	}
	if d.Path == "" || d.Events == 0 || d.Spans == 0 {
		t.Fatalf("dump incomplete: %+v", d)
	}

	raw, err := os.ReadFile(d.Path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("deep dive is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("deep dive has no trace events")
	}

	// Index the span timeline: decode spans own the kernel phases, exec
	// spans own the task frames on the wire.
	decodeSpans := map[string]bool{}
	execSpans := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Cat != "sstd" || ev.Ph != "X" {
			continue
		}
		id := ev.Args["id"]
		if id == "" {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Name, "decode "):
			decodeSpans[id] = true
		case strings.HasPrefix(ev.Name, "exec "):
			execSpans[id] = true
		}
	}
	if len(decodeSpans) == 0 || len(execSpans) == 0 {
		t.Fatalf("span timeline incomplete: %d decode spans, %d exec spans", len(decodeSpans), len(execSpans))
	}

	kernelNested, codecNested := false, false
	probes := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Cat != "flightrec" {
			continue
		}
		probes[ev.Name]++
		parent := ev.Args["parent"]
		if strings.HasPrefix(ev.Name, "hmm.") && decodeSpans[parent] {
			kernelNested = true
		}
		if strings.HasPrefix(ev.Name, "codec.") && execSpans[parent] {
			codecNested = true
		}
	}
	if !kernelNested {
		t.Errorf("no HMM kernel-phase event nested under a decode span; probes seen: %v", probes)
	}
	if !codecNested {
		t.Errorf("no codec frame event nested under a task exec span; probes seen: %v", probes)
	}
	for _, want := range []string{"hmm.forward", "hmm.backward", "master.assign", "dtm.finalize"} {
		if probes[want] == 0 {
			t.Errorf("deep dive missing %s events; probes seen: %v", want, probes)
		}
	}
}
