package rto

import (
	"fmt"
	"testing"
	"time"
)

func model() Model {
	return Model{InitTime: time.Millisecond, Theta2: 100 * time.Microsecond}
}

func jobs3() []JobSpec {
	return []JobSpec{
		{ID: "a", DataSize: 500, Deadline: 40 * time.Millisecond},
		{ID: "b", DataSize: 100, Deadline: 20 * time.Millisecond},
		{ID: "c", DataSize: 1500, Deadline: 80 * time.Millisecond},
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, model(), DefaultLimits()); err == nil {
		t.Error("no jobs accepted")
	}
	if _, err := Solve(jobs3(), model(), Limits{MinWorkers: 0, MaxWorkers: 4, MaxTasksPerJob: 4}); err == nil {
		t.Error("bad limits accepted")
	}
	if _, err := Solve(jobs3(), Model{Theta2: 0}, DefaultLimits()); err == nil {
		t.Error("zero theta accepted")
	}
	bad := jobs3()
	bad[0].Deadline = 0
	if _, err := Solve(bad, model(), DefaultLimits()); err == nil {
		t.Error("zero deadline accepted")
	}
	bad = jobs3()
	bad[1].ID = ""
	if _, err := Solve(bad, model(), DefaultLimits()); err == nil {
		t.Error("unnamed job accepted")
	}
	bad = jobs3()
	bad[2].DataSize = -1
	if _, err := Solve(bad, model(), DefaultLimits()); err == nil {
		t.Error("negative data accepted")
	}
}

func TestSolveRespectsLimits(t *testing.T) {
	limits := Limits{MinWorkers: 2, MaxWorkers: 6, MaxTasksPerJob: 3}
	alloc, err := Solve(jobs3(), model(), limits)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Workers < 2 || alloc.Workers > 6 {
		t.Errorf("workers = %d outside [2, 6]", alloc.Workers)
	}
	for id, tc := range alloc.Tasks {
		if tc < 1 || tc > 3 {
			t.Errorf("job %s task count %d outside [1, 3]", id, tc)
		}
	}
	if len(alloc.Tasks) != 3 || len(alloc.WCET) != 3 {
		t.Errorf("allocation incomplete: %+v", alloc)
	}
}

func TestSolveMatchesExhaustiveSmall(t *testing.T) {
	limits := Limits{MinWorkers: 1, MaxWorkers: 8, MaxTasksPerJob: 4}
	cases := [][]JobSpec{
		jobs3(),
		{
			{ID: "x", DataSize: 2000, Deadline: 30 * time.Millisecond},
			{ID: "y", DataSize: 50, Deadline: 5 * time.Millisecond},
		},
		{
			{ID: "only", DataSize: 800, Deadline: 25 * time.Millisecond},
		},
	}
	for ci, jobs := range cases {
		got, err := Solve(jobs, model(), limits)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveExhaustive(jobs, model(), limits)
		if err != nil {
			t.Fatal(err)
		}
		if got.Misses != want.Misses {
			t.Errorf("case %d: misses = %d, optimal %d", ci, got.Misses, want.Misses)
		}
		if got.Misses == want.Misses && got.Workers > want.Workers {
			t.Errorf("case %d: workers = %d, optimal %d", ci, got.Workers, want.Workers)
		}
	}
}

func TestSolveScalesWorkersWithLoad(t *testing.T) {
	light := []JobSpec{{ID: "a", DataSize: 50, Deadline: 100 * time.Millisecond}}
	heavy := []JobSpec{
		{ID: "a", DataSize: 20_000, Deadline: 100 * time.Millisecond},
		{ID: "b", DataSize: 20_000, Deadline: 100 * time.Millisecond},
	}
	la, err := Solve(light, model(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	ha, err := Solve(heavy, model(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if la.Workers >= ha.Workers {
		t.Errorf("light load workers %d >= heavy load workers %d", la.Workers, ha.Workers)
	}
	if la.Misses != 0 {
		t.Errorf("light load missed %d deadlines", la.Misses)
	}
	if ha.Misses != 0 {
		t.Errorf("heavy load missed %d deadlines with up to %d workers", ha.Misses, DefaultLimits().MaxWorkers)
	}
}

func TestSolveReportsMissesWhenInfeasible(t *testing.T) {
	impossible := []JobSpec{{ID: "a", DataSize: 1_000_000, Deadline: time.Millisecond}}
	alloc, err := Solve(impossible, model(), Limits{MinWorkers: 1, MaxWorkers: 4, MaxTasksPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Misses != 1 {
		t.Errorf("misses = %d, want 1", alloc.Misses)
	}
	if alloc.MaxLateness <= 1 {
		t.Errorf("lateness = %v, want > 1", alloc.MaxLateness)
	}
}

func TestSolveTaskSplitTradeoff(t *testing.T) {
	// With zero init cost and competing jobs, a job raises its priority
	// share P_u = T_u/ΣT by splitting more — the big job should be split
	// at least as much as the small one, and its WCET must not exceed
	// what a single-task split would give it.
	free := Model{InitTime: 0, Theta2: 100 * time.Microsecond}
	jobs := []JobSpec{
		{ID: "big", DataSize: 10_000, Deadline: 500 * time.Millisecond},
		{ID: "small", DataSize: 100, Deadline: 500 * time.Millisecond},
	}
	alloc, err := Solve(jobs, free, Limits{MinWorkers: 4, MaxWorkers: 4, MaxTasksPerJob: 8})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Tasks["big"] < alloc.Tasks["small"] {
		t.Errorf("big job split %d below small job %d", alloc.Tasks["big"], alloc.Tasks["small"])
	}
	if alloc.Misses != 0 {
		t.Errorf("misses = %d", alloc.Misses)
	}
	// With a huge init cost, one task per job wins.
	costly := Model{InitTime: time.Second, Theta2: time.Microsecond}
	single := []JobSpec{{ID: "a", DataSize: 10_000, Deadline: 2 * time.Second}}
	alloc, err = Solve(single, costly, Limits{MinWorkers: 4, MaxWorkers: 4, MaxTasksPerJob: 8})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Tasks["a"] != 1 {
		t.Errorf("costly-init task count = %d, want 1", alloc.Tasks["a"])
	}
}

func TestWCETFormula(t *testing.T) {
	m := Model{InitTime: time.Millisecond, Theta2: time.Microsecond}
	j := JobSpec{ID: "a", DataSize: 1000, Deadline: time.Second}
	// 2 tasks of a 6-task total on 3 workers:
	// init 2ms + 1000µs*6/(3*2) = 2ms + 1ms = 3ms.
	if got := wcet(j, m, 3, 2, 6); got != 3*time.Millisecond {
		t.Errorf("wcet = %v, want 3ms", got)
	}
}

func TestSolveDeterministic(t *testing.T) {
	a, err := Solve(jobs3(), model(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Solve(jobs3(), model(), DefaultLimits())
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("Solve is not deterministic")
	}
}
