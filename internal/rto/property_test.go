package rto

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestSolvePropertyBounds: on random instances the solution respects all
// bounds and its reported WCETs match Eq. 11 recomputed independently.
func TestSolvePropertyBounds(t *testing.T) {
	m := Model{InitTime: time.Millisecond, Theta2: 50 * time.Microsecond}
	limits := Limits{MinWorkers: 1, MaxWorkers: 16, MaxTasksPerJob: 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		jobs := make([]JobSpec, n)
		for i := range jobs {
			jobs[i] = JobSpec{
				ID:       string(rune('a' + i)),
				DataSize: float64(rng.Intn(5000)),
				Deadline: time.Duration(1+rng.Intn(100)) * time.Millisecond,
			}
		}
		alloc, err := Solve(jobs, m, limits)
		if err != nil {
			return false
		}
		if alloc.Workers < limits.MinWorkers || alloc.Workers > limits.MaxWorkers {
			return false
		}
		sum := 0
		for _, tc := range alloc.Tasks {
			if tc < 1 || tc > limits.MaxTasksPerJob {
				return false
			}
			sum += tc
		}
		misses := 0
		for _, j := range jobs {
			want := wcet(j, m, alloc.Workers, alloc.Tasks[j.ID], sum)
			if alloc.WCET[j.ID] != want {
				return false
			}
			if want > j.Deadline {
				misses++
			}
		}
		return misses == alloc.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSolveMonotoneInWorkers: allowing a larger pool can never increase
// the optimal miss count.
func TestSolveMonotoneInWorkers(t *testing.T) {
	m := Model{InitTime: time.Millisecond, Theta2: 50 * time.Microsecond}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		jobs := make([]JobSpec, n)
		for i := range jobs {
			jobs[i] = JobSpec{
				ID:       string(rune('a' + i)),
				DataSize: float64(rng.Intn(3000)),
				Deadline: time.Duration(1+rng.Intn(40)) * time.Millisecond,
			}
		}
		small, err := Solve(jobs, m, Limits{MinWorkers: 1, MaxWorkers: 4, MaxTasksPerJob: 4})
		if err != nil {
			return false
		}
		large, err := Solve(jobs, m, Limits{MinWorkers: 1, MaxWorkers: 32, MaxTasksPerJob: 4})
		if err != nil {
			return false
		}
		return large.Misses <= small.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
