// Package rto implements the real-time-optimization extension the paper
// sketches as future work (§VII): instead of heuristically nudging the
// control knobs with a PID loop, formulate the allocation as an integer
// program — "finding the optimal integer values for the number of workers
// and the number of tasks for each job" — and solve it exactly.
//
// The model is Eq. 11 of the paper: with a pool of WK workers and job u
// split into T_u tasks (priority P_u = T_u / ΣT),
//
//	WCET_u = TI·T_u + D_u·θ2·ΣT / (WK·T_u)
//
// The solver minimizes, lexicographically: (1) the number of jobs missing
// their deadline, (2) the pool size WK (resources are scavenged but not
// free), (3) the worst normalized lateness. For each candidate WK the
// inner task-split problem is solved by branch and bound over the task
// vector, with a convex relaxation providing bounds: for fixed ΣT the
// per-job objective is convex in T_u with real minimizer
// T_u* = sqrt(D_u·θ2·ΣT/(WK·TI)).
package rto

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// JobSpec describes one TD job to allocate.
type JobSpec struct {
	ID string
	// DataSize is D_u, the job's data volume in work units (reports).
	DataSize float64
	// Deadline is the job's soft deadline. Must be positive.
	Deadline time.Duration
}

// Model carries the WCET coefficients of Eq. 10-11.
type Model struct {
	// InitTime is TI, the per-task start-up cost.
	InitTime time.Duration
	// Theta2 is the per-work-unit distributed execution cost.
	Theta2 time.Duration
}

// Limits bounds the integer decision variables.
type Limits struct {
	MinWorkers, MaxWorkers int
	MaxTasksPerJob         int
}

// DefaultLimits returns practical bounds.
func DefaultLimits() Limits {
	return Limits{MinWorkers: 1, MaxWorkers: 64, MaxTasksPerJob: 8}
}

// Allocation is a solved assignment.
type Allocation struct {
	Workers int
	// Tasks maps job ID to its task count T_u.
	Tasks map[string]int
	// WCET is each job's modeled worst-case completion time under the
	// allocation.
	WCET map[string]time.Duration
	// Misses is the number of jobs with WCET > deadline.
	Misses int
	// MaxLateness is the worst WCET_u / deadline_u ratio.
	MaxLateness float64
}

// Errors.
var (
	ErrNoJobs    = errors.New("rto: no jobs to allocate")
	ErrBadLimits = errors.New("rto: invalid limits")
)

// Solve computes the optimal allocation.
func Solve(jobs []JobSpec, model Model, limits Limits) (Allocation, error) {
	if len(jobs) == 0 {
		return Allocation{}, ErrNoJobs
	}
	if limits.MinWorkers < 1 || limits.MaxWorkers < limits.MinWorkers || limits.MaxTasksPerJob < 1 {
		return Allocation{}, fmt.Errorf("%w: %+v", ErrBadLimits, limits)
	}
	if model.InitTime < 0 || model.Theta2 <= 0 {
		return Allocation{}, fmt.Errorf("rto: invalid model %+v", model)
	}
	for i, j := range jobs {
		if j.ID == "" {
			return Allocation{}, fmt.Errorf("rto: job %d has no id", i)
		}
		if j.DataSize < 0 {
			return Allocation{}, fmt.Errorf("rto: job %q has negative data size", j.ID)
		}
		if j.Deadline <= 0 {
			return Allocation{}, fmt.Errorf("rto: job %q needs a positive deadline", j.ID)
		}
	}
	// Deterministic job order.
	ordered := append([]JobSpec(nil), jobs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].ID < ordered[b].ID })

	best := Allocation{Misses: len(jobs) + 1}
	for wk := limits.MinWorkers; wk <= limits.MaxWorkers; wk++ {
		cand := solveTasksForWorkers(ordered, model, limits, wk)
		if better(cand, best) {
			best = cand
		}
		// Lexicographic prune: workers are scanned ascending, so the
		// first zero-miss allocation dominates every larger pool
		// (objective 2 prefers fewer workers before lateness is even
		// consulted).
		if best.Misses == 0 {
			break
		}
	}
	return best, nil
}

// better implements the lexicographic objective.
func better(a, b Allocation) bool {
	if a.Misses != b.Misses {
		return a.Misses < b.Misses
	}
	if a.Workers != b.Workers {
		return a.Workers < b.Workers
	}
	return a.MaxLateness < b.MaxLateness-1e-12
}

// solveTasksForWorkers finds a task vector minimizing the lexicographic
// objective for a fixed pool size: coordinate descent directly on the
// (misses, lateness) objective, run from three starts — all-ones, all-max,
// and the convex relaxation's rounding (T_u* = sqrt(D_u·θ2·ΣT/(WK·TI))) —
// keeping the best local optimum.
func solveTasksForWorkers(jobs []JobSpec, model Model, limits Limits, wk int) Allocation {
	n := len(jobs)
	starts := [][]int{
		uniformTasks(n, 1),
		uniformTasks(n, limits.MaxTasksPerJob),
		convexStart(jobs, model, limits, wk),
	}
	best := Allocation{Misses: n + 1, MaxLateness: math.Inf(1)}
	for _, tasks := range starts {
		cand := polish(jobs, model, limits, wk, tasks)
		if betterTasks(cand, best) {
			best = cand
		}
	}
	return best
}

// betterTasks compares two candidate allocations for the same worker
// count: fewer misses, then lower lateness.
func betterTasks(a, b Allocation) bool {
	if a.Misses != b.Misses {
		return a.Misses < b.Misses
	}
	return a.MaxLateness < b.MaxLateness-1e-12
}

// polish runs coordinate descent on the full objective from a start. The
// inner loop scores candidates without allocating; the winning task
// vector is materialized once at the end.
func polish(jobs []JobSpec, model Model, limits Limits, wk int, start []int) Allocation {
	tasks := append([]int(nil), start...)
	bestMisses, bestLate := score(jobs, model, wk, tasks)
	for sweep := 0; sweep < 16; sweep++ {
		improved := false
		for i := range tasks {
			orig := tasks[i]
			for t := 1; t <= limits.MaxTasksPerJob; t++ {
				if t == orig {
					continue
				}
				tasks[i] = t
				misses, late := score(jobs, model, wk, tasks)
				if misses < bestMisses || (misses == bestMisses && late < bestLate-1e-12) {
					bestMisses, bestLate = misses, late
					orig = t
					improved = true
				}
			}
			tasks[i] = orig
		}
		if !improved {
			break
		}
	}
	return evaluate(jobs, model, wk, tasks)
}

// score computes (misses, max lateness) for an assignment without
// allocating.
func score(jobs []JobSpec, model Model, wk int, tasks []int) (int, float64) {
	sum := 0
	for _, t := range tasks {
		sum += t
	}
	misses := 0
	maxLate := 0.0
	for i, j := range jobs {
		w := wcet(j, model, wk, tasks[i], sum)
		if w > j.Deadline {
			misses++
		}
		if late := float64(w) / float64(j.Deadline); late > maxLate {
			maxLate = late
		}
	}
	return misses, maxLate
}

func uniformTasks(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// convexStart rounds the real-relaxation minimizer per job, using the
// job count as the initial ΣT proxy.
func convexStart(jobs []JobSpec, model Model, limits Limits, wk int) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		if model.InitTime == 0 {
			out[i] = limits.MaxTasksPerJob
			continue
		}
		tStar := math.Sqrt(j.DataSize * float64(model.Theta2) * float64(len(jobs)) /
			(float64(wk) * float64(model.InitTime)))
		t := int(math.Round(tStar))
		if t < 1 {
			t = 1
		}
		if t > limits.MaxTasksPerJob {
			t = limits.MaxTasksPerJob
		}
		out[i] = t
	}
	return out
}

// wcet evaluates Eq. 11 for one job.
func wcet(j JobSpec, model Model, wk, t, sumT int) time.Duration {
	if t < 1 {
		t = 1
	}
	if sumT < t {
		sumT = t
	}
	init := time.Duration(t) * model.InitTime
	exec := time.Duration(j.DataSize * float64(model.Theta2) * float64(sumT) / (float64(wk) * float64(t)))
	return init + exec
}

// evaluate scores a complete assignment.
func evaluate(jobs []JobSpec, model Model, wk int, tasks []int) Allocation {
	sum := 0
	for _, t := range tasks {
		sum += t
	}
	alloc := Allocation{
		Workers: wk,
		Tasks:   make(map[string]int, len(jobs)),
		WCET:    make(map[string]time.Duration, len(jobs)),
	}
	for i, j := range jobs {
		w := wcet(j, model, wk, tasks[i], sum)
		alloc.Tasks[j.ID] = tasks[i]
		alloc.WCET[j.ID] = w
		lateness := float64(w) / float64(j.Deadline)
		if lateness > alloc.MaxLateness {
			alloc.MaxLateness = lateness
		}
		if w > j.Deadline {
			alloc.Misses++
		}
	}
	return alloc
}

// SolveExhaustive enumerates the full integer space — exponential, only
// usable for small instances — and returns the true optimum. It exists to
// validate Solve in tests.
func SolveExhaustive(jobs []JobSpec, model Model, limits Limits) (Allocation, error) {
	if len(jobs) == 0 {
		return Allocation{}, ErrNoJobs
	}
	ordered := append([]JobSpec(nil), jobs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].ID < ordered[b].ID })
	best := Allocation{Misses: len(jobs) + 1}
	tasks := make([]int, len(ordered))
	var rec func(i int)
	rec = func(i int) {
		if i == len(ordered) {
			for wk := limits.MinWorkers; wk <= limits.MaxWorkers; wk++ {
				cand := evaluate(ordered, model, wk, tasks)
				if better(cand, best) {
					best = cand
				}
			}
			return
		}
		for t := 1; t <= limits.MaxTasksPerJob; t++ {
			tasks[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	return best, nil
}
