// Package clustering implements the paper's online claim generator
// (§V-A2): a streaming variant of K-means over micro-blog text using
// Jaccard distance. A newly arrived post joins the nearest existing
// cluster if it is close enough, otherwise it seeds a new cluster; a
// cluster whose diameter exceeds a threshold is split in two.
package clustering

import (
	"fmt"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/textutil"
)

// Config tunes the online clusterer.
type Config struct {
	// JoinThreshold is the maximum Jaccard distance between a post and a
	// cluster centroid for the post to join the cluster.
	JoinThreshold float64
	// SplitDiameter is the cluster diameter (max pairwise distance among
	// sampled members) beyond which a cluster is split in two.
	SplitDiameter float64
	// MaxMembersTracked bounds the per-cluster member sample kept for
	// diameter estimation and splitting.
	MaxMembersTracked int
	// Keywords optionally filters posts: when non-empty, posts containing
	// none of the keywords are ignored (the paper first filters tweets by
	// pre-specified event keywords).
	Keywords []string
}

// DefaultConfig returns thresholds that work well for short tweet-length
// texts (learned from prior case studies per the paper).
func DefaultConfig() Config {
	return Config{
		JoinThreshold:     0.7,
		SplitDiameter:     0.9,
		MaxMembersTracked: 32,
	}
}

// Cluster is one group of similar posts, treated downstream as a claim.
type Cluster struct {
	ID       string
	Centroid map[string]bool
	Size     int
	Created  time.Time

	members []member
}

type member struct {
	tokens map[string]bool
	text   string
}

// Clusterer assigns posts to clusters online. Not safe for concurrent use.
type Clusterer struct {
	cfg      Config
	clusters []*Cluster
	nextID   int
}

// New returns a Clusterer with the given configuration.
func New(cfg Config) *Clusterer {
	if cfg.MaxMembersTracked <= 0 {
		cfg.MaxMembersTracked = 32
	}
	return &Clusterer{cfg: cfg}
}

// Assign routes text observed at time t into a cluster and returns the
// cluster ID. It returns ok=false when the post is filtered out by the
// keyword list.
func (c *Clusterer) Assign(text string, t time.Time) (clusterID string, ok bool) {
	if len(c.cfg.Keywords) > 0 && !textutil.ContainsAny(text, c.cfg.Keywords) {
		return "", false
	}
	tokens := textutil.TokenSet(text)
	best := -1
	bestDist := c.cfg.JoinThreshold
	for i, cl := range c.clusters {
		d := textutil.JaccardDistance(tokens, cl.Centroid)
		if d <= bestDist {
			best = i
			bestDist = d
		}
	}
	if best == -1 {
		cl := &Cluster{
			ID:       fmt.Sprintf("cluster-%d", c.nextID),
			Centroid: copySet(tokens),
			Created:  t,
		}
		c.nextID++
		cl.add(member{tokens: tokens, text: text}, c.cfg.MaxMembersTracked)
		c.clusters = append(c.clusters, cl)
		return cl.ID, true
	}
	cl := c.clusters[best]
	cl.add(member{tokens: tokens, text: text}, c.cfg.MaxMembersTracked)
	cl.updateCentroid()
	if cl.diameter() > c.cfg.SplitDiameter && len(cl.members) >= 4 {
		c.split(best)
	}
	return cl.ID, true
}

// Clusters returns a snapshot of current clusters sorted by descending size.
func (c *Clusterer) Clusters() []Cluster {
	out := make([]Cluster, len(c.clusters))
	for i, cl := range c.clusters {
		out[i] = Cluster{ID: cl.ID, Centroid: copySet(cl.Centroid), Size: cl.Size, Created: cl.Created}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of clusters.
func (c *Clusterer) Len() int { return len(c.clusters) }

// Compact merges clusters whose centroids sit within the join threshold of
// each other — drift during streaming can fragment one topic into several
// clusters, and the claim generator benefits from periodically re-fusing
// them. Members and sizes of merged clusters are combined; the larger
// cluster's ID survives. Returns the number of merges performed.
func (c *Clusterer) Compact() int {
	merges := 0
	for i := 0; i < len(c.clusters); i++ {
		for j := i + 1; j < len(c.clusters); j++ {
			a, b := c.clusters[i], c.clusters[j]
			if textutil.JaccardDistance(a.Centroid, b.Centroid) > c.cfg.JoinThreshold {
				continue
			}
			// Merge the smaller into the larger.
			if b.Size > a.Size {
				a, b = b, a
				c.clusters[i] = a
			}
			a.Size += b.Size
			for _, m := range b.members {
				a.add(m, c.cfg.MaxMembersTracked)
				a.Size-- // add() already counted the member once via Size++
			}
			a.updateCentroid()
			c.clusters = append(c.clusters[:j], c.clusters[j+1:]...)
			merges++
			j--
		}
	}
	return merges
}

func (cl *Cluster) add(m member, maxTracked int) {
	cl.Size++
	if len(cl.members) < maxTracked {
		cl.members = append(cl.members, m)
		return
	}
	// Reservoir-style replacement keeps the sample fresh without
	// unbounded growth; deterministic rotation avoids randomness here.
	cl.members[cl.Size%maxTracked] = m
}

// updateCentroid recomputes the centroid as the set of tokens appearing in
// at least half of the tracked members (a medoid-like set centroid suited
// to Jaccard space).
func (cl *Cluster) updateCentroid() {
	counts := make(map[string]int)
	for _, m := range cl.members {
		for tok := range m.tokens {
			counts[tok]++
		}
	}
	threshold := (len(cl.members) + 1) / 2
	centroid := make(map[string]bool)
	for tok, n := range counts {
		if n >= threshold {
			centroid[tok] = true
		}
	}
	if len(centroid) == 0 {
		// Degenerate case (no common tokens): fall back to the union to
		// keep the centroid non-empty.
		for tok := range counts {
			centroid[tok] = true
		}
	}
	cl.Centroid = centroid
}

// diameter estimates the max pairwise Jaccard distance among tracked
// members.
func (cl *Cluster) diameter() float64 {
	maxD := 0.0
	for i := 0; i < len(cl.members); i++ {
		for j := i + 1; j < len(cl.members); j++ {
			d := textutil.JaccardDistance(cl.members[i].tokens, cl.members[j].tokens)
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// split breaks cluster idx in two around its two most distant members,
// mirroring the paper's "a cluster will be broken into two clusters if the
// diameter is larger than a threshold" rule.
func (c *Clusterer) split(idx int) {
	cl := c.clusters[idx]
	ai, bi := 0, 1
	maxD := -1.0
	for i := 0; i < len(cl.members); i++ {
		for j := i + 1; j < len(cl.members); j++ {
			d := textutil.JaccardDistance(cl.members[i].tokens, cl.members[j].tokens)
			if d > maxD {
				maxD, ai, bi = d, i, j
			}
		}
	}
	seedA, seedB := cl.members[ai], cl.members[bi]
	newCl := &Cluster{
		ID:      fmt.Sprintf("cluster-%d", c.nextID),
		Created: cl.Created,
	}
	c.nextID++
	var keep, move []member
	for _, m := range cl.members {
		da := textutil.JaccardDistance(m.tokens, seedA.tokens)
		db := textutil.JaccardDistance(m.tokens, seedB.tokens)
		if db < da {
			move = append(move, m)
		} else {
			keep = append(keep, m)
		}
	}
	if len(move) == 0 || len(keep) == 0 {
		return // split failed to separate; keep as-is
	}
	moved := len(move)
	cl.members = keep
	cl.Size -= moved
	cl.updateCentroid()
	newCl.members = move
	newCl.Size = moved
	newCl.updateCentroid()
	c.clusters = append(c.clusters, newCl)
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
