package clustering

import (
	"fmt"
	"testing"
	"time"
)

func at() time.Time { return time.Date(2013, 4, 15, 14, 50, 0, 0, time.UTC) }

func TestSimilarPostsShareCluster(t *testing.T) {
	c := New(DefaultConfig())
	id1, ok := c.Assign("two explosions at the boston marathon finish line", at())
	if !ok {
		t.Fatal("post filtered unexpectedly")
	}
	id2, _ := c.Assign("explosions at the boston marathon finish line reported", at())
	if id1 != id2 {
		t.Errorf("near-identical posts in different clusters: %q vs %q", id1, id2)
	}
}

func TestDissimilarPostsSplitClusters(t *testing.T) {
	c := New(DefaultConfig())
	id1, _ := c.Assign("two explosions at the boston marathon finish line", at())
	id2, _ := c.Assign("suspect seen near the jfk library with a backpack", at())
	if id1 == id2 {
		t.Error("unrelated posts landed in the same cluster")
	}
	if c.Len() != 2 {
		t.Errorf("cluster count = %d, want 2", c.Len())
	}
}

func TestKeywordFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keywords = []string{"boston", "marathon", "bombing"}
	c := New(cfg)
	if _, ok := c.Assign("nice sandwich for lunch today", at()); ok {
		t.Error("irrelevant post passed keyword filter")
	}
	if _, ok := c.Assign("praying for boston this is terrible", at()); !ok {
		t.Error("relevant post was filtered out")
	}
}

func TestClustersSnapshotSortedBySize(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		c.Assign("bomb threat at the jfk library reported", at())
	}
	c.Assign("suspect fleeing on boylston street", at())
	snap := c.Clusters()
	if len(snap) < 2 {
		t.Fatalf("snapshot has %d clusters, want >= 2", len(snap))
	}
	if snap[0].Size < snap[1].Size {
		t.Error("snapshot not sorted by descending size")
	}
	if snap[0].Size != 5 {
		t.Errorf("largest cluster size = %d, want 5", snap[0].Size)
	}
	// Snapshot centroids must be copies.
	for tok := range snap[0].Centroid {
		delete(snap[0].Centroid, tok)
	}
	if got := c.Clusters()[0]; len(got.Centroid) == 0 {
		t.Error("mutating snapshot centroid corrupted internal state")
	}
}

func TestDriftingClusterSplits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JoinThreshold = 0.99 // force everything into one cluster first
	cfg.SplitDiameter = 0.8
	c := New(cfg)
	// Two distinct topics that would merge under the loose threshold.
	for i := 0; i < 4; i++ {
		c.Assign(fmt.Sprintf("marathon explosion smoke everywhere %d", i), at())
	}
	for i := 0; i < 4; i++ {
		c.Assign(fmt.Sprintf("football touchdown crowd cheering %d", i), at())
	}
	if c.Len() < 2 {
		t.Errorf("diameter-based split did not trigger: %d clusters", c.Len())
	}
}

func TestClusterSizesConserved(t *testing.T) {
	c := New(DefaultConfig())
	n := 50
	topics := []string{
		"explosion at the marathon finish line",
		"suspect seen near the library",
		"bridge closed by police",
	}
	for i := 0; i < n; i++ {
		c.Assign(topics[i%len(topics)]+fmt.Sprintf(" extra%d", i%7), at())
	}
	total := 0
	for _, cl := range c.Clusters() {
		total += cl.Size
	}
	if total != n {
		t.Errorf("sum of cluster sizes = %d, want %d (posts conserved)", total, n)
	}
}

func TestManyPostsBoundedMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMembersTracked = 8
	c := New(cfg)
	for i := 0; i < 1000; i++ {
		c.Assign("bomb threat at the jfk library", at().Add(time.Duration(i)*time.Second))
	}
	snap := c.Clusters()
	if snap[0].Size != 1000 {
		t.Errorf("size = %d, want 1000", snap[0].Size)
	}
}

func TestCompactMergesFragments(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JoinThreshold = 0.4 // tight: fragments form easily
	c := New(cfg)
	// Two phrasings of the same topic that are just over the tight join
	// threshold from each other seed separate clusters.
	c.Assign("explosion at the boston marathon finish line", at())
	c.Assign("boston marathon explosion reported near the finish", at())
	if c.Len() < 2 {
		t.Skip("posts merged at assignment under this threshold")
	}
	// Loosen the threshold and compact.
	c.cfg.JoinThreshold = 0.75
	total := 0
	for _, cl := range c.Clusters() {
		total += cl.Size
	}
	merges := c.Compact()
	if merges == 0 {
		t.Fatal("no merges performed")
	}
	afterTotal := 0
	for _, cl := range c.Clusters() {
		afterTotal += cl.Size
	}
	if afterTotal != total {
		t.Errorf("members lost in compaction: %d -> %d", total, afterTotal)
	}
	if got := c.Compact(); got != 0 {
		t.Errorf("second compaction merged %d more", got)
	}
}

func TestCompactNoOpOnDistinctTopics(t *testing.T) {
	c := New(DefaultConfig())
	c.Assign("explosion at the marathon finish line", at())
	c.Assign("quarterback injured in the football game", at())
	if got := c.Compact(); got != 0 {
		t.Errorf("unrelated clusters merged: %d", got)
	}
	if c.Len() != 2 {
		t.Errorf("clusters = %d, want 2", c.Len())
	}
}

func TestZeroMaxMembersDefaulted(t *testing.T) {
	c := New(Config{JoinThreshold: 0.7, SplitDiameter: 0.9})
	if _, ok := c.Assign("hello world", at()); !ok {
		t.Error("assign failed with defaulted config")
	}
}
