package evalmetrics

import (
	"math"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(socialsensing.True, socialsensing.True)   // TP
	c.Observe(socialsensing.True, socialsensing.False)  // FP
	c.Observe(socialsensing.False, socialsensing.False) // TN
	c.Observe(socialsensing.False, socialsensing.True)  // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.5 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.F1(); got != 0.5 {
		t.Errorf("F1 = %v", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var empty Confusion
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty confusion should report zeros")
	}
	// All negative predictions: precision undefined -> 0, recall 0.
	c := Confusion{TN: 5, FN: 5}
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Errorf("all-negative metrics: P=%v R=%v F1=%v", c.Precision(), c.Recall(), c.F1())
	}
	// Perfect.
	p := Confusion{TP: 3, TN: 7}
	if p.Accuracy() != 1 || p.F1() != 1 {
		t.Errorf("perfect metrics: acc=%v f1=%v", p.Accuracy(), p.F1())
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Add(b)
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestF1HarmonicMean(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 8} // P=0.8, R=0.5
	want := 2 * 0.8 * 0.5 / 1.3
	if got := c.F1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, want)
	}
}

func TestReportOf(t *testing.T) {
	r := ReportOf("SSTD", Confusion{TP: 1, TN: 1})
	if r.Method != "SSTD" || r.Accuracy != 1 {
		t.Errorf("ReportOf = %+v", r)
	}
}

func TestEvaluateDynamic(t *testing.T) {
	start := time.Date(2016, 9, 30, 12, 0, 0, 0, time.UTC)
	tr := &socialsensing.Trace{
		Name:    "eval",
		Start:   start,
		End:     start.Add(time.Hour),
		Sources: []socialsensing.Source{{ID: "s", Reliability: 1}},
		Claims:  []socialsensing.Claim{{ID: "c", Created: start}},
		Reports: []socialsensing.Report{
			{Source: "s", Claim: "c", Timestamp: start, Attitude: socialsensing.Agree, Independence: 1},
			{Source: "s", Claim: "c", Timestamp: start.Add(59 * time.Minute), Attitude: socialsensing.Agree, Independence: 1},
		},
		GroundTruth: map[socialsensing.ClaimID][]socialsensing.GroundTruthPoint{
			"c": {
				{Claim: "c", Time: start, Value: socialsensing.True},
				{Claim: "c", Time: start.Add(30 * time.Minute), Value: socialsensing.False},
			},
		},
	}
	// A perfect estimator.
	perfect := func(claim socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		v, ok := tr.TruthAt(claim, at)
		return v, ok
	}
	conf, err := EvaluateDynamic(tr, perfect, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() != 1 {
		t.Errorf("perfect estimator accuracy = %v", conf.Accuracy())
	}
	if conf.Total() != 60 {
		t.Errorf("samples = %d, want 60 (minute grid over report span)", conf.Total())
	}
	// A static estimator stuck on True scores exactly the true-phase
	// fraction.
	static := func(socialsensing.ClaimID, time.Time) (socialsensing.TruthValue, bool) {
		return socialsensing.True, true
	}
	conf2, _ := EvaluateDynamic(tr, static, time.Minute)
	if got := conf2.Accuracy(); math.Abs(got-0.5) > 0.02 {
		t.Errorf("static estimator accuracy = %v, want ~0.5", got)
	}
	// Estimators may abstain.
	abstain := func(socialsensing.ClaimID, time.Time) (socialsensing.TruthValue, bool) {
		return socialsensing.False, false
	}
	conf3, _ := EvaluateDynamic(tr, abstain, time.Minute)
	if conf3.Total() != 0 {
		t.Errorf("abstaining estimator scored %d samples", conf3.Total())
	}
	if _, err := EvaluateDynamic(tr, perfect, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestEvaluateDynamicPerClaim(t *testing.T) {
	start := time.Date(2016, 9, 30, 12, 0, 0, 0, time.UTC)
	tr := &socialsensing.Trace{
		Name:    "per-claim",
		Start:   start,
		End:     start.Add(time.Hour),
		Sources: []socialsensing.Source{{ID: "s", Reliability: 1}},
		Claims:  []socialsensing.Claim{{ID: "good", Created: start}, {ID: "bad", Created: start}},
		Reports: []socialsensing.Report{
			{Source: "s", Claim: "good", Timestamp: start, Attitude: socialsensing.Agree, Independence: 1},
			{Source: "s", Claim: "good", Timestamp: start.Add(9 * time.Minute), Attitude: socialsensing.Agree, Independence: 1},
			{Source: "s", Claim: "bad", Timestamp: start, Attitude: socialsensing.Agree, Independence: 1},
			{Source: "s", Claim: "bad", Timestamp: start.Add(9 * time.Minute), Attitude: socialsensing.Agree, Independence: 1},
		},
		GroundTruth: map[socialsensing.ClaimID][]socialsensing.GroundTruthPoint{
			"good": {{Claim: "good", Time: start, Value: socialsensing.True}},
			"bad":  {{Claim: "bad", Time: start, Value: socialsensing.False}},
		},
	}
	// An estimator that always says True: perfect on "good", zero on
	// "bad".
	alwaysTrue := func(socialsensing.ClaimID, time.Time) (socialsensing.TruthValue, bool) {
		return socialsensing.True, true
	}
	perClaim, total, err := EvaluateDynamicPerClaim(tr, alwaysTrue, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if perClaim["good"].Accuracy() != 1 {
		t.Errorf("good accuracy = %v", perClaim["good"].Accuracy())
	}
	if perClaim["bad"].Accuracy() != 0 {
		t.Errorf("bad accuracy = %v", perClaim["bad"].Accuracy())
	}
	want := perClaim["good"].Total() + perClaim["bad"].Total()
	if total.Total() != want {
		t.Errorf("pooled total = %d, want %d", total.Total(), want)
	}
	if total.Accuracy() != 0.5 {
		t.Errorf("pooled accuracy = %v", total.Accuracy())
	}
	if _, _, err := EvaluateDynamicPerClaim(tr, alwaysTrue, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestHitRate(t *testing.T) {
	if got := HitRate(nil); got != 0 {
		t.Errorf("HitRate(nil) = %v", got)
	}
	if got := HitRate([]bool{true, true, false, true}); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}
