// Package evalmetrics computes the evaluation measures of the paper's §V:
// truth discovery effectiveness (accuracy, precision, recall, F1 against
// labelled ground truth, evaluated per time interval for dynamic claims),
// efficiency (execution time) and controllability (deadline hit rate).
package evalmetrics

import (
	"errors"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Confusion is a binary confusion matrix; "positive" is a True claim.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Observe records one (estimate, truth) pair.
func (c *Confusion) Observe(estimate, truth socialsensing.TruthValue) {
	switch {
	case estimate == socialsensing.True && truth == socialsensing.True:
		c.TP++
	case estimate == socialsensing.True && truth == socialsensing.False:
		c.FP++
	case estimate == socialsensing.False && truth == socialsensing.False:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is (TP+TN)/total; 0 when empty.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision is TP/(TP+FP); 0 when no positive predictions.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 0 when no positive labels.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Report bundles the four effectiveness metrics for result tables.
type Report struct {
	Method    string
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// ReportOf derives a Report from a confusion matrix.
func ReportOf(method string, c Confusion) Report {
	return Report{
		Method:    method,
		Accuracy:  c.Accuracy(),
		Precision: c.Precision(),
		Recall:    c.Recall(),
		F1:        c.F1(),
	}
}

// TruthFunc evaluates an estimator's decoded truth for a claim at a time;
// ok=false means the estimator offers no verdict there (excluded from
// scoring).
type TruthFunc func(claim socialsensing.ClaimID, t time.Time) (socialsensing.TruthValue, bool)

// EvaluateDynamic scores an estimator against a trace's evolving ground
// truth by sampling every claim at every interval of the given width
// across the span in which the claim has reports (the dynamic-truth
// evaluation the paper uses). It returns the pooled confusion matrix.
func EvaluateDynamic(tr *socialsensing.Trace, estimate TruthFunc, width time.Duration) (Confusion, error) {
	_, total, err := EvaluateDynamicPerClaim(tr, estimate, width)
	return total, err
}

// EvaluateDynamicPerClaim is EvaluateDynamic with a per-claim breakdown:
// it returns one confusion matrix per claim plus the pooled total —
// useful for spotting which claims an estimator fails on. Scoring is
// restricted to intervals where the claim is actually observed (first to
// last report), matching how labelled evaluations work.
func EvaluateDynamicPerClaim(tr *socialsensing.Trace, estimate TruthFunc, width time.Duration) (map[socialsensing.ClaimID]Confusion, Confusion, error) {
	if width <= 0 {
		return nil, Confusion{}, errors.New("evalmetrics: width must be positive")
	}
	span := make(map[socialsensing.ClaimID][2]time.Time, len(tr.Claims))
	for _, r := range tr.Reports {
		s, ok := span[r.Claim]
		if !ok {
			span[r.Claim] = [2]time.Time{r.Timestamp, r.Timestamp}
			continue
		}
		if r.Timestamp.Before(s[0]) {
			s[0] = r.Timestamp
		}
		if r.Timestamp.After(s[1]) {
			s[1] = r.Timestamp
		}
		span[r.Claim] = s
	}
	perClaim := make(map[socialsensing.ClaimID]Confusion, len(span))
	var total Confusion
	for claim, s := range span {
		var conf Confusion
		for t := s[0]; !t.After(s[1]); t = t.Add(width) {
			truth, ok := tr.TruthAt(claim, t)
			if !ok {
				continue
			}
			est, ok := estimate(claim, t)
			if !ok {
				continue
			}
			conf.Observe(est, truth)
		}
		perClaim[claim] = conf
		total.Add(conf)
	}
	return perClaim, total, nil
}

// HitRate is the fraction of intervals whose processing finished within
// the deadline (Fig. 6's controllability metric).
func HitRate(met []bool) float64 {
	if len(met) == 0 {
		return 0
	}
	hits := 0
	for _, m := range met {
		if m {
			hits++
		}
	}
	return float64(hits) / float64(len(met))
}

// SpeedupSeries is one curve of Fig. 7: speedup per worker count.
type SpeedupSeries struct {
	DataSize int
	Workers  []int
	Speedup  []float64
}
