package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// CATD implements Li et al.'s Confidence-Aware Truth Discovery (VLDB
// 2015), designed for long-tail data where most sources make very few
// claims. A source's weight is the upper bound of the confidence interval
// of its error rate: w_s = chi²_{alpha/2}(k_s) / sum of squared errors,
// so sparse sources (small k_s) are discounted by the wide interval
// rather than trusted on a lucky streak.
type CATD struct {
	// Alpha is the significance level of the confidence interval
	// (paper default 0.05).
	Alpha float64
	// MaxIterations bounds the alternating updates. Default 20.
	MaxIterations int
}

var _ Estimator = (*CATD)(nil)

// NewCATD returns CATD with the published defaults.
func NewCATD() *CATD {
	return &CATD{Alpha: 0.05, MaxIterations: 20}
}

// Name implements Estimator.
func (c *CATD) Name() string { return "CATD" }

// Estimate implements Estimator.
func (c *CATD) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	// Truth scores in [-1, 1]; initialized from unweighted voting.
	score := make(map[socialsensing.ClaimID]float64, len(ds.Claims))
	for _, cl := range ds.Claims {
		s := 0.0
		for _, vi := range ds.ClaimVotes(cl) {
			if ds.Votes[vi].Value == socialsensing.True {
				s++
			} else {
				s--
			}
		}
		score[cl] = sign(s)
	}

	weight := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for iter := 0; iter < c.MaxIterations; iter++ {
		// Source weights from chi-square upper confidence bound on the
		// squared-error sum.
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			sqErr := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				claimed := 1.0
				if v.Value == socialsensing.False {
					claimed = -1.0
				}
				d := claimed - score[v.Claim]
				sqErr += d * d
			}
			k := float64(len(votes))
			weight[s] = chiSquareQuantile(c.Alpha/2, k) / (sqErr + 1e-9)
		}
		// Normalize weights for numerical stability.
		maxW := 0.0
		for _, w := range weight {
			if w > maxW {
				maxW = w
			}
		}
		if maxW > 0 {
			for s := range weight {
				weight[s] /= maxW
			}
		}
		// Truth update: weighted mean of claimed values.
		for _, cl := range ds.Claims {
			num, den := 0.0, 0.0
			for _, vi := range ds.ClaimVotes(cl) {
				v := ds.Votes[vi]
				claimed := 1.0
				if v.Value == socialsensing.False {
					claimed = -1.0
				}
				w := weight[v.Source]
				num += w * claimed
				den += w
			}
			if den > 0 {
				score[cl] = num / den
			}
		}
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, cl := range ds.Claims {
		out[cl] = decide(score[cl])
	}
	return out
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// chiSquareQuantile approximates the p-quantile of the chi-square
// distribution with k degrees of freedom using the Wilson–Hilferty cube
// approximation, which is accurate enough for weighting purposes across
// the k >= 1 range CATD needs.
func chiSquareQuantile(p float64, k float64) float64 {
	if k <= 0 {
		return 0
	}
	z := normalQuantile(p)
	a := 2.0 / (9.0 * k)
	v := 1 - a + z*math.Sqrt(a)
	q := k * v * v * v
	if q < 1e-6 {
		q = 1e-6
	}
	return q
}

// normalQuantile is the standard normal inverse CDF via the
// Beasley-Springer-Moro rational approximation.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central region.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
