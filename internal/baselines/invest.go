package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Invest implements Pasternack & Roth's Investment algorithm (COLING
// 2010): each source uniformly "invests" its trustworthiness across its
// claims; claim credibility grows the invested trust with a non-linear
// function G(x) = x^G; source trust is then the sum over its claims of the
// claim's credibility weighted by the share the source invested.
type Invest struct {
	// G is the non-linear growth exponent (paper default 1.2).
	G float64
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
}

var _ Estimator = (*Invest)(nil)

// NewInvest returns Invest with the published defaults.
func NewInvest() *Invest {
	return &Invest{G: 1.2, MaxIterations: 20}
}

// Name implements Estimator.
func (in *Invest) Name() string { return "Invest" }

// factKey identifies a (claim, asserted value) pair — the "fact" unit the
// Investment algorithm scores.
type factKey struct {
	claim socialsensing.ClaimID
	value socialsensing.TruthValue
}

// Estimate implements Estimator.
func (in *Invest) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	trust := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		trust[s] = 1.0
	}
	cred := make(map[factKey]float64)

	for iter := 0; iter < in.MaxIterations; iter++ {
		// Invested amount per fact: sum over asserting sources of
		// trust / #claims the source voted on.
		invested := make(map[factKey]float64)
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			share := trust[s] / float64(len(votes))
			for _, vi := range votes {
				v := ds.Votes[vi]
				invested[factKey{v.Claim, v.Value}] += share
			}
		}
		// Grow credibility non-linearly.
		for k, x := range invested {
			cred[k] = math.Pow(x, in.G)
		}
		// Pay sources back proportionally to their investment share.
		next := make(map[socialsensing.SourceID]float64, len(ds.Sources))
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				next[s] = trust[s]
				continue
			}
			share := trust[s] / float64(len(votes))
			sum := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				k := factKey{v.Claim, v.Value}
				if invested[k] > 0 {
					sum += cred[k] * share / invested[k]
				}
			}
			next[s] = sum
		}
		// Normalize trust to keep the fixpoint bounded.
		maxT := 0.0
		for _, v := range next {
			if v > maxT {
				maxT = v
			}
		}
		if maxT > 0 {
			for s := range next {
				next[s] /= maxT
			}
		}
		trust = next
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(cred[factKey{c, socialsensing.True}] - cred[factKey{c, socialsensing.False}])
	}
	return out
}
