package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// RTD implements Zhang, Rungang & Wang's Robust Truth Discovery scheme
// (IEEE BigData 2016) for sparse social media sensing. Two ideas beyond
// classic iterative weighting: (i) a source's historical contribution
// profile dampens widely-spread misinformation — votes that merely echo an
// already-popular position carry less evidence than independent
// confirmations; (ii) source reliability uses smoothed counts so
// long-tail sources with one or two claims do not swing the outcome.
type RTD struct {
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
	// PriorWeight is the pseudo-count smoothing the per-source accuracy
	// estimate toward 0.5. Default 2.
	PriorWeight float64
	// EchoDiscount in [0,1] scales down the marginal weight of each
	// additional vote on the same side of a claim; 0 disables the
	// misinformation dampening. Default 0.15.
	EchoDiscount float64
}

var _ Estimator = (*RTD)(nil)

// NewRTD returns RTD with defaults.
func NewRTD() *RTD {
	return &RTD{MaxIterations: 20, PriorWeight: 2, EchoDiscount: 0.15}
}

// Name implements Estimator.
func (r *RTD) Name() string { return "RTD" }

// Estimate implements Estimator.
func (r *RTD) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	rel := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		rel[s] = 0.7
	}
	score := make(map[socialsensing.ClaimID]float64, len(ds.Claims))

	for iter := 0; iter < r.MaxIterations; iter++ {
		// Truth scores: reliability-weighted votes with echo dampening.
		// Votes on each side are ordered by weight; the k-th vote on a
		// side is discounted by (1-EchoDiscount)^k, modelling that a
		// cascade of repeats adds little independent evidence.
		for _, c := range ds.Claims {
			var posW, negW []float64
			for _, vi := range ds.ClaimVotes(c) {
				v := ds.Votes[vi]
				w := (2*rel[v.Source] - 1) * v.Weight
				if w < 0 {
					w = 0 // a <50% reliable source adds no evidence
				}
				if v.Value == socialsensing.True {
					posW = append(posW, w)
				} else {
					negW = append(negW, w)
				}
			}
			score[c] = r.dampenedSum(posW) - r.dampenedSum(negW)
		}
		// Source reliability: smoothed agreement with current estimates.
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			agree := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				if v.Value == decide(score[v.Claim]) {
					agree++
				}
			}
			rel[s] = (agree + r.PriorWeight*0.5) / (float64(len(votes)) + r.PriorWeight)
		}
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(score[c])
	}
	return out
}

// dampenedSum sorts weights descending and sums them with geometric
// dampening, so the first (strongest, presumably independent) voices
// dominate and echo cascades saturate.
func (r *RTD) dampenedSum(ws []float64) float64 {
	// Insertion sort: vote lists per claim are small.
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j] > ws[j-1]; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	sum := 0.0
	for k, w := range ws {
		sum += w * math.Pow(1-r.EchoDiscount, float64(k))
	}
	return sum
}
