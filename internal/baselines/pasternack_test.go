package baselines

import (
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func TestAvgLogCleanData(t *testing.T) {
	ds, truth := synthStatic(t, 11, 30, 10, 4, 0.95, 0.3)
	got := NewAvgLog().Estimate(ds)
	if acc := accuracyOf(got, truth); acc < 0.9 {
		t.Errorf("AvgLog accuracy = %.2f on clean data", acc)
	}
}

func TestPooledInvestCleanData(t *testing.T) {
	ds, truth := synthStatic(t, 13, 30, 10, 4, 0.95, 0.3)
	got := NewPooledInvest().Estimate(ds)
	if acc := accuracyOf(got, truth); acc < 0.9 {
		t.Errorf("PooledInvest accuracy = %.2f on clean data", acc)
	}
}

func TestAvgLogRewardsProlificAccurateSources(t *testing.T) {
	// A prolific accurate source plus scattered one-shot noise: AvgLog's
	// log(|claims|) factor should weight the prolific voice up.
	base := time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC)
	var reports []socialsensing.Report
	truth := make(map[socialsensing.ClaimID]socialsensing.TruthValue)
	for ci := 0; ci < 15; ci++ {
		c := socialsensing.ClaimID(rune('a' + ci))
		truth[c] = socialsensing.True
		reports = append(reports, socialsensing.Report{
			Source: "wire-service", Claim: c, Timestamp: base,
			Attitude: socialsensing.Agree, Independence: 1,
		})
		// One single-claim denier per claim.
		reports = append(reports, socialsensing.Report{
			Source: socialsensing.SourceID(string(rune('a'+ci)) + "-denier"), Claim: c,
			Timestamp: base, Attitude: socialsensing.Disagree, Independence: 1,
		})
	}
	ds := BuildDataset(reports)
	got := NewAvgLog().Estimate(ds)
	if acc := accuracyOf(got, truth); acc < 0.99 {
		t.Errorf("AvgLog accuracy = %.2f, want ~1 (prolific source should win ties)", acc)
	}
}

func TestPooledInvestBoundedBeliefs(t *testing.T) {
	// Pooling keeps the per-claim fact credibilities from blowing up:
	// unlike raw Invest, the pooled credibilities within a claim sum to
	// at most the invested total.
	ds, _ := synthStatic(t, 5, 20, 8, 4, 0.9, 0.4)
	est := NewPooledInvest()
	got := est.Estimate(ds)
	if len(got) != 20 {
		t.Fatalf("claims decided = %d", len(got))
	}
}

func TestPasternackVariantsUnderNoise(t *testing.T) {
	// The discriminating scenario from the shared baseline suite: a
	// small reliable core outnumbered by noisy sources. Both Pasternack
	// variants should beat unweighted voting on average.
	voteTot, avgTot, pooledTot := 0.0, 0.0, 0.0
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		ds, truth := synthStatic(t, seed, 60, 5, 15, 0.95, 0.45)
		voteTot += accuracyOf((&MajorityVote{}).Estimate(ds), truth)
		avgTot += accuracyOf(NewAvgLog().Estimate(ds), truth)
		pooledTot += accuracyOf(NewPooledInvest().Estimate(ds), truth)
	}
	vote, avg, pooled := voteTot/seeds, avgTot/seeds, pooledTot/seeds
	if avg < vote-0.02 {
		t.Errorf("AvgLog %.3f below voting %.3f", avg, vote)
	}
	if pooled < vote-0.02 {
		t.Errorf("PooledInvest %.3f below voting %.3f", pooled, vote)
	}
}

func TestPasternackVariantsOnEmptyAndNames(t *testing.T) {
	empty := BuildDataset(nil)
	for _, est := range []Estimator{NewAvgLog(), NewPooledInvest()} {
		if out := est.Estimate(empty); len(out) != 0 {
			t.Errorf("%s on empty dataset = %v", est.Name(), out)
		}
	}
	if NewAvgLog().Name() == NewPooledInvest().Name() {
		t.Error("duplicate names")
	}
}
