package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// StreamingEstimator is a truth discovery algorithm that consumes the data
// stream interval by interval and maintains a current truth estimate per
// claim — the contract both DynaTD and SSTD satisfy in the streaming
// experiments (Fig. 5).
type StreamingEstimator interface {
	// Name identifies the method in experiment output.
	Name() string
	// ProcessInterval ingests the reports of the next time interval and
	// returns the current estimate for every claim seen so far.
	ProcessInterval(reports []socialsensing.Report) map[socialsensing.ClaimID]socialsensing.TruthValue
	// Reset clears all state for a fresh run.
	Reset()
}

// DynaTD implements Li et al.'s dynamic truth discovery (KDD 2015, "On the
// Discovery of Evolving Truth") adapted to binary claims: a Maximum A
// Posteriori streaming estimator that combines the previous interval's
// truth estimate (weighted by a truth-persistence prior) with the current
// interval's source-reliability-weighted votes, updating source
// reliabilities online with exponential decay.
type DynaTD struct {
	// Persistence in [0,1) is the prior weight carried from the previous
	// estimate (the evolving-truth smoothness assumption). Default 0.6.
	Persistence float64
	// Decay in [0,1) is the exponential forgetting factor for source
	// accuracy counts. Default 0.95.
	Decay float64
	// PriorCount smooths source accuracy toward PriorAccuracy. Default 2.
	PriorCount float64
	// PriorAccuracy is the optimistic prior for unseen sources; it must
	// exceed 0.5 so that fresh sources carry positive voting weight and
	// the estimator can bootstrap. Default 0.7.
	PriorAccuracy float64

	reliab map[socialsensing.SourceID]*sourceStats
	score  map[socialsensing.ClaimID]float64
}

type sourceStats struct {
	agree float64
	total float64
}

var _ StreamingEstimator = (*DynaTD)(nil)

// NewDynaTD returns DynaTD with defaults.
func NewDynaTD() *DynaTD {
	d := &DynaTD{Persistence: 0.6, Decay: 0.95, PriorCount: 2, PriorAccuracy: 0.7}
	d.Reset()
	return d
}

// Name implements StreamingEstimator.
func (d *DynaTD) Name() string { return "DynaTD" }

// Reset implements StreamingEstimator.
func (d *DynaTD) Reset() {
	d.reliab = make(map[socialsensing.SourceID]*sourceStats)
	d.score = make(map[socialsensing.ClaimID]float64)
}

// weight returns the log-odds voting weight of a source from its smoothed
// accuracy estimate.
func (d *DynaTD) weight(s socialsensing.SourceID) float64 {
	st := d.reliab[s]
	acc := d.PriorAccuracy
	if st != nil {
		acc = (st.agree + d.PriorCount*d.PriorAccuracy) / (st.total + d.PriorCount)
	}
	// Clamp to avoid infinite log-odds.
	acc = math.Min(0.99, math.Max(0.01, acc))
	return math.Log(acc / (1 - acc))
}

// ProcessInterval implements StreamingEstimator.
func (d *DynaTD) ProcessInterval(reports []socialsensing.Report) map[socialsensing.ClaimID]socialsensing.TruthValue {
	// MAP update: prior from previous score, likelihood from
	// reliability-weighted votes. Unlike SSTD, the original DynaTD has
	// no contribution-score preprocessing, so votes carry the raw
	// attitude only — this is precisely the robustness gap the paper's
	// comparison exposes on noisy, retweet-heavy traces.
	votes := make(map[socialsensing.ClaimID]float64)
	for _, r := range reports {
		if r.Attitude == socialsensing.NoReport {
			continue
		}
		votes[r.Claim] += d.weight(r.Source) * float64(r.Attitude)
	}
	for c, v := range votes {
		d.score[c] = d.Persistence*d.score[c] + (1-d.Persistence)*v
	}
	// Claims without new votes decay toward their previous estimate
	// unchanged (the MAP prior dominates).
	est := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(d.score))
	for c, s := range d.score {
		est[c] = decide(s)
	}
	// Online reliability update from agreement with the new estimates.
	for _, r := range reports {
		if r.Attitude == socialsensing.NoReport {
			continue
		}
		st := d.reliab[r.Source]
		if st == nil {
			st = &sourceStats{}
			d.reliab[r.Source] = st
		}
		st.agree *= d.Decay
		st.total *= d.Decay
		claimTrue := est[r.Claim] == socialsensing.True
		saidTrue := r.Attitude == socialsensing.Agree
		if claimTrue == saidTrue {
			st.agree++
		}
		st.total++
	}
	return est
}
