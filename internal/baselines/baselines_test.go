package baselines

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// synthStatic builds a static-truth dataset: nClaims claims with known
// truth, nGood reliable sources (accuracy pGood) and nBad unreliable
// sources (accuracy pBad), every source voting on every claim.
func synthStatic(t *testing.T, seed int64, nClaims, nGood, nBad int, pGood, pBad float64) (*Dataset, map[socialsensing.ClaimID]socialsensing.TruthValue) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[socialsensing.ClaimID]socialsensing.TruthValue, nClaims)
	var reports []socialsensing.Report
	base := time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC)
	for ci := 0; ci < nClaims; ci++ {
		c := socialsensing.ClaimID(fmt.Sprintf("c%02d", ci))
		if rng.Float64() < 0.5 {
			truth[c] = socialsensing.True
		} else {
			truth[c] = socialsensing.False
		}
		emit := func(s socialsensing.SourceID, acc float64) {
			correct := rng.Float64() < acc
			saysTrue := (truth[c] == socialsensing.True) == correct
			att := socialsensing.Disagree
			if saysTrue {
				att = socialsensing.Agree
			}
			reports = append(reports, socialsensing.Report{
				Source: s, Claim: c, Timestamp: base,
				Attitude: att, Uncertainty: 0.1, Independence: 0.9,
			})
		}
		for g := 0; g < nGood; g++ {
			emit(socialsensing.SourceID(fmt.Sprintf("good%02d", g)), pGood)
		}
		for b := 0; b < nBad; b++ {
			emit(socialsensing.SourceID(fmt.Sprintf("bad%02d", b)), pBad)
		}
	}
	return BuildDataset(reports), truth
}

func accuracyOf(est, truth map[socialsensing.ClaimID]socialsensing.TruthValue) float64 {
	correct := 0
	for c, v := range truth {
		if est[c] == v {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func allEstimators() []Estimator {
	return []Estimator{
		&MajorityVote{},
		&MajorityVote{Weighted: true},
		NewTruthFinder(),
		NewInvest(),
		NewThreeEstimates(),
		NewCATD(),
		NewRTD(),
	}
}

func TestBuildDataset(t *testing.T) {
	base := time.Now()
	reports := []socialsensing.Report{
		{Source: "a", Claim: "c1", Timestamp: base, Attitude: socialsensing.Agree, Independence: 1},
		{Source: "a", Claim: "c1", Timestamp: base, Attitude: socialsensing.Agree, Independence: 1},
		{Source: "b", Claim: "c1", Timestamp: base, Attitude: socialsensing.Disagree, Independence: 1},
		{Source: "b", Claim: "c2", Timestamp: base, Attitude: socialsensing.Agree, Independence: 0.5},
		// Cancelling pair produces no vote.
		{Source: "x", Claim: "c2", Timestamp: base, Attitude: socialsensing.Agree, Independence: 1},
		{Source: "x", Claim: "c2", Timestamp: base, Attitude: socialsensing.Disagree, Independence: 1},
	}
	ds := BuildDataset(reports)
	if len(ds.Votes) != 3 {
		t.Fatalf("votes = %d, want 3 (%+v)", len(ds.Votes), ds.Votes)
	}
	if len(ds.Sources) != 2 {
		t.Errorf("sources = %v, want [a b]", ds.Sources)
	}
	if len(ds.Claims) != 2 {
		t.Errorf("claims = %v, want 2", ds.Claims)
	}
	// a's two agrees collapse to one vote of weight 2.
	found := false
	for _, v := range ds.Votes {
		if v.Source == "a" && v.Claim == "c1" {
			found = true
			if v.Value != socialsensing.True || v.Weight != 2 {
				t.Errorf("aggregated vote = %+v", v)
			}
		}
	}
	if !found {
		t.Error("missing aggregated vote for a/c1")
	}
	if got := len(ds.ClaimVotes("c1")); got != 2 {
		t.Errorf("ClaimVotes(c1) = %d, want 2", got)
	}
	if got := len(ds.SourceVotes("b")); got != 2 {
		t.Errorf("SourceVotes(b) = %d, want 2", got)
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	base := time.Now()
	var reports []socialsensing.Report
	for i := 0; i < 30; i++ {
		reports = append(reports, socialsensing.Report{
			Source: socialsensing.SourceID(fmt.Sprintf("s%d", i%7)), Claim: socialsensing.ClaimID(fmt.Sprintf("c%d", i%5)),
			Timestamp: base, Attitude: socialsensing.Agree, Independence: 1,
		})
	}
	a := BuildDataset(reports)
	b := BuildDataset(reports)
	if fmt.Sprint(a.Votes) != fmt.Sprint(b.Votes) {
		t.Error("BuildDataset is not deterministic")
	}
}

func TestAllEstimatorsOnCleanData(t *testing.T) {
	// With a strong reliable majority, every method must get everything
	// (or nearly everything) right.
	ds, truth := synthStatic(t, 1, 30, 12, 3, 0.95, 0.3)
	for _, est := range allEstimators() {
		t.Run(est.Name(), func(t *testing.T) {
			got := est.Estimate(ds)
			if acc := accuracyOf(got, truth); acc < 0.9 {
				t.Errorf("%s accuracy = %.2f on clean data, want >= 0.9", est.Name(), acc)
			}
		})
	}
}

func TestIterativeMethodsBeatVotingUnderNoise(t *testing.T) {
	// A small reliable core (5 sources at 0.95) is outnumbered by noisy,
	// slightly anti-leaning sources (15 at 0.45): plain voting degrades
	// while reliability-aware methods identify and up-weight the core.
	// Averaged over seeds, voting lands near 0.78 and the iterative
	// methods above 0.9.
	voteTot, iterTot := 0.0, make(map[string]float64)
	methods := []Estimator{NewTruthFinder(), NewRTD(), NewCATD(), NewThreeEstimates(), NewInvest()}
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		ds, truth := synthStatic(t, seed, 60, 5, 15, 0.95, 0.45)
		voteTot += accuracyOf((&MajorityVote{}).Estimate(ds), truth)
		for _, est := range methods {
			iterTot[est.Name()] += accuracyOf(est.Estimate(ds), truth)
		}
	}
	voteAcc := voteTot / seeds
	if voteAcc > 0.92 {
		t.Fatalf("scenario not discriminating: voting accuracy %.2f", voteAcc)
	}
	for _, est := range methods {
		acc := iterTot[est.Name()] / seeds
		if acc < voteAcc {
			t.Errorf("%s mean accuracy %.2f below majority voting %.2f", est.Name(), acc, voteAcc)
		}
		if acc < 0.85 {
			t.Errorf("%s mean accuracy %.2f too low", est.Name(), acc)
		}
	}
}

func TestCATDDiscountsLongTailSources(t *testing.T) {
	// One prolific accurate source vs many one-shot wrong sources: CATD's
	// confidence intervals should trust the prolific source.
	rng := rand.New(rand.NewSource(9))
	_ = rng
	base := time.Now()
	var reports []socialsensing.Report
	truth := make(map[socialsensing.ClaimID]socialsensing.TruthValue)
	for ci := 0; ci < 20; ci++ {
		c := socialsensing.ClaimID(fmt.Sprintf("c%02d", ci))
		truth[c] = socialsensing.True
		// The expert is right on every claim.
		reports = append(reports, socialsensing.Report{
			Source: "expert", Claim: c, Timestamp: base,
			Attitude: socialsensing.Agree, Independence: 1,
		})
		// Two distinct one-shot sources deny each claim.
		for j := 0; j < 2; j++ {
			reports = append(reports, socialsensing.Report{
				Source: socialsensing.SourceID(fmt.Sprintf("oneshot-%d-%d", ci, j)), Claim: c,
				Timestamp: base, Attitude: socialsensing.Disagree, Independence: 1,
			})
		}
	}
	ds := BuildDataset(reports)
	catdAcc := accuracyOf(NewCATD().Estimate(ds), truth)
	voteAcc := accuracyOf((&MajorityVote{}).Estimate(ds), truth)
	if catdAcc <= voteAcc {
		t.Errorf("CATD %.2f should beat voting %.2f on long-tail data", catdAcc, voteAcc)
	}
	if catdAcc < 0.9 {
		t.Errorf("CATD accuracy = %.2f, want >= 0.9", catdAcc)
	}
}

func TestRTDDampensMisinformationCascade(t *testing.T) {
	// A large echo cascade (many weak copies) pushes the false side;
	// a handful of independent strong reports hold the true side. RTD's
	// dampened sum should resist the cascade better than weighted voting.
	base := time.Now()
	var reports []socialsensing.Report
	truth := map[socialsensing.ClaimID]socialsensing.TruthValue{}
	for ci := 0; ci < 10; ci++ {
		c := socialsensing.ClaimID(fmt.Sprintf("c%02d", ci))
		truth[c] = socialsensing.True
		for j := 0; j < 4; j++ { // independent confirmations
			reports = append(reports, socialsensing.Report{
				Source: socialsensing.SourceID(fmt.Sprintf("witness%d", j)), Claim: c,
				Timestamp: base, Attitude: socialsensing.Agree, Independence: 0.95,
			})
		}
		for j := 0; j < 9; j++ { // retweet cascade of the false version
			reports = append(reports, socialsensing.Report{
				Source: socialsensing.SourceID(fmt.Sprintf("echo%d", j)), Claim: c,
				Timestamp: base, Attitude: socialsensing.Disagree, Independence: 0.25,
			})
		}
	}
	ds := BuildDataset(reports)
	rtdAcc := accuracyOf(NewRTD().Estimate(ds), truth)
	if rtdAcc < 0.9 {
		t.Errorf("RTD accuracy = %.2f under cascade, want >= 0.9", rtdAcc)
	}
	plain := accuracyOf((&MajorityVote{}).Estimate(ds), truth)
	if rtdAcc < plain {
		t.Errorf("RTD %.2f below plain voting %.2f", rtdAcc, plain)
	}
}

func TestEstimatorsHandleEmptyDataset(t *testing.T) {
	ds := BuildDataset(nil)
	for _, est := range allEstimators() {
		got := est.Estimate(ds)
		if len(got) != 0 {
			t.Errorf("%s on empty dataset returned %v", est.Name(), got)
		}
	}
}

func TestEstimatorNamesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, est := range allEstimators() {
		if seen[est.Name()] {
			t.Errorf("duplicate estimator name %q", est.Name())
		}
		seen[est.Name()] = true
	}
}

func TestDynaTDTracksEvolvingTruth(t *testing.T) {
	d := NewDynaTD()
	base := time.Now()
	claim := socialsensing.ClaimID("score-change")
	var last map[socialsensing.ClaimID]socialsensing.TruthValue
	rng := rand.New(rand.NewSource(3))
	mkInterval := func(truthTrue bool, n int) []socialsensing.Report {
		var rs []socialsensing.Report
		for i := 0; i < n; i++ {
			correct := rng.Float64() < 0.85
			att := socialsensing.Disagree
			if truthTrue == correct {
				att = socialsensing.Agree
			}
			rs = append(rs, socialsensing.Report{
				Source: socialsensing.SourceID(fmt.Sprintf("s%d", i%10)), Claim: claim,
				Timestamp: base, Attitude: att, Uncertainty: 0.1, Independence: 0.9,
			})
		}
		return rs
	}
	// True phase.
	for k := 0; k < 10; k++ {
		last = d.ProcessInterval(mkInterval(true, 12))
	}
	if last[claim] != socialsensing.True {
		t.Fatal("DynaTD failed to learn the true phase")
	}
	// Flip to false; it should track within a few intervals.
	flipAfter := -1
	for k := 0; k < 10; k++ {
		last = d.ProcessInterval(mkInterval(false, 12))
		if last[claim] == socialsensing.False && flipAfter == -1 {
			flipAfter = k
		}
	}
	if flipAfter == -1 {
		t.Error("DynaTD never tracked the truth flip")
	} else if flipAfter > 5 {
		t.Errorf("DynaTD took %d intervals to flip, want <= 5", flipAfter)
	}
}

func TestDynaTDReset(t *testing.T) {
	d := NewDynaTD()
	base := time.Now()
	d.ProcessInterval([]socialsensing.Report{{
		Source: "s", Claim: "c", Timestamp: base,
		Attitude: socialsensing.Agree, Independence: 1,
	}})
	d.Reset()
	got := d.ProcessInterval(nil)
	if len(got) != 0 {
		t.Errorf("after Reset, estimates = %v, want none", got)
	}
}

func TestDynaTDPersistenceCarriesThroughQuietIntervals(t *testing.T) {
	d := NewDynaTD()
	base := time.Now()
	for k := 0; k < 5; k++ {
		d.ProcessInterval([]socialsensing.Report{{
			Source: "s", Claim: "c", Timestamp: base,
			Attitude: socialsensing.Agree, Uncertainty: 0, Independence: 1,
		}})
	}
	// No reports for a while: estimate must persist.
	for k := 0; k < 3; k++ {
		got := d.ProcessInterval(nil)
		if got["c"] != socialsensing.True {
			t.Fatalf("quiet interval %d lost the estimate: %v", k, got["c"])
		}
	}
}

func TestChiSquareQuantileSane(t *testing.T) {
	// Median of chi-square(k) is roughly k - 2/3 for moderate k.
	for _, k := range []float64{1, 2, 5, 10, 50} {
		med := chiSquareQuantile(0.5, k)
		if med <= 0 || med > k {
			t.Errorf("chi2 median(k=%v) = %v out of (0, k]", k, med)
		}
	}
	// Quantiles increase with p.
	if !(chiSquareQuantile(0.025, 10) < chiSquareQuantile(0.5, 10) &&
		chiSquareQuantile(0.5, 10) < chiSquareQuantile(0.975, 10)) {
		t.Error("chi2 quantiles not monotone in p")
	}
	// And with k.
	if !(chiSquareQuantile(0.5, 2) < chiSquareQuantile(0.5, 20)) {
		t.Error("chi2 quantiles not monotone in k")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.841345, 1.0},
	}
	for _, tt := range tests {
		got := normalQuantile(tt.p)
		if diff := got - tt.want; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}
