// Package baselines implements the six state-of-the-art truth discovery
// methods the paper compares SSTD against (§V-A1) — TruthFinder, RTD,
// CATD, Invest, 3-Estimates and DynaTD — plus majority voting. All are
// adapted to the paper's binary-claim social sensing setting: each report
// asserts a claim to be true (+1) or false (-1).
package baselines

import (
	"sort"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Vote is one source's aggregate stance on one claim within the data
// under consideration.
type Vote struct {
	Source socialsensing.SourceID
	Claim  socialsensing.ClaimID
	// Value is the asserted truth: True for agree, False for disagree.
	Value socialsensing.TruthValue
	// Weight reflects the evidence strength (e.g. |contribution score|
	// summed over the source's reports); plain voting uses 1.
	Weight float64
}

// Dataset is the source-claim bipartite graph a batch truth discovery
// algorithm consumes.
type Dataset struct {
	Sources []socialsensing.SourceID
	Claims  []socialsensing.ClaimID
	Votes   []Vote

	bySource map[socialsensing.SourceID][]int
	byClaim  map[socialsensing.ClaimID][]int
}

// BuildDataset collapses raw reports into per-(source, claim) votes: each
// source's reports on a claim are summed by contribution score and the
// sign becomes the vote, the absolute value its weight. Reports with zero
// aggregate cancel out and produce no vote.
func BuildDataset(reports []socialsensing.Report) *Dataset {
	type key struct {
		s socialsensing.SourceID
		c socialsensing.ClaimID
	}
	agg := make(map[key]float64)
	for _, r := range reports {
		agg[key{r.Source, r.Claim}] += r.ContributionScore()
	}
	ds := &Dataset{}
	seenSource := make(map[socialsensing.SourceID]bool)
	seenClaim := make(map[socialsensing.ClaimID]bool)
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].s != keys[j].s {
			return keys[i].s < keys[j].s
		}
		return keys[i].c < keys[j].c
	})
	for _, k := range keys {
		cs := agg[k]
		if cs == 0 {
			continue
		}
		v := Vote{Source: k.s, Claim: k.c, Weight: cs}
		if cs > 0 {
			v.Value = socialsensing.True
		} else {
			v.Value = socialsensing.False
			v.Weight = -cs
		}
		ds.Votes = append(ds.Votes, v)
		if !seenSource[k.s] {
			seenSource[k.s] = true
			ds.Sources = append(ds.Sources, k.s)
		}
		if !seenClaim[k.c] {
			seenClaim[k.c] = true
			ds.Claims = append(ds.Claims, k.c)
		}
	}
	ds.index()
	return ds
}

// index builds the adjacency maps.
func (ds *Dataset) index() {
	ds.bySource = make(map[socialsensing.SourceID][]int, len(ds.Sources))
	ds.byClaim = make(map[socialsensing.ClaimID][]int, len(ds.Claims))
	for i, v := range ds.Votes {
		ds.bySource[v.Source] = append(ds.bySource[v.Source], i)
		ds.byClaim[v.Claim] = append(ds.byClaim[v.Claim], i)
	}
}

// SourceVotes returns indices into Votes for the source.
func (ds *Dataset) SourceVotes(s socialsensing.SourceID) []int { return ds.bySource[s] }

// ClaimVotes returns indices into Votes for the claim.
func (ds *Dataset) ClaimVotes(c socialsensing.ClaimID) []int { return ds.byClaim[c] }

// Estimator is a batch truth discovery algorithm: given a dataset it
// assigns each claim a truth value.
type Estimator interface {
	// Name identifies the method in experiment output.
	Name() string
	// Estimate returns the estimated truth per claim.
	Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue
}

// decide maps a real-valued claim score to a truth value, breaking the
// tie at zero toward False (absence of positive evidence).
func decide(score float64) socialsensing.TruthValue {
	if score > 0 {
		return socialsensing.True
	}
	return socialsensing.False
}
