package baselines

import "github.com/social-sensing/sstd/internal/socialsensing"

// MajorityVote is the simple heuristic baseline: a claim is true when the
// (weighted) votes asserting it outweigh the votes denying it.
type MajorityVote struct {
	// Weighted uses vote weights (aggregate contribution scores) instead
	// of plain counts.
	Weighted bool
}

var _ Estimator = (*MajorityVote)(nil)

// Name implements Estimator.
func (m *MajorityVote) Name() string {
	if m.Weighted {
		return "WeightedVote"
	}
	return "MajorityVote"
}

// Estimate implements Estimator.
func (m *MajorityVote) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		score := 0.0
		for _, vi := range ds.ClaimVotes(c) {
			v := ds.Votes[vi]
			w := 1.0
			if m.Weighted {
				w = v.Weight
			}
			if v.Value == socialsensing.True {
				score += w
			} else {
				score -= w
			}
		}
		out[c] = decide(score)
	}
	return out
}
