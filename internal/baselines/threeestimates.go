package baselines

import (
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// ThreeEstimates implements Galland, Abiteboul, Marian & Senellart's
// 3-Estimates algorithm (WSDM 2010), which jointly estimates three
// quantities: the truth of each claim, the error rate of each source, and
// the hardness of each claim (how difficult it is to get right). A
// source's error on an easy claim is penalized more than on a hard one.
type ThreeEstimates struct {
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
}

var _ Estimator = (*ThreeEstimates)(nil)

// NewThreeEstimates returns the algorithm with defaults.
func NewThreeEstimates() *ThreeEstimates {
	return &ThreeEstimates{MaxIterations: 20}
}

// Name implements Estimator.
func (te *ThreeEstimates) Name() string { return "3-Estimates" }

// Estimate implements Estimator.
func (te *ThreeEstimates) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	// error rate epsilon per source, hardness theta per claim, truth
	// score in [-1, 1] per claim (sign decides the value).
	eps := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		eps[s] = 0.2
	}
	hard := make(map[socialsensing.ClaimID]float64, len(ds.Claims))
	truthScore := make(map[socialsensing.ClaimID]float64, len(ds.Claims))
	for _, c := range ds.Claims {
		hard[c] = 0.5
	}

	clamp := func(x, lo, hi float64) float64 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}

	for iter := 0; iter < te.MaxIterations; iter++ {
		// (1) Truth estimate: weighted vote where a source's weight is
		// its probability of being right on this claim,
		// p = 1 - eps(s)*theta(c), mapped to [-1,1] via 2p-1.
		for _, c := range ds.Claims {
			score := 0.0
			for _, vi := range ds.ClaimVotes(c) {
				v := ds.Votes[vi]
				p := 1 - eps[v.Source]*hard[c]
				w := 2*p - 1
				if v.Value == socialsensing.True {
					score += w
				} else {
					score -= w
				}
			}
			truthScore[c] = score
		}
		// (2) Source error rates: fraction of its votes disagreeing with
		// the current estimates, discounted by claim hardness (being
		// wrong on a hard claim is less damning).
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			num, den := 0.0, 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				est := decide(truthScore[v.Claim])
				weight := 1 - hard[v.Claim] + 1e-9
				if v.Value != est {
					num += weight
				}
				den += weight
			}
			eps[s] = clamp(num/den, 0.01, 0.99)
		}
		// (3) Claim hardness: fraction of reliable-ish sources that
		// still get the claim wrong.
		for _, c := range ds.Claims {
			votes := ds.ClaimVotes(c)
			if len(votes) == 0 {
				continue
			}
			num, den := 0.0, 0.0
			est := decide(truthScore[c])
			for _, vi := range votes {
				v := ds.Votes[vi]
				rel := 1 - eps[v.Source]
				if v.Value != est {
					num += rel
				}
				den += rel
			}
			hard[c] = clamp(num/den, 0.01, 0.99)
		}
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(truthScore[c])
	}
	return out
}
