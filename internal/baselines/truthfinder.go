package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// TruthFinder implements Yin, Han & Yu's pseudo-probabilistic iterative
// algorithm (TKDE 2008), the first formal truth discovery method. Source
// trustworthiness t(w) is the average confidence of the facts it provides;
// fact confidence combines the trustworthiness scores tau(w) = -ln(1-t(w))
// of its providers through a sigmoid with dampening factor gamma. For
// binary claims, "claim is true" and "claim is false" are two mutually
// exclusive facts whose confidences are compared.
type TruthFinder struct {
	// Gamma is the dampening factor of the sigmoid (paper default 0.3).
	Gamma float64
	// Rho is the influence weight between conflicting facts (paper
	// default 0.5): providers of the opposing fact subtract rho * tau.
	Rho float64
	// InitialTrust seeds every source (paper default 0.9).
	InitialTrust float64
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
	// Tolerance stops iteration when no source trust moves more than
	// this. Default 1e-6.
	Tolerance float64
}

var _ Estimator = (*TruthFinder)(nil)

// NewTruthFinder returns TruthFinder with the published defaults.
func NewTruthFinder() *TruthFinder {
	return &TruthFinder{
		Gamma:         0.3,
		Rho:           0.5,
		InitialTrust:  0.9,
		MaxIterations: 20,
		Tolerance:     1e-6,
	}
}

// Name implements Estimator.
func (tf *TruthFinder) Name() string { return "TruthFinder" }

// Estimate implements Estimator.
func (tf *TruthFinder) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	const maxTrust = 0.999999 // keep -ln(1-t) finite
	trust := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		trust[s] = tf.InitialTrust
	}
	confTrue := make(map[socialsensing.ClaimID]float64, len(ds.Claims))
	confFalse := make(map[socialsensing.ClaimID]float64, len(ds.Claims))

	for iter := 0; iter < tf.MaxIterations; iter++ {
		// Fact confidences from source trustworthiness.
		for _, c := range ds.Claims {
			var sigmaTrue, sigmaFalse float64
			for _, vi := range ds.ClaimVotes(c) {
				v := ds.Votes[vi]
				tau := -math.Log(1 - math.Min(trust[v.Source], maxTrust))
				if v.Value == socialsensing.True {
					sigmaTrue += tau
					sigmaFalse -= tf.Rho * tau
				} else {
					sigmaFalse += tau
					sigmaTrue -= tf.Rho * tau
				}
			}
			confTrue[c] = 1 / (1 + math.Exp(-tf.Gamma*sigmaTrue))
			confFalse[c] = 1 / (1 + math.Exp(-tf.Gamma*sigmaFalse))
		}
		// Source trust as mean confidence of asserted facts.
		maxDelta := 0.0
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			sum := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				if v.Value == socialsensing.True {
					sum += confTrue[v.Claim]
				} else {
					sum += confFalse[v.Claim]
				}
			}
			next := sum / float64(len(votes))
			if d := math.Abs(next - trust[s]); d > maxDelta {
				maxDelta = d
			}
			trust[s] = next
		}
		if maxDelta < tf.Tolerance {
			break
		}
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(confTrue[c] - confFalse[c])
	}
	return out
}
