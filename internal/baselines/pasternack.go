package baselines

import (
	"math"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// AvgLog implements Pasternack & Roth's AverageLog algorithm (COLING
// 2010), one of the extended fact-finders the paper cites alongside
// Invest: source trustworthiness is the mean belief of the source's claims
// scaled by log of its claim count — rewarding prolific sources without
// letting volume alone dominate — and claim belief is the sum of its
// supporters' trustworthiness.
type AvgLog struct {
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
}

var _ Estimator = (*AvgLog)(nil)

// NewAvgLog returns AvgLog with defaults.
func NewAvgLog() *AvgLog {
	return &AvgLog{MaxIterations: 20}
}

// Name implements Estimator.
func (a *AvgLog) Name() string { return "AvgLog" }

// Estimate implements Estimator.
func (a *AvgLog) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	trust := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		trust[s] = 1
	}
	belief := make(map[factKey]float64)

	for iter := 0; iter < a.MaxIterations; iter++ {
		// Fact beliefs from supporter trust.
		for k := range belief {
			delete(belief, k)
		}
		for _, v := range ds.Votes {
			belief[factKey{v.Claim, v.Value}] += trust[v.Source]
		}
		// Source trust: log(|claims|) * mean belief of asserted facts.
		maxT := 0.0
		next := make(map[socialsensing.SourceID]float64, len(ds.Sources))
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				next[s] = trust[s]
				continue
			}
			sum := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				sum += belief[factKey{v.Claim, v.Value}]
			}
			t := math.Log(float64(len(votes))+1) * sum / float64(len(votes))
			next[s] = t
			if t > maxT {
				maxT = t
			}
		}
		if maxT > 0 {
			for s := range next {
				next[s] /= maxT
			}
		}
		trust = next
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(belief[factKey{c, socialsensing.True}] - belief[factKey{c, socialsensing.False}])
	}
	return out
}

// PooledInvest implements Pasternack & Roth's PooledInvestment: like
// Invest, sources spread their trust across their claims, but a fact's
// grown credibility is re-pooled linearly within each claim's mutual
// exclusion set {true, false}, which stops the non-linear growth from
// running away with whichever side got an early lead.
type PooledInvest struct {
	// G is the growth exponent (paper default 1.4 for pooled).
	G float64
	// MaxIterations bounds the fixpoint loop. Default 20.
	MaxIterations int
}

var _ Estimator = (*PooledInvest)(nil)

// NewPooledInvest returns PooledInvestment with the published defaults.
func NewPooledInvest() *PooledInvest {
	return &PooledInvest{G: 1.4, MaxIterations: 20}
}

// Name implements Estimator.
func (p *PooledInvest) Name() string { return "PooledInvest" }

// Estimate implements Estimator.
func (p *PooledInvest) Estimate(ds *Dataset) map[socialsensing.ClaimID]socialsensing.TruthValue {
	trust := make(map[socialsensing.SourceID]float64, len(ds.Sources))
	for _, s := range ds.Sources {
		trust[s] = 1
	}
	pooled := make(map[factKey]float64)

	for iter := 0; iter < p.MaxIterations; iter++ {
		// Invested amount per fact.
		invested := make(map[factKey]float64)
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				continue
			}
			share := trust[s] / float64(len(votes))
			for _, vi := range votes {
				v := ds.Votes[vi]
				invested[factKey{v.Claim, v.Value}] += share
			}
		}
		// Pool within each claim's mutual exclusion set:
		// H(f) = I(f) * G(I(f)) / Σ_{f' ∈ M(c)} G(I(f')).
		for k := range pooled {
			delete(pooled, k)
		}
		for _, c := range ds.Claims {
			tKey := factKey{c, socialsensing.True}
			fKey := factKey{c, socialsensing.False}
			gt := math.Pow(invested[tKey], p.G)
			gf := math.Pow(invested[fKey], p.G)
			den := gt + gf
			if den == 0 {
				continue
			}
			pooled[tKey] = invested[tKey] * gt / den
			pooled[fKey] = invested[fKey] * gf / den
		}
		// Pay sources back proportionally to their investment share.
		next := make(map[socialsensing.SourceID]float64, len(ds.Sources))
		maxT := 0.0
		for _, s := range ds.Sources {
			votes := ds.SourceVotes(s)
			if len(votes) == 0 {
				next[s] = trust[s]
				continue
			}
			share := trust[s] / float64(len(votes))
			sum := 0.0
			for _, vi := range votes {
				v := ds.Votes[vi]
				k := factKey{v.Claim, v.Value}
				if invested[k] > 0 {
					sum += pooled[k] * share / invested[k]
				}
			}
			next[s] = sum
			if sum > maxT {
				maxT = sum
			}
		}
		if maxT > 0 {
			for s := range next {
				next[s] /= maxT
			}
		}
		trust = next
	}

	out := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(ds.Claims))
	for _, c := range ds.Claims {
		out[c] = decide(pooled[factKey{c, socialsensing.True}] - pooled[factKey{c, socialsensing.False}])
	}
	return out
}
