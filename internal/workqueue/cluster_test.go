package workqueue

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// findWorker returns the health row for id, if present.
func findWorker(rows []WorkerHealth, id string) (WorkerHealth, bool) {
	for _, h := range rows {
		if h.ID == id {
			return h, true
		}
	}
	return WorkerHealth{}, false
}

// TestSilentWorkerMarkedDeadAndTaskRequeued is the regression test for
// the silent-failure hole: a worker that stops heartbeating mid-task
// while holding its TCP connection open used to hang the master forever
// (nothing would ever error the blocking recv). With liveness enabled
// the master must walk it alive → suspect → dead, sever the connection,
// and requeue the in-flight task onto a live worker.
func TestSilentWorkerMarkedDeadAndTaskRequeued(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{
		ResultBuffer: 8,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
	})

	// A raw-codec worker: says hello, takes a task, then goes silent —
	// no result, no heartbeat, connection deliberately held open.
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	c := newCodec(wconn)
	if err := c.send(message{Type: msgHello, WorkerID: "silent"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(Task{ID: "t1", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	msg, err := c.recv()
	if err != nil || msg.Type != msgTask {
		t.Fatalf("silent worker expected a task, got %+v, %v", msg, err)
	}

	// The monitor must pass through suspect before dead.
	sawSuspect, sawDead := false, false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !sawDead {
		if h, ok := findWorker(m.ClusterHealth(), "silent"); ok {
			switch h.State {
			case WorkerSuspect:
				sawSuspect = true
			case WorkerDead:
				sawDead = true
				if !strings.Contains(h.Reason, "heartbeat timeout") {
					t.Errorf("dead reason = %q, want heartbeat timeout", h.Reason)
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawSuspect || !sawDead {
		t.Fatalf("silent worker states: suspect=%t dead=%t, want both", sawSuspect, sawDead)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 0 }, "silent worker eviction")

	// A healthy worker joins and must complete the requeued task.
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)
	r := collect(t, m, 1)[0]
	if r.TaskID != "t1" || r.Err != "" {
		t.Errorf("requeued task result = %+v", r)
	}
}

// TestHeartbeatKeepsBusyWorkerAlive: heartbeats flow from a concurrent
// goroutine, so a worker stuck in a long Exec is distinguishable from a
// hung one and must not be evicted.
func TestHeartbeatKeepsBusyWorkerAlive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{
		ResultBuffer: 4,
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    120 * time.Millisecond,
	})
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{
			ID:             "slowpoke",
			HeartbeatEvery: 10 * time.Millisecond,
			Exec: func(context.Context, []byte) ([]byte, error) {
				time.Sleep(400 * time.Millisecond) // well past DeadAfter
				return []byte("done"), nil
			},
		}
		_ = w.Run(ctx, wconn)
	}()
	if err := m.Submit(Task{ID: "t1", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	r := collect(t, m, 1)[0]
	if r.Err != "" || string(r.Output) != "done" {
		t.Fatalf("slow-but-alive worker result = %+v", r)
	}
	h, ok := findWorker(m.ClusterHealth(), "slowpoke")
	if !ok || h.State != WorkerAlive {
		t.Errorf("slowpoke health = %+v, want alive", h)
	}
	if h.Heartbeats == 0 {
		t.Errorf("no heartbeats recorded for slowpoke")
	}
	if h.TasksCompleted != 1 || h.EWMAExecMs < 300 {
		t.Errorf("throughput estimates = completed %d ewma %.1fms, want 1 task ≥ 300ms",
			h.TasksCompleted, h.EWMAExecMs)
	}
}

// TestWorkerStatsAggregatedIntoMasterRegistry: a worker's self-reported
// snapshots must surface in the master's registry under per-worker
// labels — counters by delta, the exec histogram by per-bucket delta.
func TestWorkerStatsAggregatedIntoMasterRegistry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	m := NewMaster(MasterConfig{ResultBuffer: 16, Metrics: reg})
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{
			ID:             "w-1",
			Exec:           echoExec,
			HeartbeatEvery: 5 * time.Millisecond,
			StatsEvery:     1, // every heartbeat carries stats
		}
		_ = w.Run(ctx, wconn)
	}()

	const n = 5
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, m, n)
	// Stats arrive on the heartbeat cadence; wait for the counters to
	// catch up with the completed tasks.
	waitFor(t, func() bool {
		return reg.Counter(`wq_worker_tasks_total{worker="w-1"}`).Value() >= n
	}, "per-worker task counter to reach n")

	s := reg.Snapshot()
	if got := s.Histograms[`wq_worker_exec_ms{worker="w-1"}`].Count; got < n {
		t.Errorf("labeled exec histogram count = %d, want >= %d", got, n)
	}
	if got := s.Gauges[`wq_worker_goroutines{worker="w-1"}`]; got <= 0 {
		t.Errorf("labeled goroutine gauge = %v, want > 0", got)
	}
	if got := s.Counters[`wq_worker_bytes_out_total{worker="w-1"}`]; got <= 0 {
		t.Errorf("labeled bytes-out counter = %v, want > 0", got)
	}
	if got := s.Counters["wq_heartbeats_total"]; got <= 0 {
		t.Errorf("wq_heartbeats_total = %v, want > 0", got)
	}
	// The remote snapshot is attached to the health row.
	h, ok := findWorker(m.ClusterHealth(), "w-1")
	if !ok || h.Remote == nil {
		t.Fatalf("health row missing remote stats: %+v", h)
	}
	if h.Remote.TasksExecuted < n || h.Remote.Goroutines <= 0 {
		t.Errorf("remote stats = %+v, want >= %d tasks and goroutines > 0", h.Remote, n)
	}
}

// TestStragglerFlag drives the registry's throughput estimates directly
// (no timing dependence): a worker whose EWMA exec time exceeds the
// factor times the cluster median is flagged.
func TestStragglerFlag(t *testing.T) {
	m := NewMaster(MasterConfig{StragglerFactor: 2})
	cl := m.cluster
	noop := func() {}
	for _, id := range []string{"fast-a", "fast-b", "slow"} {
		if _, err := cl.attach(id, noop, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		cl.taskFinished("fast-a", Result{Elapsed: 10 * time.Millisecond})
		cl.taskFinished("fast-b", Result{Elapsed: 12 * time.Millisecond})
		cl.taskFinished("slow", Result{Elapsed: 500 * time.Millisecond})
	}
	rows := m.ClusterHealth()
	for _, id := range []string{"fast-a", "fast-b"} {
		if h, _ := findWorker(rows, id); h.Straggler {
			t.Errorf("%s flagged as straggler: %+v", id, h)
		}
	}
	h, _ := findWorker(rows, "slow")
	if !h.Straggler {
		t.Errorf("slow worker not flagged: %+v", h)
	}
	if h.EWMAExecMs < 400 {
		t.Errorf("slow EWMA = %.1f, want ~500", h.EWMAExecMs)
	}
}

// TestStragglerNeedsQuorum: a lone worker can never be a straggler —
// there is no cluster median to be slower than.
func TestStragglerNeedsQuorum(t *testing.T) {
	m := NewMaster(MasterConfig{})
	if _, err := m.cluster.attach("only", func() {}, nil, nil); err != nil {
		t.Fatal(err)
	}
	m.cluster.taskFinished("only", Result{Elapsed: 10 * time.Second})
	if h, _ := findWorker(m.ClusterHealth(), "only"); h.Straggler {
		t.Errorf("lone worker flagged as straggler")
	}
}

// TestUnknownMessageRejectedNotFatal: a foreign worker speaking another
// dialect is dropped, but the master keeps serving other workers.
func TestUnknownMessageRejectedNotFatal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 4})
	mconn, wconn := pipePair()
	done := make(chan error, 1)
	go func() { done <- m.HandleWorker(ctx, mconn) }()
	c := newCodec(wconn)
	if err := c.send(message{Type: msgHello, WorkerID: "foreign"}); err != nil {
		t.Fatal(err)
	}
	if err := c.send(message{Type: "gossip", WorkerID: "foreign"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "gossip") {
			t.Errorf("handler error = %v, want unexpected-message rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not reject the foreign message")
	}
	// The master is still functional.
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)
	if err := m.Submit(Task{ID: "t", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if r := collect(t, m, 1)[0]; r.Err != "" {
		t.Errorf("master broken after foreign worker: %+v", r)
	}
}

// TestDuplicateWorkerIDRejected: two live connections may not share an
// identity — the second is refused.
func TestDuplicateWorkerIDRejected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{})
	attach := func() (*codec, chan error) {
		mconn, wconn := pipePair()
		done := make(chan error, 1)
		go func() { done <- m.HandleWorker(ctx, mconn) }()
		c := newCodec(wconn)
		if err := c.send(message{Type: msgHello, WorkerID: "twin"}); err != nil {
			t.Fatal(err)
		}
		return c, done
	}
	c1, done1 := attach()
	defer func() { _ = c1.close() }()
	waitFor(t, func() bool { return m.WorkerCount() == 1 }, "first twin to attach")
	c2, done2 := attach()
	defer func() { _ = c2.close() }()
	select {
	case err := <-done2:
		if err == nil || !strings.Contains(err.Error(), "already attached") {
			t.Errorf("duplicate attach error = %v", err)
		}
	case err := <-done1:
		t.Fatalf("first twin was evicted instead: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate attach not rejected")
	}
	if n := m.WorkerCount(); n != 1 {
		t.Errorf("worker count after duplicate = %d, want 1", n)
	}
}

// TestClusterHandlerServesJSON covers the /cluster endpoint shape.
func TestClusterHandlerServesJSON(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 4})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 2)
	waitFor(t, func() bool { return m.WorkerCount() == 2 }, "workers")
	if err := m.Submit(Task{ID: "t", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	collect(t, m, 1)

	rows := m.ClusterHealth()
	if len(rows) != 2 {
		t.Fatalf("cluster rows = %d, want 2", len(rows))
	}
	total := int64(0)
	for _, h := range rows {
		if h.State != WorkerAlive {
			t.Errorf("worker %s state = %s, want alive", h.ID, h.State)
		}
		if h.ConnectedAt.IsZero() || h.LastSeen.IsZero() {
			t.Errorf("worker %s missing timestamps: %+v", h.ID, h)
		}
		total += h.TasksCompleted
	}
	if total != 1 {
		t.Errorf("tasks completed across cluster = %d, want 1", total)
	}
	// Status carries the same rows.
	st := m.Status()
	if len(st.WorkersDetail) != 2 {
		t.Errorf("Status.WorkersDetail rows = %d, want 2", len(st.WorkersDetail))
	}
}

// TestDepartedWorkerRemembered: a gracefully released worker stays
// visible as dead with a disconnect reason.
func TestDepartedWorkerRemembered(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 4})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)
	waitFor(t, func() bool { return m.WorkerCount() == 1 }, "worker to attach")
	rows := m.ClusterHealth()
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	id := rows[0].ID
	m.Release(id)
	waitFor(t, func() bool { return m.WorkerCount() == 0 }, "worker to depart")
	h, ok := findWorker(m.ClusterHealth(), id)
	if !ok {
		t.Fatal("departed worker forgotten")
	}
	if h.State != WorkerDead || h.Reason == "" {
		t.Errorf("departed health = %+v, want dead with reason", h)
	}
}
