package workqueue

import (
	"math/rand"
	"time"
)

// BackoffConfig parameterizes truncated exponential backoff with jitter.
// It is shared by the master's task-requeue path and the worker's
// reconnect loop: both must avoid the hot retry cycle a crash-looping
// peer otherwise induces (a worker dying on every task used to spin the
// master's requeue at CPU speed).
//
// The zero value means "use the caller's defaults"; a negative Base
// disables backoff entirely (immediate retry — the pre-backoff
// behavior, kept reachable for tests).
type BackoffConfig struct {
	// Base is the delay before the first retry; each further attempt
	// multiplies it by Factor up to Max.
	Base time.Duration
	Max  time.Duration
	// Factor is the per-attempt multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the computed delay that is randomized
	// (0..1). With Jitter 0.2 the delay is drawn uniformly from
	// [0.9d, 1.1d] — enough to de-synchronize a fleet of workers
	// reconnecting after a master restart without losing determinism
	// under a seeded RNG.
	Jitter float64
}

// withDefaults fills zero fields from the given fallbacks.
func (c BackoffConfig) withDefaults(base, max time.Duration) BackoffConfig {
	if c.Base == 0 {
		c.Base = base
	}
	if c.Max <= 0 {
		c.Max = max
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		c.Jitter = 0
	}
	return c
}

// disabled reports whether backoff is turned off (negative Base).
func (c BackoffConfig) disabled() bool { return c.Base < 0 }

// Delay returns the backoff delay for the given 1-based attempt. The
// rng supplies the jitter draw and may be nil (no jitter); passing a
// seeded rng keeps retry schedules reproducible.
func (c BackoffConfig) Delay(attempt int, rng *rand.Rand) time.Duration {
	if c.disabled() || c.Base == 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := float64(c.Base)
	for i := 1; i < attempt; i++ {
		d *= c.Factor
		if c.Max > 0 && d >= float64(c.Max) {
			d = float64(c.Max)
			break
		}
	}
	if c.Max > 0 && d > float64(c.Max) {
		d = float64(c.Max)
	}
	if c.Jitter > 0 && rng != nil {
		// Uniform in [d*(1-J/2), d*(1+J/2)].
		d *= 1 - c.Jitter/2 + c.Jitter*rng.Float64()
	}
	return time.Duration(d)
}
