// Package workqueue is a lightweight master/worker execution engine in the
// spirit of the CCTools Work Queue system the paper builds SSTD on (§IV-A2):
// a master process owns a pool of prioritized tasks; workers — in-process
// over net.Pipe or remote over TCP — call back to the master, pull tasks,
// execute them and return results. The pool is elastic: workers may join
// and leave at any time, and job priorities may be retuned while tasks are
// in flight (the paper's Local Control Knob).
package workqueue

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Task is one unit of work. Tasks belong to jobs (the paper's TD jobs); a
// job's priority governs how often its tasks are picked.
type Task struct {
	ID      string `json:"id"`
	JobID   string `json:"job_id"`
	Payload []byte `json:"payload,omitempty"`
	// Span optionally links the task under a submitter-side trace span
	// (the TD job's root span), so the master's queue/execute spans nest
	// correctly in the job timeline.
	Span int64 `json:"span,omitempty"`
}

// Result is the outcome of one task execution.
type Result struct {
	TaskID   string        `json:"task_id"`
	JobID    string        `json:"job_id"`
	WorkerID string        `json:"worker_id"`
	Output   []byte        `json:"output,omitempty"`
	Err      string        `json:"error,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Message types exchanged between master and worker.
const (
	msgHello    = "hello"
	msgTask     = "task"
	msgResult   = "result"
	msgShutdown = "shutdown"
)

// message is the wire envelope: one JSON object per line.
type message struct {
	Type     string  `json:"type"`
	WorkerID string  `json:"worker_id,omitempty"`
	Task     *Task   `json:"task,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// codec frames messages as newline-delimited JSON over a connection.
type codec struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

func newCodec(conn net.Conn) *codec {
	return &codec{
		conn: conn,
		r:    bufio.NewReader(conn),
		enc:  json.NewEncoder(conn),
	}
}

// send writes one message.
func (c *codec) send(m message) error {
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("workqueue: send %s: %w", m.Type, err)
	}
	return nil
}

// recv reads the next message.
func (c *codec) recv() (message, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("workqueue: decode message: %w", err)
	}
	return m, nil
}

func (c *codec) close() error { return c.conn.Close() }
