// Package workqueue is a lightweight master/worker execution engine in the
// spirit of the CCTools Work Queue system the paper builds SSTD on (§IV-A2):
// a master process owns a pool of prioritized tasks; workers — in-process
// over net.Pipe or remote over TCP — call back to the master, pull tasks,
// execute them and return results. The pool is elastic: workers may join
// and leave at any time, and job priorities may be retuned while tasks are
// in flight (the paper's Local Control Knob).
//
// Beyond the task/result exchange, workers ship heartbeat and stats
// messages: periodic liveness pings plus compact telemetry snapshots
// (task counts, exec-time histogram, connection bytes, runtime stats)
// that feed the master's per-worker health registry (cluster.go).
package workqueue

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Task is one unit of work. Tasks belong to jobs (the paper's TD jobs); a
// job's priority governs how often its tasks are picked.
type Task struct {
	ID      string `json:"id"`
	JobID   string `json:"job_id"`
	Payload []byte `json:"payload,omitempty"`
	// Span optionally links the task under a submitter-side trace span
	// (the TD job's root span), so the master's queue/execute spans nest
	// correctly in the job timeline.
	Span int64 `json:"span,omitempty"`
	// Trace carries the distributed trace context across the wire; nil
	// disables worker-side stage spans for this task (old submitters).
	Trace *TraceContext `json:"trace,omitempty"`
	// SentUnixNano is stamped by the master just before the task goes on
	// the wire (master clock). The worker reports back the observed
	// delivery delta, one leg of the NTP-style clock-skew estimate.
	SentUnixNano int64 `json:"sent_ns,omitempty"`
	// TimeoutNs is the execution budget the worker enforces for this
	// task (zero = none). The master stamps it from its TaskTimeout so
	// a hung executor self-reports a timeout result before the master's
	// own deadline severs the connection.
	TimeoutNs int64 `json:"timeout_ns,omitempty"`
}

// Result is the outcome of one task execution.
type Result struct {
	TaskID   string `json:"task_id"`
	JobID    string `json:"job_id"`
	WorkerID string `json:"worker_id"`
	Output   []byte `json:"output,omitempty"`
	Err      string `json:"error,omitempty"`
	// ErrStage names the execution stage that produced Err (see
	// StageDecode / StageExec / StageEncode); empty on success.
	ErrStage string `json:"error_stage,omitempty"`
	// ErrTrace is the worker-side error return trace (obs.Wrap frames,
	// origin first, " -> "-joined): the path Err took through the worker
	// before it was reported. Diagnostic only — like the clock stamps it
	// is excluded from the CRC, so a frame that damages only the trace
	// still delivers its result.
	ErrTrace string        `json:"error_trace,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// WorkerStats is a worker's compact self-reported telemetry snapshot,
// shipped with stats messages. All counts are cumulative since the
// worker connected; the master aggregates deltas between consecutive
// snapshots into its own registry under per-worker labels.
type WorkerStats struct {
	TasksExecuted int64 `json:"tasks_executed"`
	TasksFailed   int64 `json:"tasks_failed"`
	// BytesIn / BytesOut count wire bytes over the master connection as
	// seen by the worker.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// Goroutines and HeapBytes sample the worker process runtime.
	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`
	UptimeMs   int64  `json:"uptime_ms"`
	// Exec is the worker-side task execution time histogram (ms).
	Exec obs.HistogramSnapshot `json:"exec"`
}

// Message types exchanged between master and worker.
const (
	msgHello    = "hello"
	msgTask     = "task"
	msgResult   = "result"
	msgShutdown = "shutdown"
	// msgHeartbeat is a worker liveness ping; msgStats is a heartbeat
	// carrying a WorkerStats snapshot. Both may arrive at any time,
	// including while a task is executing.
	msgHeartbeat = "heartbeat"
	msgStats     = "stats"
	// msgFreeze is the master's FreezeRings broadcast: every worker
	// snapshots its flight-recorder rings and replies with msgFlightDump.
	// A worker may also send msgFlightDump unsolicited (Seq 0, Trigger
	// set) when its own recorder trips, which the master treats as a
	// cluster-wide trip.
	msgFreeze     = "freeze"
	msgFlightDump = "flight-dump"
	// msgTaskBatch carries several tasks in one frame (master→worker);
	// msgResultBatch carries several results back (worker→master). Both
	// sides fall back to the singular forms when batching is not
	// negotiated (hello.Batch == 0).
	msgTaskBatch   = "task-batch"
	msgResultBatch = "result-batch"
)

// FreezeRequest asks a worker for its flight-recorder snapshot, part of
// cross-host dump collection.
type FreezeRequest struct {
	// Seq correlates the reply with one collection round.
	Seq int64 `json:"seq"`
	// Trigger/Detail describe why the master is collecting.
	Trigger string `json:"trigger,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// WindowNs bounds how far back the snapshot reaches (0 = the
	// worker recorder's full retained history).
	WindowNs int64 `json:"window_ns,omitempty"`
}

// FlightDump is a worker's flight-recorder snapshot shipped to the
// master. Event timestamps are on the worker's clock; the master applies
// its per-worker skew estimate when merging.
type FlightDump struct {
	Seq     int64  `json:"seq"`
	Host    string `json:"host"`
	Trigger string `json:"trigger,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// Events is the snapshot payload. Like telemetry it is excluded from
	// the CRC: a damaged diagnostic dump is not worth severing the
	// connection over.
	Events []flightrec.Event `json:"events,omitempty"`
}

// message is the wire envelope: one JSON object per line.
type message struct {
	Type     string       `json:"type"`
	WorkerID string       `json:"worker_id,omitempty"`
	Task     *Task        `json:"task,omitempty"`
	Result   *Result      `json:"result,omitempty"`
	Stats    *WorkerStats `json:"stats,omitempty"`
	// SentUnixNano stamps the worker's clock as the message goes on the
	// wire; the master's receive time minus it is the worker→master leg
	// of the clock-skew estimate. TaskDelayNs is the worker-observed
	// master→worker delivery delta of the most recent task (receive time
	// minus Task.SentUnixNano) — the opposite leg. Offsetting the two
	// cancels transit and leaves clock skew (NTP's derivation); summing
	// them estimates the RTT. Both ride on heartbeats, stats and results,
	// so skew converges even for workers that never heartbeat.
	SentUnixNano int64 `json:"sent_ns,omitempty"`
	TaskDelayNs  int64 `json:"task_delay_ns,omitempty"`
	// Spans are finished worker-side stage spans being shipped to the
	// master (on results, heartbeats and stats messages alike).
	Spans []RemoteSpan `json:"spans,omitempty"`
	// Telemetry piggybacks a delta-encoded metrics snapshot on stats
	// messages, feeding the master's time-series store. Excluded from the
	// CRC like the clock stamps: telemetry damage is not worth a
	// disconnect.
	Telemetry *obs.TelemetryShip `json:"telemetry,omitempty"`
	// Freeze rides on msgFreeze (master→worker); Dump on msgFlightDump
	// (worker→master).
	Freeze *FreezeRequest `json:"freeze,omitempty"`
	Dump   *FlightDump    `json:"dump,omitempty"`
	// Batch rides on hello: the largest task batch the worker is willing
	// to accept in one frame (0 = unbatched, the pre-batching protocol).
	// The master dispatches min(its configured batch size, this).
	Batch int `json:"batch,omitempty"`
	// Tasks rides on msgTaskBatch, Results on msgResultBatch. Like their
	// singular counterparts both are CRC-guarded, element by element.
	Tasks   []Task   `json:"tasks,omitempty"`
	Results []Result `json:"results,omitempty"`
	// CRC guards the corruption-sensitive fields (message type, task and
	// result identity, payloads) against frames that are damaged in
	// flight yet still parse as JSON — without it a single flipped bit
	// inside a base64 payload delivers silently wrong data. Clock stamps
	// and telemetry are deliberately excluded: a peer with a skewed
	// clock is a timing condition, not corruption. Zero means unchecked
	// (older peers).
	CRC uint32 `json:"crc,omitempty"`
}

// checksum computes the integrity check over the guarded fields. It
// hashes decoded field values, not wire bytes, so a message carries the
// same checksum whether it travels as JSON or binary — a frame can be
// re-encoded across codecs without invalidating its CRC.
func (m *message) checksum() uint32 {
	h := crc32.NewIEEE()
	write := func(s string) { _, _ = io.WriteString(h, s); _, _ = h.Write([]byte{0}) }
	sumTask := func(t *Task) {
		write("task")
		write(t.ID)
		write(t.JobID)
		_, _ = h.Write(t.Payload)
		_, _ = h.Write([]byte{0})
	}
	sumResult := func(r *Result) {
		write("result")
		write(r.TaskID)
		write(r.JobID)
		write(r.WorkerID)
		write(r.Err)
		write(r.ErrStage)
		_, _ = h.Write(r.Output)
		_, _ = h.Write([]byte{0})
	}
	write(m.Type)
	write(m.WorkerID)
	if m.Task != nil {
		sumTask(m.Task)
	}
	if m.Result != nil {
		sumResult(m.Result)
	}
	for i := range m.Tasks {
		sumTask(&m.Tasks[i])
	}
	for i := range m.Results {
		sumResult(&m.Results[i])
	}
	return h.Sum32()
}

// ErrChecksum is returned by recv for a frame whose CRC does not match
// its guarded content.
var ErrChecksum = errors.New("workqueue: frame checksum mismatch")

// codec frames messages over a connection in one of two formats: the
// length-prefixed binary wire format (wire.go, the default) or
// newline-delimited JSON (the original protocol, kept for compatibility
// and as the differential-testing reference). recv auto-detects the
// format of every incoming frame — a binary frame's magic byte 0xF5 can
// never begin a JSON document — and the send side mirrors the format the
// peer last spoke, so a JSON-only peer is answered in JSON with no
// negotiation handshake. Sends are serialized by a mutex so a worker's
// heartbeat goroutine and its task loop can share the connection; recv
// is single-reader. Wire bytes are counted in both directions for the
// stats snapshots.
type codec struct {
	conn     net.Conn
	r        *bufio.Reader
	w        io.Writer
	enc      *json.Encoder
	sendMu   sync.Mutex
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	// sendJSON selects the outbound format; flipped by recv to mirror
	// the peer (atomic: recv and senders are separate goroutines).
	sendJSON atomic.Bool
	// fr probes frame encode/decode and CRC phases into the flight
	// recorder. The send side is mutex-serialized and recv is
	// single-reader, so one ring per codec keeps writers private.
	fr *flightrec.Ring
}

func newCodec(conn net.Conn) *codec {
	return newCodecWith(conn, flightrec.Active())
}

// newCodecWith builds a codec probing into an explicit recorder — the
// hook that lets each worker of an in-process pool keep its frame-leg
// events in its own private recorder, so cross-host dump collection gets
// true per-host provenance even without process isolation.
func newCodecWith(conn net.Conn, rec *flightrec.Recorder) *codec {
	c := &codec{conn: conn, fr: rec.NewRing("codec")}
	c.r = bufio.NewReader(countingReader{conn, &c.bytesIn})
	c.w = countingWriter{conn, &c.bytesOut}
	c.enc = json.NewEncoder(c.w)
	return c
}

// setJSON pins the outbound format (true = newline-delimited JSON).
// The dialing side calls this before its hello to pick the protocol;
// the accepting side just mirrors whatever arrives.
func (c *codec) setJSON(v bool) { c.sendJSON.Store(v) }

// flightParent links a frame's codec events under the span that owns the
// task it carries; telemetry-only frames stay unparented.
func (m *message) flightParent() int64 {
	if m.Task != nil && m.Task.Trace != nil {
		return m.Task.Trace.ParentSpanID
	}
	if len(m.Tasks) > 0 && m.Tasks[0].Trace != nil {
		return m.Tasks[0].Trace.ParentSpanID
	}
	return 0
}

// send writes one message, stamping its integrity checksum.
func (c *codec) send(m message) error {
	parent := m.flightParent()
	tp := c.fr.Start()
	m.CRC = m.checksum()
	tp = c.fr.Probe(flightrec.ProbeCodecCRC, tp, 0, parent)
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	before := c.bytesOut.Load()
	// A message type the binary format has no byte for travels as JSON:
	// recv auto-detects per frame, so formats may mix freely on one
	// connection — the forward-compatibility story for new types.
	_, encodable := wireTypeOf[m.Type]
	if c.sendJSON.Load() || !encodable {
		if err := c.enc.Encode(m); err != nil {
			return obs.Wrap(fmt.Errorf("workqueue: send %s: %w", m.Type, err))
		}
	} else {
		bp := wireBufPool.Get().(*[]byte)
		frame, err := appendWireFrame((*bp)[:0], &m)
		if err != nil {
			wireBufPool.Put(bp)
			return obs.Wrap(fmt.Errorf("workqueue: send %s: %w", m.Type, err))
		}
		_, err = c.w.Write(frame)
		*bp = frame[:0]
		wireBufPool.Put(bp)
		if err != nil {
			return obs.Wrap(fmt.Errorf("workqueue: send %s: %w", m.Type, err))
		}
	}
	c.fr.Probe(flightrec.ProbeCodecEncode, tp, c.bytesOut.Load()-before, parent)
	return nil
}

// maxFrameBytes bounds one wire frame. A corrupt or malicious peer that
// streams bytes without a newline would otherwise grow the recv buffer
// without limit; past this cap recv fails and the connection is dropped
// by the caller. Generous enough for any legitimate task payload.
const maxFrameBytes = 32 << 20

// ErrFrameTooLarge is returned by recv when a frame exceeds
// maxFrameBytes before its terminating newline arrives.
var ErrFrameTooLarge = errors.New("workqueue: frame exceeds size limit")

// recv reads the next message, sniffing its format from the first byte
// (WireMagic → binary, anything else → JSON) and mirroring that format
// onto the send side. Frames larger than maxFrameBytes are rejected with
// ErrFrameTooLarge instead of being buffered whole, so a corrupt length
// cannot blow up allocation.
func (c *codec) recv() (message, error) {
	first, err := c.r.Peek(1)
	if err != nil {
		return message{}, obs.Wrap(err)
	}
	if first[0] == WireMagic {
		m, err := c.recvBinary()
		if err == nil {
			c.sendJSON.Store(false)
		}
		return m, err
	}
	m, err := c.recvJSON()
	if err == nil {
		c.sendJSON.Store(true)
	}
	return m, err
}

// recvBinary reads one length-prefixed binary frame into a pooled
// buffer and decodes it.
func (c *codec) recvBinary() (message, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return message{}, obs.Wrap(err)
	}
	if hdr[1] != wireVersion {
		return message{}, obs.Wrap(fmt.Errorf("%w: unsupported version %d", ErrWireFormat, hdr[1]))
	}
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		return message{}, obs.Wrap(fmt.Errorf("%w: frame length: %v", ErrWireFormat, err))
	}
	if n > maxFrameBytes {
		return message{}, obs.Wrap(ErrFrameTooLarge)
	}
	bp := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(bp)
	body := *bp
	if cap(body) < int(n) {
		body = make([]byte, n)
	}
	body = body[:n]
	*bp = body[:0]
	if _, err := io.ReadFull(c.r, body); err != nil {
		return message{}, obs.Wrap(fmt.Errorf("workqueue: read binary frame: %w", err))
	}
	tp := c.fr.Start()
	m, err := decodeWireBody(body)
	if err != nil {
		return message{}, err
	}
	parent := m.flightParent()
	tp = c.fr.Probe(flightrec.ProbeCodecDecode, tp, int64(len(body))+3, parent)
	if m.CRC != 0 && m.CRC != m.checksum() {
		return message{}, obs.Wrap(fmt.Errorf("%w (type %q)", ErrChecksum, m.Type))
	}
	c.fr.Probe(flightrec.ProbeCodecCRC, tp, 0, parent)
	return m, nil
}

// recvJSON reads one newline-delimited JSON frame — the original
// protocol, kept as the compatibility path and differential reference.
func (c *codec) recvJSON() (message, error) {
	var line []byte
	for {
		chunk, err := c.r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(line) > maxFrameBytes {
				return message{}, obs.Wrap(ErrFrameTooLarge)
			}
			continue
		}
		return message{}, obs.Wrap(err)
	}
	if len(line) > maxFrameBytes {
		return message{}, obs.Wrap(ErrFrameTooLarge)
	}
	tp := c.fr.Start()
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, obs.Wrap(fmt.Errorf("workqueue: decode message: %w", err))
	}
	parent := m.flightParent()
	tp = c.fr.Probe(flightrec.ProbeCodecDecode, tp, int64(len(line)), parent)
	if m.CRC != 0 && m.CRC != m.checksum() {
		return message{}, obs.Wrap(fmt.Errorf("%w (type %q)", ErrChecksum, m.Type))
	}
	c.fr.Probe(flightrec.ProbeCodecCRC, tp, 0, parent)
	return m, nil
}

func (c *codec) close() error { return c.conn.Close() }

// countingReader / countingWriter tap the connection byte counters.
type countingReader struct {
	r net.Conn
	n *atomic.Int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

type countingWriter struct {
	w net.Conn
	n *atomic.Int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
