package workqueue

import (
	"context"
	"hash/maphash"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/social-sensing/sstd/internal/obs"
)

// scheduler is the priority-aware task pool. Jobs carry priorities; an idle
// worker draws the next task from a job selected with probability
// proportional to its priority (the paper's P_u = T_u / sum T_u semantics,
// generalized to arbitrary positive priorities tuned by the PID loop).
// Within a job, tasks are FIFO.
//
// The pool is sharded: jobs hash to one of N shards (N defaults to
// GOMAXPROCS), each with its own lock, FIFO queues, priority table and
// rng, so a push for one job never contends with an ack or a draw for an
// unrelated one. Global P_u fairness survives the sharding because a draw
// first picks a shard weighted by its total pending priority mass (read
// lock-free from per-shard atomics), then picks a job within the shard
// weighted by priority: P(job) = (mass_s/Σmass)·(p_j/mass_s) = p_j/Σmass,
// exactly the unsharded distribution. A draw that loses the race for its
// picked shard steals from the others in preference order, so a hot shard
// draining cannot starve a cold shard's job.
//
// Dispatch is handoff-based instead of cond.Broadcast-based: each idle
// worker parks on its own one-slot channel (its dispatch queue), and a
// push hands the task directly to a parked worker without touching any
// shard — the lock-free dispatch path. Only when every worker is busy
// does a task enter its shard's queue.
type scheduler struct {
	shards []schedShard
	// pending counts queued tasks across all shards (handed-off tasks are
	// already dispatched and excluded, mirroring the old semantics where
	// len() reported tasks waiting for a worker).
	pending atomic.Int64
	closed  atomic.Bool
	seed    int64

	// idle is the LIFO stack of parked waiters; idleMu serializes only
	// park/claim transitions, never a task move. idleCount mirrors
	// len(idle) so the push path skips the lock entirely while every
	// worker is busy — the common case under load. The mirror may lag a
	// concurrent park, but the parking waiter's pending re-check (see
	// waiter.next) covers that window.
	idleMu    sync.Mutex
	idle      []*waiter
	idleCount atomic.Int32

	// waiters recycles waiter structs so the idle-worker loop stays
	// allocation-free; waiterSeq spreads preferred shards round-robin.
	waiters   sync.Pool
	waiterSeq atomic.Uint32

	// Telemetry (nil-safe): handoffs count tasks dispatched without ever
	// touching a shard queue, wakeups the park/signal cycles, steals the
	// draws served by a shard other than the weighted pick.
	cHandoffs *obs.Counter
	cWakeups  *obs.Counter
	cSteals   *obs.Counter
}

// schedShard is one lock domain of the task pool. The pad keeps hot
// shards on separate cache lines so uncontended shard locks stay
// uncontended at the coherence level too.
type schedShard struct {
	mu sync.Mutex
	// jobs holds one entry per known job (created on first push or
	// setPriority, dropped by forgetJob); entries keep their queue
	// capacity across empty→nonempty transitions so steady-state
	// push/draw cycles allocate nothing. order holds the jobs with
	// pending tasks (stable iteration) by pointer, so the weighted pick
	// never touches the map.
	jobs    map[string]*jobQueue
	order   []*jobQueue
	pending int
	// mass is the total priority of jobs in order; massBits mirrors it
	// for the lock-free weighted shard pick.
	mass     float64
	massBits atomic.Uint64
	rng      *rand.Rand
	_        [24]byte
}

// jobQueue is one job's FIFO plus its scheduling weight. head indexes the
// next task; when the queue drains, the backing array is reset and kept.
type jobQueue struct {
	id       string
	tasks    []Task
	head     int
	priority float64
}

func (q *jobQueue) pending() int { return len(q.tasks) - q.head }

// wake is one message on a waiter's dispatch channel: either a direct
// task handoff or a bare signal to rescan the shards.
type wake struct {
	task   Task
	direct bool
}

// waiter is one worker's dispatch endpoint: a reusable parking slot with
// a one-slot channel the push side hands tasks (or rescan signals) to.
// A waiter is owned by a single goroutine; the channel crosses to pushers
// only while the waiter sits on the idle stack, and every claim sends
// exactly one message, so the channel is always empty when re-parked.
type waiter struct {
	s         *scheduler
	ch        chan wake
	rng       *rand.Rand
	preferred uint32
	scratch   []float64 // per-shard mass snapshot for the weighted pick
}

// schedSeed hashes job IDs onto shards. A process-wide random seed is
// fine: shard placement only needs to be stable within one scheduler.
var schedSeed = maphash.MakeSeed()

func shardIndex(jobID string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(maphash.String(schedSeed, jobID) % uint64(n))
}

// newScheduler builds a pool with nshards shards (<= 0 picks GOMAXPROCS).
func newScheduler(seed int64, nshards int) *scheduler {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	s := &scheduler{shards: make([]schedShard, nshards), seed: seed}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*jobQueue)
		s.shards[i].rng = rand.New(rand.NewSource(seed + int64(i)))
	}
	s.waiters.New = func() any {
		return &waiter{
			s:         s,
			ch:        make(chan wake, 1),
			rng:       rand.New(rand.NewSource(seed ^ int64(s.waiterSeq.Add(1))<<17)),
			preferred: s.waiterSeq.Load(),
			scratch:   make([]float64, nshards),
		}
	}
	return s
}

// instrument attaches the scheduler's dispatch counters to a registry.
func (s *scheduler) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.cHandoffs = reg.Counter("wq_sched_handoffs_total")
	s.cWakeups = reg.Counter("wq_sched_wakeups_total")
	s.cSteals = reg.Counter("wq_sched_steals_total")
	reg.Gauge("wq_sched_shards").SetInt(len(s.shards))
}

// getWaiter leases a dispatch endpoint (one per worker connection);
// putWaiter recycles it. A waiter must not be shared across goroutines.
func (s *scheduler) getWaiter() *waiter  { return s.waiters.Get().(*waiter) }
func (s *scheduler) putWaiter(w *waiter) { s.waiters.Put(w) }

// push enqueues a task; jobs default to priority 1. When a worker is
// parked and no task is queued anywhere, the task is handed to it
// directly — the push never takes a shard lock on that path.
func (s *scheduler) push(t Task) {
	if s.closed.Load() {
		return
	}
	// Direct handoff is only safe when the pool is empty: with tasks
	// queued, jumping the queue would break FIFO-within-job and bypass
	// the weighted pick.
	if s.pending.Load() == 0 {
		if w := s.claimIdle(); w != nil {
			s.cHandoffs.Inc()
			w.ch <- wake{task: t, direct: true}
			return
		}
	}
	sh := &s.shards[shardIndex(t.JobID, len(s.shards))]
	sh.mu.Lock()
	q := sh.jobs[t.JobID]
	if q == nil {
		q = &jobQueue{id: t.JobID, priority: 1}
		sh.jobs[t.JobID] = q
	}
	if q.pending() == 0 {
		sh.order = append(sh.order, q)
		sh.setMassLocked(sh.mass + q.priority)
	}
	q.tasks = append(q.tasks, t)
	sh.pending++
	sh.mu.Unlock()
	s.pending.Add(1)
	// Re-check for a parked worker after the task is visible: a worker
	// that parked between the handoff check above and now would otherwise
	// sleep on a non-empty pool (the classic lost wakeup).
	if w := s.claimIdle(); w != nil {
		s.cWakeups.Inc()
		w.ch <- wake{}
	}
}

// claimIdle pops one parked waiter, transferring the exclusive right to
// send on its channel to the caller. Nil when nobody is parked; that
// case is a single atomic load, so pushes under load never touch the
// idle lock.
func (s *scheduler) claimIdle() *waiter {
	if s.idleCount.Load() == 0 {
		return nil
	}
	s.idleMu.Lock()
	n := len(s.idle)
	if n == 0 {
		s.idleMu.Unlock()
		return nil
	}
	w := s.idle[n-1]
	s.idle[n-1] = nil
	s.idle = s.idle[:n-1]
	s.idleCount.Store(int32(n - 1))
	s.idleMu.Unlock()
	return w
}

// park adds the waiter to the idle stack; unpark removes it again and
// reports whether the waiter was still there (false means a pusher or
// close claimed it and exactly one message is in flight on its channel).
func (w *waiter) park() {
	s := w.s
	s.idleMu.Lock()
	s.idle = append(s.idle, w)
	s.idleCount.Store(int32(len(s.idle)))
	s.idleMu.Unlock()
}

func (w *waiter) unpark() bool {
	s := w.s
	s.idleMu.Lock()
	for i, p := range s.idle {
		if p == w {
			last := len(s.idle) - 1
			s.idle[i] = s.idle[last]
			s.idle[last] = nil
			s.idle = s.idle[:last]
			s.idleCount.Store(int32(last))
			s.idleMu.Unlock()
			return true
		}
	}
	s.idleMu.Unlock()
	return false
}

// setMassLocked updates the shard's priority mass and its atomic mirror.
// Callers hold sh.mu. Tiny negative residue from float cancellation is
// clamped so the weighted pick never sees a negative weight.
func (sh *schedShard) setMassLocked(m float64) {
	if m < 0 {
		m = 0
	}
	sh.mass = m
	sh.massBits.Store(math.Float64bits(m))
}

// setPriority tunes a job's scheduling weight. Non-positive values are
// clamped to a small epsilon so the job can still make progress.
func (s *scheduler) setPriority(jobID string, p float64) {
	const minPriority = 1e-6
	if p < minPriority {
		p = minPriority
	}
	sh := &s.shards[shardIndex(jobID, len(s.shards))]
	sh.mu.Lock()
	q := sh.jobs[jobID]
	if q == nil {
		sh.jobs[jobID] = &jobQueue{id: jobID, priority: p}
	} else {
		if q.pending() > 0 {
			sh.setMassLocked(sh.mass + p - q.priority)
		}
		q.priority = p
	}
	sh.mu.Unlock()
}

// next blocks until a task is available (or ctx is done / scheduler
// closed) and returns it. It leases a pooled waiter per call; the master
// holds a waiter per worker connection instead (see getWaiter) so its
// idle-dispatch loop is allocation-free.
func (s *scheduler) next(ctx context.Context) (Task, bool) {
	w := s.getWaiter()
	t, ok := w.next(ctx)
	s.putWaiter(w)
	return t, ok
}

// tryNext returns a queued task without blocking; ok=false when the pool
// is empty or closed.
func (s *scheduler) tryNext() (Task, bool) {
	w := s.getWaiter()
	t, ok := w.tryNext()
	s.putWaiter(w)
	return t, ok
}

// next blocks until a task is available, the context is cancelled, or the
// scheduler closes. The wait path parks on the waiter's own channel —
// no per-call allocation, no broadcast wakeups.
func (w *waiter) next(ctx context.Context) (Task, bool) {
	s := w.s
	done := ctx.Done()
	for {
		if s.closed.Load() {
			return Task{}, false
		}
		if t, ok := w.take(); ok {
			return t, true
		}
		// Cancellation is checked only when the draw would block: a
		// ctx.Err() call takes the context's lock, which the hot
		// task-available path must not touch.
		if ctx.Err() != nil {
			return Task{}, false
		}
		// Briefly yield-and-retry before parking: under load an empty
		// pool is usually a transient gap between a peer's draw and the
		// next push, and a retried scan is far cheaper than the full
		// park/wake channel round trip.
		retried := false
		for spin := 0; spin < 2 && s.pending.Load() == 0 && !s.closed.Load(); spin++ {
			runtime.Gosched()
		}
		if s.pending.Load() > 0 {
			retried = true
		}
		if retried {
			continue
		}
		w.park()
		// Recheck after parking: a task pushed (or a close issued) between
		// the failed take and the park would find no parked waiter to wake.
		if s.pending.Load() > 0 || s.closed.Load() {
			if w.unpark() {
				continue
			}
			// A pusher claimed us in the window: its message is in flight,
			// fall through and consume it.
		}
		select {
		case m := <-w.ch:
			if m.direct {
				return m.task, true
			}
			// Signal: rescan the shards.
		case <-done:
			if w.unpark() {
				return Task{}, false
			}
			// Claimed concurrently with cancellation: consume the in-flight
			// message so the channel is empty for reuse, and never lose a
			// handed-off task — push it back for another worker.
			if m := <-w.ch; m.direct {
				s.push(m.task)
			}
			return Task{}, false
		}
	}
}

// tryNext is the non-blocking draw (batching handlers use it to fill a
// frame beyond the first blocking draw).
func (w *waiter) tryNext() (Task, bool) {
	if w.s.closed.Load() {
		return Task{}, false
	}
	return w.take()
}

// take draws one task: weighted shard pick by priority mass, then
// weighted job pick within the shard, falling back to stealing from the
// other shards in preference order when the pick loses a race.
func (w *waiter) take() (Task, bool) {
	s := w.s
	if s.pending.Load() == 0 {
		return Task{}, false
	}
	n := len(s.shards)
	picked := -1
	if n > 1 {
		total := 0.0
		for i := range s.shards {
			m := math.Float64frombits(s.shards[i].massBits.Load())
			w.scratch[i] = m
			total += m
		}
		if total > 0 {
			r := w.rng.Float64() * total
			acc := 0.0
			for i, m := range w.scratch {
				acc += m
				if r < acc {
					picked = i
					break
				}
			}
		}
		if picked >= 0 {
			if t, ok := s.shards[picked].takeOne(); ok {
				s.pending.Add(-1)
				return t, true
			}
		}
	}
	// Steal scan: preference order from this waiter's home shard. Covers
	// the single-shard pool, a raced-away pick, and mass snapshots gone
	// stale between the atomic reads and the lock.
	for i := 0; i < n; i++ {
		k := (int(w.preferred) + i) % n
		if t, ok := s.shards[k].takeOne(); ok {
			s.pending.Add(-1)
			if picked >= 0 && k != picked {
				s.cSteals.Inc()
			}
			return t, true
		}
	}
	return Task{}, false
}

// takeOne pops the next task from one shard (priority-weighted job pick,
// FIFO within the job).
func (sh *schedShard) takeOne() (Task, bool) {
	sh.mu.Lock()
	if sh.pending == 0 {
		sh.mu.Unlock()
		return Task{}, false
	}
	q, idx := sh.pickJobLocked()
	t := q.tasks[q.head]
	q.tasks[q.head] = Task{} // release references for GC
	q.head++
	if q.pending() == 0 {
		// Keep the entry (and its queue capacity) but drop it from the
		// weighted pick until the next push.
		q.tasks = q.tasks[:0]
		q.head = 0
		sh.removeOrderLocked(idx)
		sh.setMassLocked(sh.mass - q.priority)
	} else if q.head >= 32 && q.head*2 >= len(q.tasks) {
		// Compact once the consumed prefix dominates, so a queue that
		// never fully drains does not grow its backing array without
		// bound (appends would otherwise realloc — and clear — ever
		// larger arrays). Amortized O(1) per pop.
		n := copy(q.tasks, q.tasks[q.head:])
		clear(q.tasks[n:])
		q.tasks = q.tasks[:n]
		q.head = 0
	}
	sh.pending--
	sh.mu.Unlock()
	return t, true
}

// pickJobLocked selects a job with pending tasks, weighted by priority.
// sh.mass already holds the total weight of sh.order, so the pick is a
// single pass; float residue in the maintained total at worst biases the
// last job by a few ulps (the fallthrough return).
func (sh *schedShard) pickJobLocked() (*jobQueue, int) {
	if len(sh.order) == 1 {
		return sh.order[0], 0
	}
	r := sh.rng.Float64() * sh.mass
	acc := 0.0
	for i, q := range sh.order {
		acc += q.priority
		if r < acc {
			return q, i
		}
	}
	return sh.order[len(sh.order)-1], len(sh.order) - 1
}

func (sh *schedShard) removeOrderLocked(i int) {
	sh.order = append(sh.order[:i], sh.order[i+1:]...)
}

// forgetJob drops a drained job's entry so long-running masters do not
// accumulate state for every job ever seen. A job that still has queued
// tasks keeps its entry; a task pushed later (e.g. a requeue) recreates
// it at the default priority.
func (s *scheduler) forgetJob(jobID string) {
	sh := &s.shards[shardIndex(jobID, len(s.shards))]
	sh.mu.Lock()
	if q := sh.jobs[jobID]; q != nil && q.pending() == 0 {
		delete(sh.jobs, jobID)
	}
	sh.mu.Unlock()
}

// jobStateSizes reports internal map sizes (tests assert they drain):
// queues counts jobs with pending tasks, priorities every known job.
func (s *scheduler) jobStateSizes() (queues, priorities int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		queues += len(sh.order)
		priorities += len(sh.jobs)
		sh.mu.Unlock()
	}
	return queues, priorities
}

// len reports the number of queued tasks.
func (s *scheduler) len() int { return int(s.pending.Load()) }

// close wakes all parked waiters; subsequent pushes are dropped.
func (s *scheduler) close() {
	s.closed.Store(true)
	for {
		w := s.claimIdle()
		if w == nil {
			return
		}
		w.ch <- wake{}
	}
}
