package workqueue

import (
	"context"
	"math/rand"
	"sync"
)

// scheduler is the priority-aware task pool. Jobs carry priorities; an idle
// worker draws the next task from a job selected with probability
// proportional to its priority (the paper's P_u = T_u / sum T_u semantics,
// generalized to arbitrary positive priorities tuned by the PID loop).
// Within a job, tasks are FIFO.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]Task // jobID -> FIFO queue
	priority map[string]float64
	order    []string // jobIDs with pending tasks, stable iteration
	rng      *rand.Rand
	closed   bool
	pending  int
}

func newScheduler(seed int64) *scheduler {
	s := &scheduler{
		queues:   make(map[string][]Task),
		priority: make(map[string]float64),
		rng:      rand.New(rand.NewSource(seed)),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues a task; jobs default to priority 1.
func (s *scheduler) push(t Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.queues[t.JobID]; !ok {
		s.order = append(s.order, t.JobID)
	}
	s.queues[t.JobID] = append(s.queues[t.JobID], t)
	if _, ok := s.priority[t.JobID]; !ok {
		s.priority[t.JobID] = 1
	}
	s.pending++
	s.cond.Signal()
}

// setPriority tunes a job's scheduling weight. Non-positive values are
// clamped to a small epsilon so the job can still make progress.
func (s *scheduler) setPriority(jobID string, p float64) {
	const minPriority = 1e-6
	if p < minPriority {
		p = minPriority
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.priority[jobID] = p
}

// next blocks until a task is available (or ctx is done / scheduler
// closed) and returns it.
func (s *scheduler) next(ctx context.Context) (Task, bool) {
	// Wake the cond wait when the context is cancelled.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending == 0 && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.closed || ctx.Err() != nil || s.pending == 0 {
		return Task{}, false
	}
	return s.takeLocked(), true
}

// tryNext returns a queued task without blocking; ok=false when the pool
// is empty or closed. Batching handlers use it to fill a frame beyond
// the first (blocking) draw.
func (s *scheduler) tryNext() (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pending == 0 {
		return Task{}, false
	}
	return s.takeLocked(), true
}

// takeLocked pops the next task (priority-weighted job pick, FIFO within
// the job). Callers hold s.mu and have checked pending > 0.
func (s *scheduler) takeLocked() Task {
	jobID := s.pickJobLocked()
	q := s.queues[jobID]
	t := q[0]
	if len(q) == 1 {
		delete(s.queues, jobID)
		s.removeOrderLocked(jobID)
	} else {
		s.queues[jobID] = q[1:]
	}
	s.pending--
	return t
}

// pickJobLocked selects a job with pending tasks, weighted by priority.
func (s *scheduler) pickJobLocked() string {
	total := 0.0
	for _, id := range s.order {
		total += s.priority[id]
	}
	r := s.rng.Float64() * total
	acc := 0.0
	for _, id := range s.order {
		acc += s.priority[id]
		if r < acc {
			return id
		}
	}
	return s.order[len(s.order)-1]
}

func (s *scheduler) removeOrderLocked(jobID string) {
	for i, id := range s.order {
		if id == jobID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// forgetJob drops a drained job's priority entry so long-running masters
// do not accumulate state for every job ever seen. A job that still has
// queued tasks keeps its entry; a task pushed later (e.g. a requeue)
// recreates it at the default priority.
func (s *scheduler) forgetJob(jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, queued := s.queues[jobID]; !queued {
		delete(s.priority, jobID)
	}
}

// jobStateSizes reports internal map sizes (tests assert they drain).
func (s *scheduler) jobStateSizes() (queues, priorities int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues), len(s.priority)
}

// len reports the number of queued tasks.
func (s *scheduler) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// close wakes all waiters; subsequent pushes are dropped.
func (s *scheduler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
