package workqueue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSchedulerNextAllocFree is the satellite regression for the old
// idle-worker loop allocating a context.AfterFunc stop closure per next
// call: a steady push/draw cycle through a leased waiter must not
// allocate at all, cancellable context included.
func TestSchedulerNextAllocFree(t *testing.T) {
	s := newScheduler(7, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := s.getWaiter()
	defer s.putWaiter(w)
	// Warm up: create the job entry, grow the queue/order capacity and
	// materialize ctx.Done()'s channel.
	s.push(Task{ID: "warm", JobID: "j"})
	if _, ok := w.next(ctx); !ok {
		t.Fatal("warmup draw failed")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.push(Task{ID: "t", JobID: "j"})
		if _, ok := w.next(ctx); !ok {
			t.Fatal("draw failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("push+next allocates %.1f allocs/op, want 0", allocs)
	}
	tryAllocs := testing.AllocsPerRun(1000, func() {
		s.push(Task{ID: "t", JobID: "j"})
		if _, ok := w.tryNext(); !ok {
			t.Fatal("tryNext failed")
		}
	})
	if tryAllocs != 0 {
		t.Fatalf("push+tryNext allocates %.1f allocs/op, want 0", tryAllocs)
	}
}

// TestSchedulerWeightedFairnessAcrossShards is the chi-squared check
// that draw frequencies track the paper's P_u = T_u / sum T_u weights
// even though jobs are spread over independent shards: the two-level
// pick (shard by priority mass, then job by priority) must compose to
// the global weighted distribution.
func TestSchedulerWeightedFairnessAcrossShards(t *testing.T) {
	s := newScheduler(3, 4)
	w := s.getWaiter()
	defer s.putWaiter(w)
	priorities := []float64{5, 3, 1, 1, 0.5, 0.25}
	jobs := make([]string, len(priorities))
	total := 0.0
	for i, p := range priorities {
		jobs[i] = fmt.Sprintf("job%d", i)
		s.setPriority(jobs[i], p)
		total += p
	}
	const trials = 4000
	counts := make(map[string]int, len(jobs))
	for trial := 0; trial < trials; trial++ {
		// One queued task per job, then a single counted draw: the first
		// draw of each round samples the full weighted distribution.
		for i, id := range jobs {
			s.push(Task{ID: fmt.Sprintf("%s-%d", id, trial), JobID: id})
			_ = i
		}
		task, ok := w.tryNext()
		if !ok {
			t.Fatal("draw from non-empty pool failed")
		}
		counts[task.JobID]++
		for {
			if _, ok := w.tryNext(); !ok {
				break
			}
		}
	}
	chi2 := 0.0
	for i, id := range jobs {
		expected := float64(trials) * priorities[i] / total
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	// 5 degrees of freedom: chi2 > 30 has p < 1.5e-5 — with the fixed
	// seed this is fully deterministic, the bound just documents margin.
	if chi2 > 30 {
		t.Fatalf("chi-squared = %.1f (counts %v): draws do not track P_u", chi2, counts)
	}
}

// TestSchedulerColdShardNotStarved drains a hot shard stacked with
// high-priority work and requires the lone task of a near-zero-priority
// job on another shard to still come out: the steal scan (and the
// exhaustive drain) guarantee progress, not just probability.
func TestSchedulerColdShardNotStarved(t *testing.T) {
	s := newScheduler(11, 4)
	w := s.getWaiter()
	defer s.putWaiter(w)
	// Pick two jobs living on different shards.
	hot, cold := "hot0", ""
	for i := 0; i < 64 && cold == ""; i++ {
		id := fmt.Sprintf("cold%d", i)
		if shardIndex(id, 4) != shardIndex(hot, 4) {
			cold = id
		}
	}
	if cold == "" {
		t.Fatal("could not find a job on another shard")
	}
	s.setPriority(hot, 1000)
	s.setPriority(cold, 1e-9) // clamped to the epsilon floor, ~0 weight
	const hotTasks = 500
	for i := 0; i < hotTasks; i++ {
		s.push(Task{ID: fmt.Sprintf("h%d", i), JobID: hot})
	}
	s.push(Task{ID: "the-cold-one", JobID: cold})
	seenCold := false
	for i := 0; i < hotTasks+1; i++ {
		task, ok := w.tryNext()
		if !ok {
			t.Fatalf("pool dried up after %d draws with %d queued", i, s.len())
		}
		if task.JobID == cold {
			seenCold = true
		}
	}
	if !seenCold {
		t.Fatal("cold shard's task never delivered — starved")
	}
	if s.len() != 0 {
		t.Fatalf("queue not drained: %d left", s.len())
	}
}

// TestSchedulerLoadSweep100k is the sched tier's load sweep: 100k claim
// draws through the sharded pool at each simulated-worker count, with
// exactly-once delivery and a full drain asserted at every step. The
// per-step throughput lands in the -v log next to BENCH_sched.json.
func TestSchedulerLoadSweep100k(t *testing.T) {
	const claims = 100_000
	if testing.Short() {
		t.Skip("100k-claim sweep skipped in -short mode")
	}
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := newScheduler(9, 0) // production default shard count
			var delivered sync.WaitGroup
			delivered.Add(claims)
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					w := s.getWaiter()
					defer s.putWaiter(w)
					w.preferred = uint32(g)
					for {
						if _, ok := w.next(context.Background()); !ok {
							return
						}
						delivered.Done()
					}
				}(g)
			}
			for i := 0; i < claims; i++ {
				s.push(Task{ID: fmt.Sprintf("c%d", i), JobID: fmt.Sprintf("job%d", i%64)})
			}
			delivered.Wait()
			elapsed := time.Since(start)
			s.close()
			wg.Wait()
			if s.len() != 0 {
				t.Fatalf("pool not drained: %d left", s.len())
			}
			t.Logf("%d claims, %d workers: %.0f claims/s (%s)",
				claims, workers, claims/elapsed.Seconds(), elapsed.Round(time.Millisecond))
		})
	}
}

// TestSchedulerConcurrentExactlyOnce hammers the sharded pool from
// concurrent pushers and waiter-holding workers and checks every task is
// delivered exactly once — the invariant the handoff/park protocol must
// keep under races (run under -race in the race tier).
func TestSchedulerConcurrentExactlyOnce(t *testing.T) {
	const (
		pushers        = 4
		workers        = 8
		tasksPerPusher = 500
		jobs           = 16
	)
	s := newScheduler(5, 4)
	delivered := make(chan string, pushers*tasksPerPusher)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := s.getWaiter()
			defer s.putWaiter(w)
			for {
				task, ok := w.next(context.Background())
				if !ok {
					return
				}
				delivered <- task.ID
			}
		}()
	}
	for g := 0; g < pushers; g++ {
		go func(g int) {
			for i := 0; i < tasksPerPusher; i++ {
				s.push(Task{
					ID:    fmt.Sprintf("p%d-t%d", g, i),
					JobID: fmt.Sprintf("job%d", (g*tasksPerPusher+i)%jobs),
				})
			}
		}(g)
	}
	seen := make(map[string]bool, pushers*tasksPerPusher)
	for n := 0; n < pushers*tasksPerPusher; n++ {
		id := <-delivered
		if seen[id] {
			t.Fatalf("task %s delivered twice", id)
		}
		seen[id] = true
	}
	s.close()
	wg.Wait()
	close(delivered)
	for id := range delivered {
		t.Fatalf("task %s delivered after close beyond the pushed set", id)
	}
	if queues, _ := s.jobStateSizes(); queues != 0 || s.len() != 0 {
		t.Fatalf("pool not drained: %d queued jobs, len %d", queues, s.len())
	}
}
