package workqueue

import "net"

// pipePair returns the two ends of an in-process connection. Wrapping
// net.Pipe keeps the call sites readable and gives one place to swap in a
// buffered implementation if profiling ever demands it.
func pipePair() (masterSide, workerSide net.Conn) {
	return net.Pipe()
}
