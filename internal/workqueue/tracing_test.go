package workqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// TestTaskTraceContextRoundTrip: the trace context and master send stamp
// survive the wire on a task message.
func TestTaskTraceContextRoundTrip(t *testing.T) {
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	go func() {
		_ = ca.send(message{Type: msgTask, Task: &Task{
			ID: "t1", JobID: "j",
			Trace:        &TraceContext{TraceID: "abc-1", ParentSpanID: 7},
			SentUnixNano: 12345,
		}})
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Task == nil || m.Task.Trace == nil {
		t.Fatalf("trace context lost: %+v", m.Task)
	}
	if m.Task.Trace.TraceID != "abc-1" || m.Task.Trace.ParentSpanID != 7 {
		t.Errorf("trace context = %+v", m.Task.Trace)
	}
	if m.Task.SentUnixNano != 12345 {
		t.Errorf("sent stamp = %d, want 12345", m.Task.SentUnixNano)
	}
}

// TestRemoteSpanRoundTrip: worker stage spans and the clock stamps
// survive the wire on a result message.
func TestRemoteSpanRoundTrip(t *testing.T) {
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	go func() {
		_ = ca.send(message{
			Type:         msgResult,
			Result:       &Result{TaskID: "t1", WorkerID: "w"},
			SentUnixNano: 500,
			TaskDelayNs:  900,
			Spans: []RemoteSpan{
				{TraceID: "abc-1", Parent: 7, Name: StageExec, TaskID: "t1", StartUnixNano: 100, DurNs: 50},
				{TraceID: "abc-1", Parent: 7, Name: StageSend, TaskID: "t0", StartUnixNano: 80, DurNs: 5},
			},
		})
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.SentUnixNano != 500 || m.TaskDelayNs != 900 {
		t.Errorf("clock stamps = %d/%d, want 500/900", m.SentUnixNano, m.TaskDelayNs)
	}
	if len(m.Spans) != 2 {
		t.Fatalf("spans = %+v, want 2", m.Spans)
	}
	if s := m.Spans[0]; s.TraceID != "abc-1" || s.Parent != 7 || s.Name != StageExec ||
		s.TaskID != "t1" || s.StartUnixNano != 100 || s.DurNs != 50 {
		t.Errorf("span round trip = %+v", s)
	}
}

// TestUntracedProtocolBackwardCompat: messages from before tracing — a
// task with no trace context, a result with no spans or clock stamps —
// decode to zero values, and the worker-side trace helpers treat them as
// "tracing off" rather than failing.
func TestUntracedProtocolBackwardCompat(t *testing.T) {
	a, b := pipePair()
	cb := newCodec(b)
	go func() {
		_, _ = a.Write([]byte(`{"type":"task","task":{"id":"t","job_id":"j","payload":"eA=="}}` + "\n"))
		_, _ = a.Write([]byte(`{"type":"result","result":{"task_id":"t","worker_id":"w","elapsed_ns":5}}` + "\n"))
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Task == nil || m.Task.Trace != nil || m.Task.SentUnixNano != 0 {
		t.Errorf("old task gained trace state: %+v", m.Task)
	}
	m, err = cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Spans != nil || m.SentUnixNano != 0 || m.TaskDelayNs != 0 {
		t.Errorf("old result gained trace state: %+v", m)
	}

	// A nil trace context means no TaskTrace, and every helper no-ops.
	if tt := newTaskTrace(nil, "t"); tt != nil {
		t.Errorf("newTaskTrace(nil) = %v, want nil", tt)
	}
	if tt := newTaskTrace(&TraceContext{}, "t"); tt != nil {
		t.Errorf("newTaskTrace(empty trace id) = %v, want nil", tt)
	}
	var tt *TaskTrace
	tt.add("x", time.Now(), time.Now())
	if got := tt.take(); got != nil {
		t.Errorf("nil TaskTrace take = %v", got)
	}
	s := StartStageSpan(context.Background(), StageDecode)
	if s != nil {
		t.Errorf("StartStageSpan without trace = %v, want nil", s)
	}
	s.Finish() // must not panic
}

// TestStageSpanRecordsOnTrace: StartStageSpan on a traced context lands a
// named span carrying the wire-provided parent.
func TestStageSpanRecordsOnTrace(t *testing.T) {
	tt := newTaskTrace(&TraceContext{TraceID: "abc", ParentSpanID: 42}, "t9")
	ctx := withTaskTrace(context.Background(), tt)
	sp := StartStageSpan(ctx, StageEncode)
	sp.Finish()
	sp.Finish() // idempotent
	spans := tt.take()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v, want 1", spans)
	}
	got := spans[0]
	if got.Name != StageEncode || got.TraceID != "abc" || got.Parent != 42 || got.TaskID != "t9" {
		t.Errorf("stage span = %+v", got)
	}
	if got.DurNs < 0 {
		t.Errorf("negative duration: %+v", got)
	}
}

// TestAssignNeverQueuedTaskDoesNotBreakTracing: regression for the
// unguarded taskSpans lookup in trackInflight. A task that reaches
// assignment without ever being marked queued (pushed straight into the
// scheduler, bypassing Submit) has no open queue span; assigning it must
// still work and produce a finished exec span.
func TestAssignNeverQueuedTaskDoesNotBreakTracing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := obs.NewTracer(64)
	m := NewMaster(MasterConfig{ResultBuffer: 8, Tracer: tr})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)

	// Bypass Submit: the scheduler sees the task, markQueuedLocked never
	// ran, so taskSpans has no entry when trackInflight looks it up.
	m.sched.push(Task{ID: "ghost", JobID: "j", Payload: []byte("x")})

	r := collect(t, m, 1)[0]
	if r.TaskID != "ghost" || r.Err != "" {
		t.Fatalf("result = %+v", r)
	}
	found := false
	for _, s := range tr.Spans() {
		if s.Name == "exec ghost" {
			found = true
		}
	}
	if !found {
		t.Errorf("no exec span recorded for never-queued task; spans: %+v", tr.Spans())
	}
}

// TestClockSkewEstimate: the NTP-style two-leg derivation. d1 (worker→
// master observed on the master clock) = transit − skew; d2 (master→
// worker observed on the worker clock) = transit + skew.
func TestClockSkewEstimate(t *testing.T) {
	cl := newCluster(nil, 0)
	if _, err := cl.attach("w", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Worker clock 5ms ahead, symmetric 10ms transit:
	// d1 = 10 − 5 = 5ms, d2 = 10 + 5 = 15ms.
	d1 := int64(5 * time.Millisecond)
	d2 := int64(15 * time.Millisecond)
	cl.observeClock("w", d1, d2)
	wantAdj := int64(-5 * time.Millisecond) // subtract the skew
	if got := cl.clockAdjustNs("w"); got != wantAdj {
		t.Errorf("clockAdjustNs = %d, want %d", got, wantAdj)
	}
	h := cl.health()[0]
	if h.ClockSkewMs != 5 {
		t.Errorf("ClockSkewMs = %v, want 5", h.ClockSkewMs)
	}
	if h.RTTMs != 20 {
		t.Errorf("RTTMs = %v, want 20", h.RTTMs)
	}

	// One leg alone must not produce an estimate.
	cl2 := newCluster(nil, 0)
	if _, err := cl2.attach("w", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	cl2.observeClock("w", d1, 0)
	if got := cl2.clockAdjustNs("w"); got != 0 {
		t.Errorf("one-leg clockAdjustNs = %d, want 0", got)
	}
	if h := cl2.health()[0]; h.ClockSkewMs != 0 || h.RTTMs != 0 {
		t.Errorf("one-leg health = skew %v rtt %v, want zeros", h.ClockSkewMs, h.RTTMs)
	}
}

// TestTransferEWMA: the measured transfer folds with the documented
// smoothing factor and surfaces in WorkerHealth.
func TestTransferEWMA(t *testing.T) {
	cl := newCluster(nil, 0)
	if _, err := cl.attach("w", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	cl.observeTransfer("w", 10*time.Millisecond)
	if h := cl.health()[0]; h.EWMATransferMs != 10 {
		t.Errorf("first transfer EWMA = %v, want 10", h.EWMATransferMs)
	}
	cl.observeTransfer("w", 20*time.Millisecond)
	want := ewmaTransferAlpha*20 + (1-ewmaTransferAlpha)*10
	if h := cl.health()[0]; h.EWMATransferMs != want {
		t.Errorf("second transfer EWMA = %v, want %v", h.EWMATransferMs, want)
	}
}

// TestDistributedTraceEndToEnd is the acceptance scenario: a master and
// two workers produce ONE trace in the master's tracer where a task shows
// the master-side queue/exec spans and the worker-side recv, decode,
// exec, encode and send spans, all under the job's trace ID, with worker
// spans on their own process lanes in the Chrome export.
func TestDistributedTraceEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := obs.NewTracer(0)
	m := NewMaster(MasterConfig{ResultBuffer: 64, Tracer: tr})

	exec := func(c context.Context, payload []byte) ([]byte, error) {
		decode := StartStageSpan(c, StageDecode)
		var v map[string]int
		if err := json.Unmarshal(payload, &v); err != nil {
			return nil, StageError(StageDecode, err)
		}
		decode.Finish()
		time.Sleep(2 * time.Millisecond)
		encode := StartStageSpan(c, StageEncode)
		out, err := json.Marshal(v)
		encode.Finish()
		return out, err
	}
	for _, id := range []string{"wA", "wB"} {
		mconn, wconn := pipePair()
		go func() { _ = m.HandleWorker(ctx, mconn) }()
		go func(id string) {
			w := &Worker{ID: id, Exec: exec}
			_ = w.Run(ctx, wconn)
		}(id)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 2 }, "workers to attach")

	root := tr.NewTrace("job j")
	tc := &TraceContext{TraceID: root.TraceID(), ParentSpanID: root.SpanID()}
	const n = 8
	for i := 0; i < n; i++ {
		err := m.Submit(Task{
			ID: fmt.Sprintf("t%d", i), JobID: "j",
			Payload: []byte(`{"n":1}`),
			Span:    root.SpanID(),
			Trace:   tc,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	results := collect(t, m, n)
	byWorker := map[string]int{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("task failed: %+v", r)
		}
		byWorker[r.WorkerID]++
	}
	if len(byWorker) != 2 {
		t.Fatalf("tasks not spread across both workers: %v", byWorker)
	}
	root.Finish()
	// Shutdown waits for the workers' final span flush (their last send
	// spans ride on a closing heartbeat).
	m.Shutdown()

	// Index the merged timeline: every span must be in the one trace.
	spans := tr.Spans()
	byID := map[int64]obs.Span{}
	type key struct{ name, proc string }
	seen := map[key][]obs.Span{}
	for _, s := range spans {
		if s.Trace != root.TraceID() {
			t.Errorf("span %q in trace %q, want %q", s.Name, s.Trace, root.TraceID())
		}
		byID[s.ID] = s
		seen[key{s.Name, s.Proc}] = append(seen[key{s.Name, s.Proc}], s)
	}

	// Pick one completed task per worker and check the full stage ladder.
	for workerID := range byWorker {
		var execSpan *obs.Span
		for _, s := range spans {
			if s.Proc == "" && strings.HasPrefix(s.Name, "exec t") && s.Attrs["worker"] == workerID {
				execSpan = &s
				break
			}
		}
		if execSpan == nil {
			t.Fatalf("no master exec span for worker %s", workerID)
		}
		taskID := strings.TrimPrefix(execSpan.Name, "exec ")
		if qs := seen[key{"queue " + taskID, ""}]; len(qs) == 0 {
			t.Errorf("no master queue span for %s", taskID)
		}
		for _, stage := range []string{StageRecv, StageDecode, StageExec, StageEncode, StageSend} {
			var got *obs.Span
			for _, s := range seen[key{stage, workerID}] {
				if s.Attrs["task"] == taskID {
					got = &s
					break
				}
			}
			if got == nil {
				t.Errorf("worker %s: no %q span for task %s", workerID, stage, taskID)
				continue
			}
			if got.Parent != execSpan.ID {
				t.Errorf("worker %s: %q span parent = %d, want master exec span %d",
					workerID, stage, got.Parent, execSpan.ID)
			}
		}
	}

	// The Chrome export must put the two workers on their own process
	// lanes, named by metadata records.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"master"`, `"name":"worker wA"`, `"name":"worker wB"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing process lane %s", want)
		}
	}
	var chrome struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if len(pids) != 3 {
		t.Errorf("chrome export pids = %v, want master + 2 workers", pids)
	}
}

// TestHeartbeatsConvergeClockEstimate: even an idle worker's heartbeats
// carry the clock stamps, so the master's skew/RTT estimate appears
// without any task traffic (after the first task seeds the reverse leg).
func TestHeartbeatsCarryClockStamps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8})
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{ID: "hb", Exec: echoExec, HeartbeatEvery: 5 * time.Millisecond}
		_ = w.Run(ctx, wconn)
	}()
	waitFor(t, func() bool { return m.WorkerCount() == 1 }, "worker to attach")
	// One task seeds the master→worker delay leg (TaskDelayNs).
	if err := m.Submit(Task{ID: "t", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	collect(t, m, 1)
	waitFor(t, func() bool {
		h := m.ClusterHealth()
		return len(h) > 0 && h[0].RTTMs != 0
	}, "clock estimate to converge")
}
