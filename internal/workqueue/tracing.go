package workqueue

import (
	"context"
	"sync"
	"time"
)

// TraceContext is the causal context a task carries across the wire: the
// distributed trace ID minted by the submitter (the TD job's root span)
// and the span the remote work should nest under. The master rewrites
// ParentSpanID to the task's exec span before shipping the task, so a
// worker's stage spans land directly beneath the master-side exec leg of
// the same trace. A nil TraceContext (old submitters, telemetry off)
// keeps the pre-tracing protocol: workers then record no spans.
type TraceContext struct {
	TraceID      string `json:"trace_id"`
	ParentSpanID int64  `json:"parent_span_id,omitempty"`
}

// RemoteSpan is one finished worker-side stage span in wire form. Start
// is on the worker's clock; the master offset-adjusts it with its
// RTT-based clock-skew estimate before ingesting the span into its
// tracer ring. Parent is a master-side span ID (from TraceContext), so
// no ID remapping is needed on ingest.
type RemoteSpan struct {
	TraceID string `json:"trace_id,omitempty"`
	Parent  int64  `json:"parent,omitempty"`
	Name    string `json:"name"`
	TaskID  string `json:"task_id,omitempty"`
	// StartUnixNano / DurNs are the span's start (worker clock, unix
	// nanoseconds) and duration.
	StartUnixNano int64 `json:"start_unix_ns"`
	DurNs         int64 `json:"dur_ns"`
}

// TaskTrace collects the stage spans of one traced task execution on a
// worker. The worker seeds it from the task's TraceContext and injects
// it into the executor's context; executors mark their decode/encode
// stages through StartStageSpan. All methods are nil-safe, so executors
// instrument unconditionally and untraced tasks cost one nil check.
type TaskTrace struct {
	traceID string
	parent  int64
	taskID  string

	mu    sync.Mutex
	spans []RemoteSpan
}

func newTaskTrace(tc *TraceContext, taskID string) *TaskTrace {
	if tc == nil || tc.TraceID == "" {
		return nil
	}
	return &TaskTrace{traceID: tc.TraceID, parent: tc.ParentSpanID, taskID: taskID}
}

// add records one finished stage span. Nil-safe.
func (tt *TaskTrace) add(name string, start, end time.Time) {
	if tt == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	tt.mu.Lock()
	tt.spans = append(tt.spans, RemoteSpan{
		TraceID:       tt.traceID,
		Parent:        tt.parent,
		Name:          name,
		TaskID:        tt.taskID,
		StartUnixNano: start.UnixNano(),
		DurNs:         int64(end.Sub(start)),
	})
	tt.mu.Unlock()
}

// take drains the collected spans.
func (tt *TaskTrace) take() []RemoteSpan {
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	out := tt.spans
	tt.spans = nil
	tt.mu.Unlock()
	return out
}

type taskTraceKey struct{}

// withTaskTrace injects tt into the executor's context.
func withTaskTrace(ctx context.Context, tt *TaskTrace) context.Context {
	if tt == nil {
		return ctx
	}
	return context.WithValue(ctx, taskTraceKey{}, tt)
}

// taskTraceFrom recovers the task's trace collector (nil when the task
// is untraced).
func taskTraceFrom(ctx context.Context) *TaskTrace {
	tt, _ := ctx.Value(taskTraceKey{}).(*TaskTrace)
	return tt
}

// StageSpan is one in-progress executor stage measurement. Finish is
// idempotent and nil-safe.
type StageSpan struct {
	tt    *TaskTrace
	name  string
	start time.Time
	done  bool
}

// StartStageSpan opens a stage span (e.g. StageDecode, StageEncode) on
// the traced task carried by ctx. For untraced tasks it returns nil,
// whose Finish no-ops — executors call it unconditionally, mirroring how
// StageError tags the same stages on failure.
func StartStageSpan(ctx context.Context, stage string) *StageSpan {
	tt := taskTraceFrom(ctx)
	if tt == nil {
		return nil
	}
	return &StageSpan{tt: tt, name: stage, start: time.Now()}
}

// Finish records the stage span. Safe on nil and idempotent.
func (s *StageSpan) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.tt.add(s.name, s.start, time.Now())
}

// spanBuffer accumulates finished remote spans on the worker between
// outgoing messages: a task's recv/decode/exec/encode spans ship with
// its result, while its send span (finished only after the result is on
// the wire) ships with the next result, heartbeat or the final flush at
// shutdown. Shared by the task loop and the heartbeat goroutine.
type spanBuffer struct {
	mu    sync.Mutex
	spans []RemoteSpan
}

func (b *spanBuffer) add(spans ...RemoteSpan) {
	if b == nil || len(spans) == 0 {
		return
	}
	b.mu.Lock()
	b.spans = append(b.spans, spans...)
	b.mu.Unlock()
}

func (b *spanBuffer) drain() []RemoteSpan {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := b.spans
	b.spans = nil
	b.mu.Unlock()
	return out
}
