package workqueue

// Golden wire-frame fixtures: one checked-in binary frame per message
// type, byte-exact. They freeze wire format v1 — a codec change that
// alters the bytes of an existing frame breaks TestGoldenFramesStable
// (bump wireVersion and regenerate with -update if the change is
// intentional), and a codec change that can no longer decode the
// checked-in bytes breaks TestGoldenFramesDecode (that one must never
// be regenerated away: old peers hold those bytes).

import (
	"bytes"
	"flag"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire frames under testdata/golden")

// goldenMessages is the fixture set: every message type, every field
// populated with fixed values (telemetry map encoding is
// deterministically sorted, so the frames are byte-stable).
func goldenMessages() []message {
	task := Task{
		ID:      "task-0001",
		JobID:   "job-alpha",
		Payload: []byte(`{"tweet":"earthquake near pier 39","geo":[37.8,-122.4]}`),
		Span:    101,
		Trace:   &TraceContext{TraceID: "trace-cafe", ParentSpanID: 202},
		// Fixed stamps: 2024-08-06T00:00:00.123456789Z-ish.
		SentUnixNano: 1722900000123456789,
		TimeoutNs:    2_000_000_000,
	}
	task2 := Task{ID: "task-0002", JobID: "job-alpha", Payload: []byte("second"), SentUnixNano: 1722900000123456790}
	result := Result{
		TaskID:   "task-0001",
		JobID:    "job-alpha",
		WorkerID: "w0",
		Output:   []byte(`{"credible":true}`),
		Err:      "exec: kaput",
		ErrStage: StageExec,
		ErrTrace: "workqueue.runExec -> workqueue.(*Worker).execOne",
		Elapsed:  42_000_000,
	}
	result2 := Result{TaskID: "task-0002", JobID: "job-alpha", WorkerID: "w0", Output: []byte("SECOND"), Elapsed: 7_000_000}
	spans := []RemoteSpan{
		{TraceID: "trace-cafe", Parent: 202, Name: "task.recv", TaskID: "task-0001", StartUnixNano: 1722900000123500000, DurNs: 1000},
		{TraceID: "trace-cafe", Parent: 202, Name: "task.exec", TaskID: "task-0001", StartUnixNano: 1722900000123501000, DurNs: 41_000_000},
	}
	return []message{
		{Type: msgHello, WorkerID: "w0", Batch: 256},
		{Type: msgTask, Task: &task},
		{Type: msgResult, WorkerID: "w0", Result: &result,
			SentUnixNano: 1722900000165000000, TaskDelayNs: 250_000, Spans: spans},
		{Type: msgShutdown},
		{Type: msgHeartbeat, WorkerID: "w0", SentUnixNano: 1722900000200000000, TaskDelayNs: -1500},
		{Type: msgStats, WorkerID: "w0", SentUnixNano: 1722900000300000000,
			Stats: &WorkerStats{
				TasksExecuted: 12, TasksFailed: 1, BytesIn: 4096, BytesOut: 8192,
				Goroutines: 9, HeapBytes: 1 << 21, UptimeMs: 60000,
				Exec: obs.HistogramSnapshot{
					Count: 13, Sum: 101.5,
					Bounds: []float64{1, 10, 100},
					Counts: []int64{4, 6, 3, 0},
					P50:    8.5, P90: 52.0, P99: 98.0,
				},
			},
			Telemetry: &obs.TelemetryShip{
				Seq: 7, Full: true,
				Counters: map[string]int64{"wq_tasks_total": 12, "wq_tasks_failed_total": 1},
				Gauges:   map[string]float64{"wq_queue_len": 3},
				Hists: map[string]obs.HistogramDelta{
					"wq_exec_ms": {Bounds: []float64{1, 10}, Counts: []int64{2, 1, 0}, Count: 3, Sum: 14.5},
				},
			}},
		{Type: msgFreeze, Freeze: &FreezeRequest{Seq: 3, Trigger: "slo_burn", Detail: "p99 over budget", WindowNs: 5_000_000_000}},
		{Type: msgFlightDump, WorkerID: "w0", Dump: &FlightDump{
			Seq: 3, Host: "w0", Trigger: "slo_burn", Detail: "p99 over budget",
			Events: []flightrec.Event{
				{Ring: "codec", Probe: "codec.encode", T0: 1722900000123456000, T1: 1722900000123457000, Arg: 512, Parent: 202},
				{Ring: "exec", Probe: "exec.run", T0: 1722900000123460000, T1: 1722900000164000000, Parent: 202},
			},
		}},
		{Type: msgTaskBatch, Tasks: []Task{task, task2}},
		{Type: msgResultBatch, WorkerID: "w0", SentUnixNano: 1722900000170000000,
			TaskDelayNs: 250_000, Results: []Result{result, result2}, Spans: spans},
	}
}

func goldenPath(typ string) string {
	return filepath.Join("testdata", "golden", typ+".bin")
}

// TestGoldenFramesStable: encoding the fixture messages must reproduce
// the checked-in frames byte for byte. A diff here means the encoder's
// output changed — a wire format break for already-deployed peers.
func TestGoldenFramesStable(t *testing.T) {
	for _, m := range goldenMessages() {
		m := m
		t.Run(m.Type, func(t *testing.T) {
			m.CRC = m.checksum()
			frame, err := appendWireFrame(nil, &m)
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(m.Type)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, frame, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(frame, want) {
				t.Fatalf("encoder output changed for %s: %d bytes vs %d golden bytes\n got % x\nwant % x",
					m.Type, len(frame), len(want), frame, want)
			}
			// Re-encoding the same message must be deterministic (the
			// telemetry maps are the only unordered inputs).
			again, err := appendWireFrame(nil, &m)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, again) {
				t.Fatalf("encoding %s is nondeterministic", m.Type)
			}
		})
	}
}

// TestGoldenFramesDecode: the checked-in bytes must decode through the
// production recv path (header, body, CRC) to exactly the fixture
// message. This is the backward-compatibility contract: bytes already in
// flight from old peers keep decoding.
func TestGoldenFramesDecode(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, m := range goldenMessages() {
		m := m
		t.Run(m.Type, func(t *testing.T) {
			frame, err := os.ReadFile(goldenPath(m.Type))
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			a, b := net.Pipe()
			defer func() { _ = b.Close() }()
			go func() {
				_, _ = a.Write(frame)
				_ = a.Close()
			}()
			got, err := newCodec(b).recv()
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			want := m
			want.CRC = m.checksum()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("golden decode diverged\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestGoldenCoversAllWireTypes: a new binary message type must ship a
// golden frame with it.
func TestGoldenCoversAllWireTypes(t *testing.T) {
	have := make(map[string]bool)
	for _, m := range goldenMessages() {
		have[m.Type] = true
	}
	for typ := range wireTypeOf {
		if !have[typ] {
			t.Errorf("wire type %q has no golden frame — add it to goldenMessages and run -update", typ)
		}
	}
}
