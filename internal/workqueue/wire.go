package workqueue

// wire.go is the length-prefixed binary wire format — the fast codec the
// cluster speaks by default. A frame is
//
//	magic(0xF5) version(0x01) uvarint(bodyLen) body
//
// and the body is one message: a type byte, a field-presence bitmap, then
// the present fields in fixed order. Strings and byte slices travel as
// uvarint length + raw bytes, integers as varints, floats as fixed 8-byte
// IEEE 754 little-endian, and repeated structures (spans, batched tasks
// and results, histogram buckets, telemetry samples) as flat
// count-prefixed arrays — no field names, no base64, no per-field
// allocation. Map-backed telemetry is emitted with sorted keys so
// encoding is deterministic and golden frames stay byte-stable.
//
// The JSON codec (protocol.go) remains fully supported: recv sniffs the
// first byte of each frame (0xF5 never begins a JSON document) and
// decodes either format, and the send side mirrors whatever format the
// peer last spoke. The CRC32 integrity check is computed over the same
// decoded field values in both formats, so a frame re-encoded across
// codecs keeps its checksum.
import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// WireMagic is the first byte of every binary frame. It is not a legal
// first byte of any JSON document (or of UTF-8 text at all), which is
// what lets recv distinguish the two formats without negotiation.
const WireMagic byte = 0xF5

// wireVersion is the binary format revision. Bump it for incompatible
// layout changes; the decoder rejects versions it does not know.
const wireVersion byte = 1

// ErrWireFormat is returned by the binary decoder for a structurally
// invalid body: truncated varints, lengths past the frame end, unknown
// message types or trailing garbage.
var ErrWireFormat = errors.New("workqueue: malformed binary frame")

// Binary message type bytes. The wire carries these; the decoded message
// keeps the string constants of protocol.go so the rest of the package
// (and the JSON codec) is format-agnostic.
const (
	wireHello byte = iota + 1
	wireTask
	wireResult
	wireShutdown
	wireHeartbeat
	wireStats
	wireFreeze
	wireFlightDump
	wireTaskBatch
	wireResultBatch
)

var wireTypeOf = map[string]byte{
	msgHello:       wireHello,
	msgTask:        wireTask,
	msgResult:      wireResult,
	msgShutdown:    wireShutdown,
	msgHeartbeat:   wireHeartbeat,
	msgStats:       wireStats,
	msgFreeze:      wireFreeze,
	msgFlightDump:  wireFlightDump,
	msgTaskBatch:   wireTaskBatch,
	msgResultBatch: wireResultBatch,
}

var wireTypeName = [...]string{
	wireHello:       msgHello,
	wireTask:        msgTask,
	wireResult:      msgResult,
	wireShutdown:    msgShutdown,
	wireHeartbeat:   msgHeartbeat,
	wireStats:       msgStats,
	wireFreeze:      msgFreeze,
	wireFlightDump:  msgFlightDump,
	wireTaskBatch:   msgTaskBatch,
	wireResultBatch: msgResultBatch,
}

// Field-presence bits, in encode order.
const (
	wfWorkerID = 1 << iota
	wfSent
	wfTaskDelay
	wfCRC
	wfBatch
	wfTask
	wfResult
	wfStats
	wfSpans
	wfTelemetry
	wfFreeze
	wfDump
	wfTasks
	wfResults
)

// wireBufPool recycles encode scratch and recv body buffers. Buffers are
// returned at their grown capacity, so steady-state encode and decode of
// same-shaped traffic allocates nothing.
var wireBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// wireHeaderRoom reserves space in the encode buffer for the frame
// header: magic + version + a worst-case 5-byte uvarint length (bodies
// are capped well under 4 GiB by maxFrameBytes).
const wireHeaderRoom = 7

// wireWriter appends primitive values to a growing buffer.
type wireWriter struct{ b []byte }

func (w *wireWriter) u64(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *wireWriter) i64(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *wireWriter) byte(v byte)   { w.b = append(w.b, v) }
func (w *wireWriter) str(s string)  { w.u64(uint64(len(s))); w.b = append(w.b, s...) }
func (w *wireWriter) blob(p []byte) { w.u64(uint64(len(p))); w.b = append(w.b, p...) }
func (w *wireWriter) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *wireWriter) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}
func (w *wireWriter) u32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}
func (w *wireWriter) f64s(vs []float64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}
func (w *wireWriter) i64s(vs []int64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.i64(v)
	}
}

// wireReader consumes primitive values from a frame body with a sticky
// error: the first malformed read poisons the reader and every later
// read returns zero values, so decode paths stay straight-line.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWireFormat
	}
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) bool() bool { return r.byte() != 0 }

// count reads a length-prefix and validates it against the bytes left in
// the frame (each counted element occupies at least elemSize bytes), so
// a corrupt count can never drive a large allocation.
func (r *wireReader) count(elemSize int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining())/uint64(elemSize)+1 || int(v)*elemSize > r.remaining() {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *wireReader) str() string {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// blob returns a copy of the next byte string (the frame buffer is
// pooled; decoded messages must own their bytes). Zero length decodes as
// nil, matching the JSON codec's omitempty round trip.
func (r *wireReader) blob() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *wireReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *wireReader) i64s() []int64 {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

// --- per-structure encoders/decoders ------------------------------------

func wirePutTask(w *wireWriter, t *Task) {
	w.str(t.ID)
	w.str(t.JobID)
	w.blob(t.Payload)
	w.i64(t.Span)
	if t.Trace != nil {
		w.bool(true)
		w.str(t.Trace.TraceID)
		w.i64(t.Trace.ParentSpanID)
	} else {
		w.bool(false)
	}
	w.i64(t.SentUnixNano)
	w.i64(t.TimeoutNs)
}

func wireGetTask(r *wireReader) Task {
	var t Task
	t.ID = r.str()
	t.JobID = r.str()
	t.Payload = r.blob()
	t.Span = r.i64()
	if r.bool() {
		t.Trace = &TraceContext{TraceID: r.str(), ParentSpanID: r.i64()}
	}
	t.SentUnixNano = r.i64()
	t.TimeoutNs = r.i64()
	return t
}

func wirePutResult(w *wireWriter, res *Result) {
	w.str(res.TaskID)
	w.str(res.JobID)
	w.str(res.WorkerID)
	w.blob(res.Output)
	w.str(res.Err)
	w.str(res.ErrStage)
	w.str(res.ErrTrace)
	w.i64(int64(res.Elapsed))
}

func wireGetResult(r *wireReader) Result {
	var res Result
	res.TaskID = r.str()
	res.JobID = r.str()
	res.WorkerID = r.str()
	res.Output = r.blob()
	res.Err = r.str()
	res.ErrStage = r.str()
	res.ErrTrace = r.str()
	res.Elapsed = time.Duration(r.i64())
	return res
}

func wirePutHistogram(w *wireWriter, h *obs.HistogramSnapshot) {
	w.i64(h.Count)
	w.f64(h.Sum)
	w.f64s(h.Bounds)
	w.i64s(h.Counts)
	w.f64(h.P50)
	w.f64(h.P90)
	w.f64(h.P99)
}

func wireGetHistogram(r *wireReader) obs.HistogramSnapshot {
	var h obs.HistogramSnapshot
	h.Count = r.i64()
	h.Sum = r.f64()
	h.Bounds = r.f64s()
	h.Counts = r.i64s()
	h.P50 = r.f64()
	h.P90 = r.f64()
	h.P99 = r.f64()
	return h
}

func wirePutStats(w *wireWriter, s *WorkerStats) {
	w.i64(s.TasksExecuted)
	w.i64(s.TasksFailed)
	w.i64(s.BytesIn)
	w.i64(s.BytesOut)
	w.i64(int64(s.Goroutines))
	w.u64(s.HeapBytes)
	w.i64(s.UptimeMs)
	wirePutHistogram(w, &s.Exec)
}

func wireGetStats(r *wireReader) WorkerStats {
	var s WorkerStats
	s.TasksExecuted = r.i64()
	s.TasksFailed = r.i64()
	s.BytesIn = r.i64()
	s.BytesOut = r.i64()
	s.Goroutines = int(r.i64())
	s.HeapBytes = r.u64()
	s.UptimeMs = r.i64()
	s.Exec = wireGetHistogram(r)
	return s
}

func wirePutSpan(w *wireWriter, s *RemoteSpan) {
	w.str(s.TraceID)
	w.i64(s.Parent)
	w.str(s.Name)
	w.str(s.TaskID)
	w.i64(s.StartUnixNano)
	w.i64(s.DurNs)
}

func wireGetSpan(r *wireReader) RemoteSpan {
	var s RemoteSpan
	s.TraceID = r.str()
	s.Parent = r.i64()
	s.Name = r.str()
	s.TaskID = r.str()
	s.StartUnixNano = r.i64()
	s.DurNs = r.i64()
	return s
}

// sortedKeys returns map keys in sorted order so telemetry encoding is
// deterministic (golden frames are byte-stable across runs).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wirePutTelemetry(w *wireWriter, t *obs.TelemetryShip) {
	w.i64(t.Seq)
	w.bool(t.Full)
	w.u64(uint64(len(t.Counters)))
	for _, k := range sortedKeys(t.Counters) {
		w.str(k)
		w.i64(t.Counters[k])
	}
	w.u64(uint64(len(t.Gauges)))
	for _, k := range sortedKeys(t.Gauges) {
		w.str(k)
		w.f64(t.Gauges[k])
	}
	w.u64(uint64(len(t.Hists)))
	for _, k := range sortedKeys(t.Hists) {
		h := t.Hists[k]
		w.str(k)
		w.f64s(h.Bounds)
		w.i64s(h.Counts)
		w.i64(h.Count)
		w.f64(h.Sum)
	}
}

func wireGetTelemetry(r *wireReader) *obs.TelemetryShip {
	t := &obs.TelemetryShip{}
	t.Seq = r.i64()
	t.Full = r.bool()
	if n := r.count(2); n > 0 {
		t.Counters = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k := r.str()
			t.Counters[k] = r.i64()
		}
	}
	if n := r.count(2); n > 0 {
		t.Gauges = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := r.str()
			t.Gauges[k] = r.f64()
		}
	}
	if n := r.count(2); n > 0 {
		t.Hists = make(map[string]obs.HistogramDelta, n)
		for i := 0; i < n; i++ {
			k := r.str()
			var h obs.HistogramDelta
			h.Bounds = r.f64s()
			h.Counts = r.i64s()
			h.Count = r.i64()
			h.Sum = r.f64()
			t.Hists[k] = h
		}
	}
	return t
}

func wirePutFreeze(w *wireWriter, f *FreezeRequest) {
	w.i64(f.Seq)
	w.str(f.Trigger)
	w.str(f.Detail)
	w.i64(f.WindowNs)
}

func wireGetFreeze(r *wireReader) *FreezeRequest {
	return &FreezeRequest{Seq: r.i64(), Trigger: r.str(), Detail: r.str(), WindowNs: r.i64()}
}

func wirePutDump(w *wireWriter, d *FlightDump) {
	w.i64(d.Seq)
	w.str(d.Host)
	w.str(d.Trigger)
	w.str(d.Detail)
	w.u64(uint64(len(d.Events)))
	for i := range d.Events {
		e := &d.Events[i]
		w.str(e.Ring)
		w.str(e.Probe)
		w.i64(e.T0)
		w.i64(e.T1)
		w.i64(e.Arg)
		w.i64(e.Parent)
	}
}

func wireGetDump(r *wireReader) *FlightDump {
	d := &FlightDump{}
	d.Seq = r.i64()
	d.Host = r.str()
	d.Trigger = r.str()
	d.Detail = r.str()
	if n := r.count(6); n > 0 {
		d.Events = make([]flightrec.Event, n)
		for i := range d.Events {
			e := &d.Events[i]
			e.Ring = r.str()
			e.Probe = r.str()
			e.T0 = r.i64()
			e.T1 = r.i64()
			e.Arg = r.i64()
			e.Parent = r.i64()
		}
	}
	return d
}

// --- whole-message encode/decode ----------------------------------------

// wireFlags computes the presence bitmap for m.
func wireFlags(m *message) uint64 {
	var f uint64
	if m.WorkerID != "" {
		f |= wfWorkerID
	}
	if m.SentUnixNano != 0 {
		f |= wfSent
	}
	if m.TaskDelayNs != 0 {
		f |= wfTaskDelay
	}
	if m.CRC != 0 {
		f |= wfCRC
	}
	if m.Batch != 0 {
		f |= wfBatch
	}
	if m.Task != nil {
		f |= wfTask
	}
	if m.Result != nil {
		f |= wfResult
	}
	if m.Stats != nil {
		f |= wfStats
	}
	if len(m.Spans) > 0 {
		f |= wfSpans
	}
	if m.Telemetry != nil {
		f |= wfTelemetry
	}
	if m.Freeze != nil {
		f |= wfFreeze
	}
	if m.Dump != nil {
		f |= wfDump
	}
	if len(m.Tasks) > 0 {
		f |= wfTasks
	}
	if len(m.Results) > 0 {
		f |= wfResults
	}
	return f
}

// appendWireFrame encodes m as one complete binary frame (header
// included) appended to dst. It fails only for a message type the format
// has no byte for.
func appendWireFrame(dst []byte, m *message) ([]byte, error) {
	mt, ok := wireTypeOf[m.Type]
	if !ok {
		return dst, fmt.Errorf("workqueue: no binary encoding for message type %q", m.Type)
	}
	// Reserve header room, encode the body after it, then write the
	// header immediately before the body — one buffer, no copy.
	base := len(dst)
	for len(dst) < base+wireHeaderRoom {
		dst = append(dst, 0)
	}
	w := wireWriter{b: dst}
	w.byte(mt)
	flags := wireFlags(m)
	w.u64(flags)
	if flags&wfWorkerID != 0 {
		w.str(m.WorkerID)
	}
	if flags&wfSent != 0 {
		w.i64(m.SentUnixNano)
	}
	if flags&wfTaskDelay != 0 {
		w.i64(m.TaskDelayNs)
	}
	if flags&wfCRC != 0 {
		w.u32(m.CRC)
	}
	if flags&wfBatch != 0 {
		w.i64(int64(m.Batch))
	}
	if flags&wfTask != 0 {
		wirePutTask(&w, m.Task)
	}
	if flags&wfResult != 0 {
		wirePutResult(&w, m.Result)
	}
	if flags&wfStats != 0 {
		wirePutStats(&w, m.Stats)
	}
	if flags&wfSpans != 0 {
		w.u64(uint64(len(m.Spans)))
		for i := range m.Spans {
			wirePutSpan(&w, &m.Spans[i])
		}
	}
	if flags&wfTelemetry != 0 {
		wirePutTelemetry(&w, m.Telemetry)
	}
	if flags&wfFreeze != 0 {
		wirePutFreeze(&w, m.Freeze)
	}
	if flags&wfDump != 0 {
		wirePutDump(&w, m.Dump)
	}
	if flags&wfTasks != 0 {
		w.u64(uint64(len(m.Tasks)))
		for i := range m.Tasks {
			wirePutTask(&w, &m.Tasks[i])
		}
	}
	if flags&wfResults != 0 {
		w.u64(uint64(len(m.Results)))
		for i := range m.Results {
			wirePutResult(&w, &m.Results[i])
		}
	}
	bodyLen := len(w.b) - base - wireHeaderRoom
	var hdr [wireHeaderRoom]byte
	hdr[0] = WireMagic
	hdr[1] = wireVersion
	n := binary.PutUvarint(hdr[2:], uint64(bodyLen))
	// Slide the header flush against the body: the frame starts at
	// base+wireHeaderRoom-(2+n).
	start := base + wireHeaderRoom - (2 + n)
	copy(w.b[start:], hdr[:2+n])
	if start > base {
		// Shift the frame down so it begins at base (callers append
		// frames back to back).
		copy(w.b[base:], w.b[start:])
		w.b = w.b[:len(w.b)-(start-base)]
	}
	return w.b, nil
}

// decodeWireBody decodes one binary frame body (header already consumed).
func decodeWireBody(body []byte) (message, error) {
	r := wireReader{b: body}
	mt := r.byte()
	if int(mt) >= len(wireTypeName) || wireTypeName[mt] == "" {
		return message{}, fmt.Errorf("%w: unknown message type %d", ErrWireFormat, mt)
	}
	var m message
	m.Type = wireTypeName[mt]
	flags := r.u64()
	if flags&wfWorkerID != 0 {
		m.WorkerID = r.str()
	}
	if flags&wfSent != 0 {
		m.SentUnixNano = r.i64()
	}
	if flags&wfTaskDelay != 0 {
		m.TaskDelayNs = r.i64()
	}
	if flags&wfCRC != 0 {
		m.CRC = r.u32()
	}
	if flags&wfBatch != 0 {
		m.Batch = int(r.i64())
	}
	if flags&wfTask != 0 {
		t := wireGetTask(&r)
		m.Task = &t
	}
	if flags&wfResult != 0 {
		res := wireGetResult(&r)
		m.Result = &res
	}
	if flags&wfStats != 0 {
		s := wireGetStats(&r)
		m.Stats = &s
	}
	if flags&wfSpans != 0 {
		if n := r.count(6); n > 0 {
			m.Spans = make([]RemoteSpan, n)
			for i := range m.Spans {
				m.Spans[i] = wireGetSpan(&r)
			}
		}
	}
	if flags&wfTelemetry != 0 {
		m.Telemetry = wireGetTelemetry(&r)
	}
	if flags&wfFreeze != 0 {
		m.Freeze = wireGetFreeze(&r)
	}
	if flags&wfDump != 0 {
		m.Dump = wireGetDump(&r)
	}
	if flags&wfTasks != 0 {
		// A task is at least 8 bytes (two strings, a blob, five varints,
		// a trace flag); the floor bounds allocation from a corrupt count.
		if n := r.count(8); n > 0 {
			m.Tasks = make([]Task, n)
			for i := range m.Tasks {
				m.Tasks[i] = wireGetTask(&r)
			}
		}
	}
	if flags&wfResults != 0 {
		if n := r.count(8); n > 0 {
			m.Results = make([]Result, n)
			for i := range m.Results {
				m.Results[i] = wireGetResult(&r)
			}
		}
	}
	if r.err != nil {
		return message{}, obs.Wrap(fmt.Errorf("%w (type %q)", ErrWireFormat, m.Type))
	}
	if r.remaining() != 0 {
		return message{}, obs.Wrap(fmt.Errorf("%w: %d trailing bytes (type %q)", ErrWireFormat, r.remaining(), m.Type))
	}
	return m, nil
}

// WireFrameSplit reports how transport-level wrappers (the chaos
// injection layer) should cut buf at the next frame boundary. For a
// buffered byte stream beginning with a binary frame header it returns
// the total frame length once enough bytes are present: (0, false) means
// the header or body is still incomplete — wait for more bytes. A header
// that is present but invalid (bad varint, absurd length) returns
// (len(buf), true): the stream is already garbage, flush it through and
// let the codec reject it.
func WireFrameSplit(buf []byte) (int, bool) {
	if len(buf) == 0 || buf[0] != WireMagic {
		return 0, false
	}
	if len(buf) < 3 {
		return 0, false
	}
	n, used := binary.Uvarint(buf[2:])
	if used == 0 {
		if len(buf) >= 2+binary.MaxVarintLen64 {
			return len(buf), true // unterminated varint: garbage
		}
		return 0, false
	}
	if used < 0 || n > maxFrameBytes {
		return len(buf), true // overflow or absurd length: garbage
	}
	total := 2 + used + int(n)
	if len(buf) < total {
		return 0, false
	}
	return total, true
}

// ShiftBinaryStamps rewrites the absolute clock stamps of one complete
// binary frame by deltaNs — the binary counterpart of the chaos layer's
// JSON regex rewrite. Shifted fields mirror the JSON path exactly: the
// envelope and task send stamps ("sent_ns") and remote span starts
// ("start_unix_ns"). Relative fields (task_delay_ns, durations, timeout
// budgets) and the CRC-guarded identity fields are untouched, so a
// skewed frame still passes its checksum — skew stays a timing
// condition, not corruption. A frame that does not decode is returned
// unchanged (it is already garbage; the codec will reject it).
func ShiftBinaryStamps(frame []byte, deltaNs int64) []byte {
	total, ok := WireFrameSplit(frame)
	if !ok || total != len(frame) || frame[1] != wireVersion {
		return frame
	}
	_, used := binary.Uvarint(frame[2:])
	m, err := decodeWireBody(frame[2+used:])
	if err != nil {
		return frame
	}
	shift := func(v *int64) {
		if *v != 0 {
			*v += deltaNs
		}
	}
	shift(&m.SentUnixNano)
	if m.Task != nil {
		shift(&m.Task.SentUnixNano)
	}
	for i := range m.Tasks {
		shift(&m.Tasks[i].SentUnixNano)
	}
	for i := range m.Spans {
		shift(&m.Spans[i].StartUnixNano)
	}
	out, err := appendWireFrame(nil, &m)
	if err != nil {
		return frame
	}
	return out
}
