package workqueue

import (
	"errors"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// TestHeartbeatRoundTrip: the minimal liveness message survives the wire
// unchanged.
func TestHeartbeatRoundTrip(t *testing.T) {
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	go func() {
		_ = ca.send(message{Type: msgHeartbeat, WorkerID: "w"})
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgHeartbeat || m.WorkerID != "w" || m.Stats != nil {
		t.Errorf("heartbeat round trip = %+v", m)
	}
}

// TestStatsRoundTrip: a stats message carries the full snapshot,
// including the exec-time histogram layout.
func TestStatsRoundTrip(t *testing.T) {
	h := obs.NewRegistry().Histogram("exec_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(50)
	sent := WorkerStats{
		TasksExecuted: 7,
		TasksFailed:   1,
		BytesIn:       1024,
		BytesOut:      2048,
		Goroutines:    9,
		HeapBytes:     1 << 20,
		UptimeMs:      12345,
		Exec:          h.Snapshot(),
	}

	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	go func() {
		_ = ca.send(message{Type: msgStats, WorkerID: "w", Stats: &sent})
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgStats || m.Stats == nil {
		t.Fatalf("stats round trip = %+v", m)
	}
	got := *m.Stats
	if got.TasksExecuted != 7 || got.TasksFailed != 1 ||
		got.BytesIn != 1024 || got.BytesOut != 2048 ||
		got.Goroutines != 9 || got.HeapBytes != 1<<20 || got.UptimeMs != 12345 {
		t.Errorf("scalar fields lost: %+v", got)
	}
	if got.Exec.Count != 2 || got.Exec.Sum != 50.5 {
		t.Errorf("histogram summary lost: %+v", got.Exec)
	}
	if len(got.Exec.Bounds) != 3 || len(got.Exec.Counts) != 4 {
		t.Fatalf("histogram layout lost: %+v", got.Exec)
	}
	if got.Exec.Counts[0] != 1 || got.Exec.Counts[2] != 1 {
		t.Errorf("histogram buckets lost: %+v", got.Exec.Counts)
	}
}

// TestResultCarriesStage: the error_stage field survives the wire.
func TestResultCarriesStage(t *testing.T) {
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	go func() {
		_ = ca.send(message{Type: msgResult, Result: &Result{
			TaskID: "t", Err: "boom", ErrStage: StageDecode,
		}})
	}()
	m, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Result == nil || m.Result.ErrStage != StageDecode {
		t.Errorf("result stage lost: %+v", m.Result)
	}
}

// TestCodecCountsBytes: the codec's transport accounting feeds the
// worker's bytes_in/bytes_out telemetry.
func TestCodecCountsBytes(t *testing.T) {
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := cb.recv(); err != nil {
			t.Errorf("recv: %v", err)
		}
	}()
	if err := ca.send(message{Type: msgHello, WorkerID: "counted"}); err != nil {
		t.Fatal(err)
	}
	<-done
	out := ca.bytesOut.Load()
	in := cb.bytesIn.Load()
	if out <= 0 || in <= 0 {
		t.Errorf("byte counters: out=%d in=%d, want both > 0", out, in)
	}
	if out != in {
		t.Errorf("sender counted %d bytes, receiver %d", out, in)
	}
}

// TestTaskErrorFormatAndUnwrap: provenance errors name worker, task and
// stage, and still unwrap to the root cause.
func TestTaskErrorFormatAndUnwrap(t *testing.T) {
	root := errors.New("kaput")
	te := newTaskError("w-3", "t-9", StageError(StageEncode, root))
	if te.WorkerID != "w-3" || te.TaskID != "t-9" || te.Stage != StageEncode {
		t.Errorf("provenance fields = %+v", te)
	}
	want := "worker w-3: task t-9: encode output: kaput"
	if te.Error() != want {
		t.Errorf("Error() = %q, want %q", te.Error(), want)
	}
	if !errors.Is(te, root) {
		t.Errorf("TaskError does not unwrap to the root cause")
	}
}

// TestStageErrorDefaultsToExec: untagged executor failures are
// attributed to the exec stage.
func TestStageErrorDefaultsToExec(t *testing.T) {
	te := newTaskError("w", "t", errors.New("plain"))
	if te.Stage != StageExec {
		t.Errorf("untagged stage = %q, want %q", te.Stage, StageExec)
	}
	if StageError(StageDecode, nil) != nil {
		t.Errorf("StageError(nil) must be nil")
	}
}

// TestWorkerStatsSnapshotFields: the worker's self-measurement is
// internally consistent.
func TestWorkerStatsSnapshotFields(t *testing.T) {
	inst := newWorkerInstruments(obs.NewRegistry())
	inst.start = time.Now().Add(-time.Second)
	inst.cExecuted.Add(3)
	inst.hExec.Observe(4)
	a, _ := pipePair()
	c := newCodec(a)
	defer func() { _ = c.close() }()
	s := inst.snapshot(c)
	if s.TasksExecuted != 3 || s.Exec.Count != 1 {
		t.Errorf("snapshot counters = %+v", s)
	}
	if s.Goroutines <= 0 || s.HeapBytes == 0 {
		t.Errorf("runtime fields empty: %+v", s)
	}
	if s.UptimeMs < 900 {
		t.Errorf("uptime = %dms, want ~1000", s.UptimeMs)
	}
}
