package workqueue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
)

// JobStats tracks per-job progress for the feedback control loop.
type JobStats struct {
	JobID          string
	Submitted      int
	Completed      int
	Failed         int
	FirstSubmit    time.Time
	LastCompletion time.Time
	// ExecTime is the cumulative worker-side execution time.
	ExecTime time.Duration
}

// Done reports whether every submitted task has finished.
func (js JobStats) Done() bool { return js.Submitted > 0 && js.Completed+js.Failed == js.Submitted }

// MasterConfig tunes a Master.
type MasterConfig struct {
	// Seed drives the weighted-random job picker (deterministic tests).
	Seed int64
	// SchedShards sets how many lock shards the task pool and the
	// master's per-job bookkeeping are partitioned into. <= 0 picks
	// GOMAXPROCS. One shard reproduces the old single-mutex behavior.
	SchedShards int
	// ResultBuffer sizes the Results channel. Default 1.
	ResultBuffer int
	// MaxRetries bounds how many times a task lost to worker failure is
	// requeued before it is quarantined and reported as failed. Zero
	// means retry indefinitely (suits scavenged pools where eviction is
	// routine; cap it when a poisonous task could crash workers
	// repeatedly — the quarantine then keeps the task inspectable via
	// Quarantined instead of letting it crash-loop the cluster).
	MaxRetries int
	// RequeueBackoff paces the re-scheduling of tasks lost to worker
	// failure. The zero value applies the default schedule (5ms base,
	// doubling to a 2s cap, 20% jitter); a negative Base restores the
	// old immediate requeue. Without backoff a crash-looping worker
	// spins a hot assign/lose/requeue cycle at CPU speed.
	RequeueBackoff BackoffConfig
	// TaskTimeout bounds how long the master waits for an assigned
	// task's result before it severs the worker connection and requeues
	// the task (zero = wait forever). It also rides the wire as the
	// worker's execution budget (at 80%, so a cooperative worker
	// self-reports a timeout result before the master gives up on it).
	// Required for recovery from silently dropped frames: a lost task
	// or result message otherwise stalls the handler with the worker
	// still heartbeating happily. With batching it is a progress
	// deadline: the clock restarts on every ack, so a batch only times
	// out when the worker stops producing results, not because the batch
	// as a whole outlasted one task's budget.
	TaskTimeout time.Duration
	// BatchSize enables task batching: the master coalesces up to this
	// many queued tasks into one task-batch frame per worker and keeps a
	// pipelined window of two batches un-acked, so the worker's next
	// batch is already in its socket buffer while the current one
	// executes. The effective batch is min(BatchSize, the worker
	// hello's advertised capacity). <= 1 disables batching and keeps the
	// original lock-step one-task-one-result exchange.
	BatchSize int
	// Metrics and Tracer enable telemetry (both may be nil: the master
	// then keeps no per-task timing state and every hook no-ops). Logger
	// receives structured master events (worker attach/loss, evictions,
	// task retries) tagged with worker_id/task_id/trace_id; nil disables
	// logging.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Logger  *obs.Logger
	// SuspectAfter and DeadAfter enable heartbeat-based liveness: a
	// worker silent for SuspectAfter is marked suspect, silent for
	// DeadAfter it is marked dead — its connection is severed and any
	// in-flight task requeued. Zero disables the monitor (a hung worker
	// is then only detected when its connection errors). Only enable
	// liveness when workers heartbeat (Worker.HeartbeatEvery > 0) at an
	// interval comfortably shorter than SuspectAfter, or idle workers
	// will be evicted for silence.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// StragglerFactor flags workers whose EWMA exec time exceeds this
	// multiple of the cluster median (<= 0 uses the default of 2).
	StragglerFactor float64
	// Admission enables capacity-model admission control: AdmitJob then
	// predicts each offered job's completion against its deadline and
	// refuses (or sheds) jobs the pool could not finish in time. Nil
	// leaves the gate open.
	Admission *AdmissionConfig
	// Telemetry, when set, retains the workers' shipped metrics snapshots
	// as labeled time series (the /query endpoint's backing store). Each
	// worker's TelemetryShip deltas are applied under a host=<worker-id>
	// label on arrival.
	Telemetry *tsdb.Store
	// FlightRec overrides the recorder whose trips cascade into cross-host
	// dump collection (default: the process-global flightrec.Active()).
	FlightRec *flightrec.Recorder
	// ClusterDumps enables cross-host flight-dump collection: on a trip,
	// the master broadcasts FreezeRings to every attached worker, gathers
	// their ring snapshots, applies per-worker clock-skew correction and
	// writes one merged multi-host Chrome trace. Nil disables collection
	// (worker dumps are then ignored).
	ClusterDumps *ClusterDumpConfig
}

// Master owns the task pool and serves workers. It mirrors the Work Queue
// master of the paper: the Dynamic Task Manager submits tasks, workers call
// back and pull work, and results stream out of Results().
type Master struct {
	sched      *scheduler
	results    chan Result
	maxRetries int
	// cluster is the per-worker health registry; suspectAfter/deadAfter
	// parameterize its liveness monitor (zero = disabled).
	cluster      *cluster
	suspectAfter time.Duration
	deadAfter    time.Duration
	taskTimeout  time.Duration
	batchSize    int
	backoff      BackoffConfig
	// admission is the capacity-model job gate; nil = admit everything.
	admission *admissionGate

	// Telemetry handles; all nil when telemetry is off.
	tracer       *obs.Tracer
	logger       *obs.Logger
	cSubmitted   *obs.Counter
	cCompleted   *obs.Counter
	cFailed      *obs.Counter
	cRetries     *obs.Counter
	cTimeouts    *obs.Counter
	cQuarantined *obs.Counter
	gQueue       *obs.Gauge
	gWorkers     *obs.Gauge
	hExec        *obs.Histogram
	hWait        *obs.Histogram

	// fr probes the assign/requeue/ack control loop into the flight
	// recorder; handler goroutines share it (the ring cursor is atomic).
	fr *flightrec.Ring

	// telemetry is the retained time-series store fed by worker ships;
	// nil when the telemetry plane is off.
	telemetry *tsdb.Store
	// Cross-host dump collection state (clusterdump.go). clusterRec is
	// the master-side recorder whose events (and trips) participate.
	clusterDumps *ClusterDumpConfig
	clusterRec   *flightrec.Recorder
	dumpMu       sync.Mutex
	dumpSeq      int64
	dumpPending  *dumpCollector
	dumpLast     time.Time
	dumpHistory  []ClusterDumpInfo

	// shards partitions all per-job and per-task bookkeeping by job hash
	// (the same hash the scheduler shards by), so a completion ack only
	// ever contends with traffic for jobs on its own shard. closed is
	// atomic: the hot paths read it without any lock.
	shards []masterShard
	closed atomic.Bool

	wg sync.WaitGroup
}

// masterShard is one lock domain of the master's bookkeeping: job stats,
// the in-flight window, retry attempts, backoff timers, the poison-task
// quarantine and telemetry state for every job hashing to it.
type masterShard struct {
	mu       sync.Mutex
	rng      *rand.Rand // jitter source for requeue backoff; guarded by mu
	stats    map[string]*JobStats
	inflight map[string]Task // taskID -> task, for requeue on worker loss
	attempts map[string]int  // taskID -> requeues so far
	// pending holds the backoff timers of tasks waiting to re-enter the
	// queue after a worker loss; quarantine holds tasks that exhausted
	// their retry budget (capped at quarantineRetention per shard).
	pending    map[string]*time.Timer
	quarantine map[string]*QuarantinedTask
	// queuedAt / taskSpans back the queue-wait histogram and per-task
	// spans; they stay nil (and untouched) without telemetry. taskSpans
	// holds each in-flight task's currently open span (queue or exec).
	queuedAt  map[string]time.Time
	taskSpans map[string]*obs.Span
	_         [24]byte
}

// shardFor maps a job to its bookkeeping shard.
func (m *Master) shardFor(jobID string) *masterShard {
	return &m.shards[shardIndex(jobID, len(m.shards))]
}

// NewMaster creates a master.
func NewMaster(cfg MasterConfig) *Master {
	buf := cfg.ResultBuffer
	if buf <= 0 {
		buf = 1
	}
	m := &Master{
		sched:        newScheduler(cfg.Seed, cfg.SchedShards),
		results:      make(chan Result, buf),
		maxRetries:   cfg.MaxRetries,
		cluster:      newCluster(cfg.Metrics, cfg.StragglerFactor),
		suspectAfter: cfg.SuspectAfter,
		deadAfter:    cfg.DeadAfter,
		taskTimeout:  cfg.TaskTimeout,
		batchSize:    cfg.BatchSize,
		backoff:      cfg.RequeueBackoff.withDefaults(5*time.Millisecond, 2*time.Second),
		fr:           flightrec.Shared("master"),
	}
	// Bookkeeping shards mirror the scheduler's so a job's queue entries
	// and its in-flight/quarantine state share one lock domain. Each
	// shard carries its own jitter rng: requeue backoff never serializes
	// against dispatch on another shard.
	m.shards = make([]masterShard, len(m.sched.shards))
	for i := range m.shards {
		sh := &m.shards[i]
		sh.rng = rand.New(rand.NewSource(cfg.Seed + 1 + int64(i)))
		sh.stats = make(map[string]*JobStats)
		sh.inflight = make(map[string]Task)
		sh.attempts = make(map[string]int)
		sh.pending = make(map[string]*time.Timer)
		sh.quarantine = make(map[string]*QuarantinedTask)
	}
	if cfg.RequeueBackoff.Jitter == 0 {
		m.backoff.Jitter = 0.2
	}
	if reg := cfg.Metrics; reg != nil {
		m.cSubmitted = reg.Counter("wq_tasks_submitted_total")
		m.cCompleted = reg.Counter("wq_tasks_completed_total")
		m.cFailed = reg.Counter("wq_tasks_failed_total")
		m.cRetries = reg.Counter("wq_task_retries_total")
		m.cTimeouts = reg.Counter("wq_task_timeouts_total")
		m.cQuarantined = reg.Counter("wq_tasks_quarantined_total")
		m.gQueue = reg.Gauge("wq_queue_depth")
		m.gWorkers = reg.Gauge("wq_workers")
		m.hExec = reg.Histogram("wq_task_exec_ms", nil)
		m.hWait = reg.Histogram("wq_task_queue_wait_ms", nil)
	}
	m.tracer = cfg.Tracer
	m.logger = cfg.Logger
	if cfg.Admission != nil {
		m.admission = newAdmissionGate(*cfg.Admission, cfg.Metrics, cfg.Logger)
	}
	m.sched.instrument(cfg.Metrics)
	for i := range m.shards {
		if cfg.Metrics != nil || cfg.Tracer != nil {
			m.shards[i].queuedAt = make(map[string]time.Time)
		}
		if cfg.Tracer != nil {
			m.shards[i].taskSpans = make(map[string]*obs.Span)
		}
	}
	m.telemetry = cfg.Telemetry
	if cfg.ClusterDumps != nil {
		cd := *cfg.ClusterDumps
		m.clusterDumps = &cd
		rec := cfg.FlightRec
		if rec == nil {
			rec = flightrec.Active()
		}
		m.clusterRec = rec
		// Cascade any local trip (deadline-miss burst, SLO burn, manual)
		// into a cluster-wide collection. The hook runs on the recorder's
		// dump goroutine, after the local dump thaws the rings.
		rec.SetOnTrip(func(trigger, detail string) {
			_, _ = m.collectClusterDump(trigger, detail, nil)
		})
	}
	return m
}

// Submit adds a task to the pool.
func (m *Master) Submit(t Task) error {
	if m.closed.Load() {
		return errors.New("workqueue: master is shut down")
	}
	sh := m.shardFor(t.JobID)
	sh.mu.Lock()
	js, ok := sh.stats[t.JobID]
	if !ok {
		js = &JobStats{JobID: t.JobID, FirstSubmit: time.Now()}
		sh.stats[t.JobID] = js
	}
	js.Submitted++
	m.markQueuedLocked(sh, t)
	sh.mu.Unlock()
	m.cSubmitted.Inc()
	m.sched.push(t)
	m.gQueue.SetInt(m.sched.len())
	return nil
}

// markQueuedLocked opens the task's queue-wait measurement (and span).
// Callers hold sh.mu for the task's shard.
func (m *Master) markQueuedLocked(sh *masterShard, t Task) {
	if sh.queuedAt != nil {
		sh.queuedAt[t.ID] = time.Now()
	}
	if sh.taskSpans != nil {
		s := m.tracer.NewSpan("queue "+t.ID, t.Span)
		s.SetAttr("job", t.JobID)
		s.SetTrace(t.Trace.traceID())
		sh.taskSpans[t.ID] = s
	}
}

// SetJobPriority tunes the Local Control Knob for one job.
func (m *Master) SetJobPriority(jobID string, p float64) {
	m.sched.setPriority(jobID, p)
}

// Results is the stream of task results. It is closed by Shutdown.
func (m *Master) Results() <-chan Result { return m.results }

// Stats returns a snapshot of the named job's progress (zero value when
// unknown).
func (m *Master) Stats(jobID string) JobStats {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if js, ok := sh.stats[jobID]; ok {
		return *js
	}
	return JobStats{JobID: jobID}
}

// AllStats snapshots every job across all shards.
func (m *Master) AllStats() []JobStats {
	var out []JobStats
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, js := range sh.stats {
			out = append(out, *js)
		}
		sh.mu.Unlock()
	}
	return out
}

// QueueLen reports tasks waiting for a worker.
func (m *Master) QueueLen() int { return m.sched.len() }

// Release asks a worker to exit gracefully: it finishes its current task
// (if any), then receives a shutdown instead of new work. Used by the
// elastic pool to shrink without preempting in-flight tasks. Unknown
// worker IDs are ignored.
func (m *Master) Release(workerID string) {
	if wake := m.cluster.release(workerID); wake != nil {
		wake()
	}
}

// WorkerCount reports currently attached workers.
func (m *Master) WorkerCount() int {
	return m.cluster.count()
}

// Serve accepts worker connections from l until ctx is cancelled or the
// listener fails. Each connection is handled on its own goroutine.
func (m *Master) Serve(ctx context.Context, l net.Listener) error {
	stop := context.AfterFunc(ctx, func() { _ = l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("workqueue: accept: %w", err)
		}
		go func() { _ = m.HandleWorker(ctx, conn) }()
	}
}

// HandleWorker runs the master side of the protocol for one worker
// connection until the worker disconnects, is evicted by the liveness
// monitor, or ctx is cancelled. In-process workers attach through
// net.Pipe with the identical protocol.
//
// Three goroutines cooperate per connection: a reader that drains every
// incoming message (so heartbeats and stats are seen even while the
// worker executes or idles), an optional liveness monitor that severs
// the connection when the worker goes silent past DeadAfter, and this
// handler loop, which assigns tasks and waits for their results.
func (m *Master) HandleWorker(ctx context.Context, conn net.Conn) error {
	m.wg.Add(1)
	defer m.wg.Done()
	c := newCodec(conn)
	defer func() { _ = c.close() }()

	hello, err := c.recv()
	if err != nil {
		return obs.Wrap(fmt.Errorf("workqueue: worker hello: %w", err))
	}
	if hello.Type != msgHello || hello.WorkerID == "" {
		return fmt.Errorf("workqueue: bad hello %+v", hello)
	}
	workerID := hello.WorkerID
	lg := m.logger.With(obs.WorkerID(workerID))
	wctx, wake := context.WithCancel(ctx)
	defer wake()
	entry, err := m.cluster.attach(workerID, wake, conn, c)
	if err != nil {
		return err
	}
	lg.Info("worker attached")
	m.gWorkers.SetInt(m.cluster.count())
	defer func() {
		m.cluster.detach(workerID, "disconnected")
		lg.Info("worker detached")
		m.gWorkers.SetInt(m.cluster.count())
	}()

	// Batch negotiation: the worker's hello advertises the largest task
	// batch it accepts per frame; the master dispatches up to the smaller
	// of that and its own BatchSize. Either side at <= 0 keeps the
	// original lock-step protocol (a window of one single-task frame).
	// With batching the un-acked window is two batches deep, so the next
	// batch is already in the worker's socket buffer while the current
	// one executes — the pipelining that hides the dispatch round trip.
	batchMax := m.batchSize
	if hello.Batch < batchMax {
		batchMax = hello.Batch
	}
	if batchMax < 1 {
		batchMax = 1
	}
	maxInflight := batchMax
	if batchMax > 1 {
		maxInflight = 2 * batchMax
	}

	// This connection's dispatch endpoint: while idle the handler parks on
	// the waiter's private one-slot channel and a push hands it the task
	// directly — no shard lock, no broadcast storm. The cluster attach
	// sequence staggers each handler's steal-scan start shard.
	w := m.sched.getWaiter()
	w.preferred = uint32(entry.seq)
	defer m.sched.putWaiter(w)

	// Reader: demultiplex the worker's messages. Results flow to the
	// handler loop; heartbeats and stats feed the health registry
	// directly. Any receive error (including the liveness monitor or
	// handler closing the connection) lands in readErr and wakes the
	// handler if it is blocked waiting for a task. handlerDone is the
	// reader's escape hatch for a stray result nobody will consume —
	// it must not race with normal delivery, so it closes only when this
	// handler returns, not on mere context cancellation.
	//
	// The results channel capacity covers the whole pipelined window: a
	// conforming worker never has more un-acked result frames than
	// un-acked tasks, so the reader can always forward without blocking —
	// the property that keeps the handler free to send the next batch
	// while results stream back (on net.Pipe a blocked reader would
	// deadlock against a blocked send).
	results := make(chan []Result, maxInflight+1)
	readErr := make(chan error, 1)
	handlerDone := make(chan struct{})
	defer close(handlerDone)
	go func() {
		for {
			msg, err := c.recv()
			if err != nil {
				readErr <- err
				wake()
				return
			}
			// Every incoming message carries the worker's clock stamps and
			// possibly buffered stage spans; fold the former into the skew
			// estimate first so the ingested spans use the freshest offset.
			var d1 int64
			if msg.SentUnixNano != 0 {
				d1 = time.Now().UnixNano() - msg.SentUnixNano
			}
			m.cluster.observeClock(workerID, d1, msg.TaskDelayNs)
			m.ingestRemoteSpans(workerID, msg.Spans)
			if msg.Telemetry != nil && m.telemetry != nil {
				// Shipped metrics snapshot (piggybacked on the stats
				// cadence): fold the deltas into the retained time-series
				// store under this worker's host label.
				m.telemetry.ApplyShip(workerID, msg.Telemetry, time.Now())
			}
			switch msg.Type {
			case msgHeartbeat:
				m.cluster.heartbeat(workerID)
			case msgStats:
				if msg.Stats != nil {
					m.cluster.recordStats(workerID, msg.Stats)
				} else {
					m.cluster.heartbeat(workerID)
				}
			case msgFlightDump:
				// Either the answer to our FreezeRings broadcast or a
				// worker-initiated cluster trip; a dump is also proof of
				// life for the liveness monitor.
				m.cluster.heartbeat(workerID)
				m.handleFlightDump(workerID, msg.Dump)
			case msgResult:
				if msg.Result == nil {
					readErr <- fmt.Errorf("workqueue: result message without result")
					wake()
					return
				}
				select {
				case results <- []Result{*msg.Result}:
				case <-handlerDone:
					return
				}
			case msgResultBatch:
				if len(msg.Results) == 0 {
					readErr <- fmt.Errorf("workqueue: result-batch message without results")
					wake()
					return
				}
				select {
				case results <- msg.Results:
				case <-handlerDone:
					return
				}
			default:
				// An old or foreign worker speaking another dialect is
				// rejected, not fatal: drop the connection, keep serving.
				readErr <- fmt.Errorf("workqueue: unexpected message %q", msg.Type)
				wake()
				return
			}
		}
	}()

	// Liveness monitor: evict the worker when it goes silent. Closing
	// the connection errors the reader, which requeues any in-flight
	// task through the normal worker-loss path below.
	if m.deadAfter > 0 || m.suspectAfter > 0 {
		monitorStop := make(chan struct{})
		defer close(monitorStop)
		go func() {
			t := time.NewTicker(livenessTick(m.suspectAfter, m.deadAfter))
			defer t.Stop()
			for {
				select {
				case <-monitorStop:
					return
				case <-t.C:
					if m.cluster.checkLiveness(workerID, m.suspectAfter, m.deadAfter) == WorkerDead {
						lg.Warn("worker evicted: heartbeat timeout")
						_ = conn.Close()
						return
					}
				}
			}
		}()
	}

	// sendShutdown asks the worker to exit, then waits (bounded) for the
	// reader to hit EOF: the worker flushes any still-buffered stage spans
	// on a final heartbeat before closing, and returning earlier would
	// sever the connection under that flush.
	sendShutdown := func() {
		_ = c.send(message{Type: msgShutdown})
		select {
		case <-readErr:
		case <-time.After(time.Second):
		}
	}
	// outstanding is the dispatch-ordered window of un-acked tasks. The
	// worker executes frames in order and each frame's tasks in order, so
	// the head of the window is always the next expected result; anything
	// else is a protocol violation that severs the connection.
	type sentTask struct {
		task   Task
		sentAt time.Time
	}
	var outstanding []sentTask
	requeueOutstanding := func() {
		m.cluster.taskAborted(workerID)
		for _, st := range outstanding {
			m.requeue(st.task)
		}
		outstanding = nil
	}
	// lastAck approximates when the worker finished its previous result.
	// The transfer estimate for a batched result measures from the later
	// of its dispatch and the previous ack, so time a task spent queued
	// behind its batch-mates is not misread as wire time.
	var lastAck time.Time

	// dispatch ships one batch. Each task goes out as a stamped copy: the
	// send timestamp feeds the worker's leg of the clock-skew estimate,
	// and the rewritten TraceContext parents the worker's stage spans
	// directly under that task's exec span. A window of one task keeps
	// the original single-task frame so pre-batching peers interoperate.
	dispatch := func(batch []Task) error {
		tp := m.fr.Start()
		wires := make([]Task, len(batch))
		var payloadBytes, firstSpan int64
		sentAt := time.Now()
		for i, task := range batch {
			execSpanID := m.trackInflight(task, workerID)
			m.cluster.taskAssigned(workerID, task.ID)
			wire := task
			if task.Trace != nil && execSpanID != 0 {
				tc := *task.Trace
				tc.ParentSpanID = execSpanID
				wire.Trace = &tc
			}
			if m.taskTimeout > 0 && wire.TimeoutNs == 0 {
				// Give the worker 80% of the master-side deadline as its
				// own execution budget: a cooperative worker then
				// self-reports a timeout result before the master severs
				// the connection.
				wire.TimeoutNs = int64(m.taskTimeout) * 4 / 5
			}
			wire.SentUnixNano = sentAt.UnixNano()
			wires[i] = wire
			payloadBytes += int64(len(wire.Payload))
			if i == 0 {
				firstSpan = execSpanID
			}
			outstanding = append(outstanding, sentTask{task: task, sentAt: sentAt})
		}
		env := message{Type: msgTaskBatch, Tasks: wires}
		if batchMax == 1 {
			env = message{Type: msgTask, Task: &wires[0]}
		}
		if err := c.send(env); err != nil {
			requeueOutstanding()
			return obs.Wrap(err)
		}
		m.fr.Probe(flightrec.ProbeMasterAssign, tp, payloadBytes, firstSpan)
		return nil
	}

	// waitAck blocks for the next result frame, connection error or
	// progress deadline, consuming acks strictly in dispatch order. The
	// deadline recovers from silently lost frames: if the worker makes no
	// progress within TaskTimeout, the whole window is assumed dropped —
	// sever the connection so a late result cannot double-deliver, and
	// requeue everything un-acked.
	waitAck := func() error {
		var timer *time.Timer
		var deadline <-chan time.Time
		if m.taskTimeout > 0 {
			timer = time.NewTimer(m.taskTimeout)
			deadline = timer.C
		}
		select {
		case <-deadline:
			head := outstanding[0].task
			m.cTimeouts.Inc()
			lg.Warn("task deadline exceeded, severing worker",
				obs.TaskID(head.ID), obs.JobID(head.JobID), obs.TraceID(head.Trace.traceID()),
				obs.F("outstanding", len(outstanding)))
			_ = conn.Close()
			requeueOutstanding()
			// Wait (bounded) for the reader to observe the severed
			// connection so its error does not leak to a later handler.
			select {
			case <-readErr:
			case <-time.After(time.Second):
			}
			return fmt.Errorf("workqueue: worker %s: task %s deadline (%s) exceeded", workerID, head.ID, m.taskTimeout)
		case rs := <-results:
			if timer != nil {
				timer.Stop()
			}
			for _, r := range rs {
				if len(outstanding) == 0 || r.TaskID != outstanding[0].task.ID {
					expect := "nothing"
					if len(outstanding) > 0 {
						expect = outstanding[0].task.ID
					}
					requeueOutstanding()
					return fmt.Errorf("workqueue: worker %s answered task %s with result for %q", workerID, expect, r.TaskID)
				}
				st := outstanding[0]
				outstanding = outstanding[1:]
				// Round trip minus the worker-reported execution is the
				// wire transfer (send + result serialization + transit
				// both ways) — the measured counterpart of the WCET
				// model's transfer budget.
				from := st.sentAt
				if lastAck.After(from) {
					from = lastAck
				}
				if transfer := time.Since(from) - r.Elapsed; transfer > 0 {
					m.cluster.observeTransfer(workerID, transfer)
				}
				lastAck = time.Now()
				m.cluster.taskFinished(workerID, r)
				m.complete(r)
			}
			return nil
		case err := <-readErr:
			if timer != nil {
				timer.Stop()
			}
			head := outstanding[0].task
			requeueOutstanding()
			lg.Warn("worker lost with task in flight",
				obs.TaskID(head.ID), obs.JobID(head.JobID), obs.TraceID(head.Trace.traceID()),
				obs.Err(err), obs.ErrTrace(err))
			return obs.Wrap(fmt.Errorf("workqueue: worker %s lost: %w", workerID, err))
		}
	}

	for {
		if m.cluster.isReleased(workerID) {
			// Graceful drain: collect the acks for everything already
			// dispatched, then ask the worker to leave; no task is lost.
			for len(outstanding) > 0 {
				if err := waitAck(); err != nil {
					return err
				}
			}
			sendShutdown()
			return nil
		}
		room := maxInflight - len(outstanding)
		if room > batchMax {
			room = batchMax
		}
		var batch []Task
		if room > 0 {
			if len(outstanding) == 0 {
				// Idle: block until a task arrives, the pool closes, the
				// worker is released, or the reader fails.
				task, ok := w.next(wctx)
				if !ok {
					select {
					case err := <-readErr:
						return obs.Wrap(fmt.Errorf("workqueue: worker %s lost: %w", workerID, err))
					default:
					}
					sendShutdown()
					return nil
				}
				batch = append(batch, task)
			}
			// Fill the rest of the frame opportunistically — never
			// blocking while work is already queued or in flight.
			for len(batch) < room {
				task, ok := w.tryNext()
				if !ok {
					break
				}
				batch = append(batch, task)
			}
		}
		if len(batch) > 0 {
			if err := dispatch(batch); err != nil {
				return err
			}
			continue
		}
		// Window full, or the queue is dry with work still in flight:
		// wait for the next ack, error or deadline.
		if err := waitAck(); err != nil {
			return err
		}
	}
}

// livenessTick picks the monitor's check interval from the configured
// thresholds: fine enough to observe the suspect window, floored so a
// tight config cannot spin.
func livenessTick(suspectAfter, deadAfter time.Duration) time.Duration {
	d := suspectAfter
	if d <= 0 || (deadAfter > 0 && deadAfter < d) {
		d = deadAfter
	}
	d /= 2
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// ingestRemoteSpans merges worker-side stage spans into the master's
// tracer ring. Remote timestamps are on the worker's clock; the
// per-worker clock-skew estimate (see cluster.observeClock) shifts them
// onto the master clock so the merged timeline orders correctly. Each
// span keeps its wire-assigned parent — the master-side exec span ID the
// TraceContext carried out — and is labeled with the worker's ID as its
// process lane for the Chrome export.
func (m *Master) ingestRemoteSpans(workerID string, spans []RemoteSpan) {
	if m.tracer == nil || len(spans) == 0 {
		return
	}
	adj := m.cluster.clockAdjustNs(workerID)
	for _, rs := range spans {
		var attrs map[string]string
		if rs.TaskID != "" {
			attrs = map[string]string{"task": rs.TaskID}
		}
		m.tracer.Ingest(obs.Span{
			Trace:  rs.TraceID,
			Parent: rs.Parent,
			Name:   rs.Name,
			Proc:   workerID,
			Attrs:  attrs,
			Start:  time.Unix(0, rs.StartUnixNano+adj),
			End:    time.Unix(0, rs.StartUnixNano+rs.DurNs+adj),
		})
	}
}

// trackInflight moves a task from queued to in-flight, closing its queue
// span and opening its exec span. It returns the exec span's ID (0 when
// tracing is off) — the parent under which the worker's remote stage
// spans will nest.
func (m *Master) trackInflight(t Task, workerID string) int64 {
	sh := m.shardFor(t.JobID)
	sh.mu.Lock()
	sh.inflight[t.ID] = t
	var wait time.Duration
	waited := false
	if sh.queuedAt != nil {
		if at, ok := sh.queuedAt[t.ID]; ok {
			wait, waited = time.Since(at), true
			delete(sh.queuedAt, t.ID)
		}
	}
	var execSpanID int64
	if sh.taskSpans != nil {
		// Guard the lookup: a task assigned without ever being marked
		// queued (a direct scheduler push, or queuedAt/taskSpans enabled
		// mid-run) has no open queue span to finish.
		if s := sh.taskSpans[t.ID]; s != nil {
			s.Finish()
		}
		s := m.tracer.NewSpan("exec "+t.ID, t.Span)
		s.SetAttr("job", t.JobID)
		s.SetAttr("worker", workerID)
		s.SetTrace(t.Trace.traceID())
		sh.taskSpans[t.ID] = s
		execSpanID = s.SpanID()
	}
	sh.mu.Unlock()
	if waited {
		m.hWait.ObserveDuration(wait)
	}
	m.gQueue.SetInt(m.sched.len())
	return execSpanID
}

// quarantineRetention bounds how many poisoned tasks the master retains
// for inspection before the oldest entries are dropped.
const quarantineRetention = 128

// QuarantinedTask is one poisoned task parked by the master after its
// retry budget ran out: every attempt ended in a worker loss or a task
// deadline, so re-running it would keep crash-looping the pool. The
// task stays inspectable (and re-submittable via ReleaseQuarantined)
// while a failed Result lets its job finish degraded instead of stalling.
type QuarantinedTask struct {
	Task          Task      `json:"task"`
	Attempts      int       `json:"attempts"`
	QuarantinedAt time.Time `json:"quarantinedAt"`
}

// requeue puts a task back in the pool after a worker failure — after a
// backoff delay that grows with the task's attempt count, so a
// crash-looping worker cannot spin a hot requeue cycle — preserving
// at-least-once execution. A task that exhausts its retry budget is
// quarantined and reported as a failed Result instead.
func (m *Master) requeue(t Task) {
	tp := m.fr.Start()
	sh := m.shardFor(t.JobID)
	sh.mu.Lock()
	delete(sh.inflight, t.ID)
	if sh.taskSpans != nil {
		if s := sh.taskSpans[t.ID]; s != nil {
			s.SetAttr("outcome", "lost")
			s.Finish()
		}
		delete(sh.taskSpans, t.ID)
	}
	closed := m.closed.Load()
	sh.attempts[t.ID]++
	attempts := sh.attempts[t.ID]
	exhausted := m.maxRetries > 0 && attempts > m.maxRetries
	if exhausted || closed {
		// Drop the attempt count either way: an exhausted task is done,
		// and a closed master will never retry — keeping the entry
		// would leak it forever.
		delete(sh.attempts, t.ID)
	}
	if closed && sh.queuedAt != nil {
		delete(sh.queuedAt, t.ID)
	}
	var delay time.Duration
	if !closed && !exhausted {
		m.markQueuedLocked(sh, t)
		// The jitter rng is per shard: backoff for one job never
		// serializes against dispatch or acks for jobs on other shards.
		delay = m.backoff.Delay(attempts, sh.rng)
	}
	if exhausted && !closed {
		m.quarantineLocked(sh, t, attempts)
	}
	sh.mu.Unlock()
	m.fr.Probe(flightrec.ProbeMasterRequeue, tp, int64(attempts), t.Span)
	if closed {
		return
	}
	if exhausted {
		// A poisoned task is exactly the moment the flight recorder's
		// sub-span detail pays off: trip a deep-dive dump of the ring
		// history leading up to the quarantine.
		flightrec.Trip(flightrec.TrigQuarantine,
			fmt.Sprintf("task %s quarantined after %d attempts", t.ID, attempts))
		// Build the quarantine error through obs.Wrap so the synthetic
		// failed Result carries a master-side return path like a genuine
		// worker failure would.
		qerr := obs.Wrap(fmt.Errorf("workqueue: task quarantined after %d lost attempts (retry limit %d)", attempts, m.maxRetries))
		m.logger.Warn("task quarantined: retry limit reached",
			obs.TaskID(t.ID), obs.JobID(t.JobID), obs.TraceID(t.Trace.traceID()),
			obs.F("attempts", attempts), obs.ErrTrace(qerr))
		m.cQuarantined.Inc()
		m.complete(Result{
			TaskID:   t.ID,
			JobID:    t.JobID,
			Err:      qerr.Error(),
			ErrTrace: obs.ReturnTraceString(qerr),
		})
		return
	}
	m.cRetries.Inc()
	m.logger.Info("task requeued after worker loss",
		obs.TaskID(t.ID), obs.JobID(t.JobID), obs.TraceID(t.Trace.traceID()),
		obs.F("attempt", attempts), obs.F("backoff_ms", delay.Milliseconds()))
	if delay <= 0 {
		m.sched.push(t)
		m.gQueue.SetInt(m.sched.len())
		return
	}
	sh.mu.Lock()
	if m.closed.Load() {
		sh.mu.Unlock()
		return
	}
	sh.pending[t.ID] = time.AfterFunc(delay, func() { m.firePending(t) })
	sh.mu.Unlock()
}

// firePending moves a backed-off task into the scheduler when its delay
// elapses. A master closed in the meantime drops the task (its job can
// never complete anyway — the Results channel is gone).
func (m *Master) firePending(t Task) {
	sh := m.shardFor(t.JobID)
	sh.mu.Lock()
	delete(sh.pending, t.ID)
	closed := m.closed.Load()
	if closed && sh.queuedAt != nil {
		delete(sh.queuedAt, t.ID)
	}
	sh.mu.Unlock()
	if closed {
		return
	}
	m.sched.push(t)
	m.gQueue.SetInt(m.sched.len())
}

// quarantineLocked parks a poisoned task, evicting the oldest entry past
// the retention cap (applied per shard). Callers hold sh.mu.
func (m *Master) quarantineLocked(sh *masterShard, t Task, attempts int) {
	if len(sh.quarantine) >= quarantineRetention {
		oldestID := ""
		var oldestAt time.Time
		for id, q := range sh.quarantine {
			if oldestID == "" || q.QuarantinedAt.Before(oldestAt) {
				oldestID, oldestAt = id, q.QuarantinedAt
			}
		}
		delete(sh.quarantine, oldestID)
	}
	sh.quarantine[t.ID] = &QuarantinedTask{Task: t, Attempts: attempts, QuarantinedAt: time.Now()}
}

// Quarantined snapshots the poison-task quarantine, sorted by task ID.
func (m *Master) Quarantined() []QuarantinedTask {
	var out []QuarantinedTask
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, q := range sh.quarantine {
			out = append(out, *q)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.ID < out[j].Task.ID })
	return out
}

// ReleaseQuarantined re-submits a quarantined task with a fresh retry
// budget (e.g. after the fault that poisoned it was fixed). The release
// counts as a new submission in its job's stats.
func (m *Master) ReleaseQuarantined(taskID string) error {
	// Only the task ID is known here, not its job, so scan the shards;
	// releases are rare administrative operations.
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		q, ok := sh.quarantine[taskID]
		if ok {
			delete(sh.quarantine, taskID)
		}
		sh.mu.Unlock()
		if ok {
			return m.Submit(q.Task)
		}
	}
	return fmt.Errorf("workqueue: task %q is not quarantined", taskID)
}

func (m *Master) complete(r Result) {
	tp := m.fr.Start()
	var ackParent int64
	// The entire ack path touches only the result's job shard: an ack
	// for one job never contends with a push or requeue for another.
	sh := m.shardFor(r.JobID)
	sh.mu.Lock()
	delete(sh.inflight, r.TaskID)
	delete(sh.attempts, r.TaskID)
	if sh.queuedAt != nil {
		delete(sh.queuedAt, r.TaskID)
	}
	if sh.taskSpans != nil {
		if s := sh.taskSpans[r.TaskID]; s != nil {
			ackParent = s.SpanID()
			if r.Err != "" {
				s.SetAttr("error", r.Err)
			}
			if r.ErrTrace != "" {
				// The worker-side return path rides into the merged
				// Chrome trace next to the failing exec span.
				s.SetAttr("err_trace", r.ErrTrace)
			}
			s.Finish()
		}
		delete(sh.taskSpans, r.TaskID)
	}
	js, ok := sh.stats[r.JobID]
	if !ok {
		js = &JobStats{JobID: r.JobID}
		sh.stats[r.JobID] = js
	}
	if r.Err != "" {
		js.Failed++
	} else {
		js.Completed++
	}
	js.ExecTime += r.Elapsed
	js.LastCompletion = time.Now()
	jobDone := js.Done()
	closed := m.closed.Load()
	sh.mu.Unlock()
	m.fr.Probe(flightrec.ProbeMasterAck, tp, int64(len(r.Output)), ackParent)
	if jobDone {
		// Drop the drained job's scheduler priority entry so a
		// long-running master does not accumulate state per job.
		m.sched.forgetJob(r.JobID)
	}
	if r.Err != "" {
		m.cFailed.Inc()
	} else {
		m.cCompleted.Inc()
	}
	m.hExec.ObserveDuration(r.Elapsed)
	if !closed {
		m.results <- r
	}
}

// taskStateSizes reports the internal per-task map sizes; tests assert
// they drain to zero after a run so long-lived masters cannot leak.
func (m *Master) taskStateSizes() (inflight, attempts int) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		inflight += len(sh.inflight)
		attempts += len(sh.attempts)
		sh.mu.Unlock()
	}
	return inflight, attempts
}

// Shutdown closes the task pool, waits for worker handlers spawned by
// Serve to drain and closes the Results channel. It is safe to call once.
func (m *Master) Shutdown() {
	if m.clusterDumps != nil {
		// Detach the trip cascade: a later trip (possibly under a new
		// master sharing the process recorder) must not collect against
		// this closed pool.
		m.clusterRec.SetOnTrip(nil)
	}
	m.sched.close()
	m.wg.Wait()
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	// Stop backed-off requeue timers: the tasks can never run (the pool
	// is closed), and an already-fired timer sees closed and drops out.
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, timer := range sh.pending {
			timer.Stop()
			delete(sh.pending, id)
		}
		sh.mu.Unlock()
	}
	close(m.results)
}
