package workqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// ClusterDumpConfig parameterizes cross-host flight-dump collection. On a
// trip the master broadcasts a FreezeRings request to every attached
// worker, waits (bounded) for their ring snapshots, corrects each one
// onto the master clock with the per-worker skew estimate, and writes a
// single merged multi-host Chrome trace with one process lane per host.
type ClusterDumpConfig struct {
	// Dir is where merged cluster traces land
	// (flightrec-cluster-NNN-<trigger>.trace.json).
	Dir string
	// Window bounds how far back each host's snapshot reaches (0 = the
	// recorders' full retained history).
	Window time.Duration
	// Timeout bounds the wait for worker replies (default 2s). A worker
	// mid-task answers after its result; one past the timeout is simply
	// absent from the merged trace.
	Timeout time.Duration
	// Cooldown is the minimum gap between collections (default 5s), so a
	// trigger storm yields one cluster dump, not one per trip.
	Cooldown time.Duration
}

// ClusterDumpInfo describes one completed cluster-wide collection.
type ClusterDumpInfo struct {
	Seq     int       `json:"seq"`
	Path    string    `json:"path"`
	Trigger string    `json:"trigger"`
	Detail  string    `json:"detail,omitempty"`
	// Hosts lists the lanes present in the merged trace ("master" first,
	// then responding workers sorted by ID).
	Hosts  []string  `json:"hosts"`
	Events int       `json:"events"`
	At     time.Time `json:"at"`
}

// clusterDumpRetention bounds the in-memory collection history.
const clusterDumpRetention = 32

// dumpCollector routes one collection round's worker replies from the
// per-connection reader goroutines to the collecting goroutine.
type dumpCollector struct {
	seq     int64
	replies chan FlightDump
}

// handleFlightDump routes an incoming worker dump: a reply whose Seq
// matches the pending collection feeds that round; an unsolicited dump
// (worker-initiated trip, Trigger set) starts a new cluster-wide
// collection seeded with the worker's own events.
func (m *Master) handleFlightDump(workerID string, d *FlightDump) {
	if d == nil || m.clusterDumps == nil {
		return
	}
	dd := *d
	if dd.Host == "" {
		dd.Host = workerID
	}
	m.dumpMu.Lock()
	col := m.dumpPending
	m.dumpMu.Unlock()
	if col != nil && dd.Seq == col.seq {
		select {
		case col.replies <- dd:
		default:
		}
		return
	}
	if dd.Trigger != "" {
		go func() { _, _ = m.collectClusterDump(dd.Trigger, dd.Detail, []FlightDump{dd}) }()
	}
}

// CollectClusterDump runs one cross-host collection round now (the same
// path a flight-recorder trip takes) and reports the merged trace it
// wrote. It fails when a round is already in flight or the cooldown has
// not elapsed.
func (m *Master) CollectClusterDump(trigger, detail string) (*ClusterDumpInfo, error) {
	return m.collectClusterDump(trigger, detail, nil)
}

func (m *Master) collectClusterDump(trigger, detail string, seed []FlightDump) (*ClusterDumpInfo, error) {
	cfg := m.clusterDumps
	if cfg == nil {
		return nil, errors.New("workqueue: cluster dump collection is not enabled")
	}
	cooldown := cfg.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}

	m.dumpMu.Lock()
	if m.dumpPending != nil {
		m.dumpMu.Unlock()
		return nil, errors.New("workqueue: cluster dump collection already in flight")
	}
	if !m.dumpLast.IsZero() && time.Since(m.dumpLast) < cooldown {
		m.dumpMu.Unlock()
		return nil, fmt.Errorf("workqueue: cluster dump in cooldown (%s)", cooldown)
	}
	m.dumpSeq++
	seq := m.dumpSeq
	m.dumpLast = time.Now()
	targets := m.cluster.codecs()
	col := &dumpCollector{seq: seq, replies: make(chan FlightDump, len(targets)+1)}
	m.dumpPending = col
	m.dumpMu.Unlock()
	defer func() {
		m.dumpMu.Lock()
		m.dumpPending = nil
		m.dumpMu.Unlock()
	}()

	got := make(map[string]FlightDump, len(targets)+len(seed))
	for _, d := range seed {
		got[d.Host] = d
	}

	// Broadcast FreezeRings. Codec sends are mutex-serialized, so writing
	// from this goroutine cannot interleave with the handler's task sends.
	freeze := &FreezeRequest{Seq: seq, Trigger: trigger, Detail: detail, WindowNs: int64(cfg.Window)}
	expect := 0
	for _, t := range targets {
		if _, seeded := got[t.id]; seeded {
			continue
		}
		if err := t.c.send(message{Type: msgFreeze, Freeze: freeze}); err == nil {
			expect++
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for expect > 0 {
		select {
		case d := <-col.replies:
			if _, dup := got[d.Host]; !dup {
				expect--
			}
			got[d.Host] = d
		case <-deadline.C:
			expect = 0
		}
	}

	// Merge: the master's own recorder events plus every reply, each
	// worker's timestamps shifted by the skew estimate onto the master
	// clock. Hosts that never responded are simply absent.
	masterEvents := m.clusterRec.Events(cfg.Window)
	hosts := make([]flightrec.HostDump, 0, len(got)+1)
	hosts = append(hosts, flightrec.HostDump{Host: "master", Events: masterEvents})
	names := []string{"master"}
	total := len(masterEvents)
	for host, d := range got {
		hosts = append(hosts, flightrec.HostDump{
			Host:   host,
			SkewNs: m.cluster.clockAdjustNs(host),
			Events: d.Events,
		})
		names = append(names, host)
		total += len(d.Events)
	}
	sort.Strings(names[1:])

	path := filepath.Join(cfg.Dir, fmt.Sprintf("flightrec-cluster-%03d-%s.trace.json", seq, trigger))
	if err := flightrec.WriteClusterTraceFile(path, m.tracer.Spans(), hosts); err != nil {
		m.logger.Warn("cluster flight dump failed",
			obs.F("trigger", trigger), obs.F("path", path), obs.Err(err))
		return nil, obs.Wrap(err)
	}
	info := ClusterDumpInfo{
		Seq: int(seq), Path: path, Trigger: trigger, Detail: detail,
		Hosts: names, Events: total, At: time.Now(),
	}
	m.dumpMu.Lock()
	m.dumpHistory = append(m.dumpHistory, info)
	if len(m.dumpHistory) > clusterDumpRetention {
		m.dumpHistory = m.dumpHistory[len(m.dumpHistory)-clusterDumpRetention:]
	}
	m.dumpMu.Unlock()
	m.logger.Info("cluster flight dump written",
		obs.F("trigger", trigger), obs.F("path", path),
		obs.F("hosts", len(names)), obs.F("events", total))
	return &info, nil
}

// ClusterDumpHistory reports completed collections, oldest first.
func (m *Master) ClusterDumpHistory() []ClusterDumpInfo {
	m.dumpMu.Lock()
	defer m.dumpMu.Unlock()
	return append([]ClusterDumpInfo(nil), m.dumpHistory...)
}

// ClusterDumpHandler serves the collection history (GET) and triggers a
// manual collection round (POST) — mount under /dump/cluster.
func (m *Master) ClusterDumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			history := m.ClusterDumpHistory()
			if history == nil {
				history = []ClusterDumpInfo{} // empty array, not null
			}
			_ = enc.Encode(history)
		case http.MethodPost:
			info, err := m.CollectClusterDump(flightrec.TrigManual, "requested via /dump/cluster")
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(info)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
