package workqueue

// BenchmarkWire* measures the binary wire format against the JSON
// reference — the encode/decode ns/op pairs behind BENCH_wire.json and
// the Eq. 10 transfer-term discussion in DESIGN.md. The one-connection
// throughput benchmark at the bottom is the end-to-end batching number:
// tasks/sec through a single master↔worker connection, lock-step vs
// batched.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// benchSpanResultMsg is the traced reply of benchSpanResultLine as a
// message value: a result plus all five worker stage spans and the
// clock stamps — the shape that dominates master-side decode.
func benchSpanResultMsg() message {
	m := message{
		Type:         msgResult,
		Result:       &Result{TaskID: "claim-17/3", JobID: "claim-17", WorkerID: "w-1", Output: []byte(`{"sums":{"0":1.5}}`), Elapsed: 2 * time.Millisecond},
		SentUnixNano: 1491040800002000000,
		TaskDelayNs:  150000,
	}
	for _, stage := range []string{StageRecv, StageDecode, StageExec, StageEncode, StageSend} {
		m.Spans = append(m.Spans, RemoteSpan{
			TraceID: "f3a9b2c1-42", Parent: 91, Name: stage, TaskID: "claim-17/3",
			StartUnixNano: 1491040800000000000, DurNs: 400000,
		})
	}
	m.CRC = m.checksum()
	return m
}

func benchTaskBatchMsg(n int) message {
	m := message{Type: msgTaskBatch}
	for i := 0; i < n; i++ {
		t := benchTracedTaskMsg().Task
		t.ID = fmt.Sprintf("claim-17/%d", i)
		m.Tasks = append(m.Tasks, *t)
	}
	m.CRC = m.checksum()
	return m
}

// BenchmarkWireEncodeTaskJSON / Binary: serializing one traced dispatch.
func BenchmarkWireEncodeTaskJSON(b *testing.B) {
	m := benchTracedTaskMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeTaskBinary(b *testing.B) {
	m := benchTracedTaskMsg()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendWireFrame(buf[:0], &m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeResultSpansJSON / Binary: serializing a traced
// result with its five stage spans — the worker-side per-result cost.
func BenchmarkWireEncodeResultSpansJSON(b *testing.B) {
	m := benchSpanResultMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeResultSpansBinary(b *testing.B) {
	m := benchSpanResultMsg()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendWireFrame(buf[:0], &m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeResultSpansJSON / Binary: parsing that traced
// result back — the master-side per-result cost Eq. 10 charges to the
// transfer term.
func BenchmarkWireDecodeResultSpansJSON(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m message
		if err := json.Unmarshal(benchSpanResultLine, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeResultSpansBinary(b *testing.B) {
	m := benchSpanResultMsg()
	frame, err := appendWireFrame(nil, &m)
	if err != nil {
		b.Fatal(err)
	}
	_, used := uvarintAt(frame, 2)
	body := frame[2+used:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeWireBody(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeTaskBatch8JSON / Binary: eight traced tasks in one
// frame — the batched dispatch the master sends per claim.
func BenchmarkWireEncodeTaskBatch8JSON(b *testing.B) {
	m := benchTaskBatchMsg(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeTaskBatch8Binary(b *testing.B) {
	m := benchTaskBatchMsg(8)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendWireFrame(buf[:0], &m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireTasksPerSecOneConn: end-to-end tasks through ONE
// master↔worker connection (real handler, real worker loop, net.Pipe):
// the lock-step protocol vs a 64-task batched window. ns/op is per task;
// the reported tasks/s metric is the headline batching number.
func BenchmarkWireTasksPerSecOneConn(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"lockstep", 0},
		{"batched64", 64},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			m := NewMaster(MasterConfig{Seed: 1, ResultBuffer: 1024, BatchSize: bc.batch})
			p := NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
				return payload, nil
			})
			defer p.Close()
			p.Resize(ctx, 1)
			payload := []byte(`{"claim":"claim-17","reports":[{"s":"src-1","t":"2017-04-01T10:00:00Z"}]}`)

			b.ReportAllocs()
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					_ = m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "bench", Payload: payload})
				}
			}()
			for i := 0; i < b.N; i++ {
				<-m.Results()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
