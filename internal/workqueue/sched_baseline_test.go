package workqueue

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// This file freezes the pre-sharding single-mutex implementations as the
// contention-benchmark baseline: mutexScheduler is a verbatim copy of
// the old scheduler (one mutex + cond.Broadcast wakeups, a
// context.AfterFunc allocation per blocking draw), and baselineMaster
// replays the old Master's one-big-mutex bookkeeping for the
// dispatch/ack cycle. BENCH_sched.json records both sides, so the
// checked-in numbers carry their own baseline.

type mutexScheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]Task // jobID -> FIFO queue
	priority map[string]float64
	order    []string // jobIDs with pending tasks, stable iteration
	rng      *rand.Rand
	closed   bool
	pending  int
}

func newMutexScheduler(seed int64) *mutexScheduler {
	s := &mutexScheduler{
		queues:   make(map[string][]Task),
		priority: make(map[string]float64),
		rng:      rand.New(rand.NewSource(seed)),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *mutexScheduler) push(t Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.queues[t.JobID]; !ok {
		s.order = append(s.order, t.JobID)
	}
	s.queues[t.JobID] = append(s.queues[t.JobID], t)
	if _, ok := s.priority[t.JobID]; !ok {
		s.priority[t.JobID] = 1
	}
	s.pending++
	s.cond.Signal()
}

func (s *mutexScheduler) setPriority(jobID string, p float64) {
	const minPriority = 1e-6
	if p < minPriority {
		p = minPriority
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.priority[jobID] = p
}

func (s *mutexScheduler) next(ctx context.Context) (Task, bool) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending == 0 && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.closed || ctx.Err() != nil || s.pending == 0 {
		return Task{}, false
	}
	return s.takeLocked(), true
}

func (s *mutexScheduler) tryNext() (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pending == 0 {
		return Task{}, false
	}
	return s.takeLocked(), true
}

func (s *mutexScheduler) takeLocked() Task {
	jobID := s.pickJobLocked()
	q := s.queues[jobID]
	t := q[0]
	if len(q) == 1 {
		delete(s.queues, jobID)
		s.removeOrderLocked(jobID)
	} else {
		s.queues[jobID] = q[1:]
	}
	s.pending--
	return t
}

func (s *mutexScheduler) pickJobLocked() string {
	total := 0.0
	for _, id := range s.order {
		total += s.priority[id]
	}
	r := s.rng.Float64() * total
	acc := 0.0
	for _, id := range s.order {
		acc += s.priority[id]
		if r < acc {
			return id
		}
	}
	return s.order[len(s.order)-1]
}

func (s *mutexScheduler) removeOrderLocked(jobID string) {
	for i, id := range s.order {
		if id == jobID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

func (s *mutexScheduler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// baselineMaster replays the old Master's single-mutex bookkeeping for
// the dispatch→ack cycle: one lock serializing job stats, the in-flight
// window and attempt counts for every job in the process. It keeps the
// old code's side costs — results-channel delivery and the flight
// recorder's ack probe — so the comparison isolates the locking change.
type baselineMaster struct {
	sched   *mutexScheduler
	results chan Result
	fr      *flightrec.Ring

	mu       sync.Mutex
	rng      *rand.Rand
	stats    map[string]*JobStats
	inflight map[string]Task
	attempts map[string]int
}

func newBaselineMaster(seed int64) *baselineMaster {
	return &baselineMaster{
		sched:    newMutexScheduler(seed),
		results:  make(chan Result, 256),
		fr:       flightrec.Shared("bench-baseline"),
		rng:      rand.New(rand.NewSource(seed + 1)),
		stats:    make(map[string]*JobStats),
		inflight: make(map[string]Task),
		attempts: make(map[string]int),
	}
}

func (m *baselineMaster) submit(t Task) {
	m.mu.Lock()
	js, ok := m.stats[t.JobID]
	if !ok {
		js = &JobStats{JobID: t.JobID, FirstSubmit: time.Now()}
		m.stats[t.JobID] = js
	}
	js.Submitted++
	m.mu.Unlock()
	m.sched.push(t)
}

func (m *baselineMaster) stat(jobID string) JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js, ok := m.stats[jobID]; ok {
		return *js
	}
	return JobStats{JobID: jobID}
}

func (m *baselineMaster) trackInflight(t Task) {
	m.mu.Lock()
	m.inflight[t.ID] = t
	m.mu.Unlock()
}

func (m *baselineMaster) complete(r Result) {
	tp := m.fr.Start()
	m.mu.Lock()
	delete(m.inflight, r.TaskID)
	delete(m.attempts, r.TaskID)
	js, ok := m.stats[r.JobID]
	if !ok {
		js = &JobStats{JobID: r.JobID}
		m.stats[r.JobID] = js
	}
	if r.Err != "" {
		js.Failed++
	} else {
		js.Completed++
	}
	js.ExecTime += r.Elapsed
	js.LastCompletion = time.Now()
	m.mu.Unlock()
	m.fr.Probe(flightrec.ProbeMasterAck, tp, int64(len(r.Output)), 0)
	m.results <- r
}
