package workqueue

import (
	"errors"
	"fmt"

	"github.com/social-sensing/sstd/internal/obs"
)

// Execution stages a task moves through on a worker. Executors tag
// failures with StageError so the master learns which stage broke; an
// untagged failure is attributed to StageExec. The same stage names
// label the worker-side trace spans (see TaskTrace), with StageRecv and
// StageSend bracketing the executor stages on the wire side.
const (
	StageRecv   = "recv"
	StageDecode = "decode payload"
	StageExec   = "exec"
	StageEncode = "encode output"
	StageSend   = "send"
)

// TaskError carries the provenance of a worker-side task failure: which
// worker ran it, which task it was, and which execution stage failed.
// Its string form is what crosses the wire in Result.Err, so a master
// log line alone identifies the failing worker and stage instead of
// showing a bare cause.
type TaskError struct {
	WorkerID string
	TaskID   string
	Stage    string
	Err      error
	// Trace is the error's return path through the worker (obs.Wrap
	// frames, origin first), captured before the stage tag was stripped.
	// Empty when no return boundary wrapped the error.
	Trace []string
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("worker %s: task %s: %s: %v", e.WorkerID, e.TaskID, e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *TaskError) Unwrap() error { return e.Err }

// StageError tags err with the execution stage that produced it. Workers
// unwrap the tag when building the TaskError they report, so the stage
// travels with the error instead of being lost in a formatted string —
// the same idea errtrace applies to call sites. Returns nil for a nil
// err.
func StageError(stage string, err error) error {
	if err == nil {
		return nil
	}
	return &stagedError{stage: stage, err: err}
}

type stagedError struct {
	stage string
	err   error
}

func (e *stagedError) Error() string { return e.stage + ": " + e.err.Error() }
func (e *stagedError) Unwrap() error { return e.err }

// newTaskError wraps one failed execution with provenance, extracting
// the executor's stage tag when present (default StageExec) and the
// error's return trace before either is stripped from the cause chain.
func newTaskError(workerID, taskID string, err error) *TaskError {
	trace := obs.ReturnTrace(err)
	stage := StageExec
	var se *stagedError
	if errors.As(err, &se) {
		stage = se.stage
		err = se.err
	}
	return &TaskError{WorkerID: workerID, TaskID: taskID, Stage: stage, Err: err, Trace: trace}
}

// ReturnTrace renders the error's worker-side return path as the compact
// " -> "-joined wire form (empty when untraced).
func (e *TaskError) ReturnTrace() string {
	out := ""
	for i, f := range e.Trace {
		if i > 0 {
			out += " -> "
		}
		out += f
	}
	return out
}
