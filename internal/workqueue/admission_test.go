package workqueue

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

func TestAdmissionDecide(t *testing.T) {
	cases := []struct {
		name         string
		cfg          AdmissionConfig
		jobTasks     int
		deadline     time.Duration
		queueDepth   int
		workers      int
		observedRate float64
		wantAdmit    bool
		wantShed     bool
	}{
		{
			// 10 tasks / (2 workers × 10/s) = 500ms, well under 2s.
			name:     "under capacity admits",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10},
			jobTasks: 10, deadline: 2 * time.Second, workers: 2,
			wantAdmit: true,
		},
		{
			// (90 queued + 10 new) / (2 × 10/s) = 5s > 2s.
			name:     "backlog pushes prediction past deadline",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10},
			jobTasks: 10, deadline: 2 * time.Second, queueDepth: 90, workers: 2,
			wantAdmit: false,
		},
		{
			name:     "no deadline admits regardless of backlog",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10},
			jobTasks: 10, queueDepth: 10_000, workers: 1,
			wantAdmit: true,
		},
		{
			name:     "default deadline applies when job has none",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10, Deadline: time.Second},
			jobTasks: 100, workers: 1, // 100/10 = 10s > 1s default
			wantAdmit: false,
		},
		{
			name:     "no workers means unpredictable, reject",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10},
			jobTasks: 1, deadline: time.Second, workers: 0,
			wantAdmit: false,
		},
		{
			// Exactly at deadline: 20 tasks / (2×10/s) = 1000ms = deadline.
			name:     "prediction equal to deadline admits",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10},
			jobTasks: 20, deadline: time.Second, workers: 2,
			wantAdmit: true,
		},
		{
			// Safety factor 2 doubles the 1000ms prediction past 1s.
			name:     "safety factor tips a borderline job",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10, SafetyFactor: 2},
			jobTasks: 20, deadline: time.Second, workers: 2,
			wantAdmit: false,
		},
		{
			// No fitted rate: the observed cluster EWMA stands in.
			name:     "observed rate fallback",
			cfg:      AdmissionConfig{},
			jobTasks: 10, deadline: 2 * time.Second, workers: 2, observedRate: 10,
			wantAdmit: true,
		},
		{
			name:     "observed fallback rejects when too slow",
			cfg:      AdmissionConfig{},
			jobTasks: 100, deadline: time.Second, workers: 2, observedRate: 1,
			wantAdmit: false,
		},
		{
			name:     "shed converts reject into degraded admit",
			cfg:      AdmissionConfig{TaskRatePerWorker: 10, Shed: true},
			jobTasks: 10, deadline: 2 * time.Second, queueDepth: 90, workers: 2,
			wantAdmit: true, wantShed: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := newAdmissionGate(tc.cfg, nil, nil)
			d := g.decide("job", "trace", tc.jobTasks, tc.deadline, tc.queueDepth, tc.workers, tc.observedRate)
			if d.Admit != tc.wantAdmit || d.Shed != tc.wantShed {
				t.Fatalf("decide = admit=%t shed=%t (pred %.0fms, deadline %dms), want admit=%t shed=%t",
					d.Admit, d.Shed, d.PredictedMs, d.DeadlineMs, tc.wantAdmit, tc.wantShed)
			}
			if !tc.wantAdmit {
				if d.Err == nil {
					t.Fatal("rejection carries no error")
				}
				if !errors.Is(d.Err, ErrAdmissionRejected) {
					t.Errorf("rejection error %v does not wrap ErrAdmissionRejected", d.Err)
				}
			} else if d.Err != nil {
				t.Errorf("admitted decision carries error %v", d.Err)
			}
		})
	}
}

func TestAdmissionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := newAdmissionGate(AdmissionConfig{TaskRatePerWorker: 10}, reg, nil)
	g.decide("ok", "", 10, 2*time.Second, 0, 2, 0) // admit
	g.decide("no", "", 100, time.Second, 0, 1, 0)  // reject
	g.decide("no2", "", 100, time.Second, 0, 1, 0) // reject
	snap := reg.Snapshot()
	if got := snap.Counters["admission_accepted_total"]; got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}
	if got := snap.Counters["admission_rejected_total"]; got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	h, ok := snap.Histograms["admission_predicted_miss_ms"]
	if !ok || h.Count != 2 {
		t.Errorf("predicted_miss histogram = %+v, want 2 observations", h)
	}
}

// TestAdmissionRejectionLogged is the regression test for rejection
// provenance: a refused job must leave a structured log line carrying
// job/trace correlation and an errtrace return path.
func TestAdmissionRejectionLogged(t *testing.T) {
	logger := obs.NewLogger(nil, obs.LevelDebug, 64)
	g := newAdmissionGate(AdmissionConfig{TaskRatePerWorker: 10}, nil, logger)
	d := g.decide("job-42", "trace-abc", 100, time.Second, 0, 1, 0)
	if d.Admit {
		t.Fatal("job should have been rejected")
	}
	var entry *obs.LogEntry
	for _, e := range logger.Entries() {
		if e.Msg == "job rejected by admission control" {
			e := e
			entry = &e
			break
		}
	}
	if entry == nil {
		t.Fatal("no rejection log line recorded")
	}
	if entry.Fields["job_id"] != "job-42" || entry.Fields["trace_id"] != "trace-abc" {
		t.Errorf("log correlation fields = %v, want job-42/trace-abc", entry.Fields)
	}
	trace, ok := entry.Fields["err_trace"].([]string)
	if !ok || len(trace) == 0 {
		t.Fatalf("rejection log has no err_trace return path: %v", entry.Fields["err_trace"])
	}
	if !strings.Contains(trace[0], "admission.go") {
		t.Errorf("err_trace origin %q should point into admission.go", trace[0])
	}
	for _, key := range []string{"predicted_ms", "deadline_ms", "queue_depth", "workers"} {
		if _, ok := entry.Fields[key]; !ok {
			t.Errorf("rejection log missing %q field", key)
		}
	}
}

// TestMasterAdmitJob exercises the live-input path: queue depth from the
// scheduler and pool size from the cluster registry.
func TestMasterAdmitJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{
		ResultBuffer: 4,
		Admission:    &AdmissionConfig{TaskRatePerWorker: 100},
	})
	block := make(chan struct{})
	p := NewPool(m, func(ctx context.Context, payload []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return payload, nil
	})
	defer p.Close()
	p.Resize(ctx, 1)
	waitFor(t, func() bool { return m.WorkerCount() == 1 }, "worker to attach")

	if d := m.AdmitJob("fits", "", 10, time.Second); !d.Admit {
		t.Fatalf("empty pool should admit a small job: %+v", d)
	}
	// Pile up a backlog the single worker cannot drain in time; the gate
	// must start refusing.
	for i := 0; i < 500; i++ {
		if err := m.Submit(Task{ID: "t" + string(rune('a'+i%26)) + string(rune('0'+i/26)), JobID: "bg"}); err != nil {
			t.Fatal(err)
		}
	}
	d := m.AdmitJob("late", "", 10, time.Second)
	if d.Admit {
		t.Fatalf("backlogged pool should reject: %+v", d)
	}
	if !errors.Is(d.Err, ErrAdmissionRejected) {
		t.Errorf("err %v does not wrap sentinel", d.Err)
	}
	close(block)
}

// TestMasterAdmitJobOpenGate: without an AdmissionConfig every job is
// admitted.
func TestMasterAdmitJobOpenGate(t *testing.T) {
	m := NewMaster(MasterConfig{})
	if d := m.AdmitJob("any", "", 1_000_000, time.Millisecond); !d.Admit {
		t.Fatalf("open gate refused a job: %+v", d)
	}
}
