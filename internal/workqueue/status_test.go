package workqueue

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestStatusSnapshot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 16})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 2)
	waitFor(t, func() bool { return m.WorkerCount() == 2 }, "workers")

	for i := 0; i < 6; i++ {
		if err := m.Submit(Task{ID: string(rune('a' + i)), JobID: "job1", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, m, 6)
	st := m.Status()
	if st.Workers != 2 {
		t.Errorf("workers = %d", st.Workers)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].JobID != "job1" {
		t.Fatalf("jobs = %+v", st.Jobs)
	}
	j := st.Jobs[0]
	if j.Submitted != 6 || j.Completed != 6 || !j.Done {
		t.Errorf("job status = %+v", j)
	}
	if j.FirstSubmit.IsZero() {
		t.Error("first submit not recorded")
	}
}

func TestStatusHandler(t *testing.T) {
	m := NewMaster(MasterConfig{})
	if err := m.Submit(Task{ID: "t", JobID: "j"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.StatusHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueuedTasks != 1 || len(st.Jobs) != 1 {
		t.Errorf("decoded status = %+v", st)
	}

	// Non-GET rejected.
	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", post.StatusCode)
	}
}
