package workqueue

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// Executor is the function a worker runs for each task payload. Use
// StageError to tag decode/encode failures so the master sees which
// stage of the task pipeline broke.
type Executor func(ctx context.Context, payload []byte) ([]byte, error)

// Worker executes tasks pulled from a master.
type Worker struct {
	// ID identifies the worker to the master. Required.
	ID string
	// Exec performs the task. Required.
	Exec Executor
	// HeartbeatEvery ships a liveness ping to the master on this
	// interval, even while a task is executing, so the master's health
	// registry can tell a busy worker from a hung one. Every StatsEvery-th
	// ping carries a WorkerStats telemetry snapshot. Zero disables
	// heartbeats (the pre-heartbeat protocol remains valid).
	HeartbeatEvery time.Duration
	// StatsEvery is how many heartbeats elapse between stats snapshots;
	// <= 0 means the default of 5. The first heartbeat always carries
	// stats so the master learns the worker's bucket layout immediately.
	StatsEvery int
	// Metrics optionally supplies the worker-side telemetry registry
	// (worker_* metrics), letting the process expose the same numbers on
	// its own /metrics endpoint. When nil and heartbeats are enabled, a
	// private registry backs the snapshots.
	Metrics *obs.Registry
}

// workerInstruments holds the worker-side metric handles. All methods
// tolerate nil handles, so a worker without telemetry pays only nil
// checks.
type workerInstruments struct {
	start      time.Time
	cExecuted  *obs.Counter
	cFailed    *obs.Counter
	hExec      *obs.Histogram
	gGoroutine *obs.Gauge
	gHeap      *obs.Gauge
	gBytesIn   *obs.Gauge
	gBytesOut  *obs.Gauge
}

func newWorkerInstruments(reg *obs.Registry) *workerInstruments {
	return &workerInstruments{
		start:      time.Now(),
		cExecuted:  reg.Counter("worker_tasks_executed_total"),
		cFailed:    reg.Counter("worker_tasks_failed_total"),
		hExec:      reg.Histogram("worker_exec_ms", nil),
		gGoroutine: reg.Gauge("worker_goroutines"),
		gHeap:      reg.Gauge("worker_heap_bytes"),
		gBytesIn:   reg.Gauge("worker_conn_bytes_in"),
		gBytesOut:  reg.Gauge("worker_conn_bytes_out"),
	}
}

// observe records one task execution.
func (i *workerInstruments) observe(elapsed time.Duration, failed bool) {
	i.cExecuted.Inc()
	if failed {
		i.cFailed.Inc()
	}
	i.hExec.ObserveDuration(elapsed)
}

// snapshot builds the WorkerStats payload of a stats message, updating
// the runtime gauges as a side effect.
func (i *workerInstruments) snapshot(c *codec) WorkerStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()
	in, out := c.bytesIn.Load(), c.bytesOut.Load()
	i.gGoroutine.SetInt(goroutines)
	i.gHeap.Set(float64(ms.HeapAlloc))
	i.gBytesIn.Set(float64(in))
	i.gBytesOut.Set(float64(out))
	return WorkerStats{
		TasksExecuted: i.cExecuted.Value(),
		TasksFailed:   i.cFailed.Value(),
		BytesIn:       in,
		BytesOut:      out,
		Goroutines:    goroutines,
		HeapBytes:     ms.HeapAlloc,
		UptimeMs:      time.Since(i.start).Milliseconds(),
		Exec:          i.hExec.Snapshot(),
	}
}

// Run speaks the worker side of the protocol on conn until the master
// sends a shutdown, the connection drops, or ctx is cancelled.
func (w *Worker) Run(ctx context.Context, conn net.Conn) error {
	if w.ID == "" || w.Exec == nil {
		return fmt.Errorf("workqueue: worker needs ID and Exec")
	}
	c := newCodec(conn)
	defer func() { _ = c.close() }()
	// Unblock reads when ctx is cancelled.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	if err := c.send(message{Type: msgHello, WorkerID: w.ID}); err != nil {
		return err
	}
	reg := w.Metrics
	if reg == nil && w.HeartbeatEvery > 0 {
		reg = obs.NewRegistry()
	}
	inst := newWorkerInstruments(reg)
	if w.HeartbeatEvery > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go w.heartbeatLoop(ctx, c, inst, hbStop)
	}
	for {
		m, err := c.recv()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("workqueue: worker %s recv: %w", w.ID, err)
		}
		switch m.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if m.Task == nil {
				return fmt.Errorf("workqueue: worker %s got task message without task", w.ID)
			}
			start := time.Now()
			out, execErr := w.Exec(ctx, m.Task.Payload)
			elapsed := time.Since(start)
			inst.observe(elapsed, execErr != nil)
			if execErr != nil && ctx.Err() != nil {
				// The worker is being preempted (pool shrink or
				// shutdown): exit without reporting so the master
				// requeues the task onto a live worker.
				return nil
			}
			res := Result{
				TaskID:   m.Task.ID,
				JobID:    m.Task.JobID,
				WorkerID: w.ID,
				Output:   out,
				Elapsed:  elapsed,
			}
			if execErr != nil {
				te := newTaskError(w.ID, m.Task.ID, execErr)
				res.Err = te.Error()
				res.ErrStage = te.Stage
			}
			if err := c.send(message{Type: msgResult, Result: &res}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("workqueue: worker %s got unexpected message %q", w.ID, m.Type)
		}
	}
}

// heartbeatLoop ships liveness pings (and periodic stats snapshots) until
// the worker exits or the connection fails. It runs concurrently with
// task execution: the codec serializes the writes.
func (w *Worker) heartbeatLoop(ctx context.Context, c *codec, inst *workerInstruments, stop <-chan struct{}) {
	statsEvery := w.StatsEvery
	if statsEvery <= 0 {
		statsEvery = 5
	}
	t := time.NewTicker(w.HeartbeatEvery)
	defer t.Stop()
	for n := 0; ; n++ {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			m := message{Type: msgHeartbeat, WorkerID: w.ID}
			if n%statsEvery == 0 {
				s := inst.snapshot(c)
				m.Type = msgStats
				m.Stats = &s
			}
			if err := c.send(m); err != nil {
				return
			}
		}
	}
}

// Dial connects to a master over TCP and runs until shutdown.
func (w *Worker) Dial(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("workqueue: dial master %s: %w", addr, err)
	}
	return w.Run(ctx, conn)
}
