package workqueue

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Executor is the function a worker runs for each task payload.
type Executor func(ctx context.Context, payload []byte) ([]byte, error)

// Worker executes tasks pulled from a master.
type Worker struct {
	// ID identifies the worker to the master. Required.
	ID string
	// Exec performs the task. Required.
	Exec Executor
}

// Run speaks the worker side of the protocol on conn until the master
// sends a shutdown, the connection drops, or ctx is cancelled.
func (w *Worker) Run(ctx context.Context, conn net.Conn) error {
	if w.ID == "" || w.Exec == nil {
		return fmt.Errorf("workqueue: worker needs ID and Exec")
	}
	c := newCodec(conn)
	defer func() { _ = c.close() }()
	// Unblock reads when ctx is cancelled.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	if err := c.send(message{Type: msgHello, WorkerID: w.ID}); err != nil {
		return err
	}
	for {
		m, err := c.recv()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("workqueue: worker %s recv: %w", w.ID, err)
		}
		switch m.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if m.Task == nil {
				return fmt.Errorf("workqueue: worker %s got task message without task", w.ID)
			}
			start := time.Now()
			out, execErr := w.Exec(ctx, m.Task.Payload)
			if execErr != nil && ctx.Err() != nil {
				// The worker is being preempted (pool shrink or
				// shutdown): exit without reporting so the master
				// requeues the task onto a live worker.
				return nil
			}
			res := Result{
				TaskID:   m.Task.ID,
				JobID:    m.Task.JobID,
				WorkerID: w.ID,
				Output:   out,
				Elapsed:  time.Since(start),
			}
			if execErr != nil {
				res.Err = execErr.Error()
			}
			if err := c.send(message{Type: msgResult, Result: &res}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("workqueue: worker %s got unexpected message %q", w.ID, m.Type)
		}
	}
}

// Dial connects to a master over TCP and runs until shutdown.
func (w *Worker) Dial(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("workqueue: dial master %s: %w", addr, err)
	}
	return w.Run(ctx, conn)
}
