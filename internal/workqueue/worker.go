package workqueue

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Executor is the function a worker runs for each task payload. Use
// StageError to tag decode/encode failures so the master sees which
// stage of the task pipeline broke, and StartStageSpan to time the same
// stages on the task's distributed trace.
type Executor func(ctx context.Context, payload []byte) ([]byte, error)

// Worker executes tasks pulled from a master.
type Worker struct {
	// ID identifies the worker to the master. Required.
	ID string
	// Exec performs the task. Required.
	Exec Executor
	// HeartbeatEvery ships a liveness ping to the master on this
	// interval, even while a task is executing, so the master's health
	// registry can tell a busy worker from a hung one. Every StatsEvery-th
	// ping carries a WorkerStats telemetry snapshot. Zero disables
	// heartbeats (the pre-heartbeat protocol remains valid).
	HeartbeatEvery time.Duration
	// StatsEvery is how many heartbeats elapse between stats snapshots;
	// <= 0 means the default of 5. The first heartbeat always carries
	// stats so the master learns the worker's bucket layout immediately.
	StatsEvery int
	// Metrics optionally supplies the worker-side telemetry registry
	// (worker_* metrics), letting the process expose the same numbers on
	// its own /metrics endpoint. When nil and heartbeats are enabled, a
	// private registry backs the snapshots.
	Metrics *obs.Registry
	// Tracer optionally mirrors the worker's stage spans into a local
	// ring (the worker process's own /trace endpoint). Stage spans are
	// recorded — and shipped to the master — whenever a task carries a
	// TraceContext, regardless of this field; a nil Tracer only disables
	// the local mirror.
	Tracer *obs.Tracer
	// Logger receives structured worker events (task failures, connection
	// errors), each tagged with worker_id/task_id and, for traced tasks,
	// trace_id. Nil disables logging.
	Logger *obs.Logger
	// ExecTimeout caps each task's execution (zero = none). The effective
	// budget is the smaller of this and the task's wire-carried TimeoutNs;
	// past it the executor's context is cancelled and a StageExec timeout
	// result is reported. An executor that ignores cancellation keeps
	// running on its goroutine but can no longer block the task loop.
	ExecTimeout time.Duration
	// WrapConn, when set, wraps every connection the worker dials (Dial
	// and Redial) before the protocol starts — the hook the chaos layer
	// uses to inject transport faults. Nil means the raw connection.
	WrapConn func(net.Conn) net.Conn
	// ReconnectBackoff paces Redial's reconnect attempts after a dial
	// failure or a dropped connection. The zero value applies the default
	// schedule (50ms base, doubling to a 5s cap); a negative Base retries
	// immediately.
	ReconnectBackoff BackoffConfig
	// MaxReconnects bounds consecutive failed reconnect attempts in
	// Redial before it gives up (zero = keep retrying until ctx is
	// cancelled). The counter resets whenever a connection is
	// established.
	MaxReconnects int
	// FlightRec is the flight recorder whose rings this worker's codec
	// probes into and whose snapshot answers the master's FreezeRings
	// broadcast. Nil uses the process-wide recorder (flightrec.Active).
	// When set, the worker also forwards the recorder's own trips to the
	// master as unsolicited flight dumps, making any host's trip a
	// cluster-wide collection.
	FlightRec *flightrec.Recorder
	// MaxBatch is the largest task batch this worker advertises in its
	// hello (the master dispatches min(its BatchSize, this) per frame).
	// Zero advertises the default of 256; negative advertises 0, opting
	// out of batching entirely.
	MaxBatch int
}

// defaultWorkerBatch is the batch capacity a worker advertises when
// MaxBatch is unset — generous, because the master's own BatchSize caps
// the effective batch and an unbatching master ignores it entirely.
const defaultWorkerBatch = 256

// resultFlushEvery chunks a batch's return path: results ship every this
// many completions (and at batch end), so the master's ack window keeps
// moving while the rest of the batch executes instead of waiting for one
// giant result frame.
const resultFlushEvery = 16

// batchAdvert resolves the hello's advertised batch capacity.
func (w *Worker) batchAdvert() int {
	if w.MaxBatch < 0 {
		return 0
	}
	if w.MaxBatch == 0 {
		return defaultWorkerBatch
	}
	return w.MaxBatch
}

// recorder resolves the worker's flight recorder.
func (w *Worker) recorder() *flightrec.Recorder {
	if w.FlightRec != nil {
		return w.FlightRec
	}
	return flightrec.Active()
}

// workerInstruments holds the worker-side metric handles. All methods
// tolerate nil handles, so a worker without telemetry pays only nil
// checks.
type workerInstruments struct {
	start      time.Time
	cExecuted  *obs.Counter
	cFailed    *obs.Counter
	hExec      *obs.Histogram
	gGoroutine *obs.Gauge
	gHeap      *obs.Gauge
	gBytesIn   *obs.Gauge
	gBytesOut  *obs.Gauge
}

func newWorkerInstruments(reg *obs.Registry) *workerInstruments {
	return &workerInstruments{
		start:      time.Now(),
		cExecuted:  reg.Counter("worker_tasks_executed_total"),
		cFailed:    reg.Counter("worker_tasks_failed_total"),
		hExec:      reg.Histogram("worker_exec_ms", nil),
		gGoroutine: reg.Gauge("worker_goroutines"),
		gHeap:      reg.Gauge("worker_heap_bytes"),
		gBytesIn:   reg.Gauge("worker_conn_bytes_in"),
		gBytesOut:  reg.Gauge("worker_conn_bytes_out"),
	}
}

// observe records one task execution.
func (i *workerInstruments) observe(elapsed time.Duration, failed bool) {
	i.cExecuted.Inc()
	if failed {
		i.cFailed.Inc()
	}
	i.hExec.ObserveDuration(elapsed)
}

// snapshot builds the WorkerStats payload of a stats message, updating
// the runtime gauges as a side effect.
func (i *workerInstruments) snapshot(c *codec) WorkerStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()
	in, out := c.bytesIn.Load(), c.bytesOut.Load()
	i.gGoroutine.SetInt(goroutines)
	i.gHeap.Set(float64(ms.HeapAlloc))
	i.gBytesIn.Set(float64(in))
	i.gBytesOut.Set(float64(out))
	return WorkerStats{
		TasksExecuted: i.cExecuted.Value(),
		TasksFailed:   i.cFailed.Value(),
		BytesIn:       in,
		BytesOut:      out,
		Goroutines:    goroutines,
		HeapBytes:     ms.HeapAlloc,
		UptimeMs:      time.Since(i.start).Milliseconds(),
		Exec:          i.hExec.Snapshot(),
	}
}

// workerRun is the per-connection mutable state shared between the task
// loop and the heartbeat goroutine: the pending-span buffer and the last
// observed task delivery delta (for the skew estimate).
type workerRun struct {
	spans         spanBuffer
	lastTaskDelay atomic.Int64
	// shipper delta-encodes the worker registry for the telemetry
	// piggyback on stats messages (nil when telemetry is off).
	shipper *obs.Shipper
}

// stamp fills the envelope's clock fields just before a send.
func (r *workerRun) stamp(m *message) {
	m.SentUnixNano = time.Now().UnixNano()
	m.TaskDelayNs = r.lastTaskDelay.Load()
}

// Run speaks the worker side of the protocol on conn until the master
// sends a shutdown, the connection drops, or ctx is cancelled.
func (w *Worker) Run(ctx context.Context, conn net.Conn) error {
	if w.ID == "" || w.Exec == nil {
		return fmt.Errorf("workqueue: worker needs ID and Exec")
	}
	lg := w.Logger.With(obs.WorkerID(w.ID))
	rec := w.recorder()
	c := newCodecWith(conn, rec)
	defer func() { _ = c.close() }()
	// Unblock reads when ctx is cancelled.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	if err := c.send(message{Type: msgHello, WorkerID: w.ID, Batch: w.batchAdvert()}); err != nil {
		return err
	}
	reg := w.Metrics
	if reg == nil && w.HeartbeatEvery > 0 {
		reg = obs.NewRegistry()
	}
	inst := newWorkerInstruments(reg)
	run := &workerRun{shipper: obs.NewShipper(reg)}
	if w.HeartbeatEvery > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go w.heartbeatLoop(ctx, c, inst, run, hbStop)
	}
	if w.FlightRec != nil {
		// A local trip ships an unsolicited dump — the master turns it
		// into a cluster-wide collection. Only wired for a dedicated
		// recorder: hooking the process-wide one would hijack a co-located
		// master's own trip hook.
		rec.SetOnTrip(func(trigger, detail string) {
			d := FlightDump{Host: w.ID, Trigger: trigger, Detail: detail, Events: rec.Events(0)}
			env := message{Type: msgFlightDump, WorkerID: w.ID, Dump: &d}
			run.stamp(&env)
			_ = c.send(env)
		})
		defer rec.SetOnTrip(nil)
	}
	for {
		m, err := c.recv()
		recvAt := time.Now()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			lg.Error("worker connection lost", obs.Err(err), obs.ErrTrace(err))
			return obs.Wrap(fmt.Errorf("workqueue: worker %s recv: %w", w.ID, err))
		}
		switch m.Type {
		case msgShutdown:
			// Flush buffered spans AND a final stats/telemetry snapshot on
			// the way out (mirroring the PR 6 final-control-tick flush), so
			// a short-lived worker's last window of work still reaches the
			// master's registry and time-series store.
			fin := message{Type: msgHeartbeat, WorkerID: w.ID, Spans: run.spans.drain()}
			if reg != nil {
				s := inst.snapshot(c)
				fin.Type = msgStats
				fin.Stats = &s
				fin.Telemetry = run.shipper.Ship()
			}
			if fin.Stats != nil || len(fin.Spans) > 0 {
				run.stamp(&fin)
				_ = c.send(fin)
			}
			return nil
		case msgFreeze:
			// FreezeRings: snapshot this host's probe rings and ship them
			// back for the master's merged cluster trace. Handled between
			// tasks (the loop is synchronous), so a freeze that lands
			// mid-task is answered as soon as the task's result is sent.
			if m.Freeze == nil {
				return fmt.Errorf("workqueue: worker %s got freeze message without request", w.ID)
			}
			d := FlightDump{
				Seq:     m.Freeze.Seq,
				Host:    w.ID,
				Trigger: m.Freeze.Trigger,
				Detail:  m.Freeze.Detail,
				Events:  rec.Events(time.Duration(m.Freeze.WindowNs)),
			}
			env := message{Type: msgFlightDump, WorkerID: w.ID, Dump: &d}
			run.stamp(&env)
			if err := c.send(env); err != nil {
				return err
			}
		case msgTask:
			if m.Task == nil {
				return fmt.Errorf("workqueue: worker %s got task message without task", w.ID)
			}
			if m.Task.SentUnixNano != 0 {
				run.lastTaskDelay.Store(recvAt.UnixNano() - m.Task.SentUnixNano)
			}
			res, tt, ok := w.execOne(ctx, m.Task, recvAt, inst, run, lg)
			if !ok {
				// The worker is being preempted (pool shrink or
				// shutdown): exit without reporting so the master
				// requeues the task onto a live worker.
				return nil
			}
			// Ship everything finished so far: spans buffered from the
			// previous task (its send span) plus this task's stages.
			env := message{Type: msgResult, Result: &res, Spans: run.spans.drain()}
			run.stamp(&env)
			w.mirror(env.Spans)
			sendStart := time.Now()
			if err := c.send(env); err != nil {
				return err
			}
			if tt != nil {
				tt.add(StageSend, sendStart, time.Now())
				sent := tt.take()
				run.spans.add(sent...)
				w.mirror(sent)
			}
		case msgTaskBatch:
			if len(m.Tasks) == 0 {
				return fmt.Errorf("workqueue: worker %s got task-batch message without tasks", w.ID)
			}
			if m.Tasks[0].SentUnixNano != 0 {
				run.lastTaskDelay.Store(recvAt.UnixNano() - m.Tasks[0].SentUnixNano)
			}
			if err := w.runBatch(ctx, c, m.Tasks, recvAt, inst, run, lg); err != nil {
				return err
			}
			if ctx.Err() != nil {
				// Preempted mid-batch: exit without reporting the rest so
				// the master requeues its un-acked window onto live
				// workers.
				return nil
			}
		default:
			return fmt.Errorf("workqueue: worker %s got unexpected message %q", w.ID, m.Type)
		}
	}
}

// execOne runs one task through the full stage pipeline — recv span,
// executor under its budget, result construction with error provenance —
// and buffers the finished stage spans. arrivedAt is when the task
// became runnable on this worker: the frame receive time for a frame's
// first task, the previous task's completion for later batch-mates (so
// the recv span shows wire transit for the former and in-batch queueing
// for the latter). ok=false means the worker is being preempted (ctx
// cancelled): the caller must exit without reporting, leaving the master
// to requeue.
func (w *Worker) execOne(ctx context.Context, task *Task, arrivedAt time.Time, inst *workerInstruments, run *workerRun, lg *obs.Logger) (Result, *TaskTrace, bool) {
	tt := newTaskTrace(task.Trace, task.ID)
	start := time.Now()
	tt.add(StageRecv, arrivedAt, start)
	out, execErr := w.runExec(withTaskTrace(ctx, tt), task)
	elapsed := time.Since(start)
	tt.add(StageExec, start, start.Add(elapsed))
	inst.observe(elapsed, execErr != nil)
	if execErr != nil && ctx.Err() != nil {
		return Result{}, nil, false
	}
	res := Result{
		TaskID:   task.ID,
		JobID:    task.JobID,
		WorkerID: w.ID,
		Output:   out,
		Elapsed:  elapsed,
	}
	if execErr != nil {
		te := newTaskError(w.ID, task.ID, execErr)
		res.Err = te.Error()
		res.ErrStage = te.Stage
		res.ErrTrace = te.ReturnTrace()
		lg.Warn("task failed",
			obs.TaskID(task.ID), obs.JobID(task.JobID),
			obs.TraceID(task.Trace.traceID()), obs.F("stage", te.Stage), obs.Err(te.Err),
			obs.ErrTrace(execErr))
	}
	run.spans.add(tt.take()...)
	return res, tt, true
}

// runBatch executes one task-batch frame in order, streaming results
// back as chunked result-batch frames: a flush every resultFlushEvery
// completions (and at batch end) bounds result latency and keeps the
// master's ack window moving while the rest of the batch executes. A
// preemption mid-batch returns nil with ctx cancelled; the un-reported
// remainder is requeued by the master.
func (w *Worker) runBatch(ctx context.Context, c *codec, tasks []Task, recvAt time.Time, inst *workerInstruments, run *workerRun, lg *obs.Logger) error {
	var done []Result
	var lastTT *TaskTrace
	flush := func() error {
		if len(done) == 0 {
			return nil
		}
		env := message{Type: msgResultBatch, Results: done, Spans: run.spans.drain()}
		run.stamp(&env)
		w.mirror(env.Spans)
		sendStart := time.Now()
		if err := c.send(env); err != nil {
			return err
		}
		if lastTT != nil {
			lastTT.add(StageSend, sendStart, time.Now())
			sent := lastTT.take()
			run.spans.add(sent...)
			w.mirror(sent)
		}
		done, lastTT = nil, nil
		return nil
	}
	arrived := recvAt
	for i := range tasks {
		res, tt, ok := w.execOne(ctx, &tasks[i], arrived, inst, run, lg)
		if !ok {
			return nil // preempted; the caller checks ctx
		}
		arrived = time.Now()
		done = append(done, res)
		lastTT = tt
		if len(done) >= resultFlushEvery {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// traceID is a nil-safe accessor used for log tagging.
func (tc *TraceContext) traceID() string {
	if tc == nil {
		return ""
	}
	return tc.TraceID
}

// mirror copies outgoing remote spans into the worker's local tracer
// ring (its own /trace endpoint). No-op without a tracer.
func (w *Worker) mirror(spans []RemoteSpan) {
	if w.Tracer == nil {
		return
	}
	for _, rs := range spans {
		w.Tracer.Ingest(obs.Span{
			Trace:  rs.TraceID,
			Parent: rs.Parent,
			Name:   rs.Name,
			Attrs:  map[string]string{"task": rs.TaskID},
			Start:  time.Unix(0, rs.StartUnixNano),
			End:    time.Unix(0, rs.StartUnixNano+rs.DurNs),
		})
	}
}

// heartbeatLoop ships liveness pings (and periodic stats snapshots) until
// the worker exits or the connection fails. It runs concurrently with
// task execution: the codec serializes the writes. Each ping carries the
// clock-skew timestamps and any buffered stage spans, so span delivery
// does not wait for the next result.
func (w *Worker) heartbeatLoop(ctx context.Context, c *codec, inst *workerInstruments, run *workerRun, stop <-chan struct{}) {
	statsEvery := w.StatsEvery
	if statsEvery <= 0 {
		statsEvery = 5
	}
	t := time.NewTicker(w.HeartbeatEvery)
	defer t.Stop()
	for n := 0; ; n++ {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			m := message{Type: msgHeartbeat, WorkerID: w.ID, Spans: run.spans.drain()}
			if n%statsEvery == 0 {
				s := inst.snapshot(c)
				m.Type = msgStats
				m.Stats = &s
				// Piggyback the delta-encoded metrics snapshot on the
				// stats cadence — the worker half of the telemetry plane.
				m.Telemetry = run.shipper.Ship()
			}
			run.stamp(&m)
			w.mirror(m.Spans)
			if err := c.send(m); err != nil {
				// Return undelivered spans so a later flush can retry.
				run.spans.add(m.Spans...)
				return
			}
		}
	}
}

// runExec invokes the executor under the task's execution budget — the
// smaller of the worker's ExecTimeout and the task's wire-carried
// TimeoutNs, zero meaning none. On timeout the context handed to the
// executor is cancelled and a StageExec timeout error returned; the late
// return of an executor that ignores cancellation is discarded.
func (w *Worker) runExec(ctx context.Context, t *Task) ([]byte, error) {
	budget := w.ExecTimeout
	if tb := time.Duration(t.TimeoutNs); tb > 0 && (budget <= 0 || tb < budget) {
		budget = tb
	}
	if budget <= 0 {
		out, err := w.Exec(ctx, t.Payload)
		return out, obs.Wrap(err)
	}
	ectx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	type execOut struct {
		out []byte
		err error
	}
	done := make(chan execOut, 1)
	go func() {
		out, err := w.Exec(ectx, t.Payload)
		done <- execOut{out, err}
	}()
	select {
	case r := <-done:
		// The executor's error crossed the done channel to get here:
		// exactly the cross-goroutine hop a return trace records and a
		// stack trace loses.
		return r.out, obs.Wrap(r.err)
	case <-ectx.Done():
		if err := ctx.Err(); err != nil {
			// Worker-level cancellation (shutdown or preemption), not a
			// task timeout: surface it so the caller's preemption path
			// exits without reporting and the master requeues the task.
			return nil, err
		}
		return nil, obs.Wrap(StageError(StageExec, fmt.Errorf("workqueue: execution exceeded %s budget", budget)))
	}
}

// Dial connects to a master over TCP and runs until shutdown.
func (w *Worker) Dial(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("workqueue: dial master %s: %w", addr, err)
	}
	if w.WrapConn != nil {
		conn = w.WrapConn(conn)
	}
	return w.Run(ctx, conn)
}

// Redial runs the worker against addr, reconnecting with exponential
// backoff + jitter whenever the connection drops, until the master sends
// a shutdown, ctx is cancelled, or MaxReconnects consecutive attempts
// fail. It is the long-lived form of Dial for elastic pools where master
// restarts and transient partitions are routine (§IV's scavenged
// deployments).
func (w *Worker) Redial(ctx context.Context, addr string) error {
	backoff := w.ReconnectBackoff.withDefaults(50*time.Millisecond, 5*time.Second)
	if w.ReconnectBackoff.Jitter == 0 {
		backoff.Jitter = 0.2
	}
	// The jitter draw is seeded from the worker ID: reconnect schedules
	// stay reproducible for a fixed pool layout, while distinct workers
	// de-synchronize after a shared master restart.
	rng := rand.New(rand.NewSource(int64(hashString(w.ID))))
	lg := w.Logger.With(obs.WorkerID(w.ID))
	var d net.Dialer
	failures := 0
	for attempt := 1; ; attempt++ {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if w.WrapConn != nil {
				conn = w.WrapConn(conn)
			}
			failures = 0
			err = w.Run(ctx, conn)
			if err == nil {
				// Clean shutdown from the master (or ctx cancellation).
				return nil
			}
			attempt = 0 // restart the backoff schedule after a live connection
		} else {
			failures++
			if w.MaxReconnects > 0 && failures >= w.MaxReconnects {
				return fmt.Errorf("workqueue: worker %s: %d consecutive dial failures: %w", w.ID, failures, err)
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		delay := backoff.Delay(attempt, rng)
		lg.Info("reconnecting to master",
			obs.F("addr", addr), obs.F("backoff_ms", delay.Milliseconds()), obs.Err(err))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
	}
}

// hashString is FNV-1a, used to derive per-worker jitter seeds.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
