package workqueue

import (
	"bufio"
	"net"
)

// DecodeFrame runs one frame through the production codec's recv path.
// It exists for external test packages (FuzzDecode lives outside the
// package because its corpus is built with internal/chaos, which imports
// workqueue — an in-package import would cycle).
func DecodeFrame(line []byte) error {
	a, b := net.Pipe()
	defer func() { _ = a.Close(); _ = b.Close() }()
	go func() {
		_, _ = a.Write(line)
		_ = a.Close() // EOF terminates frames without a newline
	}()
	_, err := newCodec(b).recv()
	return err
}

// MaxFrameBytes exposes the frame cap to external tests.
const MaxFrameBytes = maxFrameBytes

// EncodeTaskFrame produces one valid JSON wire frame (CRC stamped by the
// production send path) carrying a task — pristine material for external
// tests to mangle.
func EncodeTaskFrame(id, job string, payload []byte) []byte {
	a, b := net.Pipe()
	defer func() { _ = a.Close(); _ = b.Close() }()
	framed := make(chan []byte, 1)
	go func() {
		line, _ := bufio.NewReader(b).ReadBytes('\n')
		framed <- line
	}()
	c := newCodec(a)
	c.setJSON(true)
	_ = c.send(message{Type: msgTask, Task: &Task{ID: id, JobID: job, Payload: payload}})
	return <-framed
}

// EncodeTaskFrameBinary is EncodeTaskFrame for the binary wire format:
// one complete length-prefixed frame, CRC stamped, produced by the
// production encoder.
func EncodeTaskFrameBinary(id, job string, payload []byte) []byte {
	m := message{Type: msgTask, Task: &Task{ID: id, JobID: job, Payload: payload}}
	m.CRC = m.checksum()
	frame, err := appendWireFrame(nil, &m)
	if err != nil {
		panic(err)
	}
	return frame
}

// EncodeResultBatchFrameBinary produces one complete binary frame
// carrying a batch of n synthetic results — material for the frame-cap
// and oversize-batch-count tests.
func EncodeResultBatchFrameBinary(n, payloadBytes int) []byte {
	m := message{Type: msgResultBatch, WorkerID: "w"}
	for i := 0; i < n; i++ {
		m.Results = append(m.Results, Result{
			TaskID: "t", JobID: "j", WorkerID: "w",
			Output: make([]byte, payloadBytes),
		})
	}
	m.CRC = m.checksum()
	frame, err := appendWireFrame(nil, &m)
	if err != nil {
		panic(err)
	}
	return frame
}
