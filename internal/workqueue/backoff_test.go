package workqueue

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	c := BackoffConfig{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1
		20 * time.Millisecond,  // attempt 2
		40 * time.Millisecond,  // attempt 3
		80 * time.Millisecond,  // attempt 4
		100 * time.Millisecond, // attempt 5 capped (would be 160ms)
		100 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := c.Delay(i+1, nil); got != w {
			t.Errorf("attempt %d: got %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range attempts clamp to the first delay.
	if got := c.Delay(0, nil); got != 10*time.Millisecond {
		t.Errorf("attempt 0: got %v, want base", got)
	}
	if got := c.Delay(-3, nil); got != 10*time.Millisecond {
		t.Errorf("attempt -3: got %v, want base", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	c := BackoffConfig{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(42))
	base := float64(100 * time.Millisecond)
	lo := time.Duration(base * 0.9)
	hi := time.Duration(base * 1.1)
	varied := false
	prev := time.Duration(-1)
	for i := 0; i < 1000; i++ {
		d := c.Delay(1, rng)
		if d < lo || d > hi {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, lo, hi)
		}
		if prev >= 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jittered delays never varied")
	}
	// Same seed → same draw sequence (retry schedules stay reproducible).
	a := c.Delay(3, rand.New(rand.NewSource(7)))
	b := c.Delay(3, rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	// Nil rng means no jitter at all.
	if got := c.Delay(1, nil); got != 100*time.Millisecond {
		t.Fatalf("nil rng: got %v, want exact base", got)
	}
}

func TestBackoffDisabled(t *testing.T) {
	c := BackoffConfig{Base: -1}
	if !c.disabled() {
		t.Fatal("negative Base must read as disabled")
	}
	for attempt := 1; attempt < 5; attempt++ {
		if got := c.Delay(attempt, nil); got != 0 {
			t.Fatalf("disabled backoff attempt %d: got %v, want 0", attempt, got)
		}
	}
	if (BackoffConfig{}).disabled() {
		t.Fatal("zero value must not read as disabled — it means defaults")
	}
}

func TestBackoffWithDefaults(t *testing.T) {
	got := BackoffConfig{}.withDefaults(5*time.Millisecond, time.Second)
	if got.Base != 5*time.Millisecond || got.Max != time.Second || got.Factor != 2 {
		t.Fatalf("zero config defaults wrong: %+v", got)
	}
	// Explicit fields survive.
	c := BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 3, Jitter: 0.5}
	got = c.withDefaults(5*time.Millisecond, time.Second)
	if got != c {
		t.Fatalf("explicit config clobbered: %+v", got)
	}
	// Invalid jitter is dropped to zero, invalid factor to 2.
	got = BackoffConfig{Base: time.Millisecond, Jitter: 1.5, Factor: 0.5}.withDefaults(5*time.Millisecond, time.Second)
	if got.Jitter != 0 || got.Factor != 2 {
		t.Fatalf("invalid jitter/factor not sanitized: %+v", got)
	}
	// Disabled passes through untouched.
	if !(BackoffConfig{Base: -1}).withDefaults(5*time.Millisecond, time.Second).disabled() {
		t.Fatal("withDefaults must preserve disabled state")
	}
}
