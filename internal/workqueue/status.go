package workqueue

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// Status is the master's monitoring snapshot — the observability hook the
// paper's feedback loop needs (it samples job progress at 1 Hz; §IV-C
// watches output timestamps, this exposes the same signals directly).
type Status struct {
	Workers     int         `json:"workers"`
	QueuedTasks int         `json:"queuedTasks"`
	Jobs        []JobStatus `json:"jobs"`
	// Quarantined counts poisoned tasks parked after exhausting their
	// retry budget (inspect them via Master.Quarantined).
	Quarantined int `json:"quarantined"`
	// WorkersDetail is the per-worker health registry: liveness state,
	// last-seen time, throughput estimates and straggler flags.
	WorkersDetail []WorkerHealth `json:"workersDetail"`
}

// JobStatus is the wire form of one job's progress.
type JobStatus struct {
	JobID       string        `json:"jobId"`
	Submitted   int           `json:"submitted"`
	Completed   int           `json:"completed"`
	Failed      int           `json:"failed"`
	Done        bool          `json:"done"`
	ExecTime    time.Duration `json:"execTimeNs"`
	FirstSubmit time.Time     `json:"firstSubmit"`
}

// Status snapshots the master.
func (m *Master) Status() Status {
	stats := m.AllStats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].JobID < stats[j].JobID })
	st := Status{
		Workers:       m.WorkerCount(),
		QueuedTasks:   m.QueueLen(),
		Jobs:          make([]JobStatus, 0, len(stats)),
		Quarantined:   len(m.Quarantined()),
		WorkersDetail: m.ClusterHealth(),
	}
	for _, js := range stats {
		st.Jobs = append(st.Jobs, JobStatus{
			JobID:       js.JobID,
			Submitted:   js.Submitted,
			Completed:   js.Completed,
			Failed:      js.Failed,
			Done:        js.Done(),
			ExecTime:    js.ExecTime,
			FirstSubmit: js.FirstSubmit,
		})
	}
	return st
}

// StatusHandler serves the master's Status as JSON — mount it on any mux
// (GET only).
func (m *Master) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
