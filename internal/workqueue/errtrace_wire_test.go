package workqueue

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/social-sensing/sstd/internal/obs"
)

// failingInner is the origin of the traced failure; failingOuter adds a
// second return boundary so the wire trace has a real path to show.
func failingInner() error {
	return obs.Wrap(errors.New("corrupt shard"))
}

func failingOuter() error {
	return obs.Wrap(failingInner())
}

// TestErrTraceCrossesWire runs a real master/worker exchange (net.Pipe
// via Pool) with an executor that fails through two obs.Wrap return
// boundaries, and asserts the worker-side return trace arrives on the
// master intact: origin first, frames joined with " -> ".
func TestErrTraceCrossesWire(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 4})
	p := NewPool(m, func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, failingOuter()
	})
	defer p.Close()
	p.Resize(ctx, 1)

	if err := m.Submit(Task{ID: "t0", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	results := collect(t, m, 1)
	r := results[0]
	if r.Err == "" {
		t.Fatalf("expected a failed result, got %+v", r)
	}
	if r.ErrTrace == "" {
		t.Fatalf("result has no error return trace: %+v", r)
	}
	frames := strings.Split(r.ErrTrace, " -> ")
	if len(frames) < 2 {
		t.Fatalf("trace %q has %d frames, want >= 2", r.ErrTrace, len(frames))
	}
	if !strings.Contains(frames[0], "failingInner") {
		t.Errorf("first frame %q should be the origin failingInner", frames[0])
	}
	var sawOuter bool
	for _, f := range frames[1:] {
		if strings.Contains(f, "failingOuter") {
			sawOuter = true
		}
	}
	if !sawOuter {
		t.Errorf("trace %q is missing the failingOuter return boundary", r.ErrTrace)
	}
}
