package workqueue

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// WorkerState is the liveness state of one worker as judged by the
// master from heartbeats and results: alive → suspect (one liveness
// window missed) → dead (evicted, in-flight task requeued).
type WorkerState string

const (
	WorkerAlive   WorkerState = "alive"
	WorkerSuspect WorkerState = "suspect"
	WorkerDead    WorkerState = "dead"
)

// WorkerHealth is one worker's row in the master's health registry — the
// payload of the /cluster endpoint and Status.WorkersDetail.
type WorkerHealth struct {
	ID    string      `json:"id"`
	State WorkerState `json:"state"`
	// Reason explains a dead state ("heartbeat timeout", "disconnected",
	// "released").
	Reason      string    `json:"reason,omitempty"`
	ConnectedAt time.Time `json:"connectedAt"`
	LastSeen    time.Time `json:"lastSeen"`
	// TasksCompleted / TasksFailed count results observed by the master
	// from this worker (failed = results carrying an error).
	TasksCompleted int64 `json:"tasksCompleted"`
	TasksFailed    int64 `json:"tasksFailed"`
	// EWMAExecMs is the exponentially weighted moving average of the
	// worker's task execution time; TasksPerSec the EWMA completion rate.
	EWMAExecMs  float64 `json:"ewmaExecMs"`
	TasksPerSec float64 `json:"tasksPerSec"`
	// Straggler flags a worker whose EWMA exec time exceeds the
	// configured factor times the cluster median.
	Straggler bool `json:"straggler"`
	// InflightTask is the oldest un-acked task (the next expected ack);
	// InflightCount the size of the whole dispatch window — larger than 1
	// only with task batching.
	InflightTask  string `json:"inflightTask,omitempty"`
	InflightCount int    `json:"inflightCount,omitempty"`
	Heartbeats    int64  `json:"heartbeats"`
	// EWMATransferMs is the master-measured wire transfer time per task
	// (round trip minus worker-reported execution), smoothed.
	EWMATransferMs float64 `json:"ewmaTransferMs"`
	// ClockSkewMs estimates the worker clock's offset from the master
	// clock (positive = worker clock ahead); RTTMs the message round-trip
	// time. Both are NTP-style estimates from the send/receive timestamps
	// piggybacked on heartbeats, stats and results.
	ClockSkewMs float64 `json:"clockSkewMs"`
	RTTMs       float64 `json:"rttMs"`
	// Remote is the worker's last self-reported stats snapshot (nil
	// until the first stats message arrives).
	Remote *WorkerStats `json:"remote,omitempty"`
}

// EWMA smoothing factors: exec time favors history (straggler detection
// should not flip on one outlier), the rate tracks load changes faster.
// Clock-leg and transfer estimates also favor history: one delayed
// message must not yank the skew that aligns remote span timestamps.
const (
	ewmaExecAlpha     = 0.2
	ewmaRateAlpha     = 0.3
	ewmaClockAlpha    = 0.2
	ewmaTransferAlpha = 0.2
)

// defaultStragglerFactor flags workers slower than 2x the cluster median.
const defaultStragglerFactor = 2.0

// deadRetention bounds how many departed workers the registry remembers
// for observability before the oldest entries are dropped.
const deadRetention = 64

// workerEntry is the registry's mutable record for one worker.
type workerEntry struct {
	id string
	// seq is the worker's attach sequence number; the master uses it to
	// stagger each handler's preferred scheduler shard so idle handlers
	// do not all start their steal scan at shard zero.
	seq         int
	state       WorkerState
	reason      string
	connectedAt time.Time
	lastSeen    time.Time
	wake        context.CancelFunc
	conn        net.Conn
	// codec is the handler's framed connection, kept so the master can
	// broadcast control frames (FreezeRings) from outside the handler
	// goroutine — codec sends are mutex-serialized. Nil in tests that
	// attach without a connection.
	codec    *codec
	released bool
	// inflight is the dispatch-ordered window of un-acked task IDs; with
	// batching a worker may hold many at once, the head being the next
	// expected ack.
	inflight    []string
	heartbeats  int64
	tasksDone   int64
	tasksFailed int64
	ewmaExecMs  float64
	ewmaRate    float64
	lastDone    time.Time
	remote      *WorkerStats
	prev        WorkerStats // previous snapshot, for delta aggregation

	// Clock alignment: EWMAs of the two one-way message legs. d1 is the
	// worker→master leg observed on the master clock (receive time minus
	// the worker's SentUnixNano stamp = transit − skew); d2 the
	// master→worker leg observed on the worker clock (the reported
	// TaskDelayNs = transit + skew). Assuming symmetric transit,
	// skew = (d2−d1)/2 and RTT = d1+d2 — NTP's derivation.
	d1Ns, d2Ns   float64
	hasD1, hasD2 bool
	// ewmaTransferMs smooths the master-measured per-task wire transfer
	// time (round trip minus worker-reported execution).
	ewmaTransferMs float64
	hasTransfer    bool
	// wasStraggler remembers the previous health snapshot's straggler
	// verdict so the flight recorder trips only on the flag's rising edge.
	wasStraggler bool
}

// skewNs returns the estimated worker-clock offset from the master clock
// in nanoseconds (positive = worker ahead), and whether both legs have
// been observed. Callers hold cl.mu.
func (e *workerEntry) skewNs() (float64, bool) {
	if !e.hasD1 || !e.hasD2 {
		return 0, false
	}
	return (e.d2Ns - e.d1Ns) / 2, true
}

// cluster is the master's per-worker health registry: it tracks every
// attached worker's liveness, throughput and self-reported telemetry,
// aggregates remote snapshots into the master's metrics registry under
// per-worker labels, and keeps recently departed workers visible.
type cluster struct {
	mu     sync.Mutex
	active map[string]*workerEntry
	gone   []*workerEntry // most recent last, capped at deadRetention
	// attachSeq numbers attaches; each worker's entry keeps its value so
	// the master can spread handlers across scheduler shards.
	attachSeq int

	reg    *obs.Registry // master metrics registry; may be nil
	factor float64       // straggler threshold multiplier

	cHeartbeats *obs.Counter
	cEvictions  *obs.Counter
	gSuspect    *obs.Gauge
}

func newCluster(reg *obs.Registry, stragglerFactor float64) *cluster {
	if stragglerFactor <= 0 {
		stragglerFactor = defaultStragglerFactor
	}
	return &cluster{
		active:      make(map[string]*workerEntry),
		reg:         reg,
		factor:      stragglerFactor,
		cHeartbeats: reg.Counter("wq_heartbeats_total"),
		cEvictions:  reg.Counter("wq_worker_evictions_total"),
		gSuspect:    reg.Gauge("wq_workers_suspect"),
	}
}

// workerLabel builds a per-worker labeled metric name that the obs
// Prometheus exporter renders as name{worker="id"}.
func workerLabel(name, id string) string {
	return fmt.Sprintf("%s{worker=%q}", name, id)
}

// attach registers a connecting worker. Duplicate live IDs are rejected:
// two connections claiming one identity would corrupt the health record.
func (cl *cluster) attach(id string, wake context.CancelFunc, conn net.Conn, c *codec) (*workerEntry, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, dup := cl.active[id]; dup {
		return nil, fmt.Errorf("workqueue: worker id %q already attached", id)
	}
	now := time.Now()
	cl.attachSeq++
	e := &workerEntry{
		id:          id,
		seq:         cl.attachSeq,
		state:       WorkerAlive,
		connectedAt: now,
		lastSeen:    now,
		wake:        wake,
		conn:        conn,
		codec:       c,
	}
	cl.active[id] = e
	cl.reg.Gauge(workerLabel("wq_worker_up", id)).Set(1)
	return e, nil
}

// detach removes a worker from the active set when its handler exits,
// remembering it as dead with the given reason (unless liveness already
// marked it dead with a more specific one).
func (cl *cluster) detach(id, reason string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return
	}
	delete(cl.active, id)
	if e.state != WorkerDead {
		e.state = WorkerDead
		e.reason = reason
	}
	e.inflight = nil
	cl.gone = append(cl.gone, e)
	if len(cl.gone) > deadRetention {
		cl.gone = cl.gone[len(cl.gone)-deadRetention:]
	}
	cl.reg.Gauge(workerLabel("wq_worker_up", id)).Set(0)
	cl.updateSuspectGaugeLocked()
}

// seenLocked refreshes liveness on any message from the worker.
func (cl *cluster) seenLocked(e *workerEntry) {
	e.lastSeen = time.Now()
	if e.state == WorkerSuspect {
		e.state = WorkerAlive
		cl.reg.Gauge(workerLabel("wq_worker_up", e.id)).Set(1)
		cl.updateSuspectGaugeLocked()
	}
}

// heartbeat records a liveness ping.
func (cl *cluster) heartbeat(id string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return
	}
	e.heartbeats++
	cl.seenLocked(e)
	cl.cHeartbeats.Inc()
}

// recordStats ingests a worker's self-reported snapshot: it refreshes
// liveness, stores the snapshot for /cluster, and folds the delta since
// the previous snapshot into the master registry under per-worker labels.
func (cl *cluster) recordStats(id string, s *WorkerStats) {
	cl.mu.Lock()
	e, ok := cl.active[id]
	if !ok {
		cl.mu.Unlock()
		return
	}
	e.heartbeats++
	cl.seenLocked(e)
	cl.cHeartbeats.Inc()
	prev := e.prev
	e.prev = *s
	snap := *s
	e.remote = &snap
	reg := cl.reg
	cl.mu.Unlock()

	if reg == nil {
		return
	}
	delta := func(cur, old int64) int64 {
		if cur > old {
			return cur - old
		}
		return 0
	}
	reg.Counter(workerLabel("wq_worker_tasks_total", id)).Add(delta(s.TasksExecuted, prev.TasksExecuted))
	reg.Counter(workerLabel("wq_worker_tasks_failed_total", id)).Add(delta(s.TasksFailed, prev.TasksFailed))
	reg.Counter(workerLabel("wq_worker_bytes_in_total", id)).Add(delta(s.BytesIn, prev.BytesIn))
	reg.Counter(workerLabel("wq_worker_bytes_out_total", id)).Add(delta(s.BytesOut, prev.BytesOut))
	reg.Gauge(workerLabel("wq_worker_goroutines", id)).SetInt(s.Goroutines)
	reg.Gauge(workerLabel("wq_worker_heap_bytes", id)).Set(float64(s.HeapBytes))
	if len(s.Exec.Bounds) > 0 {
		reg.Histogram(workerLabel("wq_worker_exec_ms", id), s.Exec.Bounds).AddSnapshotDelta(prev.Exec, s.Exec)
	}
}

// taskAssigned appends taskID to the worker's in-flight window.
func (cl *cluster) taskAssigned(id, taskID string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if e, ok := cl.active[id]; ok {
		e.inflight = append(e.inflight, taskID)
	}
}

// taskAborted clears the in-flight window after a send failure or worker
// loss (the tasks themselves are requeued by the master).
func (cl *cluster) taskAborted(id string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if e, ok := cl.active[id]; ok {
		e.inflight = nil
	}
}

// taskFinished folds one observed result into the worker's throughput
// estimates. A result is also proof of life.
func (cl *cluster) taskFinished(id string, r Result) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return
	}
	for i, tid := range e.inflight {
		if tid == r.TaskID {
			e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
			break
		}
	}
	cl.seenLocked(e)
	execMs := float64(r.Elapsed) / float64(time.Millisecond)
	if e.tasksDone+e.tasksFailed == 0 {
		e.ewmaExecMs = execMs
	} else {
		e.ewmaExecMs = ewmaExecAlpha*execMs + (1-ewmaExecAlpha)*e.ewmaExecMs
	}
	now := time.Now()
	if !e.lastDone.IsZero() {
		if dt := now.Sub(e.lastDone).Seconds(); dt > 0 {
			inst := 1 / dt
			if e.ewmaRate == 0 {
				e.ewmaRate = inst
			} else {
				e.ewmaRate = ewmaRateAlpha*inst + (1-ewmaRateAlpha)*e.ewmaRate
			}
		}
	}
	e.lastDone = now
	if r.Err != "" {
		e.tasksFailed++
	} else {
		e.tasksDone++
	}
}

// observeClock folds one message's clock timestamps into the worker's
// skew estimate. d1Ns is the worker→master leg (master receive time minus
// the message's SentUnixNano); d2Ns the reported master→worker task
// delivery leg (TaskDelayNs). Pass 0 for a leg the message did not carry.
func (cl *cluster) observeClock(id string, d1Ns, d2Ns int64) {
	if d1Ns == 0 && d2Ns == 0 {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return
	}
	if d1Ns != 0 {
		if !e.hasD1 {
			e.d1Ns, e.hasD1 = float64(d1Ns), true
		} else {
			e.d1Ns = ewmaClockAlpha*float64(d1Ns) + (1-ewmaClockAlpha)*e.d1Ns
		}
	}
	if d2Ns != 0 {
		if !e.hasD2 {
			e.d2Ns, e.hasD2 = float64(d2Ns), true
		} else {
			e.d2Ns = ewmaClockAlpha*float64(d2Ns) + (1-ewmaClockAlpha)*e.d2Ns
		}
	}
}

// clockAdjustNs returns the offset to add to a worker-clock timestamp to
// place it on the master clock (−skew), or 0 until both legs of the
// estimate have been observed.
func (cl *cluster) clockAdjustNs(id string) int64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return 0
	}
	skew, ok := e.skewNs()
	if !ok {
		return 0
	}
	return int64(-skew)
}

// observeTransfer folds one task's measured wire transfer time (master
// round trip minus worker-reported execution) into the worker's EWMA.
func (cl *cluster) observeTransfer(id string, transfer time.Duration) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return
	}
	ms := float64(transfer) / float64(time.Millisecond)
	if !e.hasTransfer {
		e.ewmaTransferMs, e.hasTransfer = ms, true
	} else {
		e.ewmaTransferMs = ewmaTransferAlpha*ms + (1-ewmaTransferAlpha)*e.ewmaTransferMs
	}
}

// checkLiveness transitions one worker's state from the time since its
// last message: past suspectAfter it becomes suspect, past deadAfter it
// is marked dead and the entry's reason is set — the caller then severs
// the connection, which requeues any in-flight task through the normal
// worker-loss path. Returns the state after the check.
func (cl *cluster) checkLiveness(id string, suspectAfter, deadAfter time.Duration) WorkerState {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return WorkerDead
	}
	silent := time.Since(e.lastSeen)
	switch {
	case deadAfter > 0 && silent >= deadAfter:
		if e.state != WorkerDead {
			e.state = WorkerDead
			e.reason = fmt.Sprintf("heartbeat timeout (silent %s)", silent.Round(time.Millisecond))
			cl.cEvictions.Inc()
			cl.reg.Gauge(workerLabel("wq_worker_up", id)).Set(0)
			cl.updateSuspectGaugeLocked()
		}
	case suspectAfter > 0 && silent >= suspectAfter:
		if e.state == WorkerAlive {
			e.state = WorkerSuspect
			cl.reg.Gauge(workerLabel("wq_worker_up", id)).Set(0.5)
			cl.updateSuspectGaugeLocked()
		}
	}
	return e.state
}

func (cl *cluster) updateSuspectGaugeLocked() {
	if cl.gSuspect == nil {
		return
	}
	n := 0
	for _, e := range cl.active {
		if e.state == WorkerSuspect {
			n++
		}
	}
	cl.gSuspect.SetInt(n)
}

// release marks a worker for graceful exit and returns its wake func
// (nil when unknown).
func (cl *cluster) release(id string) context.CancelFunc {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	if !ok {
		return nil
	}
	e.released = true
	return e.wake
}

func (cl *cluster) isReleased(id string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	e, ok := cl.active[id]
	return ok && e.released
}

// count reports attached (non-departed) workers.
func (cl *cluster) count() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.active)
}

// workerCodec pairs a worker ID with its framed connection for control
// broadcasts.
type workerCodec struct {
	id string
	c  *codec
}

// codecs snapshots the attached workers' codecs (sorted by ID) so the
// cluster-dump collector can broadcast FreezeRings outside cl.mu.
func (cl *cluster) codecs() []workerCodec {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]workerCodec, 0, len(cl.active))
	for id, e := range cl.active {
		if e.codec != nil {
			out = append(out, workerCodec{id: id, c: e.codec})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// health snapshots every known worker — attached first (sorted by ID),
// then recently departed — computing straggler flags against the cluster
// median EWMA exec time.
func (cl *cluster) health() []WorkerHealth {
	// Trip after the registry lock is released (deferred funcs run LIFO):
	// a newly flagged straggler freezes the flight-recorder rings and
	// dumps the timing history showing where the slow worker's time went.
	var flipped []string
	defer func() {
		for _, detail := range flipped {
			flightrec.Trip(flightrec.TrigStraggler, "worker flagged straggler: "+detail)
		}
	}()
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]WorkerHealth, 0, len(cl.active)+len(cl.gone))
	// Median over active workers that have completed work; the lower
	// median for even counts keeps a 2-worker cluster able to flag its
	// slow half.
	ewmas := make([]float64, 0, len(cl.active))
	for _, e := range cl.active {
		if e.tasksDone+e.tasksFailed > 0 {
			ewmas = append(ewmas, e.ewmaExecMs)
		}
	}
	sort.Float64s(ewmas)
	median := 0.0
	if len(ewmas) > 0 {
		median = ewmas[(len(ewmas)-1)/2]
	}
	for _, e := range cl.active {
		h := healthRow(e)
		h.Straggler = len(ewmas) >= 2 && median > 0 &&
			e.tasksDone+e.tasksFailed > 0 && e.ewmaExecMs > cl.factor*median
		if h.Straggler && !e.wasStraggler {
			flipped = append(flipped, fmt.Sprintf("%s (%.1fms vs median %.1fms)", e.id, e.ewmaExecMs, median))
		}
		e.wasStraggler = h.Straggler
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	for i := len(cl.gone) - 1; i >= 0; i-- {
		out = append(out, healthRow(cl.gone[i]))
	}
	return out
}

func healthRow(e *workerEntry) WorkerHealth {
	h := WorkerHealth{
		ID:             e.id,
		State:          e.state,
		Reason:         e.reason,
		ConnectedAt:    e.connectedAt,
		LastSeen:       e.lastSeen,
		TasksCompleted: e.tasksDone,
		TasksFailed:    e.tasksFailed,
		EWMAExecMs:     e.ewmaExecMs,
		TasksPerSec:    e.ewmaRate,
		InflightCount:  len(e.inflight),
		Heartbeats:     e.heartbeats,
		EWMATransferMs: e.ewmaTransferMs,
	}
	if len(e.inflight) > 0 {
		h.InflightTask = e.inflight[0]
	}
	if skew, ok := e.skewNs(); ok {
		h.ClockSkewMs = skew / float64(time.Millisecond)
		h.RTTMs = (e.d1Ns + e.d2Ns) / float64(time.Millisecond)
	}
	if e.remote != nil {
		snap := *e.remote
		h.Remote = &snap
	}
	return h
}

// ClusterHealth snapshots the master's per-worker health registry:
// attached workers first (sorted by ID), then recently departed ones.
func (m *Master) ClusterHealth() []WorkerHealth {
	return m.cluster.health()
}

// ClusterHandler serves the health registry as JSON — the /cluster
// endpoint (GET only).
func (m *Master) ClusterHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.ClusterHealth()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
