package workqueue

import (
	"net"
	"testing"
	"time"
)

// FuzzCodecRecv feeds arbitrary bytes to the master's wire decoder: it
// must either produce a message or an error, never panic or hang — a
// malformed or malicious worker cannot take the master down.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"hello","worker_id":"w"}` + "\n"))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t"}}` + "\n"))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t","error":"x","error_stage":"exec"}}` + "\n"))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w"}` + "\n"))
	f.Add([]byte(`{"type":"stats","worker_id":"w","stats":{"tasks_executed":3,"tasks_failed":1,"bytes_in":10,"bytes_out":20,"goroutines":7,"heap_bytes":4096,"uptime_ms":100,"exec":{"count":2,"sum":5.5,"bounds":[1,10],"counts":[1,1,0]}}}` + "\n"))
	f.Add([]byte(`{"type":"stats","worker_id":"w"}` + "\n"))                                      // stats with nil payload
	f.Add([]byte(`{"type":"stats","worker_id":"w","stats":{"exec":{"counts":null}}}` + "\n"))      // degenerate histogram
	f.Add([]byte(`{"type":"stats","worker_id":"w","stats":{"exec":{"bounds":[10,1],"counts":[1]}}}` + "\n")) // layout mismatch
	f.Add([]byte(`{"type":"task","task":{"id":"t","job_id":"j","payload":"eA==","trace":{"trace_id":"abc","parent_span_id":7},"sent_ns":123}}` + "\n"))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t","worker_id":"w"},"sent_ns":5,"task_delay_ns":9,"spans":[{"trace_id":"abc","parent":7,"name":"exec","task_id":"t","start_unix_ns":100,"dur_ns":50}]}` + "\n"))
	f.Add([]byte(`{"type":"heartbeat","worker_id":"w","sent_ns":1,"spans":[{"name":"send","start_unix_ns":-1,"dur_ns":-5}]}` + "\n")) // negative span clock
	f.Add([]byte(`{"type":"task","task":{"id":"t","trace":{}}}` + "\n"))                                                            // empty trace context
	f.Add([]byte(`{"type":"result","result":{"task_id":"t"},"spans":null,"task_delay_ns":-9223372036854775808}` + "\n"))            // MinInt64 delay
	f.Add([]byte(`{"type":"heartbeat","worker_id":"` + "\x00" + `"}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte{0xff, 0xfe, '\n'})
	f.Fuzz(func(t *testing.T, line []byte) {
		// Ensure a newline exists so recv terminates.
		if len(line) == 0 || line[len(line)-1] != '\n' {
			line = append(line, '\n')
		}
		a, b := net.Pipe()
		defer func() { _ = a.Close(); _ = b.Close() }()
		c := newCodec(b)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = c.recv() // must return, value or error both fine
		}()
		if _, err := a.Write(line); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("recv hung on malformed input")
		}
	})
}
