package workqueue

import (
	"net"
	"testing"
	"time"
)

// FuzzCodecRecv feeds arbitrary bytes to the master's wire decoder: it
// must either produce a message or an error, never panic or hang — a
// malformed or malicious worker cannot take the master down.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"hello","worker_id":"w"}` + "\n"))
	f.Add([]byte(`{"type":"result","result":{"task_id":"t"}}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte{0xff, 0xfe, '\n'})
	f.Fuzz(func(t *testing.T, line []byte) {
		// Ensure a newline exists so recv terminates.
		if len(line) == 0 || line[len(line)-1] != '\n' {
			line = append(line, '\n')
		}
		a, b := net.Pipe()
		defer func() { _ = a.Close(); _ = b.Close() }()
		c := newCodec(b)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = c.recv() // must return, value or error both fine
		}()
		if _, err := a.Write(line); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("recv hung on malformed input")
		}
	})
}
