package workqueue

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
)

// TestShutdownFlushesFinalStatsAndTelemetry is the regression test for
// the graceful-shutdown flush: a short-lived worker that never reached
// its stats cadence must still deliver its final WorkerStats snapshot
// and telemetry ship on the way out, so its last window of work reaches
// the master's registry and time-series store.
func TestShutdownFlushesFinalStatsAndTelemetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	store := tsdb.New(0)
	m := NewMaster(MasterConfig{ResultBuffer: 8, Metrics: reg, Telemetry: store})

	mconn, wconn := pipePair()
	done := make(chan struct{})
	go func() { _ = m.HandleWorker(ctx, mconn); close(done) }()
	wdone := make(chan struct{})
	go func() {
		w := &Worker{
			ID:      "brief",
			Exec:    echoExec,
			Metrics: obs.NewRegistry(),
			// A long heartbeat interval: no periodic stats can fire during
			// the test, so any snapshot the master sees came from the
			// shutdown flush.
			HeartbeatEvery: time.Hour,
		}
		_ = w.Run(ctx, wconn)
		close(wdone)
	}()

	for i := 0; i < 3; i++ {
		if err := m.Submit(Task{ID: string(rune('a' + i)), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, m, 3)
	m.Shutdown()
	<-done
	<-wdone

	// The final snapshot landed in the master registry under the worker's
	// label...
	if got := reg.Counter(workerLabel("wq_worker_tasks_total", "brief")).Value(); got != 3 {
		t.Errorf("wq_worker_tasks_total{worker=brief} = %d, want 3 (shutdown flush)", got)
	}
	// ...and the telemetry ship landed in the time-series store under the
	// host label.
	res := store.Run(tsdb.Query{
		Name:     "worker_tasks_executed_total",
		Matchers: map[string]string{"host": "brief"},
	}, time.Now())
	if len(res) != 1 || len(res[0].Points) == 0 {
		t.Fatalf("tsdb series for brief worker = %+v, want 1 series with points", res)
	}
	if last := res[0].Points[len(res[0].Points)-1].V; last != 3 {
		t.Errorf("worker_tasks_executed_total last point = %v, want 3", last)
	}
}

// TestCollectClusterDumpMergesHosts drives a full cross-host collection
// round: two in-process workers with private recorders answer the
// FreezeRings broadcast, and the master writes one merged multi-host
// Chrome trace with master and both workers on distinct process lanes.
func TestCollectClusterDumpMergesHosts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	mrec, err := flightrec.NewRecorder(flightrec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaster(MasterConfig{
		ResultBuffer: 8,
		FlightRec:    mrec,
		ClusterDumps: &ClusterDumpConfig{Dir: dir, Timeout: 5 * time.Second, Cooldown: time.Millisecond},
	})
	defer m.Shutdown()

	for _, id := range []string{"w-1", "w-2"} {
		rec, err := flightrec.NewRecorder(flightrec.Config{})
		if err != nil {
			t.Fatal(err)
		}
		mconn, wconn := pipePair()
		go func() { _ = m.HandleWorker(ctx, mconn) }()
		go func(id string) {
			w := &Worker{ID: id, Exec: echoExec, FlightRec: rec}
			_ = w.Run(ctx, wconn)
		}(id)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 2 }, "workers attached")

	// A little traffic so every host's codec ring holds events.
	for i := 0; i < 4; i++ {
		if err := m.Submit(Task{ID: string(rune('a' + i)), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, m, 4)

	info, err := m.CollectClusterDump(flightrec.TrigManual, "test collection")
	if err != nil {
		t.Fatal(err)
	}
	wantHosts := []string{"master", "w-1", "w-2"}
	if len(info.Hosts) != 3 {
		t.Fatalf("dump hosts = %v, want %v", info.Hosts, wantHosts)
	}
	for i, h := range wantHosts {
		if info.Hosts[i] != h {
			t.Fatalf("dump hosts = %v, want %v", info.Hosts, wantHosts)
		}
	}
	if info.Events == 0 {
		t.Error("merged dump carries no events")
	}
	if want := filepath.Join(dir, "flightrec-cluster-001-manual.trace.json"); info.Path != want {
		t.Errorf("dump path = %q, want %q", info.Path, want)
	}

	// The merged trace parses and puts each host on its own pid lane.
	raw, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	lanes := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			lanes[e.Args["name"]] = e.Pid
		}
	}
	for name, want := range map[string]int{"master": 1, "host w-1": 2, "host w-2": 3} {
		if lanes[name] != want {
			t.Errorf("lane %q = pid %d, want %d (all lanes: %v)", name, lanes[name], want, lanes)
		}
	}

	// History records the round; a second collection inside the pending
	// window is refused, not stacked.
	if h := m.ClusterDumpHistory(); len(h) != 1 || h[0].Seq != 1 {
		t.Errorf("dump history = %+v, want the one round", h)
	}
}

// TestWorkerTripStartsClusterCollection: a worker-local recorder trip
// ships an unsolicited dump, which the master must turn into a full
// cluster-wide collection seeded with that worker's events.
func TestWorkerTripStartsClusterCollection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	m := NewMaster(MasterConfig{
		ResultBuffer: 8,
		FlightRec:    mustRecorder(t),
		ClusterDumps: &ClusterDumpConfig{Dir: dir, Timeout: 5 * time.Second, Cooldown: time.Millisecond},
	})
	defer m.Shutdown()

	wrec := mustRecorder(t)
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{ID: "tripper", Exec: echoExec, FlightRec: wrec}
		_ = w.Run(ctx, wconn)
	}()
	waitFor(t, func() bool { return m.WorkerCount() == 1 }, "worker attached")

	if !wrec.Trip(flightrec.TrigManual, "worker-side trip") {
		t.Fatal("worker recorder refused the trip")
	}
	waitFor(t, func() bool { return len(m.ClusterDumpHistory()) == 1 }, "cluster collection after worker trip")
	h := m.ClusterDumpHistory()[0]
	if h.Trigger != flightrec.TrigManual {
		t.Errorf("collection trigger = %q, want %q", h.Trigger, flightrec.TrigManual)
	}
	if len(h.Hosts) != 2 || h.Hosts[0] != "master" || h.Hosts[1] != "tripper" {
		t.Errorf("collection hosts = %v, want [master tripper]", h.Hosts)
	}
	if _, err := os.Stat(h.Path); err != nil {
		t.Errorf("merged trace missing: %v", err)
	}
}

func mustRecorder(t *testing.T) *flightrec.Recorder {
	t.Helper()
	rec, err := flightrec.NewRecorder(flightrec.Config{Cooldown: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
