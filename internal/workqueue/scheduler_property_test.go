package workqueue

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSchedulerPropertyCompleteAndFIFO: for any random push/pull
// interleaving, every pushed task is eventually delivered exactly once and
// tasks within a job come out in submission order.
func TestSchedulerPropertyCompleteAndFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newScheduler(seed, 1+rng.Intn(8))
		n := 1 + rng.Intn(60)
		jobs := 1 + rng.Intn(5)
		pushed := make([]Task, 0, n)
		for i := 0; i < n; i++ {
			task := Task{
				ID:    fmt.Sprintf("t%d", i),
				JobID: fmt.Sprintf("j%d", rng.Intn(jobs)),
			}
			s.push(task)
			pushed = append(pushed, task)
			// Occasionally retune priorities mid-stream.
			if rng.Intn(7) == 0 {
				s.setPriority(task.JobID, rng.Float64()*10)
			}
		}
		ctx := context.Background()
		seen := make(map[string]bool, n)
		lastPerJob := make(map[string]int)
		for i := 0; i < n; i++ {
			task, ok := s.next(ctx)
			if !ok {
				return false
			}
			if seen[task.ID] {
				return false // duplicate delivery
			}
			seen[task.ID] = true
			var idx int
			if _, err := fmt.Sscanf(task.ID, "t%d", &idx); err != nil {
				return false
			}
			if prev, ok := lastPerJob[task.JobID]; ok && idx < prev {
				return false // FIFO within job violated
			}
			lastPerJob[task.JobID] = idx
		}
		if s.len() != 0 {
			return false
		}
		return len(seen) == len(pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
