package workqueue

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// crashLoopTask runs one crash-loop iteration against the master: a
// fresh worker connects, says hello, waits for a task assignment, and
// drops the connection the moment it has one — the tightest retry cycle
// a failing worker can induce. Returns false once the deadline passes
// without an assignment (the task is sitting in backoff).
func crashLoopTask(t *testing.T, ctx context.Context, m *Master, id string, deadline time.Time) bool {
	t.Helper()
	server, client := net.Pipe()
	handlerDone := make(chan struct{})
	go func() {
		_ = m.HandleWorker(ctx, server)
		close(handlerDone)
	}()
	defer func() {
		_ = client.Close()
		<-handlerDone
	}()
	_ = client.SetReadDeadline(deadline)
	c := newCodec(client)
	if err := c.send(message{Type: msgHello, WorkerID: id}); err != nil {
		return false
	}
	for {
		msg, err := c.recv()
		if err != nil {
			return false // deadline hit while the task backs off
		}
		if msg.Type == msgTask {
			return true // crash with the task in flight
		}
		if msg.Type == msgShutdown {
			return false
		}
	}
}

// countCrashes hammers the master with crash-looping workers until the
// deadline and reports how many times a task was actually lost.
func countCrashes(t *testing.T, ctx context.Context, m *Master, label string, d time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(d)
	crashes := 0
	for i := 0; time.Now().Before(deadline); i++ {
		if crashLoopTask(t, ctx, m, fmt.Sprintf("%s-%d", label, i), deadline) {
			crashes++
		}
	}
	return crashes
}

// TestRequeueBackoffBoundsRetryRate is the regression test for the hot
// requeue cycle: before backoff, a crash-looping worker re-acquired the
// same task immediately after every loss, spinning the
// assign/lose/requeue loop at CPU speed. With the default backoff the
// retry count over a fixed window must stay small (the delay series
// 5ms, 10ms, 20ms, ... covers the window in ~8 attempts), while the
// explicitly disabled configuration still spins — proving the test
// would catch the regression.
func TestRequeueBackoffBoundsRetryRate(t *testing.T) {
	const window = 600 * time.Millisecond

	run := func(backoff BackoffConfig) int64 {
		reg := obs.NewRegistry()
		m := NewMaster(MasterConfig{RequeueBackoff: backoff, Metrics: reg})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if err := m.Submit(Task{ID: "t-hot", JobID: "j"}); err != nil {
			t.Fatal(err)
		}
		countCrashes(t, ctx, m, "crasher", window)
		m.Shutdown()
		return reg.Snapshot().Counters["wq_task_retries_total"]
	}

	backed := run(BackoffConfig{}) // zero value = default schedule
	if backed < 2 {
		t.Fatalf("crash loop barely exercised requeue: %d retries", backed)
	}
	if backed > 20 {
		t.Fatalf("backoff failed to pace the requeue cycle: %d retries in %v (want <= 20)", backed, window)
	}

	hot := run(BackoffConfig{Base: -1}) // disabled = pre-backoff behavior
	if hot < backed*2 {
		t.Fatalf("immediate requeue should spin far faster than backed-off (%d vs %d) — is the regression guard still meaningful?", hot, backed)
	}
	t.Logf("retries in %v: %d with backoff, %d without", window, backed, hot)
}

// TestQuarantineLifecycle walks a poison task end to end: it exhausts
// MaxRetries against crash-looping workers, lands in quarantine with a
// failed Result (so its job finishes instead of stalling), and after
// ReleaseQuarantined a healthy worker completes it cleanly.
func TestQuarantineLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMaster(MasterConfig{
		MaxRetries:     2,
		RequeueBackoff: BackoffConfig{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Metrics:        reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer m.Shutdown()

	if err := m.Submit(Task{ID: "poison", JobID: "j", Payload: []byte("boom")}); err != nil {
		t.Fatal(err)
	}

	// Crash until the retry budget (2) is exhausted: losses 1 and 2
	// requeue, loss 3 quarantines and emits the failed Result.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		if !crashLoopTask(t, ctx, m, fmt.Sprintf("crasher-%d", i), deadline) {
			t.Fatalf("crash %d never got the task assigned", i)
		}
	}
	var failed Result
	select {
	case failed = <-m.Results():
	case <-time.After(10 * time.Second):
		t.Fatal("no failed result after retry exhaustion")
	}
	if failed.TaskID != "poison" || !strings.Contains(failed.Err, "quarantined") {
		t.Fatalf("want quarantine failure for poison, got %+v", failed)
	}

	q := m.Quarantined()
	if len(q) != 1 || q[0].Task.ID != "poison" || q[0].Attempts != 3 {
		t.Fatalf("unexpected quarantine contents: %+v", q)
	}
	if got := reg.Snapshot().Counters["wq_tasks_quarantined_total"]; got != 1 {
		t.Fatalf("quarantine counter = %d, want 1", got)
	}
	if err := m.ReleaseQuarantined("no-such-task"); err == nil {
		t.Fatal("releasing an unknown task must error")
	}

	// Release re-submits with a fresh budget; a healthy worker finishes it.
	if err := m.ReleaseQuarantined("poison"); err != nil {
		t.Fatal(err)
	}
	if len(m.Quarantined()) != 0 {
		t.Fatal("quarantine not emptied by release")
	}

	server, client := net.Pipe()
	go func() { _ = m.HandleWorker(ctx, server) }()
	defer func() { _ = client.Close() }()
	c := newCodec(client)
	if err := c.send(message{Type: msgHello, WorkerID: "healthy"}); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := c.recv()
	if err != nil || msg.Type != msgTask || msg.Task.ID != "poison" {
		t.Fatalf("healthy worker expected the released task, got %+v err=%v", msg, err)
	}
	if err := c.send(message{Type: msgResult, WorkerID: "healthy", Result: &Result{
		TaskID: "poison", JobID: "j", WorkerID: "healthy", Output: []byte("ok"),
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-m.Results():
		if r.Err != "" || string(r.Output) != "ok" {
			t.Fatalf("released task should complete cleanly, got %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("released task never completed")
	}
}
