package workqueue

// Differential codec tests: every message type, filled with seeded
// pseudo-random content, must decode to the identical Go value whether
// it traveled as newline-delimited JSON or as a binary wire frame. The
// JSON codec is the reference implementation; the binary codec is the
// optimization under test — any field the fast path drops, reorders or
// re-types shows up here as a DeepEqual diff naming the seed.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// genString draws a short valid-UTF-8 string (JSON cannot carry invalid
// UTF-8, so the codecs are only defined to agree on clean strings).
// Includes multi-byte runes and JSON-escape-sensitive characters.
func genString(rng *rand.Rand) string {
	const alphabet = "abcXYZ079-_./:\"\\\n\téλ中💥 "
	runes := []rune(alphabet)
	n := rng.Intn(24)
	out := make([]rune, n)
	for i := range out {
		out[i] = runes[rng.Intn(len(runes))]
	}
	return string(out)
}

// genBytes draws nil or a non-empty blob — never a non-nil empty slice,
// which both codecs' omitempty semantics collapse to nil on decode.
func genBytes(rng *rand.Rand) []byte {
	if rng.Intn(3) == 0 {
		return nil
	}
	out := make([]byte, 1+rng.Intn(64))
	rng.Read(out)
	return out
}

func genTask(rng *rand.Rand) Task {
	t := Task{
		ID:           genString(rng),
		JobID:        genString(rng),
		Payload:      genBytes(rng),
		Span:         rng.Int63() - rng.Int63(),
		SentUnixNano: rng.Int63(),
		TimeoutNs:    rng.Int63n(int64(time.Minute)),
	}
	if rng.Intn(2) == 0 {
		t.Trace = &TraceContext{TraceID: genString(rng), ParentSpanID: rng.Int63()}
	}
	return t
}

func genResult(rng *rand.Rand) Result {
	return Result{
		TaskID:   genString(rng),
		JobID:    genString(rng),
		WorkerID: genString(rng),
		Output:   genBytes(rng),
		Err:      genString(rng),
		ErrStage: genString(rng),
		ErrTrace: genString(rng),
		Elapsed:  time.Duration(rng.Int63n(int64(time.Hour))),
	}
}

func genHistogramSnapshot(rng *rand.Rand) obs.HistogramSnapshot {
	n := 1 + rng.Intn(5)
	h := obs.HistogramSnapshot{
		Count:  rng.Int63n(1 << 40),
		Sum:    rng.NormFloat64() * 1e6,
		Bounds: make([]float64, n),
		Counts: make([]int64, n+1),
		P50:    rng.Float64() * 100,
		P90:    rng.Float64() * 1000,
		P99:    rng.Float64() * 10000,
	}
	for i := range h.Bounds {
		h.Bounds[i] = float64(i+1) * rng.Float64() * 10
	}
	for i := range h.Counts {
		h.Counts[i] = rng.Int63n(1 << 30)
	}
	return h
}

func genSpans(rng *rand.Rand) []RemoteSpan {
	if rng.Intn(3) == 0 {
		return nil
	}
	out := make([]RemoteSpan, 1+rng.Intn(6))
	for i := range out {
		out[i] = RemoteSpan{
			TraceID:       genString(rng),
			Parent:        rng.Int63(),
			Name:          genString(rng),
			TaskID:        genString(rng),
			StartUnixNano: rng.Int63(),
			DurNs:         rng.Int63n(int64(time.Second)),
		}
	}
	return out
}

func genTelemetry(rng *rand.Rand) *obs.TelemetryShip {
	t := &obs.TelemetryShip{Seq: rng.Int63(), Full: rng.Intn(2) == 0}
	if n := rng.Intn(4); n > 0 {
		t.Counters = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			t.Counters[genString(rng)+"c"] = rng.Int63() - rng.Int63()
		}
	}
	if n := rng.Intn(4); n > 0 {
		t.Gauges = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			t.Gauges[genString(rng)+"g"] = rng.NormFloat64()
		}
	}
	if n := rng.Intn(3); n > 0 {
		t.Hists = make(map[string]obs.HistogramDelta, n)
		for i := 0; i < n; i++ {
			hs := genHistogramSnapshot(rng)
			t.Hists[genString(rng)+"h"] = obs.HistogramDelta{
				Bounds: hs.Bounds, Counts: hs.Counts, Count: hs.Count, Sum: hs.Sum,
			}
		}
	}
	return t
}

func genDump(rng *rand.Rand) *FlightDump {
	d := &FlightDump{
		Seq:     rng.Int63(),
		Host:    genString(rng),
		Trigger: genString(rng),
		Detail:  genString(rng),
	}
	if n := rng.Intn(5); n > 0 {
		d.Events = make([]flightrec.Event, n)
		for i := range d.Events {
			d.Events[i] = flightrec.Event{
				Ring: genString(rng), Probe: genString(rng),
				T0: rng.Int63(), T1: rng.Int63(),
				Arg: rng.Int63() - rng.Int63(), Parent: rng.Int63(),
			}
		}
	}
	return d
}

// genMessage builds a seeded message of the given type with the field
// population the production senders use, plus randomized optional
// envelope fields (clock stamps, piggybacked spans).
func genMessage(rng *rand.Rand, typ string) message {
	m := message{Type: typ}
	switch typ {
	case msgHello:
		m.WorkerID = "w-" + genString(rng)
		m.Batch = rng.Intn(512)
	case msgTask:
		t := genTask(rng)
		m.Task = &t
	case msgResult:
		r := genResult(rng)
		m.Result = &r
		m.WorkerID = r.WorkerID
		m.SentUnixNano = rng.Int63()
		m.TaskDelayNs = rng.Int63() - rng.Int63()
		m.Spans = genSpans(rng)
	case msgShutdown:
		// bare envelope
	case msgHeartbeat:
		m.WorkerID = "w-" + genString(rng)
		m.SentUnixNano = rng.Int63()
		m.TaskDelayNs = rng.Int63() - rng.Int63()
		m.Spans = genSpans(rng)
	case msgStats:
		m.WorkerID = "w-" + genString(rng)
		m.SentUnixNano = rng.Int63()
		s := WorkerStats{
			TasksExecuted: rng.Int63n(1 << 30),
			TasksFailed:   rng.Int63n(1 << 20),
			BytesIn:       rng.Int63n(1 << 40),
			BytesOut:      rng.Int63n(1 << 40),
			Goroutines:    rng.Intn(10000),
			HeapBytes:     uint64(rng.Int63()),
			UptimeMs:      rng.Int63n(1 << 32),
			Exec:          genHistogramSnapshot(rng),
		}
		m.Stats = &s
		m.Spans = genSpans(rng)
		if rng.Intn(2) == 0 {
			m.Telemetry = genTelemetry(rng)
		}
	case msgFreeze:
		m.Freeze = &FreezeRequest{
			Seq: rng.Int63(), Trigger: genString(rng),
			Detail: genString(rng), WindowNs: rng.Int63n(int64(time.Minute)),
		}
	case msgFlightDump:
		m.WorkerID = "w-" + genString(rng)
		m.Dump = genDump(rng)
	case msgTaskBatch:
		m.Tasks = make([]Task, 1+rng.Intn(8))
		for i := range m.Tasks {
			m.Tasks[i] = genTask(rng)
		}
	case msgResultBatch:
		m.WorkerID = "w-" + genString(rng)
		m.SentUnixNano = rng.Int63()
		m.TaskDelayNs = rng.Int63() - rng.Int63()
		m.Results = make([]Result, 1+rng.Intn(8))
		for i := range m.Results {
			m.Results[i] = genResult(rng)
		}
		m.Spans = genSpans(rng)
	default:
		panic("genMessage: unknown type " + typ)
	}
	return m
}

// wireMessageTypes is every type the binary format encodes — kept in a
// test-side list so a new message type that forgets differential
// coverage fails TestDifferentialCoversAllWireTypes below.
func wireMessageTypes() []string {
	return []string{
		msgHello, msgTask, msgResult, msgShutdown, msgHeartbeat,
		msgStats, msgFreeze, msgFlightDump, msgTaskBatch, msgResultBatch,
	}
}

// codecRoundTrip pushes m through the production send/recv paths in the
// given format and returns the decoded message.
func codecRoundTrip(t *testing.T, m message, asJSON bool) message {
	t.Helper()
	a, b := pipePair()
	ca, cb := newCodec(a), newCodec(b)
	defer func() { _ = ca.close() }()
	ca.setJSON(asJSON)
	errc := make(chan error, 1)
	go func() { errc <- ca.send(m) }()
	got, err := cb.recv()
	if err != nil {
		t.Fatalf("recv (json=%v): %v", asJSON, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send (json=%v): %v", asJSON, err)
	}
	return got
}

// TestDifferentialCodecs is the harness that proves the binary format
// correct: for every message type and many seeds, the JSON and binary
// round trips must agree with each other and with the sent value
// (CRC-stamped), field for field.
func TestDifferentialCodecs(t *testing.T) {
	const seedsPerType = 32
	for _, typ := range wireMessageTypes() {
		typ := typ
		t.Run(typ, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seedsPerType; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(len(typ))))
				m := genMessage(rng, typ)
				want := m
				want.CRC = m.checksum() // send stamps this
				jsonGot := codecRoundTrip(t, m, true)
				binGot := codecRoundTrip(t, m, false)
				if !reflect.DeepEqual(jsonGot, want) {
					t.Fatalf("seed %d: JSON round trip diverged\n got %+v\nwant %+v", seed, jsonGot, want)
				}
				if !reflect.DeepEqual(binGot, want) {
					t.Fatalf("seed %d: binary round trip diverged\n got %+v\nwant %+v", seed, binGot, want)
				}
				if !reflect.DeepEqual(jsonGot, binGot) {
					t.Fatalf("seed %d: codecs disagree\njson %+v\n bin %+v", seed, jsonGot, binGot)
				}
			}
		})
	}
}

// TestDifferentialCoversAllWireTypes pins the test list to the codec's
// type table: adding a binary message type without differential coverage
// is a failure, not an oversight.
func TestDifferentialCoversAllWireTypes(t *testing.T) {
	covered := make(map[string]bool)
	for _, typ := range wireMessageTypes() {
		covered[typ] = true
	}
	for typ := range wireTypeOf {
		if !covered[typ] {
			t.Errorf("wire type %q has no differential coverage — add it to wireMessageTypes and genMessage", typ)
		}
	}
	if len(covered) != len(wireTypeOf) {
		t.Errorf("differential list has %d types, codec table has %d", len(covered), len(wireTypeOf))
	}
}

// TestCrossCodecChecksumStable: the CRC is computed over decoded values,
// so a message decoded from JSON and re-encoded as binary (or vice
// versa) keeps its checksum — the property that lets a frame cross a
// codec boundary (e.g. a JSON-speaking submitter behind a binary
// cluster) without a spurious integrity failure.
func TestCrossCodecChecksumStable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, typ := range []string{msgTask, msgResult, msgTaskBatch, msgResultBatch} {
		m := genMessage(rng, typ)
		fromJSON := codecRoundTrip(t, m, true)
		again := codecRoundTrip(t, fromJSON, false) // re-encode binary, CRC re-stamped
		if again.CRC != fromJSON.CRC {
			t.Errorf("%s: checksum changed across codecs: %08x -> %08x", typ, fromJSON.CRC, again.CRC)
		}
	}
}

// TestWireFramesConcatenate: frames appended back to back into one
// buffer split cleanly at WireFrameSplit boundaries and decode
// independently — the invariant the chaos layer's frame splitter and any
// future frame-coalescing writer rely on.
func TestWireFramesConcatenate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var msgs []message
	var buf []byte
	for _, typ := range wireMessageTypes() {
		m := genMessage(rng, typ)
		m.CRC = m.checksum()
		msgs = append(msgs, m)
		var err error
		buf, err = appendWireFrame(buf, &m)
		if err != nil {
			t.Fatalf("encode %s: %v", typ, err)
		}
	}
	for i, want := range msgs {
		n, ok := WireFrameSplit(buf)
		if !ok || n <= 0 {
			t.Fatalf("frame %d: split failed (n=%d ok=%v, %d bytes left)", i, n, ok, len(buf))
		}
		frame := buf[:n]
		buf = buf[n:]
		_, used := uvarintAt(frame, 2)
		got, err := decodeWireBody(frame[2+used:])
		if err != nil {
			t.Fatalf("frame %d (%s): decode: %v", i, want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d (%s) diverged\n got %+v\nwant %+v", i, want.Type, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(buf))
	}
}

// uvarintAt decodes the uvarint starting at off, returning value and width.
func uvarintAt(b []byte, off int) (uint64, int) {
	var v uint64
	var shift uint
	for i := off; i < len(b); i++ {
		c := b[i]
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i - off + 1
		}
		shift += 7
	}
	return 0, 0
}

// TestShiftBinaryStampsMovesClocksOnly: the chaos skew rewrite shifts
// exactly the absolute clock stamps (envelope sent_ns, task sent_ns,
// span starts) and nothing else — and the shifted frame still passes its
// CRC, because skew must read as a timing condition, not corruption.
func TestShiftBinaryStampsMovesClocksOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const delta = int64(5 * time.Second)
	for _, typ := range []string{msgHeartbeat, msgTask, msgTaskBatch, msgResultBatch} {
		m := genMessage(rng, typ)
		m.CRC = m.checksum()
		frame, err := appendWireFrame(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		shifted := ShiftBinaryStamps(frame, delta)
		_, used := uvarintAt(shifted, 2)
		got, err := decodeWireBody(shifted[2+used:])
		if err != nil {
			t.Fatalf("%s: shifted frame does not decode: %v", typ, err)
		}
		if got.CRC != 0 && got.CRC != got.checksum() {
			t.Errorf("%s: skew broke the checksum — skew must not read as corruption", typ)
		}
		want := m
		if want.SentUnixNano != 0 {
			want.SentUnixNano += delta
		}
		if want.Task != nil {
			tt := *want.Task
			if tt.SentUnixNano != 0 {
				tt.SentUnixNano += delta
			}
			want.Task = &tt
		}
		if len(want.Tasks) > 0 {
			ts := append([]Task(nil), want.Tasks...)
			for i := range ts {
				if ts[i].SentUnixNano != 0 {
					ts[i].SentUnixNano += delta
				}
			}
			want.Tasks = ts
		}
		if len(want.Spans) > 0 {
			ss := append([]RemoteSpan(nil), want.Spans...)
			for i := range ss {
				if ss[i].StartUnixNano != 0 {
					ss[i].StartUnixNano += delta
				}
			}
			want.Spans = ss
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: skew rewrote more than the clock stamps\n got %+v\nwant %+v", typ, got, want)
		}
	}
}
