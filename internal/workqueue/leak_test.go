package workqueue

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// TestMasterTaskStateDrains is the regression test for per-task state
// leaks: after a fully drained run — including tasks lost to a worker
// failure and retried — the master's inflight and attempts maps and the
// scheduler's per-job queue/priority maps must all be empty again.
func TestMasterTaskStateDrains(t *testing.T) {
	m := NewMaster(MasterConfig{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One worker joins, takes a task, and vanishes mid-flight so the
	// task is requeued and picks up an attempts entry.
	mconn, wconn := pipePair()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		_ = m.HandleWorker(ctx, mconn)
	}()
	c := newCodec(wconn)
	if err := c.send(message{Type: msgHello, WorkerID: "flaky"}); err != nil {
		t.Fatal(err)
	}

	const jobs, tasksPerJob = 3, 4
	for j := 0; j < jobs; j++ {
		jobID := fmt.Sprintf("job-%d", j)
		m.SetJobPriority(jobID, float64(j+1))
		for i := 0; i < tasksPerJob; i++ {
			task := Task{ID: fmt.Sprintf("%s/%d", jobID, i), JobID: jobID, Payload: []byte("x")}
			if err := m.Submit(task); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Receive one task, then drop the connection without replying.
	msg, err := c.recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != msgTask {
		t.Fatalf("flaky worker got %q, want task", msg.Type)
	}
	_ = c.close()
	<-handlerDone

	if _, attempts := m.taskStateSizes(); attempts != 1 {
		t.Fatalf("attempts after worker loss = %d, want 1", attempts)
	}

	// A healthy pool drains everything, including the retried task.
	pool := NewPool(m, echoExec)
	pool.Resize(ctx, 2)
	results := collect(t, m, jobs*tasksPerJob)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("task %s failed: %s", r.TaskID, r.Err)
		}
	}

	inflight, attempts := m.taskStateSizes()
	if inflight != 0 || attempts != 0 {
		t.Errorf("per-task state after drained run: inflight=%d attempts=%d, want 0/0", inflight, attempts)
	}
	queues, priorities := m.sched.jobStateSizes()
	if queues != 0 || priorities != 0 {
		t.Errorf("scheduler state after drained run: queues=%d priorities=%d, want 0/0", queues, priorities)
	}
	if n := m.QueueLen(); n != 0 {
		t.Errorf("queue length after drained run = %d, want 0", n)
	}

	pool.Close()
	m.Shutdown()
}

// TestMasterClosedRequeueDropsAttempts covers the shutdown path: a task
// lost while the master is closing must not leave an attempts entry.
func TestMasterClosedRequeueDropsAttempts(t *testing.T) {
	m := NewMaster(MasterConfig{})
	task := Task{ID: "t1", JobID: "job"}
	if err := m.Submit(task); err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	m.requeue(task)
	if inflight, attempts := m.taskStateSizes(); inflight != 0 || attempts != 0 {
		t.Errorf("state after closed requeue: inflight=%d attempts=%d, want 0/0", inflight, attempts)
	}
}

// TestMasterTelemetryCounts wires a registry and tracer through a small
// run and checks the task lifecycle metrics add up.
func TestMasterTelemetryCounts(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	m := NewMaster(MasterConfig{Metrics: reg, Tracer: tr})
	ctx := context.Background()
	pool := NewPool(m, echoExec)
	pool.Resize(ctx, 2)

	const n = 6
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "job", Payload: []byte("p")}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, m, n)
	pool.Close()
	m.Shutdown()

	s := reg.Snapshot()
	if got := s.Counters["wq_tasks_submitted_total"]; got != n {
		t.Errorf("submitted counter = %d, want %d", got, n)
	}
	if got := s.Counters["wq_tasks_completed_total"]; got != n {
		t.Errorf("completed counter = %d, want %d", got, n)
	}
	if got := s.Histograms["wq_task_exec_ms"].Count; got != n {
		t.Errorf("exec histogram count = %d, want %d", got, n)
	}
	if got := s.Histograms["wq_task_queue_wait_ms"].Count; got != n {
		t.Errorf("queue-wait histogram count = %d, want %d", got, n)
	}
	// Every task leaves a queue span and an exec span.
	if got := tr.Total(); got != 2*n {
		t.Errorf("span count = %d, want %d", got, 2*n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("wq_workers").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wq_workers gauge = %v, want 0 after shutdown", reg.Gauge("wq_workers").Value())
		}
		time.Sleep(time.Millisecond)
	}
}
