package workqueue

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// Pool is an elastic in-process worker pool attached to a master via
// net.Pipe connections speaking the full protocol — the Worker Pool of the
// paper's architecture (Fig. 2), whose size is the Global Control Knob.
type Pool struct {
	master *Master
	exec   Executor
	// Heartbeat is the HeartbeatEvery interval given to workers spawned
	// by Resize (zero = no heartbeats). Set it before growing the pool;
	// in-process workers are as capable of stalling (scheduler
	// starvation, blocked executors) as remote ones, so the same
	// liveness machinery applies.
	Heartbeat time.Duration
	// Logger is handed to workers spawned by Resize, so in-process
	// workers log task failures with the same structure as remote ones.
	Logger *obs.Logger

	mu      sync.Mutex
	next    int
	workers map[string]context.CancelFunc
	// retired holds cancel funcs of gracefully released workers; they
	// are invoked at Close purely to free their contexts.
	retired []context.CancelFunc
	wg      sync.WaitGroup
}

// NewPool creates an empty pool feeding the master with workers that run
// exec.
func NewPool(master *Master, exec Executor) *Pool {
	return &Pool{
		master:  master,
		exec:    exec,
		workers: make(map[string]context.CancelFunc),
	}
}

// Size returns the current number of workers.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Resize grows or shrinks the pool to n workers (the GCK actuation).
// Shrinking is graceful: surplus workers are released through the master,
// finish their current task and then exit — in-flight work is never
// preempted. (Hard preemption still happens on Close or context
// cancellation, where the master requeues the lost task.)
func (p *Pool) Resize(ctx context.Context, n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) < n {
		p.spawnLocked(ctx)
	}
	for id := range p.workers {
		if len(p.workers) <= n {
			break
		}
		p.master.Release(id)
		p.retired = append(p.retired, p.workers[id])
		delete(p.workers, id)
	}
}

// spawnLocked starts one worker goroutine pair (worker + master handler)
// bridged by an in-process pipe.
func (p *Pool) spawnLocked(ctx context.Context) {
	id := fmt.Sprintf("pool-worker-%d", p.next)
	p.next++
	wctx, cancel := context.WithCancel(ctx)
	p.workers[id] = cancel

	mconn, wconn := pipePair()
	p.wg.Add(2)
	go func() {
		defer p.wg.Done()
		_ = p.master.HandleWorker(wctx, mconn)
	}()
	go func() {
		defer p.wg.Done()
		w := &Worker{ID: id, Exec: p.exec, HeartbeatEvery: p.Heartbeat, Logger: p.Logger}
		_ = w.Run(wctx, wconn)
	}()
}

// Close cancels all workers and waits for them to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	for id, cancel := range p.workers {
		cancel()
		delete(p.workers, id)
	}
	for _, cancel := range p.retired {
		cancel()
	}
	p.retired = nil
	p.mu.Unlock()
	p.wg.Wait()
}
