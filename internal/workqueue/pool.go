package workqueue

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Pool is an elastic in-process worker pool attached to a master via
// net.Pipe connections speaking the full protocol — the Worker Pool of the
// paper's architecture (Fig. 2), whose size is the Global Control Knob.
type Pool struct {
	master *Master
	exec   Executor
	// Heartbeat is the HeartbeatEvery interval given to workers spawned
	// by Resize (zero = no heartbeats). Set it before growing the pool;
	// in-process workers are as capable of stalling (scheduler
	// starvation, blocked executors) as remote ones, so the same
	// liveness machinery applies.
	Heartbeat time.Duration
	// Logger is handed to workers spawned by Resize, so in-process
	// workers log task failures with the same structure as remote ones.
	Logger *obs.Logger
	// ExecTimeout is handed to spawned workers as their per-task
	// execution budget (see Worker.ExecTimeout).
	ExecTimeout time.Duration
	// WrapConn, when set, wraps each spawned worker's pipe pair before
	// the protocol starts — the chaos layer's hook for injecting
	// transport faults into in-process clusters. It receives the master
	// and worker ends and returns the (possibly wrapped) pair.
	WrapConn func(master, worker net.Conn) (net.Conn, net.Conn)
	// Respawn keeps the pool elastic under worker death: a worker whose
	// connection drops without a graceful release is restarted (after
	// RespawnDelay) under a fresh incarnation ID, mirroring how the
	// paper's scavenged HTCondor pool backfills evicted nodes. Without
	// it a crashed worker leaves the pool one slot short forever.
	Respawn      bool
	RespawnDelay time.Duration
	// WorkerRecorder, when set, supplies each spawned worker's private
	// flight recorder (see Worker.FlightRec): in-process workers then
	// keep their frame-leg probe events in per-host rings, so cluster
	// dump collection gets true per-host provenance without process
	// isolation. Called once per incarnation with the worker's ID.
	WorkerRecorder func(id string) *flightrec.Recorder

	mu      sync.Mutex
	next    int
	workers map[string]context.CancelFunc
	// retired holds cancel funcs of gracefully released workers; they
	// are invoked at Close purely to free their contexts.
	retired []context.CancelFunc
	closed  bool
	wg      sync.WaitGroup
}

// NewPool creates an empty pool feeding the master with workers that run
// exec.
func NewPool(master *Master, exec Executor) *Pool {
	return &Pool{
		master:  master,
		exec:    exec,
		workers: make(map[string]context.CancelFunc),
	}
}

// Size returns the current number of workers.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Resize grows or shrinks the pool to n workers (the GCK actuation).
// Shrinking is graceful: surplus workers are released through the master,
// finish their current task and then exit — in-flight work is never
// preempted. (Hard preemption still happens on Close or context
// cancellation, where the master requeues the lost task.)
func (p *Pool) Resize(ctx context.Context, n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) < n {
		p.spawnLocked(ctx)
	}
	for id := range p.workers {
		if len(p.workers) <= n {
			break
		}
		p.master.Release(id)
		p.retired = append(p.retired, p.workers[id])
		delete(p.workers, id)
	}
}

// spawnLocked starts one worker goroutine pair (worker + master handler)
// bridged by an in-process pipe.
func (p *Pool) spawnLocked(ctx context.Context) {
	p.spawnSlotLocked(ctx, p.next, 0)
	p.next++
}

// spawnSlotLocked starts the given incarnation of one worker slot. The
// first incarnation keeps the bare slot name; respawns append -rK so a
// restarted worker never races its dying predecessor for the same ID in
// the master's registry.
func (p *Pool) spawnSlotLocked(ctx context.Context, slot, incarnation int) {
	id := fmt.Sprintf("pool-worker-%d", slot)
	if incarnation > 0 {
		id = fmt.Sprintf("pool-worker-%d-r%d", slot, incarnation)
	}
	wctx, cancel := context.WithCancel(ctx)
	p.workers[id] = cancel

	mconn, wconn := pipePair()
	if p.WrapConn != nil {
		mconn, wconn = p.WrapConn(mconn, wconn)
	}
	p.wg.Add(2)
	go func() {
		defer p.wg.Done()
		_ = p.master.HandleWorker(wctx, mconn)
	}()
	go func() {
		defer p.wg.Done()
		w := &Worker{
			ID: id, Exec: p.exec,
			HeartbeatEvery: p.Heartbeat, Logger: p.Logger,
			ExecTimeout: p.ExecTimeout,
		}
		if p.WorkerRecorder != nil {
			w.FlightRec = p.WorkerRecorder(id)
		}
		err := w.Run(wctx, wconn)
		if err != nil && p.Respawn {
			p.respawn(ctx, id, slot, incarnation)
		}
	}()
}

// respawn backfills a worker slot whose incarnation died unexpectedly
// (connection drop, chaos crash, master eviction). It runs on the dying
// worker's goroutine, so the pool's WaitGroup is still held across the
// wg.Add of the replacement.
func (p *Pool) respawn(ctx context.Context, id string, slot, incarnation int) {
	if p.RespawnDelay > 0 {
		select {
		case <-ctx.Done():
			return
		case <-time.After(p.RespawnDelay):
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cancel, ok := p.workers[id]
	if !ok || p.closed || ctx.Err() != nil {
		// Released, resized away, or the pool is closing: stay down.
		return
	}
	cancel() // free the dead incarnation's context
	delete(p.workers, id)
	p.spawnSlotLocked(ctx, slot, incarnation+1)
}

// Close cancels all workers and waits for them to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	for id, cancel := range p.workers {
		cancel()
		delete(p.workers, id)
	}
	for _, cancel := range p.retired {
		cancel()
	}
	p.retired = nil
	p.mu.Unlock()
	p.wg.Wait()
}
