package workqueue

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// benchTracedTaskMsg is a representative dispatch: a task carrying its
// distributed-trace context and the master's send stamp.
func benchTracedTaskMsg() message {
	return message{Type: msgTask, Task: &Task{
		ID: "claim-17/3", JobID: "claim-17",
		Payload:      []byte(`{"claim":"claim-17","reports":[{"s":"src-1","t":"2017-04-01T10:00:00Z"}]}`),
		Span:         91,
		Trace:        &TraceContext{TraceID: "f3a9b2c1-42", ParentSpanID: 91},
		SentUnixNano: 1491040800000000000,
	}}
}

// benchSpanResultLine is the reply: a result plus the worker's stage
// spans and clock stamps, as it appears on the wire.
var benchSpanResultLine = func() []byte {
	m := message{
		Type:         msgResult,
		Result:       &Result{TaskID: "claim-17/3", JobID: "claim-17", WorkerID: "w-1", Output: []byte(`{"sums":{"0":1.5}}`), Elapsed: 2 * time.Millisecond},
		SentUnixNano: 1491040800002000000,
		TaskDelayNs:  150000,
	}
	for _, stage := range []string{StageRecv, StageDecode, StageExec, StageEncode, StageSend} {
		m.Spans = append(m.Spans, RemoteSpan{
			TraceID: "f3a9b2c1-42", Parent: 91, Name: stage, TaskID: "claim-17/3",
			StartUnixNano: 1491040800000000000, DurNs: 400000,
		})
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return b
}()

// BenchmarkMessageEncodeTraced measures serializing a dispatch with its
// trace context — the master-side per-task wire cost.
func BenchmarkMessageEncodeTraced(b *testing.B) {
	m := benchTracedTaskMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageDecodeResultSpans measures parsing a result that ships
// all five worker stage spans — the master-side per-result wire cost.
func BenchmarkMessageDecodeResultSpans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m message
		if err := json.Unmarshal(benchSpanResultLine, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageSpanTraced measures a worker recording one stage span on
// a traced task: context lookup, clock reads and the buffer append.
func BenchmarkStageSpanTraced(b *testing.B) {
	tt := newTaskTrace(&TraceContext{TraceID: "f3a9b2c1-42", ParentSpanID: 91}, "claim-17/3")
	ctx := withTaskTrace(context.Background(), tt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartStageSpan(ctx, StageExec).Finish()
		if i%1024 == 0 {
			tt.take() // keep the span slice from growing unboundedly
		}
	}
}

// BenchmarkStageSpanUntraced measures the same call on an untraced task —
// the tracing-off fast path every execution pays.
func BenchmarkStageSpanUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartStageSpan(ctx, StageExec).Finish()
	}
}
