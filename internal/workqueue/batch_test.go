package workqueue

// Batching property tests: N tasks in → N acks out, order preserved per
// worker, partial batches flush promptly, negotiation respects the
// worker's advertised capacity, and a connection reset mid-batch loses
// no task. The in-process pool runs the real master handler and worker
// loop over net.Pipe, so these exercise the production dispatch window,
// not a model of it.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// TestBatchedRoundTripAllDelivered: the headline invariant — with
// batching on, every submitted task produces exactly one result.
func TestBatchedRoundTripAllDelivered(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{Seed: 1, ResultBuffer: 256, BatchSize: 8})
	p := NewPool(m, echoExec)
	defer p.Close()

	// Submit before growing the pool so the queue is deep enough for the
	// dispatcher to actually coalesce batches.
	const n = 200
	for i := 0; i < n; i++ {
		err := m.Submit(Task{
			ID:      fmt.Sprintf("t%03d", i),
			JobID:   fmt.Sprintf("job%d", i%4),
			Payload: []byte(fmt.Sprintf("payload-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Resize(ctx, 3)

	seen := make(map[string]bool)
	for _, r := range collect(t, m, n) {
		if r.Err != "" {
			t.Errorf("task %s failed: %s", r.TaskID, r.Err)
		}
		if seen[r.TaskID] {
			t.Errorf("task %s delivered twice", r.TaskID)
		}
		seen[r.TaskID] = true
	}
	if len(seen) != n {
		t.Errorf("distinct results = %d, want %d", len(seen), n)
	}
	for _, js := range m.AllStats() {
		if !js.Done() {
			t.Errorf("job %s not done: %+v", js.JobID, js)
		}
	}
}

// TestBatchExecutionOrderPreserved: a single job is FIFO, and batching
// must not reorder it — one worker executes (and the master completes)
// tasks in submission order.
func TestBatchExecutionOrderPreserved(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{Seed: 1, ResultBuffer: 128, BatchSize: 4})

	var mu sync.Mutex
	var execOrder []string
	p := NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
		mu.Lock()
		execOrder = append(execOrder, string(payload))
		mu.Unlock()
		return payload, nil
	})
	defer p.Close()

	const n = 60
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%03d", i), JobID: "j", Payload: []byte(fmt.Sprintf("t%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	p.Resize(ctx, 1)

	results := collect(t, m, n)
	for i, r := range results {
		if want := fmt.Sprintf("t%03d", i); r.TaskID != want {
			t.Fatalf("result %d = %s, want %s (batching reordered a FIFO job)", i, r.TaskID, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range execOrder {
		if want := fmt.Sprintf("t%03d", i); id != want {
			t.Fatalf("execution %d = %s, want %s", i, id, want)
		}
	}
}

// TestPartialBatchFlush: a batch smaller than BatchSize must not wait
// for the frame to fill — three tasks against a batch size of 64
// complete promptly.
func TestPartialBatchFlush(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8, BatchSize: 64})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)

	for i := 0; i < 3; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	collect(t, m, 3)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("partial batch took %v — dispatcher waited for a full frame", d)
	}
}

// fakeBatchWorker connects a raw codec to the master, advertises the
// given batch capacity, and returns the codec plus a join func that
// closes the connection and waits for the handler to exit.
func fakeBatchWorker(t *testing.T, ctx context.Context, m *Master, id string, advert int) (*codec, func()) {
	t.Helper()
	server, client := net.Pipe()
	handlerDone := make(chan struct{})
	go func() {
		_ = m.HandleWorker(ctx, server)
		close(handlerDone)
	}()
	c := newCodec(client)
	if err := c.send(message{Type: msgHello, WorkerID: id, Batch: advert}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return c, func() {
		_ = client.Close()
		<-handlerDone
	}
}

// ackAll replies one msgResultBatch per received frame, acking every
// task in dispatch order, until total tasks have been acked. It returns
// the per-frame task counts.
func ackAll(t *testing.T, c *codec, id string, total int) (frameSizes []int, frameTypes []string) {
	t.Helper()
	acked := 0
	for acked < total {
		msg, err := c.recv()
		if err != nil {
			t.Fatalf("recv after %d acks: %v", acked, err)
		}
		var tasks []Task
		switch msg.Type {
		case msgTask:
			tasks = []Task{*msg.Task}
		case msgTaskBatch:
			tasks = msg.Tasks
		case msgShutdown:
			t.Fatalf("shutdown after %d/%d acks", acked, total)
		default:
			continue // heartbeat-adjacent traffic: ignore
		}
		frameSizes = append(frameSizes, len(tasks))
		frameTypes = append(frameTypes, msg.Type)
		reply := message{Type: msgResultBatch, WorkerID: id}
		for _, task := range tasks {
			reply.Results = append(reply.Results, Result{
				TaskID: task.ID, JobID: task.JobID, WorkerID: id,
				Output: task.Payload, Elapsed: time.Millisecond,
			})
		}
		if err := c.send(reply); err != nil {
			t.Fatalf("ack: %v", err)
		}
		acked += len(tasks)
	}
	return frameSizes, frameTypes
}

// TestBatchNegotiationRespectsWorkerAdvert: the master's BatchSize is
// capped by the worker's hello — a worker advertising 3 never receives
// a larger frame, however deep the queue.
func TestBatchNegotiationRespectsWorkerAdvert(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 32, BatchSize: 100})
	const n = 10
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j", Payload: []byte("p")}); err != nil {
			t.Fatal(err)
		}
	}
	c, join := fakeBatchWorker(t, ctx, m, "w-advert3", 3)
	defer join()

	sizes, types := ackAll(t, c, "w-advert3", n)
	for i, sz := range sizes {
		if sz < 1 || sz > 3 {
			t.Errorf("frame %d carried %d tasks, advert was 3", i, sz)
		}
		if types[i] != msgTaskBatch {
			t.Errorf("frame %d type = %s, want %s", i, types[i], msgTaskBatch)
		}
	}
	results := collect(t, m, n)
	for i, r := range results {
		if want := fmt.Sprintf("t%d", i); r.TaskID != want {
			t.Errorf("result %d = %s, want %s", i, r.TaskID, want)
		}
	}
}

// TestUnbatchedWorkerGetsSingleFrames: a worker advertising no batch
// capacity (hello batch 0 — the pre-batching protocol) is driven with
// lock-step single-task frames even when the master batches.
func TestUnbatchedWorkerGetsSingleFrames(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 16, BatchSize: 8})
	const n = 5
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j"}); err != nil {
			t.Fatal(err)
		}
	}
	c, join := fakeBatchWorker(t, ctx, m, "w-legacy", 0)
	defer join()

	_, types := ackAll(t, c, "w-legacy", n)
	for i, typ := range types {
		if typ != msgTask {
			t.Errorf("frame %d type = %s, want %s (legacy worker must get single frames)", i, typ, msgTask)
		}
	}
	collect(t, m, n)
}

// TestMidBatchResetRequeuesUnacked: a worker that dies with a batch
// partly acked loses nothing — the acked task completes once, every
// un-acked task is requeued and finishes on the next worker, and no
// task is delivered twice.
func TestMidBatchResetRequeuesUnacked(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{
		ResultBuffer: 32, BatchSize: 4, MaxRetries: 5,
		RequeueBackoff: BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	const n = 8
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j", Payload: []byte(fmt.Sprintf("t%d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	// The flaky worker drains the whole pipelined window (the master's
	// sends block on the unbuffered pipe otherwise), acks only the head
	// task, and drops the connection.
	c, join := fakeBatchWorker(t, ctx, m, "w-flaky", 4)
	var received []Task
	for len(received) < n {
		msg, err := c.recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if msg.Type == msgTaskBatch {
			received = append(received, msg.Tasks...)
		}
	}
	head := received[0]
	err := c.send(message{Type: msgResultBatch, WorkerID: "w-flaky", Results: []Result{{
		TaskID: head.ID, JobID: head.JobID, WorkerID: "w-flaky", Output: head.Payload,
	}}})
	if err != nil {
		t.Fatalf("ack head: %v", err)
	}
	// Wait for the head result so the severed connection cannot race the
	// ack out of the reader.
	first := collect(t, m, 1)[0]
	if first.TaskID != head.ID || first.Err != "" {
		t.Fatalf("head result = %+v, want clean %s", first, head.ID)
	}
	join() // reset: close with the rest of the batch un-acked

	// A healthy pool worker finishes everything the reset put back.
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)

	seen := map[string]bool{head.ID: true}
	for _, r := range collect(t, m, n-1) {
		if r.Err != "" {
			t.Errorf("task %s failed after requeue: %s", r.TaskID, r.Err)
		}
		if seen[r.TaskID] {
			t.Errorf("task %s delivered twice across the reset", r.TaskID)
		}
		seen[r.TaskID] = true
	}
	if len(seen) != n {
		t.Errorf("distinct results = %d, want %d", len(seen), n)
	}
}

// TestBatchedPoolShrinkDrains: releasing a worker mid-stream (the GCK
// shrinking the pool) drains its outstanding batches gracefully — no
// task lost, no double delivery.
func TestBatchedPoolShrinkDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{Seed: 3, ResultBuffer: 256, BatchSize: 8})
	p := NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
		time.Sleep(200 * time.Microsecond)
		return payload, nil
	})
	defer p.Close()

	const n = 120
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%03d", i), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	p.Resize(ctx, 3)
	time.Sleep(10 * time.Millisecond) // let batches get in flight
	p.Resize(ctx, 1)

	seen := make(map[string]bool)
	for _, r := range collect(t, m, n) {
		if r.Err != "" {
			t.Errorf("task %s failed: %s", r.TaskID, r.Err)
		}
		if seen[r.TaskID] {
			t.Errorf("task %s delivered twice across the shrink", r.TaskID)
		}
		seen[r.TaskID] = true
	}
	if len(seen) != n {
		t.Errorf("distinct results = %d, want %d", len(seen), n)
	}
}
