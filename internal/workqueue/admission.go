package workqueue

import (
	"errors"
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// ErrAdmissionRejected is the sentinel wrapped into every admission
// rejection, so callers can errors.Is a refused submission apart from
// infrastructure failures.
var ErrAdmissionRejected = errors.New("workqueue: admission rejected")

// AdmissionConfig parameterizes the admission gate derived from a
// measured capacity model (cmd/loadgen fits TaskRatePerWorker from a
// load sweep; see BENCH_load.json). The gate implements the feedback
// half of the paper's capacity planning: Eq. 11/12 predict a job's WCET
// from data volume and worker count — here the same prediction, fed by
// the fitted per-worker service rate and live queue depth, refuses (or
// sheds) work that could not meet its deadline anyway instead of letting
// it poison the deadlines of jobs already queued.
type AdmissionConfig struct {
	// TaskRatePerWorker is the fitted steady-state service rate of one
	// worker (tasks/second), normally taken from a loadgen capacity fit.
	// Zero falls back to the cluster's observed per-worker EWMA
	// completion rate, so the gate still works before a sweep exists.
	TaskRatePerWorker float64
	// Deadline is the default completion budget applied to jobs admitted
	// without one. Zero means jobs without a deadline are always admitted.
	Deadline time.Duration
	// SafetyFactor inflates the predicted completion time before the
	// deadline comparison (a fitted rate is a saturation measurement;
	// real queues burst). Values <= 0 default to 1.
	SafetyFactor float64
	// Shed switches the gate from reject to degrade: an over-deadline
	// job is still admitted but flagged Shed, and the submitter parks it
	// in a near-zero-priority lane where it only consumes idle capacity.
	Shed bool
}

// AdmissionDecision is the gate's verdict for one job, carrying the
// inputs of the prediction so a rejection log line (or a test) can show
// its work.
type AdmissionDecision struct {
	// Admit is false when the job should be refused outright.
	Admit bool
	// Shed is true when the job is admitted into the degraded lane
	// instead (AdmissionConfig.Shed).
	Shed bool
	// PredictedMs is the safety-adjusted completion estimate for the
	// job's last task given the current backlog; negative means the
	// prediction was impossible (no workers, no rate).
	PredictedMs float64
	// DeadlineMs is the budget the prediction was compared against.
	DeadlineMs int64
	// QueueDepth counts tasks ahead of the job (queued + in flight).
	QueueDepth int
	// Workers is the pool size used in the prediction.
	Workers int
	// RatePerWorker is the service rate used (fitted or observed).
	RatePerWorker float64
	// Err is the errtraced rejection (wrapping ErrAdmissionRejected);
	// nil when the job was admitted, including shed admissions.
	Err error
}

// admissionGate evaluates jobs against the capacity model. It is
// stateless beyond its config; live inputs (queue depth, workers,
// observed rate) come from the master at decision time.
type admissionGate struct {
	cfg AdmissionConfig

	cAccepted *obs.Counter
	cRejected *obs.Counter
	cShed     *obs.Counter
	hPredMiss *obs.Histogram
	logger    *obs.Logger

	// rejectBurst trips a flight-recorder deep dive when rejections
	// cluster — a rejection spike means the capacity model and the live
	// pool disagree, exactly when sub-span timing history is wanted.
	rejectBurst *flightrec.Burst
}

func newAdmissionGate(cfg AdmissionConfig, reg *obs.Registry, logger *obs.Logger) *admissionGate {
	if cfg.SafetyFactor <= 0 {
		cfg.SafetyFactor = 1
	}
	g := &admissionGate{cfg: cfg, logger: logger,
		rejectBurst: flightrec.NewBurst(flightrec.TrigAdmission, 0, 0)}
	if reg != nil {
		g.cAccepted = reg.Counter("admission_accepted_total")
		g.cRejected = reg.Counter("admission_rejected_total")
		g.cShed = reg.Counter("admission_shed_total")
		g.hPredMiss = reg.Histogram("admission_predicted_miss_ms", nil)
	}
	return g
}

// decide predicts when the job's last task would complete — backlog plus
// the job's own tasks, drained by workers×rate — and compares it to the
// deadline. The gate mirrors Eq. 11's JobWCET ≈ D·θ2/W shape with the
// fitted 1/rate standing in for θ2.
func (g *admissionGate) decide(jobID, traceID string, jobTasks int, deadline time.Duration, queueDepth, workers int, observedRate float64) AdmissionDecision {
	if deadline <= 0 {
		deadline = g.cfg.Deadline
	}
	rate := g.cfg.TaskRatePerWorker
	rateSource := "fitted"
	if rate <= 0 {
		rate = observedRate
		rateSource = "observed"
	}
	d := AdmissionDecision{
		Admit:         true,
		DeadlineMs:    deadline.Milliseconds(),
		QueueDepth:    queueDepth,
		Workers:       workers,
		RatePerWorker: rate,
		PredictedMs:   -1,
	}
	if capacity := rate * float64(workers); capacity > 0 {
		d.PredictedMs = float64(queueDepth+jobTasks) / capacity * 1000 * g.cfg.SafetyFactor
	}
	if deadline <= 0 {
		// No budget to defend: admit, even blind.
		g.cAccepted.Inc()
		return d
	}
	over := d.PredictedMs < 0 || d.PredictedMs > float64(d.DeadlineMs)
	if !over {
		g.cAccepted.Inc()
		return d
	}
	g.hPredMiss.Observe(d.PredictedMs - float64(d.DeadlineMs))
	if g.cfg.Shed {
		d.Shed = true
		g.cShed.Inc()
		g.logger.Warn("job shed to degraded lane by admission control",
			obs.JobID(jobID), obs.TraceID(traceID),
			obs.F("predicted_ms", int64(d.PredictedMs)), obs.F("deadline_ms", d.DeadlineMs),
			obs.F("queue_depth", queueDepth), obs.F("workers", workers),
			obs.F("rate_per_worker", fmt.Sprintf("%.2f", rate)), obs.F("rate_source", rateSource))
		return d
	}
	d.Admit = false
	d.Err = obs.Wrap(fmt.Errorf("%w: job %s predicted %.0fms > deadline %dms (queue %d, workers %d, %s rate %.2f/s)",
		ErrAdmissionRejected, jobID, d.PredictedMs, d.DeadlineMs, queueDepth, workers, rateSource, rate))
	g.cRejected.Inc()
	g.rejectBurst.Observe(fmt.Sprintf("job %s predicted %.0fms > %dms", jobID, d.PredictedMs, d.DeadlineMs))
	g.logger.Warn("job rejected by admission control",
		obs.JobID(jobID), obs.TraceID(traceID),
		obs.F("predicted_ms", int64(d.PredictedMs)), obs.F("deadline_ms", d.DeadlineMs),
		obs.F("queue_depth", queueDepth), obs.F("workers", workers),
		obs.F("rate_per_worker", fmt.Sprintf("%.2f", rate)), obs.F("rate_source", rateSource),
		obs.Err(d.Err), obs.ErrTrace(d.Err))
	return d
}

// AdmitJob consults the admission gate for a job of jobTasks tasks and
// the given completion deadline, using the live queue depth, pool size
// and (when no fitted rate is configured) the observed mean per-worker
// completion rate. Without an AdmissionConfig the gate is open: every
// job is admitted. traceID tags the decision's log line for correlation.
func (m *Master) AdmitJob(jobID, traceID string, jobTasks int, deadline time.Duration) AdmissionDecision {
	if m.admission == nil {
		return AdmissionDecision{Admit: true, PredictedMs: -1}
	}
	backlog, _ := m.taskStateSizes()
	backlog += m.sched.len()
	return m.admission.decide(jobID, traceID, jobTasks, deadline,
		backlog, m.cluster.count(), m.observedRatePerWorker())
}

// observedRatePerWorker averages the alive workers' EWMA completion
// rates — the gate's fallback service-rate estimate before a fitted
// capacity model exists. Workers that have not completed anything yet
// contribute zero, which keeps the estimate conservative during warmup.
func (m *Master) observedRatePerWorker() float64 {
	rows := m.cluster.health()
	n, sum := 0, 0.0
	for _, h := range rows {
		if h.State == WorkerDead {
			continue
		}
		sum += h.TasksPerSec
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
