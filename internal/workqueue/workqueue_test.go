package workqueue

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoExec returns the payload, uppercased.
func echoExec(_ context.Context, payload []byte) ([]byte, error) {
	return []byte(strings.ToUpper(string(payload))), nil
}

// collect drains n results from the master.
func collect(t *testing.T, m *Master, n int) []Result {
	t.Helper()
	out := make([]Result, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case r, ok := <-m.Results():
			if !ok {
				t.Fatalf("results closed after %d/%d", len(out), n)
			}
			out = append(out, r)
		case <-timeout:
			t.Fatalf("timed out after %d/%d results", len(out), n)
		}
	}
	return out
}

func TestMasterPoolRoundTrip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{Seed: 1, ResultBuffer: 64})
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 4)

	const n = 40
	for i := 0; i < n; i++ {
		err := m.Submit(Task{
			ID:      fmt.Sprintf("t%d", i),
			JobID:   fmt.Sprintf("job%d", i%4),
			Payload: []byte(fmt.Sprintf("payload-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	results := collect(t, m, n)
	seen := make(map[string]bool)
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("task %s failed: %s", r.TaskID, r.Err)
		}
		if !strings.HasPrefix(string(r.Output), "PAYLOAD-") {
			t.Errorf("task %s output = %q", r.TaskID, r.Output)
		}
		seen[r.TaskID] = true
	}
	if len(seen) != n {
		t.Errorf("distinct completed tasks = %d, want %d", len(seen), n)
	}
	for _, js := range m.AllStats() {
		if !js.Done() {
			t.Errorf("job %s not done: %+v", js.JobID, js)
		}
	}
}

func TestExecutorErrorsReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8})
	p := NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
		if string(payload) == "boom" {
			return nil, errors.New("kaput")
		}
		return payload, nil
	})
	defer p.Close()
	p.Resize(ctx, 1)

	if err := m.Submit(Task{ID: "ok", JobID: "j", Payload: []byte("fine")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(Task{ID: "bad", JobID: "j", Payload: []byte("boom")}); err != nil {
		t.Fatal(err)
	}
	results := collect(t, m, 2)
	var okSeen, errSeen bool
	for _, r := range results {
		switch r.TaskID {
		case "ok":
			okSeen = r.Err == ""
		case "bad":
			// Failures carry provenance: worker, task and stage.
			errSeen = strings.Contains(r.Err, "kaput") &&
				strings.Contains(r.Err, "worker pool-worker-0") &&
				strings.Contains(r.Err, "task bad") &&
				r.ErrStage == StageExec
		}
	}
	if !okSeen || !errSeen {
		t.Errorf("results wrong: %+v", results)
	}
	js := m.Stats("j")
	if js.Completed != 1 || js.Failed != 1 {
		t.Errorf("stats = %+v, want 1 completed 1 failed", js)
	}
}

func TestPriorityBiasesScheduling(t *testing.T) {
	// One slow worker; two jobs with very different priorities submit
	// many tasks. The high priority job should finish its tasks earlier
	// on average.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{Seed: 42, ResultBuffer: 256})
	var order []string
	var mu sync.Mutex
	p := NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
		mu.Lock()
		order = append(order, string(payload))
		mu.Unlock()
		return nil, nil
	})
	defer p.Close()

	const per = 50
	for i := 0; i < per; i++ {
		_ = m.Submit(Task{ID: fmt.Sprintf("hi%d", i), JobID: "high", Payload: []byte("high")})
		_ = m.Submit(Task{ID: fmt.Sprintf("lo%d", i), JobID: "low", Payload: []byte("low")})
	}
	m.SetJobPriority("high", 10)
	m.SetJobPriority("low", 0.1)
	p.Resize(ctx, 1) // start after priorities are set
	collect(t, m, 2*per)

	mu.Lock()
	defer mu.Unlock()
	// Mean completion index of high should be clearly earlier.
	sumHigh, sumLow := 0, 0
	for i, jid := range order {
		if jid == "high" {
			sumHigh += i
		} else {
			sumLow += i
		}
	}
	if !(sumHigh < sumLow) {
		t.Errorf("high-priority job not favored: meanIdx(high)=%d meanIdx(low)=%d", sumHigh/per, sumLow/per)
	}
}

func TestTCPWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 32})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = m.Serve(ctx, l) }()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{ID: fmt.Sprintf("tcp-%d", i), Exec: echoExec}
			_ = w.Dial(ctx, l.Addr().String())
		}(i)
	}

	const n = 12
	for i := 0; i < n; i++ {
		if err := m.Submit(Task{ID: fmt.Sprintf("t%d", i), JobID: "j", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	results := collect(t, m, n)
	workers := make(map[string]bool)
	for _, r := range results {
		workers[r.WorkerID] = true
	}
	if len(workers) < 2 {
		t.Errorf("work not spread across TCP workers: %v", workers)
	}
	cancel()
	wg.Wait()
}

func TestWorkerLossRequeuesTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8})

	// First worker dies mid-task: its connection is severed while the
	// executor hangs, so no result can ever arrive from it.
	started := make(chan struct{})
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{ID: "flaky", Exec: func(c context.Context, _ []byte) ([]byte, error) {
			close(started)
			<-c.Done() // hang until the test tears down
			return nil, c.Err()
		}}
		_ = w.Run(ctx, wconn)
	}()

	if err := m.Submit(Task{ID: "t1", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	<-started
	_ = wconn.Close() // abrupt worker loss while the task is in flight
	_ = mconn.Close()

	// A healthy worker joins and must pick up the requeued task.
	p := NewPool(m, echoExec)
	defer p.Close()
	p.Resize(ctx, 1)

	r := collect(t, m, 1)[0]
	if r.TaskID != "t1" || r.Err != "" {
		t.Errorf("requeued task result = %+v", r)
	}
}

func TestRetryLimitReportsFailure(t *testing.T) {
	// Workers that die on every attempt eventually exhaust the task's
	// retry budget, which must surface as a failed Result rather than
	// looping forever.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8, MaxRetries: 2})
	if err := m.Submit(Task{ID: "poison", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Each "worker" accepts the task and drops the connection mid-run.
	for i := 0; i < 3; i++ {
		started := make(chan struct{})
		mconn, wconn := pipePair()
		go func() { _ = m.HandleWorker(ctx, mconn) }()
		go func() {
			w := &Worker{ID: fmt.Sprintf("dier-%d", i), Exec: func(c context.Context, _ []byte) ([]byte, error) {
				close(started)
				<-c.Done()
				return nil, c.Err()
			}}
			_ = w.Run(ctx, wconn)
		}()
		<-started
		_ = wconn.Close()
		_ = mconn.Close()
		// Give the requeue a moment to land before the next worker.
		waitFor(t, func() bool { return m.QueueLen() == 1 || m.Stats("j").Failed == 1 }, "requeue or failure")
		if m.Stats("j").Failed == 1 {
			break
		}
	}
	r := collect(t, m, 1)[0]
	if r.TaskID != "poison" || r.Err == "" {
		t.Errorf("result = %+v, want retry-limit failure", r)
	}
	js := m.Stats("j")
	if js.Failed != 1 || js.Completed != 0 {
		t.Errorf("stats = %+v", js)
	}
}

func TestGracefulReleaseFinishesCurrentTask(t *testing.T) {
	// A worker released mid-task must deliver its result before exiting.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8})
	block := make(chan struct{})
	started := make(chan struct{})
	mconn, wconn := pipePair()
	go func() { _ = m.HandleWorker(ctx, mconn) }()
	go func() {
		w := &Worker{ID: "release-me", Exec: func(_ context.Context, p []byte) ([]byte, error) {
			close(started)
			<-block
			return p, nil
		}}
		_ = w.Run(ctx, wconn)
	}()
	if err := m.Submit(Task{ID: "t1", JobID: "j", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	<-started
	m.Release("release-me")
	close(block) // let the task finish after the release
	r := collect(t, m, 1)[0]
	if r.Err != "" || r.WorkerID != "release-me" {
		t.Errorf("released worker result = %+v", r)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 0 }, "released worker to detach")
}

func TestPoolResize(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMaster(MasterConfig{ResultBuffer: 8})
	p := NewPool(m, echoExec)
	defer p.Close()

	p.Resize(ctx, 5)
	if got := p.Size(); got != 5 {
		t.Errorf("Size after grow = %d, want 5", got)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 5 }, "workers to attach")

	p.Resize(ctx, 2)
	if got := p.Size(); got != 2 {
		t.Errorf("Size after shrink = %d, want 2", got)
	}
	waitFor(t, func() bool { return m.WorkerCount() == 2 }, "workers to detach")

	p.Resize(ctx, -3)
	if got := p.Size(); got != 0 {
		t.Errorf("Size after negative resize = %d, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitAfterShutdownFails(t *testing.T) {
	m := NewMaster(MasterConfig{})
	m.Shutdown()
	if err := m.Submit(Task{ID: "t", JobID: "j"}); err == nil {
		t.Error("Submit after Shutdown accepted")
	}
	if _, ok := <-m.Results(); ok {
		t.Error("Results channel not closed after Shutdown")
	}
}

func TestSchedulerFIFOWithinJob(t *testing.T) {
	s := newScheduler(1, 4)
	for i := 0; i < 10; i++ {
		s.push(Task{ID: fmt.Sprintf("t%d", i), JobID: "j"})
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		task, ok := s.next(ctx)
		if !ok {
			t.Fatal("scheduler closed early")
		}
		if want := fmt.Sprintf("t%d", i); task.ID != want {
			t.Fatalf("task %d = %s, want %s (FIFO violated)", i, task.ID, want)
		}
	}
}

func TestSchedulerNextHonorsContext(t *testing.T) {
	s := newScheduler(1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := s.next(ctx); ok {
		t.Error("next returned a task from an empty pool")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("next did not respect context deadline")
	}
}

func TestSchedulerCloseWakesWaiters(t *testing.T) {
	s := newScheduler(1, 4)
	done := make(chan bool, 1)
	go func() {
		_, ok := s.next(context.Background())
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	s.close()
	select {
	case ok := <-done:
		if ok {
			t.Error("closed scheduler returned a task")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake waiter")
	}
}

func TestWorkerValidation(t *testing.T) {
	w := &Worker{}
	c1, c2 := pipePair()
	defer func() { _ = c1.Close(); _ = c2.Close() }()
	if err := w.Run(context.Background(), c2); err == nil {
		t.Error("worker without ID/Exec ran")
	}
}
