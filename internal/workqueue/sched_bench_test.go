package workqueue

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// Contention benchmarks for the sharded scheduler + lock-free dispatch
// path, each at 1/4/16/64 simulated workers against the frozen
// single-mutex baseline (sched_baseline_test.go):
//
//	BenchmarkSchedulerPushNext       push → blocking draw, the bare pool
//	BenchmarkSchedulerDispatchAck    submit → draw → in-flight → ack, the
//	                                 master bookkeeping cycle
//	BenchmarkSchedulerMixedContended the above plus priority retunes and
//	                                 stats reads racing each other
//
// The sharded side always runs 8 shards so the comparison measures the
// sharded data structure (not GOMAXPROCS, which is 1 on the CI box).
// scripts/check.sh sched flattens the results into BENCH_sched.json,
// which the benchdiff gate then tracks; the ≥4× acceptance ratio at 16
// workers is sharded vs mutex ns/op within one snapshot.

const benchShards = 8

var benchWorkerCounts = []int{1, 4, 16, 64}

// benchJob spreads goroutines over 16 jobs so both implementations see
// a realistic multi-job pool (and the sharded one a populated hash).
func benchJob(g int) string { return fmt.Sprintf("job%d", g%16) }

// benchIDs precomputes a cycle of task IDs per simulated worker so ID
// formatting stays out of the timed loop. A worker has at most one task
// in flight, so reusing an ID after 1024 cycles never collides in the
// in-flight maps.
func benchIDs(workers int) [][]string {
	ids := make([][]string, workers)
	for g := range ids {
		ids[g] = make([]string, 1024)
		for i := range ids[g] {
			ids[g][i] = fmt.Sprintf("w%d-%d", g, i)
		}
	}
	return ids
}

// splitN runs workers goroutines, each executing fn(g, per) where the
// per-goroutine iteration counts sum to at least b.N.
func splitN(b *testing.B, workers int, fn func(g, per int)) {
	per := b.N/workers + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn(g, per)
		}(g)
	}
	wg.Wait()
}

func BenchmarkSchedulerPushNext(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("impl=sharded/workers=%d", workers), func(b *testing.B) {
			s := newScheduler(1, benchShards)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				w := s.getWaiter()
				defer s.putWaiter(w)
				task := Task{ID: "t", JobID: benchJob(g)}
				for i := 0; i < per; i++ {
					s.push(task)
					if _, ok := w.next(ctx); !ok {
						b.Error("draw failed")
						return
					}
				}
			})
		})
		b.Run(fmt.Sprintf("impl=mutex/workers=%d", workers), func(b *testing.B) {
			s := newMutexScheduler(1)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				task := Task{ID: "t", JobID: benchJob(g)}
				for i := 0; i < per; i++ {
					s.push(task)
					if _, ok := s.next(ctx); !ok {
						b.Error("draw failed")
						return
					}
				}
			})
		})
	}
}

func BenchmarkSchedulerDispatchAck(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("impl=sharded/workers=%d", workers), func(b *testing.B) {
			m := NewMaster(MasterConfig{Seed: 1, SchedShards: benchShards, ResultBuffer: 256})
			ids := benchIDs(workers)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range m.results {
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				w := m.sched.getWaiter()
				defer m.sched.putWaiter(w)
				w.preferred = uint32(g)
				job := benchJob(g)
				for i := 0; i < per; i++ {
					id := ids[g][i%1024]
					if err := m.Submit(Task{ID: id, JobID: job}); err != nil {
						b.Error(err)
						return
					}
					task, ok := w.next(ctx)
					if !ok {
						b.Error("draw failed")
						return
					}
					m.trackInflight(task, "bench-worker")
					m.complete(Result{TaskID: task.ID, JobID: task.JobID})
				}
			})
			b.StopTimer()
			m.Shutdown()
			<-done
		})
		b.Run(fmt.Sprintf("impl=mutex/workers=%d", workers), func(b *testing.B) {
			m := newBaselineMaster(1)
			ids := benchIDs(workers)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range m.results {
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				job := benchJob(g)
				for i := 0; i < per; i++ {
					id := ids[g][i%1024]
					m.submit(Task{ID: id, JobID: job})
					task, ok := m.sched.next(ctx)
					if !ok {
						b.Error("draw failed")
						return
					}
					m.trackInflight(task)
					m.complete(Result{TaskID: task.ID, JobID: task.JobID})
				}
			})
			b.StopTimer()
			m.sched.close()
			close(m.results)
			<-done
		})
	}
}

func BenchmarkSchedulerMixedContended(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("impl=sharded/workers=%d", workers), func(b *testing.B) {
			m := NewMaster(MasterConfig{Seed: 1, SchedShards: benchShards, ResultBuffer: 256})
			ids := benchIDs(workers)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range m.results {
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				w := m.sched.getWaiter()
				defer m.sched.putWaiter(w)
				w.preferred = uint32(g)
				job := benchJob(g)
				for i := 0; i < per; i++ {
					id := ids[g][i%1024]
					if err := m.Submit(Task{ID: id, JobID: job}); err != nil {
						b.Error(err)
						return
					}
					if i%64 == 0 {
						m.SetJobPriority(job, 1+float64(i%7))
						_ = m.Stats(job)
					}
					task, ok := w.next(ctx)
					if !ok {
						b.Error("draw failed")
						return
					}
					m.trackInflight(task, "bench-worker")
					m.complete(Result{TaskID: task.ID, JobID: task.JobID})
				}
			})
			b.StopTimer()
			m.Shutdown()
			<-done
		})
		b.Run(fmt.Sprintf("impl=mutex/workers=%d", workers), func(b *testing.B) {
			m := newBaselineMaster(1)
			ids := benchIDs(workers)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range m.results {
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			splitN(b, workers, func(g, per int) {
				job := benchJob(g)
				for i := 0; i < per; i++ {
					id := ids[g][i%1024]
					m.submit(Task{ID: id, JobID: job})
					if i%64 == 0 {
						m.sched.setPriority(job, 1+float64(i%7))
						_ = m.stat(job)
					}
					task, ok := m.sched.next(ctx)
					if !ok {
						b.Error("draw failed")
						return
					}
					m.trackInflight(task)
					m.complete(Result{TaskID: task.ID, JobID: task.JobID})
				}
			})
			b.StopTimer()
			m.sched.close()
			close(m.results)
			<-done
		})
	}
}
