package pipeline

import (
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/clustering"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

func origin() time.Time { return time.Date(2013, 4, 15, 14, 49, 0, 0, time.UTC) }

func newPipeline(t *testing.T, keywords []string) *Pipeline {
	t.Helper()
	ecfg := core.DefaultConfig(origin())
	ecfg.ACS.Interval = 30 * time.Minute
	ccfg := clustering.DefaultConfig()
	ccfg.Keywords = keywords
	p, err := New(Config{Engine: ecfg, Cluster: ccfg})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineValidation(t *testing.T) {
	if _, err := New(Config{Cluster: clustering.DefaultConfig()}); err == nil {
		t.Error("missing origin accepted")
	}
}

func TestPipelineFiltersAndClusters(t *testing.T) {
	p := newPipeline(t, []string{"boston", "marathon"})
	claim1, kept, err := p.Process(RawPost{Source: "a", Time: origin(), Text: "explosion at the boston marathon finish line"})
	if err != nil || !kept {
		t.Fatalf("relevant post dropped: %v %v", kept, err)
	}
	if _, kept, _ := p.Process(RawPost{Source: "b", Time: origin(), Text: "great sandwich for lunch"}); kept {
		t.Error("irrelevant post kept")
	}
	claim2, kept, err := p.Process(RawPost{Source: "c", Time: origin().Add(time.Minute), Text: "explosions at the boston marathon finish line reported"})
	if err != nil || !kept {
		t.Fatal(err)
	}
	if claim1 != claim2 {
		t.Errorf("near-identical posts in different claims: %s vs %s", claim1, claim2)
	}
	st := p.Stats()
	if st.Posts != 3 || st.Kept != 2 || st.Filtered != 1 || st.Claims != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(p.Claims()) != 1 {
		t.Errorf("claims = %d", len(p.Claims()))
	}
}

func TestPipelineEndToEndDecode(t *testing.T) {
	// Run a generated trace's raw text through the pipeline and decode:
	// the busiest derived claim must be decodable with plausible output.
	gen, err := tracegen.New(tracegen.BostonBombing(), 9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(0.002)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultConfig(tr.Start)
	ecfg.ACS.Interval = tr.Duration() / 60
	ccfg := clustering.DefaultConfig()
	ccfg.Keywords = tracegen.BostonBombing().Keywords
	p, err := New(Config{Engine: ecfg, Cluster: ccfg})
	if err != nil {
		t.Fatal(err)
	}
	posts := make([]RawPost, len(tr.Reports))
	for i, r := range tr.Reports {
		posts[i] = RawPost{Source: r.Source, Time: r.Timestamp, Text: r.Text}
	}
	if err := p.ProcessAll(posts); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Kept < len(posts)/2 {
		t.Fatalf("kept only %d/%d posts", st.Kept, len(posts))
	}
	clusters := p.Claims()
	if len(clusters) == 0 {
		t.Fatal("no claims derived")
	}
	est, err := p.Engine().DecodeClaim(socialsensing.ClaimID(clusters[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 {
		t.Error("no estimates for the busiest claim")
	}
}
