// Package pipeline composes the full SSTD ingestion path behind one API:
// raw posts are keyword-filtered, clustered into claims (the paper's claim
// generator), semantically scored into contribution-score reports, and fed
// to the streaming truth discovery engine. It is the library form of the
// deployment loop every SSTD application writes.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/clustering"
	"github.com/social-sensing/sstd/internal/contrib"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// RawPost is an unprocessed observation: who said what, when.
type RawPost struct {
	Source socialsensing.SourceID
	Time   time.Time
	Text   string
}

// Config assembles a Pipeline.
type Config struct {
	// Engine configures the truth discovery engine; Engine.Origin is
	// required.
	Engine core.Config
	// Cluster configures claim generation; set Cluster.Keywords to the
	// event filter.
	Cluster clustering.Config
	// ScorerOptions customize semantic scoring (e.g. a sports attitude
	// lexicon or a trained stance classifier).
	ScorerOptions []contrib.Option
	// Metrics enables pipeline ingest telemetry, and — unless the
	// engine config carries its own registry — engine telemetry too.
	// Nil disables it.
	Metrics *obs.Registry
	// Logger receives structured pipeline events (ingest failures,
	// cluster compaction). Nil disables logging.
	Logger *obs.Logger
}

// Pipeline is the composed ingestion path. It is not safe for concurrent
// use: posts must arrive in time order (the engine itself may be shared
// and queried concurrently).
type Pipeline struct {
	clusterer *clustering.Clusterer
	scorer    *contrib.Scorer
	engine    *core.Engine
	logger    *obs.Logger

	// Telemetry handles; nil when Config.Metrics is nil.
	cPosts    *obs.Counter
	cKept     *obs.Counter
	cFiltered *obs.Counter
	gClusters *obs.Gauge

	posts    int
	kept     int
	filtered int
}

// New builds the pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Engine.Origin.IsZero() {
		return nil, errors.New("pipeline: engine config needs an origin time")
	}
	if cfg.Metrics != nil && cfg.Engine.Metrics == nil {
		cfg.Engine.Metrics = cfg.Metrics
	}
	eng, err := core.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		clusterer: clustering.New(cfg.Cluster),
		scorer:    contrib.NewScorer(cfg.ScorerOptions...),
		engine:    eng,
		logger:    cfg.Logger,
	}
	if reg := cfg.Metrics; reg != nil {
		p.cPosts = reg.Counter("pipeline_posts_total")
		p.cKept = reg.Counter("pipeline_kept_total")
		p.cFiltered = reg.Counter("pipeline_filtered_total")
		p.gClusters = reg.Gauge("pipeline_claims")
	}
	return p, nil
}

// Process routes one raw post through the pipeline. It returns the claim
// the post was assigned to and kept=false when the keyword filter dropped
// it.
func (p *Pipeline) Process(post RawPost) (claim socialsensing.ClaimID, kept bool, err error) {
	p.posts++
	p.cPosts.Inc()
	clusterID, ok := p.clusterer.Assign(post.Text, post.Time)
	if !ok {
		p.filtered++
		p.cFiltered.Inc()
		return "", false, nil
	}
	report := p.scorer.ScorePost(contrib.Post{
		Source:    post.Source,
		Claim:     socialsensing.ClaimID(clusterID),
		Timestamp: post.Time,
		Text:      post.Text,
	})
	if err := p.engine.Ingest(report); err != nil {
		p.logger.Error("pipeline ingest failed",
			obs.F("claim", string(clusterID)), obs.F("source", string(post.Source)), obs.Err(err))
		return "", false, fmt.Errorf("pipeline: ingest: %w", err)
	}
	p.kept++
	p.cKept.Inc()
	p.gClusters.SetInt(p.clusterer.Len())
	return socialsensing.ClaimID(clusterID), true, nil
}

// ProcessAll routes a batch of posts in order.
func (p *Pipeline) ProcessAll(posts []RawPost) error {
	for _, post := range posts {
		if _, _, err := p.Process(post); err != nil {
			return err
		}
	}
	return nil
}

// Engine exposes the underlying truth discovery engine for decoding and
// posterior queries.
func (p *Pipeline) Engine() *core.Engine { return p.engine }

// Claims returns the current derived claims (clusters), largest first.
func (p *Pipeline) Claims() []clustering.Cluster { return p.clusterer.Clusters() }

// Compact re-fuses claim clusters that drifted apart during streaming and
// returns the number of merges. Note that reports already ingested keep
// their original claim IDs; call this between processing batches, before
// decoding, when fragmentation is visible in Claims().
func (p *Pipeline) Compact() int {
	merges := p.clusterer.Compact()
	if merges > 0 {
		p.logger.Info("compacted claim clusters",
			obs.F("merges", merges), obs.F("claims", p.clusterer.Len()))
	}
	return merges
}

// Stats summarizes pipeline throughput.
type Stats struct {
	Posts    int
	Kept     int
	Filtered int
	Claims   int
}

// Stats reports what the pipeline has processed.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Posts:    p.posts,
		Kept:     p.kept,
		Filtered: p.filtered,
		Claims:   p.clusterer.Len(),
	}
}
