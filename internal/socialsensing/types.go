// Package socialsensing defines the shared data model for social sensing
// truth discovery: sources, claims, reports and traces.
//
// The model follows the problem formulation of Zhang et al., "Towards
// Scalable and Dynamic Social Sensing Using A Distributed Computing
// Framework" (ICDCS 2017): M sources report on N binary claims whose ground
// truth evolves over time.
package socialsensing

import (
	"fmt"
	"time"
)

// SourceID identifies a data source (e.g. a Twitter user).
type SourceID string

// ClaimID identifies a claim (a statement about the physical world derived
// from clustered reports).
type ClaimID string

// TruthValue is the binary truth state of a claim at a time instant.
type TruthValue int

// Truth values. The paper restricts claims to binary truth states: a claim
// is either true or false at any instant, never both.
const (
	False TruthValue = iota
	True
)

// String returns "true" or "false".
func (v TruthValue) String() string {
	if v == True {
		return "true"
	}
	return "false"
}

// Attitude is the stance a report takes toward its claim (Definition 1 in
// the paper): +1 the source believes the claim is true, -1 the source
// believes it is false, 0 no stance.
type Attitude int

// Attitude scores per Definition 1.
const (
	Disagree Attitude = -1
	NoReport Attitude = 0
	Agree    Attitude = 1
)

// Report is a single observation R(t)_{i,u} made by source i on claim u at
// time t, together with the semantic scores needed to compute its
// contribution score (Eq. 1).
type Report struct {
	Source    SourceID
	Claim     ClaimID
	Timestamp time.Time

	// Text is the raw content the report was derived from (a tweet).
	// It may be empty when reports are constructed directly.
	Text string

	// Attitude is rho in Eq. 1: whether the source asserts the claim to
	// be true (+1), false (-1), or takes no stance (0).
	Attitude Attitude

	// Uncertainty is kappa in Eq. 1, in (0,1): how hedged/uncertain the
	// report is. Higher means more uncertain.
	Uncertainty float64

	// Independence is eta in Eq. 1, in (0,1): how likely the report was
	// made independently rather than copied (retweeted). Higher means
	// more independent.
	Independence float64
}

// ContributionScore returns CS(t)_{i,u} = rho * (1-kappa) * eta (Eq. 1).
func (r Report) ContributionScore() float64 {
	return float64(r.Attitude) * (1 - r.Uncertainty) * r.Independence
}

// Claim is a statement whose truth value evolves over time, e.g. "Notre
// Dame is leading the football game".
type Claim struct {
	ID ClaimID

	// Topic is a short human-readable description.
	Topic string

	// Created is the time the claim was first observed.
	Created time.Time
}

// Source is a participant that files reports. Reliability is only used by
// trace generators and evaluation; truth discovery algorithms must not read
// it (the whole point of truth discovery is that reliability is unknown).
type Source struct {
	ID SourceID

	// Reliability in [0,1] is the generator-side probability that this
	// source reports the current ground truth correctly. Hidden from
	// algorithms.
	Reliability float64
}

// GroundTruthPoint is the labelled truth of a claim at an instant.
type GroundTruthPoint struct {
	Claim ClaimID
	Time  time.Time
	Value TruthValue
}

// Trace is a complete social sensing dataset: reports ordered by time plus
// ground truth labels for evaluation.
type Trace struct {
	Name    string
	Start   time.Time
	End     time.Time
	Sources []Source
	Claims  []Claim

	// Reports are sorted by Timestamp ascending.
	Reports []Report

	// GroundTruth maps each claim to its piecewise-constant truth
	// timeline, sorted by Time ascending. The truth of claim c at time t
	// is the Value of the latest point with Time <= t.
	GroundTruth map[ClaimID][]GroundTruthPoint
}

// Duration returns the time span covered by the trace.
func (tr *Trace) Duration() time.Duration { return tr.End.Sub(tr.Start) }

// TruthAt returns the ground truth of claim c at time t and whether a label
// exists. Points before the first label return the first label's value.
func (tr *Trace) TruthAt(c ClaimID, t time.Time) (TruthValue, bool) {
	points := tr.GroundTruth[c]
	if len(points) == 0 {
		return False, false
	}
	v := points[0].Value
	for _, p := range points {
		if p.Time.After(t) {
			break
		}
		v = p.Value
	}
	return v, true
}

// ReportsByClaim groups the trace's reports per claim, preserving time
// order. The returned slices alias the trace's report storage.
func (tr *Trace) ReportsByClaim() map[ClaimID][]Report {
	out := make(map[ClaimID][]Report, len(tr.Claims))
	for _, r := range tr.Reports {
		out[r.Claim] = append(out[r.Claim], r)
	}
	return out
}

// Validate performs basic sanity checks on the trace and returns a
// descriptive error for the first violation found.
func (tr *Trace) Validate() error {
	if tr.Name == "" {
		return fmt.Errorf("trace has no name")
	}
	if tr.End.Before(tr.Start) {
		return fmt.Errorf("trace %q: end %v before start %v", tr.Name, tr.End, tr.Start)
	}
	claims := make(map[ClaimID]bool, len(tr.Claims))
	for _, c := range tr.Claims {
		if claims[c.ID] {
			return fmt.Errorf("trace %q: duplicate claim %q", tr.Name, c.ID)
		}
		claims[c.ID] = true
	}
	sources := make(map[SourceID]bool, len(tr.Sources))
	for _, s := range tr.Sources {
		if sources[s.ID] {
			return fmt.Errorf("trace %q: duplicate source %q", tr.Name, s.ID)
		}
		if s.Reliability < 0 || s.Reliability > 1 {
			return fmt.Errorf("trace %q: source %q reliability %v out of [0,1]", tr.Name, s.ID, s.Reliability)
		}
		sources[s.ID] = true
	}
	var prev time.Time
	for i, r := range tr.Reports {
		if !claims[r.Claim] {
			return fmt.Errorf("trace %q: report %d references unknown claim %q", tr.Name, i, r.Claim)
		}
		if !sources[r.Source] {
			return fmt.Errorf("trace %q: report %d references unknown source %q", tr.Name, i, r.Source)
		}
		if r.Timestamp.Before(prev) {
			return fmt.Errorf("trace %q: report %d out of time order", tr.Name, i)
		}
		if r.Uncertainty < 0 || r.Uncertainty > 1 {
			return fmt.Errorf("trace %q: report %d uncertainty %v out of [0,1]", tr.Name, i, r.Uncertainty)
		}
		if r.Independence < 0 || r.Independence > 1 {
			return fmt.Errorf("trace %q: report %d independence %v out of [0,1]", tr.Name, i, r.Independence)
		}
		if r.Attitude < Disagree || r.Attitude > Agree {
			return fmt.Errorf("trace %q: report %d attitude %d invalid", tr.Name, i, r.Attitude)
		}
		prev = r.Timestamp
	}
	return nil
}

// Stats summarizes a trace in the style of Table II of the paper.
type Stats struct {
	Name     string
	Reports  int
	Sources  int
	Claims   int
	Duration time.Duration
}

// Summarize computes the Table II statistics for the trace.
func (tr *Trace) Summarize() Stats {
	return Stats{
		Name:     tr.Name,
		Reports:  len(tr.Reports),
		Sources:  len(tr.Sources),
		Claims:   len(tr.Claims),
		Duration: tr.Duration(),
	}
}
