package socialsensing

import (
	"testing"
	"testing/quick"
	"time"
)

func ts(sec int) time.Time {
	return time.Date(2016, 11, 28, 7, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func validTrace() *Trace {
	return &Trace{
		Name:    "unit",
		Start:   ts(0),
		End:     ts(100),
		Sources: []Source{{ID: "s1", Reliability: 0.9}, {ID: "s2", Reliability: 0.4}},
		Claims:  []Claim{{ID: "c1", Topic: "shooting at OSU", Created: ts(0)}},
		Reports: []Report{
			{Source: "s1", Claim: "c1", Timestamp: ts(1), Attitude: Agree, Uncertainty: 0.1, Independence: 1},
			{Source: "s2", Claim: "c1", Timestamp: ts(2), Attitude: Disagree, Uncertainty: 0.5, Independence: 0.5},
		},
		GroundTruth: map[ClaimID][]GroundTruthPoint{
			"c1": {
				{Claim: "c1", Time: ts(0), Value: True},
				{Claim: "c1", Time: ts(50), Value: False},
			},
		},
	}
}

func TestContributionScore(t *testing.T) {
	tests := []struct {
		name string
		r    Report
		want float64
	}{
		{"agree full confidence", Report{Attitude: Agree, Uncertainty: 0, Independence: 1}, 1},
		{"disagree full confidence", Report{Attitude: Disagree, Uncertainty: 0, Independence: 1}, -1},
		{"no stance contributes nothing", Report{Attitude: NoReport, Uncertainty: 0, Independence: 1}, 0},
		{"uncertainty damps", Report{Attitude: Agree, Uncertainty: 0.75, Independence: 1}, 0.25},
		{"dependence damps", Report{Attitude: Agree, Uncertainty: 0, Independence: 0.2}, 0.2},
		{"combined", Report{Attitude: Disagree, Uncertainty: 0.5, Independence: 0.5}, -0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.ContributionScore(); got != tt.want {
				t.Errorf("ContributionScore() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestContributionScoreBounds(t *testing.T) {
	// |CS| <= 1 for any valid report; sign follows attitude.
	f := func(unc, ind float64, att int8) bool {
		u := clamp01(unc)
		in := clamp01(ind)
		var a Attitude
		switch int(att) % 3 {
		case 0:
			a = NoReport
		case 1:
			a = Agree
		default:
			a = Disagree
		}
		cs := Report{Attitude: a, Uncertainty: u, Independence: in}.ContributionScore()
		if cs > 1 || cs < -1 {
			return false
		}
		switch a {
		case Agree:
			return cs >= 0
		case Disagree:
			return cs <= 0
		default:
			return cs == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 2
	}
	return x
}

func TestTruthValueString(t *testing.T) {
	if True.String() != "true" || False.String() != "false" {
		t.Errorf("TruthValue.String() wrong: %q %q", True, False)
	}
}

func TestTruthAt(t *testing.T) {
	tr := validTrace()
	tests := []struct {
		at   time.Time
		want TruthValue
	}{
		{ts(0), True},
		{ts(49), True},
		{ts(50), False},
		{ts(99), False},
	}
	for _, tt := range tests {
		got, ok := tr.TruthAt("c1", tt.at)
		if !ok {
			t.Fatalf("TruthAt(c1, %v): no label", tt.at)
		}
		if got != tt.want {
			t.Errorf("TruthAt(c1, %v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if _, ok := tr.TruthAt("missing", ts(0)); ok {
		t.Error("TruthAt(missing) should report no label")
	}
}

func TestTruthAtBeforeFirstLabel(t *testing.T) {
	tr := validTrace()
	got, ok := tr.TruthAt("c1", ts(-10))
	if !ok || got != True {
		t.Errorf("TruthAt before first label = %v,%v; want True,true", got, ok)
	}
}

func TestReportsByClaim(t *testing.T) {
	tr := validTrace()
	by := tr.ReportsByClaim()
	if len(by) != 1 {
		t.Fatalf("ReportsByClaim: %d groups, want 1", len(by))
	}
	if got := len(by["c1"]); got != 2 {
		t.Errorf("c1 group has %d reports, want 2", got)
	}
	if by["c1"][0].Source != "s1" || by["c1"][1].Source != "s2" {
		t.Error("ReportsByClaim did not preserve time order")
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"no name", func(tr *Trace) { tr.Name = "" }},
		{"end before start", func(tr *Trace) { tr.End = tr.Start.Add(-time.Second) }},
		{"duplicate claim", func(tr *Trace) { tr.Claims = append(tr.Claims, tr.Claims[0]) }},
		{"duplicate source", func(tr *Trace) { tr.Sources = append(tr.Sources, tr.Sources[0]) }},
		{"bad reliability", func(tr *Trace) { tr.Sources[0].Reliability = 1.5 }},
		{"unknown claim", func(tr *Trace) { tr.Reports[0].Claim = "nope" }},
		{"unknown source", func(tr *Trace) { tr.Reports[0].Source = "nope" }},
		{"time disorder", func(tr *Trace) { tr.Reports[1].Timestamp = ts(-5) }},
		{"bad uncertainty", func(tr *Trace) { tr.Reports[0].Uncertainty = 2 }},
		{"bad independence", func(tr *Trace) { tr.Reports[0].Independence = -0.1 }},
		{"bad attitude", func(tr *Trace) { tr.Reports[0].Attitude = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := validTrace()
			tt.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Error("Validate() accepted an invalid trace")
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	st := validTrace().Summarize()
	want := Stats{Name: "unit", Reports: 2, Sources: 2, Claims: 1, Duration: 100 * time.Second}
	if st != want {
		t.Errorf("Summarize() = %+v, want %+v", st, want)
	}
}
