// Package nlp implements the semantic labelling the paper's preprocessing
// step performs on each report (§V-A2): an attitude score from keyword
// heuristics, an uncertainty score from a trained hedge classifier (the
// paper trains a text classifier on the CoNLL-2010 hedge-detection shared
// task; we ship an equivalent Naive Bayes classifier with a built-in hedge
// corpus), and an independence score from retweet/similarity analysis.
package nlp

import (
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/textutil"
)

// AttitudeScorer classifies a report's stance toward a claim following the
// paper's heuristic: the presence of denial keywords ("false", "fake",
// "rumor", "debunked", "not true") flips a report to Disagree; supportive
// keywords (or the absence of denial for the emergency traces) yield Agree.
type AttitudeScorer struct {
	// DenyWords are single tokens indicating the source rejects the claim.
	DenyWords []string
	// DenyPhrases are multi-token denial expressions.
	DenyPhrases []string
	// SupportWords, when non-empty, gate Agree: a report must contain one
	// of them to count as supportive; otherwise it is scored Disagree.
	// This matches the College Football trace setup, where only tweets
	// with score-change words ("score", "lead", "tied") support the
	// "score changed" claim and all other tweets are scored -1.
	SupportWords []string
	// SupportPhrases are multi-token support expressions.
	SupportPhrases []string
}

// NewDefaultAttitudeScorer returns the scorer configured with the denial
// lexicon the paper lists for the emergency traces. Reports without denial
// markers are treated as agreeing with the claim they were clustered into.
func NewDefaultAttitudeScorer() *AttitudeScorer {
	return &AttitudeScorer{
		DenyWords:   []string{"false", "fake", "rumor", "rumour", "hoax", "debunked", "untrue", "misinformation"},
		DenyPhrases: []string{"not true", "no truth", "didn't happen", "did not happen", "fake news"},
	}
}

// NewSportsAttitudeScorer returns the scorer configured for the College
// Football trace: tweets containing score-change language agree with the
// "score changed" claim, everything else disagrees.
func NewSportsAttitudeScorer() *AttitudeScorer {
	return &AttitudeScorer{
		DenyWords:   []string{"false", "fake", "rumor", "rumour"},
		DenyPhrases: []string{"not true", "no score", "still scoreless"},
		SupportWords: []string{
			"score", "scored", "scores", "touchdown", "td", "fieldgoal", "tied",
		},
		SupportPhrases: []string{"taking the lead", "takes the lead", "field goal", "in the lead"},
	}
}

// Score returns the attitude of the report text: Disagree when a denial
// marker is present, otherwise Agree (or Disagree when SupportWords are
// configured and none match). Empty text yields NoReport.
func (s *AttitudeScorer) Score(text string) socialsensing.Attitude {
	if len(textutil.Tokenize(text)) == 0 {
		return socialsensing.NoReport
	}
	if textutil.ContainsAny(text, s.DenyWords) {
		return socialsensing.Disagree
	}
	for _, p := range s.DenyPhrases {
		if textutil.ContainsPhrase(text, p) {
			return socialsensing.Disagree
		}
	}
	if len(s.SupportWords) == 0 && len(s.SupportPhrases) == 0 {
		return socialsensing.Agree
	}
	if textutil.ContainsAny(text, s.SupportWords) {
		return socialsensing.Agree
	}
	for _, p := range s.SupportPhrases {
		if textutil.ContainsPhrase(text, p) {
			return socialsensing.Agree
		}
	}
	return socialsensing.Disagree
}
