package nlp

import (
	"testing"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func TestStanceClassifierSeparates(t *testing.T) {
	c := NewDefaultStanceClassifier()
	supporting := []string{
		"confirmed there was a shooting at the stadium",
		"touchdown the irish just scored",
		"police made an arrest downtown",
		"i saw the explosion myself this is real",
	}
	denying := []string{
		"that shooting story is fake news",
		"the bomb threat was debunked hours ago",
		"no truth to the arrest rumor",
		"this is a hoax it did not happen",
	}
	for _, s := range supporting {
		if got := c.Score(s); got != socialsensing.Agree {
			t.Errorf("Score(%q) = %v, want Agree (p=%.3f)", s, got, c.SupportProbability(s))
		}
	}
	for _, d := range denying {
		if got := c.Score(d); got != socialsensing.Disagree {
			t.Errorf("Score(%q) = %v, want Disagree (p=%.3f)", d, got, c.SupportProbability(d))
		}
	}
}

func TestStanceClassifierNeutralBand(t *testing.T) {
	c := NewDefaultStanceClassifier()
	if got := c.Score("   "); got != socialsensing.NoReport {
		t.Errorf("empty text = %v, want NoReport", got)
	}
	// Out-of-vocabulary text falls to the prior (~0.5) inside the
	// neutral band.
	if got := c.Score("zzz qqq xyzzy"); got != socialsensing.NoReport {
		t.Errorf("unknown text = %v, want NoReport", got)
	}
	// A weakly-denying text: neutral under the default band, a hard
	// Disagree when the band is removed.
	weak := "old video again"
	p := c.SupportProbability(weak)
	if p >= 0.5-c.NeutralBand && p <= 0.5+c.NeutralBand {
		if got := c.Score(weak); got != socialsensing.NoReport {
			t.Errorf("weak text inside band = %v, want NoReport", got)
		}
	}
	hard := NewDefaultStanceClassifier()
	hard.NeutralBand = 0
	if got := hard.Score(weak); got != socialsensing.Disagree {
		t.Errorf("zero band weak-deny text = %v (p=%.3f), want Disagree", got, hard.SupportProbability(weak))
	}
}

func TestStanceProbabilityBounds(t *testing.T) {
	c := NewDefaultStanceClassifier()
	for _, text := range []string{"", "fake fake fake", "confirmed confirmed", "zzz"} {
		p := c.SupportProbability(text)
		if p <= 0 || p >= 1 {
			t.Errorf("SupportProbability(%q) = %v outside (0,1)", text, p)
		}
	}
}

func TestTrainStanceClassifierErrors(t *testing.T) {
	if _, err := TrainStanceClassifier(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	oneSided := []LabeledStance{{Text: "confirmed", Supports: true}}
	if _, err := TrainStanceClassifier(oneSided); err == nil {
		t.Error("single-class corpus accepted")
	}
}

func TestTopSupportTokens(t *testing.T) {
	c := NewDefaultStanceClassifier()
	top := c.TopSupportTokens(12)
	if len(top) != 12 {
		t.Fatalf("tokens = %d", len(top))
	}
	found := false
	for _, tok := range top {
		if tok == "confirmed" || tok == "touchdown" || tok == "breaking" {
			found = true
		}
	}
	if !found {
		t.Errorf("no assertive cue among top support tokens: %v", top)
	}
}

func TestStanceAsAttitudeModelInPipeline(t *testing.T) {
	// The classifier must be usable wherever the keyword scorer is.
	var m AttitudeModel = NewDefaultStanceClassifier()
	if got := m.Score("the story is fake news"); got != socialsensing.Disagree {
		t.Errorf("interface call = %v, want Disagree", got)
	}
}
