package nlp

import (
	"strings"
	"time"

	"github.com/social-sensing/sstd/internal/textutil"
)

// IndependenceScorer assigns each report an independence score in (0,1)
// (Definition 3): retweets and near-duplicates of recent reports receive a
// low score, original reports a high score. The scorer keeps a sliding
// window of recently seen reports per claim and compares new text against
// them with Jaccard similarity, mirroring the paper's "retweets or tweets
// significantly similar to previous tweets within a time interval" rule.
type IndependenceScorer struct {
	// Window is how long a previous report stays eligible as a copy
	// source. The paper uses a short interval; default 10 minutes.
	Window time.Duration
	// SimilarityThreshold is the Jaccard similarity above which a report
	// counts as a near-duplicate. Default 0.8.
	SimilarityThreshold float64
	// CopyScore is the independence assigned to detected copies. Default 0.1.
	CopyScore float64
	// OriginalScore is the independence assigned to original reports.
	// Default 0.95.
	OriginalScore float64

	recent map[string][]seenReport // key: claim id
}

type seenReport struct {
	at     time.Time
	tokens map[string]bool
}

// NewIndependenceScorer returns a scorer with the default window and
// thresholds.
func NewIndependenceScorer() *IndependenceScorer {
	return &IndependenceScorer{
		Window:              10 * time.Minute,
		SimilarityThreshold: 0.8,
		CopyScore:           0.1,
		OriginalScore:       0.95,
		recent:              make(map[string][]seenReport),
	}
}

// Score rates the independence of a report on the given claim at time t and
// records it for future comparisons. Calls must be made in non-decreasing
// time order per claim.
func (s *IndependenceScorer) Score(claimID, text string, t time.Time) float64 {
	if s.recent == nil {
		s.recent = make(map[string][]seenReport)
	}
	toks := textutil.TokenSet(text)
	score := s.OriginalScore
	if isRetweet(text) {
		score = s.CopyScore
	} else {
		for _, prev := range s.recent[claimID] {
			if t.Sub(prev.at) > s.Window {
				continue
			}
			if textutil.Jaccard(toks, prev.tokens) >= s.SimilarityThreshold {
				score = s.CopyScore
				break
			}
		}
	}
	s.remember(claimID, seenReport{at: t, tokens: toks})
	return score
}

// remember appends the report and drops entries older than the window.
func (s *IndependenceScorer) remember(claimID string, r seenReport) {
	window := s.recent[claimID]
	cutoff := r.at.Add(-s.Window)
	keep := 0
	for _, prev := range window {
		if !prev.at.Before(cutoff) {
			window[keep] = prev
			keep++
		}
	}
	window = window[:keep]
	s.recent[claimID] = append(window, r)
}

// Reset discards all remembered reports.
func (s *IndependenceScorer) Reset() {
	s.recent = make(map[string][]seenReport)
}

// isRetweet detects the conventional retweet markers.
func isRetweet(text string) bool {
	lt := strings.ToLower(strings.TrimSpace(text))
	return strings.HasPrefix(lt, "rt @") || strings.HasPrefix(lt, "rt:") ||
		strings.Contains(lt, "retweet")
}
