package nlp

import (
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func TestDefaultAttitudeScorer(t *testing.T) {
	s := NewDefaultAttitudeScorer()
	tests := []struct {
		name string
		text string
		want socialsensing.Attitude
	}{
		{"plain report agrees", "There was a shooting at Ohio state please pray", socialsensing.Agree},
		{"fake flips to disagree", "Liberals putting out fake claims about the attack", socialsensing.Disagree},
		{"rumor flips", "that bomb threat is just a rumor", socialsensing.Disagree},
		{"phrase not true", "the shooting story is not true", socialsensing.Disagree},
		{"fake news phrase", "classic fake news from that account", socialsensing.Disagree},
		{"empty is no report", "   ", socialsensing.NoReport},
		{"debunked", "this was debunked hours ago", socialsensing.Disagree},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Score(tt.text); got != tt.want {
				t.Errorf("Score(%q) = %v, want %v", tt.text, got, tt.want)
			}
		})
	}
}

func TestSportsAttitudeScorer(t *testing.T) {
	s := NewSportsAttitudeScorer()
	tests := []struct {
		name string
		text string
		want socialsensing.Attitude
	}{
		{"touchdown agrees", "TOUCHDOWN Irish!!", socialsensing.Agree},
		{"taking the lead agrees", "the irish are taking the lead", socialsensing.Agree},
		{"tied agrees", "game is tied at 14", socialsensing.Agree},
		{"field goal phrase agrees", "Field goal is good!", socialsensing.Agree},
		{"chatter disagrees", "great tailgate today go irish", socialsensing.Disagree},
		{"no score phrase disagrees", "still no score in the second quarter", socialsensing.Disagree},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Score(tt.text); got != tt.want {
				t.Errorf("Score(%q) = %v, want %v", tt.text, got, tt.want)
			}
		})
	}
}

func TestHedgeClassifierSeparates(t *testing.T) {
	c := NewDefaultHedgeClassifier()
	hedged := []string{
		"there might be a second suspect maybe",
		"possibly another device near the library",
		"unconfirmed reports suggest casualties",
		"i think the game could be delayed",
	}
	plain := []string{
		"police confirmed the arrest",
		"notre dame scored a touchdown",
		"the library is on lockdown",
		"two explosions at the marathon finish line",
	}
	for _, h := range hedged {
		if u := c.Uncertainty(h); u <= 0.5 {
			t.Errorf("Uncertainty(%q) = %v, want > 0.5", h, u)
		}
	}
	for _, p := range plain {
		if u := c.Uncertainty(p); u >= 0.5 {
			t.Errorf("Uncertainty(%q) = %v, want < 0.5", p, u)
		}
	}
}

func TestHedgeClassifierBounds(t *testing.T) {
	c := NewDefaultHedgeClassifier()
	texts := []string{"", "zzz qqq xxx unknownwords", "might might might", "confirmed confirmed"}
	for _, x := range texts {
		u := c.Uncertainty(x)
		if u <= 0 || u >= 1 {
			t.Errorf("Uncertainty(%q) = %v, want strictly in (0,1)", x, u)
		}
	}
}

func TestHedgeClassifierUnknownFallsBackToPrior(t *testing.T) {
	c := NewDefaultHedgeClassifier()
	// Built-in corpus is balanced, so unknown text should be ~0.5.
	u := c.Uncertainty("zzzz yyyy xxxx")
	if u < 0.4 || u > 0.6 {
		t.Errorf("prior fallback = %v, want near 0.5", u)
	}
}

func TestTrainHedgeClassifierErrors(t *testing.T) {
	if _, err := TrainHedgeClassifier(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	onlyHedged := []LabeledSentence{{Text: "maybe", Hedged: true}}
	if _, err := TrainHedgeClassifier(onlyHedged); err == nil {
		t.Error("single-class corpus accepted")
	}
}

func TestTopHedgeTokens(t *testing.T) {
	c := NewDefaultHedgeClassifier()
	top := c.TopHedgeTokens(10)
	if len(top) != 10 {
		t.Fatalf("TopHedgeTokens returned %d tokens", len(top))
	}
	found := false
	for _, tok := range top {
		if tok == "might" || tok == "maybe" || tok == "possibly" || tok == "may" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a hedge cue among top tokens, got %v", top)
	}
	if n := c.VocabSize(); n < 50 {
		t.Errorf("vocab suspiciously small: %d", n)
	}
	if got := c.TopHedgeTokens(1 << 20); len(got) != c.VocabSize() {
		t.Errorf("TopHedgeTokens over-ask returned %d, want %d", len(got), c.VocabSize())
	}
}

func TestIndependenceScorerRetweets(t *testing.T) {
	s := NewIndependenceScorer()
	t0 := time.Date(2013, 4, 15, 14, 0, 0, 0, time.UTC)
	if got := s.Score("c1", "RT @user: two explosions at the finish line", t0); got != s.CopyScore {
		t.Errorf("retweet independence = %v, want %v", got, s.CopyScore)
	}
	if got := s.Score("c1", "I saw smoke near the finish line myself", t0.Add(time.Minute)); got != s.OriginalScore {
		t.Errorf("original independence = %v, want %v", got, s.OriginalScore)
	}
}

func TestIndependenceScorerNearDuplicates(t *testing.T) {
	s := NewIndependenceScorer()
	t0 := time.Date(2013, 4, 15, 14, 0, 0, 0, time.UTC)
	orig := "two explosions reported at the boston marathon finish line"
	if got := s.Score("c1", orig, t0); got != s.OriginalScore {
		t.Fatalf("first report scored %v, want original", got)
	}
	// Near-identical copy inside the window.
	if got := s.Score("c1", "two explosions reported at the boston marathon finish line!", t0.Add(2*time.Minute)); got != s.CopyScore {
		t.Errorf("near-duplicate scored %v, want copy %v", got, s.CopyScore)
	}
	// Same text after the window has expired is original again.
	if got := s.Score("c1", orig+" update", t0.Add(time.Hour)); got != s.OriginalScore {
		t.Errorf("post-window duplicate scored %v, want original", got)
	}
}

func TestIndependenceScorerPerClaimIsolation(t *testing.T) {
	s := NewIndependenceScorer()
	t0 := time.Date(2015, 1, 7, 11, 0, 0, 0, time.UTC)
	text := "shots fired at the charlie hebdo office in paris"
	s.Score("c1", text, t0)
	// The same text on a different claim is not a copy.
	if got := s.Score("c2", text, t0.Add(time.Minute)); got != s.OriginalScore {
		t.Errorf("cross-claim duplicate scored %v, want original", got)
	}
}

func TestIndependenceScorerReset(t *testing.T) {
	s := NewIndependenceScorer()
	t0 := time.Date(2015, 1, 7, 11, 0, 0, 0, time.UTC)
	text := "police surround the building"
	s.Score("c1", text, t0)
	s.Reset()
	if got := s.Score("c1", text, t0.Add(time.Second)); got != s.OriginalScore {
		t.Errorf("after Reset duplicate scored %v, want original", got)
	}
}

func TestIndependenceScorerZeroValueUsable(t *testing.T) {
	var s IndependenceScorer
	s.Window = 5 * time.Minute
	s.SimilarityThreshold = 0.8
	s.CopyScore = 0.1
	s.OriginalScore = 0.9
	got := s.Score("c", "hello world report", time.Now())
	if got != 0.9 {
		t.Errorf("zero-value scorer = %v, want 0.9", got)
	}
}
