package nlp

import (
	"errors"

	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/textutil"
)

// AttitudeModel is anything that can derive a report's stance from text.
// Both the keyword AttitudeScorer (the paper's evaluation heuristic) and
// the trained StanceClassifier (the NLP upgrade the paper plans in §VII:
// "polarity analysis is often used to automatically decide whether a tweet
// is expressing negative or positive feelings towards a claim") satisfy
// it.
type AttitudeModel interface {
	Score(text string) socialsensing.Attitude
}

// Interface compliance checks.
var (
	_ AttitudeModel = (*AttitudeScorer)(nil)
	_ AttitudeModel = (*StanceClassifier)(nil)
)

// StanceClassifier is a trained Naive Bayes polarity model: it classifies
// whether a text supports or denies the claim it was matched to.
type StanceClassifier struct {
	nb *binaryNB
	// NeutralBand is the half-width of the probability band around 0.5
	// mapped to NoReport: texts the model cannot call either way carry
	// no stance (and therefore a zero contribution score). Default 0.1.
	NeutralBand float64
}

// LabeledStance is one training example: Supports is true when the text
// asserts its claim.
type LabeledStance struct {
	Text     string
	Supports bool
}

// ErrEmptyStanceCorpus is returned when either class has no examples.
var ErrEmptyStanceCorpus = errors.New("nlp: stance corpus must contain both supporting and denying examples")

// TrainStanceClassifier fits the polarity model.
func TrainStanceClassifier(corpus []LabeledStance) (*StanceClassifier, error) {
	texts := make([]string, len(corpus))
	labels := make([]bool, len(corpus))
	for i, s := range corpus {
		texts[i] = s.Text
		labels[i] = s.Supports
	}
	nb, err := trainBinaryNB(texts, labels)
	if err != nil {
		if errors.Is(err, errNBEmptyCorpus) {
			return nil, ErrEmptyStanceCorpus
		}
		return nil, err
	}
	return &StanceClassifier{nb: nb, NeutralBand: 0.1}, nil
}

// NewDefaultStanceClassifier trains the classifier on the built-in stance
// corpus. It panics only on programmer error (an invalid built-in corpus),
// which is checked by tests.
func NewDefaultStanceClassifier() *StanceClassifier {
	c, err := TrainStanceClassifier(stanceCorpus())
	if err != nil {
		panic("nlp: built-in stance corpus invalid: " + err.Error())
	}
	return c
}

// SupportProbability returns P(text supports its claim) in (0,1).
func (c *StanceClassifier) SupportProbability(text string) float64 {
	return c.nb.probPositive(text)
}

// Score implements AttitudeModel: Agree above the neutral band, Disagree
// below it, NoReport inside it or for empty text.
func (c *StanceClassifier) Score(text string) socialsensing.Attitude {
	if len(textutil.Tokenize(text)) == 0 {
		return socialsensing.NoReport
	}
	p := c.SupportProbability(text)
	switch {
	case p > 0.5+c.NeutralBand:
		return socialsensing.Agree
	case p < 0.5-c.NeutralBand:
		return socialsensing.Disagree
	default:
		return socialsensing.NoReport
	}
}

// TopSupportTokens returns the n tokens most indicative of a supporting
// stance.
func (c *StanceClassifier) TopSupportTokens(n int) []string {
	return c.nb.topPositiveTokens(n)
}

// stanceCorpus is the built-in training set: short social-media texts
// labelled by whether they assert or deny the claim they discuss.
func stanceCorpus() []LabeledStance {
	supports := []string{
		"there was a shooting at the campus happening now",
		"confirmed two explosions at the marathon finish line",
		"police made an arrest this afternoon",
		"i saw the smoke myself this is real",
		"officials report casualties downtown",
		"shots fired near the engineering building stay safe",
		"the suspect was spotted near the library",
		"breaking the bridge is closed by police",
		"touchdown the irish take the lead",
		"the score just changed field goal is good",
		"the game is tied now",
		"hostages taken at the market right now",
		"second device found by the bomb squad",
		"lockdown in effect please shelter in place",
		"the attacker fled on foot toward the stadium",
		"it happened i was there",
		"casualties confirmed by the hospital",
		"evacuation underway at the finish line",
		"the quarterback left the game injured",
		"emergency services confirmed the road closure",
	}
	denies := []string{
		"that story is fake news stop spreading it",
		"this is a rumor there was no shooting",
		"debunked the bomb threat is not true",
		"false alarm nothing happened at the library",
		"police say reports of a second shooter are untrue",
		"no truth to the arrest claim",
		"the explosion story was made up",
		"stop sharing misinformation it did not happen",
		"that photo is from another event this is a hoax",
		"officials deny any casualties",
		"no score change the kick was missed",
		"not true the game is not tied",
		"the suspect sighting was false",
		"the evacuation rumor is wrong classes continue",
		"there is no lockdown campus is open",
		"this claim was already debunked hours ago",
		"fake the bridge is open traffic is normal",
		"that is an old video not from today",
		"reports of a hostage situation are false",
		"the injury rumor is untrue he is fine",
	}
	out := make([]LabeledStance, 0, len(supports)+len(denies))
	for _, s := range supports {
		out = append(out, LabeledStance{Text: s, Supports: true})
	}
	for _, d := range denies {
		out = append(out, LabeledStance{Text: d, Supports: false})
	}
	return out
}
