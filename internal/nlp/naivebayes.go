package nlp

import (
	"errors"
	"math"
	"sort"

	"github.com/social-sensing/sstd/internal/textutil"
)

// binaryNB is a multinomial Naive Bayes model over two classes (positive /
// negative) with Laplace smoothing — the shared core behind the hedge and
// stance classifiers.
type binaryNB struct {
	vocab     map[string]int
	posCounts []float64
	negCounts []float64
	posTotal  float64
	negTotal  float64
	posDocs   int
	negDocs   int
}

// errNBEmptyCorpus is returned when either class has no examples.
var errNBEmptyCorpus = errors.New("nlp: corpus must contain both classes")

// trainBinaryNB fits the model on (text, positive?) examples.
func trainBinaryNB(texts []string, positive []bool) (*binaryNB, error) {
	if len(texts) != len(positive) {
		return nil, errors.New("nlp: texts and labels length mismatch")
	}
	nb := &binaryNB{vocab: make(map[string]int)}
	type doc struct {
		tokens []string
		pos    bool
	}
	docs := make([]doc, 0, len(texts))
	for i, text := range texts {
		toks := textutil.Tokenize(text)
		docs = append(docs, doc{tokens: toks, pos: positive[i]})
		for _, t := range toks {
			if _, ok := nb.vocab[t]; !ok {
				nb.vocab[t] = len(nb.vocab)
			}
		}
		if positive[i] {
			nb.posDocs++
		} else {
			nb.negDocs++
		}
	}
	if nb.posDocs == 0 || nb.negDocs == 0 {
		return nil, errNBEmptyCorpus
	}
	nb.posCounts = make([]float64, len(nb.vocab))
	nb.negCounts = make([]float64, len(nb.vocab))
	for _, d := range docs {
		for _, t := range d.tokens {
			idx := nb.vocab[t]
			if d.pos {
				nb.posCounts[idx]++
				nb.posTotal++
			} else {
				nb.negCounts[idx]++
				nb.negTotal++
			}
		}
	}
	return nb, nil
}

// probPositive returns P(positive | text), clamped strictly inside (0,1).
func (nb *binaryNB) probPositive(text string) float64 {
	v := float64(len(nb.vocab))
	logPos := math.Log(float64(nb.posDocs) / float64(nb.posDocs+nb.negDocs))
	logNeg := math.Log(float64(nb.negDocs) / float64(nb.posDocs+nb.negDocs))
	for _, t := range textutil.Tokenize(text) {
		idx, ok := nb.vocab[t]
		if !ok {
			continue
		}
		logPos += math.Log((nb.posCounts[idx] + 1) / (nb.posTotal + v))
		logNeg += math.Log((nb.negCounts[idx] + 1) / (nb.negTotal + v))
	}
	m := math.Max(logPos, logNeg)
	pp := math.Exp(logPos - m)
	pn := math.Exp(logNeg - m)
	p := pp / (pp + pn)
	const eps = 1e-4
	return math.Min(1-eps, math.Max(eps, p))
}

// scoredToken pairs a vocabulary token with a class-preference score.
type scoredToken struct {
	tok   string
	score float64
}

// topPositiveTokens ranks vocabulary by log-likelihood ratio toward the
// positive class.
func (nb *binaryNB) topPositiveTokens(n int) []string {
	v := float64(len(nb.vocab))
	all := make([]scoredToken, 0, len(nb.vocab))
	for tok, idx := range nb.vocab {
		lp := math.Log((nb.posCounts[idx] + 1) / (nb.posTotal + v))
		ln := math.Log((nb.negCounts[idx] + 1) / (nb.negTotal + v))
		all = append(all, scoredToken{tok, lp - ln})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].tok < all[j].tok
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].tok
	}
	return out
}
