package nlp

import (
	"errors"
)

// HedgeClassifier is a multinomial Naive Bayes text classifier that scores
// how hedged (uncertain) a report is, in (0,1). It plays the role of the
// scikit-learn classifier the paper trains on the CoNLL-2010 hedge
// detection shared task: the returned probability is used directly as the
// report's Uncertainty Score (Definition 2).
type HedgeClassifier struct {
	nb *binaryNB
}

// LabeledSentence is one training example for the hedge classifier.
type LabeledSentence struct {
	Text   string
	Hedged bool
}

// ErrEmptyCorpus is returned by TrainHedgeClassifier when either class has
// no examples.
var ErrEmptyCorpus = errors.New("nlp: hedge corpus must contain both hedged and plain examples")

// TrainHedgeClassifier fits a multinomial Naive Bayes model with Laplace
// smoothing on the labelled corpus.
func TrainHedgeClassifier(corpus []LabeledSentence) (*HedgeClassifier, error) {
	texts := make([]string, len(corpus))
	labels := make([]bool, len(corpus))
	for i, s := range corpus {
		texts[i] = s.Text
		labels[i] = s.Hedged
	}
	nb, err := trainBinaryNB(texts, labels)
	if err != nil {
		if errors.Is(err, errNBEmptyCorpus) {
			return nil, ErrEmptyCorpus
		}
		return nil, err
	}
	return &HedgeClassifier{nb: nb}, nil
}

// NewDefaultHedgeClassifier trains the classifier on the built-in hedge
// corpus (hedgeCorpus). It panics only on programmer error (an invalid
// built-in corpus), which is checked by tests.
func NewDefaultHedgeClassifier() *HedgeClassifier {
	c, err := TrainHedgeClassifier(hedgeCorpus())
	if err != nil {
		panic("nlp: built-in hedge corpus invalid: " + err.Error())
	}
	return c
}

// Uncertainty returns P(hedged | text) in (0,1) under the NB model. Text
// with no known tokens falls back to the class prior.
func (c *HedgeClassifier) Uncertainty(text string) float64 {
	return c.nb.probPositive(text)
}

// VocabSize reports the number of distinct training tokens (used in tests
// and diagnostics).
func (c *HedgeClassifier) VocabSize() int { return len(c.nb.vocab) }

// TopHedgeTokens returns up to n vocabulary tokens ranked by their
// log-likelihood ratio toward the hedged class; useful for debugging a
// trained model.
func (c *HedgeClassifier) TopHedgeTokens(n int) []string {
	return c.nb.topPositiveTokens(n)
}

// hedgeCorpus is the built-in training set standing in for the CoNLL-2010
// shared-task data: short social-media style sentences labelled hedged
// (speculative) or plain (assertive).
func hedgeCorpus() []LabeledSentence {
	hedged := []string{
		"there might be a shooting on campus",
		"possibly a bomb near the library",
		"i think the suspect is still at large",
		"maybe the police have arrested someone",
		"reports suggest there could be casualties",
		"it seems like something happened downtown",
		"unconfirmed reports of an explosion",
		"apparently there was gunfire near the stadium",
		"not sure if this is real but stay safe",
		"rumored second device found perhaps",
		"could be a false alarm though",
		"possibly more victims than reported",
		"i heard there may be a second suspect",
		"allegedly the attacker fled on foot",
		"it appears the game might be delayed",
		"seems the score may have changed",
		"they probably scored just now",
		"i guess the irish are winning maybe",
		"supposedly the quarterback is injured",
		"likely a touchdown but waiting for confirmation",
		"perhaps the marathon route was evacuated",
		"might be tons of police near the engineering building",
		"word is the bridge may be closed",
		"some say the suspect was seen near campus",
		"if true this could be very bad",
		"hearing possible reports of smoke downtown",
		"can anyone confirm the explosion near the finish line",
		"unverified claim that an arrest was made",
		"this may turn out to be nothing",
		"potentially dangerous situation developing it seems",
	}
	plain := []string{
		"there was a shooting at ohio state",
		"police confirmed two explosions at the marathon",
		"the suspect has been arrested",
		"officials report three casualties",
		"the library is on lockdown right now",
		"i am on campus and i see tons of police",
		"the bomb squad cleared the jfk library",
		"notre dame scored a touchdown",
		"the irish take the lead",
		"field goal is good the score is now ten to seven",
		"the game is tied at fourteen",
		"final score buckeyes win by three",
		"the marathon finish line was evacuated",
		"authorities closed the bridge",
		"the attacker fled on foot toward the stadium",
		"breaking two blasts near the finish line",
		"shelter in place order issued for campus",
		"the quarterback left the game with an injury",
		"police made an arrest this afternoon",
		"the all clear was given at noon",
		"fire crews are on the scene",
		"the second device was disarmed",
		"classes are cancelled for the rest of the day",
		"the suspect was photographed leaving the store",
		"stadium security confirmed the delay",
		"the score changed twice in the last quarter",
		"emergency services confirmed the road closure",
		"city officials announced a curfew tonight",
		"the team announced the starting lineup",
		"the mayor held a press conference about the attack",
	}
	out := make([]LabeledSentence, 0, len(hedged)+len(plain))
	for _, h := range hedged {
		out = append(out, LabeledSentence{Text: h, Hedged: true})
	}
	for _, p := range plain {
		out = append(out, LabeledSentence{Text: p, Hedged: false})
	}
	return out
}
