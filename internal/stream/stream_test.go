package stream

import (
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

func smallTrace(t *testing.T) *socialsensing.Trace {
	t.Helper()
	g, err := tracegen.New(tracegen.ParisShooting(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(0.004)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSplitByIntervalConserves(t *testing.T) {
	tr := smallTrace(t)
	batches, err := SplitByInterval(tr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, b := range batches {
		total += len(b.Reports)
		want := tr.Start.Add(time.Duration(i) * time.Hour)
		if !b.Start.Equal(want) {
			t.Fatalf("batch %d start = %v, want %v", i, b.Start, want)
		}
		for _, r := range b.Reports {
			if r.Timestamp.Before(b.Start) || !r.Timestamp.Before(b.Start.Add(time.Hour)) {
				// The final batch absorbs boundary stragglers.
				if i != len(batches)-1 {
					t.Fatalf("report at %v outside batch %d [%v, +1h)", r.Timestamp, i, b.Start)
				}
			}
		}
	}
	if total != len(tr.Reports) {
		t.Errorf("reports conserved: %d vs %d", total, len(tr.Reports))
	}
	if _, err := SplitByInterval(tr, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestSplitNExactCount(t *testing.T) {
	tr := smallTrace(t)
	batches, err := SplitN(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 100 {
		t.Fatalf("batches = %d, want 100", len(batches))
	}
	total := 0
	for _, b := range batches {
		total += len(b.Reports)
	}
	if total != len(tr.Reports) {
		t.Errorf("reports conserved: %d vs %d", total, len(tr.Reports))
	}
	if _, err := SplitN(tr, 0); err == nil {
		t.Error("SplitN(0) accepted")
	}
}

func TestRateStream(t *testing.T) {
	tr := smallTrace(t)
	const rate, secs = 5, 10
	batches, err := RateStream(tr, rate, secs*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != secs {
		t.Fatalf("batches = %d, want %d", len(batches), secs)
	}
	for i, b := range batches {
		if len(b.Reports) != rate {
			t.Fatalf("batch %d has %d reports, want %d", i, len(b.Reports), rate)
		}
		for j := 1; j < len(b.Reports); j++ {
			if b.Reports[j].Timestamp.Before(b.Reports[j-1].Timestamp) {
				t.Fatal("re-timestamped reports out of order")
			}
		}
	}
	if _, err := RateStream(tr, 0, time.Second); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := RateStream(tr, 1, 0); err == nil {
		t.Error("duration 0 accepted")
	}
	if _, err := RateStream(tr, 1_000_000, time.Hour); err == nil {
		t.Error("oversize request accepted")
	}
}

func TestReplayerPacing(t *testing.T) {
	tr := smallTrace(t)
	// Hugely accelerated so the test itself is instant; capture the
	// sleeps instead of performing them.
	r, err := NewReplayer(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	fake := tr.Start
	r.now = func() time.Time { return fake }
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d); fake = fake.Add(d) }

	var prev socialsensing.Report
	n := 0
	for {
		rep, ok := r.Next()
		if !ok {
			break
		}
		if n > 0 && rep.Timestamp.Before(prev.Timestamp) {
			t.Fatal("replay out of order")
		}
		prev = rep
		n++
		if n > 50 {
			break
		}
	}
	if n == 0 {
		t.Fatal("no reports replayed")
	}
	// At speedup 1 the simulated clock must track the trace timestamps:
	// after replaying up to prev, the fake clock equals prev's due time.
	if want := tr.Start.Add(prev.Timestamp.Sub(tr.Start)); !fake.Equal(want) {
		t.Errorf("clock at %v, want %v", fake, want)
	}
	if len(slept) == 0 {
		t.Error("pacing never slept despite spaced timestamps")
	}
}

func TestReplayerUnpaced(t *testing.T) {
	tr := smallTrace(t)
	r, err := NewReplayer(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sleep = func(time.Duration) { t.Fatal("unpaced replayer slept") }
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != len(tr.Reports) {
		t.Errorf("replayed %d, want %d", count, len(tr.Reports))
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
	if _, err := NewReplayer(tr, -1); err == nil {
		t.Error("negative speedup accepted")
	}
}

func TestReplayLagGauge(t *testing.T) {
	tr := smallTrace(t)
	reg := obs.NewRegistry()
	r, err := NewReplayer(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Instrument(reg)
	fake := tr.Start
	r.now = func() time.Time { return fake }
	r.sleep = func(d time.Duration) { fake = fake.Add(d) }

	// An on-schedule consumer: pacing sleeps up to the due time and the
	// lag gauge reads zero. With started == origin and speedup 1, each
	// report's due time is exactly its trace timestamp.
	if _, ok := r.Next(); !ok {
		t.Fatal("empty trace")
	}
	if got := reg.Gauge("stream_replay_lag_ms").Value(); got != 0 {
		t.Errorf("on-schedule lag = %v ms, want 0", got)
	}

	// Fall behind: jump the clock 250ms past the next report's due time.
	// Next must not sleep and the gauge must report the deficit.
	fake = r.reports[r.idx].Timestamp.Add(250 * time.Millisecond)
	r.sleep = func(time.Duration) { t.Fatal("behind-schedule replayer slept") }
	if _, ok := r.Next(); !ok {
		t.Fatal("trace exhausted early")
	}
	if got := reg.Gauge("stream_replay_lag_ms").Value(); got != 250 {
		t.Errorf("behind-schedule lag = %v ms, want 250", got)
	}

	// The gauge lands in snapshots (what /metrics?format=json serves).
	if got := reg.Snapshot().Gauges["stream_replay_lag_ms"]; got != 250 {
		t.Errorf("snapshot lag = %v ms, want 250", got)
	}

	// Catching back up clears the gauge: rewind the clock so the next
	// report is on or ahead of schedule again.
	fake = tr.Start
	r.sleep = func(d time.Duration) { fake = fake.Add(d) }
	if _, ok := r.Next(); !ok {
		t.Fatal("trace exhausted early")
	}
	if got := reg.Gauge("stream_replay_lag_ms").Value(); got != 0 {
		t.Errorf("recovered lag = %v ms, want 0", got)
	}
}

func TestPrefix(t *testing.T) {
	tr := smallTrace(t)
	p := Prefix(tr, 100)
	if len(p.Reports) != 100 {
		t.Errorf("prefix reports = %d", len(p.Reports))
	}
	if len(p.Claims) != len(tr.Claims) || len(p.Sources) != len(tr.Sources) {
		t.Error("prefix dropped claims or sources")
	}
	big := Prefix(tr, 1<<30)
	if len(big.Reports) != len(tr.Reports) {
		t.Error("oversized prefix should clamp")
	}
}
