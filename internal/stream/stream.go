// Package stream turns a static trace into the data streams the paper's
// streaming experiments consume: fixed-width interval batches (for
// interval-by-interval truth discovery) and rate-controlled replays (for
// the streaming-speed experiment of Fig. 5).
package stream

import (
	"errors"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Batch is the reports that arrived in one time interval.
type Batch struct {
	Start   time.Time
	Reports []socialsensing.Report
}

// SplitByInterval buckets a trace's reports into consecutive intervals of
// the given width, starting at the trace start. Every interval in the
// trace's span is represented, including empty ones, so downstream
// estimators see quiet periods.
func SplitByInterval(tr *socialsensing.Trace, width time.Duration) ([]Batch, error) {
	if width <= 0 {
		return nil, errors.New("stream: interval width must be positive")
	}
	n := int(tr.Duration()/width) + 1
	batches := make([]Batch, n)
	for i := range batches {
		batches[i].Start = tr.Start.Add(time.Duration(i) * width)
	}
	for _, r := range tr.Reports {
		idx := 0
		if r.Timestamp.After(tr.Start) {
			idx = int(r.Timestamp.Sub(tr.Start) / width)
		}
		if idx >= n {
			idx = n - 1
		}
		batches[idx].Reports = append(batches[idx].Reports, r)
	}
	return batches, nil
}

// SplitN divides a trace into exactly n equal time intervals (the paper's
// Fig. 6 divides each trace into 100 intervals).
func SplitN(tr *socialsensing.Trace, n int) ([]Batch, error) {
	if n < 1 {
		return nil, errors.New("stream: need at least one interval")
	}
	width := tr.Duration() / time.Duration(n)
	if width <= 0 {
		width = time.Nanosecond
	}
	batches, err := SplitByInterval(tr, width)
	if err != nil {
		return nil, err
	}
	if len(batches) > n {
		// Fold any trailing remainder into the last interval.
		last := batches[n-1]
		for _, b := range batches[n:] {
			last.Reports = append(last.Reports, b.Reports...)
		}
		batches = batches[:n]
		batches[n-1] = last
	}
	return batches, nil
}

// RateStream synthesizes a fixed-rate stream from a trace: the first
// duration*rate reports are re-timestamped to arrive uniformly at rate
// reports-per-second over the given duration. This is the Fig. 5 workload:
// "stream the data into compared schemes at different speeds for a
// duration of 100 seconds". The trace must contain enough reports.
func RateStream(tr *socialsensing.Trace, rate int, duration time.Duration) ([]Batch, error) {
	if rate < 1 {
		return nil, errors.New("stream: rate must be >= 1")
	}
	if duration <= 0 {
		return nil, errors.New("stream: duration must be positive")
	}
	seconds := int(duration / time.Second)
	if seconds < 1 {
		seconds = 1
	}
	need := rate * seconds
	if len(tr.Reports) < need {
		return nil, errors.New("stream: trace too small for requested rate")
	}
	batches := make([]Batch, seconds)
	k := 0
	for s := 0; s < seconds; s++ {
		start := tr.Start.Add(time.Duration(s) * time.Second)
		batch := Batch{Start: start, Reports: make([]socialsensing.Report, rate)}
		for i := 0; i < rate; i++ {
			r := tr.Reports[k]
			r.Timestamp = start.Add(time.Duration(i) * time.Second / time.Duration(rate))
			batch.Reports[i] = r
			k++
		}
		batches[s] = batch
	}
	return batches, nil
}

// Replayer plays a trace back in accelerated wall-clock time: Next blocks
// until the next report is "due" under the speedup factor, so a consumer
// experiences the trace's real burst structure compressed into a live
// demo. A speedup of 0 disables pacing (Next never blocks).
type Replayer struct {
	reports []socialsensing.Report
	speedup float64
	origin  time.Time

	idx     int
	started time.Time
	now     func() time.Time
	sleep   func(time.Duration)

	// Telemetry handles; nil until Instrument is called.
	cReplayed *obs.Counter
	gLag      *obs.Gauge
	gLeft     *obs.Gauge
	logger    *obs.Logger
}

// Instrument reports replay progress into reg: a replayed-report counter
// (its rate is the ingest rate), the replayer's lag behind the
// accelerated schedule, and the reports remaining. Nil reg is a no-op.
func (r *Replayer) Instrument(reg *obs.Registry) {
	r.cReplayed = reg.Counter("stream_reports_replayed_total")
	r.gLag = reg.Gauge("stream_replay_lag_ms")
	r.gLeft = reg.Gauge("stream_reports_remaining")
}

// SetLogger attaches a structured logger; the replayer reports falling
// behind the accelerated schedule at debug level. Nil disables it.
func (r *Replayer) SetLogger(lg *obs.Logger) { r.logger = lg }

// NewReplayer builds a replayer running the trace speedup× faster than
// real time (e.g. 3600 plays an hour per second).
func NewReplayer(tr *socialsensing.Trace, speedup float64) (*Replayer, error) {
	if speedup < 0 {
		return nil, errors.New("stream: speedup must be >= 0")
	}
	return &Replayer{
		reports: tr.Reports,
		speedup: speedup,
		origin:  tr.Start,
		now:     time.Now,
		sleep:   time.Sleep,
	}, nil
}

// Next returns the next report, blocking until its accelerated due time.
// ok is false when the trace is exhausted.
func (r *Replayer) Next() (socialsensing.Report, bool) {
	if r.idx >= len(r.reports) {
		return socialsensing.Report{}, false
	}
	rep := r.reports[r.idx]
	r.idx++
	if r.speedup > 0 {
		if r.started.IsZero() {
			r.started = r.now()
		}
		due := r.started.Add(time.Duration(float64(rep.Timestamp.Sub(r.origin)) / r.speedup))
		if wait := due.Sub(r.now()); wait > 0 {
			r.sleep(wait)
			r.gLag.Set(0)
		} else {
			// The consumer is behind the accelerated schedule.
			lagMs := float64(-wait) / float64(time.Millisecond)
			r.gLag.Set(lagMs)
			if lagMs > 0 && r.logger.Enabled(obs.LevelDebug) {
				r.logger.Debug("replay behind schedule",
					obs.F("lag_ms", lagMs), obs.F("remaining", len(r.reports)-r.idx))
			}
		}
	}
	r.cReplayed.Inc()
	r.gLeft.SetInt(len(r.reports) - r.idx)
	return rep, true
}

// Remaining reports how many reports are left.
func (r *Replayer) Remaining() int { return len(r.reports) - r.idx }

// Prefix returns a shallow copy of the trace truncated to its first n
// reports (the Fig. 4 data-size sweep). Sources and claims are preserved.
func Prefix(tr *socialsensing.Trace, n int) *socialsensing.Trace {
	if n > len(tr.Reports) {
		n = len(tr.Reports)
	}
	out := *tr
	out.Reports = tr.Reports[:n]
	return &out
}
