package tracegen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// minuteGranularity is the temporal resolution of the arrival process.
const minuteGranularity = time.Minute

// Generator produces deterministic synthetic traces for a profile.
type Generator struct {
	prof Profile
	seed int64
}

// New validates the profile and returns a generator.
func New(prof Profile, seed int64) (*Generator, error) {
	if prof.Name == "" {
		return nil, errors.New("tracegen: profile needs a name")
	}
	if prof.Duration <= 0 {
		return nil, errors.New("tracegen: profile needs a positive duration")
	}
	if prof.NumClaims < 1 || prof.TargetReports < 1 {
		return nil, errors.New("tracegen: profile needs claims and reports")
	}
	if len(prof.Topics) == 0 {
		return nil, errors.New("tracegen: profile needs topics")
	}
	if prof.SourcesPerReport <= 0 || prof.SourcesPerReport > 1 {
		return nil, fmt.Errorf("tracegen: SourcesPerReport %v outside (0,1]", prof.SourcesPerReport)
	}
	total := 0.0
	for _, b := range prof.Reliability {
		if b.Frac < 0 {
			return nil, errors.New("tracegen: negative reliability fraction")
		}
		total += b.Frac
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("tracegen: reliability fractions sum to %v, want 1", total)
	}
	return &Generator{prof: prof, seed: seed}, nil
}

// claimModel is per-claim generation state.
type claimModel struct {
	id         socialsensing.ClaimID
	topic      string
	popularity float64
	truth      []socialsensing.GroundTruthPoint
	// minuteCum is the cumulative arrival weight per minute.
	minuteCum []float64
	// recent holds the last few reports for retweet sourcing: a retweet
	// copies both the text and the stance of the echoed report, which is
	// how misinformation propagates through cascades.
	recent []echoable
}

// echoable is a recently seen report available for retweeting.
type echoable struct {
	text string
	att  socialsensing.Attitude
}

// Generate synthesizes a trace with approximately TargetReports * scale
// reports. scale must be positive; use small scales (e.g. 0.01) in tests.
func (g *Generator) Generate(scale float64) (*socialsensing.Trace, error) {
	if scale <= 0 {
		return nil, errors.New("tracegen: scale must be positive")
	}
	rng := rand.New(rand.NewSource(g.seed))
	prof := g.prof
	nReports := int(float64(prof.TargetReports) * scale)
	if nReports < 10 {
		nReports = 10
	}
	minutes := int(prof.Duration / minuteGranularity)
	if minutes < 1 {
		minutes = 1
	}

	// Scale the claim count sublinearly with the report volume so that
	// per-claim report density at small scales stays comparable to the
	// full-size trace: a 1% sample of the Boston trace spread over all
	// 40 claims would be far sparser than anything the paper evaluated.
	numClaims := prof.NumClaims
	if scale < 1 {
		scaled := int(math.Round(float64(prof.NumClaims) * 2 * math.Sqrt(scale)))
		if scaled < numClaims {
			numClaims = scaled
		}
		if numClaims < 6 {
			numClaims = 6
		}
		if numClaims > prof.NumClaims {
			numClaims = prof.NumClaims
		}
	}

	claims := g.buildClaims(rng, minutes, numClaims)

	// Claim selection distribution (Zipf-ish popularity).
	popCum := make([]float64, len(claims))
	acc := 0.0
	for i, c := range claims {
		acc += c.popularity
		popCum[i] = acc
	}

	// Source universe: the long tail is created by drawing a fresh
	// source with probability newSourceProb, recurring sources from a
	// Zipf-weighted heavy pool otherwise.
	newSourceProb := prof.SourcesPerReport
	// Cap the recurring pool relative to the generated volume so the
	// sources/reports ratio holds at small scales too: with a pool much
	// larger than the number of non-tail draws, every "recurring" pick
	// would still be a fresh source.
	heavy := prof.HeavySourcePool
	if poolCap := nReports / 50; heavy > poolCap {
		heavy = poolCap
	}
	if heavy < 1 {
		heavy = 1
	}
	heavyCum := make([]float64, heavy)
	hacc := 0.0
	for i := 0; i < heavy; i++ {
		hacc += 1 / math.Pow(float64(i+1), 0.8)
		heavyCum[i] = hacc
	}

	srcReliability := make(map[socialsensing.SourceID]float64)
	var sources []socialsensing.Source
	newSource := func(id socialsensing.SourceID) {
		rel := g.drawReliability(rng)
		srcReliability[id] = rel
		sources = append(sources, socialsensing.Source{ID: id, Reliability: rel})
	}

	reports := make([]socialsensing.Report, 0, nReports)
	nextTail := 0
	for k := 0; k < nReports; k++ {
		// Claim.
		ci := searchCum(popCum, rng.Float64()*popCum[len(popCum)-1])
		cm := claims[ci]
		// Time: minute from the claim's burst-aware distribution plus
		// sub-minute jitter.
		mi := searchCum(cm.minuteCum, rng.Float64()*cm.minuteCum[len(cm.minuteCum)-1])
		ts := prof.Start.Add(time.Duration(mi)*minuteGranularity +
			time.Duration(rng.Int63n(int64(minuteGranularity))))
		// Source.
		var sid socialsensing.SourceID
		if rng.Float64() < newSourceProb {
			sid = socialsensing.SourceID(fmt.Sprintf("%s-tail-%07d", prof.Name, nextTail))
			nextTail++
			newSource(sid)
		} else {
			hi := searchCum(heavyCum, rng.Float64()*hacc)
			sid = socialsensing.SourceID(fmt.Sprintf("%s-heavy-%05d", prof.Name, hi))
			if _, ok := srcReliability[sid]; !ok {
				newSource(sid)
			}
		}
		rel := srcReliability[sid]

		// Hedging and independence are decided first because they shape
		// the stance: a retweet copies the echoed report's stance
		// verbatim (misinformation cascades), and a hedged report is
		// closer to a guess than a measurement.
		hedged := rng.Float64() < prof.HedgeProb
		uncertainty := 0.05 + 0.3*rng.Float64()
		if hedged {
			uncertainty = 0.55 + 0.4*rng.Float64()
		}
		retweet := rng.Float64() < prof.RetweetProb && len(cm.recent) > 0
		independence := 0.85 + 0.14*rng.Float64()
		if retweet {
			independence = 0.05 + 0.25*rng.Float64()
		}

		truthNow := truthAt(cm.truth, ts)
		var att socialsensing.Attitude
		var text string
		if retweet {
			echoed := cm.recent[rng.Intn(len(cm.recent))]
			att = echoed.att
			text = "RT @user: " + echoed.text
		} else {
			acc := rel
			if hedged {
				// Hedged reports carry diluted signal: accuracy is
				// pulled toward a coin flip.
				acc = 0.5 + (rel-0.5)*0.4
			}
			correct := rng.Float64() < acc
			saysTrue := (truthNow == socialsensing.True) == correct
			att = socialsensing.Disagree
			if saysTrue {
				att = socialsensing.Agree
			}
			text = composeText(rng, cm, att, hedged, prof.Keywords)
			cm.remember(echoable{text: text, att: att})
		}

		reports = append(reports, socialsensing.Report{
			Source:       sid,
			Claim:        cm.id,
			Timestamp:    ts,
			Text:         text,
			Attitude:     att,
			Uncertainty:  uncertainty,
			Independence: independence,
		})
	}

	sort.Slice(reports, func(i, j int) bool {
		if !reports[i].Timestamp.Equal(reports[j].Timestamp) {
			return reports[i].Timestamp.Before(reports[j].Timestamp)
		}
		return reports[i].Source < reports[j].Source
	})

	tr := &socialsensing.Trace{
		Name:        prof.Name,
		Start:       prof.Start,
		End:         prof.Start.Add(prof.Duration),
		Sources:     sources,
		Reports:     reports,
		GroundTruth: make(map[socialsensing.ClaimID][]socialsensing.GroundTruthPoint, len(claims)),
	}
	for _, cm := range claims {
		tr.Claims = append(tr.Claims, socialsensing.Claim{ID: cm.id, Topic: cm.topic, Created: prof.Start})
		tr.GroundTruth[cm.id] = cm.truth
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid trace: %w", err)
	}
	return tr, nil
}

// buildClaims creates the claim models: ground truth timelines and
// burst-aware arrival weights.
func (g *Generator) buildClaims(rng *rand.Rand, minutes, numClaims int) []*claimModel {
	prof := g.prof
	claims := make([]*claimModel, numClaims)
	var leader *claimModel
	var leaderFlips []time.Duration
	for i := range claims {
		cm := &claimModel{
			id:         socialsensing.ClaimID(fmt.Sprintf("%s-claim-%02d", prof.Name, i)),
			topic:      prof.Topics[i%len(prof.Topics)],
			popularity: 1 / math.Pow(float64(i+1), 0.8),
		}
		grouped := prof.CorrelationGroupSize > 1
		isLeader := !grouped || i%prof.CorrelationGroupSize == 0
		var flipTimes []time.Duration
		var val socialsensing.TruthValue
		if isLeader {
			// Ground truth: random initial value, Poisson(FlipsPerClaim)
			// transitions at uniform times.
			val = socialsensing.False
			if rng.Float64() < 0.5 {
				val = socialsensing.True
			}
			nFlips := poisson(rng, prof.FlipsPerClaim)
			flipTimes = make([]time.Duration, nFlips)
			for f := range flipTimes {
				flipTimes[f] = time.Duration(rng.Int63n(int64(prof.Duration)))
			}
			sort.Slice(flipTimes, func(a, b int) bool { return flipTimes[a] < flipTimes[b] })
		} else {
			// Group member: copy or mirror the leader's timeline, so
			// claims in a block are (anti-)correlated.
			val = leader.truth[0].Value
			if rng.Float64() < prof.AntiCorrelationProb {
				if val == socialsensing.True {
					val = socialsensing.False
				} else {
					val = socialsensing.True
				}
			}
			flipTimes = leaderFlips
		}
		cm.truth = append(cm.truth, socialsensing.GroundTruthPoint{
			Claim: cm.id, Time: prof.Start, Value: val,
		})
		for _, ft := range flipTimes {
			if val == socialsensing.True {
				val = socialsensing.False
			} else {
				val = socialsensing.True
			}
			cm.truth = append(cm.truth, socialsensing.GroundTruthPoint{
				Claim: cm.id, Time: prof.Start.Add(ft), Value: val,
			})
		}
		if isLeader {
			leader = cm
			leaderFlips = flipTimes
		}
		// Arrival weights: exponential event decay (interest fades over
		// the event) plus bursts after each transition.
		cm.minuteCum = make([]float64, minutes)
		acc := 0.0
		burstMinutes := int(prof.BurstWindow / minuteGranularity)
		for m := 0; m < minutes; m++ {
			frac := float64(m) / float64(minutes)
			w := 0.25 + math.Exp(-3*frac)
			for _, ft := range flipTimes {
				fm := int(ft / minuteGranularity)
				if m >= fm && m < fm+burstMinutes {
					w *= prof.BurstFactor
					break
				}
			}
			acc += w
			cm.minuteCum[m] = acc
		}
		claims[i] = cm
	}
	return claims
}

func (g *Generator) drawReliability(rng *rand.Rand) float64 {
	r := rng.Float64()
	acc := 0.0
	for _, b := range g.prof.Reliability {
		acc += b.Frac
		if r < acc {
			rel := b.Mean + (2*rng.Float64()-1)*b.Spread
			return math.Min(0.98, math.Max(0.02, rel))
		}
	}
	return 0.7
}

// remember keeps a small ring of recent reports per claim for retweets.
func (cm *claimModel) remember(r echoable) {
	const keep = 8
	if len(cm.recent) < keep {
		cm.recent = append(cm.recent, r)
		return
	}
	copy(cm.recent, cm.recent[1:])
	cm.recent[keep-1] = r
}

// truthAt evaluates a piecewise-constant truth timeline.
func truthAt(points []socialsensing.GroundTruthPoint, t time.Time) socialsensing.TruthValue {
	v := points[0].Value
	for _, p := range points {
		if p.Time.After(t) {
			break
		}
		v = p.Value
	}
	return v
}

// searchCum returns the first index i with cum[i] > x (binary search).
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// poisson draws from Poisson(lambda) by Knuth's method (lambda is small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

var (
	hedgePrefixes = []string{"i think", "possibly", "unconfirmed:", "maybe", "hearing that", "reports suggest"}
	denyPhrases   = []string{"is fake", "is a rumor", "is not true", "was debunked", "is false news"}
	agreeSuffixes = []string{"right now", "please stay safe", "confirmed by police", "happening now", "just saw it"}
)

// composeText builds a tweet-like text consistent with the report's
// semantic labels, so the full NLP pipeline can re-derive them.
func composeText(rng *rand.Rand, cm *claimModel, att socialsensing.Attitude, hedged bool, keywords []string) string {
	text := cm.topic
	if att == socialsensing.Disagree {
		text += " " + denyPhrases[rng.Intn(len(denyPhrases))]
	} else {
		text += " " + agreeSuffixes[rng.Intn(len(agreeSuffixes))]
	}
	if hedged {
		text = hedgePrefixes[rng.Intn(len(hedgePrefixes))] + " " + text
	}
	if len(keywords) > 0 {
		text += " #" + keywords[rng.Intn(len(keywords))]
	}
	return text
}
