// Package tracegen generates synthetic social sensing traces with the
// statistical shape of the paper's three Twitter datasets (Table II):
// Boston Bombing, Paris (Charlie Hebdo) Shooting and College Football.
// Since the original traces are proprietary Twitter data, the generator
// reproduces the distributions truth discovery is sensitive to —
// long-tailed source participation, mixed source reliability with
// malicious cliques, evolving per-claim ground truth, retweet cascades,
// hedged language and bursty arrivals — as documented in DESIGN.md.
package tracegen

import "time"

// ReliabilityBand is one component of the source reliability mixture.
type ReliabilityBand struct {
	// Frac is the fraction of sources in this band.
	Frac float64
	// Mean and Spread define a uniform reliability range
	// [Mean-Spread, Mean+Spread] clamped to [0.02, 0.98].
	Mean, Spread float64
}

// Profile describes one event to synthesize.
type Profile struct {
	Name     string
	Start    time.Time
	Duration time.Duration

	// NumClaims is how many distinct claims (topics) the event produces.
	NumClaims int
	// TargetReports is the report volume at scale 1.0 (Table II).
	TargetReports int
	// SourcesPerReport approximates |sources| / |reports| (Table II shows
	// ~0.86-0.96: most sources tweet once).
	SourcesPerReport float64
	// HeavySourcePool is the number of recurring high-volume sources
	// (news accounts, superfans) that produce the non-tail reports.
	HeavySourcePool int

	// Reliability is the source reliability mixture; fractions must sum
	// to 1.
	Reliability []ReliabilityBand

	// FlipsPerClaim is the mean number of ground-truth transitions per
	// claim over the event (dynamic truth).
	FlipsPerClaim float64
	// BurstFactor multiplies the report rate in the BurstWindow after a
	// truth transition (the "touchdown spike").
	BurstFactor float64
	// BurstWindow is how long a post-transition burst lasts.
	BurstWindow time.Duration

	// RetweetProb is the probability a report is a retweet of a recent
	// report on the same claim.
	RetweetProb float64
	// HedgeProb is the probability a report uses hedged language.
	HedgeProb float64

	// Keywords are the event search keywords (Table II).
	Keywords []string
	// Topics are claim topic templates; claims cycle through them.
	Topics []string

	// CorrelationGroupSize, when > 1, groups consecutive claims into
	// blocks whose ground truths are correlated: each block member either
	// copies or mirrors (anti-correlates with) the block leader's truth
	// timeline. Zero or one keeps all claims independent (the paper's
	// §II assumption; the grouped mode exercises the claim-dependency
	// extension of §VII).
	CorrelationGroupSize int
	// AntiCorrelationProb is the probability a grouped claim mirrors
	// rather than copies its leader. Default 0 (copy).
	AntiCorrelationProb float64
}

// BostonBombing returns the profile shaped after the 2013 Boston Marathon
// bombing trace: 4 days, ~554k reports, ~494k sources.
func BostonBombing() Profile {
	return Profile{
		Name:             "boston-bombing",
		Start:            time.Date(2013, 4, 15, 14, 49, 0, 0, time.UTC),
		Duration:         4 * 24 * time.Hour,
		NumClaims:        40,
		TargetReports:    553_609,
		SourcesPerReport: 0.892,
		HeavySourcePool:  4_000,
		Reliability: []ReliabilityBand{
			{Frac: 0.30, Mean: 0.90, Spread: 0.08},
			{Frac: 0.50, Mean: 0.70, Spread: 0.15},
			{Frac: 0.12, Mean: 0.50, Spread: 0.10},
			{Frac: 0.08, Mean: 0.15, Spread: 0.10}, // rumor spreaders
		},
		FlipsPerClaim: 1.6,
		BurstFactor:   8,
		BurstWindow:   20 * time.Minute,
		RetweetProb:   0.38,
		HedgeProb:     0.25,
		Keywords:      []string{"boston", "marathon", "bombing", "attack"},
		Topics: []string{
			"explosion at the marathon finish line",
			"bomb threat at the jfk library",
			"suspect spotted near campus",
			"an arrest has been made",
			"third device found at the scene",
			"bridge closed by police",
			"cell service shut down in the city",
			"additional casualties reported downtown",
		},
	}
}

// ParisShooting returns the profile shaped after the 2015 Charlie Hebdo
// shooting trace: 3 days, ~254k reports, ~218k sources.
func ParisShooting() Profile {
	return Profile{
		Name:             "paris-shooting",
		Start:            time.Date(2015, 1, 7, 11, 30, 0, 0, time.UTC),
		Duration:         3 * 24 * time.Hour,
		NumClaims:        32,
		TargetReports:    253_798,
		SourcesPerReport: 0.858,
		HeavySourcePool:  3_000,
		Reliability: []ReliabilityBand{
			{Frac: 0.32, Mean: 0.88, Spread: 0.08},
			{Frac: 0.48, Mean: 0.68, Spread: 0.15},
			{Frac: 0.12, Mean: 0.50, Spread: 0.10},
			{Frac: 0.08, Mean: 0.18, Spread: 0.10},
		},
		FlipsPerClaim: 1.8,
		BurstFactor:   7,
		BurstWindow:   25 * time.Minute,
		RetweetProb:   0.40,
		HedgeProb:     0.28,
		Keywords:      []string{"paris", "shooting", "charlie", "hebdo"},
		Topics: []string{
			"shots fired at the charlie hebdo office",
			"suspects fled in a getaway car",
			"hostages taken at the market",
			"police raid underway in the north",
			"second shooter still at large",
			"the suspects have been located",
			"metro station closed by police",
			"press conference announced by officials",
		},
	}
}

// CollegeFootball returns the profile shaped after the Sept 2016 college
// football weekend trace: 3 days, ~429k reports, ~414k sources, very
// frequent truth changes (scores) with sharp touchdown bursts.
func CollegeFootball() Profile {
	return Profile{
		Name:             "college-football",
		Start:            time.Date(2016, 9, 30, 16, 0, 0, 0, time.UTC),
		Duration:         3 * 24 * time.Hour,
		NumClaims:        25, // five games x five claim types
		TargetReports:    429_019,
		SourcesPerReport: 0.964,
		HeavySourcePool:  2_000,
		Reliability: []ReliabilityBand{
			{Frac: 0.25, Mean: 0.92, Spread: 0.05},
			{Frac: 0.55, Mean: 0.72, Spread: 0.15},
			{Frac: 0.15, Mean: 0.55, Spread: 0.12},
			{Frac: 0.05, Mean: 0.25, Spread: 0.12}, // trolls
		},
		FlipsPerClaim: 6, // scores change often
		BurstFactor:   12,
		BurstWindow:   6 * time.Minute,
		RetweetProb:   0.30,
		HedgeProb:     0.18,
		Keywords:      []string{"football", "touchdown", "irish", "buckeyes"},
		Topics: []string{
			"notre dame is leading the game",
			"the score just changed",
			"the buckeyes are ahead",
			"the game is tied",
			"the quarterback left with an injury",
		},
	}
}

// Profiles returns the three paper traces in evaluation order.
func Profiles() []Profile {
	return []Profile{BostonBombing(), ParisShooting(), CollegeFootball()}
}
