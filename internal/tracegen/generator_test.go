package tracegen

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func TestProfilesValid(t *testing.T) {
	for _, prof := range Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			if _, err := New(prof, 1); err != nil {
				t.Errorf("profile invalid: %v", err)
			}
		})
	}
}

func TestNewRejectsBadProfiles(t *testing.T) {
	base := BostonBombing()
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"no duration", func(p *Profile) { p.Duration = 0 }},
		{"no claims", func(p *Profile) { p.NumClaims = 0 }},
		{"no reports", func(p *Profile) { p.TargetReports = 0 }},
		{"no topics", func(p *Profile) { p.Topics = nil }},
		{"bad source ratio", func(p *Profile) { p.SourcesPerReport = 1.5 }},
		{"reliability not summing", func(p *Profile) { p.Reliability[0].Frac += 0.5 }},
		{"negative band", func(p *Profile) { p.Reliability[0].Frac = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prof := base
			prof.Reliability = append([]ReliabilityBand(nil), base.Reliability...)
			tt.mutate(&prof)
			if _, err := New(prof, 1); err == nil {
				t.Error("bad profile accepted")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	for _, prof := range Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			g, err := New(prof, 7)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := g.Generate(0.005)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			want := int(float64(prof.TargetReports) * 0.005)
			if got := len(tr.Reports); got != want {
				t.Errorf("reports = %d, want %d", got, want)
			}
			ratio := float64(len(tr.Sources)) / float64(len(tr.Reports))
			if math.Abs(ratio-prof.SourcesPerReport) > 0.08 {
				t.Errorf("sources/reports = %.3f, want ~%.3f", ratio, prof.SourcesPerReport)
			}
			if len(tr.Claims) < 6 || len(tr.Claims) > prof.NumClaims {
				t.Errorf("claims = %d, want in [6, %d]", len(tr.Claims), prof.NumClaims)
			}
			for _, c := range tr.Claims {
				if len(tr.GroundTruth[c.ID]) == 0 {
					t.Errorf("claim %s has no ground truth", c.ID)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := New(ParisShooting(), 11)
	g2, _ := New(ParisShooting(), 11)
	t1, err := g1.Generate(0.002)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := g2.Generate(0.002)
	if len(t1.Reports) != len(t2.Reports) {
		t.Fatalf("lengths differ: %d vs %d", len(t1.Reports), len(t2.Reports))
	}
	for i := range t1.Reports {
		if t1.Reports[i] != t2.Reports[i] {
			t.Fatalf("report %d differs", i)
		}
	}
	// Different seed must differ.
	g3, _ := New(ParisShooting(), 12)
	t3, _ := g3.Generate(0.002)
	same := true
	for i := range t1.Reports {
		if i < len(t3.Reports) && t1.Reports[i] != t3.Reports[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateLongTail(t *testing.T) {
	g, _ := New(BostonBombing(), 5)
	tr, err := g.Generate(0.01)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[socialsensing.SourceID]int)
	for _, r := range tr.Reports {
		counts[r.Source]++
	}
	single, max := 0, 0
	for _, c := range counts {
		if c == 1 {
			single++
		}
		if c > max {
			max = c
		}
	}
	if frac := float64(single) / float64(len(counts)); frac < 0.7 {
		t.Errorf("singleton source fraction = %.2f, want >= 0.7 (long tail)", frac)
	}
	if max < 5 {
		t.Errorf("max source volume = %d, want heavy hitters", max)
	}
}

func TestGenerateAttitudesTrackTruth(t *testing.T) {
	// Majority stance should match ground truth for most (claim,
	// interval) cells, since most reliability mass is above 0.5.
	g, _ := New(BostonBombing(), 3)
	tr, err := g.Generate(0.01)
	if err != nil {
		t.Fatal(err)
	}
	agreeWithTruth, total := 0, 0
	for _, r := range tr.Reports {
		truth, ok := tr.TruthAt(r.Claim, r.Timestamp)
		if !ok {
			t.Fatalf("no ground truth for %s", r.Claim)
		}
		saysTrue := r.Attitude == socialsensing.Agree
		if saysTrue == (truth == socialsensing.True) {
			agreeWithTruth++
		}
		total++
	}
	frac := float64(agreeWithTruth) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("correct-report fraction = %.2f, want noisy majority in [0.6, 0.9]", frac)
	}
}

func TestGenerateTextConsistency(t *testing.T) {
	g, _ := New(ParisShooting(), 9)
	tr, err := g.Generate(0.004)
	if err != nil {
		t.Fatal(err)
	}
	var retweets, hedged int
	for _, r := range tr.Reports {
		if r.Text == "" {
			t.Fatal("report without text")
		}
		if strings.HasPrefix(r.Text, "RT @") {
			retweets++
			if r.Independence > 0.5 {
				t.Errorf("retweet with high independence %v", r.Independence)
			}
		}
		if r.Uncertainty > 0.55 {
			hedged++
		}
	}
	if retweets == 0 {
		t.Error("no retweets generated")
	}
	if hedged == 0 {
		t.Error("no hedged reports generated")
	}
}

func TestGenerateBurstsAroundFlips(t *testing.T) {
	prof := CollegeFootball()
	g, _ := New(prof, 21)
	tr, err := g.Generate(0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Measure the mean per-minute report rate inside vs outside burst
	// windows for the most popular claim.
	claim := tr.Claims[0].ID
	flips := tr.GroundTruth[claim][1:] // transitions only
	if len(flips) == 0 {
		t.Skip("no flips for claim 0 under this seed")
	}
	inBurst := func(ts time.Time) bool {
		for _, f := range flips {
			if !ts.Before(f.Time) && ts.Before(f.Time.Add(prof.BurstWindow)) {
				return true
			}
		}
		return false
	}
	burstCount, quietCount := 0, 0
	for _, r := range tr.Reports {
		if r.Claim != claim {
			continue
		}
		if inBurst(r.Timestamp) {
			burstCount++
		} else {
			quietCount++
		}
	}
	burstMinutes := float64(len(flips)) * prof.BurstWindow.Minutes()
	quietMinutes := prof.Duration.Minutes() - burstMinutes
	burstRate := float64(burstCount) / burstMinutes
	quietRate := float64(quietCount) / quietMinutes
	if burstRate < 2*quietRate {
		t.Errorf("burst rate %.3f not clearly above quiet rate %.3f", burstRate, quietRate)
	}
}

func TestGenerateScaleErrors(t *testing.T) {
	g, _ := New(BostonBombing(), 1)
	if _, err := g.Generate(0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := g.Generate(-1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestGenerateTinyScaleStillWorks(t *testing.T) {
	g, _ := New(BostonBombing(), 1)
	tr, err := g.Generate(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reports) < 10 {
		t.Errorf("tiny scale reports = %d, want >= 10 floor", len(tr.Reports))
	}
}

func TestSearchCum(t *testing.T) {
	cum := []float64{1, 3, 6, 10}
	tests := []struct {
		x    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.5, 1}, {5.9, 2}, {9.99, 3}, {10, 3}, {99, 3},
	}
	for _, tt := range tests {
		if got := searchCum(cum, tt.x); got != tt.want {
			t.Errorf("searchCum(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, lambda = 5000, 2.5
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.15 {
		t.Errorf("poisson mean = %.3f, want ~%.1f", mean, lambda)
	}
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
}
