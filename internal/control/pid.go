// Package control implements the deadline-driven feedback control system of
// the paper's §IV-C: a Proportional-Integral-Derivative controller per TD
// job (Eq. 9) whose signals tune a Local Control Knob (the job's priority)
// and a Global Control Knob (the worker-pool size), using the WCET model of
// Eq. 10-12.
package control

import (
	"fmt"
	"math"
	"time"
)

// PIDConfig holds controller gains. The paper tunes them by sweeping each
// coefficient over [0, 3] in steps of 0.1 and picking the combination that
// meets the most deadlines, arriving at Kp=1.2, Ki=0.3, Kd=0.2.
type PIDConfig struct {
	Kp, Ki, Kd float64
	// IntegralLimit clamps |integral| to prevent windup. Zero disables
	// clamping.
	IntegralLimit float64
}

// DefaultPIDConfig returns the paper's tuned coefficients.
func DefaultPIDConfig() PIDConfig {
	return PIDConfig{Kp: 1.2, Ki: 0.3, Kd: 0.2, IntegralLimit: 50}
}

// PID is a discrete PID controller. The error convention follows the
// paper: e(k) = expected finish time - deadline, so a positive control
// signal means the job is late and needs more resources.
type PID struct {
	cfg      PIDConfig
	integral float64
	prevErr  float64
	primed   bool
	last     PIDState
}

// PIDState is an introspection snapshot of a controller, consumed by the
// control-loop recorder (internal/obs) to log every tick of Eq. 9.
type PIDState struct {
	// Integral and PrevErr are the accumulated controller state;
	// Integral reflects any windup clamping already applied.
	Integral float64
	PrevErr  float64
	// Primed is true once the controller has seen a sample (the first
	// derivative term is suppressed until then).
	Primed bool
	// Updates counts Update calls since creation or Reset.
	Updates int
	// Err is the input of the most recent Update; P, I and D are its
	// gain-weighted term contributions and Signal their sum.
	Err, P, I, D, Signal float64
}

// NewPID builds a controller.
func NewPID(cfg PIDConfig) *PID {
	return &PID{cfg: cfg}
}

// Update feeds the controller one error sample observed over dt and
// returns the control signal of Eq. 9. dt must be positive.
func (p *PID) Update(err float64, dt time.Duration) (float64, error) {
	if dt <= 0 {
		return 0, fmt.Errorf("control: dt must be positive, got %v", dt)
	}
	dts := dt.Seconds()
	p.integral += err * dts
	if lim := p.cfg.IntegralLimit; lim > 0 {
		p.integral = math.Max(-lim, math.Min(lim, p.integral))
	}
	derivative := 0.0
	if p.primed {
		derivative = (err - p.prevErr) / dts
	}
	p.prevErr = err
	p.primed = true
	pTerm := p.cfg.Kp * err
	iTerm := p.cfg.Ki * p.integral
	dTerm := p.cfg.Kd * derivative
	sig := pTerm + iTerm + dTerm
	p.last = PIDState{
		Integral: p.integral,
		PrevErr:  p.prevErr,
		Primed:   true,
		Updates:  p.last.Updates + 1,
		Err:      err,
		P:        pTerm,
		I:        iTerm,
		D:        dTerm,
		Signal:   sig,
	}
	return sig, nil
}

// Snapshot returns the controller's current state without disturbing it.
func (p *PID) Snapshot() PIDState {
	s := p.last
	// Reflect live accumulator state even before the first Update.
	s.Integral = p.integral
	s.PrevErr = p.prevErr
	s.Primed = p.primed
	return s
}

// Reset clears accumulated state.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.primed = false
	p.last = PIDState{}
}

// WCETModel is the worst-case execution time model of Eq. 10-12.
type WCETModel struct {
	// InitTime is TI of Eq. 10.
	InitTime time.Duration
	// Theta1 is the per-data-unit execution cost of Eq. 10.
	Theta1 time.Duration
	// Theta2 is the distributed-execution constant of Eq. 11-12.
	Theta2 time.Duration
}

// TaskTime returns ET_u = TI + D * theta1 (Eq. 10) for one task over
// dataSize units.
func (m WCETModel) TaskTime(dataSize float64) time.Duration {
	return m.InitTime + time.Duration(dataSize*float64(m.Theta1))
}

// JobWCET returns Eq. 11: WCET = TI*T_u + D*theta2 / (WK * P_u), the
// worst-case completion time of a job with tasks tasks and priority
// priority on a pool of workers workers.
func (m WCETModel) JobWCET(dataSize float64, tasks, workers int, priority float64) (time.Duration, error) {
	if tasks < 1 {
		return 0, fmt.Errorf("control: job needs >= 1 task, got %d", tasks)
	}
	if workers < 1 {
		return 0, fmt.Errorf("control: pool needs >= 1 worker, got %d", workers)
	}
	if priority <= 0 {
		return 0, fmt.Errorf("control: priority must be positive, got %v", priority)
	}
	init := time.Duration(tasks) * m.InitTime
	exec := time.Duration(dataSize * float64(m.Theta2) / (float64(workers) * priority))
	return init + exec, nil
}

// JobWCETSimplified is Eq. 12, valid when the per-task init overhead is
// kept small: WCET ≈ D*theta2 / (WK * P_u).
func (m WCETModel) JobWCETSimplified(dataSize float64, workers int, priority float64) (time.Duration, error) {
	if workers < 1 {
		return 0, fmt.Errorf("control: pool needs >= 1 worker, got %d", workers)
	}
	if priority <= 0 {
		return 0, fmt.Errorf("control: priority must be positive, got %v", priority)
	}
	return time.Duration(dataSize * float64(m.Theta2) / (float64(workers) * priority)), nil
}
