package control

import (
	"math"
	"testing"
	"time"
)

func TestPIDProportional(t *testing.T) {
	p := NewPID(PIDConfig{Kp: 2})
	sig, err := p.Update(3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sig != 6 {
		t.Errorf("P-only signal = %v, want 6", sig)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	p := NewPID(PIDConfig{Ki: 1})
	var sig float64
	for i := 0; i < 5; i++ {
		var err error
		sig, err = p.Update(2, time.Second)
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(sig-10) > 1e-9 {
		t.Errorf("I signal after 5x2s error = %v, want 10", sig)
	}
}

func TestPIDIntegralWindupClamped(t *testing.T) {
	p := NewPID(PIDConfig{Ki: 1, IntegralLimit: 5})
	var sig float64
	for i := 0; i < 100; i++ {
		sig, _ = p.Update(10, time.Second)
	}
	if sig > 5+1e-9 {
		t.Errorf("clamped I signal = %v, want <= 5", sig)
	}
}

func TestPIDDerivativeRespondsToChange(t *testing.T) {
	p := NewPID(PIDConfig{Kd: 1})
	if sig, _ := p.Update(1, time.Second); sig != 0 {
		t.Errorf("first-sample derivative = %v, want 0 (unprimed)", sig)
	}
	sig, _ := p.Update(4, time.Second)
	if sig != 3 {
		t.Errorf("derivative signal = %v, want 3", sig)
	}
	// Decreasing error yields a negative derivative term.
	sig, _ = p.Update(1, time.Second)
	if sig != -3 {
		t.Errorf("derivative on decrease = %v, want -3", sig)
	}
}

func TestPIDReset(t *testing.T) {
	p := NewPID(DefaultPIDConfig())
	for i := 0; i < 10; i++ {
		p.Update(5, time.Second)
	}
	p.Reset()
	sig, _ := p.Update(0, time.Second)
	if sig != 0 {
		t.Errorf("signal after reset with zero error = %v, want 0", sig)
	}
}

func TestPIDRejectsBadDt(t *testing.T) {
	p := NewPID(DefaultPIDConfig())
	if _, err := p.Update(1, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := p.Update(1, -time.Second); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestPIDClosedLoopConverges(t *testing.T) {
	// Toy plant: completion speed proportional to allocated resource;
	// the PID steers resource so the job finishes near its deadline.
	pid := NewPID(DefaultPIDConfig())
	resource := 1.0
	remaining := 100.0
	deadline := 20.0
	elapsed := 0.0
	for step := 0; step < 200 && remaining > 0; step++ {
		elapsed++
		remaining -= resource
		expected := elapsed + remaining/math.Max(resource, 1e-9)
		sig, err := pid.Update(expected-deadline, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		resource = math.Max(0.1, resource+0.05*sig)
	}
	if remaining > 0 {
		t.Fatalf("job never finished; resource=%v", resource)
	}
	if elapsed > deadline*1.5 {
		t.Errorf("closed loop finished at %v, deadline %v — controller ineffective", elapsed, deadline)
	}
}

func TestWCETModel(t *testing.T) {
	m := WCETModel{InitTime: time.Second, Theta1: time.Millisecond, Theta2: 2 * time.Millisecond}
	if got := m.TaskTime(500); got != time.Second+500*time.Millisecond {
		t.Errorf("TaskTime = %v", got)
	}
	got, err := m.JobWCET(1000, 4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*time.Second + time.Duration(1000*float64(2*time.Millisecond)/(2*0.5))
	if got != want {
		t.Errorf("JobWCET = %v, want %v", got, want)
	}
	simple, err := m.JobWCETSimplified(1000, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if simple != 2*time.Second {
		t.Errorf("JobWCETSimplified = %v, want 2s", simple)
	}
}

func TestWCETInverseProportionality(t *testing.T) {
	m := WCETModel{Theta2: time.Millisecond}
	base, _ := m.JobWCETSimplified(10000, 1, 0.25)
	moreWorkers, _ := m.JobWCETSimplified(10000, 4, 0.25)
	morePriority, _ := m.JobWCETSimplified(10000, 1, 1.0)
	if moreWorkers != base/4 {
		t.Errorf("4x workers: %v, want %v", moreWorkers, base/4)
	}
	if morePriority != base/4 {
		t.Errorf("4x priority: %v, want %v", morePriority, base/4)
	}
}

func TestWCETErrors(t *testing.T) {
	m := WCETModel{}
	if _, err := m.JobWCET(1, 0, 1, 1); err == nil {
		t.Error("0 tasks accepted")
	}
	if _, err := m.JobWCET(1, 1, 0, 1); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := m.JobWCET(1, 1, 1, 0); err == nil {
		t.Error("0 priority accepted")
	}
	if _, err := m.JobWCETSimplified(1, 0, 1); err == nil {
		t.Error("simplified 0 workers accepted")
	}
	if _, err := m.JobWCETSimplified(1, 1, -1); err == nil {
		t.Error("simplified negative priority accepted")
	}
}

func TestTunerValidation(t *testing.T) {
	cfg := DefaultTunerConfig()
	if _, err := NewTuner(cfg, 0); err == nil {
		t.Error("0 initial workers accepted")
	}
	bad := cfg
	bad.MinWorkers = 0
	if _, err := NewTuner(bad, 1); err == nil {
		t.Error("MinWorkers 0 accepted")
	}
	bad = cfg
	bad.MaxWorkers = 1
	bad.MinWorkers = 2
	if _, err := NewTuner(bad, 2); err == nil {
		t.Error("Max < Min accepted")
	}
	bad = cfg
	bad.Theta3 = 0
	if _, err := NewTuner(bad, 4); err == nil {
		t.Error("theta3=0 accepted")
	}
}

func TestTunerShiftsPriorityTowardLateJobs(t *testing.T) {
	tn, err := NewTuner(DefaultTunerConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	statuses := []JobStatus{
		{JobID: "late", Deadline: 10 * time.Second, ExpectedFinish: 30 * time.Second, Elapsed: 5 * time.Second},
		{JobID: "early", Deadline: 30 * time.Second, ExpectedFinish: 10 * time.Second, Elapsed: 5 * time.Second},
	}
	var dec Decision
	for i := 0; i < 5; i++ {
		dec, err = tn.Step(statuses, time.Second)
		if err != nil {
			t.Fatal(err)
		}
	}
	if dec.Priorities["late"] <= dec.Priorities["early"] {
		t.Errorf("late job priority %v should exceed early job %v",
			dec.Priorities["late"], dec.Priorities["early"])
	}
	sum := dec.Priorities["late"] + dec.Priorities["early"]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("priorities sum to %v, want 1", sum)
	}
	if dec.Signals["late"] <= 0 || dec.Signals["early"] >= 0 {
		t.Errorf("signals wrong sign: %+v", dec.Signals)
	}
}

func TestTunerGrowsAndShrinksPool(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.MaxWorkers = 64
	tn, err := NewTuner(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// All jobs badly late: pool must grow.
	late := []JobStatus{
		{JobID: "a", Deadline: 10 * time.Second, ExpectedFinish: 200 * time.Second},
		{JobID: "b", Deadline: 10 * time.Second, ExpectedFinish: 200 * time.Second},
	}
	var dec Decision
	for i := 0; i < 10; i++ {
		dec, _ = tn.Step(late, time.Second)
	}
	if dec.Workers <= 8 {
		t.Errorf("pool did not grow under lateness: %d", dec.Workers)
	}
	grown := dec.Workers
	// All jobs far ahead of schedule: pool should shrink back.
	early := []JobStatus{
		{JobID: "a", Deadline: 300 * time.Second, ExpectedFinish: 5 * time.Second},
		{JobID: "b", Deadline: 300 * time.Second, ExpectedFinish: 5 * time.Second},
	}
	for i := 0; i < 30; i++ {
		dec, _ = tn.Step(early, time.Second)
	}
	if dec.Workers >= grown {
		t.Errorf("pool did not shrink when early: %d (was %d)", dec.Workers, grown)
	}
	if dec.Workers < cfg.MinWorkers {
		t.Errorf("pool below MinWorkers: %d", dec.Workers)
	}
}

func TestTunerDropsFinishedJobs(t *testing.T) {
	tn, _ := NewTuner(DefaultTunerConfig(), 4)
	statuses := []JobStatus{
		{JobID: "a", Deadline: time.Second, ExpectedFinish: 2 * time.Second},
		{JobID: "b", Deadline: time.Second, ExpectedFinish: 2 * time.Second},
	}
	tn.Step(statuses, time.Second)
	statuses[0].Done = true
	dec, err := tn.Step(statuses, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Priorities["a"]; ok {
		t.Error("finished job still has a priority")
	}
	if math.Abs(dec.Priorities["b"]-1) > 1e-9 {
		t.Errorf("sole live job priority = %v, want 1", dec.Priorities["b"])
	}
}

func TestTunerAllDone(t *testing.T) {
	tn, _ := NewTuner(DefaultTunerConfig(), 4)
	dec, err := tn.Step([]JobStatus{{JobID: "a", Done: true}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Priorities) != 0 || dec.Workers != 4 {
		t.Errorf("all-done decision = %+v", dec)
	}
}

func TestTunerRejectsBadDt(t *testing.T) {
	tn, _ := NewTuner(DefaultTunerConfig(), 4)
	if _, err := tn.Step(nil, 0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestPIDSnapshotTracksTerms(t *testing.T) {
	p := NewPID(PIDConfig{Kp: 2, Ki: 1, Kd: 0.5})
	if s := p.Snapshot(); s.Primed || s.Updates != 0 || s.Integral != 0 {
		t.Fatalf("fresh snapshot = %+v, want zero state", s)
	}
	if _, err := p.Update(3, time.Second); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if !s.Primed || s.Updates != 1 {
		t.Fatalf("snapshot after one update = %+v", s)
	}
	if s.Err != 3 || s.P != 6 || s.I != 3 || s.D != 0 {
		t.Errorf("terms = err %v P %v I %v D %v, want 3/6/3/0", s.Err, s.P, s.I, s.D)
	}
	if s.Signal != s.P+s.I+s.D {
		t.Errorf("signal %v != P+I+D %v", s.Signal, s.P+s.I+s.D)
	}
	// Second sample: derivative kicks in, integral accumulates.
	if _, err := p.Update(5, time.Second); err != nil {
		t.Fatal(err)
	}
	s = p.Snapshot()
	if s.Updates != 2 || s.PrevErr != 5 {
		t.Fatalf("snapshot after two updates = %+v", s)
	}
	if s.Integral != 8 {
		t.Errorf("integral = %v, want 8", s.Integral)
	}
	if s.D != 0.5*(5-3) {
		t.Errorf("D term = %v, want 1", s.D)
	}
}

func TestPIDSnapshotWindupClamp(t *testing.T) {
	p := NewPID(PIDConfig{Ki: 1, IntegralLimit: 4})
	for i := 0; i < 10; i++ {
		if _, err := p.Update(100, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Snapshot()
	if s.Integral != 4 {
		t.Errorf("clamped integral = %v, want 4", s.Integral)
	}
	if s.I != 4 {
		t.Errorf("I term = %v, want clamped 4", s.I)
	}
	// Clamp must hold symmetrically on the negative side.
	for i := 0; i < 20; i++ {
		if _, err := p.Update(-100, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if s = p.Snapshot(); s.Integral != -4 {
		t.Errorf("negative clamped integral = %v, want -4", s.Integral)
	}
}

func TestPIDSnapshotResets(t *testing.T) {
	p := NewPID(DefaultPIDConfig())
	if _, err := p.Update(2, time.Second); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if s := p.Snapshot(); s != (PIDState{}) {
		t.Errorf("snapshot after reset = %+v, want zero", s)
	}
}

func TestTunerPIDState(t *testing.T) {
	tn, err := NewTuner(DefaultTunerConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.PIDState("job"); ok {
		t.Fatal("PIDState before any step should report ok=false")
	}
	_, err = tn.Step([]JobStatus{{JobID: "job", Deadline: time.Second, ExpectedFinish: 2 * time.Second}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := tn.PIDState("job")
	if !ok || s.Updates != 1 || s.Err <= 0 {
		t.Fatalf("PIDState after step = %+v ok=%v, want late-job error", s, ok)
	}
	// Done jobs leave the loop and lose their controller.
	if _, err := tn.Step([]JobStatus{{JobID: "job", Done: true}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.PIDState("job"); ok {
		t.Fatal("PIDState after done should report ok=false")
	}
}
