package control

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// JobStatus is one job's state as observed by the monitor at a sampling
// instant (the paper samples at 1 Hz by watching output-file timestamps).
type JobStatus struct {
	JobID string
	// Deadline is the job's soft deadline, as a duration from job start.
	Deadline time.Duration
	// Elapsed is how long the job has been running.
	Elapsed time.Duration
	// ExpectedFinish is the WCET-model prediction of total runtime from
	// the job's remaining data, current priority and pool size.
	ExpectedFinish time.Duration
	// Done marks finished jobs; they leave the control loop.
	Done bool
}

// TunerConfig parameterizes knob actuation. Theta3 scales LCK (priority)
// moves, Theta4 scales GCK (pool size) moves; the paper sets them to 2 and
// 1.5 heuristically.
type TunerConfig struct {
	PID    PIDConfig
	Theta3 float64
	Theta4 float64
	// MinWorkers / MaxWorkers clamp the GCK.
	MinWorkers, MaxWorkers int
	// RelativeError normalizes the PID error by the deadline —
	// e = (expected - deadline) / deadline — making the controller
	// scale-free: the same gains work for millisecond interval deadlines
	// and minute-scale job deadlines. Absolute error (in seconds) is
	// used when false or when a job has no deadline.
	RelativeError bool
	// MaxStep clamps how many workers one sampling step may add or
	// remove. Zero means the default of 8.
	MaxStep int
}

// DefaultTunerConfig returns the paper's heuristic settings.
func DefaultTunerConfig() TunerConfig {
	return TunerConfig{
		PID:        DefaultPIDConfig(),
		Theta3:     2,
		Theta4:     1.5,
		MinWorkers: 1,
		MaxWorkers: 1024,
	}
}

// Decision is the tuner's actuation for one sampling step.
type Decision struct {
	// Priorities are the new LCK values per job, normalized to sum 1.
	Priorities map[string]float64
	// Workers is the new GCK value (target pool size).
	Workers int
	// Signals are the raw per-job PID outputs (positive = late).
	Signals map[string]float64
}

// Tuner drives one PID controller per TD job and converts the control
// signals into knob movements: late jobs gain priority share relative to
// early jobs (LCK synchronizes per-job progress) and the pool grows or
// shrinks with aggregate lateness (GCK tracks global load).
type Tuner struct {
	cfg      TunerConfig
	pids     map[string]*PID
	priority map[string]float64
	workers  int
}

// NewTuner creates a tuner starting from the given pool size.
func NewTuner(cfg TunerConfig, initialWorkers int) (*Tuner, error) {
	if cfg.MinWorkers < 1 {
		return nil, fmt.Errorf("control: MinWorkers must be >= 1, got %d", cfg.MinWorkers)
	}
	if cfg.MaxWorkers < cfg.MinWorkers {
		return nil, fmt.Errorf("control: MaxWorkers %d < MinWorkers %d", cfg.MaxWorkers, cfg.MinWorkers)
	}
	if initialWorkers < cfg.MinWorkers || initialWorkers > cfg.MaxWorkers {
		return nil, fmt.Errorf("control: initial workers %d outside [%d, %d]", initialWorkers, cfg.MinWorkers, cfg.MaxWorkers)
	}
	if cfg.Theta3 <= 0 || cfg.Theta4 <= 0 {
		return nil, fmt.Errorf("control: theta3/theta4 must be positive")
	}
	return &Tuner{
		cfg:      cfg,
		pids:     make(map[string]*PID),
		priority: make(map[string]float64),
		workers:  initialWorkers,
	}, nil
}

// Workers returns the current GCK value.
func (t *Tuner) Workers() int { return t.workers }

// PIDState returns the snapshot of one job's controller; ok is false when
// the job has no controller (never stepped, or already done).
func (t *Tuner) PIDState(jobID string) (PIDState, bool) {
	pid, ok := t.pids[jobID]
	if !ok {
		return PIDState{}, false
	}
	return pid.Snapshot(), true
}

// Step ingests one monitoring sample for all live jobs and returns the
// actuation decision. dt is the sampling period.
func (t *Tuner) Step(statuses []JobStatus, dt time.Duration) (Decision, error) {
	if dt <= 0 {
		return Decision{}, fmt.Errorf("control: dt must be positive, got %v", dt)
	}
	dec := Decision{
		Priorities: make(map[string]float64),
		Signals:    make(map[string]float64),
	}
	live := make([]JobStatus, 0, len(statuses))
	for _, st := range statuses {
		if st.Done {
			delete(t.pids, st.JobID)
			delete(t.priority, st.JobID)
			continue
		}
		live = append(live, st)
	}
	if len(live) == 0 {
		dec.Workers = t.workers
		return dec, nil
	}
	sort.Slice(live, func(i, j int) bool { return live[i].JobID < live[j].JobID })

	totalSignal := 0.0
	for _, st := range live {
		pid, ok := t.pids[st.JobID]
		if !ok {
			pid = NewPID(t.cfg.PID)
			t.pids[st.JobID] = pid
			t.priority[st.JobID] = 1
		}
		// Error per Eq. 9's setpoint comparison: positive when the job
		// is predicted to miss its deadline.
		e := (st.ExpectedFinish - st.Deadline).Seconds()
		if t.cfg.RelativeError && st.Deadline > 0 {
			e = float64(st.ExpectedFinish-st.Deadline) / float64(st.Deadline)
		}
		sig, err := pid.Update(e, dt)
		if err != nil {
			return Decision{}, err
		}
		dec.Signals[st.JobID] = sig
		totalSignal += sig
	}

	// LCK: move priority mass toward late jobs. The multiplicative update
	// exp(sig/theta3) keeps priorities positive; normalization makes them
	// the job-selection distribution of the scheduler.
	sum := 0.0
	for _, st := range live {
		p := t.priority[st.JobID] * math.Exp(dec.Signals[st.JobID]/t.cfg.Theta3)
		// Clamp to keep one runaway job from starving the rest.
		p = math.Max(1e-4, math.Min(1e4, p))
		t.priority[st.JobID] = p
		sum += p
	}
	for _, st := range live {
		dec.Priorities[st.JobID] = t.priority[st.JobID] / sum
	}

	// GCK: grow the pool when the aggregate signal says jobs are late,
	// shrink when comfortably early. The step is proportional to the
	// mean signal scaled by theta4, bounded per sample to avoid thrash.
	meanSig := totalSignal / float64(len(live))
	maxStep := t.cfg.MaxStep
	if maxStep <= 0 {
		maxStep = 8
	}
	delta := clampInt(int(math.Round(meanSig*t.cfg.Theta4)), -maxStep, maxStep)
	t.workers = clampInt(t.workers+delta, t.cfg.MinWorkers, t.cfg.MaxWorkers)
	dec.Workers = t.workers
	return dec, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
