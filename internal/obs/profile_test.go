package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestStartProfilingWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiling(cpu, mem)
	if err != nil {
		t.Fatalf("StartProfiling: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1.000001
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilingStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartProfiling(filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof"))
	if err != nil {
		t.Fatalf("StartProfiling: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	// A second (or concurrent) stop must not re-run the stop work: no
	// double StopCPUProfile, no double close, same result back.
	for i := 0; i < 3; i++ {
		if err := stop(); err != nil {
			t.Fatalf("repeat stop %d returned %v, want nil", i, err)
		}
	}
}

func TestStartProfilingStopErrorSticky(t *testing.T) {
	dir := t.TempDir()
	// Heap snapshot into a directory that does not exist: stop fails, and
	// every later call reports the same error instead of retrying.
	stop, err := StartProfiling("", filepath.Join(dir, "missing", "mem.pprof"))
	if err != nil {
		t.Fatalf("StartProfiling: %v", err)
	}
	first := stop()
	if first == nil {
		t.Fatal("stop into missing dir should fail")
	}
	if again := stop(); again != first {
		t.Errorf("second stop returned %v, want the sticky %v", again, first)
	}
}

func TestStartProfilingUnwritableCPUPath(t *testing.T) {
	dir := t.TempDir()
	if _, err := StartProfiling(filepath.Join(dir, "missing", "cpu.pprof"), ""); err == nil {
		t.Fatal("unwritable cpu path should fail at start")
	}
}

func TestStartProfilingWithContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	mutexPath := filepath.Join(dir, "mutex.pprof")
	blockPath := filepath.Join(dir, "block.pprof")
	stop, err := StartProfilingWith(ProfileConfig{MutexPath: mutexPath, BlockPath: blockPath})
	if err != nil {
		t.Fatalf("StartProfilingWith: %v", err)
	}
	if got := runtime.SetMutexProfileFraction(-1); got != 5 {
		t.Errorf("mutex profile fraction while armed = %d, want the default 5", got)
	}
	// Generate some contention so the profiles have a chance to hold
	// samples (emptiness is fine — the writes must still succeed).
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				mu.Lock()
				mu.Unlock() //nolint:staticcheck // contention on purpose
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got := runtime.SetMutexProfileFraction(-1); got != 0 {
		t.Errorf("mutex profile fraction after stop = %d, want disarmed 0", got)
	}
	for _, p := range []string{mutexPath, blockPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilingEmptyPathsNoop(t *testing.T) {
	stop, err := StartProfiling("", "")
	if err != nil {
		t.Fatalf("StartProfiling with no paths: %v", err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop returned %v", err)
	}
}
