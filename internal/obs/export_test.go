package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Gauge("queue_depth").SetInt(7)
	h := reg.Histogram("latency_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth 7\n",
		"# TYPE latency_ms histogram\n",
		`latency_ms_bucket{le="1"} 1`,
		`latency_ms_bucket{le="10"} 2`, // cumulative
		`latency_ms_bucket{le="+Inf"} 3`,
		"latency_ms_sum 55.5",
		"latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Inc()
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if snap.Counters["n"] != 1 || snap.Gauges["g"] != 2.5 || snap.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost values: %+v", snap)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	base, labels := promName("core.acs-build ms")
	if base != "core_acs_build_ms" || labels != "" {
		t.Errorf("promName = %q, %q", base, labels)
	}
}

func TestPromNameSplitsLabels(t *testing.T) {
	base, labels := promName(`wq_worker_exec_ms{worker="w-1"}`)
	if base != "wq_worker_exec_ms" || labels != `worker="w-1"` {
		t.Errorf("promName = %q, %q", base, labels)
	}
}

func TestWritePrometheusLabeledMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`wq_worker_tasks_total{worker="a"}`).Add(2)
	reg.Counter(`wq_worker_tasks_total{worker="b"}`).Add(5)
	reg.Gauge(`wq_worker_up{worker="a"}`).Set(1)
	h := reg.Histogram(`wq_worker_exec_ms{worker="a"}`, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`wq_worker_tasks_total{worker="a"} 2`,
		`wq_worker_tasks_total{worker="b"} 5`,
		`wq_worker_up{worker="a"} 1`,
		`wq_worker_exec_ms_bucket{worker="a",le="1"} 1`,
		`wq_worker_exec_ms_bucket{worker="a",le="+Inf"} 2`,
		`wq_worker_exec_ms_sum{worker="a"} 5.5`,
		`wq_worker_exec_ms_count{worker="a"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per base name, even with two labeled series.
	if got := strings.Count(out, "# TYPE wq_worker_tasks_total counter"); got != 1 {
		t.Errorf("TYPE header count = %d, want 1:\n%s", got, out)
	}
	// Label blocks must not leak into base names.
	if strings.Contains(out, `_ms{worker="a"}_bucket`) {
		t.Errorf("labels leaked into histogram series names:\n%s", out)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Inc()
	tr := NewTracer(8)
	_, s := tr.StartSpan(context.Background(), "op")
	s.Finish()
	lg := NewLogger(nil, LevelInfo, 8)
	lg.Info("hello", F("n", 1))
	h := Handler(reg, tr, lg)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	rec := get("/metrics?format=json")
	var snap RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil || snap.Counters["hits_total"] != 1 {
		t.Errorf("/metrics?format=json: err=%v body=%q", err, rec.Body.String())
	}
	rec = get("/trace")
	var chrome struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	// One process_name metadata record (pid 1 = master) plus the span.
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil || len(chrome.TraceEvents) != 2 {
		t.Errorf("/trace: err=%v events=%d", err, len(chrome.TraceEvents))
	}
	rec = get("/trace?format=json")
	var spans []Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil || len(spans) != 1 || spans[0].Name != "op" {
		t.Errorf("/trace?format=json: err=%v spans=%+v", err, spans)
	}
	rec = get("/logs")
	var entries []LogEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil || len(entries) != 1 || entries[0].Msg != "hello" {
		t.Errorf("/logs: err=%v entries=%+v", err, entries)
	}
	if rec := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", rec.Code)
	}
	post := httptest.NewRecorder()
	h.ServeHTTP(post, httptest.NewRequest("POST", "/metrics", nil))
	if post.Code != 405 {
		t.Errorf("POST /metrics: code=%d, want 405", post.Code)
	}
}

func TestHandlerNilSinks(t *testing.T) {
	h := Handler(nil, nil, nil)
	for _, path := range []string{"/metrics", "/metrics?format=json", "/trace", "/trace?format=json", "/logs"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s with nil sinks: code=%d", path, rec.Code)
		}
	}
}
