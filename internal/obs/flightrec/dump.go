package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// Event is one decoded probe record, as exported by snapshots and deep
// dives.
type Event struct {
	Ring   string `json:"ring"`
	Probe  string `json:"probe"`
	T0     int64  `json:"t0"` // unix nanos
	T1     int64  `json:"t1"` // unix nanos
	Arg    int64  `json:"arg,omitempty"`
	Parent int64  `json:"parent,omitempty"` // owning tracer span ID
}

// Events snapshots every ring, returning the events whose end falls
// within the trailing window (entire history when window <= 0), oldest
// first. Torn or overwritten records — a writer lapped the ring while
// we read — are dropped by sanity checks rather than locked out: probes
// never block.
func (r *Recorder) Events(window time.Duration) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rings := make([]*Ring, len(r.rings))
	copy(rings, r.rings)
	r.mu.Unlock()

	cutoff := int64(0)
	if window > 0 {
		cutoff = time.Now().Add(-window).UnixNano()
	}
	var out []Event
	for _, g := range rings {
		end := g.cur.Load()
		n := uint64(len(g.recs))
		start := uint64(0)
		if end > n {
			start = end - n
		}
		for pos := start; pos < end; pos++ {
			rec := &g.recs[pos&g.mask]
			p := rec.probe.Load()
			t0, t1 := rec.t0.Load(), rec.t1.Load()
			if p <= 0 || int64(p) > int64(numProbes) || t1 < t0 || t1 < cutoff {
				continue
			}
			out = append(out, Event{
				Ring:   g.name,
				Probe:  ProbeID(p - 1).Name(),
				T0:     t0,
				T1:     t1,
				Arg:    rec.arg.Load(),
				Parent: rec.parent.Load(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T0 < out[j].T0 })
	return out
}

// chromeEvent mirrors the obs tracer's Chrome trace_event "complete"
// record; the deep dive re-emits spans and probe events into one file.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // µs relative to origin
	Dur  int64             `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid,omitempty"`
	Args map[string]string `json:"args"`
}

// Synthetic lane base for probe events whose owning span is unknown:
// far above real span IDs so they render below the span lanes.
const orphanLaneBase = int64(1) << 40

// WriteDeepDive writes the merged deep-dive Chrome trace: the tracer's
// buffered spans plus the last window of probe events. Events that
// carry a parent span ID render in that span's process and lane — the
// kernel iterations nest visually under their decode span, codec legs
// under their task's exec span. Parentless events get one synthetic
// lane per ring.
func (r *Recorder) WriteDeepDive(w io.Writer, window time.Duration) error {
	if r == nil {
		return fmt.Errorf("flightrec: no recorder")
	}
	var spans []obs.Span
	if tr := r.tracer.Load(); tr != nil {
		spans = tr.Spans()
	}
	return writeDeepDive(w, spans, r.Events(window))
}

func writeDeepDiveFile(path string, spans []obs.Span, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeDeepDive(f, spans, events); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeDeepDive(w io.Writer, spans []obs.Span, events []Event) error {
	// Origin: earliest timestamp across both sources, so the trace loads
	// near t=0.
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	for _, e := range events {
		t := time.Unix(0, e.T0)
		if origin.IsZero() || t.Before(origin) {
			origin = t
		}
	}

	// Lane resolution mirrors obs.WriteChromeTrace: a span renders on
	// the lane of its parent chain's root; probe events inherit the lane
	// (and process) of their owning span.
	parentOf := make(map[int64]int64, len(spans))
	procOf := make(map[int64]string, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
		procOf[s.ID] = s.Proc
	}
	lane := func(id int64) int64 {
		for hops := 0; hops < 64; hops++ {
			p, ok := parentOf[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	pidOf := map[string]int{"": 1}
	var metas []chromeMeta
	ensurePid := func(proc string) int {
		pid, ok := pidOf[proc]
		if !ok {
			pid = len(pidOf) + 1
			pidOf[proc] = pid
			metas = append(metas, chromeMeta{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": "worker " + proc},
			})
		}
		return pid
	}
	metas = append(metas, chromeMeta{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "master"},
	})

	out := make([]chromeEvent, 0, len(spans)+len(events))
	for _, s := range spans {
		attrs := make(map[string]string, len(s.Attrs)+3)
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		// Span IDs ride along so probe events' parent args resolve to a
		// concrete span when reading the file (and in tests).
		attrs["id"] = strconv.FormatInt(s.ID, 10)
		if s.Parent != 0 {
			attrs["parent"] = strconv.FormatInt(s.Parent, 10)
		}
		if s.Trace != "" {
			attrs["trace"] = s.Trace
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "sstd", Ph: "X",
			Ts:  s.Start.Sub(origin).Microseconds(),
			Dur: s.End.Sub(s.Start).Microseconds(),
			Pid: ensurePid(s.Proc), Tid: lane(s.ID),
			Args: attrs,
		})
	}
	orphanLane := map[string]int64{}
	for _, e := range events {
		pid := 1
		tid := int64(0)
		if _, ok := parentOf[e.Parent]; e.Parent != 0 && ok {
			pid = ensurePid(procOf[e.Parent])
			tid = lane(e.Parent)
		} else {
			l, ok := orphanLane[e.Ring]
			if !ok {
				l = orphanLaneBase + int64(len(orphanLane))
				orphanLane[e.Ring] = l
				metas = append(metas, chromeMeta{
					Name: "thread_name", Ph: "M", Pid: 1, Tid: l,
					Args: map[string]string{"name": "flightrec " + e.Ring},
				})
			}
			tid = l
		}
		args := map[string]string{"ring": e.Ring}
		if e.Arg != 0 {
			args["arg"] = strconv.FormatInt(e.Arg, 10)
		}
		if e.Parent != 0 {
			args["parent"] = strconv.FormatInt(e.Parent, 10)
		}
		out = append(out, chromeEvent{
			Name: e.Probe, Cat: "flightrec", Ph: "X",
			Ts:  time.Unix(0, e.T0).Sub(origin).Microseconds(),
			Dur: (e.T1 - e.T0) / int64(time.Microsecond),
			Pid: pid, Tid: tid,
			Args: args,
		})
	}

	return writeChromeJSON(w, metas, out)
}

// writeChromeJSON emits the Chrome trace_event envelope: metadata records
// first, then the events, one JSON object per line.
func writeChromeJSON(w io.Writer, metas []chromeMeta, events []chromeEvent) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	total := len(metas) + len(events)
	written := 0
	writeRecord := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		written++
		sep := ",\n"
		if written == total {
			sep = "\n"
		}
		_, err = fmt.Fprintf(w, "%s%s", b, sep)
		return err
	}
	for _, m := range metas {
		if err := writeRecord(m); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := writeRecord(ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
