package flightrec

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// ringStatus is one ring's row in the /debug/flightrec status JSON.
type ringStatus struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
}

type status struct {
	Frozen   bool         `json:"frozen"`
	Window   string       `json:"window"`
	Cooldown string       `json:"cooldown"`
	Dir      string       `json:"dir,omitempty"`
	DumpOn   []string     `json:"dumpOn,omitempty"`
	Rings    []ringStatus `json:"rings"`
	Dumps    []DumpInfo   `json:"dumps"`
}

// Handler serves the flight recorder's debug surface:
//
//	GET  /debug/flightrec        recorder status: rings, dump history
//	GET  /debug/flightrec/events JSON events from the last window
//	GET  /debug/flightrec/trace  live merged deep-dive Chrome trace
//	POST /debug/flightrec/trip   fire the "manual" trigger
//
// Mount it at both "/debug/flightrec" and "/debug/flightrec/".
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		switch strings.TrimSuffix(strings.TrimPrefix(req.URL.Path, "/debug/flightrec"), "/") {
		case "":
			r.mu.Lock()
			st := status{
				Frozen:   r.frozen.Load(),
				Window:   r.window.String(),
				Cooldown: r.cooldown.String(),
				Dir:      r.dir,
				Rings:    make([]ringStatus, 0, len(r.rings)),
				Dumps:    append([]DumpInfo(nil), r.dumps...),
			}
			for trig := range r.armed {
				st.DumpOn = append(st.DumpOn, trig)
			}
			for _, g := range r.rings {
				st.Rings = append(st.Rings, ringStatus{Name: g.name, Capacity: len(g.recs), Total: g.cur.Load()})
			}
			r.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
		case "/events":
			w.Header().Set("Content-Type", "application/json")
			events := r.Events(r.window)
			if events == nil {
				events = []Event{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(events)
		case "/trace":
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteDeepDive(w, r.window)
		case "/trip":
			if req.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			if !r.Trip(TrigManual, "http "+req.RemoteAddr) {
				http.Error(w, "trip refused (cooldown, in-flight dump, or trigger disarmed)",
					http.StatusTooManyRequests)
				return
			}
			// Wait briefly so the response can report the dump.
			done := make(chan struct{})
			go func() { r.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
			}
			dumps := r.Dumps()
			w.Header().Set("Content-Type", "application/json")
			resp := map[string]any{"tripped": true}
			if len(dumps) > 0 {
				resp["dump"] = dumps[len(dumps)-1]
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(resp)
		default:
			http.NotFound(w, req)
		}
	})
}
