package flightrec

import (
	"fmt"
	"sync"
	"time"
)

// Burst trips a trigger when N observations land within a sliding
// window — the shape of the deadline-miss and admission-rejection
// triggers, where one event is routine but a spike means the system
// crossed its knee. A nil *Burst is valid and ignores observations.
type Burst struct {
	trigger string
	n       int
	window  time.Duration

	mu    sync.Mutex
	times []time.Time
}

// NewBurst builds a detector that fires trigger once n observations
// arrive within window (defaults: n=3, window=10s). The detector binds
// to the process default recorder lazily at trip time, so it can be
// constructed before — or without — Enable.
func NewBurst(trigger string, n int, window time.Duration) *Burst {
	if n <= 0 {
		n = 3
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	return &Burst{trigger: trigger, n: n, window: window, times: make([]time.Time, 0, n)}
}

// Observe records one occurrence; when the burst threshold is crossed
// it trips the default recorder with detail. Nil-safe and cheap when no
// recorder is armed.
func (b *Burst) Observe(detail string) {
	if b == nil || !Active().Armed(b.trigger) {
		return
	}
	now := time.Now()
	b.mu.Lock()
	keep := b.times[:0]
	for _, t := range b.times {
		if now.Sub(t) < b.window {
			keep = append(keep, t)
		}
	}
	b.times = append(keep, now)
	burst := len(b.times) >= b.n
	if burst {
		b.times = b.times[:0]
	}
	b.mu.Unlock()
	if burst {
		Trip(b.trigger, fmt.Sprintf("%d in %s: %s", b.n, b.window, detail))
	}
}
