package flightrec

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// chromeDoc decodes the merged trace back for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   int64             `json:"ts"`
		Pid  int               `json:"pid"`
		Tid  int64             `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// TestClusterTraceSkewCorrection merges a synthetic 3-worker dump whose
// hosts run with known clock skews. The local (uncorrected) timestamp
// order is deliberately the REVERSE of the true order, so the test fails
// if skew correction is dropped or applied with the wrong sign.
func TestClusterTraceSkewCorrection(t *testing.T) {
	base := int64(1_000_000_000_000_000) // arbitrary wall-clock origin, ns
	us := int64(time.Microsecond)
	ev := func(ring string, localT0 int64) []Event {
		return []Event{{Ring: ring, Probe: "codec.encode", T0: localT0, T1: localT0 + 10*us}}
	}
	hosts := []HostDump{
		// True master-clock times: master 50µs, w-b 100µs, w-c 200µs, w-a 300µs.
		{Host: "master", Events: ev("master", base+50*us)},
		{Host: "w-a", SkewNs: 500 * us, Events: ev("codec", base + 300*us - 500*us)},
		{Host: "w-b", SkewNs: -300 * us, Events: ev("codec", base + 100*us + 300*us)},
		{Host: "w-c", SkewNs: 0, Events: ev("codec", base + 200*us)},
	}

	var buf bytes.Buffer
	if err := WriteClusterTrace(&buf, nil, hosts); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}

	// Per-host lane assignment: process_name metas name every host, and
	// each host's events carry that host's pid.
	procName := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procName[e.Pid] = e.Args["name"]
		}
	}
	if procName[1] != "master" {
		t.Errorf("pid 1 = %q, want master", procName[1])
	}
	wantPids := map[string]int{"master": 1, "host w-a": 2, "host w-b": 3, "host w-c": 4}
	for name, pid := range wantPids {
		if procName[pid] != name {
			t.Errorf("pid %d = %q, want %q (sorted per-host lanes)", pid, procName[pid], name)
		}
	}

	// Event ordering: skew-corrected master-clock order, not local order.
	var order []string
	var ts []int64
	pidByHost := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Cat != "flightrec" {
			continue
		}
		order = append(order, e.Args["host"])
		ts = append(ts, e.Ts)
		if prev, ok := pidByHost[e.Args["host"]]; ok && prev != e.Pid {
			t.Errorf("host %s events span pids %d and %d", e.Args["host"], prev, e.Pid)
		}
		pidByHost[e.Args["host"]] = e.Pid
	}
	want := []string{"master", "w-b", "w-c", "w-a"}
	if len(order) != len(want) {
		t.Fatalf("got %d flightrec events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("skew-corrected order = %v, want %v", order, want)
		}
	}
	// Origin is the earliest corrected timestamp (master's 50µs event), so
	// relative times are 0, 50, 150, 250µs.
	wantTs := []int64{0, 50, 150, 250}
	for i := range wantTs {
		if ts[i] != wantTs[i] {
			t.Errorf("event %d ts = %dµs, want %dµs", i, ts[i], wantTs[i])
		}
	}
	// Distinct lanes: 4 hosts -> 4 distinct pids.
	seen := map[int]bool{}
	for _, pid := range pidByHost {
		if seen[pid] {
			t.Errorf("two hosts share pid %d", pid)
		}
		seen[pid] = true
	}
}

// TestClusterTraceSpansAndParents checks spans land on their recording
// host's lane and parented probe events nest in the owning span's lane.
func TestClusterTraceSpansAndParents(t *testing.T) {
	start := time.Unix(0, 1_000_000_000_000_000)
	spans := []obs.Span{
		{ID: 7, Name: "job", Start: start, End: start.Add(time.Millisecond)},
		{ID: 9, Parent: 7, Proc: "w-1", Name: "exec", Start: start.Add(100 * time.Microsecond), End: start.Add(900 * time.Microsecond)},
	}
	hosts := []HostDump{
		{Host: "w-1", Events: []Event{
			{Ring: "codec", Probe: "codec.encode", Parent: 9, T0: start.UnixNano() + 200_000, T1: start.UnixNano() + 210_000},
			{Ring: "codec", Probe: "codec.decode", T0: start.UnixNano() + 300_000, T1: start.UnixNano() + 310_000},
		}},
	}
	var buf bytes.Buffer
	if err := WriteClusterTrace(&buf, spans, hosts); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var masterSpanPid, workerSpanPid, parentedPid, orphanPid int
	var parentedTid, orphanTid int64
	for _, e := range doc.TraceEvents {
		switch {
		case e.Cat == "sstd" && e.Name == "job":
			masterSpanPid = e.Pid
		case e.Cat == "sstd" && e.Name == "exec":
			workerSpanPid = e.Pid
		case e.Cat == "flightrec" && e.Name == "codec.encode":
			parentedPid, parentedTid = e.Pid, e.Tid
		case e.Cat == "flightrec" && e.Name == "codec.decode":
			orphanPid, orphanTid = e.Pid, e.Tid
		}
	}
	if masterSpanPid != 1 {
		t.Errorf("master span pid = %d, want 1", masterSpanPid)
	}
	if workerSpanPid != 2 {
		t.Errorf("worker span pid = %d, want 2", workerSpanPid)
	}
	// The parented event renders on its host's pid, in the root span's lane.
	if parentedPid != 2 || parentedTid != 7 {
		t.Errorf("parented event pid/tid = %d/%d, want 2/7", parentedPid, parentedTid)
	}
	// The orphan event gets a synthetic per-(host,ring) lane on the host pid.
	if orphanPid != 2 || orphanTid < orphanLaneBase {
		t.Errorf("orphan event pid/tid = %d/%d, want pid 2, synthetic lane", orphanPid, orphanTid)
	}
}
