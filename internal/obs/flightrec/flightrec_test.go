package flightrec

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

func newTestRecorder(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	r, err := NewRecorder(cfg)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	return r
}

func TestRingRecordsProbes(t *testing.T) {
	r := newTestRecorder(t, Config{RingSize: 64})
	g := r.Ring("test")
	for i := 0; i < 5; i++ {
		t0 := g.Start()
		g.Probe(ProbeHMMForward, t0, int64(i), 42)
	}
	events := r.Events(0)
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Probe != "hmm.forward" {
			t.Errorf("event %d probe = %q, want hmm.forward", i, e.Probe)
		}
		if e.Ring != "test" {
			t.Errorf("event %d ring = %q, want test", i, e.Ring)
		}
		if e.Arg != int64(i) {
			t.Errorf("event %d arg = %d, want %d", i, e.Arg, i)
		}
		if e.Parent != 42 {
			t.Errorf("event %d parent = %d, want 42", i, e.Parent)
		}
		if e.T1 < e.T0 || e.T0 == 0 {
			t.Errorf("event %d has bad interval [%d,%d]", i, e.T0, e.T1)
		}
	}
	if g.Total() != 5 {
		t.Errorf("ring total = %d, want 5", g.Total())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var g *Ring
	// None of these may panic.
	g.Probe(ProbeHMMForward, g.Start(), 0, 0)
	if g.Total() != 0 || g.Name() != "" {
		t.Error("nil ring should be empty")
	}
	if r.Ring("x") != nil || r.NewRing("x") != nil {
		t.Error("nil recorder must hand out nil rings")
	}
	if r.Trip(TrigManual, "") {
		t.Error("nil recorder must not trip")
	}
	if r.Events(0) != nil || r.Dumps() != nil || r.Armed(TrigManual) || r.Frozen() {
		t.Error("nil recorder accessors should return zero values")
	}
	r.Wait()
	r.SetTracer(nil)

	// With no default recorder installed the package helpers are inert.
	Disable()
	if Shared("x") != nil || Fresh("x") != nil || Trip(TrigManual, "") {
		t.Error("package helpers must no-op without an active recorder")
	}
	NewBurst(TrigManual, 1, time.Second).Observe("no recorder")
	var b *Burst
	b.Observe("nil burst")
}

func TestRingOverflowCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRecorder(t, Config{RingSize: 4, Metrics: reg})
	g := r.Ring("small")
	for i := 0; i < 10; i++ {
		g.Probe(ProbeCodecCRC, g.Start(), 0, 0)
	}
	events := r.Events(0)
	if len(events) != 4 {
		t.Fatalf("got %d events from a 4-slot ring, want 4", len(events))
	}
	if got := reg.Counter("flightrec_events_dropped_total").Value(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

func TestFrozenSkipsProbes(t *testing.T) {
	r := newTestRecorder(t, Config{RingSize: 16})
	g := r.Ring("x")
	r.frozen.Store(true)
	if g.Start() != 0 {
		t.Error("Start must return 0 while frozen")
	}
	g.Probe(ProbeHMMForward, time.Now().UnixNano(), 0, 0)
	r.frozen.Store(false)
	if got := len(r.Events(0)); got != 0 {
		t.Errorf("frozen ring recorded %d events, want 0", got)
	}
}

func TestEventsWindowFilter(t *testing.T) {
	r := newTestRecorder(t, Config{RingSize: 16})
	g := r.Ring("w")
	g.Probe(ProbeDTMMerge, g.Start(), 0, 0)
	g.Probe(ProbeDTMMerge, g.Start(), 0, 0)
	// Age the first record a minute into the past: Probe always stamps
	// t1=now, so an out-of-window event has to be rewritten in place.
	old := time.Now().Add(-time.Minute).UnixNano()
	g.recs[0].t0.Store(old)
	g.recs[0].t1.Store(old)
	if got := len(r.Events(time.Second)); got != 1 {
		t.Errorf("1s window returned %d events, want 1", got)
	}
	if got := len(r.Events(0)); got != 2 {
		t.Errorf("unbounded window returned %d events, want 2", got)
	}
}

func TestTripWritesDumpAndHonorsCooldown(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	r := newTestRecorder(t, Config{
		RingSize: 64, Dir: dir, Window: time.Minute,
		Cooldown: time.Hour, Metrics: reg, Tracer: tr,
	})
	sp := tr.NewTrace("job")
	g := r.Ring("hmm")
	g.Probe(ProbeHMMForward, g.Start(), 1, sp.SpanID())
	sp.Finish()

	if !r.Trip(TrigDeadlineMiss, "3 misses") {
		t.Fatal("first trip refused")
	}
	r.Wait()
	if r.Trip(TrigDeadlineMiss, "again") {
		t.Error("second trip inside cooldown must be refused")
	}
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != TrigDeadlineMiss || d.Events != 1 || d.Spans != 1 {
		t.Errorf("dump = %+v, want trigger=%s events=1 spans=1", d, TrigDeadlineMiss)
	}
	b, err := os.ReadFile(d.Path)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &trace); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	s := string(b)
	if !strings.Contains(s, "hmm.forward") || !strings.Contains(s, `"job"`) {
		t.Errorf("dump missing event or span:\n%s", s)
	}
	if reg.Counter("flightrec_trips_total").Value() != 1 ||
		reg.Counter("flightrec_dumps_total").Value() != 1 {
		t.Error("trip/dump counters not incremented")
	}
	if r.Frozen() {
		t.Error("recorder left frozen after dump")
	}
}

func TestTripRespectsDumpOn(t *testing.T) {
	r := newTestRecorder(t, Config{DumpOn: []string{TrigStraggler}})
	if r.Trip(TrigDeadlineMiss, "") {
		t.Error("disarmed trigger tripped")
	}
	if !r.Armed(TrigStraggler) || r.Armed(TrigManual) {
		t.Error("Armed does not reflect DumpOn")
	}
	all := newTestRecorder(t, Config{DumpOn: []string{"all"}})
	if !all.Armed(TrigManual) {
		t.Error(`DumpOn "all" should arm everything`)
	}
}

func TestBurstTrigger(t *testing.T) {
	dir := t.TempDir()
	r, err := Enable(Config{Dir: dir, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer Disable()
	b := NewBurst(TrigDeadlineMiss, 3, time.Minute)
	b.Observe("miss 1")
	b.Observe("miss 2")
	if len(r.Dumps()) != 0 {
		r.Wait()
		t.Fatal("burst tripped below threshold")
	}
	b.Observe("miss 3")
	r.Wait()
	dumps := r.Dumps()
	if len(dumps) != 1 || dumps[0].Trigger != TrigDeadlineMiss {
		t.Fatalf("burst of 3 should have tripped once, got %+v", dumps)
	}
}

func TestDeepDiveNestsEventsUnderSpans(t *testing.T) {
	tr := obs.NewTracer(64)
	r := newTestRecorder(t, Config{Tracer: tr})

	root := tr.NewTrace("job root")
	child := tr.NewSpanIn(root.TraceID(), "decode claim", root.SpanID())
	g := r.Ring("hmm")
	g.Probe(ProbeHMMForward, g.Start(), 1, child.SpanID())
	g2 := r.Ring("loose")
	g2.Probe(ProbeStreamRotate, g2.Start(), 0, 0)
	child.Finish()
	root.Finish()

	var buf strings.Builder
	if err := r.WriteDeepDive(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &trace); err != nil {
		t.Fatalf("deep dive is not valid JSON: %v\n%s", err, buf.String())
	}
	var childLane, eventLane, orphanLane int64
	var childID int64
	for _, ev := range trace.TraceEvents {
		switch ev.Name {
		case "decode claim":
			childLane = ev.Tid
			id, _ := strconv.ParseInt(ev.Args["id"], 10, 64)
			childID = id
		case "hmm.forward":
			eventLane = ev.Tid
			p, _ := strconv.ParseInt(ev.Args["parent"], 10, 64)
			if p != child.SpanID() {
				t.Errorf("hmm.forward parent arg = %d, want %d", p, child.SpanID())
			}
		case "stream.rotate":
			orphanLane = ev.Tid
		}
	}
	if childID != child.SpanID() {
		t.Errorf("decode span id arg = %d, want %d", childID, child.SpanID())
	}
	if childLane == 0 || eventLane != childLane {
		t.Errorf("hmm.forward lane = %d, want the decode span's lane %d", eventLane, childLane)
	}
	if childLane != root.SpanID() {
		t.Errorf("decode span lane = %d, want root span id %d", childLane, root.SpanID())
	}
	if orphanLane < orphanLaneBase {
		t.Errorf("orphan event lane = %d, want a synthetic lane >= %d", orphanLane, orphanLaneBase)
	}
}

func TestHandler(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Config{Dir: dir, Cooldown: time.Hour})
	g := r.Ring("h")
	g.Probe(ProbeMasterAck, g.Start(), 0, 0)
	h := r.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}
	if w := get("/debug/flightrec"); w.Code != 200 || !strings.Contains(w.Body.String(), `"rings"`) {
		t.Errorf("status endpoint: code %d body %s", w.Code, w.Body.String())
	}
	if w := get("/debug/flightrec/events"); w.Code != 200 || !strings.Contains(w.Body.String(), "master.ack") {
		t.Errorf("events endpoint: code %d body %s", w.Code, w.Body.String())
	}
	if w := get("/debug/flightrec/trace"); w.Code != 200 || !strings.Contains(w.Body.String(), "traceEvents") {
		t.Errorf("trace endpoint: code %d", w.Code)
	}
	if w := get("/debug/flightrec/trip"); w.Code != 405 {
		t.Errorf("GET trip: code %d, want 405", w.Code)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/debug/flightrec/trip", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"tripped"`) {
		t.Errorf("POST trip: code %d body %s", w.Code, w.Body.String())
	}
	r.Wait()
	if files, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.trace.json")); len(files) != 1 {
		t.Errorf("manual trip wrote %d files, want 1", len(files))
	}
}

// TestConcurrentProbesRaceClean hammers one shared ring from many
// goroutines while snapshots and trips run — the acceptance bar is the
// race detector staying quiet and no panics.
func TestConcurrentProbesRaceClean(t *testing.T) {
	r := newTestRecorder(t, Config{RingSize: 128, Cooldown: time.Millisecond})
	g := r.Ring("contended")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					g.Probe(ProbeCodecEncode, g.Start(), id, id)
				}
			}
		}(int64(i))
	}
	for i := 0; i < 20; i++ {
		r.Events(time.Second)
		r.Trip(TrigManual, "race soak")
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	r.Wait()
	for _, e := range r.Events(0) {
		if e.T1 < e.T0 {
			t.Fatalf("torn record survived the snapshot filter: %+v", e)
		}
	}
}

func TestProbeZeroAllocs(t *testing.T) {
	r := newTestRecorder(t, Config{RingSize: 1024})
	g := r.Ring("alloc")
	allocs := testing.AllocsPerRun(1000, func() {
		g.Probe(ProbeHMMForward, g.Start(), 7, 9)
	})
	if allocs != 0 {
		t.Errorf("probe allocates %.1f/op, want 0", allocs)
	}
}
