package flightrec

import (
	"testing"
	"time"
)

// BenchmarkProbe measures one chained probe — the hot-path shape, where
// each phase reuses the previous probe's end stamp as its start (one
// clock read, one cursor increment, five stores per event). The
// acceptance bar is <100ns and 0 allocs/op so probes can stay on in
// production.
func BenchmarkProbe(b *testing.B) {
	r, err := NewRecorder(Config{RingSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	g := r.Ring("bench")
	b.ReportAllocs()
	b.ResetTimer()
	t := g.Start()
	for i := 0; i < b.N; i++ {
		t = g.Probe(ProbeHMMForward, t, int64(i), 12345)
	}
}

// BenchmarkProbePair is the unchained shape — Start plus Probe, two
// clock reads — paid by isolated probe sites.
func BenchmarkProbePair(b *testing.B) {
	r, err := NewRecorder(Config{RingSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	g := r.Ring("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Probe(ProbeHMMForward, g.Start(), int64(i), 12345)
	}
}

// BenchmarkProbeDisabled is the cost with no recorder installed: the
// nil-ring fast path every probe site pays when flight recording is off.
func BenchmarkProbeDisabled(b *testing.B) {
	var g *Ring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Probe(ProbeHMMForward, g.Start(), int64(i), 12345)
	}
}

// BenchmarkProbeContended is the shared-ring worst case: GOMAXPROCS
// goroutines fetch-adding one cursor.
func BenchmarkProbeContended(b *testing.B) {
	r, err := NewRecorder(Config{RingSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	g := r.Ring("contended")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Probe(ProbeCodecEncode, g.Start(), 1, 2)
		}
	})
}

// BenchmarkBurstObserve is the trigger-side cost paid per deadline miss
// or admission rejection while armed but below threshold.
func BenchmarkBurstObserve(b *testing.B) {
	if _, err := Enable(Config{Cooldown: time.Hour, DumpOn: []string{TrigStraggler}}); err != nil {
		b.Fatal(err)
	}
	defer Disable()
	// Deadline-miss is disarmed: Observe takes the cheap rejection path,
	// as in a production process with dumps scoped to another trigger.
	bd := NewBurst(TrigDeadlineMiss, 3, time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Observe("miss")
	}
}
