package flightrec

import (
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// HostDump is one host's contribution to a merged cluster trace: the
// frozen ring snapshot a worker shipped back after a FreezeRings
// broadcast (or the master's own events, Host "" / "master").
type HostDump struct {
	// Host names the contributing host; "" or "master" is the master.
	Host string `json:"host"`
	// SkewNs is the clock-skew correction to ADD to every event
	// timestamp to place it on the master's clock — the master fills it
	// from the PR 3 NTP-style estimator, leaving master events at 0.
	SkewNs int64 `json:"skew_ns,omitempty"`
	// Events are the host's probe events, timestamps on the host's own
	// clock.
	Events []Event `json:"events"`
}

// WriteClusterTrace merges many hosts' flight-recorder snapshots and the
// master's span timeline into ONE Chrome trace with per-host lanes:
// pid 1 is the master, every other host gets its own pid (sorted by
// name, so lane order is stable run to run). Worker event timestamps are
// skew-corrected onto the master clock via each dump's SkewNs before
// merging, so cross-host causality reads true in the timeline. Spans
// render on the pid of their recording host (Span.Proc); probe events
// always render on their shipping host's pid — inside their owning
// span's lane when the parent is known, else on one synthetic lane per
// (host, ring).
func WriteClusterTrace(w io.Writer, spans []obs.Span, hosts []HostDump) error {
	// Stable pid assignment: master first, workers sorted by name.
	pidOf := map[string]int{"": 1, "master": 1}
	names := make([]string, 0, len(hosts))
	for _, h := range hosts {
		if _, ok := pidOf[h.Host]; !ok {
			pidOf[h.Host] = 0 // placeholder; assigned after sort
			names = append(names, h.Host)
		}
	}
	sort.Strings(names)
	metas := []chromeMeta{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "master"},
	}}
	for i, n := range names {
		pidOf[n] = i + 2
		metas = append(metas, chromeMeta{
			Name: "process_name", Ph: "M", Pid: i + 2,
			Args: map[string]string{"name": "host " + n},
		})
	}
	ensurePid := func(host string) int {
		pid, ok := pidOf[host]
		if !ok {
			pid = len(pidOf) // "" and "master" share pid 1, so len works out
			pidOf[host] = pid
			metas = append(metas, chromeMeta{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": "host " + host},
			})
		}
		return pid
	}

	// Origin: earliest skew-corrected timestamp, so the merged timeline
	// loads near t=0.
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	for _, h := range hosts {
		for _, e := range h.Events {
			t := time.Unix(0, e.T0+h.SkewNs)
			if origin.IsZero() || t.Before(origin) {
				origin = t
			}
		}
	}

	parentOf := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	lane := func(id int64) int64 {
		for hops := 0; hops < 64; hops++ {
			p, ok := parentOf[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
		return id
	}

	out := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		attrs := make(map[string]string, len(s.Attrs)+3)
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		attrs["id"] = strconv.FormatInt(s.ID, 10)
		if s.Parent != 0 {
			attrs["parent"] = strconv.FormatInt(s.Parent, 10)
		}
		if s.Trace != "" {
			attrs["trace"] = s.Trace
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "sstd", Ph: "X",
			Ts:  s.Start.Sub(origin).Microseconds(),
			Dur: s.End.Sub(s.Start).Microseconds(),
			Pid: ensurePid(s.Proc), Tid: lane(s.ID),
			Args: attrs,
		})
	}

	type hostRing struct {
		host, ring string
	}
	orphanLane := map[hostRing]int64{}
	for _, h := range hosts {
		pid := ensurePid(h.Host)
		hostName := h.Host
		if hostName == "" {
			hostName = "master"
		}
		for _, e := range h.Events {
			tid := int64(0)
			if _, ok := parentOf[e.Parent]; e.Parent != 0 && ok {
				tid = lane(e.Parent)
			} else {
				key := hostRing{h.Host, e.Ring}
				l, ok := orphanLane[key]
				if !ok {
					l = orphanLaneBase + int64(len(orphanLane))
					orphanLane[key] = l
					metas = append(metas, chromeMeta{
						Name: "thread_name", Ph: "M", Pid: pid, Tid: l,
						Args: map[string]string{"name": "flightrec " + e.Ring},
					})
				}
				tid = l
			}
			args := map[string]string{"ring": e.Ring, "host": hostName}
			if e.Arg != 0 {
				args["arg"] = strconv.FormatInt(e.Arg, 10)
			}
			if e.Parent != 0 {
				args["parent"] = strconv.FormatInt(e.Parent, 10)
			}
			out = append(out, chromeEvent{
				Name: e.Probe, Cat: "flightrec", Ph: "X",
				Ts:  time.Unix(0, e.T0+h.SkewNs).Sub(origin).Microseconds(),
				Dur: (e.T1 - e.T0) / int64(time.Microsecond),
				Pid: pid, Tid: tid,
				Args: args,
			})
		}
	}
	// Chrome sorts internally, but a time-ordered file makes the merged
	// timeline greppable and the skew-correction tests direct.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return writeChromeJSON(w, metas, out)
}

// WriteClusterTraceFile writes the merged cluster trace to path.
func WriteClusterTraceFile(path string, spans []obs.Span, hosts []HostDump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteClusterTrace(f, spans, hosts); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
