// Package flightrec is an always-on flight recorder: fixed-size,
// allocation-free event rings that hot paths probe on every operation
// (HMM kernel phases, codec frames, master scheduling, dtm merges,
// stream windows), passive until an SLO trigger fires — a deadline-miss
// burst, a straggler flag, an admission rejection spike, a task
// quarantine — at which point the recorder freezes, snapshots the last
// window of events across all rings, and writes a deep-dive Chrome
// trace_event file merged with the span tracer's timeline.
//
// The probe fast path is two nil/flag checks, two clock reads, one
// atomic cursor increment and five atomic stores — no allocation, no
// lock, no map, no string. It is cheap enough (<100ns, see
// BenchmarkProbe) to stay enabled in production; when no recorder is
// installed the nil ring makes every probe a single branch.
package flightrec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// ProbeID identifies a probe site. IDs are dense array indexes into the
// probe-name table so records stay numeric on the hot path.
type ProbeID int32

const (
	// HMM kernel phases, one probe per Baum-Welch iteration phase plus
	// the Viterbi decode — the θ1 kernel cost of Eq. 10.
	ProbeHMMForward ProbeID = iota
	ProbeHMMBackward
	ProbeHMMEStep
	ProbeHMMMStep
	ProbeHMMViterbi
	// Codec frame legs: CRC stamping/checking and JSON encode/decode —
	// the wire transfer terms of Eq. 10.
	ProbeCodecCRC
	ProbeCodecEncode
	ProbeCodecDecode
	// Master scheduling loop: task handed to a worker, task requeued
	// after a failure, result acknowledged.
	ProbeMasterAssign
	ProbeMasterRequeue
	ProbeMasterAck
	// DTM job legs: per-task ACS merge and the finalize (merge+decode).
	ProbeDTMMerge
	ProbeDTMFinalize
	// Streaming decoder: window append (decode) and frontier rotation.
	ProbeStreamAppend
	ProbeStreamRotate

	numProbes
)

var probeNames = [numProbes]string{
	"hmm.forward", "hmm.backward", "hmm.estep", "hmm.mstep", "hmm.viterbi",
	"codec.crc", "codec.encode", "codec.decode",
	"master.assign", "master.requeue", "master.ack",
	"dtm.merge", "dtm.finalize",
	"stream.append", "stream.rotate",
}

// Name returns the probe's dotted name ("hmm.forward", "codec.crc", ...).
func (p ProbeID) Name() string {
	if p < 0 || p >= numProbes {
		return fmt.Sprintf("probe-%d", int32(p))
	}
	return probeNames[p]
}

// record is one ring slot. Every field is atomic so concurrent writers
// (the cursor hands each Probe a private slot, but a lapped ring can
// reassign a slot while a snapshot reads it) stay race-detector clean;
// torn records are filtered at snapshot by the t0/t1 sanity checks.
type record struct {
	probe  atomic.Int64 // ProbeID+1; 0 marks a never-written slot
	t0     atomic.Int64 // unix nanos
	t1     atomic.Int64 // unix nanos
	arg    atomic.Int64 // probe-specific payload (iteration, bytes, ...)
	parent atomic.Int64 // owning tracer span ID (0 = none)
}

// Ring is one fixed-size probe event buffer. Rings created with NewRing
// have a single writer by convention (one per workspace / codec /
// goroutine); shared rings from Recorder.Ring accept concurrent writers
// — the atomic cursor hands each probe a private slot either way. A nil
// *Ring is valid and disables its probes.
type Ring struct {
	name string
	recs []record
	mask uint64
	cur  atomic.Uint64 // total records ever written

	// Probe timestamps are wall-at-recorder-creation plus monotonic
	// elapsed: time.Since on a monotonic base reads only the monotonic
	// clock (~half the cost of time.Now, which reads both), and the
	// stamps stay comparable to the tracer's wall-clock spans.
	base     time.Time
	baseWall int64

	frozen  *atomic.Bool // recorder-wide freeze flag
	dropped *obs.Counter // recorder-wide overwrite counter
}

// Start opens a probe interval: it returns the current time, or 0 when
// the ring is nil or frozen (Probe ignores a zero start). Call it
// immediately before the probed region.
func (g *Ring) Start() int64 {
	if g == nil || g.frozen.Load() {
		return 0
	}
	return int64(time.Since(g.base)) + g.baseWall
}

// Probe closes a probe interval opened by Start, recording
// {id, t0, now, arg, parent} into the ring, and returns its end stamp —
// back-to-back phases chain it as the next probe's t0 so a phase costs
// one clock read, not two:
//
//	t := ring.Start()
//	forward()
//	t = ring.Probe(ProbeHMMForward, t, it, parent)
//	backward()
//	t = ring.Probe(ProbeHMMBackward, t, it, parent)
//
// parent is the tracer span the event belongs under (0 for none); arg
// is probe-specific (EM iteration, frame bytes, window length, ...).
// No-op returning 0 on a nil ring, a zero t0, or a frozen recorder.
func (g *Ring) Probe(id ProbeID, t0, arg, parent int64) int64 {
	if g == nil || t0 == 0 || g.frozen.Load() {
		return 0
	}
	t1 := int64(time.Since(g.base)) + g.baseWall
	pos := g.cur.Add(1) - 1
	r := &g.recs[pos&g.mask]
	r.probe.Store(int64(id) + 1)
	r.t0.Store(t0)
	r.t1.Store(t1)
	r.arg.Store(arg)
	r.parent.Store(parent)
	if pos >= uint64(len(g.recs)) {
		g.dropped.Inc()
	}
	return t1
}

// Name returns the ring's name ("" on nil).
func (g *Ring) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Total reports how many events were ever written to the ring (0 on nil).
func (g *Ring) Total() uint64 {
	if g == nil {
		return 0
	}
	return g.cur.Load()
}

// Trigger names accepted by Trip and the -flight-dump-on flag.
const (
	TrigDeadlineMiss = "deadline-miss" // burst of jobs past their deadline
	TrigStraggler    = "straggler"     // health registry flags a slow worker
	TrigAdmission    = "admission"     // admission gate rejection spike
	TrigQuarantine   = "quarantine"    // poison task quarantined
	TrigSLOBurn      = "slo-burn"      // multi-window SLO burn-rate alert fired
	TrigManual       = "manual"        // /debug/flightrec/trip or tests
)

// Config parameterizes a Recorder. The zero value is usable: default
// ring size, 1s dump window, 5s trip cooldown, all triggers armed, no
// dump directory (snapshots available over HTTP only).
type Config struct {
	// RingSize is the per-ring capacity in records, rounded up to a
	// power of two (default 4096; one record is 40 bytes).
	RingSize int
	// MaxRings caps how many distinct rings the recorder tracks; past
	// the cap NewRing degrades to the shared per-name ring so churning
	// callers (reconnecting codecs) cannot grow memory without bound.
	MaxRings int
	// Window is how far back a deep-dive dump reaches (default 1s).
	Window time.Duration
	// Cooldown is the minimum gap between dumps (default 5s) so a
	// trigger storm produces one deep dive, not hundreds.
	Cooldown time.Duration
	// Dir is where deep-dive trace files land; empty disables files
	// (triggers still freeze + snapshot for the HTTP endpoint).
	Dir string
	// DumpOn lists the armed triggers (TrigDeadlineMiss, ...); empty or
	// containing "all" arms everything.
	DumpOn []string
	// Tracer supplies the span timeline merged into deep dives; may be
	// nil (events export on synthetic lanes) and replaced later with
	// SetTracer.
	Tracer *obs.Tracer
	// Metrics, when set, exports flightrec_events_dropped_total,
	// flightrec_trips_total and flightrec_dumps_total.
	Metrics *obs.Registry
	// Logger, when set, gets a line per trip and per dump.
	Logger *obs.Logger
	// OnTrip, when set, runs on the dump goroutine after each completed
	// local dump — the hook the cluster master uses to cascade a local
	// trip into a cross-host flight-dump collection. Replaceable later
	// with SetOnTrip.
	OnTrip func(trigger, detail string)
}

// DumpInfo describes one completed deep-dive dump.
type DumpInfo struct {
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"`
	Detail  string    `json:"detail,omitempty"`
	Path    string    `json:"path,omitempty"`
	Events  int       `json:"events"`
	Spans   int       `json:"spans"`
}

// Recorder owns the probe rings and the trigger/dump machinery. A nil
// *Recorder is valid: every method no-ops.
type Recorder struct {
	ringSize int
	maxRings int
	window   time.Duration
	cooldown time.Duration
	dir      string
	armed    map[string]bool // nil = all triggers armed
	logger   *obs.Logger
	base     time.Time // monotonic clock base shared by every ring
	baseWall int64

	frozen atomic.Bool
	tracer atomic.Pointer[obs.Tracer]
	onTrip atomic.Pointer[func(trigger, detail string)]

	cDropped *obs.Counter
	cTrips   *obs.Counter
	cDumps   *obs.Counter

	mu       sync.Mutex
	byName   map[string]*Ring // shared rings, by name
	rings    []*Ring          // every ring, shared and private
	lastTrip time.Time
	dumping  bool
	dumpSeq  int
	dumps    []DumpInfo
}

// NewRecorder builds a recorder from cfg, creating cfg.Dir when set.
func NewRecorder(cfg Config) (*Recorder, error) {
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	// Round up to a power of two so the cursor masks instead of mods.
	pow := 1
	for pow < size {
		pow <<= 1
	}
	maxRings := cfg.MaxRings
	if maxRings <= 0 {
		maxRings = 64
	}
	window := cfg.Window
	if window <= 0 {
		window = time.Second
	}
	cooldown := cfg.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("flightrec: dump dir: %w", err)
		}
	}
	var armed map[string]bool
	if len(cfg.DumpOn) > 0 {
		armed = make(map[string]bool, len(cfg.DumpOn))
		for _, t := range cfg.DumpOn {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			if t == "all" {
				armed = nil
				break
			}
			armed[t] = true
		}
	}
	now := time.Now()
	r := &Recorder{
		ringSize: pow,
		maxRings: maxRings,
		window:   window,
		cooldown: cooldown,
		dir:      cfg.Dir,
		armed:    armed,
		logger:   cfg.Logger,
		base:     now,
		baseWall: now.UnixNano(),
		byName:   make(map[string]*Ring),
	}
	r.tracer.Store(cfg.Tracer)
	if cfg.OnTrip != nil {
		fn := cfg.OnTrip
		r.onTrip.Store(&fn)
	}
	if cfg.Metrics != nil {
		r.cDropped = cfg.Metrics.Counter("flightrec_events_dropped_total")
		r.cTrips = cfg.Metrics.Counter("flightrec_trips_total")
		r.cDumps = cfg.Metrics.Counter("flightrec_dumps_total")
	}
	return r, nil
}

func (r *Recorder) newRingLocked(name string) *Ring {
	g := &Ring{
		name:     name,
		recs:     make([]record, r.ringSize),
		mask:     uint64(r.ringSize - 1),
		base:     r.base,
		baseWall: r.baseWall,
		frozen:   &r.frozen,
		dropped:  r.cDropped,
	}
	r.rings = append(r.rings, g)
	return g
}

// Ring returns the shared ring registered under name, creating it on
// first use. Concurrent writers are safe. Nil-safe: a nil recorder
// returns a nil ring.
func (r *Recorder) Ring(name string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.byName[name]; ok {
		return g
	}
	g := r.newRingLocked(name)
	r.byName[name] = g
	return g
}

// NewRing returns a private ring under name — the per-goroutine shape:
// one ring per workspace or codec means zero cursor contention. Past
// Config.MaxRings it degrades to the shared per-name ring. Nil-safe.
func (r *Recorder) NewRing(name string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if len(r.rings) < r.maxRings {
		g := r.newRingLocked(name)
		r.mu.Unlock()
		return g
	}
	r.mu.Unlock()
	return r.Ring(name)
}

// SetTracer replaces the span timeline merged into deep dives — used by
// harnesses (loadgen) that build a fresh tracer per measurement step.
// Nil-safe.
func (r *Recorder) SetTracer(t *obs.Tracer) {
	if r == nil {
		return
	}
	r.tracer.Store(t)
}

// SetOnTrip replaces the post-dump trip hook (nil clears it). The hook
// runs on the dump goroutine after the local dump lands, so it may block
// on network collection without stalling probe writers. Nil-safe.
func (r *Recorder) SetOnTrip(fn func(trigger, detail string)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.onTrip.Store(nil)
		return
	}
	r.onTrip.Store(&fn)
}

// Armed reports whether trigger would trip this recorder.
func (r *Recorder) Armed(trigger string) bool {
	if r == nil {
		return false
	}
	return r.armed == nil || r.armed[trigger]
}

// Frozen reports whether a dump snapshot is in progress.
func (r *Recorder) Frozen() bool {
	return r != nil && r.frozen.Load()
}

// Trip fires a trigger: if it is armed and the cooldown has expired the
// recorder freezes and a background goroutine snapshots the last window
// of events and writes the deep-dive file. Returns whether a dump was
// started. Safe to call from hot paths — the slow work is asynchronous.
func (r *Recorder) Trip(trigger, detail string) bool {
	if r == nil || !r.Armed(trigger) {
		return false
	}
	now := time.Now()
	r.mu.Lock()
	if r.dumping || (!r.lastTrip.IsZero() && now.Sub(r.lastTrip) < r.cooldown) {
		r.mu.Unlock()
		return false
	}
	r.dumping = true
	r.lastTrip = now
	r.dumpSeq++
	seq := r.dumpSeq
	r.mu.Unlock()

	r.cTrips.Inc()
	r.frozen.Store(true)
	r.logger.Warn("flightrec trip",
		obs.F("trigger", trigger), obs.F("detail", detail), obs.F("seq", seq))
	go r.dump(seq, trigger, detail)
	return true
}

// dump runs off the hot path: snapshot under freeze, write, thaw.
func (r *Recorder) dump(seq int, trigger, detail string) {
	// Probes that passed the frozen check just before the trip may still
	// be completing their stores; give them a beat before snapshotting.
	time.Sleep(time.Millisecond)
	events := r.Events(r.window)
	var spans []obs.Span
	if tr := r.tracer.Load(); tr != nil {
		spans = tr.Spans()
	}
	info := DumpInfo{Time: time.Now(), Trigger: trigger, Detail: detail, Events: len(events), Spans: len(spans)}
	if r.dir != "" {
		path := filepath.Join(r.dir, fmt.Sprintf("flightrec-%03d-%s.trace.json", seq, trigger))
		if err := writeDeepDiveFile(path, spans, events); err != nil {
			r.logger.Error("flightrec dump failed", obs.F("err", err.Error()), obs.F("path", path))
		} else {
			info.Path = path
			r.cDumps.Inc()
			r.logger.Info("flightrec deep-dive written", obs.F("path", path),
				obs.F("events", len(events)), obs.F("spans", len(spans)), obs.F("trigger", trigger))
		}
	} else {
		r.cDumps.Inc()
	}
	r.frozen.Store(false)
	// Run the trip hook (cross-host collection) before clearing dumping,
	// so Wait() covers it and concurrent trips stay suppressed while the
	// cluster collection is in flight.
	if fn := r.onTrip.Load(); fn != nil {
		(*fn)(trigger, detail)
	}
	r.mu.Lock()
	r.dumping = false
	r.dumps = append(r.dumps, info)
	r.mu.Unlock()
}

// Wait blocks until any in-flight dump has finished — binaries call it
// before exit so a trip near shutdown still lands its file. It polls the
// mutex-guarded dump state rather than a WaitGroup so it can race freely
// with new trips.
func (r *Recorder) Wait() {
	if r == nil {
		return
	}
	for {
		r.mu.Lock()
		dumping := r.dumping
		r.mu.Unlock()
		if !dumping {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Dumps returns the completed dump history, oldest first.
func (r *Recorder) Dumps() []DumpInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DumpInfo, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// active is the process-wide default recorder. Deep library code (HMM
// workspaces, codecs) acquires rings through it so recording needs no
// config plumbing: binaries Enable once at startup, before building the
// components they want probed.
var active atomic.Pointer[Recorder]

// Enable builds a recorder from cfg and installs it as the process
// default.
func Enable(cfg Config) (*Recorder, error) {
	r, err := NewRecorder(cfg)
	if err != nil {
		return nil, err
	}
	active.Store(r)
	return r, nil
}

// Disable uninstalls the process default recorder. Rings already handed
// out keep recording into the old recorder; new ring lookups return nil.
func Disable() {
	active.Store(nil)
}

// Active returns the process default recorder, or nil.
func Active() *Recorder { return active.Load() }

// Shared returns the default recorder's shared ring under name (nil
// when no recorder is installed).
func Shared(name string) *Ring { return Active().Ring(name) }

// Fresh returns a private single-writer ring from the default recorder
// (nil when no recorder is installed).
func Fresh(name string) *Ring { return Active().NewRing(name) }

// Trip fires a trigger on the default recorder.
func Trip(trigger, detail string) bool { return Active().Trip(trigger, detail) }

// EnableCLI installs the default recorder from the binaries' flag values:
// dir is -flight-record (empty = recording off, returns nil), dumpOn is
// the comma-separated -flight-dump-on trigger list ("" or "all" arms
// everything). Call it before constructing the components to be probed —
// rings are bound at component construction.
func EnableCLI(dir, dumpOn string, tracer *obs.Tracer, metrics *obs.Registry, logger *obs.Logger) (*Recorder, error) {
	if dir == "" {
		return nil, nil
	}
	var on []string
	if dumpOn != "" {
		on = strings.Split(dumpOn, ",")
	}
	return Enable(Config{Dir: dir, DumpOn: on, Tracer: tracer, Metrics: metrics, Logger: logger})
}
