package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation. Spans form trees through Parent; the DTM
// gives each TD job a root span whose children are the job's task queue /
// execute legs and the final merge + decode.
type Span struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`

	tr *Tracer
	// ended guards double-Finish; a plain int32 driven by the atomic
	// package so Span stays copyable (the tracer rings finished spans
	// by value).
	ended int32
}

// SpanID returns the span's ID, or 0 for a nil span — the value callers
// pass as a child's parent without nil checks.
func (s *Span) SpanID() int64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// SetAttr attaches a key/value to the span. No-op on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[k] = v
}

// Finish stamps the end time and records the span into its tracer's ring
// buffer. Safe on nil and idempotent.
func (s *Span) Finish() {
	if s == nil || s.tr == nil || !atomic.CompareAndSwapInt32(&s.ended, 0, 1) {
		return
	}
	s.End = s.tr.now()
	s.tr.record(*s)
}

// Tracer records finished spans into a fixed-capacity ring buffer; the
// newest spans win. A nil *Tracer is valid and disables tracing.
type Tracer struct {
	capacity int
	nextID   atomic.Int64
	// now is a test hook for deterministic timestamps.
	now func() time.Time

	mu    sync.Mutex
	ring  []Span
	next  int
	total int
}

// NewTracer creates a tracer keeping the most recent capacity spans
// (default 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{capacity: capacity, now: time.Now, ring: make([]Span, 0, capacity)}
}

type spanCtxKey struct{}

// StartSpan opens a span named name, linked under the span already in ctx
// (if any), and returns a context carrying the new span for further
// nesting. With a nil tracer it returns (ctx, nil) — and a nil span's
// methods all no-op.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := int64(0)
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		parent = p.ID
	}
	s := t.NewSpan(name, parent)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// NewSpan opens a span with an explicit parent ID (0 = root) for call
// sites without a context, e.g. the workqueue master linking task spans
// under a job span received over the wire. Nil-safe.
func (t *Tracer) NewSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:     t.nextID.Add(1),
		Parent: parent,
		Name:   name,
		Start:  t.now(),
		tr:     t,
	}
}

// record appends a finished span to the ring.
func (t *Tracer) record(s Span) {
	s.tr = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.capacity
	}
	t.total++
}

// Len reports how many spans are currently buffered (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total reports how many spans were ever recorded, including those the
// ring has evicted.
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the buffered spans ordered by start time. Safe on nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.ring))
	// Unroll the ring: oldest first.
	n := copy(out, t.ring[t.next:])
	copy(out[n:], t.ring[:t.next])
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// WriteJSON dumps the buffered spans as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	return enc.Encode(spans)
}

// chromeEvent is one Chrome trace_event "complete" (ph=X) record, the
// format chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // µs relative to first span
	Dur  int64             `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the buffered spans in Chrome trace_event
// format. Timestamps are microseconds relative to the earliest span so
// traces load near the origin. Each root span gets its own lane (tid);
// child spans share their parent's lane, which renders a TD job's
// submit → queue → execute → merge → decode legs as one row.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	// Resolve each span's lane: the root of its parent chain (parents
	// may have been evicted from the ring; fall back to the span ID).
	parentOf := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	lane := func(id int64) int64 {
		for hops := 0; hops < 64; hops++ {
			p, ok := parentOf[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "sstd",
			Ph:   "X",
			Ts:   s.Start.Sub(origin).Microseconds(),
			Dur:  s.End.Sub(s.Start).Microseconds(),
			Pid:  1,
			Tid:  lane(s.ID),
			Args: s.Attrs,
		})
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
