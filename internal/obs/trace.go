package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation. Spans form trees through Parent; the DTM
// gives each TD job a root span whose children are the job's task queue /
// execute legs and the final merge + decode.
type Span struct {
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Trace is the distributed trace ID this span belongs to. It is set on
	// root spans by NewTrace and propagated across process boundaries by
	// the workqueue wire protocol; empty for purely local spans.
	Trace string `json:"trace,omitempty"`
	// Proc names the process the span was measured in. Empty means this
	// process (the master); remote spans ingested from workers carry the
	// worker ID, which the Chrome export maps onto its own process lane.
	Proc   string            `json:"proc,omitempty"`
	Name   string            `json:"name"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`

	tr *Tracer
	// ended guards double-Finish; a plain int32 driven by the atomic
	// package so Span stays copyable (the tracer rings finished spans
	// by value).
	ended int32
}

// SpanID returns the span's ID, or 0 for a nil span — the value callers
// pass as a child's parent without nil checks.
func (s *Span) SpanID() int64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// TraceID returns the span's distributed trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.Trace
}

// SetTrace links the span into a distributed trace. No-op on nil.
func (s *Span) SetTrace(id string) {
	if s == nil {
		return
	}
	s.Trace = id
}

// SetAttr attaches a key/value to the span. No-op on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[k] = v
}

// Finish stamps the end time and records the span into its tracer's ring
// buffer. Safe on nil and idempotent.
func (s *Span) Finish() {
	if s == nil || s.tr == nil || !atomic.CompareAndSwapInt32(&s.ended, 0, 1) {
		return
	}
	s.End = s.tr.now()
	s.tr.record(*s)
}

// Tracer records finished spans into a fixed-capacity ring buffer; the
// newest spans win. A nil *Tracer is valid and disables tracing.
type Tracer struct {
	capacity int
	nextID   atomic.Int64
	// now is a test hook for deterministic timestamps.
	now func() time.Time

	mu      sync.Mutex
	ring    []Span
	next    int
	total   int
	dropped int
	// cDropped, when instrumented, exports overwrites as
	// obs_spans_dropped_total — ring overflow is otherwise silent.
	cDropped *Counter
}

// NewTracer creates a tracer keeping the most recent capacity spans
// (default 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{capacity: capacity, now: time.Now, ring: make([]Span, 0, capacity)}
}

type spanCtxKey struct{}

// StartSpan opens a span named name, linked under the span already in ctx
// (if any), and returns a context carrying the new span for further
// nesting. With a nil tracer it returns (ctx, nil) — and a nil span's
// methods all no-op.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := int64(0)
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		parent = p.ID
	}
	s := t.NewSpan(name, parent)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// NewSpan opens a span with an explicit parent ID (0 = root) for call
// sites without a context, e.g. the workqueue master linking task spans
// under a job span received over the wire. Nil-safe.
func (t *Tracer) NewSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:     t.nextID.Add(1),
		Parent: parent,
		Name:   name,
		Start:  t.now(),
		tr:     t,
	}
}

// traceNonce makes trace IDs unique across processes: two masters (or a
// master and a worker) minting IDs concurrently must not collide when
// their spans are merged into one timeline.
var traceNonce = func() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}()

// NewTrace opens a root span that starts a new distributed trace: the
// span carries a process-unique trace ID which child spans — local or
// remote, via the workqueue TraceContext — inherit. Nil-safe.
func (t *Tracer) NewTrace(name string) *Span {
	s := t.NewSpan(name, 0)
	if s != nil {
		s.Trace = fmt.Sprintf("%s-%d", traceNonce, s.ID)
	}
	return s
}

// NewSpanIn opens a span inside an existing distributed trace with an
// explicit parent ID. Nil-safe.
func (t *Tracer) NewSpanIn(trace, name string, parent int64) *Span {
	s := t.NewSpan(name, parent)
	s.SetTrace(trace)
	return s
}

// Ingest records an externally finished span — typically a worker-side
// stage span shipped over the wire, already offset-adjusted onto this
// process's clock. A zero ID is assigned a fresh one so ingested spans
// never collide with local spans; a non-positive duration is clamped.
// Nil-safe.
func (t *Tracer) Ingest(s Span) {
	if t == nil {
		return
	}
	if s.ID == 0 {
		s.ID = t.nextID.Add(1)
	}
	if s.End.Before(s.Start) {
		s.End = s.Start
	}
	t.record(s)
}

// record appends a finished span to the ring.
func (t *Tracer) record(s Span) {
	s.tr = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.capacity
		t.dropped++
		t.cDropped.Inc()
	}
	t.total++
}

// Instrument exports the tracer's overflow count to reg as
// obs_spans_dropped_total, so a ring quietly evicting spans shows up on
// the metrics endpoint. Counts dropped before instrumentation carry
// over. Nil-safe on both sides.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cDropped != nil {
		return
	}
	t.cDropped = reg.Counter("obs_spans_dropped_total")
	t.cDropped.Add(int64(t.dropped))
}

// Dropped reports how many spans the ring has overwritten (0 on nil).
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans are currently buffered (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total reports how many spans were ever recorded, including those the
// ring has evicted.
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the buffered spans ordered by start time. Safe on nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.ring))
	// Unroll the ring: oldest first.
	n := copy(out, t.ring[t.next:])
	copy(out[n:], t.ring[:t.next])
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// WriteJSON dumps the buffered spans as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	return enc.Encode(spans)
}

// chromeEvent is one Chrome trace_event "complete" (ph=X) record, the
// format chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // µs relative to first span
	Dur  int64             `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeMeta is a Chrome trace_event metadata record (ph=M), used to
// name the per-process lanes.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace exports the buffered spans in Chrome trace_event
// format. Timestamps are microseconds relative to the earliest span so
// traces load near the origin. Spans measured in this process render
// under pid 1 ("master"); remote spans ingested from workers render
// under one pid per worker, named by a process_name metadata record —
// so a distributed run shows queue wait, wire transit and the worker
// stage breakdown of one task on adjacent per-process lanes. Within a
// process, each root span gets its own lane (tid); child spans share
// their parent's lane, which renders a TD job's submit → queue →
// execute → merge → decode legs as one row.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	// Resolve each span's lane: the root of its parent chain (parents
	// may have been evicted from the ring; fall back to the span ID).
	parentOf := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	lane := func(id int64) int64 {
		for hops := 0; hops < 64; hops++ {
			p, ok := parentOf[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	// Assign one pid per remote process, in first-seen span order so the
	// export stays deterministic for a deterministic span sequence.
	pidOf := map[string]int{"": 1}
	var metas []chromeMeta
	for _, s := range spans {
		if _, ok := pidOf[s.Proc]; !ok {
			pidOf[s.Proc] = len(pidOf) + 1
			metas = append(metas, chromeMeta{
				Name: "process_name",
				Ph:   "M",
				Pid:  pidOf[s.Proc],
				Args: map[string]string{"name": "worker " + s.Proc},
			})
		}
	}
	if len(spans) > 0 {
		metas = append([]chromeMeta{{
			Name: "process_name",
			Ph:   "M",
			Pid:  1,
			Args: map[string]string{"name": "master"},
		}}, metas...)
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		attrs := s.Attrs
		if s.Trace != "" {
			attrs = make(map[string]string, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				attrs[k] = v
			}
			attrs["trace"] = s.Trace
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "sstd",
			Ph:   "X",
			Ts:   s.Start.Sub(origin).Microseconds(),
			Dur:  s.End.Sub(s.Start).Microseconds(),
			Pid:  pidOf[s.Proc],
			Tid:  lane(s.ID),
			Args: attrs,
		})
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	total := len(metas) + len(events)
	written := 0
	writeRecord := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		written++
		sep := ",\n"
		if written == total {
			sep = "\n"
		}
		_, err = fmt.Fprintf(w, "%s%s", b, sep)
		return err
	}
	for _, m := range metas {
		if err := writeRecord(m); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := writeRecord(ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteChromeTraceFile writes the Chrome trace_event export to path —
// the one-file artifact of a distributed run, loadable in
// chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
