package obs

import (
	"context"
	"testing"
)

// BenchmarkCounterInc is the acceptance benchmark: a hot-path increment
// must cost under ~50ns (it is one uncontended atomic add).
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncNil measures the telemetry-off cost: one nil check.
func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_ms", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkStartFinishSpan(b *testing.B) {
	tr := NewTracer(4096)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.Finish()
	}
}
