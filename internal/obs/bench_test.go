package obs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkCounterInc is the acceptance benchmark: a hot-path increment
// must cost under ~50ns (it is one uncontended atomic add).
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncNil measures the telemetry-off cost: one nil check.
func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_ms", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkStartFinishSpan(b *testing.B) {
	tr := NewTracer(4096)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.Finish()
	}
}

// BenchmarkLoggerInfo measures an emitted structured line: encode under
// the lock plus the ring append. io.Discard stands in for stderr.
func BenchmarkLoggerInfo(b *testing.B) {
	lg := NewLogger(io.Discard, LevelInfo, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Info("task assigned", WorkerID("w-1"), TaskID("t-42"), F("attempt", 1))
	}
}

// BenchmarkLoggerBelowLevel measures a filtered call — the logger-on,
// level-off hot path every Debug call in the master pays.
func BenchmarkLoggerBelowLevel(b *testing.B) {
	lg := NewLogger(io.Discard, LevelWarn, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Debug("task assigned", WorkerID("w-1"), TaskID("t-42"))
	}
}

// BenchmarkLoggerNil measures the telemetry-off cost: one nil check.
func BenchmarkLoggerNil(b *testing.B) {
	var lg *Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Info("task assigned", WorkerID("w-1"))
	}
}

// BenchmarkIngestRemoteSpan measures folding a worker's shipped span into
// the master's ring, the per-message cost of distributed tracing.
func BenchmarkIngestRemoteSpan(b *testing.B) {
	tr := NewTracer(4096)
	s := Span{Trace: "abc-1", Parent: 7, Name: "exec", Proc: "w-1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Ingest(s)
	}
}
