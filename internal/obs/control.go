package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// ControlSample is one job's slice of one PID sampling tick: the Eq. 9
// error and term decomposition, the actuated Local Control Knob (the
// job's priority share) and Global Control Knob (the pool size), and the
// WCET-model prediction the error was derived from (Eq. 10-12).
type ControlSample struct {
	// Seq numbers samples in record order; Tick groups the samples of
	// one controller step (all jobs sampled together share a tick).
	Seq  int       `json:"seq"`
	Tick int       `json:"tick"`
	Time time.Time `json:"time"`
	Job  string    `json:"job"`
	// Error is the PID input e(k); P, I and D are the gain-weighted term
	// contributions whose sum is Signal.
	Error  float64 `json:"error"`
	P      float64 `json:"p"`
	I      float64 `json:"i"`
	D      float64 `json:"d"`
	Signal float64 `json:"signal"`
	// LCK is the job's normalized priority after actuation; GCK is the
	// worker pool size after actuation.
	LCK float64 `json:"lck"`
	GCK int     `json:"gck"`
	// ExpectedFinishMs and DeadlineMs are the setpoint comparison of
	// Eq. 9 in milliseconds (DeadlineMs 0 = no deadline).
	ExpectedFinishMs float64 `json:"expectedFinishMs"`
	DeadlineMs       float64 `json:"deadlineMs"`
}

// WorkerSample is one worker's slice of one controller tick: the
// heartbeat-derived observation (EWMA exec time, task rate, liveness
// state, straggler flag) recorded next to the WCET-model per-task
// prediction (Eq. 10), so the observed and modeled per-worker throughput
// can be compared tick by tick.
type WorkerSample struct {
	Seq    int       `json:"seq"`
	Tick   int       `json:"tick"`
	Time   time.Time `json:"time"`
	Worker string    `json:"worker"`
	// State is the liveness state reported by the master's health
	// registry: alive, suspect or dead.
	State string `json:"state"`
	// TasksPerSec is the observed EWMA task completion rate.
	TasksPerSec float64 `json:"tasksPerSec"`
	// ObservedExecMs is the EWMA per-task execution time observed from
	// results; PredictedExecMs is the WCET model's ET_u = TI + D*theta1
	// for the current mean task size.
	ObservedExecMs  float64 `json:"observedExecMs"`
	PredictedExecMs float64 `json:"predictedExecMs"`
	// MeasuredTransferMs is the EWMA wire transfer time per task measured
	// by the master (task round trip minus worker-reported execution);
	// PredictedTransferMs is the Eq. 10 transfer budget — the TI term,
	// which the paper's model folds input/output transfer into. Comparing
	// the two validates the model's transfer assumption per worker.
	MeasuredTransferMs  float64 `json:"measuredTransferMs"`
	PredictedTransferMs float64 `json:"predictedTransferMs"`
	// ClockSkewMs is the master's RTT-based estimate of the worker
	// clock's offset from the master clock (used to align remote spans).
	ClockSkewMs float64 `json:"clockSkewMs"`
	Straggler   bool    `json:"straggler"`
}

// ControlRecorder accumulates the control-loop time series. A nil
// *ControlRecorder is valid and records nothing.
type ControlRecorder struct {
	mu       sync.Mutex
	samples  []ControlSample
	wsamples []WorkerSample
	max      int
	seq      int
	wseq     int
	tick     int
}

// NewControlRecorder creates a recorder keeping at most max samples
// (default 1<<20 when max <= 0); once full, the oldest samples are
// dropped in blocks so long experiments keep their tail.
func NewControlRecorder(max int) *ControlRecorder {
	if max <= 0 {
		max = 1 << 20
	}
	return &ControlRecorder{max: max}
}

// BeginTick starts a new controller step: samples recorded until the next
// BeginTick share a tick number. Nil-safe.
func (r *ControlRecorder) BeginTick() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tick++
	r.mu.Unlock()
}

// Record appends one sample, stamping Seq and the current Tick. Nil-safe.
func (r *ControlRecorder) Record(s ControlSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Seq = r.seq
	s.Tick = r.tick
	r.seq++
	if len(r.samples) >= r.max {
		// Drop the oldest quarter in one move rather than one-by-one.
		keep := r.max - r.max/4
		copy(r.samples, r.samples[len(r.samples)-keep:])
		r.samples = r.samples[:keep]
	}
	r.samples = append(r.samples, s)
}

// RecordWorker appends one per-worker observation, stamping Seq and the
// current Tick. Nil-safe. Worker samples share the tick numbering of
// Record so a tick's job and worker rows line up.
func (r *ControlRecorder) RecordWorker(s WorkerSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Seq = r.wseq
	s.Tick = r.tick
	r.wseq++
	if len(r.wsamples) >= r.max {
		keep := r.max - r.max/4
		copy(r.wsamples, r.wsamples[len(r.wsamples)-keep:])
		r.wsamples = r.wsamples[:keep]
	}
	r.wsamples = append(r.wsamples, s)
}

// WorkerSamples copies the recorded per-worker series. Safe on nil.
func (r *ControlRecorder) WorkerSamples() []WorkerSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]WorkerSample(nil), r.wsamples...)
}

// Len reports recorded samples (0 on nil).
func (r *ControlRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Samples copies the recorded series. Safe on nil.
func (r *ControlRecorder) Samples() []ControlSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ControlSample(nil), r.samples...)
}

// WriteJSON writes the series as a JSON array.
func (r *ControlRecorder) WriteJSON(w io.Writer) error {
	samples := r.Samples()
	if samples == nil {
		samples = []ControlSample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(samples)
}

// WriteFile writes the series to path, making experiment runs
// reproducible artifacts. Nil recorders write an empty series.
func (r *ControlRecorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Artifact is the payload of a -telemetry run file: the final metrics
// snapshot plus the full control-loop time series (job rows and the
// per-worker observed-vs-predicted rows), so one JSON file captures both
// what happened and how the Eq. 9 loop steered it.
type Artifact struct {
	Metrics RegistrySnapshot `json:"metrics"`
	Control []ControlSample  `json:"control"`
	Workers []WorkerSample   `json:"workers"`
}

// WriteArtifactFile writes an Artifact for reg and rec (either may be
// nil) to path.
func WriteArtifactFile(path string, reg *Registry, rec *ControlRecorder) error {
	art := Artifact{Metrics: reg.Snapshot(), Control: rec.Samples(), Workers: rec.WorkerSamples()}
	if art.Control == nil {
		art.Control = []ControlSample{}
	}
	if art.Workers == nil {
		art.Workers = []WorkerSample{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
