// Package slo tracks error budgets over the cluster's counters with
// multi-window burn-rate alerting (the Google SRE shape: an alert fires
// only when BOTH a fast and a slow window burn budget faster than the
// threshold, so a brief blip cannot page but a sustained burn fires
// within the fast window).
//
// An Objective maps onto the paper's deadline-hit-rate QoS: good =
// dtm_deadline_hit_total, bad = dtm_deadline_miss_total, target = the
// required hit rate. The engine samples the source registry on a tick,
// keeps a bounded window of (good, bad) readings, exports burn rates and
// alert state as metrics and structured log events, and trips the flight
// recorder's slo-burn trigger on each firing edge — which, on a cluster
// master, cascades into a cross-host flight-dump collection.
package slo

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Objective is one error budget: the fraction of bad events among
// good+bad must stay under 1-Target.
type Objective struct {
	// Name labels the exported metrics and log events.
	Name string `json:"name"`
	// Good and Bad are counter names in the source registry.
	Good string `json:"good"`
	Bad  string `json:"bad"`
	// Target is the success-ratio objective, e.g. 0.99 (default 0.99).
	Target float64 `json:"target"`
	// FastWindow/SlowWindow are the two burn-rate windows (defaults
	// 5m / 1h).
	FastWindow time.Duration `json:"fastWindow"`
	SlowWindow time.Duration `json:"slowWindow"`
	// BurnThreshold is the burn-rate multiple that fires the alert
	// (default 14.4 — burning a 30d budget in ~2 days).
	BurnThreshold float64 `json:"burnThreshold"`
}

func (o Objective) withDefaults() Objective {
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = 0.99
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = o.FastWindow
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 14.4
	}
	return o
}

// Status is one objective's current state, the /slo payload.
type Status struct {
	Objective
	// Good/Bad are the current cumulative counter readings.
	GoodTotal int64 `json:"goodTotal"`
	BadTotal  int64 `json:"badTotal"`
	// FastBurn/SlowBurn are the windowed burn rates: (bad fraction in
	// window) / (1 - target). 1.0 means burning exactly at budget.
	FastBurn float64 `json:"fastBurn"`
	SlowBurn float64 `json:"slowBurn"`
	// BudgetRemaining is the fraction of total error budget left over
	// the slow window (1 = untouched, <= 0 = exhausted).
	BudgetRemaining float64 `json:"budgetRemaining"`
	// Firing reports whether both windows exceed BurnThreshold.
	Firing bool `json:"firing"`
	// FiringSince is set while the alert is active (zero otherwise).
	FiringSince time.Time `json:"firingSince"`
	// Alerts counts firing edges since the engine started.
	Alerts int64 `json:"alerts"`
}

// Config parameterizes an Engine.
type Config struct {
	// Source is the registry the objectives' counters live in.
	Source *obs.Registry
	// Metrics, when set, receives the exported slo_* series (it may be
	// the same registry as Source).
	Metrics *obs.Registry
	// Logger, when set, gets a structured event per firing/resolve edge.
	Logger *obs.Logger
	// OnAlert, when set, runs on each firing edge. Defaults to tripping
	// the process flight recorder with TrigSLOBurn.
	OnAlert func(o Objective, s Status)
}

type sample struct {
	t         time.Time
	good, bad int64
}

type objectiveState struct {
	obj     Objective
	window  []sample
	firing  bool
	since   time.Time
	alerts  int64
	gFast   *obs.Gauge
	gSlow   *obs.Gauge
	gFiring *obs.Gauge
	gBudget *obs.Gauge
	cAlerts *obs.Counter
}

// Engine samples objectives on Tick and raises/clears burn-rate alerts.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	objs []*objectiveState
}

// New builds an engine over the given objectives.
func New(cfg Config, objectives ...Objective) *Engine {
	e := &Engine{cfg: cfg}
	for _, o := range objectives {
		o = o.withDefaults()
		st := &objectiveState{obj: o}
		if m := cfg.Metrics; m != nil {
			st.gFast = m.Gauge(obs.Label("slo_burn_rate_fast", "slo", o.Name))
			st.gSlow = m.Gauge(obs.Label("slo_burn_rate_slow", "slo", o.Name))
			st.gFiring = m.Gauge(obs.Label("slo_alert_firing", "slo", o.Name))
			st.gBudget = m.Gauge(obs.Label("slo_error_budget_remaining", "slo", o.Name))
			st.cAlerts = m.Counter(obs.Label("slo_alerts_total", "slo", o.Name))
		}
		st.gBudget.Set(1)
		e.objs = append(e.objs, st)
	}
	return e
}

// Tick samples the source counters once and updates burn rates and alert
// state. Call it on a steady cadence (Run does).
func (e *Engine) Tick(now time.Time) {
	if e == nil {
		return
	}
	type edge struct {
		obj Objective
		st  Status
	}
	var fired []edge
	e.mu.Lock()
	for _, st := range e.objs {
		good := e.cfg.Source.Counter(st.obj.Good).Value()
		bad := e.cfg.Source.Counter(st.obj.Bad).Value()
		st.window = append(st.window, sample{t: now, good: good, bad: bad})
		// Evict samples older than the slow window (keep one sample just
		// past the edge as the baseline for full-window deltas).
		cut := now.Add(-st.obj.SlowWindow)
		firstIn := 0
		for firstIn < len(st.window) && st.window[firstIn].t.Before(cut) {
			firstIn++
		}
		if firstIn > 1 {
			st.window = st.window[firstIn-1:]
		}

		fast := burnRate(st.window, now.Add(-st.obj.FastWindow), good, bad, st.obj.Target)
		slow := burnRate(st.window, cut, good, bad, st.obj.Target)
		st.gFast.Set(fast)
		st.gSlow.Set(slow)
		st.gBudget.Set(1 - slow*windowFraction(st.window, now, st.obj.SlowWindow))

		firing := fast >= st.obj.BurnThreshold && slow >= st.obj.BurnThreshold
		if firing && !st.firing {
			st.firing = true
			st.since = now
			st.alerts++
			st.cAlerts.Inc()
			st.gFiring.Set(1)
			e.cfg.Logger.Warn("slo burn-rate alert firing",
				obs.F("slo", st.obj.Name),
				obs.F("fast_burn", fast), obs.F("slow_burn", slow),
				obs.F("threshold", st.obj.BurnThreshold),
				obs.F("good", good), obs.F("bad", bad))
			fired = append(fired, edge{obj: st.obj, st: e.statusLocked(st, good, bad, fast, slow)})
		} else if !firing && st.firing {
			st.firing = false
			st.since = time.Time{}
			st.gFiring.Set(0)
			e.cfg.Logger.Info("slo burn-rate alert resolved",
				obs.F("slo", st.obj.Name),
				obs.F("fast_burn", fast), obs.F("slow_burn", slow))
		}
	}
	e.mu.Unlock()
	for _, f := range fired {
		if e.cfg.OnAlert != nil {
			e.cfg.OnAlert(f.obj, f.st)
		} else {
			flightrec.Trip(flightrec.TrigSLOBurn,
				"slo "+f.obj.Name+" burning > threshold in both windows")
		}
	}
}

// burnRate computes (bad fraction of events inside the window) divided
// by the budget (1-target). Returns 0 when the window saw no events.
func burnRate(window []sample, cut time.Time, good, bad int64, target float64) float64 {
	base := window[0]
	for _, s := range window {
		if !s.t.Before(cut) {
			break
		}
		base = s
	}
	dGood, dBad := good-base.good, bad-base.bad
	if dGood+dBad <= 0 || dBad <= 0 {
		return 0
	}
	frac := float64(dBad) / float64(dGood+dBad)
	return frac / (1 - target)
}

// windowFraction is how much of the slow window the retained samples
// actually cover, so budget-remaining doesn't overstate burn early on.
func windowFraction(window []sample, now time.Time, slow time.Duration) float64 {
	if len(window) == 0 || slow <= 0 {
		return 0
	}
	covered := now.Sub(window[0].t)
	if covered > slow {
		covered = slow
	}
	return float64(covered) / float64(slow)
}

func (e *Engine) statusLocked(st *objectiveState, good, bad int64, fast, slow float64) Status {
	return Status{
		Objective: st.obj,
		GoodTotal: good, BadTotal: bad,
		FastBurn: fast, SlowBurn: slow,
		BudgetRemaining: st.gBudget.Value(),
		Firing:          st.firing,
		FiringSince:     st.since,
		Alerts:          st.alerts,
	}
}

// Status reports every objective's current state.
func (e *Engine) Status() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.objs))
	for _, st := range e.objs {
		good, bad := int64(0), int64(0)
		if n := len(st.window); n > 0 {
			good, bad = st.window[n-1].good, st.window[n-1].bad
		}
		out = append(out, e.statusLocked(st, good, bad, st.gFast.Value(), st.gSlow.Value()))
	}
	return out
}

// Run ticks the engine on the given cadence until ctx is done. Nil-safe.
func (e *Engine) Run(done <-chan struct{}, every time.Duration) {
	if e == nil {
		return
	}
	if every <= 0 {
		every = 10 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			e.Tick(now)
		}
	}
}

// Handler serves the engine's status as JSON — mount under /slo.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := e.Status()
		if st == nil {
			st = []Status{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
