package slo

import (
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

var t0 = time.Unix(1_700_000_000, 0)

func newTestEngine(t *testing.T, onAlert func(Objective, Status)) (*Engine, *obs.Registry, *obs.Registry) {
	t.Helper()
	src := obs.NewRegistry()
	metrics := obs.NewRegistry()
	e := New(Config{Source: src, Metrics: metrics, OnAlert: onAlert}, Objective{
		Name: "deadline", Good: "hit_total", Bad: "miss_total",
		Target: 0.9, FastWindow: 10 * time.Second, SlowWindow: 60 * time.Second,
		BurnThreshold: 2,
	})
	return e, src, metrics
}

func TestAlertFiresOnlyWhenBothWindowsBurn(t *testing.T) {
	var alerts atomic.Int64
	e, src, metrics := newTestEngine(t, func(o Objective, s Status) {
		if o.Name != "deadline" || !s.Firing {
			t.Errorf("alert payload = %+v", s)
		}
		alerts.Add(1)
	})
	hit, miss := src.Counter("hit_total"), src.Counter("miss_total")

	// Healthy traffic: all hits, no alert.
	now := t0
	for i := 0; i < 5; i++ {
		hit.Add(10)
		e.Tick(now)
		now = now.Add(time.Second)
	}
	if s := e.Status()[0]; s.Firing || s.FastBurn != 0 {
		t.Fatalf("healthy status = %+v", s)
	}

	// Sustained 50% miss rate: burn = 0.5/0.1 = 5 >= 2 in both windows.
	for i := 0; i < 5; i++ {
		hit.Add(5)
		miss.Add(5)
		e.Tick(now)
		now = now.Add(time.Second)
	}
	s := e.Status()[0]
	if !s.Firing || s.Alerts != 1 {
		t.Fatalf("burning status = %+v", s)
	}
	if alerts.Load() != 1 {
		t.Fatalf("OnAlert ran %d times, want 1 (edge-triggered)", alerts.Load())
	}
	if g := metrics.Gauge(obs.Label("slo_alert_firing", "slo", "deadline")).Value(); g != 1 {
		t.Errorf("slo_alert_firing = %v, want 1", g)
	}
	if v := metrics.Counter(obs.Label("slo_alerts_total", "slo", "deadline")).Value(); v != 1 {
		t.Errorf("slo_alerts_total = %d, want 1", v)
	}

	// Keep burning: still one alert (no re-fire while active).
	miss.Add(5)
	e.Tick(now)
	if alerts.Load() != 1 {
		t.Errorf("alert re-fired while active: %d", alerts.Load())
	}

	// Recovery: the fast window drains past the misses, alert resolves.
	now = now.Add(11 * time.Second) // past FastWindow
	for i := 0; i < 12; i++ {
		hit.Add(100)
		e.Tick(now)
		now = now.Add(time.Second)
	}
	s = e.Status()[0]
	if s.Firing {
		t.Fatalf("alert did not resolve: %+v", s)
	}
	if g := metrics.Gauge(obs.Label("slo_alert_firing", "slo", "deadline")).Value(); g != 0 {
		t.Errorf("slo_alert_firing after resolve = %v", g)
	}
}

func TestBriefBlipDoesNotFire(t *testing.T) {
	var alerts atomic.Int64
	e, src, _ := newTestEngine(t, func(Objective, Status) { alerts.Add(1) })
	hit, miss := src.Counter("hit_total"), src.Counter("miss_total")

	// Long healthy history fills the slow window.
	now := t0
	for i := 0; i < 50; i++ {
		hit.Add(100)
		e.Tick(now)
		now = now.Add(time.Second)
	}
	// One second of pure misses: fast window burns, slow window does not
	// (50*100 hits vs 10 misses over the slow window).
	miss.Add(10)
	e.Tick(now)
	s := e.Status()[0]
	if s.Firing || alerts.Load() != 0 {
		t.Fatalf("blip fired the alert: %+v", s)
	}
	if s.FastBurn < s.SlowBurn {
		t.Errorf("fast burn %v should exceed slow burn %v on a fresh blip", s.FastBurn, s.SlowBurn)
	}
}

func TestDefaultOnAlertTripsFlightRecorder(t *testing.T) {
	// No OnAlert: Tick must not panic with no global recorder enabled.
	src := obs.NewRegistry()
	e := New(Config{Source: src}, Objective{
		Name: "x", Good: "g", Bad: "b", Target: 0.5,
		FastWindow: time.Second, SlowWindow: time.Second, BurnThreshold: 0.1,
	})
	e.Tick(t0) // baseline
	src.Counter("b").Add(100)
	e.Tick(t0.Add(time.Second))
	if !e.Status()[0].Firing {
		t.Fatal("objective should be firing")
	}
}

func TestWindowEviction(t *testing.T) {
	e, src, _ := newTestEngine(t, func(Objective, Status) {})
	hit := src.Counter("hit_total")
	now := t0
	for i := 0; i < 1000; i++ {
		hit.Inc()
		e.Tick(now)
		now = now.Add(time.Second)
	}
	e.mu.Lock()
	n := len(e.objs[0].window)
	e.mu.Unlock()
	// SlowWindow is 60s at a 1s cadence: ~61 samples retained, not 1000.
	if n > 70 {
		t.Errorf("window grew to %d samples, want bounded by slow window", n)
	}
}

func TestHandlerServesStatus(t *testing.T) {
	e, src, _ := newTestEngine(t, func(Objective, Status) {})
	src.Counter("hit_total").Add(5)
	e.Tick(t0)
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var out []Status
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out) != 1 {
		t.Fatalf("handler: err=%v body=%s", err, rec.Body.String())
	}
	if out[0].Name != "deadline" || out[0].GoodTotal != 5 {
		t.Errorf("status = %+v", out[0])
	}
	post := httptest.NewRecorder()
	e.Handler().ServeHTTP(post, httptest.NewRequest("POST", "/slo", nil))
	if post.Code != 405 {
		t.Errorf("POST: code=%d", post.Code)
	}
}
