package obs

import "sync"

// TelemetryShip is a delta-encoded snapshot of a Registry, sized to
// piggyback on the heartbeat cadence: counters travel as increments since
// the previous ship, histograms as per-bucket count deltas, and gauges as
// last-value (only when changed). The first ship from a Shipper — and any
// ship after an encoder reset — carries Full=true with absolute values so
// a receiver can resynchronize after a reconnect without negotiating.
type TelemetryShip struct {
	// Seq increments per ship from one Shipper; a receiver seeing a gap
	// knows intermediate deltas were lost and only Full ships resync it.
	Seq  int64 `json:"seq"`
	Full bool  `json:"full,omitempty"`
	// Counters holds per-counter increments (absolute values when Full).
	// Zero deltas are omitted.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds last-value samples for gauges that changed since the
	// previous ship (all gauges when Full).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Hists holds histogram growth since the previous ship. Unchanged
	// histograms are omitted.
	Hists map[string]HistogramDelta `json:"hists,omitempty"`
}

// HistogramDelta is the growth of one cumulative histogram between two
// ships. Bounds are present only when Full or when the bucket layout
// changed (a receiver must then reset its cumulative state for the
// series); Counts always includes the trailing +Inf bucket.
type HistogramDelta struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Empty reports whether the ship carries no samples at all.
func (t *TelemetryShip) Empty() bool {
	return t == nil || (len(t.Counters) == 0 && len(t.Gauges) == 0 && len(t.Hists) == 0)
}

// Shipper diff-encodes successive snapshots of one registry. Safe for
// concurrent use; a nil *Shipper ships nothing.
type Shipper struct {
	mu   sync.Mutex
	reg  *Registry
	seq  int64
	prev RegistrySnapshot
	sent bool
}

// NewShipper creates a delta encoder over reg. Returns nil when reg is
// nil, which every method tolerates.
func NewShipper(reg *Registry) *Shipper {
	if reg == nil {
		return nil
	}
	return &Shipper{reg: reg}
}

// Ship snapshots the registry and encodes the change since the previous
// call. The first call returns a Full ship with absolute values. Returns
// nil on a nil receiver; otherwise always returns a ship (possibly with
// no samples) so the sequence number advances with the cadence.
func (s *Shipper) Ship() *TelemetryShip {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.reg.Snapshot()
	s.seq++
	t := &TelemetryShip{Seq: s.seq, Full: !s.sent}
	if t.Full {
		t.Counters = cur.Counters
		t.Gauges = cur.Gauges
		t.Hists = make(map[string]HistogramDelta, len(cur.Histograms))
		for name, h := range cur.Histograms {
			t.Hists[name] = HistogramDelta{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count, Sum: h.Sum}
		}
		s.prev, s.sent = cur, true
		return t
	}
	for name, v := range cur.Counters {
		if d := v - s.prev.Counters[name]; d != 0 {
			if t.Counters == nil {
				t.Counters = make(map[string]int64)
			}
			t.Counters[name] = d
		}
	}
	for name, v := range cur.Gauges {
		if pv, ok := s.prev.Gauges[name]; !ok || pv != v {
			if t.Gauges == nil {
				t.Gauges = make(map[string]float64)
			}
			t.Gauges[name] = v
		}
	}
	for name, h := range cur.Histograms {
		prev, known := s.prev.Histograms[name]
		if known && !sameBounds(prev.Bounds, h.Bounds) {
			known = false // layout changed: resend as absolute
		}
		if known && h.Count == prev.Count && h.Sum == prev.Sum {
			continue
		}
		d := HistogramDelta{Counts: make([]int64, len(h.Counts))}
		if !known {
			d.Bounds = h.Bounds
			copy(d.Counts, h.Counts)
			d.Count, d.Sum = h.Count, h.Sum
		} else {
			for i := range h.Counts {
				d.Counts[i] = h.Counts[i] - prev.Counts[i]
			}
			d.Count = h.Count - prev.Count
			d.Sum = h.Sum - prev.Sum
		}
		if t.Hists == nil {
			t.Hists = make(map[string]HistogramDelta)
		}
		t.Hists[name] = d
	}
	s.prev = cur
	return t
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
