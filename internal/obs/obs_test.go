package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterParallelIncrements is the acceptance stress test: N goroutines
// hammering shared counters, gauges and histograms must lose no updates
// (run under -race).
func TestCounterParallelIncrements(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		perG       = 10000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("stress_total")
			g := reg.Gauge("stress_gauge")
			h := reg.Histogram("stress_ms", nil)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 100))
			}
		}()
	}
	wg.Wait()

	want := int64(goroutines * perG)
	if got := reg.Counter("stress_total").Value(); got != want {
		t.Errorf("counter lost updates: got %d want %d", got, want)
	}
	if got := reg.Gauge("stress_gauge").Value(); got != float64(want) {
		t.Errorf("gauge lost adds: got %v want %v", got, want)
	}
	h := reg.Histogram("stress_ms", nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram lost observations: got %d want %d", got, want)
	}
	// Each goroutine observes 0..99 repeated; the sum is exact.
	wantSum := float64(goroutines) * float64(perG/100) * (99 * 100 / 2)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum drifted: got %v want %v", got, wantSum)
	}
}

// TestConcurrentRegistryAccess races metric creation against snapshotting.
func TestConcurrentRegistryAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for j := 0; j < 1000; j++ {
				reg.Counter(names[j%len(names)]).Inc()
				reg.Gauge(names[j%len(names)]).Set(float64(j))
				reg.Histogram(names[j%len(names)], nil).Observe(float64(j))
				if j%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["a"]+snap.Counters["b"]+snap.Counters["c"]+snap.Counters["d"] != 8000 {
		t.Errorf("counters sum to %d, want 8000", snap.Counters["a"]+snap.Counters["b"]+snap.Counters["c"]+snap.Counters["d"])
	}
}

// TestNilSafety: every handle from a nil registry and every nil sink must
// be inert, not a panic.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetInt(2)
	g.Add(3)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metric handles must read as zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var tr *Tracer
	ctx, span := tr.StartSpan(nil, "x") //nolint:staticcheck // nil ctx exercised deliberately
	if span != nil {
		t.Error("nil tracer must hand out nil spans")
	}
	_ = ctx
	span.SetAttr("k", "v")
	span.Finish()
	if span.SpanID() != 0 {
		t.Error("nil span ID must be 0")
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Spans() != nil {
		t.Error("nil tracer must be empty")
	}

	var rec *ControlRecorder
	rec.BeginTick()
	rec.Record(ControlSample{Job: "j"})
	if rec.Len() != 0 || rec.Samples() != nil {
		t.Error("nil recorder must record nothing")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 1 {
		t.Errorf("p50 = %v, want within (0, 1]", p50)
	}
	// Push the tail into the overflow bucket.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if p99 := h.Quantile(0.99); p99 != 8 {
		t.Errorf("overflow p99 = %v, want highest finite bound 8", p99)
	}
	if h.Count() != 200 {
		t.Errorf("count = %d, want 200", h.Count())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	h.Observe(10) // on-bound lands in bucket 0 (v <= bound)
	h.Observe(15)
	h.Observe(25) // overflow
	s := h.Snapshot()
	want := []int64{1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("got %v want 7", g.Value())
	}
	g.Add(-2.5)
	if g.Value() != 4.5 {
		t.Fatalf("got %v want 4.5", g.Value())
	}
}

// TestRegistryReturnsSameHandle: repeated lookups must hit the same metric.
func TestRegistryReturnsSameHandle(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("counter handles differ across lookups")
	}
	if reg.Histogram("h", []float64{1}) != reg.Histogram("h", []float64{99}) {
		t.Error("histogram handles differ across lookups (bounds fixed on first use)")
	}
}
