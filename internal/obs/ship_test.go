package obs

import (
	"fmt"
	"testing"
)

func TestShipperFirstShipIsFull(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []float64{1, 10}).Observe(5)

	s := NewShipper(reg)
	ship := s.Ship()
	if ship == nil || !ship.Full || ship.Seq != 1 {
		t.Fatalf("first ship = %+v, want Full seq=1", ship)
	}
	if ship.Counters["c"] != 3 || ship.Gauges["g"] != 1.5 {
		t.Errorf("full ship values wrong: %+v", ship)
	}
	h := ship.Hists["h"]
	if len(h.Bounds) != 2 || h.Count != 1 || h.Sum != 5 {
		t.Errorf("full hist delta = %+v", h)
	}
}

func TestShipperDeltasSkipUnchanged(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	idle := reg.Counter("idle")
	g := reg.Gauge("g")
	h := reg.Histogram("h", []float64{1, 10})
	c.Add(2)
	idle.Add(7)
	g.Set(1)
	h.Observe(0.5)

	s := NewShipper(reg)
	s.Ship() // full baseline

	c.Add(5)
	h.Observe(5)
	h.Observe(50)
	ship := s.Ship()
	if ship.Full || ship.Seq != 2 {
		t.Fatalf("second ship = %+v, want delta seq=2", ship)
	}
	if ship.Counters["c"] != 5 {
		t.Errorf("counter delta = %d, want 5", ship.Counters["c"])
	}
	if _, ok := ship.Counters["idle"]; ok {
		t.Errorf("unchanged counter shipped: %+v", ship.Counters)
	}
	if _, ok := ship.Gauges["g"]; ok {
		t.Errorf("unchanged gauge shipped: %+v", ship.Gauges)
	}
	hd, ok := ship.Hists["h"]
	if !ok || hd.Bounds != nil {
		t.Fatalf("hist delta = %+v, want bounds omitted on delta", hd)
	}
	if hd.Count != 2 || hd.Sum != 55 {
		t.Errorf("hist delta count=%d sum=%v, want 2, 55", hd.Count, hd.Sum)
	}
	// Bucket deltas: one in (1,10], one in +Inf.
	if hd.Counts[1] != 1 || hd.Counts[2] != 1 || hd.Counts[0] != 0 {
		t.Errorf("bucket deltas = %v", hd.Counts)
	}

	// Nothing changed: the ship still advances Seq but carries no samples.
	ship = s.Ship()
	if !ship.Empty() || ship.Seq != 3 {
		t.Errorf("idle ship = %+v, want empty seq=3", ship)
	}
}

func TestShipperNewSeriesAfterBaseline(t *testing.T) {
	reg := NewRegistry()
	s := NewShipper(reg)
	s.Ship()
	reg.Counter("late").Add(4)
	reg.Histogram("lateh", []float64{1}).Observe(2)
	ship := s.Ship()
	if ship.Counters["late"] != 4 {
		t.Errorf("late counter delta = %+v", ship.Counters)
	}
	hd := ship.Hists["lateh"]
	if len(hd.Bounds) != 1 || hd.Count != 1 || hd.Sum != 2 {
		t.Errorf("late hist should carry bounds and absolutes: %+v", hd)
	}
}

func TestShipperNil(t *testing.T) {
	var s *Shipper
	if s.Ship() != nil {
		t.Error("nil shipper should ship nil")
	}
	if NewShipper(nil) != nil {
		t.Error("NewShipper(nil) should be nil")
	}
	var ship *TelemetryShip
	if !ship.Empty() {
		t.Error("nil ship should be Empty")
	}
}

func BenchmarkTelemetryShipEncode(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
		reg.Gauge(fmt.Sprintf("g%d", i)).Set(float64(i))
		reg.Histogram(fmt.Sprintf("h%d", i), nil).Observe(float64(i))
	}
	s := NewShipper(reg)
	s.Ship()
	hot := reg.Counter("c0")
	h := reg.Histogram("h0", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hot.Inc()
		h.Observe(1)
		if s.Ship() == nil {
			b.Fatal("nil ship")
		}
	}
}
