package obs

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promSampleLine matches one well-formed exposition sample (or TYPE
// header); every line WritePrometheus emits must satisfy it even when
// label values are hostile.
var promSampleLine = regexp.MustCompile(`^(# TYPE [a-zA-Z0-9_:]+ (counter|gauge|histogram)|[a-zA-Z0-9_:]+(\{[a-zA-Z0-9_]+="(\\.|[^"\\])*"(,[a-zA-Z0-9_]+="(\\.|[^"\\])*")*\})? \S+)$`)

func TestPrometheusEscapesHostileLabelValues(t *testing.T) {
	cases := []struct {
		name   string
		worker string // hostile worker ID embedded raw (unescaped) in the label
	}{
		{"backslash", `dir\worker`},
		{"quote", `w"1`},
		{"newline", "line\nbreak"},
		{"injection", "evil\"} 1\nfake_metric_injected 2\nx{worker=\""},
		{"mixed", "a\\\"b\nc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			// Unsafely concatenated name — the exporter must neutralize it.
			reg.Counter(`wq_worker_tasks_total{worker="` + tc.worker + `"}`).Add(1)
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
			if len(lines) != 2 { // TYPE header + exactly one sample
				t.Fatalf("want 2 lines, got %d:\n%s", len(lines), out)
			}
			for _, line := range lines {
				if !promSampleLine.MatchString(line) {
					t.Errorf("malformed exposition line %q", line)
				}
			}
			if strings.Contains(out, "fake_metric_injected 2") {
				t.Errorf("label value injected a fake sample:\n%s", out)
			}
		})
	}
}

func TestLabelEscapes(t *testing.T) {
	got := Label("wq_worker_tasks_total", "worker", "a\"b\\c\nd")
	want := `wq_worker_tasks_total{worker="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
	// Round trip: promName must keep a properly escaped block unchanged.
	_, labels := promName(got)
	if labels != `worker="a\"b\\c\nd"` {
		t.Errorf("promName round trip = %q", labels)
	}
}

func TestLogsEndpointBounds(t *testing.T) {
	lg := NewLogger(nil, LevelDebug, 64)
	for i := 0; i < 30; i++ {
		lg.Debug("dbg")
		lg.Info("inf")
	}
	lg.Warn("warned")
	h := Handler(nil, nil, lg)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	count := func(rec *httptest.ResponseRecorder) int {
		return strings.Count(rec.Body.String(), `"msg"`)
	}

	if got := count(get("/logs?limit=5")); got != 5 {
		t.Errorf("limit=5 returned %d entries", got)
	}
	if got := count(get("/logs?level=warn")); got != 1 {
		t.Errorf("level=warn returned %d entries, want 1", got)
	}
	if got := count(get("/logs?level=info")); got != 31 {
		t.Errorf("level=info returned %d entries, want 31", got)
	}
	// A limit above the cap is clamped, not honored.
	if got := count(get("/logs?limit=999999")); got != 61 {
		t.Errorf("clamped limit returned %d entries, want all 61", got)
	}
	if rec := get("/logs?since=banana"); rec.Code != 400 {
		t.Errorf("bad since: code=%d, want 400", rec.Code)
	}
	if got := count(get("/logs?since=1h")); got != 61 {
		t.Errorf("since=1h returned %d entries, want 61", got)
	}
	if got := count(get("/logs?since=" + time.Now().Add(time.Hour).Format(time.RFC3339))); got != 0 {
		t.Errorf("future since returned %d entries, want 0", got)
	}
}
