package obs

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
)

// Error return traces, after bracesdev/errtrace: where a stack trace
// records the code path that *created* an error, a return trace records
// the path the error took to reach whoever finally reports it. The two
// diverge in this codebase whenever an error crosses a goroutine or the
// wire — a worker's exec failure surfaces on the master's collector
// goroutine, where a stack trace would show only channel plumbing.
//
// Each Wrap call captures exactly one program counter (no full stack
// unwind), so instrumenting a return boundary costs nanoseconds; frames
// are resolved to function/file/line only when a trace is formatted,
// i.e. when something actually failed.

// returnTraced carries one return-boundary frame on top of err. Wrapping
// an already-traced error adds a new node rather than mutating the old
// one, so an error value shared across goroutines stays race-free.
type returnTraced struct {
	err error
	pc  uintptr
}

func (e *returnTraced) Error() string { return e.err.Error() }

// Unwrap keeps errors.Is / errors.As transparent through the trace node.
func (e *returnTraced) Unwrap() error { return e.err }

// Wrap annotates err with the caller's frame, appending one hop to the
// error's return trace. Call it at each return boundary the error
// crosses; nil stays nil so `return obs.Wrap(err)` works on every path.
func Wrap(err error) error {
	if err == nil {
		return nil
	}
	var pcs [1]uintptr
	if runtime.Callers(2, pcs[:]) == 0 {
		return err
	}
	return &returnTraced{err: err, pc: pcs[0]}
}

// ReturnTrace resolves err's return trace to human-readable frames,
// origin first — the order the error travelled. Errors never passed
// through Wrap yield nil.
func ReturnTrace(err error) []string {
	var pcs []uintptr
	for e := err; e != nil; e = errors.Unwrap(e) {
		if te, ok := e.(*returnTraced); ok {
			pcs = append(pcs, te.pc)
		}
	}
	if len(pcs) == 0 {
		return nil
	}
	// The unwrap walk visits the outermost (latest) Wrap first; the trace
	// reads origin -> surface, so reverse before resolving.
	for i, j := 0, len(pcs)-1; i < j; i, j = i+1, j-1 {
		pcs[i], pcs[j] = pcs[j], pcs[i]
	}
	out := make([]string, 0, len(pcs))
	for _, pc := range pcs {
		// Resolve each PC on its own and keep only the innermost logical
		// frame: one frame per Wrap, regardless of inlining, so trace
		// length equals hop count deterministically.
		f, _ := runtime.CallersFrames([]uintptr{pc}).Next()
		if f.Function != "" {
			out = append(out, fmt.Sprintf("%s (%s:%d)", f.Function, shortFile(f.File), f.Line))
		}
	}
	return out
}

// ReturnTraceString renders the return trace as a single line,
// origin-first hops joined by " -> " — the compact form carried on the
// wire in Result.ErrTrace and attached to trace spans. Empty for
// untraced errors.
func ReturnTraceString(err error) string {
	return strings.Join(ReturnTrace(err), " -> ")
}

// ErrTrace tags a log entry with err's return trace under "err_trace"
// (skipped for nil or untraced errors), alongside Err's "error" field.
func ErrTrace(err error) Field {
	frames := ReturnTrace(err)
	if len(frames) == 0 {
		return Field{}
	}
	return Field{Key: "err_trace", Value: frames}
}

// shortFile keeps the last two path components, enough to identify a
// file in this repo without dragging the build host's GOPATH into logs.
func shortFile(path string) string {
	short := path
	for i, sep := len(path)-1, 0; i >= 0; i-- {
		if path[i] == '/' {
			sep++
			if sep == 2 {
				short = path[i+1:]
				break
			}
		}
	}
	return short
}
