package obs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestWrapNil(t *testing.T) {
	if Wrap(nil) != nil {
		t.Fatal("Wrap(nil) must stay nil")
	}
	if got := ReturnTrace(nil); got != nil {
		t.Fatalf("ReturnTrace(nil) = %v, want nil", got)
	}
	if got := ReturnTraceString(errors.New("plain")); got != "" {
		t.Fatalf("untraced error rendered %q, want empty", got)
	}
}

var errSentinel = errors.New("boom")

func origin() error { return Wrap(errSentinel) }

func middle() error { return Wrap(origin()) }

func surface() error { return Wrap(middle()) }

func TestReturnTraceOrder(t *testing.T) {
	err := surface()
	frames := ReturnTrace(err)
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3: %v", len(frames), frames)
	}
	for i, fn := range []string{"origin", "middle", "surface"} {
		if !strings.Contains(frames[i], fn) {
			t.Errorf("frame %d = %q, want it to contain %q (origin-first order)", i, frames[i], fn)
		}
		if !strings.Contains(frames[i], "errtrace_test.go:") {
			t.Errorf("frame %d = %q, want file:line", i, frames[i])
		}
	}
	if s := ReturnTraceString(err); strings.Count(s, " -> ") != 2 {
		t.Errorf("ReturnTraceString = %q, want 3 hops joined by ' -> '", s)
	}
}

func TestWrapTransparentToIsAndAs(t *testing.T) {
	err := surface()
	if !errors.Is(err, errSentinel) {
		t.Error("errors.Is must see through return-trace nodes")
	}
	wrapped := Wrap(fmt.Errorf("outer: %w", &testTypedErr{code: 7}))
	var typed *testTypedErr
	if !errors.As(wrapped, &typed) || typed.code != 7 {
		t.Error("errors.As must see through return-trace nodes")
	}
	if wrapped.Error() != "outer: typed 7" {
		t.Errorf("Error() = %q: Wrap must not change the message", wrapped.Error())
	}
}

type testTypedErr struct{ code int }

func (e *testTypedErr) Error() string { return fmt.Sprintf("typed %d", e.code) }

func TestReturnTraceAcrossGoroutines(t *testing.T) {
	// The errtrace selling point: the error is created on one goroutine,
	// transported over a channel, and wrapped again on the receiver — the
	// return trace spans both, where a stack trace would show only the
	// receiving goroutine's channel plumbing.
	ch := make(chan error, 1)
	go func() { ch <- origin() }()
	err := Wrap(<-ch)
	frames := ReturnTrace(err)
	// Two wraps; inlining may expand a PC into extra logical frames.
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want >= 2: %v", len(frames), frames)
	}
	if !strings.Contains(frames[0], "origin") {
		t.Errorf("first frame %q should be the sender-side origin", frames[0])
	}
	if !strings.Contains(frames[len(frames)-1], "TestReturnTraceAcrossGoroutines") {
		t.Errorf("last frame %q should be the receiver-side wrap", frames[len(frames)-1])
	}
}

func TestErrTraceField(t *testing.T) {
	if f := ErrTrace(nil); f.Key != "" {
		t.Errorf("ErrTrace(nil) = %+v, want empty field", f)
	}
	if f := ErrTrace(errors.New("plain")); f.Key != "" {
		t.Errorf("ErrTrace(untraced) = %+v, want empty field", f)
	}
	f := ErrTrace(origin())
	if f.Key != "err_trace" {
		t.Fatalf("field key = %q, want err_trace", f.Key)
	}
	frames, ok := f.Value.([]string)
	if !ok || len(frames) != 1 {
		t.Fatalf("field value = %#v, want one-frame []string", f.Value)
	}
	// And the field must land in a structured log entry like any other.
	lg := NewLogger(nil, LevelInfo, 8)
	lg.Warn("task failed", f)
	entries := lg.Entries()
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	if _, ok := entries[0].Fields["err_trace"]; !ok {
		t.Error("err_trace field missing from log entry")
	}
}

func TestShortFile(t *testing.T) {
	if got := shortFile("/a/b/c/d.go"); got != "c/d.go" {
		t.Errorf("shortFile = %q, want c/d.go", got)
	}
	if got := shortFile("d.go"); got != "d.go" {
		t.Errorf("shortFile = %q, want d.go", got)
	}
}

func BenchmarkWrap(b *testing.B) {
	err := errors.New("boom")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkErr = Wrap(err)
	}
}

var sinkErr error
