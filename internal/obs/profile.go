package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// StartProfiling starts a CPU profile at cpuPath and returns a stop
// function that ends it and snapshots the heap to memPath. Either path may
// be empty to skip that profile; the returned stop function is always
// non-nil and idempotent — repeat calls return the first call's result
// without re-running the stop work. The heap snapshot runs a GC first
// so it reports live objects, not garbage awaiting collection.
func StartProfiling(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	var once sync.Once
	var stopErr error
	stop := func() error {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					stopErr = fmt.Errorf("cpu profile: %w", err)
					return
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					stopErr = fmt.Errorf("mem profile: %w", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					stopErr = fmt.Errorf("mem profile: %w", err)
				}
			}
		})
		return stopErr
	}
	return stop, nil
}
