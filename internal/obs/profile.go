package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// ProfileConfig selects which runtime profiles to collect. Any empty
// path skips that profile. Mutex and block profiling carry a runtime
// cost while armed, so they are sampled: MutexFraction is passed to
// runtime.SetMutexProfileFraction (<= 0 defaults to 5, i.e. 1-in-5
// contended mutex events recorded) and BlockRate to
// runtime.SetBlockProfileRate in nanoseconds (<= 0 defaults to 10µs —
// one sample per 10µs of goroutine blocking).
type ProfileConfig struct {
	CPUPath   string
	MemPath   string
	MutexPath string
	BlockPath string

	MutexFraction int
	BlockRate     int
}

// StartProfiling starts a CPU profile at cpuPath and returns a stop
// function that ends it and snapshots the heap to memPath. Either path may
// be empty to skip that profile; the returned stop function is always
// non-nil and idempotent — repeat calls return the first call's result
// without re-running the stop work. The heap snapshot runs a GC first
// so it reports live objects, not garbage awaiting collection.
func StartProfiling(cpuPath, memPath string) (func() error, error) {
	return StartProfilingWith(ProfileConfig{CPUPath: cpuPath, MemPath: memPath})
}

// StartProfilingWith is StartProfiling plus contention profiles: when
// MutexPath or BlockPath is set the matching runtime sampler is armed
// for the run and the accumulated profile is written at stop (then the
// sampler is disarmed so the process returns to zero overhead).
func StartProfilingWith(cfg ProfileConfig) (func() error, error) {
	var cpuFile *os.File
	if cfg.CPUPath != "" {
		f, err := os.Create(cfg.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	if cfg.MutexPath != "" {
		frac := cfg.MutexFraction
		if frac <= 0 {
			frac = 5
		}
		runtime.SetMutexProfileFraction(frac)
	}
	if cfg.BlockPath != "" {
		rate := cfg.BlockRate
		if rate <= 0 {
			rate = 10_000 // one sample per 10µs blocked
		}
		runtime.SetBlockProfileRate(rate)
	}
	var once sync.Once
	var stopErr error
	stop := func() error {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					stopErr = fmt.Errorf("cpu profile: %w", err)
					return
				}
			}
			if cfg.MutexPath != "" {
				err := writeLookupProfile("mutex", cfg.MutexPath)
				runtime.SetMutexProfileFraction(0)
				if err != nil {
					stopErr = err
					return
				}
			}
			if cfg.BlockPath != "" {
				err := writeLookupProfile("block", cfg.BlockPath)
				runtime.SetBlockProfileRate(0)
				if err != nil {
					stopErr = err
					return
				}
			}
			if cfg.MemPath != "" {
				f, err := os.Create(cfg.MemPath)
				if err != nil {
					stopErr = fmt.Errorf("mem profile: %w", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					stopErr = fmt.Errorf("mem profile: %w", err)
				}
			}
		})
		return stopErr
	}
	return stop, nil
}

func writeLookupProfile(kind, path string) error {
	p := pprof.Lookup(kind)
	if p == nil {
		return fmt.Errorf("%s profile: runtime profile missing", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%s profile: %w", kind, err)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("%s profile: %w", kind, err)
	}
	return nil
}
