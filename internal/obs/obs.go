// Package obs is the zero-dependency telemetry layer of the SSTD
// reproduction: a metrics Registry (counters, gauges, fixed-bucket
// histograms), a lightweight span Tracer with parent/child linkage and
// Chrome trace_event export, and a control-loop Recorder that captures
// every PID tick of the paper's §IV-C feedback system.
//
// Everything is concurrency-safe and nil-safe: a nil *Registry hands out
// nil metric handles whose methods no-op, so library code can instrument
// unconditionally and users who leave telemetry off pay only a nil check
// per event. Hot-path increments are single uncontended atomic adds on
// cache-line-padded words.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is valid everywhere and disables telemetry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (an implicit +Inf bucket is appended).
// Bounds must be sorted ascending; nil bounds use DefaultDurationBuckets.
// Returns nil when r is nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultDurationBuckets()
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing count. The padding keeps two
// independently allocated hot counters off the same cache line so
// parallel increments of different counters never false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (stored as IEEE-754 bits in one
// atomic word).
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observations and
// reads may race freely; every count lands in exactly one bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; bucket i counts v <= bounds[i]
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1), // last bucket is +Inf
	}
}

// DefaultDurationBuckets are exponential millisecond latency buckets
// spanning 50µs to 10s.
func DefaultDurationBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in milliseconds (the unit of every
// SSTD latency histogram).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// AddSnapshotDelta merges the growth between two cumulative snapshots of
// a remote histogram into h: per-bucket count deltas, the total count
// delta and the sum delta. This is how the master folds a worker's
// self-reported exec-time histogram into its own registry — remote
// snapshots are cumulative, so only the increment since the previous
// snapshot is added. prev may be the zero snapshot (first report).
// Returns false (merging nothing) when cur's bucket layout does not match
// h's, so a worker running different bounds cannot corrupt the aggregate.
func (h *Histogram) AddSnapshotDelta(prev, cur HistogramSnapshot) bool {
	if h == nil {
		return false
	}
	if len(cur.Counts) != len(h.counts) || len(cur.Bounds) != len(h.bounds) {
		return false
	}
	for i, b := range cur.Bounds {
		if h.bounds[i] != b {
			return false
		}
	}
	var dTotal int64
	for i := range cur.Counts {
		var p int64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if d := cur.Counts[i] - p; d > 0 {
			h.counts[i].Add(d)
			dTotal += d
		}
	}
	if dTotal > 0 {
		h.total.Add(dTotal)
	}
	if ds := cur.Sum - prev.Sum; ds > 0 {
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + ds)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
	return true
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank. Samples in the overflow
// bucket are attributed to the highest finite bound. Returns 0 with no
// observations or a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent-enough read of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is in the histogram's native unit (ms for latency histograms).
	Sum float64 `json:"sum"`
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// trailing element for the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		P50:    h.Quantile(0.5),
		P90:    h.Quantile(0.9),
		P99:    h.Quantile(0.99),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// RegistrySnapshot is a point-in-time copy of every metric, the payload
// of the JSON /metrics format.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Safe on nil (returns empty maps).
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
