package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

var t0 = time.Unix(1_700_000_000, 0)

func TestAppendAndQuery(t *testing.T) {
	s := New(8)
	for i := 0; i < 5; i++ {
		s.Append("reqs_total", map[string]string{"host": "a"}, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	s.Append("reqs_total", map[string]string{"host": "b"}, t0, 99)
	s.Append("other", nil, t0, 1)

	got := s.Run(Query{Name: "reqs_total"}, t0.Add(10*time.Second))
	if len(got) != 2 {
		t.Fatalf("want 2 series, got %d: %+v", len(got), got)
	}
	if got[0].Labels["host"] != "a" || len(got[0].Points) != 5 {
		t.Errorf("series a = %+v", got[0])
	}
	if got[1].Labels["host"] != "b" || got[1].Points[0].V != 99 {
		t.Errorf("series b = %+v", got[1])
	}

	got = s.Run(Query{Name: "reqs_total", Matchers: map[string]string{"host": "b"}}, t0)
	if len(got) != 1 || got[0].Labels["host"] != "b" {
		t.Errorf("matcher query = %+v", got)
	}
}

func TestRingRetentionBound(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		s.Append("m", nil, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := s.Run(Query{Name: "m"}, t0.Add(time.Minute))
	if len(got) != 1 || len(got[0].Points) != 4 {
		t.Fatalf("want 4 retained points, got %+v", got)
	}
	// Oldest first, and only the newest 4 survive.
	for i, p := range got[0].Points {
		if p.V != float64(6+i) {
			t.Errorf("point %d = %+v, want V=%d", i, p, 6+i)
		}
	}
}

// TestConfigurableCapacityRetention covers the -tsdb-points path: a
// capacity above the default retains exactly that many points per
// series, and New(0) falls back to DefaultCapacity.
func TestConfigurableCapacityRetention(t *testing.T) {
	capacity := DefaultCapacity + 100
	s := New(capacity)
	n := capacity + 50
	for i := 0; i < n; i++ {
		s.Append("m", nil, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := s.Run(Query{Name: "m", Limit: MaxQueryLimit}, t0.Add(time.Duration(n)*time.Second))
	if len(got) != 1 || len(got[0].Points) != capacity {
		t.Fatalf("want %d retained points, got %d", capacity, len(got[0].Points))
	}
	// The survivors are the newest `capacity` samples, oldest first.
	if first := got[0].Points[0].V; first != float64(n-capacity) {
		t.Errorf("oldest retained V = %v, want %d", first, n-capacity)
	}
	if last := got[0].Points[capacity-1].V; last != float64(n-1) {
		t.Errorf("newest retained V = %v, want %d", last, n-1)
	}

	def := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		def.Append("m", nil, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got = def.Run(Query{Name: "m", Limit: MaxQueryLimit}, t0.Add(time.Hour))
	if len(got) != 1 || len(got[0].Points) != DefaultCapacity {
		t.Fatalf("New(0) retained %d points, want DefaultCapacity %d", len(got[0].Points), DefaultCapacity)
	}
}

func TestQuerySinceStepLimit(t *testing.T) {
	s := New(64)
	for i := 0; i < 30; i++ {
		s.Append("m", nil, t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	now := t0.Add(30 * time.Second)

	got := s.Run(Query{Name: "m", Since: 10 * time.Second}, now)
	if n := len(got[0].Points); n != 10 {
		t.Errorf("since=10s kept %d points, want 10", n)
	}
	got = s.Run(Query{Name: "m", Step: 10 * time.Second}, now)
	if n := len(got[0].Points); n > 4 {
		t.Errorf("step=10s kept %d points, want <= 4", n)
	}
	// Downsampling keeps the LAST point of each bucket.
	last := got[0].Points[len(got[0].Points)-1]
	if last.V != 29 {
		t.Errorf("last downsampled point = %+v, want V=29", last)
	}
	got = s.Run(Query{Name: "m", Limit: 3}, now)
	if n := len(got[0].Points); n != 3 {
		t.Errorf("limit=3 kept %d points", n)
	}
	if got[0].Points[2].V != 29 {
		t.Errorf("limit should keep newest points: %+v", got[0].Points)
	}
}

func TestScrapeRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total").Add(7)
	reg.Gauge(`g{worker="w-1"}`).Set(3)
	reg.Histogram("h_ms", []float64{1, 10}).Observe(5)

	s := New(8)
	s.ScrapeRegistry(reg, "master", t0)

	if got := s.Run(Query{Name: "c_total"}, t0); len(got) != 1 || got[0].Points[0].V != 7 || got[0].Labels["host"] != "master" {
		t.Errorf("scraped counter = %+v", got)
	}
	if got := s.Run(Query{Name: "g"}, t0); len(got) != 1 || got[0].Labels["worker"] != "w-1" {
		t.Errorf("scraped labelled gauge = %+v", got)
	}
	for _, suffix := range []string{"_count", "_sum", "_p50", "_p90", "_p99"} {
		if got := s.Run(Query{Name: "h_ms" + suffix}, t0); len(got) != 1 {
			t.Errorf("missing histogram series h_ms%s", suffix)
		}
	}
}

func TestApplyShipAccumulates(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("worker_tasks_total")
	h := reg.Histogram("exec_ms", []float64{1, 10})
	c.Add(3)
	h.Observe(5)
	shipper := obs.NewShipper(reg)

	s := New(16)
	s.ApplyShip("w-1", shipper.Ship(), t0) // full
	c.Add(2)
	h.Observe(0.5)
	s.ApplyShip("w-1", shipper.Ship(), t0.Add(time.Second)) // delta

	got := s.Run(Query{Name: "worker_tasks_total"}, t0.Add(time.Minute))
	if len(got) != 1 || got[0].Labels["host"] != "w-1" {
		t.Fatalf("shipped counter = %+v", got)
	}
	pts := got[0].Points
	if len(pts) != 2 || pts[0].V != 3 || pts[1].V != 5 {
		t.Errorf("cumulative counter points = %+v, want 3 then 5", pts)
	}
	got = s.Run(Query{Name: "exec_ms_count"}, t0.Add(time.Minute))
	if len(got) != 1 || got[0].Points[1].V != 2 {
		t.Errorf("hist count series = %+v", got)
	}
	got = s.Run(Query{Name: "exec_ms_p50"}, t0.Add(time.Minute))
	if len(got) != 1 || len(got[0].Points) != 2 {
		t.Errorf("hist p50 series = %+v", got)
	}

	// A second Full ship (worker restart) resets cumulative state.
	reg2 := obs.NewRegistry()
	reg2.Counter("worker_tasks_total").Add(1)
	s.ApplyShip("w-1", obs.NewShipper(reg2).Ship(), t0.Add(2*time.Second))
	got = s.Run(Query{Name: "worker_tasks_total"}, t0.Add(time.Minute))
	pts = got[0].Points
	if pts[len(pts)-1].V != 1 {
		t.Errorf("post-restart counter = %+v, want reset to 1", pts)
	}
}

func TestHandlerQueryEndpoint(t *testing.T) {
	s := New(8)
	s.Append("m", map[string]string{"host": "a"}, time.Now(), 1)
	s.Append("m", map[string]string{"host": "b"}, time.Now(), 2)
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/?series=m")
	var out QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out.Series) != 2 {
		t.Fatalf("query: err=%v body=%s", err, rec.Body.String())
	}
	rec = get("/?series=m&label=host=b")
	out = QueryResult{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out.Series) != 1 || out.Series[0].Labels["host"] != "b" {
		t.Fatalf("label query: err=%v body=%s", err, rec.Body.String())
	}
	// Discovery mode.
	rec = get("/")
	out = QueryResult{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out.Names) != 1 || out.Names[0] != "m" {
		t.Fatalf("names: err=%v body=%s", err, rec.Body.String())
	}
	for _, bad := range []string{"/?series=m&since=banana", "/?series=m&step=-1s", "/?series=m&limit=x", "/?series=m&label=nokey"} {
		if rec := get(bad); rec.Code != 400 {
			t.Errorf("GET %s: code=%d, want 400", bad, rec.Code)
		}
	}
}

func TestHandlerLimitClamped(t *testing.T) {
	s := New(8)
	s.Append("m", nil, time.Now(), 1)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/?series=m&limit=99999999", nil))
	if rec.Code != 200 {
		t.Fatalf("clamped limit: code=%d", rec.Code)
	}
}

func BenchmarkTelemetryShipApply(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
		reg.Histogram(fmt.Sprintf("h%d", i), nil).Observe(float64(i))
	}
	shipper := obs.NewShipper(reg)
	s := New(256)
	s.ApplyShip("w", shipper.Ship(), t0)
	hot := reg.Counter("c0")
	h := reg.Histogram("h0", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hot.Inc()
		h.Observe(1)
		s.ApplyShip("w", shipper.Ship(), t0)
	}
}

func BenchmarkTSDBAppend(b *testing.B) {
	s := New(1024)
	labels := map[string]string{"host": "w-1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append("m_total", labels, t0, float64(i))
	}
}
