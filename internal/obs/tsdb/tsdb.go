// Package tsdb is the master-side retained time-series store of the
// cluster telemetry plane: fixed-capacity per-series point rings keyed by
// metric name + label set, fed by local registry scrapes and by
// TelemetryShip deltas arriving from workers over the wire, and queryable
// through the /query debug endpoint (and `sstdctl query`).
//
// Retention is bounded by construction — capacity points per series, so
// memory is O(series × capacity) regardless of uptime. Series identity
// follows the repo's label convention: a metric name may carry a
// `{k="v",...}` block; the store adds a `host` label to everything it
// ingests so one store holds the whole cluster.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// Point is one retained sample. T is unix milliseconds — coarse enough
// to be compact in JSON, fine enough for heartbeat-cadence telemetry.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is one named, labelled time series as returned by Query.
type Series struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// DefaultCapacity is the per-series ring size when New is given n <= 0:
// at a 1s scrape cadence roughly 8.5 minutes of history per series.
const DefaultCapacity = 512

// Store retains bounded history for many series. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	cap    int
	series map[string]*ring // canonical key -> ring
	ships  map[string]*shipState
}

type ring struct {
	name   string
	labels map[string]string
	pts    []Point
	next   int
	full   bool
}

// shipState is the per-host cumulative decoder state for ApplyShip.
type shipState struct {
	seq      int64
	counters map[string]int64
	hists    map[string]*histState
}

type histState struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// New creates a store retaining capacity points per series
// (DefaultCapacity when <= 0).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		cap:    capacity,
		series: make(map[string]*ring),
		ships:  make(map[string]*shipState),
	}
}

// Append records one sample. name may carry a `{k="v"}` label block
// (parsed into the series' label set); labels adds or overrides pairs on
// top of it. Nil-safe.
func (s *Store) Append(name string, labels map[string]string, t time.Time, v float64) {
	if s == nil {
		return
	}
	base, parsed := splitName(name)
	if len(labels) > 0 {
		if parsed == nil {
			parsed = make(map[string]string, len(labels))
		}
		for k, val := range labels {
			parsed[k] = val
		}
	}
	s.append(base, parsed, t.UnixMilli(), v)
}

func (s *Store) append(base string, labels map[string]string, tms int64, v float64) {
	key := seriesKey(base, labels)
	s.mu.Lock()
	r, ok := s.series[key]
	if !ok {
		r = &ring{name: base, labels: labels, pts: make([]Point, s.cap)}
		s.series[key] = r
	}
	r.pts[r.next] = Point{T: tms, V: v}
	r.next++
	if r.next == len(r.pts) {
		r.next, r.full = 0, true
	}
	s.mu.Unlock()
}

// ScrapeRegistry samples every metric in reg into the store under the
// given host label. Histograms expand to _count, _sum and _p50/_p90/_p99
// series. Nil-safe on both receiver and registry.
func (s *Store) ScrapeRegistry(reg *obs.Registry, host string, now time.Time) {
	if s == nil || reg == nil {
		return
	}
	snap := reg.Snapshot()
	tms := now.UnixMilli()
	for name, v := range snap.Counters {
		base, labels := splitName(name)
		s.append(base, withHost(labels, host), tms, float64(v))
	}
	for name, v := range snap.Gauges {
		base, labels := splitName(name)
		s.append(base, withHost(labels, host), tms, v)
	}
	for name, h := range snap.Histograms {
		base, labels := splitName(name)
		labels = withHost(labels, host)
		s.append(base+"_count", labels, tms, float64(h.Count))
		s.append(base+"_sum", labels, tms, h.Sum)
		s.append(base+"_p50", labels, tms, h.P50)
		s.append(base+"_p90", labels, tms, h.P90)
		s.append(base+"_p99", labels, tms, h.P99)
	}
}

// ApplyShip folds one TelemetryShip from a worker into the store: counter
// deltas accumulate onto per-host cumulative state (reset by Full ships),
// gauges append directly, histogram bucket deltas accumulate and append
// _count/_sum plus interpolated _p50/_p90/_p99 series. Every resulting
// series carries host as its host label. Nil-safe.
func (s *Store) ApplyShip(host string, ship *obs.TelemetryShip, now time.Time) {
	if s == nil || ship == nil {
		return
	}
	tms := now.UnixMilli()
	s.mu.Lock()
	st, ok := s.ships[host]
	if !ok || ship.Full {
		// Unknown host or an explicit resync: start cumulative state from
		// zero (a non-Full stream without prior state applies deltas from
		// zero — the best available).
		st = &shipState{counters: make(map[string]int64), hists: make(map[string]*histState)}
		s.ships[host] = st
	}
	st.seq = ship.Seq
	// Snapshot the cumulative values to append outside the histogram math.
	type sample struct {
		name string
		v    float64
	}
	samples := make([]sample, 0, len(ship.Counters)+len(ship.Gauges)+5*len(ship.Hists))
	for name, d := range ship.Counters {
		if ship.Full {
			st.counters[name] = d
		} else {
			st.counters[name] += d
		}
		samples = append(samples, sample{name, float64(st.counters[name])})
	}
	for name, v := range ship.Gauges {
		samples = append(samples, sample{name, v})
	}
	for name, d := range ship.Hists {
		h := st.hists[name]
		if h == nil || len(d.Bounds) > 0 {
			// Full ship, first sight of the series, or a layout change:
			// the delta carries absolute counts and authoritative bounds.
			h = &histState{bounds: append([]float64(nil), d.Bounds...)}
			st.hists[name] = h
			h.counts = append([]int64(nil), d.Counts...)
			h.count, h.sum = d.Count, d.Sum
		} else {
			if len(h.counts) != len(d.Counts) {
				continue // layout mismatch without bounds: drop the delta
			}
			for i, c := range d.Counts {
				h.counts[i] += c
			}
			h.count += d.Count
			h.sum += d.Sum
		}
		samples = append(samples,
			sample{name + "_count", float64(h.count)},
			sample{name + "_sum", h.sum},
			sample{name + "_p50", h.quantile(0.5)},
			sample{name + "_p90", h.quantile(0.9)},
			sample{name + "_p99", h.quantile(0.99)})
	}
	s.mu.Unlock()
	for _, sm := range samples {
		base, labels := splitName(sm.name)
		s.append(base, withHost(labels, host), tms, sm.v)
	}
}

// quantile mirrors obs.Histogram.Quantile over the accumulated bucket
// counts (linear interpolation within the target bucket).
func (h *histState) quantile(q float64) float64 {
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if float64(cum+int64(n)) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Query selects retained series.
type Query struct {
	// Name is the exact series base name ("" matches every series).
	Name string
	// Matchers are label equality constraints; every pair must match.
	Matchers map[string]string
	// Since drops points older than now-Since (0 = all retained).
	Since time.Duration
	// Step downsamples to the last point per step bucket (0 = raw).
	Step time.Duration
	// Limit caps points per series, keeping the newest (<= 0 = DefaultQueryLimit).
	Limit int
}

// DefaultQueryLimit and MaxQueryLimit bound points per series in query
// results so a /query response can never be unbounded.
const (
	DefaultQueryLimit = 500
	MaxQueryLimit     = 5000
)

// Run executes the query against the store at time now. Results are
// sorted by name then label signature; points are oldest first.
func (s *Store) Run(q Query, now time.Time) []Series {
	if s == nil {
		return nil
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueryLimit
	}
	if limit > MaxQueryLimit {
		limit = MaxQueryLimit
	}
	var cutoff int64
	if q.Since > 0 {
		cutoff = now.Add(-q.Since).UnixMilli()
	}
	s.mu.RLock()
	keys := make([]string, 0, len(s.series))
	for key, r := range s.series {
		if q.Name != "" && r.name != q.Name {
			continue
		}
		match := true
		for k, v := range q.Matchers {
			if r.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]Series, 0, len(keys))
	for _, key := range keys {
		r := s.series[key]
		pts := r.ordered()
		if cutoff > 0 {
			i := sort.Search(len(pts), func(i int) bool { return pts[i].T >= cutoff })
			pts = pts[i:]
		}
		if q.Step > 0 {
			pts = downsample(pts, q.Step.Milliseconds())
		}
		if len(pts) > limit {
			pts = pts[len(pts)-limit:]
		}
		labels := make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			labels[k] = v
		}
		out = append(out, Series{Name: r.name, Labels: labels, Points: append([]Point(nil), pts...)})
	}
	s.mu.RUnlock()
	return out
}

// SeriesNames returns the distinct base names retained, sorted.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	set := make(map[string]struct{})
	for _, r := range s.series {
		set[r.name] = struct{}{}
	}
	s.mu.RUnlock()
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ordered returns a copy of the ring's points, oldest first. (A copy, so
// downsampling can compact in place without touching ring storage.)
func (r *ring) ordered() []Point {
	if !r.full {
		return append([]Point(nil), r.pts[:r.next]...)
	}
	out := make([]Point, len(r.pts))
	n := copy(out, r.pts[r.next:])
	copy(out[n:], r.pts[:r.next])
	return out
}

// downsample keeps the last point of each stepMs-wide time bucket.
func downsample(pts []Point, stepMs int64) []Point {
	if stepMs <= 0 || len(pts) == 0 {
		return pts
	}
	out := pts[:0:len(pts)]
	for i, p := range pts {
		if i+1 < len(pts) && pts[i+1].T/stepMs == p.T/stepMs {
			continue
		}
		out = append(out, p)
	}
	return out
}

// splitName separates a `base{k="v",...}` metric name into base and
// parsed labels (nil when unlabelled).
func splitName(name string) (string, map[string]string) {
	base, rest, has := strings.Cut(name, "{")
	if !has {
		return base, nil
	}
	rest = strings.TrimSuffix(rest, "}")
	labels := make(map[string]string)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			break
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte('\\')
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		rest = strings.TrimLeft(rest[i:], ", ")
		if key != "" {
			labels[key] = val.String()
		}
	}
	if len(labels) == 0 {
		return base, nil
	}
	return base, labels
}

func withHost(labels map[string]string, host string) map[string]string {
	if labels == nil {
		labels = make(map[string]string, 1)
	}
	if host != "" {
		labels["host"] = host
	}
	return labels
}

func seriesKey(base string, labels map[string]string) string {
	if len(labels) == 0 {
		return base
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(base)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}
