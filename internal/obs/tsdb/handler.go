package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// QueryResult is the /query response payload.
type QueryResult struct {
	Series []Series `json:"series"`
	// Names lists retained series base names; populated when the request
	// names no series (discovery mode).
	Names []string `json:"names,omitempty"`
}

// Handler serves the store over HTTP:
//
//	GET /?series=<base name>      exact series base name ("" lists names)
//	      &label=k=v              repeatable label equality matcher
//	      &since=<dur|RFC3339>    lookback window
//	      &step=<dur>             downsample bucket
//	      &limit=<n>              max points per series (clamped)
//
// Mount it under /query on a debug mux.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		out := QueryResult{Series: []Series{}}
		name := q.Get("series")
		if name == "" {
			out.Names = s.SeriesNames()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(out)
			return
		}
		query := Query{Name: name}
		for _, m := range q["label"] {
			k, v, ok := strings.Cut(m, "=")
			if !ok || k == "" {
				http.Error(w, "bad label matcher: want k=v", http.StatusBadRequest)
				return
			}
			if query.Matchers == nil {
				query.Matchers = make(map[string]string)
			}
			query.Matchers[k] = v
		}
		now := time.Now()
		if sv := q.Get("since"); sv != "" {
			if d, err := time.ParseDuration(sv); err == nil && d >= 0 {
				query.Since = d
			} else if t, err := time.Parse(time.RFC3339, sv); err == nil {
				query.Since = now.Sub(t)
			} else {
				http.Error(w, "bad since: want a duration (5m) or RFC3339 time", http.StatusBadRequest)
				return
			}
		}
		if sv := q.Get("step"); sv != "" {
			d, err := time.ParseDuration(sv)
			if err != nil || d < 0 {
				http.Error(w, "bad step: want a duration (10s)", http.StatusBadRequest)
				return
			}
			query.Step = d
		}
		if sv := q.Get("limit"); sv != "" {
			n, err := strconv.Atoi(sv)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: want a positive integer", http.StatusBadRequest)
				return
			}
			query.Limit = n // Run clamps to MaxQueryLimit
		}
		out.Series = s.Run(query, now)
		if out.Series == nil {
			out.Series = []Series{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
}
