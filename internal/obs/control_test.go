package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestControlRecorderTicksAndSeq(t *testing.T) {
	rec := NewControlRecorder(100)
	rec.BeginTick()
	rec.Record(ControlSample{Job: "a", Error: 1})
	rec.Record(ControlSample{Job: "b", Error: 2})
	rec.BeginTick()
	rec.Record(ControlSample{Job: "a", Error: 0.5})

	samples := rec.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	for i, s := range samples {
		if s.Seq != i {
			t.Errorf("sample %d has seq %d", i, s.Seq)
		}
	}
	if samples[0].Tick != 1 || samples[1].Tick != 1 || samples[2].Tick != 2 {
		t.Errorf("ticks = %d,%d,%d want 1,1,2", samples[0].Tick, samples[1].Tick, samples[2].Tick)
	}
}

func TestControlRecorderEvictsOldest(t *testing.T) {
	rec := NewControlRecorder(8)
	for i := 0; i < 20; i++ {
		rec.Record(ControlSample{Job: "j", Error: float64(i)})
	}
	samples := rec.Samples()
	if len(samples) > 8 {
		t.Fatalf("recorder holds %d samples, cap is 8", len(samples))
	}
	// The newest sample always survives.
	if last := samples[len(samples)-1]; last.Error != 19 {
		t.Errorf("newest sample error = %v, want 19", last.Error)
	}
	// Order is preserved after eviction.
	for i := 1; i < len(samples); i++ {
		if samples[i].Seq <= samples[i-1].Seq {
			t.Errorf("seq out of order at %d: %d after %d", i, samples[i].Seq, samples[i-1].Seq)
		}
	}
}

func TestWriteArtifactFile(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dtm_jobs_total").Add(4)
	reg.Gauge("dtm_gck_workers").SetInt(6)
	rec := NewControlRecorder(0)
	rec.BeginTick()
	rec.Record(ControlSample{Job: "claim-1", Error: -0.2, LCK: 0.4, GCK: 6, ExpectedFinishMs: 80, DeadlineMs: 100})

	path := filepath.Join(t.TempDir(), "telemetry.json")
	if err := WriteArtifactFile(path, reg, rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if art.Metrics.Counters["dtm_jobs_total"] != 4 {
		t.Errorf("metrics lost: %+v", art.Metrics.Counters)
	}
	if len(art.Control) != 1 || art.Control[0].LCK != 0.4 || art.Control[0].GCK != 6 {
		t.Errorf("control series lost: %+v", art.Control)
	}
}

func TestWriteArtifactFileNilSinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := WriteArtifactFile(path, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("nil-sink artifact does not parse: %v", err)
	}
	if art.Control == nil {
		t.Error("control must encode as [] not null")
	}
}
