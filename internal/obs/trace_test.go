package obs

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock hands out deterministic timestamps one millisecond apart.
func fakeClock() func() time.Time {
	base := time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestSpanParentChildLinkage(t *testing.T) {
	tr := NewTracer(16)
	ctx, job := tr.StartSpan(context.Background(), "job claim-1")
	_, task := tr.StartSpan(ctx, "exec claim-1/0")
	task.Finish()
	job.Finish()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("buffered %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["exec claim-1/0"].Parent != byName["job claim-1"].ID {
		t.Errorf("child parent = %d, want job span ID %d",
			byName["exec claim-1/0"].Parent, byName["job claim-1"].ID)
	}
	if byName["job claim-1"].Parent != 0 {
		t.Errorf("root span parent = %d, want 0", byName["job claim-1"].Parent)
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	tr := NewTracer(16)
	s := tr.NewSpan("once", 0)
	s.Finish()
	s.Finish()
	if tr.Total() != 1 {
		t.Errorf("double Finish recorded %d spans, want 1", tr.Total())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.NewSpan("s", 0).Finish()
	}
	if tr.Len() != 4 {
		t.Errorf("ring holds %d spans, want capacity 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	// The survivors are the newest four (IDs 7..10).
	for _, s := range tr.Spans() {
		if s.ID <= 6 {
			t.Errorf("evicted span %d still buffered", s.ID)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerDroppedCounterExported(t *testing.T) {
	tr := NewTracer(2)
	reg := NewRegistry()
	tr.NewSpan("pre", 0).Finish()
	tr.NewSpan("pre", 0).Finish()
	tr.NewSpan("pre", 0).Finish() // first overwrite, before instrumentation
	tr.Instrument(reg)
	c := reg.Counter("obs_spans_dropped_total")
	if c.Value() != 1 {
		t.Fatalf("backlog not carried over: counter = %d, want 1", c.Value())
	}
	tr.NewSpan("post", 0).Finish()
	tr.NewSpan("post", 0).Finish()
	if c.Value() != 3 {
		t.Errorf("counter = %d after 3 overwrites, want 3", c.Value())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tr.Dropped())
	}
	// Re-instrumenting (or a nil tracer/registry) must not double count.
	tr.Instrument(reg)
	tr.Instrument(nil)
	(*Tracer)(nil).Instrument(reg)
	if c.Value() != 3 {
		t.Errorf("re-instrument double-counted: %d", c.Value())
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ctx, parent := tr.StartSpan(context.Background(), "parent")
				_, child := tr.StartSpan(ctx, "child")
				child.SetAttr("k", "v")
				child.Finish()
				parent.Finish()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Errorf("total = %d, want 1600", tr.Total())
	}
	if tr.Len() != 128 {
		t.Errorf("len = %d, want full ring 128", tr.Len())
	}
}

// TestWriteChromeTraceGolden locks the trace_event export format: a TD
// job's queue/exec/merge/decode legs under one job span, rendered with
// deterministic timestamps and compared byte-for-byte against testdata.
func TestWriteChromeTraceGolden(t *testing.T) {
	tr := NewTracer(32)
	tr.now = fakeClock()

	ctx, job := tr.StartSpan(context.Background(), "job claim-1")
	job.SetAttr("reports", "128")
	q := tr.NewSpan("queue claim-1/0", job.SpanID())
	q.Finish()
	_, exec := tr.StartSpan(ctx, "exec claim-1/0")
	exec.SetAttr("worker", "w1")
	exec.Finish()
	_, merge := tr.StartSpan(ctx, "merge claim-1")
	merge.Finish()
	_, dec := tr.StartSpan(ctx, "decode claim-1")
	dec.Finish()
	job.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
