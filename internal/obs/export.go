package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteJSON writes the expvar-style JSON form of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and histograms with
// cumulative le-labelled buckets. Metric names may carry a label block —
// `wq_worker_exec_ms{worker="w-1"}` — which is preserved on every sample
// line; the # TYPE header is emitted once per base name (label variants
// of one metric sort adjacently).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	lastType := ""
	for _, name := range sortedKeys(s.Counters) {
		base, labels := promName(name)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
			lastType = base
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(base, labels), s.Counters[name]); err != nil {
			return err
		}
	}
	lastType = ""
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := promName(name)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
			lastType = base
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", promSeries(base, labels), s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	lastType = ""
	for _, name := range hnames {
		h := s.Histograms[name]
		base, labels := promName(name)
		if base != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
			lastType = base
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf("le=%q", trimFloat(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, promLabels(labels, le), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %v\n%s_count%s %d\n",
			base, promLabels(labels, `le="+Inf"`), cum,
			base, promLabels(labels), h.Sum,
			base, promLabels(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName splits a metric name into its Prometheus base name (mapped
// onto the legal charset) and an optional label block (the inside of a
// trailing {...}, with every label value re-escaped for the exposition
// format).
func promName(name string) (base, labels string) {
	base, rest, hasLabels := strings.Cut(name, "{")
	base = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, base)
	if hasLabels {
		labels = sanitizeLabels(strings.TrimSuffix(rest, "}"))
	}
	return base, labels
}

// Label renders `base{k="v",...}` with every value escaped for the
// Prometheus exposition format. kv alternates key, value. This is the
// safe way to build labelled metric names from untrusted strings such as
// worker IDs.
func Label(base string, kv ...string) string {
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes the three characters the Prometheus text
// format requires escaping in label values: backslash, double-quote and
// newline. A raw newline would otherwise split the sample line and let a
// hostile value inject fake series.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeLabels reparses a `k="v",...` label block and re-escapes every
// value, so metric names assembled without Label (or with hostile
// embedded IDs) cannot break the exposition format. Escaped sequences in
// the input are decoded first to avoid double-escaping; anything after a
// structural parse failure (e.g. an injected `"} fake_metric 1`) is
// dropped.
func sanitizeLabels(block string) string {
	var out strings.Builder
	i, n := 0, len(block)
	for i < n {
		j := strings.IndexByte(block[i:], '=')
		if j < 0 {
			break
		}
		key := sanitizeLabelKey(strings.TrimSpace(block[i : i+j]))
		i += j + 1
		if i < n && block[i] == '"' {
			i++
		}
		var val strings.Builder
		for i < n {
			c := block[i]
			if c == '\\' && i+1 < n {
				switch block[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte('\\')
					val.WriteByte(block[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		for i < n && (block[i] == ',' || block[i] == ' ') {
			i++
		}
		if key == "" {
			continue
		}
		if out.Len() > 0 {
			out.WriteByte(',')
		}
		out.WriteString(key)
		out.WriteString(`="`)
		out.WriteString(escapeLabelValue(val.String()))
		out.WriteByte('"')
	}
	return out.String()
}

func sanitizeLabelKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// promSeries renders one sample's series identifier.
func promSeries(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// promLabels joins label fragments into a {...} block ("" when empty).
func promLabels(parts ...string) string {
	joined := ""
	for _, p := range parts {
		if p == "" {
			continue
		}
		if joined != "" {
			joined += ","
		}
		joined += p
	}
	if joined == "" {
		return ""
	}
	return "{" + joined + "}"
}

// trimFloat renders a bucket bound the way Prometheus expects (no
// trailing zeros, no scientific notation for the usual ranges).
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// Handler serves the telemetry surface:
//
//	/metrics        Prometheus text format (?format=json for JSON)
//	/trace          span dump as Chrome trace_event JSON (?format=json
//	                for the raw span list)
//	/logs           recent structured log entries as a JSON array
//	/debug/pprof/*  the standard runtime profiles
//
// reg, tr and lg may each be nil; their endpoints then serve empty
// documents.
func Handler(reg *Registry, tr *Tracer, lg *Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if req.URL.Query().Get("format") == "json" {
			_ = tr.WriteJSON(w)
			return
		}
		_ = tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/logs", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		limit := boundedLimit(q.Get("limit"), defaultLogsLimit, maxLogsLimit)
		var since time.Time
		if s := q.Get("since"); s != "" {
			var ok bool
			if since, ok = parseSince(s, time.Now()); !ok {
				http.Error(w, "bad since: want a duration (5m) or RFC3339 time", http.StatusBadRequest)
				return
			}
		}
		min := LevelDebug
		if s := q.Get("level"); s != "" {
			min = ParseLogLevel(s)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = lg.WriteJSONFiltered(w, since, min, limit)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

const (
	defaultLogsLimit = 1000
	maxLogsLimit     = 10000
)

// boundedLimit parses a ?limit= param, applying a default when absent or
// unparseable and clamping to max so no request can dump an unbounded
// ring.
func boundedLimit(s string, def, max int) int {
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// parseSince accepts either a lookback duration ("5m" → now-5m) or an
// absolute RFC3339 timestamp.
func parseSince(s string, now time.Time) (time.Time, bool) {
	if d, err := time.ParseDuration(s); err == nil && d >= 0 {
		return now.Add(-d), true
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, true
	}
	return time.Time{}, false
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
