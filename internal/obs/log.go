package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// LogLevel orders log severities.
type LogLevel int32

const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way it appears on the wire.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLogLevel maps a level name to its LogLevel (default info).
func ParseLogLevel(s string) LogLevel {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Field is one structured key/value on a log entry. The conventional
// trace-correlation keys — trace_id, span_id, worker_id, task_id, job_id
// — have constructors below so call sites stay greppable and typo-free.
type Field struct {
	Key   string
	Value any
}

// F builds an arbitrary field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// TraceID tags an entry with the distributed trace it belongs to.
func TraceID(id string) Field { return Field{Key: "trace_id", Value: id} }

// SpanID tags an entry with the span it was emitted under.
func SpanID(id int64) Field { return Field{Key: "span_id", Value: id} }

// WorkerID tags an entry with a worker.
func WorkerID(id string) Field { return Field{Key: "worker_id", Value: id} }

// TaskID tags an entry with a task.
func TaskID(id string) Field { return Field{Key: "task_id", Value: id} }

// JobID tags an entry with a TD job.
func JobID(id string) Field { return Field{Key: "job_id", Value: id} }

// Err tags an entry with an error's message (skipped for nil errors).
func Err(err error) Field {
	if err == nil {
		return Field{}
	}
	return Field{Key: "error", Value: err.Error()}
}

// LogEntry is one recorded log event. Fields are flattened next to the
// fixed keys when the entry is encoded as a JSON line.
type LogEntry struct {
	Time   time.Time      `json:"time"`
	Level  string         `json:"level"`
	Msg    string         `json:"msg"`
	Fields map[string]any `json:"fields,omitempty"`
}

// MarshalJSON flattens Fields into the top-level object so a line reads
// {"time":...,"level":"info","msg":"...","worker_id":"w-1",...}. Fixed
// keys win on collision.
func (e LogEntry) MarshalJSON() ([]byte, error) {
	flat := make(map[string]any, len(e.Fields)+3)
	for k, v := range e.Fields {
		flat[k] = v
	}
	flat["time"] = e.Time
	flat["level"] = e.Level
	flat["msg"] = e.Msg
	return json.Marshal(flat)
}

// logCore is the sink shared by a Logger and all its With-children: an
// optional JSON-lines writer plus a fixed-capacity ring of recent
// entries backing the /logs endpoint.
type logCore struct {
	min int32 // LogLevel, read without the mutex via the methods below

	mu    sync.Mutex
	w     io.Writer
	ring  []LogEntry
	next  int
	total int
	cap   int
}

// Logger is a leveled, structured, zero-dependency logger. Entries go to
// an optional io.Writer as JSON lines and always into a ring buffer of
// recent entries (served by the telemetry /logs endpoint). A nil *Logger
// is valid and discards everything, so library code can log
// unconditionally — the repo-wide pay-for-use telemetry idiom.
type Logger struct {
	core *logCore
	// base fields are attached to every entry (see With).
	base []Field
}

// NewLogger creates a logger writing JSON lines to w (nil = ring only)
// at the given minimum level, keeping the most recent capacity entries
// (default 1024 when capacity <= 0).
func NewLogger(w io.Writer, min LogLevel, capacity int) *Logger {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Logger{core: &logCore{
		min:  int32(min),
		w:    w,
		ring: make([]LogEntry, 0, capacity),
		cap:  capacity,
	}}
}

// With returns a logger that attaches fields to every entry, sharing the
// parent's sink, ring and level. Nil-safe (returns nil).
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	base := make([]Field, 0, len(l.base)+len(fields))
	base = append(base, l.base...)
	base = append(base, fields...)
	return &Logger{core: l.core, base: base}
}

// SetLevel adjusts the minimum level at runtime. Nil-safe.
func (l *Logger) SetLevel(min LogLevel) {
	if l == nil {
		return
	}
	l.core.mu.Lock()
	l.core.min = int32(min)
	l.core.mu.Unlock()
}

// Enabled reports whether entries at the given level are recorded
// (false on nil).
func (l *Logger) Enabled(level LogLevel) bool {
	if l == nil {
		return false
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	return int32(level) >= l.core.min
}

// Debug logs at debug level. Nil-safe, like every level method.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level LogLevel, msg string, fields []Field) {
	if l == nil {
		return
	}
	e := LogEntry{Time: time.Now(), Level: level.String(), Msg: msg}
	if n := len(l.base) + len(fields); n > 0 {
		e.Fields = make(map[string]any, n)
		for _, f := range l.base {
			if f.Key != "" {
				e.Fields[f.Key] = f.Value
			}
		}
		for _, f := range fields {
			if f.Key != "" {
				e.Fields[f.Key] = f.Value
			}
		}
		if len(e.Fields) == 0 {
			e.Fields = nil
		}
	}
	c := l.core
	c.mu.Lock()
	if int32(level) < c.min {
		c.mu.Unlock()
		return
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, e)
	} else {
		c.ring[c.next] = e
		c.next = (c.next + 1) % c.cap
	}
	c.total++
	w := c.w
	var line []byte
	if w != nil {
		// Encode inside the lock so concurrent writers cannot interleave
		// lines; the encode itself is small.
		var err error
		line, err = json.Marshal(e)
		if err != nil {
			line = nil
		}
	}
	if line != nil {
		_, _ = w.Write(append(line, '\n'))
	}
	c.mu.Unlock()
}

// Len reports buffered entries (0 on nil).
func (l *Logger) Len() int {
	if l == nil {
		return 0
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	return len(l.core.ring)
}

// Total reports entries ever recorded, including ones the ring evicted.
func (l *Logger) Total() int {
	if l == nil {
		return 0
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	return l.core.total
}

// Entries returns the buffered entries, oldest first. Safe on nil.
func (l *Logger) Entries() []LogEntry {
	if l == nil {
		return nil
	}
	c := l.core
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LogEntry, len(c.ring))
	n := copy(out, c.ring[c.next:])
	copy(out[n:], c.ring[:c.next])
	return out
}

// EntriesFiltered returns buffered entries newer than since (zero time =
// all), at or above min severity, keeping only the newest limit entries
// (limit <= 0 = no cap). Oldest first. Safe on nil.
func (l *Logger) EntriesFiltered(since time.Time, min LogLevel, limit int) []LogEntry {
	all := l.Entries()
	out := all[:0:len(all)]
	for _, e := range all {
		if !since.IsZero() && e.Time.Before(since) {
			continue
		}
		if ParseLogLevel(e.Level) < min {
			continue
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// WriteJSON dumps the buffered entries as a JSON array (the /logs
// payload).
func (l *Logger) WriteJSON(w io.Writer) error {
	entries := l.Entries()
	if entries == nil {
		entries = []LogEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// WriteJSONFiltered is WriteJSON bounded by EntriesFiltered's params.
func (l *Logger) WriteJSONFiltered(w io.Writer, since time.Time, min LogLevel, limit int) error {
	entries := l.EntriesFiltered(since, min, limit)
	if entries == nil {
		entries = []LogEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
