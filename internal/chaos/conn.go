package chaos

import (
	"encoding/binary"
	"fmt"
	"net"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/workqueue"
)

// Conn wraps a workqueue connection and applies the injector's schedule
// to outgoing frames. The codec speaks either length-prefixed binary
// (the default) or newline-delimited JSON; the wrapper buffers partial
// writes until a full frame is available — a binary frame's length
// header or a JSON frame's terminating '\n' marks the boundary —
// numbers it, and lets the fault plan decide its fate: pass, drop,
// corrupt, delay, or reset the connection. Clock skew rewrites the
// frame's timestamp fields in place, by regex digit-rewrite for JSON
// and by decode/shift/re-encode for binary.
//
// Only the write side is faulted: wrapping both endpoints of a link
// (as Injector.PoolWrapper does) covers both directions, and keeping
// reads transparent means a single frame counter per endpoint — the
// property that makes plans interleaving-proof.
type Conn struct {
	net.Conn
	in     *Injector
	stream string

	wmu  sync.Mutex
	wbuf []byte
	widx uint64
}

// WrapConn wraps one endpoint. The stream name keys the fault plan:
// the same (spec, stream) always sees the same per-frame decisions.
func (in *Injector) WrapConn(stream string, c net.Conn) net.Conn {
	return &Conn{Conn: c, in: in, stream: stream}
}

// skewRe matches the wire protocol's absolute clock stamps: message and
// task send times ("sent_ns") and remote span starts ("start_unix_ns").
// Rewriting the raw digits — instead of a JSON round trip — preserves
// int64 nanosecond precision, which float64-backed decoding would lose
// above 2^53.
var skewRe = regexp.MustCompile(`"(sent_ns|start_unix_ns)":(-?\d+)`)

// applySkew shifts every clock stamp in the frame by SkewNs.
func (c *Conn) applySkew(frame []byte) []byte {
	return skewRe.ReplaceAllFunc(frame, func(m []byte) []byte {
		sub := skewRe.FindSubmatch(m)
		v, err := strconv.ParseInt(string(sub[2]), 10, 64)
		if err != nil {
			return m
		}
		return []byte(fmt.Sprintf("%q:%d", sub[1], v+c.in.spec.SkewNs))
	})
}

// nextFrame reports the length of the complete frame at the head of
// buf, or ok=false when more bytes are needed. A buffer beginning with
// the binary wire magic is cut at the length-prefixed boundary
// (workqueue.WireFrameSplit); anything else is newline-delimited JSON.
func nextFrame(buf []byte) (int, bool) {
	if len(buf) == 0 {
		return 0, false
	}
	if buf[0] == workqueue.WireMagic {
		return workqueue.WireFrameSplit(buf)
	}
	for i, b := range buf {
		if b == '\n' {
			return i + 1, true
		}
	}
	return 0, false
}

// Write applies the fault plan frame by frame. It reports the full
// length as written even when frames are dropped — the peer simply
// never sees them, exactly like loss inside the network.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = append(c.wbuf, p...)
	for {
		end, ok := nextFrame(c.wbuf)
		if !ok {
			return len(p), nil
		}
		frame := c.wbuf[:end]
		idx := c.widx
		c.widx++
		if c.in.spec.SkewNs != 0 {
			if frame[0] == workqueue.WireMagic {
				frame = workqueue.ShiftBinaryStamps(frame, c.in.spec.SkewNs)
			} else {
				frame = c.applySkew(frame)
			}
			c.in.record(FaultSkew, c.stream, idx, time.Duration(c.in.spec.SkewNs).String(), time.Now())
		}
		fault, _ := c.in.decide(transportFaults, c.stream, idx)
		switch fault {
		case FaultReset:
			c.in.record(FaultReset, c.stream, idx, "", time.Now())
			c.wbuf = nil
			_ = c.Conn.Close()
			return 0, fmt.Errorf("chaos: connection reset (stream %s frame %d)", c.stream, idx)
		case FaultDrop:
			// The frame is silently discarded; the peer never sees it.
			c.in.record(FaultDrop, c.stream, idx, "", time.Now())
		case FaultCorrupt:
			h := c.in.hashKey(FaultCorrupt+"/mode", c.stream, idx)
			corrupted, mode := CorruptFrame(h, frame)
			c.in.record(FaultCorrupt, c.stream, idx, mode, time.Now())
			if _, err := c.Conn.Write(corrupted); err != nil {
				c.wbuf = nil
				return 0, err
			}
		case FaultDelay:
			d := c.in.delayFor(c.stream, idx)
			start := time.Now()
			time.Sleep(d)
			c.in.record(FaultDelay, c.stream, idx, d.String(), start)
			fallthrough
		default:
			if _, err := c.Conn.Write(frame); err != nil {
				c.wbuf = nil
				return 0, err
			}
		}
		c.wbuf = c.wbuf[end:]
	}
}

// CorruptFrame deterministically mangles one frame; the hash selects
// among four corruption modes. JSON frames stay newline-terminated
// (except "truncate", which may cut mid-frame and splice into the next —
// exactly what a torn TCP segment looks like to the codec); binary
// frames get the equivalent damage shapes via corruptBinaryFrame.
// Exported so the fuzz corpus can grow the same shapes the chaos layer
// produces.
func CorruptFrame(h uint64, frame []byte) ([]byte, string) {
	if len(frame) == 0 {
		return frame, "empty"
	}
	if frame[0] == workqueue.WireMagic {
		return corruptBinaryFrame(h, frame)
	}
	body := frame[:len(frame)-1] // strip '\n'
	switch h % 4 {
	case 0: // bitflip: one byte, somewhere in the body
		if len(body) == 0 {
			return frame, "bitflip"
		}
		out := append([]byte(nil), body...)
		pos := int((h >> 2) % uint64(len(out)))
		out[pos] ^= byte(1 << ((h >> 32) % 8))
		return append(out, '\n'), "bitflip"
	case 1: // truncate: cut the tail off, newline included
		cut := 0
		if len(body) > 0 {
			cut = int((h >> 2) % uint64(len(body)))
		}
		return append([]byte(nil), frame[:cut]...), "truncate"
	case 2: // oversize: balloon the frame with a digit run (corrupt length)
		out := make([]byte, 0, len(body)+8192)
		mid := len(body) / 2
		out = append(out, body[:mid]...)
		for i := 0; i < 8192; i++ {
			out = append(out, '9')
		}
		out = append(out, body[mid:]...)
		return append(out, '\n'), "oversize"
	default: // garbage: replace the frame with non-JSON noise
		out := make([]byte, len(body))
		x := h
		for i := range out {
			x = splitmix64(x)
			b := byte(x)
			if b == '\n' {
				b = '?'
			}
			out[i] = b
		}
		return append(out, '\n'), "garbage"
	}
}

// corruptBinaryFrame mangles one complete binary wire frame with the
// same four damage shapes as the JSON path, mapped onto the binary
// framing: "bitflip" flips a body byte (framing intact, content damage —
// the CRC's job to catch), "truncate" cuts the tail so the next frame's
// bytes are absorbed as body (a torn TCP segment), "oversize" rewrites
// the length header to an absurd value (the codec's frame cap must
// reject it), and "garbage" randomizes the body under an intact header.
func corruptBinaryFrame(h uint64, frame []byte) ([]byte, string) {
	_, used := binary.Uvarint(frame[2:])
	if used <= 0 || 2+used >= len(frame) {
		// Header-only or unparseable frame: flip a byte anywhere.
		out := append([]byte(nil), frame...)
		out[int((h>>2)%uint64(len(out)))] ^= byte(1 << ((h >> 32) % 8))
		return out, "bitflip"
	}
	hdr := 2 + used
	body := frame[hdr:]
	switch h % 4 {
	case 0: // bitflip: one byte, somewhere in the body
		out := append([]byte(nil), frame...)
		pos := hdr + int((h>>2)%uint64(len(body)))
		out[pos] ^= byte(1 << ((h >> 32) % 8))
		return out, "bitflip"
	case 1: // truncate: cut the tail off
		cut := int((h >> 2) % uint64(len(frame)))
		return append([]byte(nil), frame[:cut]...), "truncate"
	case 2: // oversize: corrupt the length header to an absurd value
		out := make([]byte, 0, len(frame)+8)
		out = append(out, frame[0], frame[1])
		out = binary.AppendUvarint(out, 1<<30)
		return append(out, body...), "oversize"
	default: // garbage: randomize the body under an intact header
		out := append([]byte(nil), frame[:hdr]...)
		x := h
		for range body {
			x = splitmix64(x)
			out = append(out, byte(x))
		}
		return out, "garbage"
	}
}

// PoolWrapper returns a workqueue.Pool-compatible WrapConn hook: each
// spawned worker's pipe pair is wrapped on both ends under paired stream
// names ("pair-N/master" carries master→worker frames, "pair-N/worker"
// the reverse), so both directions follow the plan.
func (in *Injector) PoolWrapper() func(master, worker net.Conn) (net.Conn, net.Conn) {
	var n atomic.Uint64
	return func(master, worker net.Conn) (net.Conn, net.Conn) {
		i := n.Add(1) - 1
		return in.WrapConn(fmt.Sprintf("pair-%d/master", i), master),
			in.WrapConn(fmt.Sprintf("pair-%d/worker", i), worker)
	}
}

// Listen wraps a listener so every accepted connection is faulted under
// stream names "accept-0", "accept-1", ... in accept order — the
// master-side hook behind sstd-master's -chaos-spec flag.
func (in *Injector) Listen(l net.Listener) net.Listener {
	return &chaosListener{Listener: l, in: in}
}

type chaosListener struct {
	net.Listener
	in *Injector
	n  atomic.Uint64
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(fmt.Sprintf("accept-%d", l.n.Add(1)-1), c), nil
}
