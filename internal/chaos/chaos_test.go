package chaos

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("drop=0.3,corrupt=0.05,seed=7,delay=0.1:1ms-5ms,skew=250ms,hang=0.02:2s,script=corrupt@20-60+reset@w3:40-41")
	if err != nil {
		t.Fatal(err)
	}
	if s.Drop != 0.3 || s.Corrupt != 0.05 || s.Seed != 7 {
		t.Fatalf("probabilities/seed mismatch: %+v", s)
	}
	if s.Delay != 0.1 || s.DelayMin != time.Millisecond || s.DelayMax != 5*time.Millisecond {
		t.Fatalf("delay mismatch: %+v", s)
	}
	if s.SkewNs != int64(250*time.Millisecond) {
		t.Fatalf("skew mismatch: %d", s.SkewNs)
	}
	if s.Hang != 0.02 || s.HangFor != 2*time.Second {
		t.Fatalf("hang mismatch: %+v", s)
	}
	if len(s.Script) != 2 {
		t.Fatalf("script entries: %+v", s.Script)
	}
	if s.Script[0] != (ScriptedFault{Fault: FaultCorrupt, From: 20, To: 60}) {
		t.Fatalf("script[0]: %+v", s.Script[0])
	}
	if s.Script[1] != (ScriptedFault{Fault: FaultReset, Stream: "w3", From: 40, To: 41}) {
		t.Fatalf("script[1]: %+v", s.Script[1])
	}
	if _, err := ParseSpec("drop=1.5"); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := ParseSpec("nonsense=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("drop"); err == nil {
		t.Fatal("entry without value accepted")
	}
	if z, err := ParseSpec("  "); err != nil || z.Drop != 0 || z.Seed != 0 || z.Script != nil {
		t.Fatalf("blank spec: %+v, %v", z, err)
	}
}

// TestPlanDeterminism is the reproducibility contract: equal specs give
// equal fault plans, regardless of when or where decisions are asked.
func TestPlanDeterminism(t *testing.T) {
	spec := Spec{Seed: 42, Drop: 0.2, Corrupt: 0.1, Delay: 0.05, Reset: 0.01, Crash: 0.1, Fail: 0.05}
	a, b := New(spec, nil, nil), New(spec, nil, nil)
	streams := []string{"w0-r0/worker", "w1-r0/worker", "pair-0/master"}
	fired := 0
	for _, s := range streams {
		pa, pb := a.Plan(s, 512), b.Plan(s, 512)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("stream %s frame %d: %q vs %q", s, i, pa[i], pb[i])
			}
			if pa[i] != "" {
				fired++
			}
		}
		for i := uint64(0); i < 256; i++ {
			if a.ExecFault(s, i) != b.ExecFault(s, i) {
				t.Fatalf("exec plan diverged at %s/%d", s, i)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no faults in 1536 frames at ~36% combined probability")
	}
	// A different seed must yield a different plan.
	c := New(Spec{Seed: 43, Drop: 0.2, Corrupt: 0.1, Delay: 0.05, Reset: 0.01}, nil, nil)
	if same := equalPlans(a.Plan("w0-r0/worker", 512), c.Plan("w0-r0/worker", 512)); same {
		t.Fatal("seed 42 and 43 produced identical 512-frame plans")
	}
}

func equalPlans(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScriptedFaultOverrides(t *testing.T) {
	in := New(Spec{Script: []ScriptedFault{{Fault: FaultCorrupt, From: 20, To: 60}}}, nil, nil)
	for i := uint64(0); i < 100; i++ {
		want := ""
		if i >= 20 && i < 60 {
			want = FaultCorrupt
		}
		if got := in.FrameFault("any", i); got != want {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	// Stream-scoped entries only hit matching streams.
	in = New(Spec{Script: []ScriptedFault{{Fault: FaultDrop, Stream: "w3", From: 0, To: 10}}}, nil, nil)
	if in.FrameFault("w3-r0/worker", 5) != FaultDrop {
		t.Fatal("matching stream not faulted")
	}
	if in.FrameFault("w1-r0/worker", 5) != "" {
		t.Fatal("non-matching stream faulted")
	}
}

func TestCorruptFrameModes(t *testing.T) {
	frame := []byte(`{"type":"result","worker_id":"w0","sent_ns":1722900000000000000}` + "\n")
	seen := map[string]bool{}
	for h := uint64(0); h < 64; h++ {
		got, mode := CorruptFrame(h, frame)
		again, _ := CorruptFrame(h, frame)
		if !bytes.Equal(got, again) {
			t.Fatalf("mode %s not deterministic", mode)
		}
		if bytes.Equal(got, frame) && mode != "truncate" {
			t.Fatalf("mode %s left the frame intact (h=%d)", mode, h)
		}
		if mode != "truncate" && (len(got) == 0 || got[len(got)-1] != '\n') {
			t.Fatalf("mode %s lost the frame delimiter", mode)
		}
		seen[mode] = true
	}
	for _, m := range []string{"bitflip", "truncate", "oversize", "garbage"} {
		if !seen[m] {
			t.Fatalf("mode %s never selected in 64 hashes", m)
		}
	}
}

// TestSkewRewritePrecision checks the digit-level rewrite preserves
// int64 nanosecond precision (a JSON round trip through float64 would
// corrupt stamps above 2^53).
func TestSkewRewrite(t *testing.T) {
	skew := int64(250 * time.Millisecond)
	in := New(Spec{SkewNs: skew}, nil, nil)
	c := &Conn{in: in, stream: "s"}
	const stamp = int64(1722900000123456789) // > 2^53, full ns precision
	frame := []byte(`{"type":"heartbeat","sent_ns":1722900000123456789,"spans":[{"name":"exec","start_unix_ns":1722900000123456789,"dur_ns":5}]}` + "\n")
	got := string(c.applySkew(frame))
	want := strings.ReplaceAll(string(frame), "1722900000123456789", "1722900000373456789")
	if got != want {
		t.Fatalf("skew rewrite:\n got %s\nwant %s", got, want)
	}
	_ = stamp
}

// TestConnFrameFaults drives a wrapped pipe through a scripted schedule
// and checks the peer sees exactly the surviving frames.
func TestConnFrameFaults(t *testing.T) {
	in := New(Spec{Script: []ScriptedFault{{Fault: FaultDrop, From: 1, To: 2}}}, nil, nil)
	a, b := net.Pipe()
	defer b.Close()
	w := in.WrapConn("s", a)
	lines := make(chan string, 3)
	go func() {
		r := bufio.NewReader(b)
		for {
			l, err := r.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimSpace(l)
		}
	}()
	for _, l := range []string{`{"n":0}`, `{"n":1}`, `{"n":2}`} {
		if _, err := w.Write([]byte(l + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{`{"n":0}`, `{"n":2}`} {
		select {
		case got := <-lines:
			if got != want {
				t.Fatalf("got %q want %q", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].Fault != FaultDrop || evs[0].Index != 1 {
		t.Fatalf("events: %+v", evs)
	}
	w.Close()
}

// TestConnReset checks a scripted reset severs the link and surfaces an
// error to the writer.
func TestConnReset(t *testing.T) {
	in := New(Spec{Script: []ScriptedFault{{Fault: FaultReset, From: 0, To: 1}}}, nil, nil)
	a, b := net.Pipe()
	defer b.Close()
	w := in.WrapConn("s", a)
	done := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("{}\n"))
		done <- err
	}()
	// The read side must observe EOF (the reset closed the pipe).
	buf := make([]byte, 8)
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
	if err := <-done; err == nil {
		t.Fatal("write after reset reported success")
	}
}

// TestPartialWritesAssembleFrames checks the wrapper buffers split
// writes until the newline arrives, counting frames (not writes).
func TestPartialWritesAssembleFrames(t *testing.T) {
	in := New(Spec{}, nil, nil)
	a, b := net.Pipe()
	defer b.Close()
	w := in.WrapConn("s", a)
	go func() {
		w.Write([]byte(`{"n"`))
		w.Write([]byte(`:7}` + "\n"))
		w.Close()
	}()
	r := bufio.NewReader(b)
	l, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(l) != `{"n":7}` {
		t.Fatalf("got %q", l)
	}
}
