package chaos

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/social-sensing/sstd/internal/workqueue"
)

// Injected exec-fault errors, distinguishable from genuine executor
// failures in assertions.
var (
	ErrInjectedCrash = errors.New("chaos: injected worker crash")
	ErrInjectedHang  = errors.New("chaos: injected hang elapsed")
	ErrInjectedFail  = errors.New("chaos: injected task failure")
)

// WrapExec wraps an executor with the injector's per-task crash, hang
// and fail faults for one worker stream. Task indices count invocations
// on this wrapper, so each worker needs its own wrapped executor for a
// stream-stable plan.
//
// onCrash simulates abrupt worker death — typically closing the
// worker's connection so the master sees the same EOF a killed process
// produces; nil degrades a crash to a reported failure. A hang blocks
// for Spec.HangFor or until the executor's context is cancelled (the
// worker's ExecTimeout path), whichever comes first.
func (in *Injector) WrapExec(stream string, exec workqueue.Executor, onCrash func()) workqueue.Executor {
	var idx atomic.Uint64
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		i := idx.Add(1) - 1
		fault, _ := in.decide(execFaults, stream, i)
		switch fault {
		case FaultCrash:
			start := time.Now()
			if onCrash != nil {
				onCrash()
			}
			in.record(FaultCrash, stream, i, "", start)
			return nil, ErrInjectedCrash
		case FaultHang:
			start := time.Now()
			in.record(FaultHang, stream, i, in.spec.HangFor.String(), start)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(in.spec.HangFor):
				return nil, ErrInjectedHang
			}
		case FaultFail:
			in.record(FaultFail, stream, i, "", time.Now())
			return nil, ErrInjectedFail
		}
		return exec(ctx, payload)
	}
}
