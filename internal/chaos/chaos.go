// Package chaos is a deterministic, seedable fault-injection layer for
// the workqueue cluster. It wraps the transport (net.Conn, at the
// newline-framed codec level) and the worker exec path to inject the
// failure modes the paper's elastic Work Queue deployment (§IV) assumes
// are routine — dropped and corrupted frames, arbitrary delivery delay,
// connection resets, worker crashes and hangs, and clock skew — so that
// requeue, liveness eviction, backoff and quarantine paths are exercised
// systematically instead of hoping the happy path generalizes.
//
// Every decision is a pure function of (seed, fault kind, stream name,
// frame index) via a splitmix64 hash: the fault plan for a given spec is
// fixed before the cluster runs and immune to goroutine interleaving, so
// a failing soak is reproducible from its seed alone. Scripted entries
// override the probabilistic plan for exact frame ranges.
//
// The layer is test-only in spirit: the sstd-master/sstd-worker binaries
// gate it behind -chaos-spec / -chaos-seed flags that default to off.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
)

// Fault kinds. Transport faults (drop/corrupt/delay/reset/skew) apply
// per wire frame; exec faults (crash/hang/fail) apply per task.
const (
	FaultDrop    = "drop"
	FaultCorrupt = "corrupt"
	FaultDelay   = "delay"
	FaultReset   = "reset"
	FaultSkew    = "skew"
	FaultCrash   = "crash"
	FaultHang    = "hang"
	FaultFail    = "fail"
)

// faultOrder fixes the evaluation order of probabilistic transport
// faults for one frame (at most one fires per frame; reset is checked
// first since it supersedes the rest).
var transportFaults = []string{FaultReset, FaultDrop, FaultCorrupt, FaultDelay}

// execFaults is the per-task evaluation order of exec faults.
var execFaults = []string{FaultCrash, FaultHang, FaultFail}

// ScriptedFault forces one fault over an exact frame (or task) index
// range, overriding the probabilistic plan — the tool for "corrupt
// frames 20..60 of every stream" style schedules.
type ScriptedFault struct {
	// Fault is one of the Fault* constants.
	Fault string
	// Stream restricts the entry to streams containing this substring
	// ("" = all streams).
	Stream string
	// From..To is the half-open frame index range the fault covers.
	From, To uint64
}

// Spec describes one fault schedule. Probabilities are per frame
// (transport) or per task (exec) in [0,1]; zero disables a fault.
type Spec struct {
	// Seed drives every probabilistic decision. Two injectors with equal
	// specs produce identical fault plans.
	Seed int64

	// Transport faults.
	Drop    float64
	Corrupt float64
	Delay   float64
	Reset   float64
	// DelayMin/DelayMax bound the injected delivery delay (defaults
	// 1ms..20ms when Delay > 0).
	DelayMin, DelayMax time.Duration
	// SkewNs shifts every clock stamp ("sent_ns", "start_unix_ns")
	// crossing the wrapped connection, simulating a worker whose clock
	// runs ahead (positive) or behind (negative) of the master's.
	SkewNs int64

	// Exec faults.
	Crash float64
	Hang  float64
	Fail  float64
	// HangFor bounds an injected hang (default 30s — comfortably past
	// any test deadline, short enough not to leak goroutines forever).
	HangFor time.Duration

	// Script entries override the probabilistic plan on exact ranges.
	Script []ScriptedFault
}

// withDefaults fills derived fields.
func (s Spec) withDefaults() Spec {
	if s.DelayMin <= 0 {
		s.DelayMin = time.Millisecond
	}
	if s.DelayMax < s.DelayMin {
		s.DelayMax = 20 * time.Millisecond
	}
	if s.HangFor <= 0 {
		s.HangFor = 30 * time.Second
	}
	return s
}

// ParseSpec parses the -chaos-spec mini-language: comma-separated
// key=value pairs.
//
//	drop=0.3,corrupt=0.05,seed=7          probabilities + seed
//	delay=0.1:1ms-5ms                     10% of frames delayed 1-5ms
//	skew=250ms                            constant clock skew
//	hang=0.02:2s                          2% of tasks hang for 2s
//	script=corrupt@20-60+drop@100-110     scripted frame ranges
//	script=reset@w3:40-41                 scripted, one stream only
//
// An empty string parses to the zero Spec (no faults).
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, kv := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return s, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case FaultDrop:
			s.Drop, err = parseProb(val)
		case FaultCorrupt:
			s.Corrupt, err = parseProb(val)
		case FaultReset:
			s.Reset, err = parseProb(val)
		case FaultDelay:
			prob, rest, _ := strings.Cut(val, ":")
			if s.Delay, err = parseProb(prob); err == nil && rest != "" {
				s.DelayMin, s.DelayMax, err = parseRange(rest)
			}
		case FaultSkew:
			var d time.Duration
			d, err = time.ParseDuration(val)
			s.SkewNs = int64(d)
		case FaultCrash:
			s.Crash, err = parseProb(val)
		case FaultFail:
			s.Fail, err = parseProb(val)
		case FaultHang:
			prob, rest, _ := strings.Cut(val, ":")
			if s.Hang, err = parseProb(prob); err == nil && rest != "" {
				s.HangFor, err = time.ParseDuration(rest)
			}
		case "script":
			s.Script, err = parseScript(val)
		default:
			return s, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: bad value for %s: %w", key, err)
		}
	}
	return s, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func parseRange(v string) (min, max time.Duration, err error) {
	lo, hi, ok := strings.Cut(v, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad duration range %q (want min-max)", v)
	}
	if min, err = time.ParseDuration(lo); err != nil {
		return 0, 0, err
	}
	if max, err = time.ParseDuration(hi); err != nil {
		return 0, 0, err
	}
	return min, max, nil
}

// parseScript parses "+"-joined entries of the form fault@from-to or
// fault@stream:from-to.
func parseScript(v string) ([]ScriptedFault, error) {
	var out []ScriptedFault
	for _, entry := range strings.Split(v, "+") {
		fault, spec, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("bad script entry %q (want fault@from-to)", entry)
		}
		var sf ScriptedFault
		sf.Fault = fault
		if stream, rng, ok := strings.Cut(spec, ":"); ok {
			sf.Stream, spec = stream, rng
		}
		lo, hi, ok := strings.Cut(spec, "-")
		if !ok {
			return nil, fmt.Errorf("bad script range %q (want from-to)", spec)
		}
		from, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return nil, err
		}
		to, err := strconv.ParseUint(hi, 10, 64)
		if err != nil {
			return nil, err
		}
		sf.From, sf.To = from, to
		out = append(out, sf)
	}
	return out, nil
}

// Event records one injected fault, for assertions and reproduction
// reports. Stream and Index identify the decision point exactly; the
// sequence of events per stream is deterministic for a given Spec.
type Event struct {
	Fault  string `json:"fault"`
	Stream string `json:"stream"`
	Index  uint64 `json:"index"`
	// Detail carries fault-specific context (corruption mode, delay).
	Detail string `json:"detail,omitempty"`
}

// Injector owns one fault schedule and the telemetry around it. All
// methods are safe for concurrent use; decisions are pure hashes, so
// concurrency never perturbs the plan.
type Injector struct {
	spec    Spec
	tracer  *obs.Tracer
	mu      sync.Mutex
	counts  map[string]*obs.Counter
	reg     *obs.Registry
	events  []Event
	dropped int // events beyond the retention cap
}

// eventRetention bounds the recorded event log (a soak can inject tens
// of thousands of faults; tests assert on prefixes and totals).
const eventRetention = 4096

// New builds an injector for the spec. Registry and tracer may be nil
// (telemetry off): injected faults then only appear in Events().
func New(spec Spec, reg *obs.Registry, tracer *obs.Tracer) *Injector {
	return &Injector{
		spec:   spec.withDefaults(),
		reg:    reg,
		tracer: tracer,
		counts: make(map[string]*obs.Counter),
	}
}

// Spec returns the injector's (defaulted) schedule.
func (in *Injector) Spec() Spec { return in.spec }

// splitmix64 is the standard finalizer-quality mixer; one pass turns a
// structured key into an effectively random 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey mixes (seed, fault, stream, index) into one decision hash.
// FNV-1a folds the strings; splitmix64 whitens the combination.
func (in *Injector) hashKey(fault, stream string, index uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(fault); i++ {
		h = (h ^ uint64(fault[i])) * 1099511628211
	}
	h = (h ^ '|') * 1099511628211
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * 1099511628211
	}
	return splitmix64(splitmix64(uint64(in.spec.Seed)^h) ^ index)
}

// uniform returns the deterministic uniform draw in [0,1) for one
// decision point.
func (in *Injector) uniform(fault, stream string, index uint64) float64 {
	return float64(in.hashKey(fault, stream, index)>>11) / (1 << 53)
}

// scripted returns the scripted fault covering (stream, index), if any.
func (in *Injector) scripted(stream string, index uint64) (string, bool) {
	for _, sf := range in.spec.Script {
		if index < sf.From || index >= sf.To {
			continue
		}
		if sf.Stream != "" && !strings.Contains(stream, sf.Stream) {
			continue
		}
		return sf.Fault, true
	}
	return "", false
}

// prob returns the configured probability for a fault kind.
func (in *Injector) prob(fault string) float64 {
	switch fault {
	case FaultDrop:
		return in.spec.Drop
	case FaultCorrupt:
		return in.spec.Corrupt
	case FaultDelay:
		return in.spec.Delay
	case FaultReset:
		return in.spec.Reset
	case FaultCrash:
		return in.spec.Crash
	case FaultHang:
		return in.spec.Hang
	case FaultFail:
		return in.spec.Fail
	}
	return 0
}

// decide picks the fault (if any) for one decision point out of the
// given candidate kinds. Scripted entries win; otherwise the first
// candidate whose uniform draw clears its probability fires. Pure —
// no state is read or written, so the plan is interleaving-proof.
func (in *Injector) decide(candidates []string, stream string, index uint64) (string, bool) {
	if f, ok := in.scripted(stream, index); ok {
		for _, c := range candidates {
			if c == f {
				return f, true
			}
		}
		return "", false // scripted fault of the other class (exec vs transport)
	}
	for _, f := range candidates {
		if p := in.prob(f); p > 0 && in.uniform(f, stream, index) < p {
			return f, true
		}
	}
	return "", false
}

// FrameFault returns the transport fault for frame index on stream
// ("" = none). Exposed for plan-equality assertions.
func (in *Injector) FrameFault(stream string, index uint64) string {
	f, _ := in.decide(transportFaults, stream, index)
	return f
}

// ExecFault returns the exec fault for task index on stream ("" = none).
func (in *Injector) ExecFault(stream string, index uint64) string {
	f, _ := in.decide(execFaults, stream, index)
	return f
}

// Plan materializes the first n frame decisions for a stream — the
// reproducibility contract in executable form: equal specs yield equal
// plans.
func (in *Injector) Plan(stream string, n uint64) []string {
	out := make([]string, n)
	for i := uint64(0); i < n; i++ {
		out[i] = in.FrameFault(stream, i)
	}
	return out
}

// delayFor derives the injected delay for one frame from its decision
// hash, uniform in [DelayMin, DelayMax].
func (in *Injector) delayFor(stream string, index uint64) time.Duration {
	span := in.spec.DelayMax - in.spec.DelayMin
	if span <= 0 {
		return in.spec.DelayMin
	}
	u := float64(in.hashKey(FaultDelay+"/amount", stream, index)>>11) / (1 << 53)
	return in.spec.DelayMin + time.Duration(u*float64(span))
}

// record logs one injected fault: event list, counter family, span.
func (in *Injector) record(fault, stream string, index uint64, detail string, start time.Time) {
	in.mu.Lock()
	if len(in.events) < eventRetention {
		in.events = append(in.events, Event{Fault: fault, Stream: stream, Index: index, Detail: detail})
	} else {
		in.dropped++
	}
	c := in.counts[fault]
	if c == nil && in.reg != nil {
		c = in.reg.Counter(fmt.Sprintf("chaos_injected_total{fault=%q}", fault))
		in.counts[fault] = c
	}
	in.mu.Unlock()
	c.Inc()
	if in.tracer != nil {
		in.tracer.Ingest(obs.Span{
			Name:  "chaos " + fault,
			Proc:  stream,
			Attrs: map[string]string{"stream": stream, "index": strconv.FormatUint(index, 10), "detail": detail},
			Start: start,
			End:   time.Now(),
		})
	}
}

// Events snapshots the injected-fault log (capped at eventRetention),
// sorted by stream then index so concurrent append order does not leak
// into assertions.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// InjectedCount reports the total number of injected faults, including
// any beyond the event retention cap.
func (in *Injector) InjectedCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events) + in.dropped
}
